/// Physical-mode demo: a reduced-scale database with real tuples and real
/// B+-trees. COLT drives the physical configuration while an Executor runs
/// every query against the stored data, so you can watch measured page
/// counts drop as indexes appear.
///
///   $ ./build/examples/selftuning_server
#include <cstdio>

#include "core/colt.h"
#include "exec/executor.h"
#include "harness/workloads.h"
#include "query/workload.h"
#include "storage/tpch_schema.h"

int main() {
  // A 2% scale TPC-H instance (~140k rows) so physical execution is quick.
  colt::TpchOptions options;
  options.instances = 1;
  options.scale = 0.02;
  colt::Database db(colt::MakeTpchCatalog(options), /*seed=*/42);
  if (auto st = db.MaterializeAll(/*refresh_stats=*/true); !st.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Materialized %d tables, %lld tuples (physical mode).\n",
              db.catalog().table_count(),
              static_cast<long long>(db.catalog().total_rows()));

  colt::QueryOptimizer optimizer(&db.catalog());
  colt::ColtConfig config;
  config.storage_budget_bytes = 8LL * 1024 * 1024;
  // Attaching the Database makes the Scheduler build/drop real B+-trees.
  colt::ColtTuner tuner(&db.mutable_catalog(), &optimizer, config, &db);
  colt::Executor executor(&db);

  const colt::QueryDistribution dist =
      colt::ExperimentWorkloads::Focused(&db.mutable_catalog(), 0);
  colt::WorkloadGenerator gen(&db.catalog(), 11);

  // A fixed probe set, executed before and after tuning against the same
  // data, so the I/O comparison is apples-to-apples.
  std::vector<colt::Query> probes;
  for (int i = 0; i < 25; ++i) probes.push_back(gen.Sample(dist));
  auto measure = [&](const colt::IndexConfiguration& config,
                     int64_t* pages_out, int64_t* rows_out) -> bool {
    *pages_out = 0;
    *rows_out = 0;
    for (const auto& q : probes) {
      const colt::PlanResult plan = optimizer.Optimize(q, config);
      auto result = executor.Execute(*plan.plan);
      if (!result.ok()) {
        std::fprintf(stderr, "execution failed: %s\n",
                     result.status().ToString().c_str());
        return false;
      }
      *pages_out +=
          result->pages_seq + result->pages_random + result->pages_index;
      *rows_out += result->output_rows;
    }
    return true;
  };

  int64_t pages_before = 0, rows_before = 0;
  if (!measure({}, &pages_before, &rows_before)) return 1;

  // Let COLT watch the stream and tune the physical configuration.
  const int kQueries = 150;
  for (int i = 0; i < kQueries; ++i) {
    const colt::TuningStep step = tuner.OnQuery(gen.Sample(dist));
    for (const auto& action : step.actions) {
      std::printf("query %3d: %s %s\n", i,
                  action.type == colt::IndexActionType::kMaterialize
                      ? "CREATE INDEX"
                      : "DROP INDEX",
                  db.catalog().index(action.index).name.c_str());
    }
  }

  int64_t pages_after = 0, rows_after = 0;
  if (!measure(tuner.materialized(), &pages_after, &rows_after)) return 1;

  std::printf("\nMeasured I/O on the same %zu probe queries:\n",
              probes.size());
  std::printf("  before tuning: %lld pages\n",
              static_cast<long long>(pages_before));
  std::printf("  after tuning:  %lld pages  (%.0f%% of untuned)\n",
              static_cast<long long>(pages_after),
              100.0 * pages_after / std::max<int64_t>(1, pages_before));
  std::printf("  result rows identical: %s (%lld)\n",
              rows_before == rows_after ? "yes" : "NO",
              static_cast<long long>(rows_after));
  std::printf("\nPhysically built indexes:\n");
  for (colt::IndexId id : tuner.materialized().ids()) {
    const auto& tree = db.index(id);
    std::printf("  %-40s height=%d leaves=%lld entries=%lld\n",
                db.catalog().index(id).name.c_str(), tree.height(),
                static_cast<long long>(tree.leaf_count()),
                static_cast<long long>(tree.entry_count()));
  }
  return 0;
}
