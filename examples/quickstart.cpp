/// Quickstart: wire up a catalog, an optimizer, and a COLT tuner, feed it a
/// query stream, and watch it pick indexes.
///
///   $ ./build/examples/quickstart
#include <cstdio>

#include "core/colt.h"
#include "harness/workloads.h"
#include "query/workload.h"
#include "storage/tpch_schema.h"

int main() {
  // 1. A database schema with statistics. MakeTpchCatalog() builds the
  //    paper's 32-table synthetic data set; statistics-only mode means no
  //    tuples are generated — the cost model runs on the catalog.
  colt::Catalog catalog = colt::MakeTpchCatalog();

  // 2. The Extended Query Optimizer: Selinger-style planning plus the
  //    what-if interface COLT profiles with.
  colt::QueryOptimizer optimizer(&catalog);

  // 3. COLT itself. The defaults are the paper's settings (w = 10 queries
  //    per epoch, h = 12 epochs of memory, at most 20 what-if calls per
  //    epoch, 90% confidence intervals).
  colt::ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;  // on-line budget B
  colt::ColtTuner tuner(&catalog, &optimizer, config);

  // 4. A query stream. Here: the stable analytic workload from the paper's
  //    first experiment.
  const colt::QueryDistribution dist =
      colt::ExperimentWorkloads::Focused(&catalog, 0);
  colt::WorkloadGenerator gen(&catalog, /*seed=*/2024);

  double exec = 0, overhead = 0;
  for (int i = 0; i < 200; ++i) {
    const colt::Query q = gen.Sample(dist);
    const colt::TuningStep step = tuner.OnQuery(q);
    exec += step.execution_seconds;
    overhead += step.profiling_seconds + step.build_seconds;
    for (const auto& action : step.actions) {
      if (action.type == colt::IndexActionType::kMaterialize) {
        std::printf("query %3d: MATERIALIZE %s (build %.1f s)\n", i,
                    catalog.index(action.index).name.c_str(),
                    action.build_seconds);
      } else {
        std::printf("query %3d: DROP %s\n", i,
                    catalog.index(action.index).name.c_str());
      }
    }
  }

  int64_t materialized_bytes = 0;
  for (colt::IndexId id : tuner.materialized().ids()) {
    materialized_bytes += catalog.index(id).size_bytes;
  }
  std::printf("\nAfter 200 queries:\n");
  std::printf("  simulated execution time: %.1f s\n", exec);
  std::printf("  tuning overhead:          %.1f s\n", overhead);
  std::printf("  materialized set (%zu indexes, %.1f MB):\n",
              tuner.materialized().size(),
              materialized_bytes / (1024.0 * 1024.0));
  for (colt::IndexId id : tuner.materialized().ids()) {
    std::printf("    %-40s %6.1f MB\n", catalog.index(id).name.c_str(),
                catalog.index(id).size_bytes / (1024.0 * 1024.0));
  }
  std::printf("  what-if budget next epoch: %d of %d (self-regulated)\n",
              tuner.whatif_limit(), config.max_whatif_per_epoch);
  return 0;
}
