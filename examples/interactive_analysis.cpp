/// Interactive data analysis — the scenario that motivates the paper's
/// introduction: an analyst issues exploratory queries to validate a
/// hypothesis, then moves to the next hypothesis. Consecutive queries for
/// one hypothesis share characteristics (the "unstable component" of the
/// workload), so an on-line tuner can materialize indexes for the current
/// investigation and retire them when the analyst moves on.
///
///   $ ./build/examples/interactive_analysis
#include <cstdio>
#include <string>

#include "core/colt.h"
#include "harness/workloads.h"
#include "query/workload.h"
#include "storage/tpch_schema.h"

namespace {

struct Hypothesis {
  const char* description;
  colt::QueryDistribution distribution;
  int queries;
};

}  // namespace

int main() {
  colt::Catalog catalog = colt::MakeTpchCatalog();
  colt::QueryOptimizer optimizer(&catalog);
  colt::ColtConfig config;
  config.storage_budget_bytes = 48LL * 1024 * 1024;
  colt::ColtTuner tuner(&catalog, &optimizer, config);
  colt::WorkloadGenerator gen(&catalog, 7);

  // The analyst's session: three investigations, each a burst of related
  // queries. We reuse the shifting-workload phase distributions, which
  // model exactly this kind of focus shift.
  auto phases = colt::ExperimentWorkloads::ShiftingPhases(&catalog);
  Hypothesis session[] = {
      {"Are Q4 shipments delayed? (date-range scans over lineitem)",
       phases[0], 120},
      {"Is supplier S misbehaving? (supplier drill-downs + orders)",
       phases[1], 120},
      {"Did the audit flag late receipts? (commit/receipt-date checks)",
       phases[2], 120},
  };

  int query_number = 0;
  for (const auto& hypothesis : session) {
    std::printf("\n=== Analyst: %s\n", hypothesis.description);
    double exec = 0;
    for (int i = 0; i < hypothesis.queries; ++i, ++query_number) {
      const colt::TuningStep step =
          tuner.OnQuery(gen.Sample(hypothesis.distribution));
      exec += step.execution_seconds;
      for (const auto& action : step.actions) {
        std::printf("  [query %4d] %-11s %s\n", query_number,
                    action.type == colt::IndexActionType::kMaterialize
                        ? "materialize"
                        : "drop",
                    catalog.index(action.index).name.c_str());
      }
    }
    std::printf("  -> %d queries, %.1f s simulated execution; "
                "what-if budget now %d/%d\n",
                hypothesis.queries, exec, tuner.whatif_limit(),
                config.max_whatif_per_epoch);
  }

  std::printf("\nFinal configuration after the session:\n");
  for (colt::IndexId id : tuner.materialized().ids()) {
    std::printf("  %s\n", catalog.index(id).name.c_str());
  }
  std::printf("Distinct indexes COLT ever profiled: %lld\n",
              static_cast<long long>(tuner.distinct_indexes_profiled()));
  return 0;
}
