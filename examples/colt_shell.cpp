/// colt_shell — an interactive (or scripted) self-tuning SQL shell.
///
/// Reads statements from stdin (or a file passed as argv[1]), plans and
/// "executes" them against the TPC-H catalog with COLT tuning in the
/// background. Meta-commands:
///
///   \d            list tables
///   \d <table>    describe a table
///   \m            show the materialized set and what-if budget
///   \plan <sql>   show the optimizer's plan without running COLT
///   \q            quit
///
/// Example:
///   echo "SELECT COUNT(*) FROM lineitem_0 WHERE
///         lineitem_0.l_shipdate BETWEEN 100 AND 120;" |
///     ./build/examples/colt_shell
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/colt.h"
#include "query/parser.h"
#include "storage/tpch_schema.h"

namespace {

void ListTables(const colt::Catalog& catalog) {
  std::printf("%-16s %12s %8s\n", "table", "rows", "columns");
  for (colt::TableId t = 0; t < catalog.table_count(); ++t) {
    const auto& table = catalog.table(t);
    std::printf("%-16s %12lld %8d\n", table.name().c_str(),
                static_cast<long long>(table.row_count()),
                table.column_count());
  }
}

void DescribeTable(const colt::Catalog& catalog, const std::string& name) {
  const colt::TableId t = catalog.FindTable(name);
  if (t == colt::kInvalidTableId) {
    std::printf("no such table: %s\n", name.c_str());
    return;
  }
  const auto& table = catalog.table(t);
  std::printf("%-20s %-8s %6s %12s\n", "column", "type", "width", "ndv");
  for (const auto& col : table.columns()) {
    std::printf("%-20s %-8s %6d %12lld\n", col.name.c_str(),
                colt::ColumnTypeName(col.type), col.width_bytes,
                static_cast<long long>(col.ndv));
  }
}

void ShowMaterialized(const colt::Catalog& catalog,
                      colt::ColtTuner& tuner) {
  (void)catalog;
  std::printf("%-44s %-12s %10s %12s %12s %8s\n", "index", "role",
              "benefitC", "forecast", "netbenefit", "MB");
  for (const auto& e : tuner.ExplainState()) {
    std::printf("%-44s %-12s %10.1f %12.0f %12.0f %8.1f\n", e.name.c_str(),
                e.role.c_str(), e.crude_benefit, e.forecast_benefit,
                e.net_benefit, e.size_bytes / (1024.0 * 1024.0));
  }
  std::printf("what-if budget: %d/%d\n", tuner.whatif_limit(),
              tuner.config().max_whatif_per_epoch);
}

}  // namespace

int main(int argc, char** argv) {
  colt::Catalog catalog = colt::MakeTpchCatalog();
  colt::QueryOptimizer optimizer(&catalog);
  colt::ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  colt::ColtTuner tuner(&catalog, &optimizer, config);
  colt::QueryParser parser(&catalog);

  std::ifstream file;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
  }
  std::istream& in = (argc > 1) ? file : std::cin;
  const bool interactive = (argc == 1);

  if (interactive) {
    std::printf("COLT shell over the 32-table TPC-H catalog. \\d to list "
                "tables, \\q to quit.\n");
  }
  std::string line;
  int statement = 0;
  while ((interactive && (std::printf("colt> "), true), true) &&
         std::getline(in, line)) {
    // Trim.
    const auto first = line.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) continue;
    line = line.substr(first);

    if (line[0] == '\\') {
      std::istringstream cmd(line);
      std::string op, arg;
      cmd >> op >> arg;
      if (op == "\\q") break;
      if (op == "\\d" && arg.empty()) {
        ListTables(catalog);
      } else if (op == "\\d") {
        DescribeTable(catalog, arg);
      } else if (op == "\\m") {
        ShowMaterialized(catalog, tuner);
      } else if (op == "\\plan") {
        const std::string sql = line.substr(line.find(' ') + 1);
        auto q = parser.Parse(sql);
        if (!q.ok()) {
          std::printf("error: %s\n", q.status().ToString().c_str());
          continue;
        }
        const colt::PlanResult plan =
            optimizer.Optimize(*q, tuner.materialized());
        std::printf("%s", plan.plan->ToString(catalog).c_str());
      } else {
        std::printf("unknown command: %s\n", op.c_str());
      }
      continue;
    }

    auto q = parser.Parse(line);
    if (!q.ok()) {
      std::printf("error: %s\n", q.status().ToString().c_str());
      continue;
    }
    const colt::TuningStep step = tuner.OnQuery(*q);
    std::printf("[%4d] est. %.2f s via %s", ++statement,
                step.execution_seconds,
                colt::PlanNodeTypeName(step.plan.plan->type));
    if (step.whatif_calls > 0) {
      std::printf("  (profiled %d index(es))", step.whatif_calls);
    }
    std::printf("\n");
    for (const auto& action : step.actions) {
      std::printf("       %s %s\n",
                  action.type == colt::IndexActionType::kMaterialize
                      ? "CREATE INDEX"
                      : "DROP INDEX",
                  catalog.index(action.index).name.c_str());
    }
  }
  if (interactive) std::printf("\n");
  return 0;
}
