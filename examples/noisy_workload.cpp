/// Noise resilience: a steady reporting workload is interrupted by bursts
/// of unrelated ad-hoc queries. A naive tuner would thrash; COLT's
/// forecasting window makes it ignore short bursts and invest only when a
/// "burst" turns out to be a real shift.
///
///   $ ./build/examples/noisy_workload
#include <cstdio>

#include "core/colt.h"
#include "harness/workloads.h"
#include "query/workload.h"
#include "storage/tpch_schema.h"

namespace {

/// Runs the mixed workload and reports how COLT treated the interruption.
void RunScenario(colt::Catalog* catalog, int burst_length) {
  colt::QueryOptimizer optimizer(catalog);
  colt::ColtConfig config;
  config.storage_budget_bytes = 48LL * 1024 * 1024;
  colt::ColtTuner tuner(catalog, &optimizer, config);

  const colt::QueryDistribution steady =
      colt::ExperimentWorkloads::NoiseBase(catalog);
  const colt::QueryDistribution adhoc =
      colt::ExperimentWorkloads::NoiseBurst(catalog);
  colt::WorkloadGenerator gen(catalog, 100 + burst_length);

  // Which tables does the ad-hoc burst touch? (schema instance 1)
  auto is_burst_index = [&](colt::IndexId id) {
    const std::string& name =
        catalog->table(catalog->index(id).column.table).name();
    return name.find("_1") != std::string::npos;
  };

  // 150 steady queries, one burst, 150 steady queries.
  int burst_materializations = 0;
  auto feed = [&](const colt::QueryDistribution& dist, int n) {
    for (int i = 0; i < n; ++i) {
      const colt::TuningStep step = tuner.OnQuery(gen.Sample(dist));
      for (const auto& action : step.actions) {
        if (action.type == colt::IndexActionType::kMaterialize &&
            is_burst_index(action.index)) {
          ++burst_materializations;
        }
      }
    }
  };
  feed(steady, 150);
  feed(adhoc, burst_length);
  feed(steady, 150);

  int final_burst_indexes = 0;
  for (colt::IndexId id : tuner.materialized().ids()) {
    final_burst_indexes += is_burst_index(id) ? 1 : 0;
  }
  std::printf("  burst of %3d ad-hoc queries: built %d index(es) for the "
              "burst, %d still materialized at the end\n",
              burst_length, burst_materializations, final_burst_indexes);
}

}  // namespace

int main() {
  colt::Catalog catalog = colt::MakeTpchCatalog();
  std::printf("Steady reporting workload interrupted by an ad-hoc burst.\n");
  std::printf("Short bursts should be ignored (noise); long ones are a real "
              "shift worth investing in.\n\n");
  for (int burst : {10, 20, 40, 80, 160}) {
    RunScenario(&catalog, burst);
  }
  std::printf("\n(Compare the paper's Fig. 6: resilience below ~20 queries, "
              "investment beyond ~70.)\n");
  return 0;
}
