file(REMOVE_RECURSE
  "CMakeFiles/micro_optimizer.dir/micro_optimizer.cc.o"
  "CMakeFiles/micro_optimizer.dir/micro_optimizer.cc.o.d"
  "micro_optimizer"
  "micro_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
