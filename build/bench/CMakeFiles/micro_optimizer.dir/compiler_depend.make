# Empty compiler generated dependencies file for micro_optimizer.
# This may be replaced when dependencies are built.
