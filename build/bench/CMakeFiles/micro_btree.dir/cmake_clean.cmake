file(REMOVE_RECURSE
  "CMakeFiles/micro_btree.dir/micro_btree.cc.o"
  "CMakeFiles/micro_btree.dir/micro_btree.cc.o.d"
  "micro_btree"
  "micro_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
