# Empty dependencies file for ext_multicolumn.
# This may be replaced when dependencies are built.
