file(REMOVE_RECURSE
  "CMakeFiles/ext_multicolumn.dir/ext_multicolumn.cc.o"
  "CMakeFiles/ext_multicolumn.dir/ext_multicolumn.cc.o.d"
  "ext_multicolumn"
  "ext_multicolumn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multicolumn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
