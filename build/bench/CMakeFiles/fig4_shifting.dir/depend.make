# Empty dependencies file for fig4_shifting.
# This may be replaced when dependencies are built.
