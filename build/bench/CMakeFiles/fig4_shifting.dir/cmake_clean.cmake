file(REMOVE_RECURSE
  "CMakeFiles/fig4_shifting.dir/fig4_shifting.cc.o"
  "CMakeFiles/fig4_shifting.dir/fig4_shifting.cc.o.d"
  "fig4_shifting"
  "fig4_shifting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_shifting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
