# Empty dependencies file for validation_costmodel.
# This may be replaced when dependencies are built.
