file(REMOVE_RECURSE
  "CMakeFiles/validation_costmodel.dir/validation_costmodel.cc.o"
  "CMakeFiles/validation_costmodel.dir/validation_costmodel.cc.o.d"
  "validation_costmodel"
  "validation_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
