# Empty compiler generated dependencies file for fig6_noise.
# This may be replaced when dependencies are built.
