file(REMOVE_RECURSE
  "CMakeFiles/fig6_noise.dir/fig6_noise.cc.o"
  "CMakeFiles/fig6_noise.dir/fig6_noise.cc.o.d"
  "fig6_noise"
  "fig6_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
