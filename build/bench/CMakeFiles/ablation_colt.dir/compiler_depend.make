# Empty compiler generated dependencies file for ablation_colt.
# This may be replaced when dependencies are built.
