file(REMOVE_RECURSE
  "CMakeFiles/ablation_colt.dir/ablation_colt.cc.o"
  "CMakeFiles/ablation_colt.dir/ablation_colt.cc.o.d"
  "ablation_colt"
  "ablation_colt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_colt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
