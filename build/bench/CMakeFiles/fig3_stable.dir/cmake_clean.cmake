file(REMOVE_RECURSE
  "CMakeFiles/fig3_stable.dir/fig3_stable.cc.o"
  "CMakeFiles/fig3_stable.dir/fig3_stable.cc.o.d"
  "fig3_stable"
  "fig3_stable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
