# Empty compiler generated dependencies file for fig3_stable.
# This may be replaced when dependencies are built.
