file(REMOVE_RECURSE
  "CMakeFiles/micro_exec.dir/micro_exec.cc.o"
  "CMakeFiles/micro_exec.dir/micro_exec.cc.o.d"
  "micro_exec"
  "micro_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
