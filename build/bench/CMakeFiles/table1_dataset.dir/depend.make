# Empty dependencies file for table1_dataset.
# This may be replaced when dependencies are built.
