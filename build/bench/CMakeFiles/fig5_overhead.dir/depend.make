# Empty dependencies file for fig5_overhead.
# This may be replaced when dependencies are built.
