file(REMOVE_RECURSE
  "CMakeFiles/fig5_overhead.dir/fig5_overhead.cc.o"
  "CMakeFiles/fig5_overhead.dir/fig5_overhead.cc.o.d"
  "fig5_overhead"
  "fig5_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
