# Empty dependencies file for ablation_interaction.
# This may be replaced when dependencies are built.
