file(REMOVE_RECURSE
  "CMakeFiles/ablation_interaction.dir/ablation_interaction.cc.o"
  "CMakeFiles/ablation_interaction.dir/ablation_interaction.cc.o.d"
  "ablation_interaction"
  "ablation_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
