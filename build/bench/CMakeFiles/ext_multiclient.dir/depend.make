# Empty dependencies file for ext_multiclient.
# This may be replaced when dependencies are built.
