file(REMOVE_RECURSE
  "CMakeFiles/ext_multiclient.dir/ext_multiclient.cc.o"
  "CMakeFiles/ext_multiclient.dir/ext_multiclient.cc.o.d"
  "ext_multiclient"
  "ext_multiclient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multiclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
