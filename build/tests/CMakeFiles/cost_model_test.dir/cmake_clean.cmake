file(REMOVE_RECURSE
  "CMakeFiles/cost_model_test.dir/cost_model_test.cc.o"
  "CMakeFiles/cost_model_test.dir/cost_model_test.cc.o.d"
  "cost_model_test"
  "cost_model_test.pdb"
  "cost_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
