# Empty compiler generated dependencies file for reactive_tuner_test.
# This may be replaced when dependencies are built.
