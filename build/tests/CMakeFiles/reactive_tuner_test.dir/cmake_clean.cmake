file(REMOVE_RECURSE
  "CMakeFiles/reactive_tuner_test.dir/reactive_tuner_test.cc.o"
  "CMakeFiles/reactive_tuner_test.dir/reactive_tuner_test.cc.o.d"
  "reactive_tuner_test"
  "reactive_tuner_test.pdb"
  "reactive_tuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reactive_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
