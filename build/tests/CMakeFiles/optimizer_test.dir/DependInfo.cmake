
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/optimizer_test.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/optimizer_test.dir/optimizer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/colt_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/colt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/colt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/colt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/colt_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/colt_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/colt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/colt_index.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/colt_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/colt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
