file(REMOVE_RECURSE
  "CMakeFiles/offline_tuner_test.dir/offline_tuner_test.cc.o"
  "CMakeFiles/offline_tuner_test.dir/offline_tuner_test.cc.o.d"
  "offline_tuner_test"
  "offline_tuner_test.pdb"
  "offline_tuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
