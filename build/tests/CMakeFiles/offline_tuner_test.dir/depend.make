# Empty dependencies file for offline_tuner_test.
# This may be replaced when dependencies are built.
