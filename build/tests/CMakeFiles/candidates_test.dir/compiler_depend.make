# Empty compiler generated dependencies file for candidates_test.
# This may be replaced when dependencies are built.
