file(REMOVE_RECURSE
  "CMakeFiles/candidates_test.dir/candidates_test.cc.o"
  "CMakeFiles/candidates_test.dir/candidates_test.cc.o.d"
  "candidates_test"
  "candidates_test.pdb"
  "candidates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
