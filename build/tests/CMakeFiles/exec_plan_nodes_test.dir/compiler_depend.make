# Empty compiler generated dependencies file for exec_plan_nodes_test.
# This may be replaced when dependencies are built.
