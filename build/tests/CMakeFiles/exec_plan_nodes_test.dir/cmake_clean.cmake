file(REMOVE_RECURSE
  "CMakeFiles/exec_plan_nodes_test.dir/exec_plan_nodes_test.cc.o"
  "CMakeFiles/exec_plan_nodes_test.dir/exec_plan_nodes_test.cc.o.d"
  "exec_plan_nodes_test"
  "exec_plan_nodes_test.pdb"
  "exec_plan_nodes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_plan_nodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
