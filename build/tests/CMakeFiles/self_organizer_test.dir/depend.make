# Empty dependencies file for self_organizer_test.
# This may be replaced when dependencies are built.
