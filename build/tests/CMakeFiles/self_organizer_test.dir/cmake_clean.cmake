file(REMOVE_RECURSE
  "CMakeFiles/self_organizer_test.dir/self_organizer_test.cc.o"
  "CMakeFiles/self_organizer_test.dir/self_organizer_test.cc.o.d"
  "self_organizer_test"
  "self_organizer_test.pdb"
  "self_organizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_organizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
