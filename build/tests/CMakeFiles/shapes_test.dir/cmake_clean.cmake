file(REMOVE_RECURSE
  "CMakeFiles/shapes_test.dir/shapes_test.cc.o"
  "CMakeFiles/shapes_test.dir/shapes_test.cc.o.d"
  "shapes_test"
  "shapes_test.pdb"
  "shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
