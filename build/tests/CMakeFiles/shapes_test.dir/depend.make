# Empty dependencies file for shapes_test.
# This may be replaced when dependencies are built.
