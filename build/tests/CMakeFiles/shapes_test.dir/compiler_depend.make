# Empty compiler generated dependencies file for shapes_test.
# This may be replaced when dependencies are built.
