file(REMOVE_RECURSE
  "CMakeFiles/knapsack_test.dir/knapsack_test.cc.o"
  "CMakeFiles/knapsack_test.dir/knapsack_test.cc.o.d"
  "knapsack_test"
  "knapsack_test.pdb"
  "knapsack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knapsack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
