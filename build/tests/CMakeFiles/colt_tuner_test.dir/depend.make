# Empty dependencies file for colt_tuner_test.
# This may be replaced when dependencies are built.
