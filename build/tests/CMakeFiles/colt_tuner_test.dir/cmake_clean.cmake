file(REMOVE_RECURSE
  "CMakeFiles/colt_tuner_test.dir/colt_tuner_test.cc.o"
  "CMakeFiles/colt_tuner_test.dir/colt_tuner_test.cc.o.d"
  "colt_tuner_test"
  "colt_tuner_test.pdb"
  "colt_tuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
