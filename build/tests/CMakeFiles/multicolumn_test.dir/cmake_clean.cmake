file(REMOVE_RECURSE
  "CMakeFiles/multicolumn_test.dir/multicolumn_test.cc.o"
  "CMakeFiles/multicolumn_test.dir/multicolumn_test.cc.o.d"
  "multicolumn_test"
  "multicolumn_test.pdb"
  "multicolumn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicolumn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
