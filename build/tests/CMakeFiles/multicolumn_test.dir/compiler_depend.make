# Empty compiler generated dependencies file for multicolumn_test.
# This may be replaced when dependencies are built.
