# Empty compiler generated dependencies file for clustering_test.
# This may be replaced when dependencies are built.
