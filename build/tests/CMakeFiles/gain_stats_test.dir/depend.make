# Empty dependencies file for gain_stats_test.
# This may be replaced when dependencies are built.
