file(REMOVE_RECURSE
  "CMakeFiles/gain_stats_test.dir/gain_stats_test.cc.o"
  "CMakeFiles/gain_stats_test.dir/gain_stats_test.cc.o.d"
  "gain_stats_test"
  "gain_stats_test.pdb"
  "gain_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gain_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
