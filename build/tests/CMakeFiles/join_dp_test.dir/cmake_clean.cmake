file(REMOVE_RECURSE
  "CMakeFiles/join_dp_test.dir/join_dp_test.cc.o"
  "CMakeFiles/join_dp_test.dir/join_dp_test.cc.o.d"
  "join_dp_test"
  "join_dp_test.pdb"
  "join_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
