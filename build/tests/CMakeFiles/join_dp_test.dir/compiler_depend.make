# Empty compiler generated dependencies file for join_dp_test.
# This may be replaced when dependencies are built.
