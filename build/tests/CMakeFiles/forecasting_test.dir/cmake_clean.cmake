file(REMOVE_RECURSE
  "CMakeFiles/forecasting_test.dir/forecasting_test.cc.o"
  "CMakeFiles/forecasting_test.dir/forecasting_test.cc.o.d"
  "forecasting_test"
  "forecasting_test.pdb"
  "forecasting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecasting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
