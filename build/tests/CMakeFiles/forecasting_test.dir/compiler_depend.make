# Empty compiler generated dependencies file for forecasting_test.
# This may be replaced when dependencies are built.
