# Empty compiler generated dependencies file for noisy_workload.
# This may be replaced when dependencies are built.
