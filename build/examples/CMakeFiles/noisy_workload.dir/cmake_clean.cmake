file(REMOVE_RECURSE
  "CMakeFiles/noisy_workload.dir/noisy_workload.cpp.o"
  "CMakeFiles/noisy_workload.dir/noisy_workload.cpp.o.d"
  "noisy_workload"
  "noisy_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
