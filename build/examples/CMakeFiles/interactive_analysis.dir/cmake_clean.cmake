file(REMOVE_RECURSE
  "CMakeFiles/interactive_analysis.dir/interactive_analysis.cpp.o"
  "CMakeFiles/interactive_analysis.dir/interactive_analysis.cpp.o.d"
  "interactive_analysis"
  "interactive_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
