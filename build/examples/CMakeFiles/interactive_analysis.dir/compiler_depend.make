# Empty compiler generated dependencies file for interactive_analysis.
# This may be replaced when dependencies are built.
