# Empty dependencies file for interactive_analysis.
# This may be replaced when dependencies are built.
