# Empty dependencies file for selftuning_server.
# This may be replaced when dependencies are built.
