file(REMOVE_RECURSE
  "CMakeFiles/selftuning_server.dir/selftuning_server.cpp.o"
  "CMakeFiles/selftuning_server.dir/selftuning_server.cpp.o.d"
  "selftuning_server"
  "selftuning_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selftuning_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
