# Empty compiler generated dependencies file for colt_shell.
# This may be replaced when dependencies are built.
