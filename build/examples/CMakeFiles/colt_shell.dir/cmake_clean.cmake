file(REMOVE_RECURSE
  "CMakeFiles/colt_shell.dir/colt_shell.cpp.o"
  "CMakeFiles/colt_shell.dir/colt_shell.cpp.o.d"
  "colt_shell"
  "colt_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
