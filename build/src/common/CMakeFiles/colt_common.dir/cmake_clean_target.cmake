file(REMOVE_RECURSE
  "libcolt_common.a"
)
