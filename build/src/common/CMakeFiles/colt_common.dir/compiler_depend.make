# Empty compiler generated dependencies file for colt_common.
# This may be replaced when dependencies are built.
