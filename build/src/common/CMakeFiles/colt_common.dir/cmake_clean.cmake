file(REMOVE_RECURSE
  "CMakeFiles/colt_common.dir/logging.cc.o"
  "CMakeFiles/colt_common.dir/logging.cc.o.d"
  "CMakeFiles/colt_common.dir/stats.cc.o"
  "CMakeFiles/colt_common.dir/stats.cc.o.d"
  "CMakeFiles/colt_common.dir/status.cc.o"
  "CMakeFiles/colt_common.dir/status.cc.o.d"
  "libcolt_common.a"
  "libcolt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
