file(REMOVE_RECURSE
  "libcolt_baseline.a"
)
