
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/offline_tuner.cc" "src/baseline/CMakeFiles/colt_baseline.dir/offline_tuner.cc.o" "gcc" "src/baseline/CMakeFiles/colt_baseline.dir/offline_tuner.cc.o.d"
  "/root/repo/src/baseline/reactive_tuner.cc" "src/baseline/CMakeFiles/colt_baseline.dir/reactive_tuner.cc.o" "gcc" "src/baseline/CMakeFiles/colt_baseline.dir/reactive_tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/colt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/colt_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/colt_query.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/colt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/colt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/colt_index.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/colt_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
