# Empty compiler generated dependencies file for colt_baseline.
# This may be replaced when dependencies are built.
