file(REMOVE_RECURSE
  "CMakeFiles/colt_baseline.dir/offline_tuner.cc.o"
  "CMakeFiles/colt_baseline.dir/offline_tuner.cc.o.d"
  "CMakeFiles/colt_baseline.dir/reactive_tuner.cc.o"
  "CMakeFiles/colt_baseline.dir/reactive_tuner.cc.o.d"
  "libcolt_baseline.a"
  "libcolt_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
