file(REMOVE_RECURSE
  "CMakeFiles/colt_storage.dir/database.cc.o"
  "CMakeFiles/colt_storage.dir/database.cc.o.d"
  "CMakeFiles/colt_storage.dir/table_data.cc.o"
  "CMakeFiles/colt_storage.dir/table_data.cc.o.d"
  "CMakeFiles/colt_storage.dir/tpch_schema.cc.o"
  "CMakeFiles/colt_storage.dir/tpch_schema.cc.o.d"
  "libcolt_storage.a"
  "libcolt_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
