
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/database.cc" "src/storage/CMakeFiles/colt_storage.dir/database.cc.o" "gcc" "src/storage/CMakeFiles/colt_storage.dir/database.cc.o.d"
  "/root/repo/src/storage/table_data.cc" "src/storage/CMakeFiles/colt_storage.dir/table_data.cc.o" "gcc" "src/storage/CMakeFiles/colt_storage.dir/table_data.cc.o.d"
  "/root/repo/src/storage/tpch_schema.cc" "src/storage/CMakeFiles/colt_storage.dir/tpch_schema.cc.o" "gcc" "src/storage/CMakeFiles/colt_storage.dir/tpch_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/colt_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/colt_index.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/colt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
