# Empty compiler generated dependencies file for colt_storage.
# This may be replaced when dependencies are built.
