file(REMOVE_RECURSE
  "libcolt_storage.a"
)
