file(REMOVE_RECURSE
  "libcolt_harness.a"
)
