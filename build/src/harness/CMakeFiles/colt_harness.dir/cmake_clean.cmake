file(REMOVE_RECURSE
  "CMakeFiles/colt_harness.dir/experiment.cc.o"
  "CMakeFiles/colt_harness.dir/experiment.cc.o.d"
  "CMakeFiles/colt_harness.dir/report.cc.o"
  "CMakeFiles/colt_harness.dir/report.cc.o.d"
  "CMakeFiles/colt_harness.dir/timeline.cc.o"
  "CMakeFiles/colt_harness.dir/timeline.cc.o.d"
  "CMakeFiles/colt_harness.dir/workloads.cc.o"
  "CMakeFiles/colt_harness.dir/workloads.cc.o.d"
  "libcolt_harness.a"
  "libcolt_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
