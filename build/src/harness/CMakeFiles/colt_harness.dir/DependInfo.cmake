
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cc" "src/harness/CMakeFiles/colt_harness.dir/experiment.cc.o" "gcc" "src/harness/CMakeFiles/colt_harness.dir/experiment.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/harness/CMakeFiles/colt_harness.dir/report.cc.o" "gcc" "src/harness/CMakeFiles/colt_harness.dir/report.cc.o.d"
  "/root/repo/src/harness/timeline.cc" "src/harness/CMakeFiles/colt_harness.dir/timeline.cc.o" "gcc" "src/harness/CMakeFiles/colt_harness.dir/timeline.cc.o.d"
  "/root/repo/src/harness/workloads.cc" "src/harness/CMakeFiles/colt_harness.dir/workloads.cc.o" "gcc" "src/harness/CMakeFiles/colt_harness.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/colt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/colt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/colt_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/colt_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/colt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/colt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/colt_index.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/colt_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
