# Empty compiler generated dependencies file for colt_harness.
# This may be replaced when dependencies are built.
