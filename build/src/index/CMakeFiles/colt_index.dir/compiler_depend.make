# Empty compiler generated dependencies file for colt_index.
# This may be replaced when dependencies are built.
