file(REMOVE_RECURSE
  "CMakeFiles/colt_index.dir/btree.cc.o"
  "CMakeFiles/colt_index.dir/btree.cc.o.d"
  "libcolt_index.a"
  "libcolt_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
