file(REMOVE_RECURSE
  "libcolt_index.a"
)
