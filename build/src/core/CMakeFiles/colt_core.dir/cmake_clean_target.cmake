file(REMOVE_RECURSE
  "libcolt_core.a"
)
