
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidates.cc" "src/core/CMakeFiles/colt_core.dir/candidates.cc.o" "gcc" "src/core/CMakeFiles/colt_core.dir/candidates.cc.o.d"
  "/root/repo/src/core/clustering.cc" "src/core/CMakeFiles/colt_core.dir/clustering.cc.o" "gcc" "src/core/CMakeFiles/colt_core.dir/clustering.cc.o.d"
  "/root/repo/src/core/colt.cc" "src/core/CMakeFiles/colt_core.dir/colt.cc.o" "gcc" "src/core/CMakeFiles/colt_core.dir/colt.cc.o.d"
  "/root/repo/src/core/forecasting.cc" "src/core/CMakeFiles/colt_core.dir/forecasting.cc.o" "gcc" "src/core/CMakeFiles/colt_core.dir/forecasting.cc.o.d"
  "/root/repo/src/core/gain_stats.cc" "src/core/CMakeFiles/colt_core.dir/gain_stats.cc.o" "gcc" "src/core/CMakeFiles/colt_core.dir/gain_stats.cc.o.d"
  "/root/repo/src/core/knapsack.cc" "src/core/CMakeFiles/colt_core.dir/knapsack.cc.o" "gcc" "src/core/CMakeFiles/colt_core.dir/knapsack.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/colt_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/colt_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/colt_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/colt_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/self_organizer.cc" "src/core/CMakeFiles/colt_core.dir/self_organizer.cc.o" "gcc" "src/core/CMakeFiles/colt_core.dir/self_organizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/colt_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/colt_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/colt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/colt_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/colt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/colt_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
