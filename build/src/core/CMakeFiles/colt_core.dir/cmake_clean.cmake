file(REMOVE_RECURSE
  "CMakeFiles/colt_core.dir/candidates.cc.o"
  "CMakeFiles/colt_core.dir/candidates.cc.o.d"
  "CMakeFiles/colt_core.dir/clustering.cc.o"
  "CMakeFiles/colt_core.dir/clustering.cc.o.d"
  "CMakeFiles/colt_core.dir/colt.cc.o"
  "CMakeFiles/colt_core.dir/colt.cc.o.d"
  "CMakeFiles/colt_core.dir/forecasting.cc.o"
  "CMakeFiles/colt_core.dir/forecasting.cc.o.d"
  "CMakeFiles/colt_core.dir/gain_stats.cc.o"
  "CMakeFiles/colt_core.dir/gain_stats.cc.o.d"
  "CMakeFiles/colt_core.dir/knapsack.cc.o"
  "CMakeFiles/colt_core.dir/knapsack.cc.o.d"
  "CMakeFiles/colt_core.dir/profiler.cc.o"
  "CMakeFiles/colt_core.dir/profiler.cc.o.d"
  "CMakeFiles/colt_core.dir/scheduler.cc.o"
  "CMakeFiles/colt_core.dir/scheduler.cc.o.d"
  "CMakeFiles/colt_core.dir/self_organizer.cc.o"
  "CMakeFiles/colt_core.dir/self_organizer.cc.o.d"
  "libcolt_core.a"
  "libcolt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
