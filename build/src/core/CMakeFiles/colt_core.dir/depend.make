# Empty dependencies file for colt_core.
# This may be replaced when dependencies are built.
