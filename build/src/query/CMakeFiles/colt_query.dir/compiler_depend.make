# Empty compiler generated dependencies file for colt_query.
# This may be replaced when dependencies are built.
