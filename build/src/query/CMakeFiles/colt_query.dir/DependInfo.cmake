
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/colt_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/colt_query.dir/parser.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/colt_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/colt_query.dir/query.cc.o.d"
  "/root/repo/src/query/trace.cc" "src/query/CMakeFiles/colt_query.dir/trace.cc.o" "gcc" "src/query/CMakeFiles/colt_query.dir/trace.cc.o.d"
  "/root/repo/src/query/workload.cc" "src/query/CMakeFiles/colt_query.dir/workload.cc.o" "gcc" "src/query/CMakeFiles/colt_query.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/colt_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/colt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
