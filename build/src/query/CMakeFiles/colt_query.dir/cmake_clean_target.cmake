file(REMOVE_RECURSE
  "libcolt_query.a"
)
