file(REMOVE_RECURSE
  "CMakeFiles/colt_query.dir/parser.cc.o"
  "CMakeFiles/colt_query.dir/parser.cc.o.d"
  "CMakeFiles/colt_query.dir/query.cc.o"
  "CMakeFiles/colt_query.dir/query.cc.o.d"
  "CMakeFiles/colt_query.dir/trace.cc.o"
  "CMakeFiles/colt_query.dir/trace.cc.o.d"
  "CMakeFiles/colt_query.dir/workload.cc.o"
  "CMakeFiles/colt_query.dir/workload.cc.o.d"
  "libcolt_query.a"
  "libcolt_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
