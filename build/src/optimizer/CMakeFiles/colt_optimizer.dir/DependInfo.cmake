
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/cost_model.cc" "src/optimizer/CMakeFiles/colt_optimizer.dir/cost_model.cc.o" "gcc" "src/optimizer/CMakeFiles/colt_optimizer.dir/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/optimizer/CMakeFiles/colt_optimizer.dir/optimizer.cc.o" "gcc" "src/optimizer/CMakeFiles/colt_optimizer.dir/optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan.cc" "src/optimizer/CMakeFiles/colt_optimizer.dir/plan.cc.o" "gcc" "src/optimizer/CMakeFiles/colt_optimizer.dir/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/colt_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/colt_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/colt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
