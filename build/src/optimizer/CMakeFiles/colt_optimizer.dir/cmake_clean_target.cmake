file(REMOVE_RECURSE
  "libcolt_optimizer.a"
)
