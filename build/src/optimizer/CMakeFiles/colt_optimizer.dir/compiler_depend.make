# Empty compiler generated dependencies file for colt_optimizer.
# This may be replaced when dependencies are built.
