file(REMOVE_RECURSE
  "CMakeFiles/colt_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/colt_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/colt_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/colt_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/colt_optimizer.dir/plan.cc.o"
  "CMakeFiles/colt_optimizer.dir/plan.cc.o.d"
  "libcolt_optimizer.a"
  "libcolt_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
