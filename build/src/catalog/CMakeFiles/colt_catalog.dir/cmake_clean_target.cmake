file(REMOVE_RECURSE
  "libcolt_catalog.a"
)
