file(REMOVE_RECURSE
  "CMakeFiles/colt_catalog.dir/catalog.cc.o"
  "CMakeFiles/colt_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/colt_catalog.dir/column_stats.cc.o"
  "CMakeFiles/colt_catalog.dir/column_stats.cc.o.d"
  "libcolt_catalog.a"
  "libcolt_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
