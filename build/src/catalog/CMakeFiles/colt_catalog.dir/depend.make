# Empty dependencies file for colt_catalog.
# This may be replaced when dependencies are built.
