# Empty compiler generated dependencies file for colt_exec.
# This may be replaced when dependencies are built.
