
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/colt_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/colt_exec.dir/executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/optimizer/CMakeFiles/colt_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/colt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/colt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/colt_query.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/colt_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/colt_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
