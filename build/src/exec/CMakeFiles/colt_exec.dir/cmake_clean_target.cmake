file(REMOVE_RECURSE
  "libcolt_exec.a"
)
