file(REMOVE_RECURSE
  "CMakeFiles/colt_exec.dir/executor.cc.o"
  "CMakeFiles/colt_exec.dir/executor.cc.o.d"
  "libcolt_exec.a"
  "libcolt_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colt_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
