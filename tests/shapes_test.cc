/// Regression tests for the paper-reproduction *shapes* (EXPERIMENTS.md):
/// each experiment's qualitative claim is asserted at full experiment scale
/// (the simulator is fast enough to run them all inside ctest).
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

namespace colt {
namespace {

class ShapesTest : public ::testing::Test {
 protected:
  ShapesTest() : catalog_(MakeTpchCatalog()) {}

  int64_t BudgetFor(const std::vector<Query>& sample) {
    QueryOptimizer probe(&catalog_);
    OfflineTuner miner(&catalog_, &probe);
    auto relevant = miner.MineRelevantIndexes(sample);
    EXPECT_TRUE(relevant.ok());
    return BudgetForIndexes(catalog_, relevant.value(), 4.0);
  }

  Catalog catalog_;
};

TEST_F(ShapesTest, Fig3StableWorkloadConvergesToOffline) {
  const QueryDistribution dist = ExperimentWorkloads::Focused(&catalog_, 0);
  WorkloadGenerator gen(&catalog_, 1234);
  std::vector<Query> workload;
  for (int i = 0; i < 500; ++i) workload.push_back(gen.Sample(dist));
  const int64_t budget = BudgetFor(workload);

  ColtConfig config;
  config.storage_budget_bytes = budget;
  const ColtRunResult colt_run = RunColtWorkload(&catalog_, workload, config);
  auto offline = RunOfflineWorkload(&catalog_, workload, workload, budget);
  ASSERT_TRUE(offline.ok());

  // Paper: after query 100, COLT within ~1% of OFFLINE. We allow 12%:
  // our substrate's bitmap scans create more viable configurations, so
  // corrective swaps extend to ~query 300 (see EXPERIMENTS.md).
  double colt_tail = 0, off_tail = 0;
  for (int i = 100; i < 500; ++i) {
    colt_tail += colt_run.per_query[i].total();
    off_tail += offline->per_query_seconds[i];
  }
  EXPECT_LT(colt_tail, off_tail * 1.12);
  // ... and the last 150 queries are genuinely converged.
  double colt_end = 0, off_end = 0;
  for (int i = 350; i < 500; ++i) {
    colt_end += colt_run.per_query[i].total();
    off_end += offline->per_query_seconds[i];
  }
  EXPECT_LT(colt_end, off_end * 1.05);
  // ... and the early overhead exists: bucket 1 is meaningfully slower.
  double colt_head = 0, off_head = 0;
  for (int i = 0; i < 50; ++i) {
    colt_head += colt_run.per_query[i].total();
    off_head += offline->per_query_seconds[i];
  }
  EXPECT_GT(colt_head, off_head * 1.10);
}

TEST_F(ShapesTest, Fig4ShiftingWorkloadColtBeatsOffline) {
  const auto dists = ExperimentWorkloads::ShiftingPhases(&catalog_);
  std::vector<WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, 300});
  WorkloadGenerator gen(&catalog_, 99);
  std::vector<int> phase_of_query;
  const std::vector<Query> workload =
      GeneratePhasedWorkload(gen, phases, 50, &phase_of_query);

  WorkloadGenerator sample_gen(&catalog_, 1234);
  std::vector<Query> sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 200; ++i) sample.push_back(sample_gen.Sample(d));
  }
  const int64_t budget = BudgetFor(sample);

  ColtConfig config;
  config.storage_budget_bytes = budget;
  const ColtRunResult colt_run = RunColtWorkload(&catalog_, workload, config);
  auto offline = RunOfflineWorkload(&catalog_, workload, workload, budget);
  ASSERT_TRUE(offline.ok());

  // Paper: 33% overall reduction. Assert COLT wins by at least 10%.
  EXPECT_LT(colt_run.total_seconds(), offline->total_seconds * 0.90);

  // And COLT wins every post-warm-up phase (2-4).
  double colt_phase[4] = {0, 0, 0, 0}, off_phase[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < workload.size(); ++i) {
    colt_phase[phase_of_query[i]] += colt_run.per_query[i].total();
    off_phase[phase_of_query[i]] += offline->per_query_seconds[i];
  }
  for (int p = 1; p < 4; ++p) {
    EXPECT_LT(colt_phase[p], off_phase[p]) << "phase " << p + 1;
  }
}

TEST_F(ShapesTest, Fig5OverheadSelfRegulates) {
  const auto dists = ExperimentWorkloads::ShiftingPhases(&catalog_);
  std::vector<WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, 300});
  WorkloadGenerator gen(&catalog_, 99);
  const std::vector<Query> workload = GeneratePhasedWorkload(gen, phases, 50);

  WorkloadGenerator sample_gen(&catalog_, 1234);
  std::vector<Query> sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 200; ++i) sample.push_back(sample_gen.Sample(d));
  }
  ColtConfig config;
  config.storage_budget_bytes = BudgetFor(sample);
  const ColtRunResult run = RunColtWorkload(&catalog_, workload, config);

  // Budget respected everywhere; average use far below the cap.
  int64_t total_calls = 0;
  for (const auto& e : run.epochs) {
    EXPECT_LE(e.whatif_used, config.max_whatif_per_epoch);
    total_calls += e.whatif_used;
  }
  const double avg =
      static_cast<double>(total_calls) / static_cast<double>(run.epochs.size());
  EXPECT_LT(avg, config.max_whatif_per_epoch / 2.0);

  // Profiling activity concentrates near transitions: the 6 epochs after
  // each phase change average more calls than the stable mid-phase epochs.
  auto epoch_calls = [&](int epoch) {
    return (epoch >= 0 && epoch < static_cast<int>(run.epochs.size()))
               ? run.epochs[epoch].whatif_used
               : 0;
  };
  double transition_calls = 0, stable_calls = 0;
  int transition_n = 0, stable_n = 0;
  for (int t : {30, 65, 100}) {  // first epochs of each transition
    for (int e = t; e < t + 6; ++e) {
      transition_calls += epoch_calls(e);
      ++transition_n;
    }
  }
  for (int m : {20, 55, 90, 125}) {  // deep inside each phase
    for (int e = m; e < m + 6; ++e) {
      stable_calls += epoch_calls(e);
      ++stable_n;
    }
  }
  EXPECT_GT(transition_calls / transition_n, stable_calls / stable_n);
}

TEST_F(ShapesTest, Fig6NoiseUShapeEndpoints) {
  const QueryDistribution q1 = ExperimentWorkloads::NoiseBase(&catalog_);
  const QueryDistribution q2 = ExperimentWorkloads::NoiseBurst(&catalog_);
  WorkloadGenerator sample_gen(&catalog_, 1234);
  std::vector<Query> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(sample_gen.Sample(q1));
  const int64_t budget = BudgetFor(sample);

  auto ratio_for_burst = [&](int burst) {
    double colt_total = 0, off_total = 0;
    for (int s = 0; s < 3; ++s) {
      WorkloadGenerator gen(&catalog_, 555 + burst + 7919 * s);
      std::vector<bool> is_noise;
      const std::vector<Query> workload = GenerateNoisyWorkload(
          gen, q1, q2, 500, 100, burst, 0.20, 2, &is_noise);
      ColtConfig config;
      config.storage_budget_bytes = budget;
      const ColtRunResult run =
          RunColtWorkload(&catalog_, workload, config, {}, 7 + s);
      std::vector<Query> q1_only;
      for (size_t i = 0; i < workload.size(); ++i) {
        if (!is_noise[i]) q1_only.push_back(workload[i]);
      }
      auto offline = RunOfflineWorkload(&catalog_, workload, q1_only, budget);
      EXPECT_TRUE(offline.ok());
      for (size_t i = 100; i < workload.size(); ++i) {
        colt_total += run.per_query[i].total();
        off_total += offline->per_query_seconds[i];
      }
    }
    return colt_total / off_total;
  };

  const double short_burst = ratio_for_burst(20);
  const double mid_burst = ratio_for_burst(50);
  const double long_burst = ratio_for_burst(90);
  // U-shape: both endpoints beat the middle; nothing catastrophic anywhere.
  EXPECT_LT(short_burst, mid_burst);
  EXPECT_LT(long_burst, mid_burst);
  EXPECT_LT(mid_burst, 1.35);
  EXPECT_LT(short_burst, 1.15);
  EXPECT_LT(long_burst, 1.15);
}

TEST_F(ShapesTest, Table1CharacteristicsExact) {
  EXPECT_EQ(catalog_.table_count(), 32);
  EXPECT_EQ(catalog_.total_rows(), 6'928'120);
  EXPECT_EQ(catalog_.total_indexable_columns(), 244);
}

}  // namespace
}  // namespace colt
