#include "exec/executor.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

/// Brute-force evaluation of an SPJ query against materialized data.
/// Supports 1 or 2 tables (hash join on the first join predicate).
int64_t BruteForceCount(const Database& db, const Query& q) {
  std::vector<std::vector<RowId>> per_table;
  for (TableId t : q.tables()) {
    std::vector<RowId> rows;
    const TableData& data = db.data(t);
    for (RowId r = 0; r < data.row_count(); ++r) {
      bool pass = true;
      for (const auto& pred : q.SelectionsOn(t)) {
        if (!pred.Matches(data.value(pred.column.column, r))) {
          pass = false;
          break;
        }
      }
      if (pass) rows.push_back(r);
    }
    per_table.push_back(std::move(rows));
  }
  if (q.tables().size() == 1) {
    return static_cast<int64_t>(per_table[0].size());
  }
  EXPECT_EQ(q.tables().size(), 2u);
  EXPECT_EQ(q.joins().size(), 1u);
  const JoinPredicate& j = q.joins()[0];
  const size_t left_pos = (q.tables()[0] == j.left.table) ? 0 : 1;
  const size_t right_pos = 1 - left_pos;
  std::unordered_map<int64_t, int64_t> left_counts;
  for (RowId r : per_table[left_pos]) {
    ++left_counts[db.data(j.left.table).value(j.left.column, r)];
  }
  int64_t count = 0;
  for (RowId r : per_table[right_pos]) {
    auto it = left_counts.find(
        db.data(j.right.table).value(j.right.column, r));
    if (it != left_counts.end()) count += it->second;
  }
  return count;
}

/// Small physical database with all indexes built.
class ExecutorTest : public ::testing::Test {
 public:
  static Catalog MakeSmallCatalog();

 protected:
  ExecutorTest() : db_(MakeSmallCatalog(), 77) {
    EXPECT_TRUE(db_.MaterializeAll(/*refresh_stats=*/true).ok());
    for (const char* col : {"b_key", "b_val", "b_cat"}) {
      ids_.push_back(
          db_.mutable_catalog().IndexOn(Ref(db_.catalog(), "big", col))->id);
    }
    for (const char* col : {"s_ref", "s_val"}) {
      ids_.push_back(db_.mutable_catalog()
                         .IndexOn(Ref(db_.catalog(), "small", col))
                         ->id);
    }
    for (IndexId id : ids_) EXPECT_TRUE(db_.BuildIndex(id).ok());
  }

  IndexConfiguration AllIndexes() const {
    IndexConfiguration config;
    for (IndexId id : ids_) config.Add(id);
    return config;
  }

  Database db_;
  std::vector<IndexId> ids_;
};

Catalog ExecutorTest::MakeSmallCatalog() {
  Catalog catalog;
  catalog.AddTable(TableSchema(
      "big",
      {
          {"b_id", ColumnType::kInt64, 8, 50'000, true},
          {"b_key", ColumnType::kInt64, 8, 2'000, true},
          {"b_val", ColumnType::kInt64, 8, 100, true},
          {"b_cat", ColumnType::kInt64, 4, 10, true},
      },
      50'000));
  catalog.AddTable(TableSchema(
      "small",
      {
          {"s_id", ColumnType::kInt64, 8, 500, true},
          {"s_ref", ColumnType::kInt64, 8, 2'000, true},
          {"s_val", ColumnType::kInt64, 8, 100, true},
      },
      500));
  return catalog;
}

TEST_F(ExecutorTest, SeqScanCountsMatchBruteForce) {
  QueryOptimizer optimizer(&db_.catalog());
  Executor executor(&db_);
  const Query q = MakeRangeQuery(db_.catalog(), "big", "b_key", 10, 30);
  const PlanResult plan = optimizer.Optimize(q, {});
  auto result = executor.Execute(*plan.plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output_rows, BruteForceCount(db_, q));
  EXPECT_GT(result->pages_seq, 0);
  EXPECT_EQ(result->pages_random, 0);
}

TEST_F(ExecutorTest, IndexScanEqualsSeqScanResults) {
  QueryOptimizer optimizer(&db_.catalog());
  Executor executor(&db_);
  const Query q = MakeRangeQuery(db_.catalog(), "big", "b_key", 5, 6);
  const PlanResult without = optimizer.Optimize(q, {});
  const PlanResult with = optimizer.Optimize(q, AllIndexes());
  ASSERT_TRUE(with.plan->type == PlanNodeType::kIndexScan ||
              with.plan->type == PlanNodeType::kBitmapScan);
  auto r1 = executor.Execute(*without.plan);
  auto r2 = executor.Execute(*with.plan);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->output_rows, r2->output_rows);
  // The index plan reads fewer heap pages than a full scan.
  EXPECT_LT(r2->pages_random + r2->pages_seq, r1->pages_seq);
  EXPECT_GT(r2->pages_index, 0);
}


TEST_F(ExecutorTest, BitmapScanMatchesSeqScanResults) {
  QueryOptimizer optimizer(&db_.catalog());
  Executor executor(&db_);
  // Mid selectivity: ~5% of b_key values.
  const Query q = MakeRangeQuery(db_.catalog(), "big", "b_key", 0, 99);
  const PlanResult with = optimizer.Optimize(q, AllIndexes());
  ASSERT_EQ(with.plan->type, PlanNodeType::kBitmapScan);
  const PlanResult without = optimizer.Optimize(q, {});
  auto r1 = executor.Execute(*without.plan);
  auto r2 = executor.Execute(*with.plan);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->output_rows, r2->output_rows);
  EXPECT_GT(r2->pages_bitmap, 0);
  EXPECT_EQ(r2->pages_random, 0);
}

TEST_F(ExecutorTest, ExecuteFailsWithoutBuiltIndex) {
  QueryOptimizer optimizer(&db_.catalog());
  const Query q = MakeRangeQuery(db_.catalog(), "big", "b_key", 5, 6);
  const PlanResult with = optimizer.Optimize(q, AllIndexes());
  ASSERT_TRUE(with.plan->type == PlanNodeType::kIndexScan ||
              with.plan->type == PlanNodeType::kBitmapScan);
  db_.DropIndex(with.plan->index_id);
  Executor executor(&db_);
  EXPECT_FALSE(executor.Execute(*with.plan).ok());
  EXPECT_TRUE(db_.BuildIndex(with.plan->index_id).ok());
}

/// Property: every plan shape (with/without indexes, different join
/// methods) returns exactly the brute-force row count.
class ExecutorDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorDifferentialTest, AllPlansMatchBruteForce) {
  // Build a fresh small physical database.
  Catalog catalog = ExecutorTest::MakeSmallCatalog();
  Database db(std::move(catalog), 123);
  ASSERT_TRUE(db.MaterializeAll(/*refresh_stats=*/true).ok());
  std::vector<IndexId> ids;
  for (const char* col : {"b_key", "b_val"}) {
    ids.push_back(
        db.mutable_catalog().IndexOn(Ref(db.catalog(), "big", col))->id);
  }
  ids.push_back(
      db.mutable_catalog().IndexOn(Ref(db.catalog(), "small", "s_ref"))->id);
  for (IndexId id : ids) ASSERT_TRUE(db.BuildIndex(id).ok());

  Rng rng(GetParam() * 17 + 5);
  QueryOptimizer optimizer(&db.catalog());
  Executor executor(&db);
  for (int trial = 0; trial < 10; ++trial) {
    Query q;
    if (rng.NextBool(0.5)) {
      const int64_t lo = rng.NextInRange(0, 150);
      q = MakeRangeQuery(db.catalog(), "big", "b_key", lo,
                         lo + rng.NextInRange(0, 30));
    } else {
      // Join with selective filter on small.
      q = Query({0, 1},
                {JoinPredicate{Ref(db.catalog(), "big", "b_key"),
                               Ref(db.catalog(), "small", "s_ref")}},
                {SelectionPredicate{Ref(db.catalog(), "small", "s_val"),
                                    rng.NextInRange(0, 5),
                                    rng.NextInRange(5, 9)}});
    }
    const int64_t expected = BruteForceCount(db, q);
    for (bool use_indexes : {false, true}) {
      IndexConfiguration config;
      if (use_indexes) {
        for (IndexId id : ids) config.Add(id);
      }
      const PlanResult plan = optimizer.Optimize(q, config);
      auto result = executor.Execute(*plan.plan);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->output_rows, expected)
          << q.ToString(db.catalog()) << "\n"
          << plan.plan->ToString(db.catalog());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorDifferentialTest,
                         ::testing::Range<uint64_t>(0, 8));

TEST_F(ExecutorTest, MeasuredCostWithinFactorOfEstimate) {
  // The cost model's I/O estimates should be within an order of magnitude
  // of the physically measured page counts for scans.
  QueryOptimizer optimizer(&db_.catalog());
  Executor executor(&db_);
  const Query q = MakeRangeQuery(db_.catalog(), "big", "b_key", 0, 1);
  for (bool use_index : {false, true}) {
    const PlanResult plan =
        optimizer.Optimize(q, use_index ? AllIndexes() : IndexConfiguration());
    auto result = executor.Execute(*plan.plan);
    ASSERT_TRUE(result.ok());
    const double measured =
        result->MeasuredCost(optimizer.cost_model().params());
    EXPECT_GT(measured, plan.cost / 10.0);
    EXPECT_LT(measured, plan.cost * 10.0);
  }
}

TEST_F(ExecutorTest, IndexNestedLoopJoinExecutes) {
  QueryOptimizer optimizer(&db_.catalog());
  Executor executor(&db_);
  Query q({0, 1},
          {JoinPredicate{Ref(db_.catalog(), "big", "b_key"),
                         Ref(db_.catalog(), "small", "s_ref")}},
          {SelectionPredicate{Ref(db_.catalog(), "small", "s_val"), 0, 0}});
  const PlanResult plan = optimizer.Optimize(q, AllIndexes());
  ASSERT_EQ(plan.plan->type, PlanNodeType::kIndexNLJoin);
  auto result = executor.Execute(*plan.plan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output_rows, BruteForceCount(db_, q));
}

}  // namespace
}  // namespace colt
