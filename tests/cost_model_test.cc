#include "optimizer/cost_model.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : catalog_(MakeTestCatalog()) {
    auto big = catalog_.IndexOn(Ref(catalog_, "big", "b_key"));
    big_index_ = big.value();
    auto small = catalog_.IndexOn(Ref(catalog_, "small", "s_val"));
    small_index_ = small.value();
  }

  Catalog catalog_;
  CostModel model_;
  IndexDescriptor big_index_;
  IndexDescriptor small_index_;
};

TEST_F(CostModelTest, SeqScanCostIndependentOfSelectivity) {
  const TableSchema& big = catalog_.table(0);
  const CostEstimate a = model_.SeqScan(big, 1, 0.001);
  const CostEstimate b = model_.SeqScan(big, 1, 0.9);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_LT(a.rows, b.rows);
}

TEST_F(CostModelTest, SeqScanScalesWithPredicates) {
  const TableSchema& big = catalog_.table(0);
  EXPECT_LT(model_.SeqScan(big, 0, 0.5).cost,
            model_.SeqScan(big, 3, 0.5).cost);
}

TEST_F(CostModelTest, IndexScanMonotoneInSelectivity) {
  const TableSchema& big = catalog_.table(0);
  double prev = 0.0;
  for (double sel : {0.0001, 0.001, 0.01, 0.1, 0.5, 1.0}) {
    const double cost = model_.IndexScan(big, big_index_, sel, 0).cost;
    EXPECT_GT(cost, prev) << "sel " << sel;
    prev = cost;
  }
}

TEST_F(CostModelTest, IndexBeatsSeqScanOnlyWhenSelective) {
  const TableSchema& big = catalog_.table(0);
  const double seq = model_.SeqScan(big, 1, 0.001).cost;
  EXPECT_LT(model_.IndexScan(big, big_index_, 0.0005, 0).cost, seq);
  EXPECT_GT(model_.IndexScan(big, big_index_, 0.5, 0).cost, seq);
}

TEST_F(CostModelTest, HeapPagesFetchedYaoProperties) {
  // No tuples -> no pages; more tuples -> more pages, capped at all pages.
  EXPECT_DOUBLE_EQ(CostModel::HeapPagesFetched(0, 1000, 100000), 0.0);
  double prev = 0.0;
  for (double k : {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
    const double pages = CostModel::HeapPagesFetched(k, 1000, 100000);
    EXPECT_GE(pages, prev);
    EXPECT_LE(pages, 1000.0);
    prev = pages;
  }
  // Fetching every tuple touches ~every page.
  EXPECT_GT(CostModel::HeapPagesFetched(100000, 1000, 100000), 990.0);
  // Fetching one tuple touches one page.
  EXPECT_NEAR(CostModel::HeapPagesFetched(1, 1000, 100000), 1.0, 0.1);
}

TEST_F(CostModelTest, IndexProbeCheaperThanScan) {
  const TableSchema& big = catalog_.table(0);
  const CostEstimate probe = model_.IndexProbe(big, big_index_, 1e-4);
  EXPECT_LT(probe.cost, model_.SeqScan(big, 0, 1.0).cost);
  EXPECT_GT(probe.cost, 0.0);
}

TEST_F(CostModelTest, NestLoopChargesInnerPerOuterRow) {
  const CostEstimate outer{100.0, 50.0};
  const CostEstimate inner{10.0, 5.0};
  const CostEstimate join = model_.NestLoopJoin(outer, inner, 0.01);
  EXPECT_GE(join.cost, 100.0 + 50.0 * 10.0);
  EXPECT_NEAR(join.rows, 50.0 * 5.0 * 0.01, 1.0);
}

TEST_F(CostModelTest, HashJoinCheaperThanNestLoopForLargeInputs) {
  const CostEstimate left{1000.0, 10000.0};
  const CostEstimate right{1000.0, 10000.0};
  EXPECT_LT(model_.HashJoin(left, right, 1e-4).cost,
            model_.NestLoopJoin(left, right, 1e-4).cost);
}

TEST_F(CostModelTest, HashJoinSymmetricCost) {
  const CostEstimate a{500.0, 2000.0};
  const CostEstimate b{800.0, 100.0};
  EXPECT_DOUBLE_EQ(model_.HashJoin(a, b, 0.01).cost,
                   model_.HashJoin(b, a, 0.01).cost);
}

TEST_F(CostModelTest, MaterializationCostExceedsScan) {
  const TableSchema& big = catalog_.table(0);
  const double mat = model_.MaterializationCost(big, big_index_);
  EXPECT_GT(mat, model_.SeqScan(big, 0, 1.0).cost);
}

TEST_F(CostModelTest, MaterializationScalesWithTable) {
  const double big_cost =
      model_.MaterializationCost(catalog_.table(0), big_index_);
  const double small_cost =
      model_.MaterializationCost(catalog_.table(1), small_index_);
  EXPECT_GT(big_cost, small_cost * 10);
}

TEST_F(CostModelTest, ToSecondsUsesConfiguredFactor) {
  CostParams params;
  params.seconds_per_cost_unit = 0.5;
  CostModel model(params);
  EXPECT_DOUBLE_EQ(model.ToSeconds(10.0), 5.0);
}

TEST_F(CostModelTest, RandomPageCostPenalizesIndexScans) {
  CostParams cheap_random;
  cheap_random.random_page_cost = 1.0;
  CostParams expensive_random;
  expensive_random.random_page_cost = 10.0;
  const TableSchema& big = catalog_.table(0);
  const double cheap =
      CostModel(cheap_random).IndexScan(big, big_index_, 0.01, 0).cost;
  const double expensive =
      CostModel(expensive_random).IndexScan(big, big_index_, 0.01, 0).cost;
  EXPECT_LT(cheap, expensive);
}


TEST_F(CostModelTest, BitmapBeatsIndexScanAtMidSelectivity) {
  const TableSchema& big = catalog_.table(0);
  // Very selective: plain index scan fine (few pages either way); as
  // selectivity grows, the sorted fetch pulls ahead of random fetches.
  const double mid = 0.05;
  EXPECT_LT(model_.BitmapScan(big, big_index_, mid, 0).cost,
            model_.IndexScan(big, big_index_, mid, 0).cost);
}

TEST_F(CostModelTest, BitmapMonotoneInSelectivity) {
  const TableSchema& big = catalog_.table(0);
  double prev = 0.0;
  for (double sel : {0.0001, 0.001, 0.01, 0.1, 0.5}) {
    const double cost = model_.BitmapScan(big, big_index_, sel, 0).cost;
    EXPECT_GT(cost, prev) << sel;
    prev = cost;
  }
}

TEST_F(CostModelTest, BitmapWidensTheIndexUsefulnessWindow) {
  // There exist selectivities where seq < index scan but bitmap < seq.
  const TableSchema& big = catalog_.table(0);
  bool found = false;
  for (double sel = 0.005; sel <= 0.2; sel *= 1.3) {
    const double seq = model_.SeqScan(big, 1, sel).cost;
    const double plain = model_.IndexScan(big, big_index_, sel, 0).cost;
    const double bitmap = model_.BitmapScan(big, big_index_, sel, 0).cost;
    if (plain > seq && bitmap < seq) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(CostModelTest, BitmapApproachesSeqScanAtFullSelectivity) {
  const TableSchema& big = catalog_.table(0);
  const double bitmap = model_.BitmapScan(big, big_index_, 1.0, 0).cost;
  const double seq = model_.SeqScan(big, 1, 1.0).cost;
  // Touching every page near-sequentially plus index overhead: same order
  // of magnitude as the sequential scan, far from the random-I/O blowup.
  const double random_blowup =
      model_.IndexScan(big, big_index_, 1.0, 0).cost;
  EXPECT_LT(bitmap, random_blowup / 1.5);
  EXPECT_LT(bitmap, seq * 4.0);
}

/// Property: index scan crossover happens near where the page math says.
class CrossoverTest : public ::testing::TestWithParam<double> {};

TEST_P(CrossoverTest, IndexChosenBelowCrossover) {
  Catalog catalog = MakeTestCatalog();
  CostModel model;
  auto index = catalog.IndexOn(Ref(catalog, "big", "b_key"));
  const TableSchema& big = catalog.table(0);
  const double sel = GetParam();
  const double seq = model.SeqScan(big, 1, sel).cost;
  const double idx = model.IndexScan(big, *index, sel, 0).cost;
  // Find crossover by bisection; verify monotonic consistency around it.
  if (idx < seq) {
    EXPECT_LT(model.IndexScan(big, *index, sel / 2, 0).cost, seq);
  } else {
    EXPECT_GT(model.IndexScan(big, *index, std::min(1.0, sel * 2), 0).cost,
              seq);
  }
}

INSTANTIATE_TEST_SUITE_P(Selectivities, CrossoverTest,
                         ::testing::Values(0.0001, 0.001, 0.005, 0.02, 0.1,
                                           0.5));

}  // namespace
}  // namespace colt
