#include "query/trace.h"

#include <sstream>

#include <gtest/gtest.h>

#include "harness/workloads.h"
#include "query/workload.h"
#include "storage/tpch_schema.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;

TEST(Trace, EmptyWorkload) {
  Catalog catalog = MakeTestCatalog();
  std::stringstream stream;
  ASSERT_TRUE(SaveWorkloadTrace(catalog, {}, "empty", stream).ok());
  auto loaded = LoadWorkloadTrace(catalog, stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(Trace, RoundTripsSimpleWorkload) {
  Catalog catalog = MakeTestCatalog();
  std::vector<Query> workload;
  workload.push_back(MakeRangeQuery(catalog, "big", "b_key", 5, 10));
  workload.push_back(MakeRangeQuery(catalog, "small", "s_val", 3, 3));
  std::stringstream stream;
  ASSERT_TRUE(SaveWorkloadTrace(catalog, workload, "test", stream).ok());
  auto loaded = LoadWorkloadTrace(catalog, stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ((*loaded)[i].tables(), workload[i].tables());
    EXPECT_EQ((*loaded)[i].selections(), workload[i].selections());
    EXPECT_EQ((*loaded)[i].joins(), workload[i].joins());
  }
}

TEST(Trace, RoundTripsGeneratedExperimentWorkload) {
  Catalog catalog = MakeTpchCatalog();
  const QueryDistribution dist = ExperimentWorkloads::Focused(&catalog, 0);
  WorkloadGenerator gen(&catalog, 17);
  std::vector<Query> workload;
  for (int i = 0; i < 200; ++i) workload.push_back(gen.Sample(dist));

  std::stringstream stream;
  ASSERT_TRUE(SaveWorkloadTrace(catalog, workload, "focused_0", stream).ok());
  auto loaded = LoadWorkloadTrace(catalog, stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_EQ((*loaded)[i].tables(), workload[i].tables()) << i;
    ASSERT_EQ((*loaded)[i].selections(), workload[i].selections()) << i;
    ASSERT_EQ((*loaded)[i].joins(), workload[i].joins()) << i;
  }
}

TEST(Trace, RoundTripsHtapWorkloadWithWrites) {
  // The HTAP phases emit INSERT/UPDATE/DELETE alongside reads; the trace
  // layer serializes them through Query::ToString and the parser's write
  // grammar (DESIGN.md §16), so the reloaded stream must match kind for
  // kind, not just shape for shape.
  Catalog catalog = MakeTpchCatalog();
  const std::vector<QueryDistribution> dists =
      ExperimentWorkloads::HtapPhases(&catalog);
  WorkloadGenerator gen(&catalog, 23);
  std::vector<Query> workload;
  for (const auto& d : dists) {
    for (int i = 0; i < 80; ++i) workload.push_back(gen.Sample(d));
  }
  int64_t writes = 0;
  for (const Query& q : workload) writes += q.is_write() ? 1 : 0;
  ASSERT_GT(writes, 0) << "the HTAP phases must emit write statements";

  std::stringstream stream;
  ASSERT_TRUE(SaveWorkloadTrace(catalog, workload, "htap", stream).ok());
  auto loaded = LoadWorkloadTrace(catalog, stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_EQ((*loaded)[i].kind(), workload[i].kind()) << i;
    ASSERT_EQ((*loaded)[i].tables(), workload[i].tables()) << i;
    ASSERT_EQ((*loaded)[i].selections(), workload[i].selections()) << i;
    ASSERT_EQ((*loaded)[i].set_clauses(), workload[i].set_clauses()) << i;
    ASSERT_EQ((*loaded)[i].insert_rows(), workload[i].insert_rows()) << i;
  }
}

TEST(Trace, WriteStatementLinesParse) {
  Catalog catalog = MakeTestCatalog();
  std::stringstream stream(
      "# mixed trace\n"
      "SELECT COUNT(*) FROM big WHERE big.b_key BETWEEN 1 AND 5;\n"
      "INSERT INTO big ROWS 250;\n"
      "UPDATE big SET b_val = 9 WHERE big.b_key = 3;\n"
      "DELETE FROM small WHERE small.s_ref BETWEEN 1 AND 2;\n");
  auto loaded = LoadWorkloadTrace(catalog, stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 4u);
  EXPECT_EQ((*loaded)[0].kind(), StatementKind::kSelect);
  EXPECT_EQ((*loaded)[1].kind(), StatementKind::kInsert);
  EXPECT_EQ((*loaded)[1].insert_rows(), 250);
  EXPECT_EQ((*loaded)[2].kind(), StatementKind::kUpdate);
  EXPECT_EQ((*loaded)[3].kind(), StatementKind::kDelete);
}

TEST(Trace, CommentsAndBlankLinesIgnored) {
  Catalog catalog = MakeTestCatalog();
  std::stringstream stream(
      "# header\n"
      "\n"
      "   \n"
      "# another comment\n"
      "SELECT COUNT(*) FROM big WHERE big.b_key = 1;\n");
  auto loaded = LoadWorkloadTrace(catalog, stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST(Trace, MalformedLineReportsLineNumber) {
  Catalog catalog = MakeTestCatalog();
  std::stringstream stream(
      "# ok\n"
      "SELECT COUNT(*) FROM big;\n"
      "SELECT COUNT(*) FROM nonsense;\n");
  auto loaded = LoadWorkloadTrace(catalog, stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos);
}

TEST(Trace, AssignsSequentialIds) {
  Catalog catalog = MakeTestCatalog();
  std::stringstream stream(
      "SELECT COUNT(*) FROM big;\n"
      "SELECT COUNT(*) FROM small;\n");
  auto loaded = LoadWorkloadTrace(catalog, stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)[0].id(), 0);
  EXPECT_EQ((*loaded)[1].id(), 1);
}

TEST(Trace, FileRoundTrip) {
  Catalog catalog = MakeTestCatalog();
  std::vector<Query> workload;
  workload.push_back(MakeRangeQuery(catalog, "big", "b_val", 1, 99));
  const std::string path = ::testing::TempDir() + "/colt_trace_test.sql";
  ASSERT_TRUE(
      SaveWorkloadTraceFile(catalog, workload, "file test", path).ok());
  auto loaded = LoadWorkloadTraceFile(catalog, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_FALSE(LoadWorkloadTraceFile(catalog, "/no/such/file.sql").ok());
}

}  // namespace
}  // namespace colt
