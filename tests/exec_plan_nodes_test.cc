/// Direct executor tests over hand-built plan trees, covering operator
/// paths the optimizer rarely selects (plain nested-loop join, empty
/// inputs, stacked filters) plus failure modes.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::Ref;

class PlanNodeExecTest : public ::testing::Test {
 protected:
  PlanNodeExecTest() : db_(MakeTinyCatalog(), 5) {
    EXPECT_TRUE(db_.MaterializeAll(/*refresh_stats=*/true).ok());
    left_key_ = Ref(db_.catalog(), "left", "l_key");
    left_val_ = Ref(db_.catalog(), "left", "l_val");
    right_ref_ = Ref(db_.catalog(), "right", "r_ref");
    auto desc = db_.mutable_catalog().IndexOn(right_ref_);
    right_index_ = desc->id;
    EXPECT_TRUE(db_.BuildIndex(right_index_).ok());
  }

  static Catalog MakeTinyCatalog() {
    Catalog catalog;
    catalog.AddTable(TableSchema("left",
                                 {
                                     {"l_key", ColumnType::kInt64, 8, 20},
                                     {"l_val", ColumnType::kInt64, 8, 5},
                                 },
                                 200));
    catalog.AddTable(TableSchema("right",
                                 {
                                     {"r_ref", ColumnType::kInt64, 8, 20},
                                     {"r_val", ColumnType::kInt64, 8, 3},
                                 },
                                 100));
    return catalog;
  }

  std::unique_ptr<PlanNode> SeqScan(const std::string& table,
                                    std::vector<SelectionPredicate> filters) {
    auto node = std::make_unique<PlanNode>();
    node->type = PlanNodeType::kSeqScan;
    node->table = db_.catalog().FindTable(table);
    node->filter_predicates = std::move(filters);
    return node;
  }

  int64_t CountJoinMatches(int64_t left_val_filter) {
    // Reference: hash join computed by hand.
    const TableData& left = db_.data(0);
    const TableData& right = db_.data(1);
    int64_t count = 0;
    for (RowId l = 0; l < left.row_count(); ++l) {
      if (left_val_filter >= 0 && left.value(1, l) != left_val_filter) {
        continue;
      }
      for (RowId r = 0; r < right.row_count(); ++r) {
        if (left.value(0, l) == right.value(0, r)) ++count;
      }
    }
    return count;
  }

  Database db_;
  ColumnRef left_key_, left_val_, right_ref_;
  IndexId right_index_ = kInvalidIndexId;
};

TEST_F(PlanNodeExecTest, NestLoopJoinMatchesReference) {
  auto join = std::make_unique<PlanNode>();
  join->type = PlanNodeType::kNestLoopJoin;
  join->join_predicate = JoinPredicate{left_key_, right_ref_};
  join->left = SeqScan("left", {});
  join->right = SeqScan("right", {});
  Executor executor(&db_);
  auto result = executor.Execute(*join);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output_rows, CountJoinMatches(-1));
}

TEST_F(PlanNodeExecTest, NestLoopEqualsHashJoin) {
  for (auto type : {PlanNodeType::kNestLoopJoin, PlanNodeType::kHashJoin}) {
    auto join = std::make_unique<PlanNode>();
    join->type = type;
    join->join_predicate = JoinPredicate{left_key_, right_ref_};
    join->left = SeqScan("left", {SelectionPredicate{left_val_, 2, 2}});
    join->right = SeqScan("right", {});
    Executor executor(&db_);
    auto result = executor.Execute(*join);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->output_rows, CountJoinMatches(2))
        << PlanNodeTypeName(type);
  }
}

TEST_F(PlanNodeExecTest, IndexNLJoinMatchesReference) {
  auto join = std::make_unique<PlanNode>();
  join->type = PlanNodeType::kIndexNLJoin;
  join->join_predicate = JoinPredicate{left_key_, right_ref_};
  join->left = SeqScan("left", {SelectionPredicate{left_val_, 1, 1}});
  join->table = db_.catalog().FindTable("right");
  join->index_id = right_index_;
  Executor executor(&db_);
  auto result = executor.Execute(*join);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output_rows, CountJoinMatches(1));
  EXPECT_GT(result->pages_index, 0);
}

TEST_F(PlanNodeExecTest, EmptyFilterProducesEmptyJoin) {
  auto join = std::make_unique<PlanNode>();
  join->type = PlanNodeType::kHashJoin;
  join->join_predicate = JoinPredicate{left_key_, right_ref_};
  // l_val is uniform over [0, 5); value 99 never occurs.
  join->left = SeqScan("left", {SelectionPredicate{left_val_, 99, 99}});
  join->right = SeqScan("right", {});
  Executor executor(&db_);
  auto result = executor.Execute(*join);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output_rows, 0);
}

TEST_F(PlanNodeExecTest, StackedFiltersConjunctive) {
  Executor executor(&db_);
  auto scan = SeqScan("left", {SelectionPredicate{left_val_, 1, 2},
                               SelectionPredicate{left_key_, 0, 9}});
  auto result = executor.Execute(*scan);
  ASSERT_TRUE(result.ok());
  const TableData& left = db_.data(0);
  int64_t expected = 0;
  for (RowId r = 0; r < left.row_count(); ++r) {
    if (left.value(1, r) >= 1 && left.value(1, r) <= 2 &&
        left.value(0, r) <= 9) {
      ++expected;
    }
  }
  EXPECT_EQ(result->output_rows, expected);
}

TEST_F(PlanNodeExecTest, SeqScanOnUnmaterializedTableFails) {
  Database empty(MakeTinyCatalog(), 5);  // no MaterializeAll
  Executor executor(&empty);
  auto scan = std::make_unique<PlanNode>();
  scan->type = PlanNodeType::kSeqScan;
  scan->table = 0;
  EXPECT_EQ(executor.Execute(*scan).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PlanNodeExecTest, IndexScanRespectsResidualFilters) {
  // Build an index on left.l_key and scan [0, 4] with residual l_val = 0.
  auto desc = db_.mutable_catalog().IndexOn(left_key_);
  ASSERT_TRUE(desc.ok());
  ASSERT_TRUE(db_.BuildIndex(desc->id).ok());
  auto scan = std::make_unique<PlanNode>();
  scan->type = PlanNodeType::kIndexScan;
  scan->table = 0;
  scan->index_id = desc->id;
  scan->index_predicate = SelectionPredicate{left_key_, 0, 4};
  scan->filter_predicates = {SelectionPredicate{left_val_, 0, 0}};
  Executor executor(&db_);
  auto result = executor.Execute(*scan);
  ASSERT_TRUE(result.ok());
  const TableData& left = db_.data(0);
  int64_t expected = 0;
  for (RowId r = 0; r < left.row_count(); ++r) {
    if (left.value(0, r) <= 4 && left.value(1, r) == 0) ++expected;
  }
  EXPECT_EQ(result->output_rows, expected);
}

TEST_F(PlanNodeExecTest, TuplesProcessedAccumulates) {
  Executor executor(&db_);
  auto scan = SeqScan("left", {});
  auto result = executor.Execute(*scan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tuples_processed, 200);
  EXPECT_EQ(result->output_rows, 200);
}

}  // namespace
}  // namespace colt
