/// Thread-sanitizer stress for the places worker threads touch shared
/// state: the B+-tree read path (concurrent const scans while other
/// indexes are bulk-loaded on workers), Database::PrepareIndex (const,
/// catalog + frozen table data only), and full query serving racing the
/// live tuner's installs/drops/evictions (DESIGN.md §15). Results are
/// cross-checked against a serial recomputation, so this doubles as a
/// correctness test; its real value is under -DCOLT_SANITIZE=thread,
/// where any racy access aborts.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/thread_pool.h"
#include "core/colt.h"
#include "core/serve.h"
#include "query/workload.h"
#include "storage/database.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeTestCatalog;

/// Checksum of a range scan: row-id sum plus hit count, so two scans agree
/// iff they returned the same multiset of rows.
uint64_t ScanChecksum(const BTreeIndex& tree, int64_t lo, int64_t hi) {
  std::vector<RowId> rows;
  tree.RangeScan(lo, hi, &rows);
  uint64_t sum = rows.size();
  for (RowId r : rows) sum += static_cast<uint64_t>(r) * 2654435761ULL;
  return sum;
}

TEST(ConcurrencyStressTest, ReadersRaceStagedBuilds) {
  Database db(MakeTestCatalog(), 7);
  ASSERT_TRUE(db.MaterializeAll().ok());
  Catalog& catalog = db.mutable_catalog();

  // Descriptors for every indexable column; the first is built up front so
  // readers always have at least one live tree to hammer.
  std::vector<IndexId> ids;
  for (TableId t = 0; t < catalog.table_count(); ++t) {
    for (ColumnId c = 0; c < catalog.table(t).column_count(); ++c) {
      Result<IndexDescriptor> desc = catalog.IndexOn(ColumnRef{t, c});
      ASSERT_TRUE(desc.ok());
      ids.push_back(desc.value().id);
    }
  }
  ASSERT_GE(ids.size(), 4u);
  ASSERT_TRUE(db.BuildIndex(ids[0]).ok());

  ThreadPool pool(4);
  // Each round stages one new index on a worker while the other workers
  // scan every already-installed tree; the install happens on this thread
  // after the round joins — the same quiescence discipline the Scheduler
  // uses (PrepareIndex on workers, InstallIndex at the owner's boundary).
  for (size_t next = 1; next < ids.size(); ++next) {
    std::vector<IndexId> built = db.BuiltIndexIds();
    const Database* reader_db = &db;

    std::future<Result<std::unique_ptr<BTreeIndex>>> staged =
        pool.Submit([reader_db, id = ids[next]] {
          return reader_db->PrepareIndex(id);
        });
    constexpr int kReaders = 8;
    std::vector<uint64_t> checksums =
        pool.Map(kReaders, [reader_db, &built](size_t task) {
          Rng rng = ThreadPool::TaskRng(/*parent_seed=*/31, task);
          uint64_t sum = 0;
          for (int i = 0; i < 50; ++i) {
            for (IndexId id : built) {
              const int64_t lo = rng.NextInRange(0, 5000);
              sum += ScanChecksum(reader_db->index(id), lo, lo + 100);
            }
          }
          return sum;
        });

    Result<std::unique_ptr<BTreeIndex>> tree = staged.get();
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    ASSERT_TRUE(tree.value()->CheckInvariants().ok());
    ASSERT_TRUE(db.InstallIndex(ids[next], std::move(tree).value()).ok());

    // Serial recomputation of every reader's work must match bit-for-bit:
    // concurrent const scans may not perturb the trees or each other.
    for (int task = 0; task < kReaders; ++task) {
      Rng rng = ThreadPool::TaskRng(/*parent_seed=*/31,
                                    static_cast<uint64_t>(task));
      uint64_t expected = 0;
      for (int i = 0; i < 50; ++i) {
        for (IndexId id : built) {
          const int64_t lo = rng.NextInRange(0, 5000);
          expected += ScanChecksum(db.index(id), lo, lo + 100);
        }
      }
      EXPECT_EQ(checksums[static_cast<size_t>(task)], expected)
          << "reader " << task << " diverged";
    }
  }
  EXPECT_EQ(db.BuiltIndexIds().size(), ids.size());
  for (IndexId id : ids) {
    EXPECT_TRUE(db.index(id).CheckInvariants().ok());
  }
}

TEST(ConcurrencyStressTest, ServingRacesLiveTunerReconfiguration) {
  // Full query traffic on 4 client threads while the tuner installs,
  // drops, and (budget willing) evicts real B+-trees on the owner thread.
  // The trace shifts its focus twice so the tuner has reason to both
  // build and abandon indexes mid-run; the tight budget forces churn.
  Database db(MakeTestCatalog(), 7);
  ASSERT_TRUE(db.MaterializeAll(/*refresh_stats=*/true).ok());
  QueryOptimizer optimizer(&db.catalog());

  auto focused = [&db](const std::string& column) {
    QueryDistribution dist;
    dist.name = "focus_" + column;
    QueryTemplate tmpl;
    tmpl.name = column;
    tmpl.tables = {db.catalog().FindTable("big")};
    tmpl.selections = {{colt::testing::Ref(db.catalog(), "big", column),
                        0.001, 0.01, false}};
    dist.templates = {tmpl};
    dist.weights = {1.0};
    return dist;
  };
  WorkloadGenerator gen(&db.catalog(), 97);
  std::vector<Query> trace;
  for (const char* column : {"b_key", "b_val", "b_cat"}) {
    const QueryDistribution dist = focused(column);
    for (int i = 0; i < 100; ++i) trace.push_back(gen.Sample(dist));
  }

  ColtConfig config;
  // Room for roughly one 100k-row index at a time (each is ~2.5MB): the
  // shifting focus must evict or bypass the previous phase's winner, so
  // the built set keeps changing while clients serve.
  config.storage_budget_bytes = 4LL * 1024 * 1024;
  ColtTuner tuner(&db.mutable_catalog(), &optimizer, config, &db, 7);

  ServeOptions options;
  options.client_threads = 4;
  options.pin_threads = false;
  // Per-epoch audit at the quiescent join: every installed tree passes
  // full structural validation, and the configuration history is
  // recorded to prove the reconfiguration actually overlapped serving.
  std::vector<std::vector<IndexId>> config_history;
  int audited_epochs = 0;
  options.on_epoch_end = [&](int) {
    ++audited_epochs;
    const std::vector<IndexId> built = db.BuiltIndexIds();
    for (IndexId id : built) {
      ASSERT_TRUE(db.index(id).CheckInvariants().ok())
          << "index " << id << " corrupted during serving";
    }
    config_history.push_back(built);
  };

  const ServeResult result =
      ServeWorkload(&db, &optimizer, &tuner, trace, options);

  // Forward progress: every query of the trace completed despite the
  // concurrent reconfiguration, none failed, and the stream is ordered.
  ASSERT_EQ(result.queries.size(), trace.size());
  for (size_t i = 0; i < result.queries.size(); ++i) {
    EXPECT_TRUE(result.queries[i].ok) << result.queries[i].error;
    EXPECT_EQ(result.queries[i].trace_index, static_cast<int64_t>(i));
  }
  EXPECT_EQ(audited_epochs, result.epochs);

  // The tuner really reconfigured while clients were serving: actions
  // happened, and the built set changed across epochs.
  EXPECT_GT(result.tuner_actions, 0);
  std::set<std::vector<IndexId>> distinct(config_history.begin(),
                                          config_history.end());
  EXPECT_GT(distinct.size(), 1u)
      << "configuration never changed; the race this test exists for "
         "did not occur";
}

TEST(ConcurrencyStressTest, ParallelPreparesOfDistinctIndexesAreIndependent) {
  Database db(MakeTestCatalog(), 7);
  ASSERT_TRUE(db.MaterializeAll().ok());
  Catalog& catalog = db.mutable_catalog();
  std::vector<IndexId> ids;
  for (TableId t = 0; t < catalog.table_count(); ++t) {
    for (ColumnId c = 0; c < catalog.table(t).column_count(); ++c) {
      Result<IndexDescriptor> desc = catalog.IndexOn(ColumnRef{t, c});
      ASSERT_TRUE(desc.ok());
      ids.push_back(desc.value().id);
    }
  }
  ThreadPool pool(4);
  const Database* reader_db = &db;
  // All columns bulk-load concurrently off the same frozen table data.
  std::vector<int64_t> entry_counts = pool.Map(ids.size(), [&](size_t i) {
    Result<std::unique_ptr<BTreeIndex>> tree =
        reader_db->PrepareIndex(ids[i]);
    EXPECT_TRUE(tree.ok());
    EXPECT_TRUE(tree.value()->CheckInvariants().ok());
    return tree.value()->entry_count();
  });
  for (size_t i = 0; i < ids.size(); ++i) {
    const IndexDescriptor& desc = catalog.index(ids[i]);
    EXPECT_EQ(entry_counts[i], catalog.table(desc.column.table).row_count())
        << desc.name;
  }
}

}  // namespace
}  // namespace colt
