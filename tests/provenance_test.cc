#include "common/provenance.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/persist/serializer.h"

namespace colt {
namespace {

// Builders sink on destruction, so helpers emit inside their own full
// expression / scope.

TEST(ProvenanceRecorderTest, RecordsEventsWithContextAndMonotonicIds) {
  ProvenanceRecorder recorder(16);
  recorder.SetContext(/*epoch=*/3, /*query_seq=*/31);
  recorder.RecordEvent("scheduler.install").Index(7).Attr("cause", "reorg");
  recorder.SetContext(/*epoch=*/4, /*query_seq=*/40);
  recorder.RecordEvent("scheduler.drop").Index(7).Attr("net_benefit", 1.5);

  ASSERT_EQ(recorder.events().size(), 2u);
  const ProvenanceEvent& first = recorder.events()[0];
  EXPECT_EQ(first.id, 0);
  EXPECT_EQ(first.epoch, 3);
  EXPECT_EQ(first.query_seq, 31);
  EXPECT_EQ(first.name, "scheduler.install");
  EXPECT_EQ(first.index, 7);
  ASSERT_NE(first.FindAttr("cause"), nullptr);
  EXPECT_EQ(first.FindAttr("cause")->string_value, "reorg");
  EXPECT_EQ(first.FindAttr("nope"), nullptr);
  const ProvenanceEvent& second = recorder.events()[1];
  EXPECT_EQ(second.id, 1);
  EXPECT_EQ(second.epoch, 4);
  ASSERT_NE(second.FindAttr("net_benefit"), nullptr);
  EXPECT_DOUBLE_EQ(second.FindAttr("net_benefit")->double_value, 1.5);
  EXPECT_EQ(recorder.total_recorded(), 2);
  EXPECT_EQ(recorder.dropped(), 0);
}

TEST(ProvenanceRecorderTest, RingDropsOldestAndKeepsCounting) {
  ProvenanceRecorder recorder(3);
  for (int i = 0; i < 5; ++i) {
    recorder.RecordEvent("profiler.whatif_estimate").Index(i);
  }
  EXPECT_EQ(recorder.events().size(), 3u);
  EXPECT_EQ(recorder.dropped(), 2);
  EXPECT_EQ(recorder.total_recorded(), 5);
  // Oldest first; ids 0 and 1 were dropped.
  EXPECT_EQ(recorder.events().front().id, 2);
  EXPECT_EQ(recorder.events().back().id, 4);
  EXPECT_EQ(recorder.counts_by_name().at("profiler.whatif_estimate"), 5);
}

TEST(ProvenanceRecorderTest, DrainKeepsIdSequenceAndCounts) {
  ProvenanceRecorder recorder(8);
  recorder.RecordEvent("scheduler.install").Index(1);
  const std::vector<ProvenanceEvent> drained = recorder.Drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_TRUE(recorder.events().empty());
  recorder.RecordEvent("scheduler.drop").Index(1);
  // The id sequence continues across the drain: one logical stream.
  EXPECT_EQ(recorder.events().front().id, 1);
  EXPECT_EQ(recorder.total_recorded(), 2);
  EXPECT_EQ(recorder.counts_by_name().at("scheduler.install"), 1);
}

TEST(ProvenanceRecorderTest, MergeFromRestampsIdsInOrder) {
  ProvenanceRecorder owner(8);
  ProvenanceRecorder worker(8);
  owner.RecordEvent("colt.epoch_end");
  worker.SetContext(2, 20);
  worker.RecordEvent("profiler.whatif_estimate").Index(5);
  worker.RecordEvent("profiler.whatif_estimate").Index(6);
  owner.MergeFrom(&worker);
  ASSERT_EQ(owner.events().size(), 3u);
  EXPECT_EQ(owner.events()[1].id, 1);
  EXPECT_EQ(owner.events()[1].index, 5);
  EXPECT_EQ(owner.events()[2].id, 2);
  EXPECT_EQ(owner.events()[2].epoch, 2);
  EXPECT_TRUE(worker.events().empty());
  EXPECT_EQ(owner.counts_by_name().at("profiler.whatif_estimate"), 2);
}

TEST(ProvenanceJsonlTest, RoundTripIsLossless) {
  ProvenanceRecorder recorder(8);
  recorder.SetContext(1, 12);
  recorder.RecordEvent("self_organizer.knapsack")
      .Attr("kind", "reorg")
      .Attr("pool", 16)
      .Attr("value", 123.25)
      .Attr("chosen", "1,2,9");
  recorder.RecordEvent("scheduler.install")
      .Index(9)
      .Cluster(2)
      .Attr("cause", "reorg");
  const std::vector<ProvenanceEvent> events = recorder.Drain();
  const std::string jsonl = ProvenanceToJsonl(events);
  const auto reparsed = ProvenanceFromJsonl(jsonl);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value(), events);
  // Byte-stable, not just value-stable: the determinism gates compare
  // exports with cmp.
  EXPECT_EQ(ProvenanceToJsonl(reparsed.value()), jsonl);
}

TEST(ProvenanceJsonlTest, RejectsGarbage) {
  EXPECT_FALSE(ProvenanceFromJsonl("not json").ok());
  EXPECT_FALSE(ProvenanceFromJsonl("{\"id\":0}").ok());
  const std::string good =
      "{\"id\":0,\"ep\":0,\"q\":0,\"name\":\"scheduler.install\"}\n";
  EXPECT_TRUE(ProvenanceFromJsonl(good).ok());
  EXPECT_FALSE(ProvenanceFromJsonl(good + "junk").ok());
}

TEST(ProvenancePrometheusTest, ExposesLifetimeCountsAndDrops) {
  ProvenanceRecorder recorder(1);
  recorder.RecordEvent("scheduler.install").Index(1);
  recorder.RecordEvent("scheduler.install").Index(2);  // drops the first
  const std::string text = recorder.PrometheusText();
  EXPECT_NE(
      text.find("colt_provenance_events_total{event=\"scheduler.install\"} 2"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("colt_provenance_dropped_total 1"), std::string::npos)
      << text;
}

TEST(ProvenancePersistTest, SaveLoadRoundTripsStreamState) {
  ProvenanceRecorder recorder(4);
  recorder.SetContext(2, 25);
  recorder.RecordEvent("scheduler.install").Index(3).Attr("cause", "reorg");
  recorder.RecordEvent("colt.epoch_end").Attr("whatif_used", 5);
  BinaryWriter writer;
  recorder.SaveState(&writer);

  ProvenanceRecorder restored(4);
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(restored.LoadState(&reader).ok());
  EXPECT_EQ(restored.events().size(), recorder.events().size());
  EXPECT_EQ(restored.total_recorded(), recorder.total_recorded());
  EXPECT_EQ(restored.counts_by_name(), recorder.counts_by_name());
  ASSERT_EQ(restored.events().size(), 2u);
  EXPECT_EQ(restored.events()[0], recorder.events()[0]);
  // The restored recorder continues the same id stream.
  restored.RecordEvent("scheduler.drop").Index(3);
  EXPECT_EQ(restored.events().back().id, 2);
}

TEST(ProvenanceTimelineTest, ExplainReplaysInstallDropHistory) {
  ProvenanceRecorder recorder(32);
  recorder.SetContext(1, 10);
  recorder.RecordEvent("self_organizer.hot_promote").Index(4).Attr(
      "benefit", 9.0);
  recorder.RecordEvent("self_organizer.schedule_install")
      .Index(4)
      .Attr("net_benefit", 8.5);
  recorder.RecordEvent("scheduler.install").Index(4).Attr("cause", "reorg");
  recorder.SetContext(6, 60);
  recorder.RecordEvent("self_organizer.schedule_drop")
      .Index(4)
      .Attr("net_benefit", 0.25);
  recorder.RecordEvent("scheduler.drop").Index(4).Attr("cause", "emergency");
  recorder.RecordEvent("scheduler.install").Index(5).Attr("cause", "reorg");
  const std::vector<ProvenanceEvent> events = recorder.Drain();

  const std::vector<ProvenanceEvent> timeline = BuildIndexTimeline(events, 4);
  ASSERT_EQ(timeline.size(), 5u);
  for (const ProvenanceEvent& e : timeline) EXPECT_EQ(e.index, 4);

  const IndexEpochState mid = ExplainIndexAtEpoch(events, 4, 1);
  EXPECT_TRUE(mid.materialized);
  EXPECT_TRUE(mid.hot);
  EXPECT_EQ(mid.last_action, "scheduler.install");
  EXPECT_EQ(mid.last_cause, "reorg");
  EXPECT_DOUBLE_EQ(mid.last_net_benefit, 8.5);

  const IndexEpochState end = ExplainIndexAtEpoch(events, 4, 6);
  EXPECT_FALSE(end.materialized);
  EXPECT_EQ(end.last_action, "scheduler.drop");
  EXPECT_EQ(end.last_cause, "emergency");
  EXPECT_EQ(end.last_action_epoch, 6);
  EXPECT_DOUBLE_EQ(end.last_net_benefit, 0.25);

  const std::string rendered = FormatIndexTimeline(timeline);
  EXPECT_NE(rendered.find("scheduler.install"), std::string::npos);
  EXPECT_NE(rendered.find("cause=emergency"), std::string::npos);
}

}  // namespace
}  // namespace colt
