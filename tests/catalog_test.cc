#include "common/status.h"
#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

TEST(IndexConfiguration, AddRemoveContains) {
  IndexConfiguration config;
  EXPECT_TRUE(config.empty());
  EXPECT_TRUE(config.Add(5));
  EXPECT_FALSE(config.Add(5));
  EXPECT_TRUE(config.Add(3));
  EXPECT_TRUE(config.Contains(5));
  EXPECT_TRUE(config.Contains(3));
  EXPECT_FALSE(config.Contains(4));
  EXPECT_EQ(config.size(), 2u);
  EXPECT_TRUE(config.Remove(5));
  EXPECT_FALSE(config.Remove(5));
  EXPECT_EQ(config.size(), 1u);
}

TEST(IndexConfiguration, IdsSorted) {
  IndexConfiguration config;
  config.Add(9);
  config.Add(1);
  config.Add(4);
  EXPECT_EQ(config.ids(), (std::vector<IndexId>{1, 4, 9}));
}

TEST(IndexConfiguration, SignatureOrderIndependent) {
  IndexConfiguration a, b;
  a.Add(1);
  a.Add(2);
  b.Add(2);
  b.Add(1);
  EXPECT_EQ(a.Signature(), b.Signature());
  b.Add(3);
  EXPECT_NE(a.Signature(), b.Signature());
  EXPECT_NE(IndexConfiguration().Signature(), a.Signature());
}

TEST(IndexConfiguration, WithWithoutAreNonMutating) {
  IndexConfiguration config;
  config.Add(1);
  const IndexConfiguration with = config.With(2);
  EXPECT_TRUE(with.Contains(2));
  EXPECT_FALSE(config.Contains(2));
  const IndexConfiguration without = with.Without(1);
  EXPECT_FALSE(without.Contains(1));
  EXPECT_TRUE(with.Contains(1));
}

TEST(Catalog, TableLookup) {
  Catalog catalog = MakeTestCatalog();
  EXPECT_EQ(catalog.table_count(), 2);
  EXPECT_EQ(catalog.FindTable("big"), 0);
  EXPECT_EQ(catalog.FindTable("small"), 1);
  EXPECT_EQ(catalog.FindTable("nope"), kInvalidTableId);
  EXPECT_EQ(catalog.table(0).FindColumn("b_key"), 1);
  EXPECT_EQ(catalog.table(0).FindColumn("zzz"), kInvalidColumnId);
}

TEST(Catalog, TotalsAggregateTables) {
  Catalog catalog = MakeTestCatalog();
  EXPECT_EQ(catalog.total_rows(), 101'000);
  EXPECT_EQ(catalog.total_indexable_columns(), 7);
  EXPECT_GT(catalog.total_heap_bytes(), 0);
}

TEST(Catalog, IndexOnIsStableAndDeterministic) {
  Catalog catalog = MakeTestCatalog();
  auto r1 = catalog.IndexOn(Ref(catalog, "big", "b_key"));
  ASSERT_TRUE(r1.ok());
  auto r2 = catalog.IndexOn(Ref(catalog, "big", "b_key"));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->id, r2->id);
  auto r3 = catalog.IndexOn(Ref(catalog, "big", "b_val"));
  ASSERT_TRUE(r3.ok());
  EXPECT_NE(r1->id, r3->id);
  EXPECT_TRUE(catalog.HasIndex(r1->id));
  EXPECT_EQ(catalog.index(r1->id).column, (Ref(catalog, "big", "b_key")));
}

TEST(Catalog, IndexOnRejectsInvalid) {
  Catalog catalog = MakeTestCatalog();
  EXPECT_FALSE(catalog.IndexOn(ColumnRef{}).ok());
  EXPECT_FALSE(catalog.IndexOn(ColumnRef{0, 99}).ok());
  EXPECT_FALSE(catalog.IndexOn(ColumnRef{99, 0}).ok());
}

TEST(Catalog, NonIndexableColumnRejected) {
  Catalog catalog;
  ColumnDef col;
  col.name = "payload";
  col.indexable = false;
  catalog.AddTable(TableSchema("t", {col}, 10));
  EXPECT_EQ(catalog.IndexOn(ColumnRef{0, 0}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Catalog, IndexSizeScalesWithRowsAndWidth) {
  Catalog catalog = MakeTestCatalog();
  const IndexDescriptor big =
      catalog.EstimateIndex(Ref(catalog, "big", "b_key"));
  const IndexDescriptor small =
      catalog.EstimateIndex(Ref(catalog, "small", "s_ref"));
  EXPECT_GT(big.size_bytes, small.size_bytes);
  EXPECT_GT(big.leaf_pages, small.leaf_pages);
  EXPECT_EQ(big.entry_count, 100'000);
  EXPECT_GE(big.height, 1);
  EXPECT_GE(big.height, small.height);
}

TEST(Catalog, AllIndexesSortedById) {
  Catalog catalog = MakeTestCatalog();
  ColtIgnoreStatus(catalog.IndexOn(Ref(catalog, "big", "b_val")));
  ColtIgnoreStatus(catalog.IndexOn(Ref(catalog, "small", "s_ref")));
  ColtIgnoreStatus(catalog.IndexOn(Ref(catalog, "big", "b_key")));
  const auto all = catalog.AllIndexes();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_LT(all[0].id, all[1].id);
  EXPECT_LT(all[1].id, all[2].id);
}

TEST(TableSchema, PageAccounting) {
  Catalog catalog = MakeTestCatalog();
  const TableSchema& big = catalog.table(0);
  // 4 columns: 8+8+8+4 = 28 bytes + 28 header = 56 bytes/tuple.
  EXPECT_EQ(big.tuple_bytes(), 56);
  const double bytes = 100'000 * 56 / kPageFillFactor;
  EXPECT_EQ(big.heap_pages(),
            static_cast<int64_t>(std::ceil(bytes / kPageSizeBytes)));
  EXPECT_EQ(big.heap_bytes(), big.heap_pages() * kPageSizeBytes);
}

TEST(ColumnTypeName, Names) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt64), "int64");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kString), "string");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDate), "date");
}

}  // namespace
}  // namespace colt
