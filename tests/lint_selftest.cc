// Self-test for tools/colt_lint: every fixture in tests/lint_fixtures/
// fails with exactly the expected rule id, the suppression machinery works,
// and — the gate that matters — the real repository tree lints clean.
//
// Fixture files are read from LINT_FIXTURES_DIR and linted under a claimed
// repo-relative path (the path decides which rules and module DAG position
// apply); they are never compiled.
#include "lint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURES_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::set<std::string> RulesHit(const std::vector<colt_lint::Violation>& vs) {
  std::set<std::string> rules;
  for (const auto& v : vs) rules.insert(v.rule);
  return rules;
}

struct FixtureCase {
  const char* fixture;
  const char* claimed_path;
  const char* expected_rule;
  int min_findings;
};

class LintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixtureTest, FailsWithExpectedRule) {
  const FixtureCase& c = GetParam();
  const auto violations = colt_lint::LintFileContent(
      c.claimed_path, ReadFixture(c.fixture));
  ASSERT_GE(static_cast<int>(violations.size()), c.min_findings)
      << "fixture " << c.fixture;
  EXPECT_EQ(RulesHit(violations), std::set<std::string>{c.expected_rule})
      << "fixture " << c.fixture << " first: " << violations[0].ToString();
  for (const auto& v : violations) {
    EXPECT_EQ(v.file, c.claimed_path);
    EXPECT_GT(v.line, 0);
    EXPECT_FALSE(v.message.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(
        FixtureCase{"layering_upward.cc", "src/catalog/bad.cc", "layering",
                    1},
        FixtureCase{"layering_sideways.cc", "src/storage/bad.cc", "layering",
                    1},
        FixtureCase{"status_discard.cc", "src/core/bad.cc", "status-discard",
                    1},
        FixtureCase{"determinism_rand.cc", "src/core/bad.cc", "determinism",
                    3},
        FixtureCase{"determinism_system_clock.cc", "src/core/bad.cc",
                    "determinism", 1},
        FixtureCase{"raw_new.cc", "src/core/bad.cc", "raw-new-delete", 2},
        FixtureCase{"naked_thread.cc", "src/core/bad.cc", "naked-thread", 3},
        FixtureCase{"iostream_include.cc", "src/core/bad.cc", "iostream", 1},
        FixtureCase{"metric_name_bad.cc", "src/core/bad.cc", "metric-name",
                    3},
        FixtureCase{"provenance_event_name_bad.cc", "src/core/bad.cc",
                    "metric-name", 3},
        FixtureCase{"unchecked_file_io.cc", "src/core/bad.cc",
                    "unchecked-file-io", 3},
        FixtureCase{"whitespace_bad.cc", "src/core/bad.cc", "whitespace", 3},
        FixtureCase{"suppression_unknown_rule.cc", "src/core/bad.cc",
                    "bad-suppression", 1},
        FixtureCase{"thread_role_owner_call.cc", "src/core/bad.cc",
                    "thread-role", 1},
        FixtureCase{"thread_role_transitive.cc", "src/core/bad.cc",
                    "thread-role", 1},
        FixtureCase{"thread_role_pool_unannotated.cc", "src/core/bad.cc",
                    "thread-role", 1},
        FixtureCase{"thread_role_conflict.cc", "src/core/bad.cc",
                    "thread-role", 1},
        FixtureCase{"thread_role_on_variable.cc", "src/core/bad.cc",
                    "thread-role", 1},
        FixtureCase{"thread_role_partial_suppression.cc", "src/core/bad.cc",
                    "thread-role", 1},
        FixtureCase{"worker_purity_provenance.cc", "src/core/bad.cc",
                    "worker-purity", 1},
        FixtureCase{"worker_purity_metrics.cc", "src/core/bad.cc",
                    "worker-purity", 1},
        FixtureCase{"worker_purity_rng.cc", "src/core/bad.cc",
                    "worker-purity", 1},
        FixtureCase{"worker_purity_member_write.cc", "src/core/bad.cc",
                    "worker-purity", 1}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.fixture;
      return name.substr(0, name.find('.'));
    });

TEST(LintSuppressionTest, JustifiedAllowSilencesTheRule) {
  const auto violations = colt_lint::LintFileContent(
      "src/core/bad.cc", ReadFixture("suppression_ok.cc"));
  EXPECT_TRUE(violations.empty())
      << "first: " << violations[0].ToString();
}

TEST(LintSuppressionTest, MissingJustificationFailsAndDoesNotSilence) {
  const auto violations = colt_lint::LintFileContent(
      "src/core/bad.cc",
      ReadFixture("suppression_missing_justification.cc"));
  const std::set<std::string> expected = {"bad-suppression", "determinism"};
  EXPECT_EQ(RulesHit(violations), expected);
}

TEST(LintSuppressionTest, AllowNextLineSilencesExactlyThatLine) {
  const auto violations = colt_lint::LintFileContent(
      "src/core/bad.cc", ReadFixture("suppression_next_line_ok.cc"));
  EXPECT_TRUE(violations.empty())
      << "first: " << violations[0].ToString();
}

TEST(LintFalsePositiveTest, LegalConstructsProduceNoFindings) {
  const auto violations = colt_lint::LintFileContent(
      "src/core/ok.cc", ReadFixture("false_positive.cc"));
  EXPECT_TRUE(violations.empty())
      << "first: " << violations[0].ToString();
}

TEST(LintFalsePositiveTest, LegalRolePatternsProduceNoFindings) {
  const auto violations = colt_lint::LintFileContent(
      "src/core/ok.cc", ReadFixture("thread_role_false_positive.cc"));
  EXPECT_TRUE(violations.empty())
      << "first: " << violations[0].ToString();
}

TEST(LintCrossFileTest, RoleAnnotationsResolveAcrossFiles) {
  const auto violations = colt_lint::LintFiles(
      {{"src/optimizer/decl.h", ReadFixture("cross_file_decl.h")},
       {"src/core/use.cc", ReadFixture("cross_file_use.cc")}});
  ASSERT_EQ(violations.size(), 1u)
      << "first: " << violations[0].ToString();
  EXPECT_EQ(violations[0].file, "src/core/use.cc");
  EXPECT_EQ(violations[0].rule, "thread-role");
  EXPECT_NE(violations[0].message.find("BumpVersion"), std::string::npos)
      << violations[0].message;
}

TEST(LintFileIoTest, PersistLayerIsExempt) {
  // The same discards that fail under src/core pass inside the sanctioned
  // file-I/O layer.
  const auto violations = colt_lint::LintFileContent(
      "src/common/persist/checkpoint.cc", ReadFixture("unchecked_file_io.cc"));
  EXPECT_TRUE(violations.empty())
      << "first: " << violations[0].ToString();
}

TEST(LintMetricNameTest, ProvenanceImplementationIsExempt) {
  // The recorder implementation takes event names as parameters, like the
  // metrics registry; the literal rule applies at emission sites only.
  const auto violations = colt_lint::LintFileContent(
      "src/common/provenance.cc",
      ReadFixture("provenance_event_name_bad.cc"));
  EXPECT_TRUE(violations.empty())
      << "first: " << violations[0].ToString();
}

TEST(LintRuleCatalogTest, KnownRulesRoundTrip) {
  for (const std::string& rule : colt_lint::AllRules()) {
    EXPECT_TRUE(colt_lint::IsKnownRule(rule)) << rule;
  }
  EXPECT_FALSE(colt_lint::IsKnownRule("no-such-rule"));
  EXPECT_FALSE(colt_lint::IsKnownRule("bad-suppression"))
      << "bad-suppression must not be suppressible";
}

TEST(LintOutputTest, ViolationFormatsAsFileLineRuleMessage) {
  colt_lint::Violation v{"src/core/x.cc", 12, "layering", "boom"};
  EXPECT_EQ(v.ToString(), "src/core/x.cc:12: layering: boom");
}

// The acceptance gate: the real tree has zero violations. COLT_REPO_ROOT is
// injected by CMake and points at the source checkout.
TEST(LintTreeTest, RepositoryLintsClean) {
  const auto violations = colt_lint::LintTree(COLT_REPO_ROOT);
  for (const auto& v : violations) {
    ADD_FAILURE() << v.ToString();
  }
}

}  // namespace
