// Tests for the crash-safe persistence layer (DESIGN.md §12): the binary
// serializer's round-trip and corruption behaviour, and the CheckpointStore
// WAL + atomic-rename protocol under injected crashes, torn writes, and
// deliberate on-disk corruption. Durability claims here are about recovery
// correctness, not fsync semantics (the filesystem is assumed honest).
#include "common/persist/checkpoint.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/persist/serializer.h"
#include "common/rng.h"

namespace colt {
namespace {

std::string NewStateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/persist_" + name;
  // Recreate from scratch: tests must not see a predecessor's files.
  const std::string wal = dir + "/wal.log";
  std::remove(wal.c_str());
  std::remove((dir + "/snap-0.bin").c_str());
  std::remove((dir + "/snap-1.bin").c_str());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(SerializerTest, RoundTripsEveryType) {
  BinaryWriter w;
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  w.WriteI64(-42);
  w.WriteDouble(0.1);     // not exactly representable: bit pattern matters
  w.WriteDouble(-0.0);    // sign of zero must survive
  w.WriteBool(true);
  w.WriteBool(false);
  w.WriteString("colt");
  w.WriteString("");

  BinaryReader r(w.buffer());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d1 = 0.0, d2 = 1.0;
  bool b1 = false, b2 = true;
  std::string s1, s2;
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadDouble(&d1).ok());
  ASSERT_TRUE(r.ReadDouble(&d2).ok());
  ASSERT_TRUE(r.ReadBool(&b1).ok());
  ASSERT_TRUE(r.ReadBool(&b2).ok());
  ASSERT_TRUE(r.ReadString(&s1).ok());
  ASSERT_TRUE(r.ReadString(&s2).ok());
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d1, 0.1);
  EXPECT_TRUE(std::signbit(d2));
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_EQ(s1, "colt");
  EXPECT_EQ(s2, "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, TruncatedBufferFailsEveryRead) {
  BinaryWriter w;
  w.WriteU64(7);
  const std::string bytes = w.buffer().substr(0, 3);
  BinaryReader r(bytes);
  uint64_t out = 0;
  const Status s = r.ReadU64(&out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SerializerTest, StringLengthBeyondBufferIsRejectedBeforeAllocating) {
  BinaryWriter w;
  w.WriteU64(1ULL << 60);  // claims an exabyte of payload
  BinaryReader r(w.buffer());
  std::string out;
  EXPECT_EQ(r.ReadString(&out).code(), StatusCode::kInvalidArgument);
}

TEST(SerializerTest, MalformedBoolIsRejected) {
  BinaryReader r(std::string_view("\x02", 1));
  bool out = false;
  EXPECT_EQ(r.ReadBool(&out).code(), StatusCode::kInvalidArgument);
}

TEST(SerializerTest, TagMismatchNamesTheProblem) {
  BinaryWriter w;
  w.WriteU32(0x1111);
  BinaryReader r(w.buffer());
  const Status s = r.ExpectTag(0x2222);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointStoreTest, FreshDirectoryIsNotFound) {
  CheckpointStore store(NewStateDir("fresh"));
  const Result<CheckpointData> data = store.LoadLatest();
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, CommitThenLoadRoundTrips) {
  CheckpointStore store(NewStateDir("roundtrip"));
  ASSERT_TRUE(store.Commit(1, "epoch-one-state").ok());
  const Result<CheckpointData> data = store.LoadLatest();
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->epoch, 1);
  EXPECT_EQ(data->payload, "epoch-one-state");
}

TEST(CheckpointStoreTest, NewestCommitWinsAcrossGenerations) {
  CheckpointStore store(NewStateDir("newest"));
  for (int64_t epoch = 1; epoch <= 5; ++epoch) {
    ASSERT_TRUE(store.Commit(epoch, "state-" + std::to_string(epoch)).ok());
  }
  const Result<CheckpointData> data = store.LoadLatest();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->epoch, 5);
  EXPECT_EQ(data->payload, "state-5");
}

TEST(CheckpointStoreTest, ReopenedStoreRecoversPriorState) {
  const std::string dir = NewStateDir("reopen");
  {
    CheckpointStore store(dir);
    ASSERT_TRUE(store.Commit(3, "survivor").ok());
  }
  CheckpointStore reopened(dir);
  const Result<CheckpointData> data = reopened.LoadLatest();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->payload, "survivor");
}

TEST(CheckpointStoreTest, CorruptNewestFallsBackToPreviousGeneration) {
  MetricsRegistry::Default().set_enabled(true);
  Counter* corrupt = MetricsRegistry::Default().GetCounter(
      "persist.recovery.corrupt_snapshots");
  const int64_t before = corrupt->value();
  const std::string dir = NewStateDir("fallback");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.Commit(1, "old-but-valid").ok());
  ASSERT_TRUE(store.Commit(2, "new-but-doomed").ok());
  // Flip one payload byte of the newest snapshot (generation 2 % 2 = 0).
  std::string bytes = ReadFile(store.SnapshotPath(0));
  bytes[bytes.size() - 3] ^= 0x40;
  WriteFile(store.SnapshotPath(0), bytes);

  const Result<CheckpointData> data = store.LoadLatest();
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->epoch, 1);
  EXPECT_EQ(data->payload, "old-but-valid");
  EXPECT_EQ(corrupt->value(), before + 1)
      << "a committed-but-corrupt candidate must be counted";
}

TEST(CheckpointStoreTest, AllSnapshotsCorruptDegradesToNotFound) {
  const std::string dir = NewStateDir("allcorrupt");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.Commit(1, "one").ok());
  ASSERT_TRUE(store.Commit(2, "two").ok());
  for (uint32_t gen = 0; gen <= 1; ++gen) {
    std::string bytes = ReadFile(store.SnapshotPath(gen));
    for (char& c : bytes) c ^= 0x5A;
    WriteFile(store.SnapshotPath(gen), bytes);
  }
  const Result<CheckpointData> data = store.LoadLatest();
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, TruncatedSnapshotIsRejectedNotCrashed) {
  const std::string dir = NewStateDir("truncated");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.Commit(1, "base").ok());
  ASSERT_TRUE(store.Commit(2, std::string(4096, 'x')).ok());
  const std::string bytes = ReadFile(store.SnapshotPath(0));
  WriteFile(store.SnapshotPath(0), bytes.substr(0, bytes.size() / 2));
  const Result<CheckpointData> data = store.LoadLatest();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->epoch, 1);
}

TEST(CheckpointStoreTest, TornWalTailIsTolerated) {
  const std::string dir = NewStateDir("tornwal");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.Commit(1, "alpha").ok());
  ASSERT_TRUE(store.Commit(2, "beta").ok());
  // A crash mid-append leaves a half-written record at the WAL tail;
  // recovery must stop at the tear, not reject the whole log.
  const std::string wal = ReadFile(store.WalPath());
  WriteFile(store.WalPath(), wal.substr(0, wal.size() - 17));
  CheckpointStore reopened(dir);
  const Result<CheckpointData> data = reopened.LoadLatest();
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->payload, "beta");
}

TEST(CheckpointStoreTest, InjectedCrashPointsLeaveRecoverableState) {
  // Each crash site aborts Commit at a different protocol step; after every
  // abort the previous checkpoint must still be recoverable, exactly as if
  // the process had been killed there.
  const char* kSites[] = {fault_sites::kPersistCrashAfterWalBegin,
                          fault_sites::kPersistCrashBeforeRename,
                          fault_sites::kPersistCrashAfterRename};
  int variant = 0;
  for (const char* site : kSites) {
    FaultConfig config;
    config.FireOnCheck(site, 2);  // survive epoch 1, die during epoch 2
    FaultInjector faults(config);
    CheckpointStore::Options options;
    options.faults = &faults;
    CheckpointStore store(
        NewStateDir("crash" + std::to_string(variant++)), options);
    ASSERT_TRUE(store.Commit(1, "durable").ok()) << site;
    const Status crashed = store.Commit(2, "lost-or-durable");
    ASSERT_EQ(crashed.code(), StatusCode::kInternal) << site;

    const Result<CheckpointData> data = store.LoadLatest();
    ASSERT_TRUE(data.ok()) << site << ": " << data.status().ToString();
    if (std::string(site) == fault_sites::kPersistCrashAfterRename) {
      // The snapshot was fully renamed before the crash: the BEGIN record
      // plus a valid snapshot is a complete commit.
      EXPECT_EQ(data->payload, "lost-or-durable") << site;
    } else {
      EXPECT_EQ(data->payload, "durable") << site;
    }
  }
}

TEST(CheckpointStoreTest, TornWalAppendFaultKeepsPreviousCheckpoint) {
  FaultConfig config;
  config.FireOnCheck(fault_sites::kPersistWalAppend, 3);
  FaultInjector faults(config);
  CheckpointStore::Options options;
  options.faults = &faults;
  CheckpointStore store(NewStateDir("tornappend"), options);
  ASSERT_TRUE(store.Commit(1, "safe").ok());
  EXPECT_FALSE(store.Commit(2, "torn").ok());
  const Result<CheckpointData> data = store.LoadLatest();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->payload, "safe");
}

TEST(CheckpointStoreTest, ShortSnapshotWriteFaultKeepsPreviousCheckpoint) {
  FaultConfig config;
  config.FireOnCheck(fault_sites::kPersistSnapshotWrite, 2);
  FaultInjector faults(config);
  CheckpointStore::Options options;
  options.faults = &faults;
  CheckpointStore store(NewStateDir("shortwrite"), options);
  ASSERT_TRUE(store.Commit(1, "safe").ok());
  EXPECT_FALSE(store.Commit(2, "short").ok());
  const Result<CheckpointData> data = store.LoadLatest();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->payload, "safe");
}

TEST(CheckpointStoreTest, WalCompactionKeepsRecoveryIntact) {
  const std::string dir = NewStateDir("compact");
  CheckpointStore store(dir);
  // Well past the compaction threshold (64 records = 32 commits).
  for (int64_t epoch = 1; epoch <= 100; ++epoch) {
    ASSERT_TRUE(store.Commit(epoch, "state-" + std::to_string(epoch)).ok())
        << epoch;
  }
  struct ::stat st = {};
  ASSERT_EQ(::stat(store.WalPath().c_str(), &st), 0);
  EXPECT_LT(st.st_size, 64 * 44)
      << "the WAL must not grow one record per commit forever";
  const Result<CheckpointData> data = store.LoadLatest();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->epoch, 100);
  EXPECT_EQ(data->payload, "state-100");
}

TEST(CheckpointStoreTest, FuzzedSnapshotBytesNeverCrashRecovery) {
  const std::string dir = NewStateDir("fuzz");
  CheckpointStore store(dir);
  ASSERT_TRUE(store.Commit(1, std::string(512, 'a')).ok());
  ASSERT_TRUE(store.Commit(2, std::string(512, 'b')).ok());
  const std::string gen0 = ReadFile(store.SnapshotPath(0));
  const std::string gen1 = ReadFile(store.SnapshotPath(1));
  Rng rng(0xF022);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = (round % 2 == 0) ? gen0 : gen1;
    const int flips = 1 + static_cast<int>(rng.NextBelow(8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(rng.NextBelow(mutated.size()));
      mutated[pos] ^= static_cast<char>(1 + rng.NextBelow(255));
    }
    WriteFile(store.SnapshotPath(round % 2), mutated);
    const Result<CheckpointData> data = store.LoadLatest();
    // Either a valid checkpoint survived or recovery reports NotFound;
    // any payload returned must be one of the two committed states.
    if (data.ok()) {
      EXPECT_TRUE(data->payload == std::string(512, 'a') ||
                  data->payload == std::string(512, 'b'))
          << "round " << round;
    } else {
      EXPECT_EQ(data.status().code(), StatusCode::kNotFound)
          << "round " << round << ": " << data.status().ToString();
    }
    // Restore for the next round.
    WriteFile(store.SnapshotPath(0), gen0);
    WriteFile(store.SnapshotPath(1), gen1);
  }
}

}  // namespace
}  // namespace colt
