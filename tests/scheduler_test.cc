#include "core/scheduler.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : catalog_(MakeTestCatalog()) {
    b_key_ = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
    s_val_ = catalog_.IndexOn(Ref(catalog_, "small", "s_val"))->id;
  }

  Catalog catalog_;
  CostModel cost_model_;
  IndexId b_key_, s_val_;
};

TEST_F(SchedulerTest, StartsEmpty) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr);
  EXPECT_TRUE(scheduler.materialized().empty());
  EXPECT_EQ(scheduler.MaterializedBytes(), 0);
}

TEST_F(SchedulerTest, MaterializeChargesBuildTime) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr);
  IndexConfiguration desired;
  desired.Add(b_key_);
  auto actions = scheduler.ApplyConfiguration(desired);
  ASSERT_TRUE(actions.ok());
  ASSERT_EQ(actions->size(), 1u);
  EXPECT_EQ((*actions)[0].type, IndexActionType::kMaterialize);
  EXPECT_EQ((*actions)[0].index, b_key_);
  EXPECT_GT((*actions)[0].build_seconds, 0.0);
  EXPECT_NEAR((*actions)[0].build_seconds, scheduler.BuildSeconds(b_key_),
              1e-12);
  EXPECT_TRUE(scheduler.materialized().Contains(b_key_));
  EXPECT_EQ(scheduler.MaterializedBytes(),
            catalog_.index(b_key_).size_bytes);
}

TEST_F(SchedulerTest, DropIsFree) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr);
  IndexConfiguration desired;
  desired.Add(b_key_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());
  auto actions = scheduler.ApplyConfiguration({});
  ASSERT_TRUE(actions.ok());
  ASSERT_EQ(actions->size(), 1u);
  EXPECT_EQ((*actions)[0].type, IndexActionType::kDrop);
  EXPECT_DOUBLE_EQ((*actions)[0].build_seconds, 0.0);
  EXPECT_TRUE(scheduler.materialized().empty());
}

TEST_F(SchedulerTest, NoOpProducesNoActions) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr);
  IndexConfiguration desired;
  desired.Add(b_key_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());
  auto actions = scheduler.ApplyConfiguration(desired);
  ASSERT_TRUE(actions.ok());
  EXPECT_TRUE(actions->empty());
}

TEST_F(SchedulerTest, MixedTransition) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr);
  IndexConfiguration first;
  first.Add(b_key_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(first).ok());
  IndexConfiguration second;
  second.Add(s_val_);
  auto actions = scheduler.ApplyConfiguration(second);
  ASSERT_TRUE(actions.ok());
  ASSERT_EQ(actions->size(), 2u);
  EXPECT_EQ((*actions)[0].type, IndexActionType::kDrop);
  EXPECT_EQ((*actions)[1].type, IndexActionType::kMaterialize);
}

TEST_F(SchedulerTest, BuildTimeScalesWithTable) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr);
  EXPECT_GT(scheduler.BuildSeconds(b_key_),
            scheduler.BuildSeconds(s_val_) * 10);
}

TEST_F(SchedulerTest, PhysicalModeBuildsRealTrees) {
  Database db(MakeTestCatalog(), 7);
  ASSERT_TRUE(db.MaterializeAll().ok());
  const IndexId key =
      db.mutable_catalog().IndexOn(Ref(db.catalog(), "big", "b_key"))->id;
  Scheduler scheduler(&db.mutable_catalog(), &cost_model_, &db);
  IndexConfiguration desired;
  desired.Add(key);
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());
  EXPECT_TRUE(db.HasBuiltIndex(key));
  ASSERT_TRUE(scheduler.ApplyConfiguration({}).ok());
  EXPECT_FALSE(db.HasBuiltIndex(key));
}

TEST_F(SchedulerTest, PhysicalModeFailsWithoutData) {
  Database db(MakeTestCatalog(), 7);  // tables not materialized
  const IndexId key =
      db.mutable_catalog().IndexOn(Ref(db.catalog(), "big", "b_key"))->id;
  Scheduler scheduler(&db.mutable_catalog(), &cost_model_, &db);
  IndexConfiguration desired;
  desired.Add(key);
  EXPECT_FALSE(scheduler.ApplyConfiguration(desired).ok());
}


TEST_F(SchedulerTest, IdleTimeQueuesBuilds) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr,
                      SchedulingStrategy::kIdleTime);
  IndexConfiguration desired;
  desired.Add(b_key_);
  auto actions = scheduler.ApplyConfiguration(desired);
  ASSERT_TRUE(actions.ok());
  EXPECT_TRUE(actions->empty());  // nothing happens synchronously
  EXPECT_FALSE(scheduler.materialized().Contains(b_key_));
  EXPECT_EQ(scheduler.PendingBuilds(), (std::vector<IndexId>{b_key_}));
}

TEST_F(SchedulerTest, IdleTimeProgressesAndCompletes) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr,
                      SchedulingStrategy::kIdleTime);
  IndexConfiguration desired;
  desired.Add(s_val_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());
  const double build = scheduler.BuildSeconds(s_val_);
  // Half the idle time: not done yet.
  auto half = scheduler.OnIdle(build / 2);
  ASSERT_TRUE(half.ok());
  EXPECT_TRUE(half->empty());
  EXPECT_FALSE(scheduler.materialized().Contains(s_val_));
  // The rest completes it, at zero charged cost.
  auto rest = scheduler.OnIdle(build);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->size(), 1u);
  EXPECT_EQ((*rest)[0].index, s_val_);
  EXPECT_DOUBLE_EQ((*rest)[0].build_seconds, 0.0);
  EXPECT_TRUE(scheduler.materialized().Contains(s_val_));
  EXPECT_TRUE(scheduler.PendingBuilds().empty());
}

TEST_F(SchedulerTest, IdleTimeCancelsUnwantedBuilds) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr,
                      SchedulingStrategy::kIdleTime);
  IndexConfiguration desired;
  desired.Add(b_key_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());
  ASSERT_EQ(scheduler.PendingBuilds().size(), 1u);
  // The Self-Organizer changes its mind before the build completes.
  ASSERT_TRUE(scheduler.ApplyConfiguration({}).ok());
  EXPECT_TRUE(scheduler.PendingBuilds().empty());
  auto done = scheduler.OnIdle(1e9);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->empty());
}

TEST_F(SchedulerTest, IdleTimeExactBudgetCompletesBuild) {
  // Regression: a build whose remaining time reaches exactly zero must
  // complete in that OnIdle call, not sit at remaining == 0 forever.
  Scheduler scheduler(&catalog_, &cost_model_, nullptr,
                      SchedulingStrategy::kIdleTime);
  IndexConfiguration desired;
  desired.Add(s_val_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());
  const double build = scheduler.BuildSeconds(s_val_);
  auto a = scheduler.OnIdle(build / 2);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->empty());
  // Exactly the remaining half: the idle budget hits zero at the same
  // moment the build does, and the build must still complete.
  auto b = scheduler.OnIdle(build / 2);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b->size(), 1u);
  EXPECT_EQ((*b)[0].index, s_val_);
  EXPECT_TRUE(scheduler.materialized().Contains(s_val_));
}

TEST_F(SchedulerTest, IdleTimeZeroSecondsMakesNoProgress) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr,
                      SchedulingStrategy::kIdleTime);
  IndexConfiguration desired;
  desired.Add(s_val_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());
  auto done = scheduler.OnIdle(0.0);
  ASSERT_TRUE(done.ok());
  EXPECT_TRUE(done->empty());
  EXPECT_EQ(scheduler.PendingBuilds(), (std::vector<IndexId>{s_val_}));
}

TEST_F(SchedulerTest, CancelledBuildProgressNotTransferred) {
  // Regression: idle seconds sunk into a build that is later cancelled
  // must not be credited to the builds still in the queue.
  Scheduler scheduler(&catalog_, &cost_model_, nullptr,
                      SchedulingStrategy::kIdleTime);
  IndexConfiguration both;
  both.Add(b_key_);
  both.Add(s_val_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(both).ok());
  // Sink half of the (large) front build's cost, then cancel it.
  ASSERT_TRUE(scheduler.OnIdle(scheduler.BuildSeconds(b_key_) / 2).ok());
  IndexConfiguration only_small;
  only_small.Add(s_val_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(only_small).ok());
  ASSERT_EQ(scheduler.PendingBuilds(), (std::vector<IndexId>{s_val_}));
  // s_val_ still owes its FULL build time; half of it is not enough even
  // though far more than that was sunk into the cancelled build.
  auto half = scheduler.OnIdle(scheduler.BuildSeconds(s_val_) / 2);
  ASSERT_TRUE(half.ok());
  EXPECT_TRUE(half->empty());
  auto rest = scheduler.OnIdle(scheduler.BuildSeconds(s_val_) / 2);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->size(), 1u);
  EXPECT_EQ((*rest)[0].index, s_val_);
}

TEST_F(SchedulerTest, ReRequestedCancelledBuildOwesFullCost) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr,
                      SchedulingStrategy::kIdleTime);
  IndexConfiguration desired;
  desired.Add(b_key_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());
  // Nearly finish the build, cancel it, then ask for it again.
  ASSERT_TRUE(
      scheduler.OnIdle(scheduler.BuildSeconds(b_key_) * 0.9).ok());
  ASSERT_TRUE(scheduler.ApplyConfiguration({}).ok());
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());
  // The 90% paid before the cancellation is gone: 90% again is still not
  // enough to finish.
  auto most = scheduler.OnIdle(scheduler.BuildSeconds(b_key_) * 0.9);
  ASSERT_TRUE(most.ok());
  EXPECT_TRUE(most->empty());
  auto rest = scheduler.OnIdle(scheduler.BuildSeconds(b_key_) * 0.2);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->size(), 1u);
  EXPECT_TRUE(scheduler.materialized().Contains(b_key_));
}

TEST_F(SchedulerTest, IdleTimeFifoOrder) {
  Scheduler scheduler(&catalog_, &cost_model_, nullptr,
                      SchedulingStrategy::kIdleTime);
  IndexConfiguration desired;
  desired.Add(b_key_);
  desired.Add(s_val_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());
  ASSERT_EQ(scheduler.PendingBuilds().size(), 2u);
  // Enough idle time for the first queued build only.
  auto done = scheduler.OnIdle(scheduler.BuildSeconds(b_key_));
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->size(), 1u);
  EXPECT_EQ((*done)[0].index, b_key_);
  EXPECT_EQ(scheduler.PendingBuilds(), (std::vector<IndexId>{s_val_}));
}

}  // namespace
}  // namespace colt
