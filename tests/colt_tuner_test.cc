#include "core/colt.h"

#include <gtest/gtest.h>

#include "baseline/offline_tuner.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

/// A workload heavily dominated by selective b_key queries; the obviously
/// right configuration is the b_key index.
std::vector<Query> KeyHeavyWorkload(const Catalog& catalog, int n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  for (int i = 0; i < n; ++i) {
    const int64_t lo = rng.NextInRange(0, 9900);
    out.push_back(MakeRangeQuery(catalog, "big", "b_key", lo, lo + 20));
  }
  return out;
}

class ColtTunerTest : public ::testing::Test {
 protected:
  ColtTunerTest() : catalog_(MakeTestCatalog()), optimizer_(&catalog_) {
    config_.storage_budget_bytes = 64LL * 1024 * 1024;
  }

  Catalog catalog_;
  QueryOptimizer optimizer_;
  ColtConfig config_;
};

TEST_F(ColtTunerTest, StartsEmptyWithFullBudget) {
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  EXPECT_TRUE(tuner.materialized().empty());
  EXPECT_TRUE(tuner.hot_set().empty());
  EXPECT_EQ(tuner.whatif_limit(), config_.max_whatif_per_epoch);
  EXPECT_EQ(tuner.current_epoch(), 0);
}

TEST_F(ColtTunerTest, EpochBoundaryEveryWQueries) {
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  const auto workload = KeyHeavyWorkload(catalog_, 35, 1);
  int boundaries = 0;
  for (const auto& q : workload) {
    const TuningStep step = tuner.OnQuery(q);
    boundaries += step.epoch_ended ? 1 : 0;
  }
  EXPECT_EQ(boundaries, 3);  // 35 queries, w = 10
  EXPECT_EQ(tuner.current_epoch(), 3);
  EXPECT_EQ(tuner.epoch_reports().size(), 3u);
}

TEST_F(ColtTunerTest, MaterializesTheObviousIndex) {
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  const IndexId b_key = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
  for (const auto& q : KeyHeavyWorkload(catalog_, 100, 2)) {
    tuner.OnQuery(q);
  }
  EXPECT_TRUE(tuner.materialized().Contains(b_key));
}

TEST_F(ColtTunerTest, ExecutionTimeDropsAfterMaterialization) {
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  const auto workload = KeyHeavyWorkload(catalog_, 100, 3);
  double first_epoch = 0.0, last_epoch = 0.0;
  for (int i = 0; i < 100; ++i) {
    const TuningStep step = tuner.OnQuery(workload[i]);
    if (i < 10) first_epoch += step.execution_seconds;
    if (i >= 90) last_epoch += step.execution_seconds;
  }
  EXPECT_LT(last_epoch, first_epoch * 0.5);
}

TEST_F(ColtTunerTest, WhatIfBudgetNeverExceededInAnyEpoch) {
  config_.max_whatif_per_epoch = 6;
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  for (const auto& q : KeyHeavyWorkload(catalog_, 200, 4)) {
    tuner.OnQuery(q);
  }
  for (const auto& report : tuner.epoch_reports()) {
    EXPECT_LE(report.whatif_used, report.whatif_limit);
    EXPECT_LE(report.whatif_used, config_.max_whatif_per_epoch);
    EXPECT_LE(report.next_whatif_limit, config_.max_whatif_per_epoch);
  }
}

TEST_F(ColtTunerTest, StorageBudgetNeverExceeded) {
  // Budget fits only the small-table index.
  const IndexId b_key = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
  config_.storage_budget_bytes = catalog_.index(b_key).size_bytes - 1;
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  for (const auto& q : KeyHeavyWorkload(catalog_, 150, 5)) {
    tuner.OnQuery(q);
  }
  for (const auto& report : tuner.epoch_reports()) {
    EXPECT_LE(report.materialized_bytes, config_.storage_budget_bytes);
  }
  EXPECT_FALSE(tuner.materialized().Contains(b_key));
}

TEST_F(ColtTunerTest, BuildTimeChargedOnMaterialization) {
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  double total_build = 0.0;
  bool build_seen = false;
  for (const auto& q : KeyHeavyWorkload(catalog_, 100, 6)) {
    const TuningStep step = tuner.OnQuery(q);
    total_build += step.build_seconds;
    if (!step.actions.empty()) {
      build_seen = true;
      EXPECT_TRUE(step.epoch_ended);  // reorganization only at boundaries
    }
  }
  EXPECT_TRUE(build_seen);
  EXPECT_GT(total_build, 0.0);
}

TEST_F(ColtTunerTest, ProfilingOverheadMatchesCallCount) {
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  for (const auto& q : KeyHeavyWorkload(catalog_, 50, 7)) {
    const TuningStep step = tuner.OnQuery(q);
    EXPECT_NEAR(step.profiling_seconds,
                step.whatif_calls * config_.whatif_call_seconds, 1e-12);
  }
}

TEST_F(ColtTunerTest, HibernatesOnceTuned) {
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  for (const auto& q : KeyHeavyWorkload(catalog_, 400, 8)) {
    tuner.OnQuery(q);
  }
  // In the last 10 epochs the tuner should be (mostly) asleep.
  const auto& reports = tuner.epoch_reports();
  int64_t late_calls = 0;
  for (size_t i = reports.size() - 10; i < reports.size(); ++i) {
    late_calls += reports[i].whatif_used;
  }
  EXPECT_LT(late_calls, 10 * config_.max_whatif_per_epoch / 4);
}

TEST_F(ColtTunerTest, AdaptsToShift) {
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  const IndexId b_key = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
  const IndexId b_val = catalog_.IndexOn(Ref(catalog_, "big", "b_val"))->id;
  Rng rng(9);
  // Phase 1: b_key queries.
  for (const auto& q : KeyHeavyWorkload(catalog_, 200, 10)) {
    tuner.OnQuery(q);
  }
  EXPECT_TRUE(tuner.materialized().Contains(b_key));
  // Phase 2: selective b_val queries only.
  for (int i = 0; i < 300; ++i) {
    const int64_t lo = rng.NextInRange(0, 990);
    tuner.OnQuery(MakeRangeQuery(catalog_, "big", "b_val", lo, lo + 1));
  }
  EXPECT_TRUE(tuner.materialized().Contains(b_val));
}

TEST_F(ColtTunerTest, DropsUselessIndexEventually) {
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  const IndexId b_key = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
  for (const auto& q : KeyHeavyWorkload(catalog_, 200, 11)) {
    tuner.OnQuery(q);
  }
  ASSERT_TRUE(tuner.materialized().Contains(b_key));
  // Shift entirely to the small table; the b_key index becomes useless.
  Rng rng(12);
  for (int i = 0; i < 400; ++i) {
    tuner.OnQuery(MakeRangeQuery(catalog_, "small", "s_val",
                                 rng.NextInRange(0, 99),
                                 rng.NextInRange(0, 99)));
  }
  EXPECT_FALSE(tuner.materialized().Contains(b_key));
}

TEST_F(ColtTunerTest, EpochReportsInternallyConsistent) {
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  for (const auto& q : KeyHeavyWorkload(catalog_, 150, 13)) {
    tuner.OnQuery(q);
  }
  int expected_epoch = 0;
  for (const auto& report : tuner.epoch_reports()) {
    EXPECT_EQ(report.epoch, expected_epoch++);
    EXPECT_GE(report.candidate_count, 1);
    EXPECT_GE(report.cluster_count, 1);
    // Hot and materialized sets are disjoint.
    for (IndexId hot : report.hot_ids) {
      EXPECT_TRUE(std::find(report.materialized_ids.begin(),
                            report.materialized_ids.end(),
                            hot) == report.materialized_ids.end());
    }
  }
}

TEST_F(ColtTunerTest, DeterministicGivenSeed) {
  const auto workload = KeyHeavyWorkload(catalog_, 120, 14);
  QueryOptimizer opt1(&catalog_), opt2(&catalog_);
  ColtTuner t1(&catalog_, &opt1, config_, nullptr, 99);
  ColtTuner t2(&catalog_, &opt2, config_, nullptr, 99);
  for (const auto& q : workload) {
    const TuningStep s1 = t1.OnQuery(q);
    const TuningStep s2 = t2.OnQuery(q);
    ASSERT_DOUBLE_EQ(s1.execution_seconds, s2.execution_seconds);
    ASSERT_EQ(s1.whatif_calls, s2.whatif_calls);
  }
  EXPECT_EQ(t1.materialized().ids(), t2.materialized().ids());
}

TEST_F(ColtTunerTest, PhysicalModeBuildsIndexes) {
  Database db(MakeTestCatalog(), 21);
  ASSERT_TRUE(db.MaterializeAll().ok());
  QueryOptimizer optimizer(&db.catalog());
  ColtTuner tuner(&db.mutable_catalog(), &optimizer, config_, &db);
  for (const auto& q : KeyHeavyWorkload(db.catalog(), 100, 22)) {
    tuner.OnQuery(q);
  }
  // Whatever COLT materialized exists physically.
  for (IndexId id : tuner.materialized().ids()) {
    EXPECT_TRUE(db.HasBuiltIndex(id));
  }
  EXPECT_FALSE(tuner.materialized().empty());
}


TEST_F(ColtTunerTest, IdleTimeStrategyChargesNoBuildTime) {
  config_.scheduling_strategy = SchedulingStrategy::kIdleTime;
  config_.idle_seconds_per_query = 5.0;
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  const IndexId b_key = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
  double total_build = 0.0;
  for (const auto& q : KeyHeavyWorkload(catalog_, 300, 31)) {
    total_build += tuner.OnQuery(q).build_seconds;
  }
  EXPECT_DOUBLE_EQ(total_build, 0.0);  // builds happen in idle gaps
  EXPECT_TRUE(tuner.materialized().Contains(b_key));
}

TEST_F(ColtTunerTest, IdleTimeStrategyDelaysAvailability) {
  // With almost no idle time, the index stays pending.
  config_.scheduling_strategy = SchedulingStrategy::kIdleTime;
  config_.idle_seconds_per_query = 1e-9;
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  for (const auto& q : KeyHeavyWorkload(catalog_, 200, 32)) {
    tuner.OnQuery(q);
  }
  EXPECT_TRUE(tuner.materialized().empty());
}


TEST_F(ColtTunerTest, ExplainStateCoversAllRoles) {
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  for (const auto& q : KeyHeavyWorkload(catalog_, 200, 41)) {
    tuner.OnQuery(q);
  }
  // Add a weaker candidate so the candidate role appears too.
  Rng rng(42);
  for (int i = 0; i < 30; ++i) {
    tuner.OnQuery(MakeRangeQuery(catalog_, "big", "b_val",
                                 rng.NextInRange(0, 500), 999));
  }
  const auto rows = tuner.ExplainState();
  ASSERT_FALSE(rows.empty());
  bool saw_materialized = false;
  double prev = 1e300;
  for (const auto& row : rows) {
    EXPECT_FALSE(row.name.empty());
    EXPECT_LE(row.net_benefit, prev);  // sorted descending
    prev = row.net_benefit;
    if (row.role == "materialized") {
      saw_materialized = true;
      EXPECT_DOUBLE_EQ(row.mat_cost, 0.0);
    } else {
      EXPECT_GT(row.mat_cost, 0.0);
      EXPECT_NEAR(row.net_benefit, row.forecast_benefit - row.mat_cost,
                  1e-6);
    }
  }
  EXPECT_TRUE(saw_materialized);
}

}  // namespace
}  // namespace colt
