/// Differential tests for the determinism contract of DESIGN.md §10: a run
/// with ColtConfig::num_workers = N must be bit-identical to the serial
/// run for every N — same per-query time decomposition, same epoch
/// reports (compared as CSV bytes), same chosen index sets, same chaos
/// counters, same physically built trees. Parallelism may only change
/// wall-clock time, never results.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "baseline/offline_tuner.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/workloads.h"
#include "query/workload.h"
#include "storage/tpch_schema.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;

std::string EpochCsv(const ColtRunResult& run) {
  std::ostringstream out;
  EXPECT_TRUE(WriteEpochReportCsv(run.epochs, out).ok());
  return out.str();
}

std::string PerQueryCsv(const ColtRunResult& run) {
  std::ostringstream out;
  EXPECT_TRUE(WritePerQueryCsv(run, /*offline_seconds=*/{}, out).ok());
  return out.str();
}

/// EXPECT_EQ on doubles is deliberate throughout: the contract is
/// bit-identity, not approximate equality.
void ExpectRunsBitIdentical(const ColtRunResult& serial,
                            const ColtRunResult& parallel) {
  ASSERT_EQ(serial.per_query.size(), parallel.per_query.size());
  for (size_t i = 0; i < serial.per_query.size(); ++i) {
    EXPECT_EQ(serial.per_query[i].execution, parallel.per_query[i].execution)
        << "query " << i;
    EXPECT_EQ(serial.per_query[i].profiling, parallel.per_query[i].profiling)
        << "query " << i;
    EXPECT_EQ(serial.per_query[i].build, parallel.per_query[i].build)
        << "query " << i;
    EXPECT_EQ(serial.per_query[i].wasted_build,
              parallel.per_query[i].wasted_build)
        << "query " << i;
  }
  EXPECT_EQ(serial.final_materialized.ids(), parallel.final_materialized.ids());
  EXPECT_EQ(serial.distinct_indexes_profiled,
            parallel.distinct_indexes_profiled);
  EXPECT_EQ(EpochCsv(serial), EpochCsv(parallel));
  EXPECT_EQ(PerQueryCsv(serial), PerQueryCsv(parallel));
}

/// The Fig. 4 experiment at reduced scale: 4 phases x 60 queries with
/// 20-query gradual transitions over the TPC-H catalog.
std::vector<Query> ShiftingWorkload(Catalog* catalog) {
  const std::vector<QueryDistribution> dists =
      ExperimentWorkloads::ShiftingPhases(catalog);
  std::vector<WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, 60});
  WorkloadGenerator gen(catalog, /*seed=*/99);
  return GeneratePhasedWorkload(gen, phases, /*transition_length=*/20);
}

/// Budget sized like fig4_shifting.cc (fits ~4 relevant indexes), computed
/// on a scratch catalog so the run catalogs start identical.
int64_t ShiftingBudget() {
  Catalog catalog = MakeTpchCatalog();
  const std::vector<QueryDistribution> dists =
      ExperimentWorkloads::ShiftingPhases(&catalog);
  QueryOptimizer opt(&catalog);
  OfflineTuner miner(&catalog, &opt);
  WorkloadGenerator gen(&catalog, 1234);
  std::vector<Query> sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 60; ++i) sample.push_back(gen.Sample(d));
  }
  Result<std::vector<IndexId>> relevant = miner.MineRelevantIndexes(sample);
  EXPECT_TRUE(relevant.ok());
  return BudgetForIndexes(catalog, relevant.value(), 4.0);
}

ColtRunResult RunShifting(int workers, int64_t budget) {
  Catalog catalog = MakeTpchCatalog();
  const std::vector<Query> workload = ShiftingWorkload(&catalog);
  ColtConfig config;
  config.storage_budget_bytes = budget;
  config.num_workers = workers;
  return RunColtWorkload(&catalog, workload, config);
}

TEST(ParallelDeterminismTest, ShiftingWorkloadSerialVsFourWorkers) {
  const int64_t budget = ShiftingBudget();
  const ColtRunResult serial = RunShifting(/*workers=*/0, budget);
  // The run must have done real work for the comparison to mean anything.
  ASSERT_FALSE(serial.final_materialized.empty());
  ASSERT_FALSE(serial.epochs.empty());
  ExpectRunsBitIdentical(serial, RunShifting(/*workers=*/4, budget));
}

TEST(ParallelDeterminismTest, ResultsInvariantAcrossWorkerCounts) {
  const int64_t budget = ShiftingBudget();
  const ColtRunResult one = RunShifting(/*workers=*/1, budget);
  ExpectRunsBitIdentical(one, RunShifting(/*workers=*/3, budget));
}

/// Mixed-column workload over the small test catalog, enough repetition on
/// a few columns for COLT to materialize.
std::vector<Query> MixedWorkload(const Catalog& catalog, int n,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  for (int i = 0; i < n; ++i) {
    const int64_t lo = rng.NextInRange(0, 9000);
    switch (rng.NextBelow(4)) {
      case 0:
        out.push_back(
            MakeRangeQuery(catalog, "big", "b_val", lo % 1000, lo % 1000 + 5));
        break;
      case 1:
        out.push_back(
            MakeRangeQuery(catalog, "small", "s_ref", lo % 1000,
                           lo % 1000 + 10));
        break;
      default:
        // Key-heavy core: concentrated enough benefit that COLT
        // materializes (and, under faults, retries) the b_key index.
        out.push_back(MakeRangeQuery(catalog, "big", "b_key", lo, lo + 20));
        break;
    }
  }
  return out;
}

/// The chaos-tier fault plan (bench/chaos_colt.cc "moderate" weather):
/// every fault site active so the differential covers degraded what-if,
/// failed builds, slow scans, and budget shrinks.
ColtConfig ChaosConfig(int workers) {
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  config.num_workers = workers;
  config.fault.Fail(fault_sites::kIndexBuild, 0.40);
  config.fault.Fail(fault_sites::kWhatIfOptimize, 0.10);
  config.fault.Slow(fault_sites::kWhatIfSlow, 0.10, 3.0);
  config.fault.Slow(fault_sites::kStorageScan, 0.10, 2.5);
  config.fault.Slow(fault_sites::kBudgetShrink, 0.01, 0.9);
  config.whatif_deadline_seconds = 0.1;
  return config;
}

void ExpectChaosRunsBitIdentical(const ChaosRunResult& serial,
                                 const ChaosRunResult& parallel) {
  EXPECT_EQ(serial.violation_count, parallel.violation_count);
  EXPECT_EQ(serial.injected_faults, parallel.injected_faults);
  EXPECT_EQ(serial.build_failures, parallel.build_failures);
  EXPECT_EQ(serial.quarantine_events, parallel.quarantine_events);
  EXPECT_EQ(serial.degraded_whatif, parallel.degraded_whatif);
  EXPECT_EQ(serial.emergency_evictions, parallel.emergency_evictions);
  EXPECT_EQ(serial.final_budget_bytes, parallel.final_budget_bytes);
  ExpectRunsBitIdentical(serial.run, parallel.run);
}

TEST(ParallelDeterminismTest, ChaosFaultSitesFireIdenticallyWithWorkers) {
  Catalog cat_serial = MakeTestCatalog();
  Catalog cat_parallel = MakeTestCatalog();
  const std::vector<Query> workload = MixedWorkload(cat_serial, 250, 11);
  const ChaosRunResult serial =
      RunChaosWorkload(&cat_serial, workload, ChaosConfig(0));
  const ChaosRunResult parallel =
      RunChaosWorkload(&cat_parallel, workload, ChaosConfig(4));
  // The weather must actually have happened, and the invariants held.
  ASSERT_GT(serial.injected_faults, 0);
  ASSERT_GT(serial.build_failures, 0);
  EXPECT_TRUE(serial.ok()) << (serial.violations.empty()
                                   ? "no detail"
                                   : serial.violations[0].detail);
  EXPECT_TRUE(parallel.ok());
  ExpectChaosRunsBitIdentical(serial, parallel);
}

TEST(ParallelDeterminismTest, PhysicalStagedBuildsMatchSerialUnderFaults) {
  // Physical mode: staged PrepareIndex/InstallIndex runs against real
  // B+-trees, with injected build failures; the chaos audit checks after
  // every query that the physical trees equal the materialized set.
  auto run = [](int workers) {
    Database db(MakeTestCatalog(), 7);
    EXPECT_TRUE(db.MaterializeAll().ok());
    Catalog* catalog = &db.mutable_catalog();
    const std::vector<Query> workload = MixedWorkload(*catalog, 200, 13);
    ColtConfig config;
    config.storage_budget_bytes = 64LL * 1024 * 1024;
    config.num_workers = workers;
    config.fault.Fail(fault_sites::kIndexBuild, 0.5);
    ChaosRunResult result = RunChaosWorkload(catalog, workload, config, &db);
    // Fold the physical end state into the comparison.
    EXPECT_EQ(db.BuiltIndexIds(), result.run.final_materialized.ids());
    return result;
  };
  const ChaosRunResult serial = run(0);
  const ChaosRunResult parallel = run(2);
  ASSERT_GT(serial.injected_faults, 0);
  EXPECT_TRUE(serial.ok()) << (serial.violations.empty()
                                   ? "no detail"
                                   : serial.violations[0].detail);
  EXPECT_TRUE(parallel.ok()) << (parallel.violations.empty()
                                     ? "no detail"
                                     : parallel.violations[0].detail);
  ExpectChaosRunsBitIdentical(serial, parallel);
}

TEST(ParallelDeterminismTest, IdleTimeBackgroundBuildsMatchSerial) {
  // kIdleTime is where builds genuinely overlap the query stream: the
  // bulk load runs on a worker while the simulated idle clock ticks, and
  // the tree is installed at the OnIdle completion boundary.
  auto run = [](int workers) {
    Database db(MakeTestCatalog(), 7);
    EXPECT_TRUE(db.MaterializeAll().ok());
    Catalog* catalog = &db.mutable_catalog();
    const std::vector<Query> workload = MixedWorkload(*catalog, 150, 17);
    ColtConfig config;
    config.storage_budget_bytes = 64LL * 1024 * 1024;
    config.scheduling_strategy = SchedulingStrategy::kIdleTime;
    // Generous idle budget so queued builds actually finish within the
    // short workload (the default 2 s/query never completes a 100k-row
    // bulk load before the run ends).
    config.idle_seconds_per_query = 60.0;
    config.num_workers = workers;
    ChaosRunResult result = RunChaosWorkload(catalog, workload, config, &db);
    EXPECT_EQ(db.BuiltIndexIds(), result.run.final_materialized.ids());
    return result;
  };
  const ChaosRunResult serial = run(0);
  const ChaosRunResult parallel = run(2);
  // Background builds must actually have completed at some epoch (the
  // final set may legitimately be empty again — the tuner drops indexes
  // whose benefit decays near the end of the stream).
  bool any_materialized = false;
  for (const EpochReport& e : serial.run.epochs) {
    any_materialized = any_materialized || !e.materialized_ids.empty();
  }
  ASSERT_TRUE(any_materialized);
  EXPECT_TRUE(serial.ok());
  EXPECT_TRUE(parallel.ok());
  ExpectChaosRunsBitIdentical(serial, parallel);
}

}  // namespace
}  // namespace colt
