#include "core/profiler.h"

#include <gtest/gtest.h>

#include "core/colt.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest()
      : catalog_(MakeTestCatalog()),
        optimizer_(&catalog_),
        clusters_(&catalog_, config_.history_depth),
        hot_stats_(config_.confidence),
        mat_stats_(config_.confidence),
        candidates_(config_.history_depth, config_.crude_smoothing_alpha),
        profiler_(&catalog_, &optimizer_, &clusters_, &hot_stats_,
                  &mat_stats_, &candidates_, &config_, /*seed=*/3) {
    b_key_ = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
    b_val_ = catalog_.IndexOn(Ref(catalog_, "big", "b_val"))->id;
  }

  Profiler::ProfileOutcome Profile(const Query& q,
                                   const IndexConfiguration& materialized,
                                   const std::vector<IndexId>& hot,
                                   int limit, int* used) {
    const PlanResult plan = optimizer_.Optimize(q, materialized);
    return profiler_.ProfileQuery(q, plan, materialized, hot, limit, used,
                                  /*current_epoch=*/0);
  }

  ColtConfig config_;
  Catalog catalog_;
  QueryOptimizer optimizer_;
  ClusterManager clusters_;
  GainStatsStore hot_stats_;
  GainStatsStore mat_stats_;
  CandidateSet candidates_;
  Profiler profiler_;
  IndexId b_key_, b_val_;
};

TEST_F(ProfilerTest, MinesCandidatesFromSelections) {
  int used = 0;
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  Profile(q, {}, {}, 20, &used);
  EXPECT_TRUE(candidates_.Contains(b_key_));
  EXPECT_FALSE(candidates_.Contains(b_val_));
  EXPECT_GT(candidates_.SmoothedBenefit(b_key_), 0.0);
}

TEST_F(ProfilerTest, NoWhatIfWithoutHotOrMaterialized) {
  int used = 0;
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const auto outcome = Profile(q, {}, {}, 20, &used);
  EXPECT_EQ(outcome.whatif_calls, 0);
  EXPECT_EQ(used, 0);
}

TEST_F(ProfilerTest, HotIndexProfiledWhenRelevant) {
  int used = 0;
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const auto outcome = Profile(q, {}, {b_key_}, 20, &used);
  EXPECT_EQ(outcome.whatif_calls, 1);
  EXPECT_EQ(used, 1);
  const uint64_t sig = TableConfigSignature(catalog_, {}, 0);
  EXPECT_EQ(hot_stats_.MeasurementCount(b_key_, outcome.cluster, sig), 1);
}

TEST_F(ProfilerTest, IrrelevantHotIndexNotProfiled) {
  int used = 0;
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const auto outcome = Profile(q, {}, {b_val_}, 20, &used);
  EXPECT_EQ(outcome.whatif_calls, 0);
}

TEST_F(ProfilerTest, BudgetNeverExceeded) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  for (int limit : {0, 1, 3}) {
    int used = 0;
    for (int i = 0; i < 50; ++i) {
      Profile(q, {}, {b_key_}, limit, &used);
      ASSERT_LE(used, limit);
    }
    EXPECT_EQ(used, limit);  // eventually exhausts the budget exactly
  }
}

TEST_F(ProfilerTest, MaterializedUsageCounted) {
  IndexConfiguration config;
  config.Add(b_key_);
  int used = 0;
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const auto outcome = Profile(q, config, {}, 20, &used);
  EXPECT_EQ(profiler_.EpochUsageCount(b_key_, outcome.cluster), 1);
  profiler_.AdvanceEpoch();
  EXPECT_EQ(profiler_.EpochUsageCount(b_key_, outcome.cluster), 0);
}

TEST_F(ProfilerTest, MaterializedGainsRecordedInMatStats) {
  IndexConfiguration config;
  config.Add(b_key_);
  int used = 0;
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const auto outcome = Profile(q, config, {}, 20, &used);
  ASSERT_EQ(outcome.whatif_calls, 1);
  const uint64_t sig = TableConfigSignature(catalog_, config, 0);
  EXPECT_EQ(mat_stats_.MeasurementCount(b_key_, outcome.cluster, sig), 1);
  EXPECT_EQ(hot_stats_.MeasurementCount(b_key_, outcome.cluster, sig), 0);
}

TEST_F(ProfilerTest, UnmeasuredPairsSampleAtFullRate) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const ClusterId cluster = clusters_.Assign(q);
  EXPECT_DOUBLE_EQ(profiler_.SampleRate(b_key_, cluster, {}, 0.0), 1.0);
  EXPECT_TRUE(
      std::isinf(profiler_.ErrorContribution(b_key_, cluster, {})));
}

TEST_F(ProfilerTest, WellMeasuredZeroVariancePairsSampleAtFloor) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const ClusterId cluster = clusters_.Assign(q);
  const uint64_t sig = TableConfigSignature(catalog_, {}, 0);
  for (int i = 0; i < 10; ++i) hot_stats_.Record(b_key_, cluster, 50.0, sig);
  EXPECT_DOUBLE_EQ(profiler_.ErrorContribution(b_key_, cluster, {}), 0.0);
  EXPECT_DOUBLE_EQ(profiler_.SampleRate(b_key_, cluster, {}, 10.0),
                   config_.min_sample_rate);
}

TEST_F(ProfilerTest, HighVariancePairsSampleMore) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const ClusterId cluster = clusters_.Assign(q);
  const uint64_t sig = TableConfigSignature(catalog_, {}, 0);
  for (int i = 0; i < 10; ++i) {
    hot_stats_.Record(b_key_, cluster, i % 2 == 0 ? 0.0 : 100.0, sig);
    hot_stats_.Record(b_val_, cluster, 50.0, sig);
  }
  const double noisy = profiler_.ErrorContribution(b_key_, cluster, {});
  const double stable = profiler_.ErrorContribution(b_val_, cluster, {});
  EXPECT_GT(noisy, stable);
  EXPECT_GT(profiler_.SampleRate(b_key_, cluster, {}, noisy),
            profiler_.SampleRate(b_val_, cluster, {}, noisy));
}

TEST_F(ProfilerTest, UniformSamplingWhenAdaptiveDisabled) {
  config_.enable_adaptive_sampling = false;
  config_.uniform_sample_rate = 0.42;
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const ClusterId cluster = clusters_.Assign(q);
  EXPECT_DOUBLE_EQ(profiler_.SampleRate(b_key_, cluster, {}, 5.0), 0.42);
}

TEST_F(ProfilerTest, TableConfigSignatureChangesWithTableIndexes) {
  IndexConfiguration config;
  const uint64_t empty_sig = TableConfigSignature(catalog_, config, 0);
  config.Add(b_key_);
  const uint64_t with_key = TableConfigSignature(catalog_, config, 0);
  EXPECT_NE(empty_sig, with_key);
  // Indexes on other tables do not affect table 0's signature.
  const IndexId s_ref = catalog_.IndexOn(Ref(catalog_, "small", "s_ref"))->id;
  config.Add(s_ref);
  EXPECT_EQ(with_key, TableConfigSignature(catalog_, config, 0));
}

}  // namespace
}  // namespace colt
