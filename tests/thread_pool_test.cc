/// Unit tests for the deterministic worker pool: ordered joins, exception
/// and Status propagation through futures, pool reuse across rounds, the
/// zero-worker inline mode, and the per-task RNG split. The determinism
/// claims here are the foundation the parallel-vs-serial differential
/// tests (parallel_determinism_test.cc) build on.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/status.h"

namespace colt {
namespace {

TEST(ThreadPoolTest, InlineModeRunsTaskBeforeReturning) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  bool ran = false;
  std::future<int> f = pool.Submit([&ran] {
    ran = true;
    return 41 + 1;
  });
  // Inline mode completes the task inside Submit — the future is ready
  // before the caller touches it, and side effects are already visible.
  EXPECT_TRUE(ran);
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, NegativeWorkerCountMeansInline) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.num_workers(), 0);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, MapJoinsInSubmissionOrder) {
  ThreadPool pool(4);
  // Earlier tasks sleep longer, so completion order is roughly the reverse
  // of submission order; the merged vector must still be index-ordered.
  const size_t n = 8;
  std::vector<int> out = pool.Map(n, [n](size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2 * (n - i)));
    return static_cast<int>(i);
  });
  ASSERT_EQ(out.size(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ThreadPoolTest, MapResultsIdenticalAcrossWorkerCounts) {
  auto run = [](int workers) {
    ThreadPool pool(workers);
    return pool.Map(16, [](size_t i) {
      Rng rng = ThreadPool::TaskRng(/*parent_seed=*/99, i);
      uint64_t sum = 0;
      for (int d = 0; d < 100; ++d) sum += rng.NextBelow(1'000'000);
      return sum;
    });
  };
  const std::vector<uint64_t> serial = run(0);
  EXPECT_EQ(serial, run(1));
  EXPECT_EQ(serial, run(4));
}

TEST(ThreadPoolTest, FirstExceptionByIndexWinsAfterAllTasksRan) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    pool.Map(8, [&executed](size_t i) -> int {
      executed.fetch_add(1);
      // Task 5 fails fast, task 2 fails slow: the rethrown exception must
      // still be task 2's (lowest failing index), not the first to finish.
      if (i == 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        throw std::runtime_error("task 2");
      }
      if (i == 5) throw std::runtime_error("task 5");
      return static_cast<int>(i);
    });
    FAIL() << "Map should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "task 2");
  }
  // Map waits for every task before rethrowing, so no task is left running
  // against destroyed captures.
  EXPECT_EQ(executed.load(), 8);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, StatusAndResultTravelAsValues) {
  ThreadPool pool(2);
  std::future<Status> ok = pool.Submit([] { return Status::OK(); });
  std::future<Status> bad =
      pool.Submit([] { return Status::Internal("substrate weather"); });
  EXPECT_TRUE(ok.get().ok());
  const Status status = bad.get();
  EXPECT_EQ(status.code(), StatusCode::kInternal);

  // Move-only payloads (the Scheduler stages Result<unique_ptr<BTreeIndex>>
  // this way) must survive the trip through the future.
  std::future<Result<std::unique_ptr<int>>> staged =
      pool.Submit([]() -> Result<std::unique_ptr<int>> {
        return std::make_unique<int>(7);
      });
  Result<std::unique_ptr<int>> result = staged.get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*std::move(result).value(), 7);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossRounds) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::vector<int> out =
        pool.Map(6, [round](size_t i) { return round * 100 + static_cast<int>(i); });
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], round * 100 + static_cast<int>(i));
    }
  }
}

TEST(ThreadPoolTest, DestructorRunsEverySubmittedTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      // Futures intentionally dropped: shutdown must still run the backlog
      // (a staged build whose future is discarded may not be lost).
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, TaskRngIsAFunctionOfSeedAndIndexOnly) {
  Rng a = ThreadPool::TaskRng(123, 4);
  Rng b = ThreadPool::TaskRng(123, 4);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.Next(), b.Next());

  // Adjacent task indexes and adjacent seeds must yield distinct streams.
  Rng c = ThreadPool::TaskRng(123, 5);
  Rng d = ThreadPool::TaskRng(124, 4);
  Rng base = ThreadPool::TaskRng(123, 4);
  const uint64_t first = base.Next();
  EXPECT_NE(first, c.Next());
  EXPECT_NE(first, d.Next());
}

TEST(ThreadPoolTest, HardwareConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

}  // namespace
}  // namespace colt
