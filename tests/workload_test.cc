#include "query/workload.h"

#include <gtest/gtest.h>

#include "harness/workloads.h"
#include "storage/tpch_schema.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

QueryTemplate SimpleTemplate(const Catalog& catalog, double min_sel,
                             double max_sel) {
  QueryTemplate t;
  t.name = "t";
  t.tables = {catalog.FindTable("big")};
  SelectionSpec spec;
  spec.column = Ref(catalog, "big", "b_key");
  spec.min_selectivity = min_sel;
  spec.max_selectivity = max_sel;
  t.selections = {spec};
  return t;
}

/// Property: instantiated predicates hit the requested selectivity range.
class InstantiateSelectivityTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(InstantiateSelectivityTest, WithinSpec) {
  Catalog catalog = MakeTestCatalog();
  const auto [lo, hi] = GetParam();
  WorkloadGenerator gen(&catalog, 17);
  const QueryTemplate tmpl = SimpleTemplate(catalog, lo, hi);
  for (int i = 0; i < 200; ++i) {
    const Query q = gen.Instantiate(tmpl);
    ASSERT_EQ(q.selections().size(), 1u);
    const double sel = EstimateSelectivity(catalog, q.selections()[0]);
    // Rounding to integer domain bounds allows slight overshoot.
    EXPECT_GE(sel, lo * 0.4);
    EXPECT_LE(sel, hi * 1.6 + 1e-3);
    EXPECT_TRUE(q.Validate(catalog).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, InstantiateSelectivityTest,
    ::testing::Values(std::make_pair(0.001, 0.01), std::make_pair(0.01, 0.05),
                      std::make_pair(0.05, 0.2), std::make_pair(0.3, 0.6)));

TEST(WorkloadGenerator, EqualityPredicates) {
  Catalog catalog = MakeTestCatalog();
  WorkloadGenerator gen(&catalog, 21);
  QueryTemplate tmpl = SimpleTemplate(catalog, 0, 0);
  tmpl.selections[0].equality = true;
  for (int i = 0; i < 50; ++i) {
    const Query q = gen.Instantiate(tmpl);
    EXPECT_TRUE(q.selections()[0].is_equality());
  }
}

TEST(WorkloadGenerator, QueryIdsIncrease) {
  Catalog catalog = MakeTestCatalog();
  WorkloadGenerator gen(&catalog, 23);
  const QueryTemplate tmpl = SimpleTemplate(catalog, 0.01, 0.05);
  const Query q1 = gen.Instantiate(tmpl);
  const Query q2 = gen.Instantiate(tmpl);
  EXPECT_LT(q1.id(), q2.id());
}

TEST(WorkloadGenerator, SampleRespectsWeights) {
  Catalog catalog = MakeTestCatalog();
  WorkloadGenerator gen(&catalog, 29);
  QueryDistribution dist;
  dist.name = "d";
  dist.templates = {SimpleTemplate(catalog, 0.001, 0.002),
                    SimpleTemplate(catalog, 0.4, 0.5)};
  dist.templates[1].tables = {catalog.FindTable("small")};
  dist.templates[1].selections[0].column = Ref(catalog, "small", "s_val");
  dist.weights = {9.0, 1.0};
  int first = 0;
  const int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    const Query q = gen.Sample(dist);
    if (q.tables()[0] == catalog.FindTable("big")) ++first;
  }
  EXPECT_NEAR(first / static_cast<double>(kDraws), 0.9, 0.03);
}

TEST(QueryDistribution, RelevantColumnsDeduplicated) {
  Catalog catalog = MakeTestCatalog();
  QueryDistribution dist;
  dist.templates = {SimpleTemplate(catalog, 0.1, 0.2),
                    SimpleTemplate(catalog, 0.3, 0.4)};
  dist.weights = {1, 1};
  EXPECT_EQ(dist.RelevantColumns().size(), 1u);
}

TEST(PhasedWorkload, LengthAndPhaseLabels) {
  Catalog catalog = MakeTestCatalog();
  WorkloadGenerator gen(&catalog, 31);
  QueryDistribution d1, d2;
  d1.templates = {SimpleTemplate(catalog, 0.001, 0.01)};
  d1.weights = {1.0};
  d2 = d1;
  d2.templates[0].selections[0].column = Ref(catalog, "big", "b_val");
  std::vector<WorkloadPhase> phases = {{d1, 100}, {d2, 100}};
  std::vector<int> labels;
  const auto workload = GeneratePhasedWorkload(gen, phases, 20, &labels);
  EXPECT_EQ(workload.size(), 220u);
  EXPECT_EQ(labels.size(), 220u);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[99], 0);
  EXPECT_EQ(labels[219], 1);
  // Transition labels are split between adjacent phases.
  EXPECT_EQ(labels[100], 0);
  EXPECT_EQ(labels[119], 1);
}

TEST(PhasedWorkload, TransitionBlendsDistributions) {
  Catalog catalog = MakeTestCatalog();
  WorkloadGenerator gen(&catalog, 37);
  QueryDistribution d1, d2;
  d1.templates = {SimpleTemplate(catalog, 0.001, 0.01)};
  d1.weights = {1.0};
  d2.templates = {SimpleTemplate(catalog, 0.001, 0.01)};
  d2.templates[0].tables = {catalog.FindTable("small")};
  d2.templates[0].selections[0].column = Ref(catalog, "small", "s_val");
  d2.weights = {1.0};
  std::vector<WorkloadPhase> phases = {{d1, 50}, {d2, 50}};
  const auto workload = GeneratePhasedWorkload(gen, phases, 100);
  // Within the long transition, both tables appear.
  int from_d2 = 0;
  for (size_t i = 50; i < 150; ++i) {
    if (workload[i].tables()[0] == catalog.FindTable("small")) ++from_d2;
  }
  EXPECT_GT(from_d2, 20);
  EXPECT_LT(from_d2, 80);
}

TEST(NoisyWorkload, FractionAndBursts) {
  Catalog catalog = MakeTestCatalog();
  WorkloadGenerator gen(&catalog, 41);
  QueryDistribution base, noise;
  base.templates = {SimpleTemplate(catalog, 0.001, 0.01)};
  base.weights = {1.0};
  noise.templates = {SimpleTemplate(catalog, 0.001, 0.01)};
  noise.templates[0].tables = {catalog.FindTable("small")};
  noise.templates[0].selections[0].column = Ref(catalog, "small", "s_val");
  noise.weights = {1.0};

  std::vector<bool> is_noise;
  const auto workload = GenerateNoisyWorkload(gen, base, noise, 500, 100, 25,
                                              0.2, 2, &is_noise);
  ASSERT_EQ(workload.size(), is_noise.size());
  // First 100 queries are pure base.
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(is_noise[i]);
  // Noise fraction ~20%.
  int noisy = 0;
  for (bool b : is_noise) noisy += b ? 1 : 0;
  EXPECT_NEAR(noisy / static_cast<double>(workload.size()), 0.2, 0.05);
  // Noise occurs in contiguous bursts of exactly the requested length.
  int run = 0, bursts = 0;
  for (size_t i = 0; i < is_noise.size(); ++i) {
    if (is_noise[i]) {
      ++run;
    } else if (run > 0) {
      EXPECT_EQ(run, 25);
      ++bursts;
      run = 0;
    }
  }
  if (run > 0) ++bursts;
  EXPECT_GE(bursts, 2);
}

TEST(ExperimentWorkloads, FocusedHas18RelevantColumns) {
  Catalog catalog = MakeTpchCatalog();
  const QueryDistribution dist =
      ExperimentWorkloads::Focused(&catalog, 0);
  EXPECT_EQ(dist.RelevantColumns().size(), 18u);
  ASSERT_EQ(dist.templates.size(), dist.weights.size());
  // All queries instantiate and validate.
  WorkloadGenerator gen(&catalog, 43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(gen.Sample(dist).Validate(catalog).ok());
  }
}

TEST(ExperimentWorkloads, ShiftingPhasesShareRelevantPool) {
  Catalog catalog = MakeTpchCatalog();
  const auto phases = ExperimentWorkloads::ShiftingPhases(&catalog);
  ASSERT_EQ(phases.size(), 4u);
  // Union of relevant columns stays bounded (the paper's fixed pool of 18).
  std::vector<ColumnRef> all;
  for (const auto& p : phases) {
    const auto cols = p.RelevantColumns();
    all.insert(all.end(), cols.begin(), cols.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  EXPECT_GE(all.size(), 15u);
  EXPECT_LE(all.size(), 18u);
  // Adjacent phases overlap.
  for (int p = 0; p + 1 < 4; ++p) {
    const auto a = phases[p].RelevantColumns();
    const auto b = phases[p + 1].RelevantColumns();
    std::vector<ColumnRef> common;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(common));
    EXPECT_FALSE(common.empty()) << "phases " << p << " and " << p + 1;
  }
}

TEST(ExperimentWorkloads, NoiseDistributionsDisjoint) {
  Catalog catalog = MakeTpchCatalog();
  const auto q1 = ExperimentWorkloads::NoiseBase(&catalog).RelevantColumns();
  const auto q2 = ExperimentWorkloads::NoiseBurst(&catalog).RelevantColumns();
  std::vector<ColumnRef> common;
  std::set_intersection(q1.begin(), q1.end(), q2.begin(), q2.end(),
                        std::back_inserter(common));
  EXPECT_TRUE(common.empty());
}


TEST(MultiClientWorkload, LengthAndShares) {
  Catalog catalog = MakeTestCatalog();
  WorkloadGenerator gen(&catalog, 47);
  QueryDistribution d1, d2;
  d1.templates = {SimpleTemplate(catalog, 0.001, 0.01)};
  d1.weights = {1.0};
  d2.templates = {SimpleTemplate(catalog, 0.001, 0.01)};
  d2.templates[0].tables = {catalog.FindTable("small")};
  d2.templates[0].selections[0].column = Ref(catalog, "small", "s_val");
  d2.weights = {1.0};

  ClientSpec heavy;
  heavy.phases = {{d1, 50}};
  heavy.rate = 3.0;
  ClientSpec light;
  light.phases = {{d2, 50}};
  light.rate = 1.0;

  std::vector<int> client_of_query;
  const auto workload = GenerateMultiClientWorkload(
      gen, {heavy, light}, 2000, &client_of_query);
  ASSERT_EQ(workload.size(), 2000u);
  ASSERT_EQ(client_of_query.size(), 2000u);
  int heavy_count = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    const bool from_heavy = client_of_query[i] == 0;
    heavy_count += from_heavy ? 1 : 0;
    // The label matches the query's table.
    EXPECT_EQ(workload[i].tables()[0],
              from_heavy ? catalog.FindTable("big")
                         : catalog.FindTable("small"));
  }
  EXPECT_NEAR(heavy_count / 2000.0, 0.75, 0.05);
}

TEST(MultiClientWorkload, SingleClientDegeneratesToPhased) {
  Catalog catalog = MakeTestCatalog();
  QueryDistribution d;
  d.templates = {SimpleTemplate(catalog, 0.001, 0.01)};
  d.weights = {1.0};
  ClientSpec only;
  only.phases = {{d, 30}};
  only.transition_length = 0;
  WorkloadGenerator gen(&catalog, 53);
  const auto workload = GenerateMultiClientWorkload(gen, {only}, 100);
  EXPECT_EQ(workload.size(), 100u);
  for (const auto& q : workload) {
    EXPECT_TRUE(q.Validate(catalog).ok());
  }
}

}  // namespace
}  // namespace colt
