#include "harness/report.h"
#include <fstream>

#include <sstream>

#include <gtest/gtest.h>

namespace colt {
namespace {

ColtRunResult SampleRun() {
  ColtRunResult run;
  run.per_query.push_back({1.0, 0.1, 0.0});
  run.per_query.push_back({2.0, 0.0, 5.0});
  EpochReport e;
  e.epoch = 0;
  e.whatif_used = 3;
  e.whatif_limit = 20;
  e.next_whatif_limit = 5;
  e.rebudget_ratio = 1.25;
  e.candidate_count = 7;
  e.cluster_count = 4;
  e.hot_ids = {1, 2};
  e.materialized_ids = {9};
  e.materialized_bytes = 1024;
  run.epochs.push_back(e);
  return run;
}

TEST(Report, EpochCsvHasHeaderAndRows) {
  const ColtRunResult run = SampleRun();
  std::stringstream out;
  ASSERT_TRUE(WriteEpochReportCsv(run.epochs, out).ok());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("epoch,whatif_used"), std::string::npos);
  EXPECT_NE(csv.find("0,3,20,5,1.25,7,4,2,1,1024"), std::string::npos);
}

TEST(Report, PerQueryCsvWithOffline) {
  const ColtRunResult run = SampleRun();
  std::stringstream out;
  ASSERT_TRUE(WritePerQueryCsv(run, {0.5, 0.7}, out).ok());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("offline_s"), std::string::npos);
  EXPECT_NE(csv.find("0,1,0.1,0,1.1,0.5"), std::string::npos);
  EXPECT_NE(csv.find("1,2,0,5,7,0.7"), std::string::npos);
}

TEST(Report, PerQueryCsvWithoutOffline) {
  const ColtRunResult run = SampleRun();
  std::stringstream out;
  ASSERT_TRUE(WritePerQueryCsv(run, {}, out).ok());
  EXPECT_EQ(out.str().find("offline_s"), std::string::npos);
}

TEST(Report, PerQueryCsvLengthMismatchRejected) {
  const ColtRunResult run = SampleRun();
  std::stringstream out;
  EXPECT_FALSE(WritePerQueryCsv(run, {0.5}, out).ok());
}

TEST(Report, BucketCsv) {
  std::stringstream out;
  ASSERT_TRUE(WriteBucketCsv({10.0, 20.0}, {12.0, 18.0}, 50, out).ok());
  const std::string csv = out.str();
  EXPECT_NE(csv.find("queries,colt_s,offline_s"), std::string::npos);
  EXPECT_NE(csv.find("50,10,12"), std::string::npos);
  EXPECT_NE(csv.find("100,20,18"), std::string::npos);
}

TEST(Report, MaybeWriteIsNoOpWithEmptyDir) {
  bool called = false;
  ASSERT_TRUE(MaybeWriteCsvFile("", "x.csv", [&](std::ostream&) {
                called = true;
                return Status::OK();
              }).ok());
  EXPECT_FALSE(called);
}

TEST(Report, MaybeWriteWritesFile) {
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(MaybeWriteCsvFile(dir, "colt_report_test.csv",
                                [&](std::ostream& out) {
                                  out << "hello\n";
                                  return Status::OK();
                                })
                  .ok());
  std::ifstream in(dir + "/colt_report_test.csv");
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "hello");
}

}  // namespace
}  // namespace colt
