#include "query/parser.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : catalog_(MakeTestCatalog()), parser_(&catalog_) {}

  Catalog catalog_;
  QueryParser parser_;
};

TEST_F(ParserTest, MinimalQuery) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->tables(), (std::vector<TableId>{0}));
  EXPECT_TRUE(q->selections().empty());
  EXPECT_TRUE(q->joins().empty());
}

TEST_F(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(parser_.Parse("select count(*) from big").ok());
  EXPECT_TRUE(parser_.Parse("SeLeCt CoUnT(*) FrOm big;").ok());
}

TEST_F(ParserTest, EqualitySelection) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big WHERE big.b_key = 42");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->selections().size(), 1u);
  const auto& pred = q->selections()[0];
  EXPECT_EQ(pred.column, (Ref(catalog_, "big", "b_key")));
  EXPECT_EQ(pred.lo, 42);
  EXPECT_EQ(pred.hi, 42);
  EXPECT_TRUE(pred.is_equality());
}

TEST_F(ParserTest, BetweenSelection) {
  auto q = parser_.Parse(
      "SELECT COUNT(*) FROM big WHERE big.b_val BETWEEN 10 AND 20");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->selections().size(), 1u);
  EXPECT_EQ(q->selections()[0].lo, 10);
  EXPECT_EQ(q->selections()[0].hi, 20);
}

TEST_F(ParserTest, InequalityOperators) {
  struct Case {
    const char* op;
    int64_t lo, hi;
  };
  const Case cases[] = {
      {"< 10", INT64_MIN, 9},
      {"<= 10", INT64_MIN, 10},
      {"> 10", 11, INT64_MAX},
      {">= 10", 10, INT64_MAX},
  };
  for (const auto& c : cases) {
    auto q = parser_.Parse(std::string("SELECT COUNT(*) FROM big WHERE "
                                       "big.b_key ") +
                           c.op);
    ASSERT_TRUE(q.ok()) << c.op;
    ASSERT_EQ(q->selections().size(), 1u);
    EXPECT_EQ(q->selections()[0].lo, c.lo) << c.op;
    EXPECT_EQ(q->selections()[0].hi, c.hi) << c.op;
  }
}

TEST_F(ParserTest, NegativeLiterals) {
  auto q = parser_.Parse(
      "SELECT COUNT(*) FROM big WHERE big.b_key BETWEEN -5 AND -1");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->selections()[0].lo, -5);
  EXPECT_EQ(q->selections()[0].hi, -1);
}

TEST_F(ParserTest, JoinQuery) {
  auto q = parser_.Parse(
      "SELECT COUNT(*) FROM big, small "
      "WHERE big.b_key = small.s_ref AND small.s_val = 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->tables().size(), 2u);
  ASSERT_EQ(q->joins().size(), 1u);
  ASSERT_EQ(q->selections().size(), 1u);
  const JoinPredicate expected =
      JoinPredicate{Ref(catalog_, "big", "b_key"),
                    Ref(catalog_, "small", "s_ref")}
          .Canonical();
  EXPECT_EQ(q->joins()[0], expected);
}

TEST_F(ParserTest, MultipleConditions) {
  auto q = parser_.Parse(
      "SELECT COUNT(*) FROM big WHERE big.b_key >= 5 AND big.b_key <= 10 "
      "AND big.b_val = 7");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->selections().size(), 3u);
}

TEST_F(ParserTest, RoundTripsThroughToString) {
  // Parse, print, re-parse: same structure.
  auto q1 = parser_.Parse(
      "SELECT COUNT(*) FROM big, small "
      "WHERE big.b_key = small.s_ref AND big.b_val BETWEEN 1 AND 9");
  ASSERT_TRUE(q1.ok());
  auto q2 = parser_.Parse(q1->ToString(catalog_));
  ASSERT_TRUE(q2.ok()) << q1->ToString(catalog_) << "\n"
                       << q2.status().ToString();
  EXPECT_EQ(q1->tables(), q2->tables());
  EXPECT_EQ(q1->joins(), q2->joins());
  EXPECT_EQ(q1->selections(), q2->selections());
}

// ---- Error cases ----

TEST_F(ParserTest, UnknownTable) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM nonexistent");
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(ParserTest, UnknownColumn) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big WHERE big.nope = 1");
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(ParserTest, ColumnOnTableNotInFrom) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big WHERE small.s_val = 1");
  EXPECT_FALSE(q.ok());
}

TEST_F(ParserTest, MissingCount) {
  EXPECT_FALSE(parser_.Parse("SELECT * FROM big").ok());
}

TEST_F(ParserTest, EmptyBetweenRange) {
  auto q = parser_.Parse(
      "SELECT COUNT(*) FROM big WHERE big.b_key BETWEEN 9 AND 3");
  EXPECT_FALSE(q.ok());
}

TEST_F(ParserTest, TrailingGarbage) {
  EXPECT_FALSE(parser_.Parse("SELECT COUNT(*) FROM big extra").ok());
}

TEST_F(ParserTest, GarbageCharacters) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big WHERE big.b_key = @");
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("unexpected character"),
            std::string::npos);
}

TEST_F(ParserTest, ErrorsMentionPosition) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big WHERE");
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("end of input"), std::string::npos);
}

TEST_F(ParserTest, MissingOperand) {
  EXPECT_FALSE(
      parser_.Parse("SELECT COUNT(*) FROM big WHERE big.b_key =").ok());
  EXPECT_FALSE(
      parser_.Parse("SELECT COUNT(*) FROM big WHERE big.b_key").ok());
}

}  // namespace
}  // namespace colt
