#include "query/parser.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : catalog_(MakeTestCatalog()), parser_(&catalog_) {}

  Catalog catalog_;
  QueryParser parser_;
};

TEST_F(ParserTest, MinimalQuery) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->tables(), (std::vector<TableId>{0}));
  EXPECT_TRUE(q->selections().empty());
  EXPECT_TRUE(q->joins().empty());
}

TEST_F(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(parser_.Parse("select count(*) from big").ok());
  EXPECT_TRUE(parser_.Parse("SeLeCt CoUnT(*) FrOm big;").ok());
}

TEST_F(ParserTest, EqualitySelection) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big WHERE big.b_key = 42");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->selections().size(), 1u);
  const auto& pred = q->selections()[0];
  EXPECT_EQ(pred.column, (Ref(catalog_, "big", "b_key")));
  EXPECT_EQ(pred.lo, 42);
  EXPECT_EQ(pred.hi, 42);
  EXPECT_TRUE(pred.is_equality());
}

TEST_F(ParserTest, BetweenSelection) {
  auto q = parser_.Parse(
      "SELECT COUNT(*) FROM big WHERE big.b_val BETWEEN 10 AND 20");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->selections().size(), 1u);
  EXPECT_EQ(q->selections()[0].lo, 10);
  EXPECT_EQ(q->selections()[0].hi, 20);
}

TEST_F(ParserTest, InequalityOperators) {
  struct Case {
    const char* op;
    int64_t lo, hi;
  };
  const Case cases[] = {
      {"< 10", INT64_MIN, 9},
      {"<= 10", INT64_MIN, 10},
      {"> 10", 11, INT64_MAX},
      {">= 10", 10, INT64_MAX},
  };
  for (const auto& c : cases) {
    auto q = parser_.Parse(std::string("SELECT COUNT(*) FROM big WHERE "
                                       "big.b_key ") +
                           c.op);
    ASSERT_TRUE(q.ok()) << c.op;
    ASSERT_EQ(q->selections().size(), 1u);
    EXPECT_EQ(q->selections()[0].lo, c.lo) << c.op;
    EXPECT_EQ(q->selections()[0].hi, c.hi) << c.op;
  }
}

TEST_F(ParserTest, NegativeLiterals) {
  auto q = parser_.Parse(
      "SELECT COUNT(*) FROM big WHERE big.b_key BETWEEN -5 AND -1");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->selections()[0].lo, -5);
  EXPECT_EQ(q->selections()[0].hi, -1);
}

TEST_F(ParserTest, JoinQuery) {
  auto q = parser_.Parse(
      "SELECT COUNT(*) FROM big, small "
      "WHERE big.b_key = small.s_ref AND small.s_val = 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->tables().size(), 2u);
  ASSERT_EQ(q->joins().size(), 1u);
  ASSERT_EQ(q->selections().size(), 1u);
  const JoinPredicate expected =
      JoinPredicate{Ref(catalog_, "big", "b_key"),
                    Ref(catalog_, "small", "s_ref")}
          .Canonical();
  EXPECT_EQ(q->joins()[0], expected);
}

TEST_F(ParserTest, MultipleConditions) {
  auto q = parser_.Parse(
      "SELECT COUNT(*) FROM big WHERE big.b_key >= 5 AND big.b_key <= 10 "
      "AND big.b_val = 7");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->selections().size(), 3u);
}

TEST_F(ParserTest, RoundTripsThroughToString) {
  // Parse, print, re-parse: same structure.
  auto q1 = parser_.Parse(
      "SELECT COUNT(*) FROM big, small "
      "WHERE big.b_key = small.s_ref AND big.b_val BETWEEN 1 AND 9");
  ASSERT_TRUE(q1.ok());
  auto q2 = parser_.Parse(q1->ToString(catalog_));
  ASSERT_TRUE(q2.ok()) << q1->ToString(catalog_) << "\n"
                       << q2.status().ToString();
  EXPECT_EQ(q1->tables(), q2->tables());
  EXPECT_EQ(q1->joins(), q2->joins());
  EXPECT_EQ(q1->selections(), q2->selections());
}

// ---- Write statements (DESIGN.md §16) ----

TEST_F(ParserTest, InsertStatement) {
  auto q = parser_.Parse("INSERT INTO big ROWS 500");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind(), StatementKind::kInsert);
  EXPECT_TRUE(q->is_write());
  EXPECT_EQ(q->write_table(), catalog_.FindTable("big"));
  EXPECT_EQ(q->insert_rows(), 500);
  EXPECT_TRUE(q->selections().empty());
}

TEST_F(ParserTest, UpdateStatementWithWhere) {
  auto q = parser_.Parse(
      "UPDATE big SET b_val = 7 WHERE big.b_key BETWEEN 5 AND 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind(), StatementKind::kUpdate);
  ASSERT_EQ(q->set_clauses().size(), 1u);
  EXPECT_EQ(q->set_clauses()[0].column,
            catalog_.table(catalog_.FindTable("big")).FindColumn("b_val"));
  EXPECT_EQ(q->set_clauses()[0].value, 7);
  ASSERT_EQ(q->selections().size(), 1u);
  EXPECT_EQ(q->selections()[0].lo, 5);
  EXPECT_EQ(q->selections()[0].hi, 10);
}

TEST_F(ParserTest, UpdateMultipleSetClausesSortedByColumn) {
  auto q = parser_.Parse("UPDATE big SET b_val = 1, b_key = 2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->set_clauses().size(), 2u);
  // MakeUpdate canonicalizes the SET list into column order.
  EXPECT_LT(q->set_clauses()[0].column, q->set_clauses()[1].column);
  EXPECT_TRUE(q->selections().empty());
}

TEST_F(ParserTest, DeleteStatement) {
  auto q = parser_.Parse("DELETE FROM small WHERE small.s_ref = 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind(), StatementKind::kDelete);
  EXPECT_EQ(q->write_table(), catalog_.FindTable("small"));
  ASSERT_EQ(q->selections().size(), 1u);
  EXPECT_TRUE(q->selections()[0].is_equality());
}

TEST_F(ParserTest, DeleteWithoutWhereIsFullTableDelete) {
  auto q = parser_.Parse("DELETE FROM small");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->kind(), StatementKind::kDelete);
  EXPECT_TRUE(q->selections().empty());
}

TEST_F(ParserTest, WriteStatementsRoundTripThroughToString) {
  const TableId big = catalog_.FindTable("big");
  const ColumnId b_val = catalog_.table(big).FindColumn("b_val");
  const std::vector<Query> originals = {
      Query::MakeInsert(big, 123),
      Query::MakeUpdate(big, {{b_val, -4}},
                        {SelectionPredicate{Ref(catalog_, "big", "b_key"),
                                            10, 30}}),
      Query::MakeDelete(big, {SelectionPredicate{
                                 Ref(catalog_, "big", "b_cat"), 2, 2}}),
  };
  for (const Query& original : originals) {
    auto reparsed = parser_.Parse(original.ToString(catalog_));
    ASSERT_TRUE(reparsed.ok()) << original.ToString(catalog_) << "\n"
                               << reparsed.status().ToString();
    EXPECT_EQ(reparsed->kind(), original.kind());
    EXPECT_EQ(reparsed->tables(), original.tables());
    EXPECT_EQ(reparsed->selections(), original.selections());
    EXPECT_EQ(reparsed->set_clauses(), original.set_clauses());
    EXPECT_EQ(reparsed->insert_rows(), original.insert_rows());
  }
}

TEST_F(ParserTest, WriteStatementErrors) {
  EXPECT_FALSE(parser_.Parse("INSERT INTO nonsense ROWS 5").ok());
  EXPECT_FALSE(parser_.Parse("INSERT INTO big ROWS").ok());
  EXPECT_FALSE(parser_.Parse("UPDATE big SET nonsense = 1").ok());
  EXPECT_FALSE(parser_.Parse("UPDATE big SET b_val").ok());
  EXPECT_FALSE(parser_.Parse("DELETE FROM nonsense").ok());
}

// ---- Error cases ----

TEST_F(ParserTest, UnknownTable) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM nonexistent");
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(ParserTest, UnknownColumn) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big WHERE big.nope = 1");
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(ParserTest, ColumnOnTableNotInFrom) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big WHERE small.s_val = 1");
  EXPECT_FALSE(q.ok());
}

TEST_F(ParserTest, MissingCount) {
  EXPECT_FALSE(parser_.Parse("SELECT * FROM big").ok());
}

TEST_F(ParserTest, EmptyBetweenRange) {
  auto q = parser_.Parse(
      "SELECT COUNT(*) FROM big WHERE big.b_key BETWEEN 9 AND 3");
  EXPECT_FALSE(q.ok());
}

TEST_F(ParserTest, TrailingGarbage) {
  EXPECT_FALSE(parser_.Parse("SELECT COUNT(*) FROM big extra").ok());
}

TEST_F(ParserTest, GarbageCharacters) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big WHERE big.b_key = @");
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("unexpected character"),
            std::string::npos);
}

TEST_F(ParserTest, ErrorsMentionPosition) {
  auto q = parser_.Parse("SELECT COUNT(*) FROM big WHERE");
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("end of input"), std::string::npos);
}

TEST_F(ParserTest, MissingOperand) {
  EXPECT_FALSE(
      parser_.Parse("SELECT COUNT(*) FROM big WHERE big.b_key =").ok());
  EXPECT_FALSE(
      parser_.Parse("SELECT COUNT(*) FROM big WHERE big.b_key").ok());
}

}  // namespace
}  // namespace colt
