#include "storage/database.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "storage/tpch_schema.h"
#include "test_util.h"

namespace colt {
namespace {

TEST(TpchSchema, MatchesPaperTable1) {
  const Catalog catalog = MakeTpchCatalog();
  EXPECT_EQ(catalog.table_count(), 32);
  EXPECT_EQ(catalog.total_rows(), 6'928'120);
  EXPECT_EQ(catalog.total_indexable_columns(), 244);
  int64_t largest = 0, smallest = INT64_MAX;
  for (TableId t = 0; t < catalog.table_count(); ++t) {
    largest = std::max(largest, catalog.table(t).row_count());
    smallest = std::min(smallest, catalog.table(t).row_count());
  }
  EXPECT_EQ(largest, 1'200'000);
  EXPECT_EQ(smallest, 5);
  // ~1.4 GB of binary data (we land between 1.0 and 1.5).
  const double gb = catalog.total_heap_bytes() / (1024.0 * 1024 * 1024);
  EXPECT_GT(gb, 1.0);
  EXPECT_LT(gb, 1.5);
}

TEST(TpchSchema, ScalingPreservesStructure) {
  TpchOptions options;
  options.scale = 0.01;
  const Catalog catalog = MakeTpchCatalog(options);
  EXPECT_EQ(catalog.table_count(), 32);
  EXPECT_EQ(catalog.total_indexable_columns(), 244);
  const TableId li = catalog.FindTable("lineitem_0");
  EXPECT_EQ(catalog.table(li).row_count(), 12'000);
  // Tiny dimension tables stay fixed.
  EXPECT_EQ(catalog.table(catalog.FindTable("region_3")).row_count(), 5);
  EXPECT_EQ(catalog.table(catalog.FindTable("nation_1")).row_count(), 25);
}

TEST(TpchSchema, InstancesAreDistinctTables) {
  const Catalog catalog = MakeTpchCatalog();
  std::set<std::string> names;
  for (TableId t = 0; t < catalog.table_count(); ++t) {
    names.insert(catalog.table(t).name());
  }
  EXPECT_EQ(names.size(), 32u);
  EXPECT_TRUE(names.count("lineitem_0"));
  EXPECT_TRUE(names.count("lineitem_3"));
}

TEST(TableData, GenerateDeterministic) {
  const Catalog catalog = testing::MakeTestCatalog();
  Rng a(5), b(5);
  const TableData d1 = TableData::Generate(catalog.table(0), a);
  const TableData d2 = TableData::Generate(catalog.table(0), b);
  ASSERT_EQ(d1.row_count(), d2.row_count());
  for (ColumnId c = 0; c < d1.column_count(); ++c) {
    EXPECT_EQ(d1.column(c), d2.column(c));
  }
}

TEST(TableData, PrimaryKeyIsPermutation) {
  const Catalog catalog = testing::MakeTestCatalog();
  Rng rng(5);
  const TableData data = TableData::Generate(catalog.table(1), rng);
  // s_id has ndv == row_count, so it is generated as a permutation.
  std::vector<int64_t> ids = data.column(0);
  std::sort(ids.begin(), ids.end());
  for (int64_t i = 0; i < data.row_count(); ++i) EXPECT_EQ(ids[i], i);
}

TEST(TableData, ValuesWithinDomain) {
  const Catalog catalog = testing::MakeTestCatalog();
  Rng rng(9);
  const TableData data = TableData::Generate(catalog.table(0), rng);
  const auto& schema = catalog.table(0);
  for (ColumnId c = 0; c < data.column_count(); ++c) {
    const int64_t ndv = schema.column(c).ndv;
    for (int64_t v : data.column(c)) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, ndv);
    }
  }
}

TEST(Database, MaterializeIsIdempotent) {
  Database db(testing::MakeTestCatalog(), 11);
  ASSERT_TRUE(db.MaterializeTable(0).ok());
  const TableData* first = &db.data(0);
  ASSERT_TRUE(db.MaterializeTable(0).ok());
  EXPECT_EQ(first, &db.data(0));
}

TEST(Database, MaterializeRejectsBadTable) {
  Database db(testing::MakeTestCatalog(), 11);
  EXPECT_FALSE(db.MaterializeTable(99).ok());
  EXPECT_FALSE(db.MaterializeTable(-1).ok());
}

TEST(Database, RefreshStatsFromData) {
  Database db(testing::MakeTestCatalog(), 11);
  ASSERT_TRUE(db.MaterializeTable(0, /*refresh_stats=*/true).ok());
  const ColumnStats& stats = db.catalog().table(0).column_stats(1);
  EXPECT_EQ(stats.row_count(), 100'000);
  EXPECT_GT(stats.ndv(), 9'000);
  EXPECT_LE(stats.ndv(), 10'000);
}

TEST(Database, BuildIndexRequiresData) {
  Database db(testing::MakeTestCatalog(), 11);
  auto desc = db.mutable_catalog().IndexOn(
      testing::Ref(db.catalog(), "big", "b_key"));
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(db.BuildIndex(desc->id).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(db.MaterializeTable(0).ok());
  ASSERT_TRUE(db.BuildIndex(desc->id).ok());
  EXPECT_TRUE(db.HasBuiltIndex(desc->id));
  EXPECT_EQ(db.index(desc->id).entry_count(), 100'000);
  EXPECT_TRUE(db.index(desc->id).CheckInvariants().ok());
}

TEST(Database, BuildUnknownIndexFails) {
  Database db(testing::MakeTestCatalog(), 11);
  EXPECT_EQ(db.BuildIndex(12345).code(), StatusCode::kNotFound);
}

TEST(Database, DropIndex) {
  Database db(testing::MakeTestCatalog(), 11);
  ASSERT_TRUE(db.MaterializeTable(1).ok());
  auto desc = db.mutable_catalog().IndexOn(
      testing::Ref(db.catalog(), "small", "s_val"));
  ASSERT_TRUE(desc.ok());
  ASSERT_TRUE(db.BuildIndex(desc->id).ok());
  db.DropIndex(desc->id);
  EXPECT_FALSE(db.HasBuiltIndex(desc->id));
  db.DropIndex(desc->id);  // idempotent
}

TEST(Database, IndexContentMatchesColumn) {
  Database db(testing::MakeTestCatalog(), 13);
  ASSERT_TRUE(db.MaterializeTable(1).ok());
  auto desc = db.mutable_catalog().IndexOn(
      testing::Ref(db.catalog(), "small", "s_val"));
  ASSERT_TRUE(desc.ok());
  ASSERT_TRUE(db.BuildIndex(desc->id).ok());
  const auto& column = db.data(1).column(desc->column.column);
  std::vector<RowId> rows;
  db.index(desc->id).Lookup(42, &rows);
  std::vector<RowId> expected;
  for (size_t r = 0; r < column.size(); ++r) {
    if (column[r] == 42) expected.push_back(static_cast<RowId>(r));
  }
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, expected);
}


TEST(TableData, SkewedColumnFollowsZipf) {
  Catalog catalog;
  ColumnDef hot;
  hot.name = "hot";
  hot.ndv = 1'000;
  hot.skew = 1.2;
  catalog.AddTable(TableSchema("skewed", {hot}, 50'000));
  Rng rng(31);
  const TableData data = TableData::Generate(catalog.table(0), rng);
  int64_t head = 0, tail = 0;
  for (int64_t v : data.column(0)) {
    if (v < 10) ++head;
    if (v >= 500) ++tail;
  }
  // Zipf(1.2): the 10 hottest values dominate the cold half.
  EXPECT_GT(head, tail * 3);
}

TEST(TableData, AnalyticZipfStatsTrackGeneratedData) {
  Catalog catalog;
  ColumnDef hot;
  hot.name = "hot";
  hot.ndv = 1'000;
  hot.skew = 1.1;
  catalog.AddTable(TableSchema("skewed", {hot}, 100'000));
  Rng rng(33);
  const TableData data = TableData::Generate(catalog.table(0), rng);
  const ColumnStats& analytic = catalog.table(0).column_stats(0);
  const auto& values = data.column(0);
  for (const auto& [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 4}, {0, 49}, {100, 299}, {500, 999}}) {
    const double exact =
        static_cast<double>(std::count_if(values.begin(), values.end(),
                                          [&](int64_t v) {
                                            return v >= lo && v <= hi;
                                          })) /
        static_cast<double>(values.size());
    EXPECT_NEAR(analytic.RangeSelectivity(lo, hi), exact, 0.05)
        << "[" << lo << ", " << hi << "]";
  }
}

TEST(ColumnStatsZipf, HeadHeavierThanTail) {
  const ColumnStats stats = ColumnStats::Zipf(10'000, 1'000'000, 1.0);
  EXPECT_GT(stats.RangeSelectivity(0, 99),
            stats.RangeSelectivity(5'000, 5'099) * 5);
  EXPECT_NEAR(stats.RangeSelectivity(0, 9'999), 1.0, 1e-6);
}

}  // namespace
}  // namespace colt
