#include "index/btree.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace colt {
namespace {

TEST(BTree, EmptyTree) {
  BTreeIndex tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.entry_count(), 0);
  std::vector<RowId> out;
  EXPECT_EQ(tree.RangeScan(0, 100, &out), 0);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTree, SingleInsertLookup) {
  BTreeIndex tree;
  tree.Insert(5, 100);
  std::vector<RowId> out;
  tree.Lookup(5, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 100);
  out.clear();
  tree.Lookup(6, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTree, DuplicateKeys) {
  BTreeIndex tree(8);
  for (RowId r = 0; r < 100; ++r) tree.Insert(7, r);
  std::vector<RowId> out;
  tree.Lookup(7, &out);
  EXPECT_EQ(out.size(), 100u);
  std::sort(out.begin(), out.end());
  for (RowId r = 0; r < 100; ++r) EXPECT_EQ(out[r], r);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTree, EraseSingleEntry) {
  BTreeIndex tree;
  tree.Insert(5, 100);
  EXPECT_TRUE(tree.Erase(5, 100));
  EXPECT_EQ(tree.entry_count(), 0);
  std::vector<RowId> out;
  tree.Lookup(5, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTree, EraseMissingReturnsFalse) {
  BTreeIndex tree;
  EXPECT_FALSE(tree.Erase(5, 100));  // empty tree
  tree.Insert(5, 100);
  EXPECT_FALSE(tree.Erase(5, 101));  // right key, wrong row
  EXPECT_FALSE(tree.Erase(6, 100));  // wrong key
  EXPECT_EQ(tree.entry_count(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTree, EraseOneOfDuplicates) {
  // Duplicate keys: Erase removes exactly the (key, row) pair named, not
  // every entry under the key.
  BTreeIndex tree(8);
  for (RowId r = 0; r < 100; ++r) tree.Insert(7, r);
  EXPECT_TRUE(tree.Erase(7, 42));
  EXPECT_FALSE(tree.Erase(7, 42));  // already gone
  std::vector<RowId> out;
  tree.Lookup(7, &out);
  EXPECT_EQ(out.size(), 99u);
  EXPECT_EQ(std::count(out.begin(), out.end(), 42), 0);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTree, EraseDifferentialAgainstMultimap) {
  // Random interleaved Insert/Erase stream against a reference multimap;
  // erases target live entries and missing entries alike.
  BTreeIndex tree(8);
  std::multimap<int64_t, RowId> reference;
  Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    const int64_t key = static_cast<int64_t>(rng.NextBelow(200)) - 100;
    if (!reference.empty() && rng.NextBool(0.4)) {
      // Erase: half the time a live entry, half a (key,row) not present.
      if (rng.NextBool(0.5)) {
        auto it = reference.lower_bound(key);
        if (it == reference.end()) it = reference.begin();
        EXPECT_TRUE(tree.Erase(it->first, it->second));
        reference.erase(it);
      } else {
        EXPECT_FALSE(tree.Erase(key, /*row=*/1'000'000 + i));
      }
    } else {
      tree.Insert(key, i);
      reference.emplace(key, i);
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.entry_count(), static_cast<int64_t>(reference.size()));
  for (int64_t key = -100; key <= 100; ++key) {
    std::vector<RowId> got;
    tree.Lookup(key, &got);
    std::vector<RowId> expected;
    for (auto [it, end] = reference.equal_range(key); it != end; ++it) {
      expected.push_back(it->second);
    }
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "key " << key;
  }
}

TEST(BTree, EraseEverythingLeavesEmptyTree) {
  // Nodes are never merged or freed (leaf-local erase), so a fully
  // drained tree still answers lookups and scans correctly.
  BTreeIndex tree(4);
  for (int i = 0; i < 500; ++i) tree.Insert(i, i);
  for (int i = 0; i < 500; ++i) EXPECT_TRUE(tree.Erase(i, i));
  EXPECT_TRUE(tree.empty());
  std::vector<RowId> out;
  // RangeScan reports leaves *touched*: the drained tree still walks its
  // (never-freed) leaves but must surface no entries.
  tree.RangeScan(INT64_MIN, INT64_MAX, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  tree.Insert(7, 7);  // still usable after draining
  tree.Lookup(7, &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(BTree, BulkLoadRequiresEmpty) {
  BTreeIndex tree;
  tree.Insert(1, 1);
  EXPECT_EQ(tree.BulkLoad({{2, 2}}).code(), StatusCode::kFailedPrecondition);
}

TEST(BTree, BulkLoadEmptyInput) {
  BTreeIndex tree;
  EXPECT_TRUE(tree.BulkLoad({}).ok());
  EXPECT_TRUE(tree.empty());
}

TEST(BTree, MoveSemantics) {
  BTreeIndex tree(8);
  for (int i = 0; i < 100; ++i) tree.Insert(i, i);
  BTreeIndex moved = std::move(tree);
  EXPECT_EQ(moved.entry_count(), 100);
  EXPECT_TRUE(moved.CheckInvariants().ok());
  std::vector<RowId> out;
  moved.RangeScan(10, 19, &out);
  EXPECT_EQ(out.size(), 10u);
}

TEST(BTree, HeightGrowsLogarithmically) {
  BTreeIndex tree(8);
  for (int i = 0; i < 4096; ++i) tree.Insert(i, i);
  EXPECT_GE(tree.height(), 3);
  EXPECT_LE(tree.height(), 8);
  EXPECT_GE(tree.leaf_count(), 4096 / 8);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTree, BulkLoadLeavesNearlyFull) {
  BTreeIndex tree(100);
  std::vector<std::pair<int64_t, RowId>> entries;
  for (int i = 0; i < 10000; ++i) entries.emplace_back(i, i);
  ASSERT_TRUE(tree.BulkLoad(std::move(entries)).ok());
  EXPECT_EQ(tree.leaf_count(), 100);  // exactly full leaves
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

/// Differential test against std::multimap, parameterized over
/// (fanout, operation count) to cover shallow and deep trees.
struct DiffParam {
  int fanout;
  int operations;
  uint64_t seed;
};

class BTreeDifferentialTest : public ::testing::TestWithParam<DiffParam> {};

TEST_P(BTreeDifferentialTest, MatchesReferenceMultimap) {
  const DiffParam param = GetParam();
  BTreeIndex tree(param.fanout);
  std::multimap<int64_t, RowId> reference;
  Rng rng(param.seed);

  for (int i = 0; i < param.operations; ++i) {
    const int64_t key = static_cast<int64_t>(rng.NextBelow(500)) - 250;
    tree.Insert(key, i);
    reference.emplace(key, i);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.entry_count(),
            static_cast<int64_t>(reference.size()));

  // Random range scans.
  for (int scan = 0; scan < 50; ++scan) {
    int64_t lo = static_cast<int64_t>(rng.NextBelow(600)) - 300;
    int64_t hi = lo + static_cast<int64_t>(rng.NextBelow(200));
    std::vector<RowId> got;
    tree.RangeScan(lo, hi, &got);
    std::vector<RowId> expected;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      expected.push_back(it->second);
    }
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "range [" << lo << ", " << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BTreeDifferentialTest,
    ::testing::Values(DiffParam{4, 2000, 1}, DiffParam{4, 50, 2},
                      DiffParam{8, 3000, 3}, DiffParam{16, 5000, 4},
                      DiffParam{64, 5000, 5}, DiffParam{128, 10000, 6},
                      DiffParam{5, 1000, 7}, DiffParam{4, 5000, 8}));

/// Bulk load and incremental insert must contain identical data.
class BulkVsInsertTest : public ::testing::TestWithParam<int> {};

TEST_P(BulkVsInsertTest, SameContents) {
  Rng rng(GetParam() * 31 + 7);
  std::vector<std::pair<int64_t, RowId>> entries;
  const int n = 1 + static_cast<int>(rng.NextBelow(3000));
  for (int i = 0; i < n; ++i) {
    entries.emplace_back(static_cast<int64_t>(rng.NextBelow(1000)), i);
  }
  BTreeIndex bulk(16), incremental(16);
  ASSERT_TRUE(bulk.BulkLoad(entries).ok());
  for (const auto& [k, v] : entries) incremental.Insert(k, v);
  ASSERT_TRUE(bulk.CheckInvariants().ok());
  ASSERT_TRUE(incremental.CheckInvariants().ok());
  EXPECT_EQ(bulk.entry_count(), incremental.entry_count());
  std::vector<RowId> a, b;
  bulk.RangeScan(INT64_MIN, INT64_MAX, &a);
  incremental.RangeScan(INT64_MIN, INT64_MAX, &b);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  // Bulk-loaded leaves should be at least as densely packed.
  EXPECT_LE(bulk.leaf_count(), incremental.leaf_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BulkVsInsertTest, ::testing::Range(0, 10));

TEST(BTree, RangeScanReportsLeavesTouched) {
  BTreeIndex tree(10);
  std::vector<std::pair<int64_t, RowId>> entries;
  for (int i = 0; i < 1000; ++i) entries.emplace_back(i, i);
  ASSERT_TRUE(tree.BulkLoad(std::move(entries)).ok());
  std::vector<RowId> out;
  // Scanning 100 of 1000 keys at fanout 10 touches ~10-11 leaves.
  const int64_t leaves = tree.RangeScan(500, 599, &out);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_GE(leaves, 10);
  EXPECT_LE(leaves, 12);
  // Point lookup touches exactly one leaf.
  out.clear();
  EXPECT_EQ(tree.Lookup(42, &out), 1);
}

}  // namespace
}  // namespace colt
