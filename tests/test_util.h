#ifndef COLT_TESTS_TEST_UTIL_H_
#define COLT_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/query.h"
#include "query/workload.h"

namespace colt {
namespace testing {

/// A small two-table catalog for unit tests: "big" (100k rows, 4 columns)
/// and "small" (1k rows, 3 columns). Column value domains are uniform.
inline Catalog MakeTestCatalog() {
  Catalog catalog;
  catalog.AddTable(TableSchema(
      "big",
      {
          {"b_id", ColumnType::kInt64, 8, 100'000, true},
          {"b_key", ColumnType::kInt64, 8, 10'000, true},
          {"b_val", ColumnType::kInt64, 8, 1'000, true},
          {"b_cat", ColumnType::kInt64, 4, 50, true},
      },
      100'000));
  catalog.AddTable(TableSchema(
      "small",
      {
          {"s_id", ColumnType::kInt64, 8, 1'000, true},
          {"s_ref", ColumnType::kInt64, 8, 1'000, true},
          {"s_val", ColumnType::kInt64, 8, 100, true},
      },
      1'000));
  return catalog;
}

/// Column reference by names; aborts on unknown names.
inline ColumnRef Ref(const Catalog& catalog, const std::string& table,
                     const std::string& column) {
  const TableId t = catalog.FindTable(table);
  const ColumnId c = catalog.table(t).FindColumn(column);
  return ColumnRef{t, c};
}

/// Single-table query with one range predicate.
inline Query MakeRangeQuery(const Catalog& catalog, const std::string& table,
                            const std::string& column, int64_t lo,
                            int64_t hi) {
  return Query({catalog.FindTable(table)}, {},
               {SelectionPredicate{Ref(catalog, table, column), lo, hi}});
}

}  // namespace testing
}  // namespace colt

#endif  // COLT_TESTS_TEST_UTIL_H_
