#include "query/query.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

Query MakeJoinQuery(const Catalog& catalog) {
  return Query(
      {catalog.FindTable("small"), catalog.FindTable("big")},
      {JoinPredicate{Ref(catalog, "big", "b_key"),
                     Ref(catalog, "small", "s_ref")}},
      {SelectionPredicate{Ref(catalog, "big", "b_val"), 0, 9},
       SelectionPredicate{Ref(catalog, "small", "s_val"), 5, 5}});
}

TEST(Query, TablesSortedAndDeduplicated) {
  Catalog catalog = MakeTestCatalog();
  Query q({1, 0, 1}, {}, {});
  EXPECT_EQ(q.tables(), (std::vector<TableId>{0, 1}));
}

TEST(Query, JoinsCanonicalized) {
  Catalog catalog = MakeTestCatalog();
  const ColumnRef big_key = Ref(catalog, "big", "b_key");
  const ColumnRef small_ref = Ref(catalog, "small", "s_ref");
  Query q1({0, 1}, {JoinPredicate{big_key, small_ref}}, {});
  Query q2({0, 1}, {JoinPredicate{small_ref, big_key}}, {});
  EXPECT_EQ(q1.joins()[0], q2.joins()[0]);
}

TEST(Query, SelectionsOnFiltersByTable) {
  Catalog catalog = MakeTestCatalog();
  const Query q = MakeJoinQuery(catalog);
  EXPECT_EQ(q.SelectionsOn(catalog.FindTable("big")).size(), 1u);
  EXPECT_EQ(q.SelectionsOn(catalog.FindTable("small")).size(), 1u);
  EXPECT_TRUE(q.UsesTable(0));
  EXPECT_TRUE(q.UsesTable(1));
  EXPECT_FALSE(q.UsesTable(2));
}

TEST(Query, ValidateAcceptsWellFormed) {
  Catalog catalog = MakeTestCatalog();
  EXPECT_TRUE(MakeJoinQuery(catalog).Validate(catalog).ok());
}

TEST(Query, ValidateRejectsBadQueries) {
  Catalog catalog = MakeTestCatalog();
  EXPECT_FALSE(Query({}, {}, {}).Validate(catalog).ok());
  EXPECT_FALSE(Query({99}, {}, {}).Validate(catalog).ok());
  // Selection on a table not in the query.
  EXPECT_FALSE(Query({0}, {},
                     {SelectionPredicate{Ref(catalog, "small", "s_val"), 0, 1}})
                   .Validate(catalog)
                   .ok());
  // Empty range.
  EXPECT_FALSE(Query({0}, {},
                     {SelectionPredicate{Ref(catalog, "big", "b_val"), 5, 2}})
                   .Validate(catalog)
                   .ok());
  // Self-join.
  EXPECT_FALSE(Query({0},
                     {JoinPredicate{Ref(catalog, "big", "b_key"),
                                    Ref(catalog, "big", "b_val")}},
                     {})
                   .Validate(catalog)
                   .ok());
}

TEST(Query, ToStringMentionsTablesAndPredicates) {
  Catalog catalog = MakeTestCatalog();
  const std::string s = MakeJoinQuery(catalog).ToString(catalog);
  EXPECT_NE(s.find("big"), std::string::npos);
  EXPECT_NE(s.find("small"), std::string::npos);
  EXPECT_NE(s.find("b_val"), std::string::npos);
  EXPECT_NE(s.find("="), std::string::npos);
}

TEST(Predicate, Matches) {
  SelectionPredicate pred{ColumnRef{0, 0}, 5, 10};
  EXPECT_TRUE(pred.Matches(5));
  EXPECT_TRUE(pred.Matches(10));
  EXPECT_FALSE(pred.Matches(4));
  EXPECT_FALSE(pred.Matches(11));
  EXPECT_FALSE(pred.is_equality());
  SelectionPredicate eq{ColumnRef{0, 0}, 7, 7};
  EXPECT_TRUE(eq.is_equality());
}

TEST(Predicate, EstimateSelectivity) {
  Catalog catalog = MakeTestCatalog();
  // b_val is uniform over [0, 1000).
  SelectionPredicate pred{Ref(catalog, "big", "b_val"), 0, 99};
  EXPECT_NEAR(EstimateSelectivity(catalog, pred), 0.1, 0.02);
  SelectionPredicate eq{Ref(catalog, "big", "b_val"), 5, 5};
  EXPECT_NEAR(EstimateSelectivity(catalog, eq), 0.001, 1e-4);
}

TEST(Signature, SameShapeSameSignature) {
  Catalog catalog = MakeTestCatalog();
  // Same attribute, both selectivities in the 2-100% bucket.
  const Query q1 = testing::MakeRangeQuery(catalog, "big", "b_val", 0, 99);
  const Query q2 = testing::MakeRangeQuery(catalog, "big", "b_val", 500, 620);
  EXPECT_EQ(ComputeSignature(catalog, q1), ComputeSignature(catalog, q2));
  EXPECT_EQ(QuerySignatureHash()(ComputeSignature(catalog, q1)),
            QuerySignatureHash()(ComputeSignature(catalog, q2)));
}

TEST(Signature, SelectivityBucketsSeparate) {
  Catalog catalog = MakeTestCatalog();
  // b_val over [0, 1000): width 5 => 0.5% (bucket 0); width 500 => 50%
  // (bucket 1).
  const Query selective = testing::MakeRangeQuery(catalog, "big", "b_val", 0, 4);
  const Query broad = testing::MakeRangeQuery(catalog, "big", "b_val", 0, 499);
  EXPECT_FALSE(ComputeSignature(catalog, selective) ==
               ComputeSignature(catalog, broad));
}

TEST(Signature, DifferentAttributesSeparate) {
  Catalog catalog = MakeTestCatalog();
  const Query q1 = testing::MakeRangeQuery(catalog, "big", "b_val", 0, 4);
  const Query q2 = testing::MakeRangeQuery(catalog, "big", "b_cat", 0, 4);
  EXPECT_FALSE(ComputeSignature(catalog, q1) == ComputeSignature(catalog, q2));
}

TEST(Signature, JoinsIncluded) {
  Catalog catalog = MakeTestCatalog();
  const Query join = MakeJoinQuery(catalog);
  Query no_join({0, 1}, {},
                {SelectionPredicate{Ref(catalog, "big", "b_val"), 0, 9},
                 SelectionPredicate{Ref(catalog, "small", "s_val"), 5, 5}});
  EXPECT_FALSE(ComputeSignature(catalog, join) ==
               ComputeSignature(catalog, no_join));
}

TEST(SelectivityBucket, BoundaryAtTwoPercent) {
  EXPECT_EQ(SelectivityBucket(0.0), 0);
  EXPECT_EQ(SelectivityBucket(0.0199), 0);
  EXPECT_EQ(SelectivityBucket(0.02), 1);
  EXPECT_EQ(SelectivityBucket(1.0), 1);
}

}  // namespace
}  // namespace colt
