/// Differential tests for the provenance determinism contract (DESIGN.md
/// §13): the decision-event stream is part of the run's result, so it must
/// be byte-identical across `num_workers` and `whatif_cache_bytes`
/// settings — the knobs may buy wall-clock time, never a different
/// decision narrative. Also proves the stream is *true*: replaying it
/// through ExplainIndexAtEpoch reproduces the per-epoch materialized sets
/// the tuner actually reported.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baseline/offline_tuner.h"
#include "common/provenance.h"
#include "harness/experiment.h"
#include "harness/workloads.h"
#include "storage/tpch_schema.h"

namespace colt {
namespace {

/// The Fig. 4 experiment at reduced scale (same shape as
/// parallel_determinism_test): 4 phases x 60 queries, 20-query gradual
/// transitions, TPC-H catalog.
std::vector<Query> ShiftingWorkload(Catalog* catalog) {
  const std::vector<QueryDistribution> dists =
      ExperimentWorkloads::ShiftingPhases(catalog);
  std::vector<WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, 60});
  WorkloadGenerator gen(catalog, /*seed=*/99);
  return GeneratePhasedWorkload(gen, phases, /*transition_length=*/20);
}

int64_t ShiftingBudget() {
  Catalog catalog = MakeTpchCatalog();
  const std::vector<QueryDistribution> dists =
      ExperimentWorkloads::ShiftingPhases(&catalog);
  QueryOptimizer opt(&catalog);
  OfflineTuner miner(&catalog, &opt);
  WorkloadGenerator gen(&catalog, 1234);
  std::vector<Query> sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 60; ++i) sample.push_back(gen.Sample(d));
  }
  Result<std::vector<IndexId>> relevant = miner.MineRelevantIndexes(sample);
  EXPECT_TRUE(relevant.ok());
  return BudgetForIndexes(catalog, relevant.value(), 4.0);
}

ColtRunResult RunShifting(int workers, int64_t cache_bytes, int64_t budget) {
  Catalog catalog = MakeTpchCatalog();
  const std::vector<Query> workload = ShiftingWorkload(&catalog);
  ColtConfig config;
  config.storage_budget_bytes = budget;
  config.num_workers = workers;
  config.whatif_cache_bytes = cache_bytes;
  config.provenance_events = 1 << 16;  // ample: no ring drops in this run
  return RunColtWorkload(&catalog, workload, config);
}

constexpr int64_t kCacheOn = 8LL * 1024 * 1024;

TEST(ProvenanceDeterminismTest, JsonlIdenticalAcrossWorkersAndCache) {
  if (!kProvenanceCompiledIn) {
    GTEST_SKIP() << "provenance compiled out";
  }
  const int64_t budget = ShiftingBudget();
  const ColtRunResult base = RunShifting(/*workers=*/0, kCacheOn, budget);
  ASSERT_FALSE(base.provenance.empty());
  ASSERT_FALSE(base.final_materialized.empty());
  const std::string base_jsonl = ProvenanceToJsonl(base.provenance);

  const ColtRunResult four = RunShifting(/*workers=*/4, kCacheOn, budget);
  EXPECT_EQ(ProvenanceToJsonl(four.provenance), base_jsonl)
      << "num_workers=4 changed the decision stream";

  const ColtRunResult uncached = RunShifting(/*workers=*/0, 0, budget);
  EXPECT_EQ(ProvenanceToJsonl(uncached.provenance), base_jsonl)
      << "disabling the what-if cache changed the decision stream";

  const ColtRunResult both = RunShifting(/*workers=*/4, 0, budget);
  EXPECT_EQ(ProvenanceToJsonl(both.provenance), base_jsonl);
}

TEST(ProvenanceDeterminismTest, StreamIsInOrderWithoutDrops) {
  if (!kProvenanceCompiledIn) {
    GTEST_SKIP() << "provenance compiled out";
  }
  const ColtRunResult run =
      RunShifting(/*workers=*/0, kCacheOn, ShiftingBudget());
  int64_t last_id = -1;
  int64_t last_epoch = 0;
  for (const ProvenanceEvent& e : run.provenance) {
    EXPECT_GT(e.id, last_id);
    EXPECT_GE(e.epoch, last_epoch);
    last_id = e.id;
    last_epoch = e.epoch;
  }
  // Ids are dense from 0 when nothing was dropped (capacity was ample).
  EXPECT_EQ(last_id, static_cast<int64_t>(run.provenance.size()) - 1);
}

TEST(ProvenanceDeterminismTest, ReplayMatchesReportedMaterializedSets) {
  if (!kProvenanceCompiledIn) {
    GTEST_SKIP() << "provenance compiled out";
  }
  const ColtRunResult run =
      RunShifting(/*workers=*/0, kCacheOn, ShiftingBudget());
  ASSERT_FALSE(run.epochs.empty());

  // Ground truth: the per-epoch materialized sets the tuner reported.
  // Replaying the decision stream must land on exactly the same sets for
  // every index at every epoch — this is the "colt_explain reconstructs
  // the install/drop timeline" acceptance gate, checked exhaustively.
  std::vector<int64_t> mentioned;
  for (const ProvenanceEvent& e : run.provenance) {
    if (e.index >= 0) mentioned.push_back(e.index);
  }
  ASSERT_FALSE(mentioned.empty());
  for (const EpochReport& report : run.epochs) {
    for (int64_t index : mentioned) {
      const IndexEpochState state =
          ExplainIndexAtEpoch(run.provenance, index, report.epoch);
      const bool reported = std::find(report.materialized_ids.begin(),
                                      report.materialized_ids.end(),
                                      index) != report.materialized_ids.end();
      EXPECT_EQ(state.materialized, reported)
          << "index " << index << " at epoch " << report.epoch;
    }
  }

  // And at least one index lived a full install -> drop arc on this
  // shifting workload, with causes recorded at both decisions.
  bool saw_full_arc = false;
  for (int64_t index : mentioned) {
    const std::vector<ProvenanceEvent> timeline =
        BuildIndexTimeline(run.provenance, index);
    bool installed = false, dropped_after = false;
    for (const ProvenanceEvent& e : timeline) {
      if (e.name == "scheduler.install") installed = true;
      if (installed && e.name == "scheduler.drop") dropped_after = true;
    }
    if (installed && dropped_after) {
      saw_full_arc = true;
      const IndexEpochState end = ExplainIndexAtEpoch(
          run.provenance, index, run.epochs.back().epoch);
      EXPECT_FALSE(end.last_action.empty());
      EXPECT_FALSE(end.last_cause.empty());
      break;
    }
  }
  EXPECT_TRUE(saw_full_arc)
      << "no index was installed and later dropped on the shifting "
         "workload; the timeline assertion needs a richer trace";
}

}  // namespace
}  // namespace colt
