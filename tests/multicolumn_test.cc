#include <gtest/gtest.h>

#include "core/colt.h"
#include "optimizer/optimizer.h"
#include "storage/database.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

class MultiColumnTest : public ::testing::Test {
 protected:
  MultiColumnTest() : catalog_(MakeTestCatalog()), optimizer_(&catalog_) {
    b_cat_ = Ref(catalog_, "big", "b_cat");  // ndv 50
    b_val_ = Ref(catalog_, "big", "b_val");  // ndv 1000
  }

  /// Query with an equality on b_cat and a range on b_val.
  Query TwoPredQuery(int64_t cat, int64_t val_lo, int64_t val_hi) {
    return Query({0}, {},
                 {SelectionPredicate{b_cat_, cat, cat},
                  SelectionPredicate{b_val_, val_lo, val_hi}});
  }

  Catalog catalog_;
  QueryOptimizer optimizer_;
  ColumnRef b_cat_, b_val_;
};

TEST_F(MultiColumnTest, CatalogCreatesCompositeDescriptor) {
  auto desc = catalog_.CompositeIndexOn({b_cat_, b_val_});
  ASSERT_TRUE(desc.ok()) << desc.status().ToString();
  EXPECT_TRUE(desc->is_composite());
  EXPECT_EQ(desc->columns.size(), 2u);
  EXPECT_EQ(desc->column, b_cat_);  // leading column alias
  EXPECT_NE(desc->name.find("b_cat"), std::string::npos);
  EXPECT_NE(desc->name.find("b_val"), std::string::npos);
  // Same list -> same id; different order -> different index.
  auto again = catalog_.CompositeIndexOn({b_cat_, b_val_});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->id, desc->id);
  auto reversed = catalog_.CompositeIndexOn({b_val_, b_cat_});
  ASSERT_TRUE(reversed.ok());
  EXPECT_NE(reversed->id, desc->id);
}

TEST_F(MultiColumnTest, CompositeWiderThanSingle) {
  auto composite = catalog_.CompositeIndexOn({b_cat_, b_val_});
  auto single = catalog_.IndexOn(b_cat_);
  ASSERT_TRUE(composite.ok());
  ASSERT_TRUE(single.ok());
  EXPECT_GT(composite->size_bytes, single->size_bytes);
  EXPECT_EQ(composite->entry_count, single->entry_count);
}

TEST_F(MultiColumnTest, CatalogRejectsInvalidComposites) {
  EXPECT_FALSE(catalog_.CompositeIndexOn({b_cat_}).ok());
  EXPECT_FALSE(catalog_.CompositeIndexOn({b_cat_, b_cat_}).ok());
  EXPECT_FALSE(
      catalog_.CompositeIndexOn({b_cat_, Ref(catalog_, "small", "s_val")})
          .ok());
  EXPECT_FALSE(catalog_.CompositeIndexOn({b_cat_, ColumnRef{0, 99}}).ok());
}

TEST_F(MultiColumnTest, EqualityPrefixUsesBothColumns) {
  // eq(b_cat) + range(b_val): the composite consumes both (driving sel
  // 1/50 * range), beating both single-column indexes.
  auto composite = catalog_.CompositeIndexOn({b_cat_, b_val_});
  auto single_cat = catalog_.IndexOn(b_cat_);
  auto single_val = catalog_.IndexOn(b_val_);
  ASSERT_TRUE(composite.ok());

  const Query q = TwoPredQuery(7, 100, 119);  // sel 0.02 * 0.02 = 4e-4
  IndexConfiguration all;
  all.Add(composite->id);
  all.Add(single_cat->id);
  all.Add(single_val->id);
  const PlanResult plan = optimizer_.Optimize(q, all);
  ASSERT_TRUE(plan.plan->type == PlanNodeType::kIndexScan ||
              plan.plan->type == PlanNodeType::kBitmapScan);
  EXPECT_EQ(plan.plan->index_id, composite->id);

  IndexConfiguration composite_only;
  composite_only.Add(composite->id);
  IndexConfiguration singles;
  singles.Add(single_cat->id);
  singles.Add(single_val->id);
  EXPECT_LT(optimizer_.Optimize(q, composite_only).cost,
            optimizer_.Optimize(q, singles).cost);
}

TEST_F(MultiColumnTest, RangeOnLeadingColumnEndsPrefix) {
  // range(b_cat) + eq(b_val): only the leading column is usable, so the
  // composite is no better than (actually worse than) the single b_val
  // index driving on the equality.
  auto composite = catalog_.CompositeIndexOn({b_cat_, b_val_});
  auto single_val = catalog_.IndexOn(b_val_);
  Query q({0}, {},
          {SelectionPredicate{b_cat_, 0, 9},      // 20% range
           SelectionPredicate{b_val_, 42, 42}});  // 0.1% equality
  IndexConfiguration both;
  both.Add(composite->id);
  both.Add(single_val->id);
  const PlanResult plan = optimizer_.Optimize(q, both);
  ASSERT_TRUE(plan.plan->type == PlanNodeType::kIndexScan ||
              plan.plan->type == PlanNodeType::kBitmapScan);
  EXPECT_EQ(plan.plan->index_id, single_val->id);
}

TEST_F(MultiColumnTest, NoPredicateOnLeadingColumnUnusable) {
  auto composite = catalog_.CompositeIndexOn({b_cat_, b_val_});
  Query q({0}, {}, {SelectionPredicate{b_val_, 42, 42}});
  IndexConfiguration config;
  config.Add(composite->id);
  const PlanResult plan = optimizer_.Optimize(q, config);
  EXPECT_EQ(plan.plan->type, PlanNodeType::kSeqScan);
}

TEST_F(MultiColumnTest, WhatIfGainIdentityHoldsForComposite) {
  auto composite = catalog_.CompositeIndexOn({b_cat_, b_val_});
  const Query q = TwoPredQuery(3, 0, 19);
  const double base = optimizer_.Optimize(q, {}).cost;
  IndexConfiguration with;
  with.Add(composite->id);
  const double with_cost = optimizer_.Optimize(q, with).cost;
  const auto gains = optimizer_.WhatIfOptimize(q, {}, {composite->id});
  ASSERT_EQ(gains.size(), 1u);
  EXPECT_NEAR(gains[0].gain, base - with_cost, 1e-9);
  EXPECT_GT(gains[0].gain, 0.0);
}

TEST_F(MultiColumnTest, CompositeCrudeGainPrefixRules) {
  auto composite = catalog_.CompositeIndexOn({b_cat_, b_val_});
  // Equality leading + range second: both consumed.
  const std::vector<SelectionPredicate> eq_then_range = {
      SelectionPredicate{b_cat_, 7, 7}, SelectionPredicate{b_val_, 0, 19}};
  // Range leading: only one consumed.
  const std::vector<SelectionPredicate> range_first = {
      SelectionPredicate{b_cat_, 0, 9}, SelectionPredicate{b_val_, 0, 19}};
  EXPECT_GT(optimizer_.CompositeCrudeGain(eq_then_range, *composite),
            optimizer_.CompositeCrudeGain(range_first, *composite));
  // No predicate on the leading column: zero.
  EXPECT_DOUBLE_EQ(optimizer_.CompositeCrudeGain(
                       {SelectionPredicate{b_val_, 0, 19}}, *composite),
                   0.0);
}

TEST_F(MultiColumnTest, RelevantIndexesSeesCompositeBySecondColumn) {
  auto composite = catalog_.CompositeIndexOn({b_cat_, b_val_});
  IndexConfiguration config;
  config.Add(composite->id);
  Query q({0}, {}, {SelectionPredicate{b_val_, 1, 2}});
  EXPECT_EQ(optimizer_.RelevantIndexes(q, config).size(), 1u);
}

TEST_F(MultiColumnTest, PhysicalBuildRejected) {
  Database db(MakeTestCatalog(), 3);
  ASSERT_TRUE(db.MaterializeAll().ok());
  auto composite = db.mutable_catalog().CompositeIndexOn(
      {Ref(db.catalog(), "big", "b_cat"), Ref(db.catalog(), "big", "b_val")});
  ASSERT_TRUE(composite.ok());
  EXPECT_EQ(db.BuildIndex(composite->id).code(),
            StatusCode::kNotImplemented);
}

TEST_F(MultiColumnTest, ColtMinesAndMaterializesComposite) {
  // Workload: every query has eq(b_cat) + selective range(b_val) — the
  // textbook case for a composite index.
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  config.mine_multicolumn_candidates = true;
  ColtTuner tuner(&catalog_, &optimizer_, config);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const int64_t cat = rng.NextInRange(0, 49);
    const int64_t lo = rng.NextInRange(0, 980);
    tuner.OnQuery(TwoPredQuery(cat, lo, lo + 9));
  }
  bool composite_materialized = false;
  for (IndexId id : tuner.materialized().ids()) {
    composite_materialized |= catalog_.index(id).is_composite();
  }
  EXPECT_TRUE(composite_materialized);
}

TEST_F(MultiColumnTest, CompositeBeatsSingleColumnTuning) {
  // Same workload, with and without the extension: the composite-enabled
  // tuner should reach lower steady-state execution cost.
  auto run = [&](bool multicolumn) {
    Catalog catalog = MakeTestCatalog();
    QueryOptimizer optimizer(&catalog);
    ColtConfig config;
    config.storage_budget_bytes = 64LL * 1024 * 1024;
    config.mine_multicolumn_candidates = multicolumn;
    ColtTuner tuner(&catalog, &optimizer, config);
    const ColumnRef cat = Ref(catalog, "big", "b_cat");
    const ColumnRef val = Ref(catalog, "big", "b_val");
    Rng rng(5);
    double tail = 0.0;
    for (int i = 0; i < 300; ++i) {
      const int64_t c = rng.NextInRange(0, 49);
      const int64_t lo = rng.NextInRange(0, 980);
      Query q({0}, {},
              {SelectionPredicate{cat, c, c},
               SelectionPredicate{val, lo, lo + 9}});
      const TuningStep step = tuner.OnQuery(q);
      if (i >= 200) tail += step.execution_seconds;
    }
    return tail;
  };
  EXPECT_LT(run(true), run(false) * 0.9);
}

}  // namespace
}  // namespace colt
