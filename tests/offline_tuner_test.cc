#include "baseline/offline_tuner.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

std::vector<Query> MixedWorkload(const Catalog& catalog, int n,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  for (int i = 0; i < n; ++i) {
    switch (rng.NextBelow(3)) {
      case 0: {
        const int64_t lo = rng.NextInRange(0, 9900);
        out.push_back(MakeRangeQuery(catalog, "big", "b_key", lo, lo + 15));
        break;
      }
      case 1: {
        const int64_t lo = rng.NextInRange(0, 990);
        out.push_back(MakeRangeQuery(catalog, "big", "b_val", lo, lo + 1));
        break;
      }
      default: {
        const int64_t v = rng.NextInRange(0, 99);
        out.push_back(MakeRangeQuery(catalog, "small", "s_val", v, v));
        break;
      }
    }
  }
  return out;
}

class OfflineTunerTest : public ::testing::Test {
 protected:
  OfflineTunerTest()
      : catalog_(MakeTestCatalog()), optimizer_(&catalog_),
        tuner_(&catalog_, &optimizer_) {}

  Catalog catalog_;
  QueryOptimizer optimizer_;
  OfflineTuner tuner_;
};

TEST_F(OfflineTunerTest, EmptyWorkload) {
  auto result = tuner_.Tune({}, 1 << 20);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->configuration.empty());
  EXPECT_DOUBLE_EQ(result->total_cost, 0.0);
}

TEST_F(OfflineTunerTest, MinesSelectionColumnsOnly) {
  Query join({0, 1},
             {JoinPredicate{Ref(catalog_, "big", "b_key"),
                            Ref(catalog_, "small", "s_ref")}},
             {SelectionPredicate{Ref(catalog_, "big", "b_val"), 0, 9}});
  auto relevant = tuner_.MineRelevantIndexes({join});
  ASSERT_TRUE(relevant.ok());
  EXPECT_EQ(relevant->size(), 1u);  // b_val only, not the join columns
  OfflineTuner with_joins(&catalog_, &optimizer_, 22,
                          /*include_join_columns=*/true);
  auto wide = with_joins.MineRelevantIndexes({join});
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->size(), 3u);
}

TEST_F(OfflineTunerTest, PicksTheObviousIndex) {
  const auto workload = MixedWorkload(catalog_, 60, 1);
  auto result = tuner_.Tune(workload, 1LL << 40);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->exhaustive);
  // All three indexed columns earn their keep now that bitmap heap scans
  // make even the small table's index useful at its selectivities.
  EXPECT_EQ(result->configuration.size(), 3u);
  EXPECT_LT(result->total_cost, result->base_cost);
}

TEST_F(OfflineTunerTest, RespectsBudget) {
  const auto workload = MixedWorkload(catalog_, 60, 2);
  auto relevant = tuner_.MineRelevantIndexes(workload);
  ASSERT_TRUE(relevant.ok());
  int64_t smallest = INT64_MAX;
  for (IndexId id : relevant.value()) {
    smallest = std::min(smallest, catalog_.index(id).size_bytes);
  }
  auto result = tuner_.Tune(workload, smallest);
  ASSERT_TRUE(result.ok());
  int64_t used = 0;
  for (IndexId id : result->configuration.ids()) {
    used += catalog_.index(id).size_bytes;
  }
  EXPECT_LE(used, smallest);
  EXPECT_LE(result->configuration.size(), 1u);
}

TEST_F(OfflineTunerTest, ZeroBudgetMeansNoIndexes) {
  const auto workload = MixedWorkload(catalog_, 30, 3);
  auto result = tuner_.Tune(workload, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->configuration.empty());
  EXPECT_DOUBLE_EQ(result->total_cost, result->base_cost);
}

TEST_F(OfflineTunerTest, ExhaustiveMatchesBruteForceOnTinyInstance) {
  const auto workload = MixedWorkload(catalog_, 25, 4);
  auto relevant = tuner_.MineRelevantIndexes(workload);
  ASSERT_TRUE(relevant.ok());
  const auto& ids = relevant.value();
  ASSERT_LE(ids.size(), 3u);
  const int64_t budget = 8LL * 1024 * 1024;
  auto result = tuner_.Tune(workload, budget);
  ASSERT_TRUE(result.ok());
  // Independent brute force over all subsets.
  double best = 1e300;
  for (uint32_t mask = 0; mask < (1u << ids.size()); ++mask) {
    IndexConfiguration config;
    int64_t size = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
      if (mask & (1u << i)) {
        config.Add(ids[i]);
        size += catalog_.index(ids[i]).size_bytes;
      }
    }
    if (size > budget) continue;
    double total = 0.0;
    for (const auto& q : workload) total += optimizer_.Optimize(q, config).cost;
    best = std::min(best, total);
  }
  EXPECT_NEAR(result->total_cost, best, 1e-6);
}

TEST_F(OfflineTunerTest, GreedyFallbackForManyIndexes) {
  OfflineTuner limited(&catalog_, &optimizer_, /*max_exhaustive_indexes=*/1);
  const auto workload = MixedWorkload(catalog_, 40, 5);
  auto result = limited.Tune(workload, 1LL << 40);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exhaustive);
  EXPECT_LE(result->total_cost, result->base_cost);
  // Greedy is never better than the exhaustive optimum.
  auto exhaustive = tuner_.Tune(workload, 1LL << 40);
  ASSERT_TRUE(exhaustive.ok());
  EXPECT_GE(result->total_cost, exhaustive->total_cost - 1e-6);
}

TEST_F(OfflineTunerTest, CountsEvaluatedConfigurations) {
  const auto workload = MixedWorkload(catalog_, 20, 6);
  auto result = tuner_.Tune(workload, 1LL << 40);
  ASSERT_TRUE(result.ok());
  // 3 relevant indexes -> 8 subsets scored.
  EXPECT_EQ(result->configurations_evaluated, 8);
}

}  // namespace
}  // namespace colt
