#include "common/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace colt {
namespace {

TEST(FaultInjectorTest, DisabledByDefaultHasZeroEffect) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.Fires(fault_sites::kIndexBuild));
    EXPECT_TRUE(injector.MaybeFail(fault_sites::kWhatIfOptimize).ok());
    EXPECT_DOUBLE_EQ(injector.Multiplier(fault_sites::kStorageScan), 1.0);
  }
  EXPECT_EQ(injector.total_fires(), 0);
  EXPECT_EQ(injector.check_count(fault_sites::kIndexBuild), 0);
}

TEST(FaultInjectorTest, UnconfiguredSiteNeverFires) {
  FaultConfig config;
  config.Fail(fault_sites::kIndexBuild, 1.0);
  FaultInjector injector(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.Fires("no.such.site"));
  }
  EXPECT_EQ(injector.fire_count("no.such.site"), 0);
  EXPECT_EQ(injector.check_count("no.such.site"), 0);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultConfig config;
  config.seed = 1234;
  config.Fail(fault_sites::kIndexBuild, 0.3);
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.Fires(fault_sites::kIndexBuild),
              b.Fires(fault_sites::kIndexBuild));
  }
  EXPECT_EQ(a.fire_count(fault_sites::kIndexBuild),
            b.fire_count(fault_sites::kIndexBuild));
  EXPECT_GT(a.fire_count(fault_sites::kIndexBuild), 0);
  EXPECT_LT(a.fire_count(fault_sites::kIndexBuild), 500);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultConfig config;
  config.Fail(fault_sites::kIndexBuild, 0.5);
  config.seed = 1;
  FaultInjector a(config);
  config.seed = 2;
  FaultInjector b(config);
  int differences = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.Fires(fault_sites::kIndexBuild) !=
        b.Fires(fault_sites::kIndexBuild)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultInjectorTest, SiteStreamsAreIndependent) {
  // The k-th check of one site must yield the same verdict regardless of
  // how checks of other sites interleave with it.
  FaultConfig config;
  config.seed = 99;
  config.Fail(fault_sites::kIndexBuild, 0.4);
  config.Fail(fault_sites::kWhatIfOptimize, 0.4);

  FaultInjector pure(config);
  std::vector<bool> expected;
  for (int i = 0; i < 200; ++i) {
    expected.push_back(pure.Fires(fault_sites::kIndexBuild));
  }

  FaultInjector interleaved(config);
  for (int i = 0; i < 200; ++i) {
    // Arbitrary bursts on the other site between checks.
    for (int j = 0; j < i % 5; ++j) {
      interleaved.Fires(fault_sites::kWhatIfOptimize);
    }
    EXPECT_EQ(interleaved.Fires(fault_sites::kIndexBuild), expected[i])
        << "check " << i;
  }
}

TEST(FaultInjectorTest, ProbabilityOneAlwaysFires) {
  FaultConfig config;
  config.Fail(fault_sites::kIndexBuild, 1.0);
  FaultInjector injector(config);
  for (int i = 0; i < 20; ++i) {
    const Status status = injector.MaybeFail(fault_sites::kIndexBuild);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
  }
  EXPECT_EQ(injector.fire_count(fault_sites::kIndexBuild), 20);
  EXPECT_EQ(injector.total_fires(), 20);
}

TEST(FaultInjectorTest, MaxFiresCapsInjectedFaults) {
  FaultConfig config;
  config.Fail(fault_sites::kIndexBuild, 1.0, /*max_fires=*/3);
  FaultInjector injector(config);
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    if (!injector.MaybeFail(fault_sites::kIndexBuild).ok()) ++failures;
  }
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(injector.fire_count(fault_sites::kIndexBuild), 3);
  EXPECT_EQ(injector.check_count(fault_sites::kIndexBuild), 10);
}

TEST(FaultInjectorTest, MultiplierAppliesOnlyWhenFiring) {
  FaultConfig config;
  config.Slow(fault_sites::kStorageScan, 1.0, 3.5);
  config.Slow(fault_sites::kIndexBuildSlow, 0.0, 9.0);
  FaultInjector injector(config);
  EXPECT_DOUBLE_EQ(injector.Multiplier(fault_sites::kStorageScan), 3.5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(injector.Multiplier(fault_sites::kIndexBuildSlow), 1.0);
  }
}

TEST(FaultInjectorTest, FailureMessageNamesTheSite) {
  FaultConfig config;
  config.Fail(fault_sites::kWhatIfOptimize, 1.0);
  FaultInjector injector(config);
  const Status status = injector.MaybeFail(fault_sites::kWhatIfOptimize);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(fault_sites::kWhatIfOptimize),
            std::string::npos);
}

TEST(FaultInjectorTest, CustomStatusCodePropagates) {
  FaultConfig config;
  config.Fail(fault_sites::kIndexBuild, 1.0);
  config.rules[fault_sites::kIndexBuild].code =
      StatusCode::kResourceExhausted;
  FaultInjector injector(config);
  EXPECT_EQ(injector.MaybeFail(fault_sites::kIndexBuild).code(),
            StatusCode::kResourceExhausted);
}

TEST(FaultInjectorTest, FluentHelpersEnableInjection) {
  FaultConfig config;
  EXPECT_FALSE(config.enabled);
  config.Fail(fault_sites::kIndexBuild, 0.1)
      .Slow(fault_sites::kStorageScan, 0.2, 2.0);
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.rules.size(), 2u);
  EXPECT_DOUBLE_EQ(config.rules[fault_sites::kStorageScan].multiplier, 2.0);
}

}  // namespace
}  // namespace colt
