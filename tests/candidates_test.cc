#include "core/candidates.h"

#include <gtest/gtest.h>

namespace colt {
namespace {

TEST(Candidates, EmptyInitially) {
  CandidateSet set(12, 0.4);
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.Contains(1));
  EXPECT_DOUBLE_EQ(set.SmoothedBenefit(1), 0.0);
  EXPECT_TRUE(set.All().empty());
}

TEST(Candidates, ObserveCreates) {
  CandidateSet set(12, 0.4);
  set.Observe(5, 100.0, 0);
  EXPECT_TRUE(set.Contains(5));
  EXPECT_EQ(set.size(), 1u);
  // Before the first epoch closes, the raw in-progress sum is reported.
  EXPECT_DOUBLE_EQ(set.SmoothedBenefit(5), 100.0);
}

TEST(Candidates, EpochFoldsIntoPerQueryAverage) {
  CandidateSet set(12, 1.0);  // alpha 1: no smoothing
  set.Observe(5, 100.0, 0);
  set.Observe(5, 50.0, 0);
  set.AdvanceEpoch(0, 10);
  EXPECT_DOUBLE_EQ(set.SmoothedBenefit(5), 15.0);  // 150 / 10 queries
}

TEST(Candidates, SmoothingAcrossEpochs) {
  CandidateSet set(12, 0.5);
  set.Observe(5, 100.0, 0);
  set.AdvanceEpoch(0, 10);  // smoothed = 10
  // Keep observing so the candidate does not expire; epoch sum 0 halves it.
  set.Observe(5, 0.0, 1);
  set.AdvanceEpoch(1, 10);
  EXPECT_DOUBLE_EQ(set.SmoothedBenefit(5), 5.0);
}

TEST(Candidates, ExpireAfterHistoryDepth) {
  CandidateSet set(3, 0.4);
  set.Observe(5, 10.0, 0);
  set.AdvanceEpoch(0, 10);
  set.AdvanceEpoch(1, 10);
  set.AdvanceEpoch(2, 10);
  set.AdvanceEpoch(3, 10);
  EXPECT_TRUE(set.Contains(5));  // last seen epoch 0, 3 - 0 == depth
  set.AdvanceEpoch(4, 10);
  EXPECT_FALSE(set.Contains(5));
}

TEST(Candidates, RecentObservationPreventsExpiry) {
  CandidateSet set(3, 0.4);
  set.Observe(5, 10.0, 0);
  for (int e = 0; e < 10; ++e) {
    set.Observe(5, 10.0, e);
    set.AdvanceEpoch(e, 10);
    EXPECT_TRUE(set.Contains(5));
  }
}

TEST(Candidates, AllSorted) {
  CandidateSet set(12, 0.4);
  set.Observe(9, 1.0, 0);
  set.Observe(2, 1.0, 0);
  set.Observe(5, 1.0, 0);
  EXPECT_EQ(set.All(), (std::vector<IndexId>{2, 5, 9}));
}

TEST(Candidates, IndependentAccumulators) {
  CandidateSet set(12, 1.0);
  set.Observe(1, 100.0, 0);
  set.Observe(2, 10.0, 0);
  set.AdvanceEpoch(0, 10);
  EXPECT_DOUBLE_EQ(set.SmoothedBenefit(1), 10.0);
  EXPECT_DOUBLE_EQ(set.SmoothedBenefit(2), 1.0);
}

}  // namespace
}  // namespace colt
