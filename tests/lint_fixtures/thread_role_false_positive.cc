// Fixture: legal role patterns that must produce no findings — worker
// calling worker, unannotated owner code calling owner-only APIs, a
// qualified call resolving strictly past a same-named owner-only symbol,
// and a TaskRng draw.
namespace colt {

COLT_OWNER_ONLY void InstallIndexNow(int id);

COLT_WORKER_SAFE double PeekCost(int key);

COLT_WORKER_SAFE double SumCosts(int lo, int hi) {
  double total = 0.0;
  for (int key = lo; key < hi; ++key) {
    total += PeekCost(key);
  }
  return total;
}

// Unannotated code is owner code by default; owner-only calls are fine.
void OwnerLoop() {
  InstallIndexNow(3);
}

class WorkerTracer {
 public:
  COLT_WORKER_SAFE static WorkerTracer& Default();
};

class OwnerRegistry {
 public:
  COLT_OWNER_ONLY static OwnerRegistry& Default();
};

// The explicit qualifier binds strictly: WorkerTracer::Default is
// worker-safe even though OwnerRegistry::Default shares its name.
COLT_WORKER_SAFE void TraceProbe() {
  WorkerTracer::Default();
}

// TaskRng streams are the sanctioned worker randomness.
COLT_WORKER_SAFE double DrawDeterministic(unsigned long seed, int task) {
  Rng rng = ThreadPool::TaskRng(seed, task);
  return rng.NextDouble();
}

}  // namespace colt
