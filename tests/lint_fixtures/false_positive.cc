// Fixture: linted as src/core/ok.cc; every construct here is legal and the
// file must produce zero findings.
//
// A comment mentioning system_clock, rand(), new, and (void)Drop() must not
// fire: rules run on a comment-stripped view.
#include <cstdio>
#include <memory>
#include <string>

struct Widget {
  Widget() = default;
  // Deleted special members are not raw `delete`.
  Widget(const Widget&) = delete;
  Widget& operator=(const Widget&) = delete;
};

// `(void)` as a parameter list is a declaration, not a discard.
int NoArgs(void);

Widget& LeakySingleton() {
  // The sanctioned leaky-singleton form of `new`.
  static Widget* w = new Widget();
  return *w;
}

std::string Banner() {
  // Banned tokens inside string literals must not fire, and the digit
  // separator below must not derail the char-literal lexer.
  const long big = 1'000'000;
  return "rand() time(nullptr) system_clock new delete (void)x" +
         std::to_string(big);
}

std::unique_ptr<int> Owned() { return std::make_unique<int>(7); }

// File-I/O calls whose results feed an expression are checked, not
// discarded; none of these may fire unchecked-file-io.
bool CheckedIo(std::FILE* f, char* buf) {
  if (fwrite(buf, 1, 16, f) != 16) return false;
  const size_t n = std::fread(buf, 1, 16, f);
  return fclose(f) == 0 && n > 0;
}
