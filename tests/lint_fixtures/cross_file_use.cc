// Fixture (pairs with cross_file_decl.h): the worker-safe reader is clean,
// the worker-safe writer trips on the owner-only BumpVersion.
namespace colt {

COLT_WORKER_SAFE unsigned long ReadVersion(SharedCatalog* catalog) {
  return catalog->version();
}

COLT_WORKER_SAFE void Invalidate(SharedCatalog* catalog) {
  catalog->BumpVersion();
}

}  // namespace colt
