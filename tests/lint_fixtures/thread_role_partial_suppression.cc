// Fixture: allow-next-line silences exactly one line — the second
// owner-only call still fails.
namespace colt {

COLT_OWNER_ONLY void InstallIndexNow(int id);

COLT_WORKER_SAFE void WarmTwo(int id) {
  // colt-lint: allow-next-line(thread-role): the first call is sanctioned
  // by this fixture to prove the suppression is line-scoped.
  InstallIndexNow(id);
  InstallIndexNow(id + 1);
}

}  // namespace colt
