// Fixture: a worker-safe function emits a provenance event; the flight
// recorder is single-writer and owner-side only.
namespace colt {

COLT_WORKER_SAFE double ProbeAndRecord(ProvenanceRecorder* rec) {
  rec->RecordEvent("probe.gain").Attr("gain", 1.0);
  return 1.0;
}

}  // namespace colt
