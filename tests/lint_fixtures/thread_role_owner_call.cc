// Fixture: a COLT_WORKER_SAFE function calling an owner-only API directly.
namespace colt {

COLT_OWNER_ONLY void InstallIndexNow(int id);

COLT_WORKER_SAFE double ProbeGain(int id) {
  InstallIndexNow(id);
  return 0.0;
}

}  // namespace colt
