// Fixture (pairs with cross_file_use.cc): role annotations declared in one
// file govern call sites in another.
namespace colt {

class SharedCatalog {
 public:
  COLT_OWNER_ONLY void BumpVersion();
  COLT_WORKER_SAFE unsigned long version() const;
};

}  // namespace colt
