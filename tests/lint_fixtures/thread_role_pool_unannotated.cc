// Fixture: a lambda handed to ThreadPool::Submit calls a project function
// that carries no thread-role annotation.
namespace colt {

double ComputeChunk(int base) {
  return base * 2.0;
}

void FanOut(ThreadPool* pool) {
  pool->Submit([] { return ComputeChunk(1); });
}

}  // namespace colt
