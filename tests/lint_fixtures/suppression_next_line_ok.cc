// Fixture: a justified line-scoped suppression silences the one flagged
// line (and only needs a comment block immediately above it).
namespace colt {

COLT_OWNER_ONLY void InstallIndexNow(int id);

COLT_WORKER_SAFE void WarmCache(int id) {
  // colt-lint: allow-next-line(thread-role): exercised by the self-test;
  // the callee touches worker-private state only in this fixture.
  InstallIndexNow(id);
}

}  // namespace colt
