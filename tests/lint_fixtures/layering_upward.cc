// Fixture: linted as src/catalog/bad.cc. catalog sits below optimizer in
// the module DAG, so this include is an upward edge.
#include "optimizer/optimizer.h"

int CatalogThing() { return 1; }
