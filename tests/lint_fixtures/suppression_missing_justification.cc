// Fixture: allow() with no justification; fails bad-suppression (and the
// underlying determinism violation is NOT silenced).
// colt-lint: allow(determinism)
#include <cstdlib>

int Roll() { return std::rand(); }
