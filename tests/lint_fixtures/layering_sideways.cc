// Fixture: linted as src/storage/bad.cc. storage and query are siblings
// (storage may reach common/catalog/index only), so this is a sideways edge.
#include "query/query.h"

int StorageThing() { return 1; }
