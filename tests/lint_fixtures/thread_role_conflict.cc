// Fixture: the same function declared with two different thread roles.
namespace colt {

COLT_OWNER_ONLY void FlushSegments();
COLT_WORKER_SAFE void FlushSegments();

}  // namespace colt
