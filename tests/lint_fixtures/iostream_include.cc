// Fixture: linted as src/core/bad.cc; <iostream> in the hot-path tree.
#include <iostream>

void Print() { std::cout << "hello\n"; }
