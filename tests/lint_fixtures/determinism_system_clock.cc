// Fixture: wall-clock time outside the logging layer.
#include <chrono>

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
