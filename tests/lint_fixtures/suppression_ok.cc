// Fixture: a determinism violation silenced by a well-formed, justified
// file-scoped suppression; must lint clean.
// colt-lint: allow(determinism): fixture demonstrating a sanctioned drop.
#include <cstdlib>

int Roll() { return std::rand(); }
