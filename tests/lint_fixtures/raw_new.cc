// Fixture: linted as src/core/bad.cc; raw ownership outside the B+-tree.
int* Make() { return new int(3); }

void Destroy(int* p) { delete p; }
