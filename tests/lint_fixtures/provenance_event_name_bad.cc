// Fixture: provenance event names must be dotted snake_case literals,
// like metric names — a CamelCase name, an undotted name, and a
// non-literal; three findings. (Never compiled, only linted.)
#include <string>

void Emit(Rec& rec, const std::string& dynamic) {
  rec.RecordEvent("Scheduler.Install");
  rec.RecordEvent("install");
  rec.RecordEvent(dynamic);
}
