// Fixture: worker-safe code reaching an owner-only API through an
// unannotated helper (transitive violation).
namespace colt {

COLT_OWNER_ONLY void BumpCatalogVersion();

void RefreshHelper() {
  BumpCatalogVersion();
}

COLT_WORKER_SAFE double EstimateCost() {
  RefreshHelper();
  return 1.0;
}

}  // namespace colt
