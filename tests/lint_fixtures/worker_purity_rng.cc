// Fixture: a worker-safe function constructs a raw Rng instead of drawing
// from a ThreadPool::TaskRng stream.
namespace colt {

COLT_WORKER_SAFE double SampleJitter(unsigned long seed) {
  Rng rng(seed);
  return rng.NextDouble();
}

}  // namespace colt
