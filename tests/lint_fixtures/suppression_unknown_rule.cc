// Fixture: allow() naming a rule that does not exist.
// colt-lint: allow(no-such-rule): this id is not in the catalog.

int Fine() { return 1; }
