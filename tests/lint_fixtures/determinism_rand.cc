// Fixture: libc randomness seeded from the wall clock; two findings.
#include <cstdlib>
#include <ctime>

int Roll() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  return std::rand();
}
