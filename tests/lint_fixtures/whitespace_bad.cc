// Fixture: trailing whitespace, a tab, and a missing final newline.
int a = 1;  
int	b = 2;
int c = 3;