// Fixture: a const (read-path) worker-safe method mutating member state —
// hidden shared-state write once the method runs on workers.
namespace colt {

class GainCache {
 public:
  COLT_WORKER_SAFE double Lookup(int key) const {
    hits_ += 1;
    return static_cast<double>(hits_ + key);
  }

 private:
  mutable long hits_ = 0;
};

}  // namespace colt
