// Fixture: bare (void) cast of a would-be Status return.
int DoThing();

void Caller() {
  (void)DoThing();
}
