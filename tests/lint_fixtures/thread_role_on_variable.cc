// Fixture: a thread-role annotation on something that is not a function.
namespace colt {

COLT_OWNER_ONLY int g_active_epoch = 0;

}  // namespace colt
