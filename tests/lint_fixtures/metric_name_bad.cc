// Fixture: a CamelCase metric name, an undotted metric name, and a
// non-literal name; three findings. (Never compiled, only linted.)
#include <string>

void Register(Reg& reg, const std::string& dynamic) {
  reg.GetCounter("Colt.Queries");
  reg.GetCounter("queries");
  reg.GetHistogram(dynamic);
}
