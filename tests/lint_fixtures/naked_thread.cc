// Fixture: thread creation outside the pool; three findings. The
// std::this_thread call is legal and must NOT fire.
#include <future>
#include <thread>

void Sleep();

int Spawn() {
  std::thread worker([] { Sleep(); });
  std::this_thread::yield();
  auto f = std::async([] { return 1; });
  worker.join();
  std::jthread other([] { Sleep(); });
  return f.get();
}
