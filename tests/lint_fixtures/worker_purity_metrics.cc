// Fixture: a worker-safe function touches the global metrics registry
// instead of a per-worker buffer.
namespace colt {

COLT_WORKER_SAFE void CountProbe() {
  MetricsRegistry::Default().GetCounter("probe.count")->Increment();
}

}  // namespace colt
