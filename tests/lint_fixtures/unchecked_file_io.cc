// Fixture: linted as src/core/bad.cc; statement-level fwrite/fread/fclose
// discard the return value, which is where short writes and deferred close
// errors disappear. Expected rule: unchecked-file-io (3+ findings).
#include <cstdio>

void Bad(std::FILE* f, char* buf) {
  fwrite(buf, 1, 16, f);
  fread(buf, 1, 16, f);
  std::fclose(f);
}
