#include "catalog/column_stats.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace colt {
namespace {

TEST(ColumnStats, EmptyValues) {
  const ColumnStats stats = ColumnStats::FromValues({});
  EXPECT_TRUE(stats.empty());
  EXPECT_DOUBLE_EQ(stats.EqualitySelectivity(5), 0.0);
  EXPECT_DOUBLE_EQ(stats.RangeSelectivity(0, 10), 0.0);
}

TEST(ColumnStats, BasicProperties) {
  const ColumnStats stats = ColumnStats::FromValues({1, 2, 2, 3, 7});
  EXPECT_EQ(stats.row_count(), 5);
  EXPECT_EQ(stats.ndv(), 4);
  EXPECT_EQ(stats.min_value(), 1);
  EXPECT_EQ(stats.max_value(), 7);
}

TEST(ColumnStats, EqualitySelectivityIsOneOverNdv) {
  const ColumnStats stats = ColumnStats::FromValues({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(stats.EqualitySelectivity(2), 0.25);
  EXPECT_DOUBLE_EQ(stats.EqualitySelectivity(9), 0.0);  // out of range
}

TEST(ColumnStats, FullRangeIsOne) {
  const ColumnStats stats = ColumnStats::Uniform(100, 1000);
  EXPECT_NEAR(stats.RangeSelectivity(0, 99), 1.0, 1e-9);
  EXPECT_NEAR(stats.RangeSelectivity(INT64_MIN, INT64_MAX), 1.0, 1e-9);
}

TEST(ColumnStats, EmptyRange) {
  const ColumnStats stats = ColumnStats::Uniform(100, 1000);
  EXPECT_DOUBLE_EQ(stats.RangeSelectivity(10, 5), 0.0);
  EXPECT_DOUBLE_EQ(stats.RangeSelectivity(200, 300), 0.0);
}

TEST(ColumnStats, UniformRangeProportional) {
  const ColumnStats stats = ColumnStats::Uniform(1000, 100'000);
  EXPECT_NEAR(stats.RangeSelectivity(0, 99), 0.1, 0.01);
  EXPECT_NEAR(stats.RangeSelectivity(500, 549), 0.05, 0.01);
}

TEST(ColumnStats, RangeMonotoneInWidth) {
  const ColumnStats stats = ColumnStats::Uniform(1000, 10'000);
  double prev = 0.0;
  for (int64_t hi = 0; hi < 1000; hi += 50) {
    const double sel = stats.RangeSelectivity(0, hi);
    EXPECT_GE(sel, prev);
    prev = sel;
  }
}

/// Property: histogram-estimated range selectivity tracks the exact
/// fraction on generated data, for several distributions.
class HistogramAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramAccuracyTest, EstimateTracksExactFraction) {
  Rng rng(GetParam());
  std::vector<int64_t> values;
  const int n = 20'000;
  const int64_t domain = 1'000;
  for (int i = 0; i < n; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBelow(domain)));
  }
  const ColumnStats stats = ColumnStats::FromValues(values, 64);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t lo = static_cast<int64_t>(rng.NextBelow(domain));
    const int64_t hi =
        lo + static_cast<int64_t>(rng.NextBelow(domain - lo) + 1);
    const double estimated = stats.RangeSelectivity(lo, hi);
    const double exact =
        static_cast<double>(std::count_if(values.begin(), values.end(),
                                          [&](int64_t v) {
                                            return v >= lo && v <= hi;
                                          })) /
        n;
    EXPECT_NEAR(estimated, exact, 0.03)
        << "range [" << lo << ", " << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ColumnStats, UniformMatchesFromValuesShape) {
  Rng rng(77);
  std::vector<int64_t> values;
  for (int i = 0; i < 50'000; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBelow(500)));
  }
  const ColumnStats exact = ColumnStats::FromValues(values);
  const ColumnStats analytic = ColumnStats::Uniform(500, 50'000);
  for (int64_t lo = 0; lo < 500; lo += 100) {
    EXPECT_NEAR(exact.RangeSelectivity(lo, lo + 49),
                analytic.RangeSelectivity(lo, lo + 49), 0.02);
  }
}

TEST(ColumnStats, NdvCappedByRowCount) {
  const ColumnStats stats = ColumnStats::Uniform(1'000'000, 10);
  EXPECT_EQ(stats.ndv(), 10);
}


// ---- Equi-depth histograms ----

TEST(EquiDepth, BucketsApproximatelyEqual) {
  Rng rng(99);
  std::vector<int64_t> values;
  ZipfSampler zipf(1000, 1.2);
  for (int i = 0; i < 30'000; ++i) {
    values.push_back(static_cast<int64_t>(zipf.Sample(rng)));
  }
  const ColumnStats stats =
      ColumnStats::FromValues(values, 32, HistogramType::kEquiDepth);
  EXPECT_EQ(stats.histogram_type(), HistogramType::kEquiDepth);
  EXPECT_GE(stats.bucket_count(), 2);
  EXPECT_LE(stats.bucket_count(), 40);
}

TEST(EquiDepth, FullRangeIsOne) {
  Rng rng(7);
  std::vector<int64_t> values;
  for (int i = 0; i < 5'000; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBelow(100)));
  }
  const ColumnStats stats =
      ColumnStats::FromValues(values, 16, HistogramType::kEquiDepth);
  EXPECT_NEAR(stats.RangeSelectivity(INT64_MIN, INT64_MAX), 1.0, 1e-9);
  EXPECT_NEAR(stats.RangeSelectivity(0, 99), 1.0, 1e-9);
}

/// On heavily skewed data, equi-depth estimates beat equi-width where the
/// head of the distribution is concerned.
class SkewAccuracyTest : public ::testing::TestWithParam<double> {};

TEST_P(SkewAccuracyTest, EquiDepthMoreAccurateOnSkewedData) {
  Rng rng(42);
  ZipfSampler zipf(10'000, GetParam());
  std::vector<int64_t> values;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    values.push_back(static_cast<int64_t>(zipf.Sample(rng)));
  }
  const ColumnStats width =
      ColumnStats::FromValues(values, 32, HistogramType::kEquiWidth);
  const ColumnStats depth =
      ColumnStats::FromValues(values, 32, HistogramType::kEquiDepth);
  double width_err = 0.0, depth_err = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    const int64_t lo = static_cast<int64_t>(rng.NextBelow(200));
    const int64_t hi = lo + static_cast<int64_t>(rng.NextBelow(100));
    const double exact =
        static_cast<double>(std::count_if(values.begin(), values.end(),
                                          [&](int64_t v) {
                                            return v >= lo && v <= hi;
                                          })) /
        n;
    width_err += std::abs(width.RangeSelectivity(lo, hi) - exact);
    depth_err += std::abs(depth.RangeSelectivity(lo, hi) - exact);
  }
  EXPECT_LT(depth_err, width_err);
}

INSTANTIATE_TEST_SUITE_P(Skews, SkewAccuracyTest,
                         ::testing::Values(1.0, 1.2, 1.5));

TEST(EquiDepth, SingleValueColumn) {
  const ColumnStats stats = ColumnStats::FromValues(
      std::vector<int64_t>(100, 7), 8, HistogramType::kEquiDepth);
  EXPECT_DOUBLE_EQ(stats.RangeSelectivity(7, 7), 1.0);
  EXPECT_DOUBLE_EQ(stats.RangeSelectivity(8, 9), 0.0);
}

TEST(EquiDepth, MatchesEquiWidthOnUniformData) {
  Rng rng(5);
  std::vector<int64_t> values;
  for (int i = 0; i < 20'000; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBelow(1'000)));
  }
  const ColumnStats width =
      ColumnStats::FromValues(values, 32, HistogramType::kEquiWidth);
  const ColumnStats depth =
      ColumnStats::FromValues(values, 32, HistogramType::kEquiDepth);
  for (int64_t lo = 0; lo < 1'000; lo += 130) {
    EXPECT_NEAR(width.RangeSelectivity(lo, lo + 57),
                depth.RangeSelectivity(lo, lo + 57), 0.02);
  }
}

}  // namespace
}  // namespace colt
