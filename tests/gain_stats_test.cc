#include "core/gain_stats.h"

#include <gtest/gtest.h>

namespace colt {
namespace {

TEST(GainStats, UnknownPairHasWideInterval) {
  GainStatsStore store(0.90);
  const ConfidenceInterval ci = store.Interval(1, 2, 0xabc);
  EXPECT_LE(ci.low, -kUnknownHalfWidth);
  EXPECT_GE(ci.high, kUnknownHalfWidth);
  EXPECT_EQ(store.MeasurementCount(1, 2, 0xabc), 0);
}

TEST(GainStats, SingleMeasurementStillWide) {
  GainStatsStore store(0.90);
  store.Record(1, 2, 50.0, 7);
  EXPECT_EQ(store.MeasurementCount(1, 2, 7), 1);
  const ConfidenceInterval ci = store.Interval(1, 2, 7);
  EXPECT_GT(ci.width(), kUnknownHalfWidth);
}

TEST(GainStats, IntervalTightensAroundMean) {
  GainStatsStore store(0.90);
  for (int i = 0; i < 30; ++i) {
    store.Record(1, 2, 100.0 + (i % 2 == 0 ? 1.0 : -1.0), 7);
  }
  const ConfidenceInterval ci = store.Interval(1, 2, 7);
  EXPECT_TRUE(ci.Contains(100.0));
  EXPECT_LT(ci.width(), 2.0);
  EXPECT_NEAR(store.Variance(1, 2, 7), 1.0 * 30 / 29, 0.05);
}

TEST(GainStats, SignatureMismatchResetsOnRead) {
  GainStatsStore store(0.90);
  store.Record(1, 2, 100.0, 7);
  store.Record(1, 2, 100.0, 7);
  EXPECT_EQ(store.MeasurementCount(1, 2, 7), 2);
  // Reading under a different signature: stale, reported as unknown.
  EXPECT_EQ(store.MeasurementCount(1, 2, 8), 0);
  EXPECT_GE(store.Interval(1, 2, 8).high, kUnknownHalfWidth);
  // Old signature still intact until a write under the new one.
  EXPECT_EQ(store.MeasurementCount(1, 2, 7), 2);
}

TEST(GainStats, SignatureMismatchResetsOnWrite) {
  GainStatsStore store(0.90);
  store.Record(1, 2, 100.0, 7);
  store.Record(1, 2, 100.0, 7);
  store.Record(1, 2, 5.0, 8);  // config on the table changed
  EXPECT_EQ(store.MeasurementCount(1, 2, 8), 1);
  EXPECT_EQ(store.MeasurementCount(1, 2, 7), 0);
}

TEST(GainStats, EpochMeasurementsTrackCurrentEpoch) {
  GainStatsStore store(0.90);
  store.Record(1, 2, 10.0, 7);
  store.Record(1, 2, 20.0, 7);
  double sum = 0;
  int64_t count = 0;
  store.EpochMeasurements(1, 2, &sum, &count);
  EXPECT_DOUBLE_EQ(sum, 30.0);
  EXPECT_EQ(count, 2);
  store.AdvanceEpoch();
  store.EpochMeasurements(1, 2, &sum, &count);
  EXPECT_DOUBLE_EQ(sum, 0.0);
  EXPECT_EQ(count, 0);
  // All-time stats survive the epoch boundary.
  EXPECT_EQ(store.MeasurementCount(1, 2, 7), 2);
}

TEST(GainStats, EraseIndexRemovesAllItsPairs) {
  GainStatsStore store(0.90);
  store.Record(1, 2, 10.0, 7);
  store.Record(1, 3, 10.0, 7);
  store.Record(9, 2, 10.0, 7);
  store.EraseIndex(1);
  EXPECT_EQ(store.MeasurementCount(1, 2, 7), 0);
  EXPECT_EQ(store.MeasurementCount(1, 3, 7), 0);
  EXPECT_EQ(store.MeasurementCount(9, 2, 7), 1);
  EXPECT_EQ(store.pair_count(), 1);
}

TEST(GainStats, RetainClustersDropsDeadOnes) {
  GainStatsStore store(0.90);
  store.Record(1, 2, 10.0, 7);
  store.Record(1, 3, 10.0, 7);
  store.Record(1, 5, 10.0, 7);
  store.RetainClusters({2, 5});
  EXPECT_EQ(store.MeasurementCount(1, 2, 7), 1);
  EXPECT_EQ(store.MeasurementCount(1, 3, 7), 0);
  EXPECT_EQ(store.MeasurementCount(1, 5, 7), 1);
  EXPECT_EQ(store.pair_count(), 2);
}

TEST(GainStats, PairsIndependent) {
  GainStatsStore store(0.90);
  store.Record(1, 2, 10.0, 7);
  store.Record(2, 2, 99.0, 7);
  for (int i = 0; i < 5; ++i) store.Record(1, 2, 10.0, 7);
  const ConfidenceInterval ci = store.Interval(1, 2, 7);
  EXPECT_TRUE(ci.Contains(10.0));
  EXPECT_FALSE(ci.Contains(99.0));
}

}  // namespace
}  // namespace colt
