#include "core/forecasting.h"

#include <gtest/gtest.h>

namespace colt {
namespace {

TEST(Forecaster, UnknownIndexIsZero) {
  BenefitForecaster forecaster(12);
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(forecaster.TotalPredictedBenefit(1), 0.0);
  EXPECT_EQ(forecaster.HistoryLength(1), 0);
  EXPECT_EQ(forecaster.History(1), nullptr);
}

TEST(Forecaster, SingleEpochZeroPadded) {
  BenefitForecaster forecaster(4);
  forecaster.RecordEpoch(1, 100.0);
  // PredBenefit_j = sum(last min(j, len)) / j — missing epochs count as 0.
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(1, 1), 100.0);
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(1, 2), 50.0);
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(1, 4), 25.0);
  EXPECT_DOUBLE_EQ(forecaster.TotalPredictedBenefit(1),
                   100.0 + 50.0 + 100.0 / 3 + 25.0);
}

TEST(Forecaster, FullHistoryAverages) {
  BenefitForecaster forecaster(3);
  forecaster.RecordEpoch(1, 30.0);  // oldest
  forecaster.RecordEpoch(1, 20.0);
  forecaster.RecordEpoch(1, 10.0);  // newest
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(1, 1), 10.0);
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(1, 2), 15.0);
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(1, 3), 20.0);
  EXPECT_DOUBLE_EQ(forecaster.TotalPredictedBenefit(1), 45.0);
}

TEST(Forecaster, HistoryTruncatedToDepth) {
  BenefitForecaster forecaster(3);
  for (int i = 1; i <= 10; ++i) forecaster.RecordEpoch(1, i);
  EXPECT_EQ(forecaster.HistoryLength(1), 3);
  // Newest three are 10, 9, 8.
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(1, 1), 10.0);
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(1, 3), 9.0);
}

TEST(Forecaster, StableSeriesForecastsItself) {
  BenefitForecaster forecaster(12);
  for (int i = 0; i < 12; ++i) forecaster.RecordEpoch(7, 50.0);
  for (int j = 1; j <= 12; ++j) {
    EXPECT_DOUBLE_EQ(forecaster.PredBenefit(7, j), 50.0);
  }
  EXPECT_DOUBLE_EQ(forecaster.TotalPredictedBenefit(7), 600.0);
}

TEST(Forecaster, RampMonotonicallyApproachesSteadyState) {
  BenefitForecaster forecaster(12);
  double prev = 0.0;
  for (int i = 0; i < 12; ++i) {
    forecaster.RecordEpoch(3, 100.0);
    const double total = forecaster.TotalPredictedBenefit(3);
    EXPECT_GT(total, prev);
    prev = total;
  }
  EXPECT_DOUBLE_EQ(prev, 1200.0);
}

TEST(Forecaster, DecayAfterBenefitDisappears) {
  BenefitForecaster forecaster(12);
  for (int i = 0; i < 12; ++i) forecaster.RecordEpoch(3, 100.0);
  const double steady = forecaster.TotalPredictedBenefit(3);
  forecaster.RecordEpoch(3, 0.0);
  const double after_one = forecaster.TotalPredictedBenefit(3);
  EXPECT_LT(after_one, steady);
  for (int i = 0; i < 11; ++i) forecaster.RecordEpoch(3, 0.0);
  EXPECT_DOUBLE_EQ(forecaster.TotalPredictedBenefit(3), 0.0);
}

TEST(Forecaster, OptimisticLatestSubstitutes) {
  BenefitForecaster forecaster(2);
  forecaster.RecordEpoch(5, 10.0);
  forecaster.RecordEpoch(5, 20.0);  // newest
  // With latest replaced by 100: entries [100, 10].
  EXPECT_DOUBLE_EQ(forecaster.TotalPredictedBenefitWithLatest(5, 100.0),
                   100.0 + 55.0);
  // Original history untouched.
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(5, 1), 20.0);
}

TEST(Forecaster, OptimisticLatestForUnknownIndex) {
  BenefitForecaster forecaster(4);
  // No history: optimistic value becomes the only (zero-padded) entry.
  EXPECT_DOUBLE_EQ(forecaster.TotalPredictedBenefitWithLatest(9, 80.0),
                   80.0 + 40.0 + 80.0 / 3 + 20.0);
}

TEST(Forecaster, EraseDropsHistory) {
  BenefitForecaster forecaster(4);
  forecaster.RecordEpoch(1, 10.0);
  forecaster.Erase(1);
  EXPECT_EQ(forecaster.HistoryLength(1), 0);
  EXPECT_DOUBLE_EQ(forecaster.TotalPredictedBenefit(1), 0.0);
}

TEST(Forecaster, IndependentIndexes) {
  BenefitForecaster forecaster(4);
  forecaster.RecordEpoch(1, 10.0);
  forecaster.RecordEpoch(2, 99.0);
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(1, 1), 10.0);
  EXPECT_DOUBLE_EQ(forecaster.PredBenefit(2, 1), 99.0);
}

/// The Fig. 6 mechanism: a 2-epoch burst (ramping rates) stays below the
/// materialization threshold a 3-4 epoch burst crosses.
TEST(Forecaster, ShortBurstForecastMuchSmallerThanSteady) {
  BenefitForecaster forecaster(12);
  // Burst epoch benefits ramp with the window rate: b_k ~ k * B / 12.
  const double kPerEpoch = 100.0;
  forecaster.RecordEpoch(1, 1 * kPerEpoch / 12);
  forecaster.RecordEpoch(1, 2 * kPerEpoch / 12);
  const double two_epochs = forecaster.TotalPredictedBenefit(1);
  forecaster.RecordEpoch(1, 3 * kPerEpoch / 12);
  forecaster.RecordEpoch(1, 4 * kPerEpoch / 12);
  const double four_epochs = forecaster.TotalPredictedBenefit(1);
  EXPECT_GT(four_epochs, 2.2 * two_epochs);
  EXPECT_LT(two_epochs, 0.1 * (12 * kPerEpoch));
}

}  // namespace
}  // namespace colt
