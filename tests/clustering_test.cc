#include "core/clustering.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

class ClusteringTest : public ::testing::Test {
 protected:
  ClusteringTest() : catalog_(MakeTestCatalog()), clusters_(&catalog_, 3) {}

  Catalog catalog_;
  ClusterManager clusters_;
};

TEST_F(ClusteringTest, SameShapeSameCluster) {
  // Both selective (bucket 0): b_key over [0, 10000).
  const Query q1 = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const Query q2 = MakeRangeQuery(catalog_, "big", "b_key", 5000, 5012);
  EXPECT_EQ(clusters_.Assign(q1), clusters_.Assign(q2));
  EXPECT_EQ(clusters_.live_cluster_count(), 1);
}

TEST_F(ClusteringTest, DifferentBucketDifferentCluster) {
  const Query selective = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const Query broad = MakeRangeQuery(catalog_, "big", "b_key", 0, 4999);
  EXPECT_NE(clusters_.Assign(selective), clusters_.Assign(broad));
}

TEST_F(ClusteringTest, CountsAccumulate) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  ClusterId id = kInvalidClusterId;
  for (int i = 0; i < 5; ++i) id = clusters_.Assign(q);
  EXPECT_EQ(clusters_.Count(id), 5);
  EXPECT_EQ(clusters_.EpochCount(id), 5);
}

TEST_F(ClusteringTest, EpochAdvanceSeparatesCounts) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const ClusterId id = clusters_.Assign(q);
  clusters_.AdvanceEpoch();
  EXPECT_EQ(clusters_.EpochCount(id), 0);
  EXPECT_EQ(clusters_.Count(id), 1);
  clusters_.Assign(q);
  EXPECT_EQ(clusters_.EpochCount(id), 1);
  EXPECT_EQ(clusters_.Count(id), 2);
}

TEST_F(ClusteringTest, ExpiresAfterHistoryDepth) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const ClusterId id = clusters_.Assign(q);
  // history_depth = 3: counts survive 3 advances beyond their epoch.
  clusters_.AdvanceEpoch();
  clusters_.AdvanceEpoch();
  clusters_.AdvanceEpoch();
  EXPECT_EQ(clusters_.Count(id), 1);
  clusters_.AdvanceEpoch();
  EXPECT_EQ(clusters_.Count(id), 0);
  EXPECT_EQ(clusters_.live_cluster_count(), 0);
  // Re-assigning creates a new cluster id (old state gone).
  const ClusterId id2 = clusters_.Assign(q);
  EXPECT_NE(id2, id);
}

TEST_F(ClusteringTest, RelevantColumnsIncludeSelectionsAndJoins) {
  Query join({0, 1},
             {JoinPredicate{Ref(catalog_, "big", "b_key"),
                            Ref(catalog_, "small", "s_ref")}},
             {SelectionPredicate{Ref(catalog_, "big", "b_val"), 0, 9}});
  const ClusterId id = clusters_.Assign(join);
  const auto& cols = clusters_.RelevantColumns(id);
  EXPECT_EQ(cols.size(), 3u);
  EXPECT_TRUE(std::binary_search(cols.begin(), cols.end(),
                                 Ref(catalog_, "big", "b_key")));
  EXPECT_TRUE(std::binary_search(cols.begin(), cols.end(),
                                 Ref(catalog_, "big", "b_val")));
  EXPECT_TRUE(std::binary_search(cols.begin(), cols.end(),
                                 Ref(catalog_, "small", "s_ref")));
}

TEST_F(ClusteringTest, ActiveThisEpochOnlyCurrent) {
  const Query q1 = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const Query q2 = MakeRangeQuery(catalog_, "small", "s_val", 0, 0);
  clusters_.Assign(q1);
  clusters_.AdvanceEpoch();
  const ClusterId id2 = clusters_.Assign(q2);
  const auto active = clusters_.ActiveThisEpoch();
  EXPECT_EQ(active, (std::vector<ClusterId>{id2}));
  const auto live = clusters_.LiveClusters();
  EXPECT_EQ(live.size(), 2u);
}

TEST_F(ClusteringTest, WindowRateAveragesOverWindow) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  ClusterId id = kInvalidClusterId;
  // Epoch 1: 4 occurrences.
  for (int i = 0; i < 4; ++i) id = clusters_.Assign(q);
  EXPECT_DOUBLE_EQ(clusters_.WindowRate(id), 4.0);  // 4 over 1 epoch
  clusters_.AdvanceEpoch();
  // Epoch 2: 2 occurrences -> 6 over 2 epochs.
  clusters_.Assign(q);
  clusters_.Assign(q);
  EXPECT_DOUBLE_EQ(clusters_.WindowRate(id), 3.0);
  clusters_.AdvanceEpoch();
  clusters_.AdvanceEpoch();
  // 6 occurrences over min(h=3, epochs=4) = 3 epochs.
  EXPECT_DOUBLE_EQ(clusters_.WindowRate(id), 2.0);
}

TEST_F(ClusteringTest, SignatureAccessible) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const ClusterId id = clusters_.Assign(q);
  const QuerySignature& sig = clusters_.signature(id);
  EXPECT_EQ(sig.tables, (std::vector<TableId>{0}));
  ASSERT_EQ(sig.selections.size(), 1u);
  EXPECT_EQ(sig.selections[0].second, 0);  // selective bucket
}

TEST_F(ClusteringTest, ManyDistinctShapesBounded) {
  // w*h bound sanity: distinct shapes create distinct clusters.
  int created = 0;
  for (int width : {1, 10, 5000}) {
    for (const char* col : {"b_key", "b_val", "b_cat"}) {
      Query q = MakeRangeQuery(catalog_, "big", col, 0, width);
      clusters_.Assign(q);
      ++created;
    }
  }
  EXPECT_LE(clusters_.live_cluster_count(), created);
  EXPECT_GE(clusters_.live_cluster_count(), 5);
}

}  // namespace
}  // namespace colt
