/// End-to-end robustness tests: Scheduler retry/backoff/quarantine under
/// injected build failures, degraded what-if profiling, emergency eviction
/// on budget shrinks, and the chaos harness invariants in physical mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/colt.h"
#include "core/scheduler.h"
#include "harness/experiment.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

std::vector<Query> KeyHeavyWorkload(const Catalog& catalog, int n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  for (int i = 0; i < n; ++i) {
    const int64_t lo = rng.NextInRange(0, 9900);
    out.push_back(MakeRangeQuery(catalog, "big", "b_key", lo, lo + 20));
  }
  return out;
}

int CountActions(const std::vector<IndexAction>& actions,
                 IndexActionType type) {
  return static_cast<int>(
      std::count_if(actions.begin(), actions.end(),
                    [&](const IndexAction& a) { return a.type == type; }));
}

class ChaosSchedulerTest : public ::testing::Test {
 protected:
  ChaosSchedulerTest() : catalog_(MakeTestCatalog()) {
    b_key_ = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
  }

  Catalog catalog_;
  CostModel cost_model_;
  IndexId b_key_;
};

TEST_F(ChaosSchedulerTest, RetryBackoffQuarantineSchedule) {
  // Build always fails for the first 3 attempts, then the rule is spent.
  FaultConfig fault_config;
  fault_config.Fail(fault_sites::kIndexBuild, 1.0, /*max_fires=*/3);
  FaultInjector faults(fault_config);
  Scheduler::RetryPolicy retry;
  retry.max_build_retries = 3;
  retry.backoff_base_rounds = 1;
  retry.max_backoff_rounds = 8;
  retry.quarantine_cooldown_rounds = 5;
  Scheduler scheduler(&catalog_, &cost_model_, nullptr,
                      SchedulingStrategy::kImmediate, &faults, retry);
  IndexConfiguration desired;
  desired.Add(b_key_);

  // Round 1: first attempt fails; its build time is charged.
  auto r1 = scheduler.ApplyConfiguration(desired);
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(CountActions(*r1, IndexActionType::kBuildFailed), 1);
  EXPECT_GT((*r1)[0].build_seconds, 0.0);
  EXPECT_FALSE(scheduler.materialized().Contains(b_key_));
  EXPECT_EQ(scheduler.build_failures(), 1);

  // Round 2: backoff of 1 round has elapsed; second attempt fails.
  auto r2 = scheduler.ApplyConfiguration(desired);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(CountActions(*r2, IndexActionType::kBuildFailed), 1);
  EXPECT_EQ(scheduler.build_failures(), 2);

  // Round 3: backoff doubled to 2 rounds; no attempt is made.
  auto r3 = scheduler.ApplyConfiguration(desired);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->empty());
  EXPECT_EQ(scheduler.build_failures(), 2);

  // Round 4: third attempt fails and exhausts the retry budget.
  auto r4 = scheduler.ApplyConfiguration(desired);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(CountActions(*r4, IndexActionType::kBuildFailed), 1);
  EXPECT_EQ(CountActions(*r4, IndexActionType::kQuarantine), 1);
  EXPECT_TRUE(scheduler.IsQuarantined(b_key_));
  EXPECT_EQ(scheduler.QuarantinedIndexes(),
            (std::vector<IndexId>{b_key_}));
  EXPECT_EQ(scheduler.build_failures(), 3);
  EXPECT_EQ(scheduler.quarantine_events(), 1);

  // Rounds 5-8: quarantined, no attempts.
  for (int round = 5; round <= 8; ++round) {
    auto r = scheduler.ApplyConfiguration(desired);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->empty()) << "round " << round;
    EXPECT_TRUE(scheduler.IsQuarantined(b_key_));
  }

  // Round 9: cooldown (5 rounds after round 4) has elapsed; the failure
  // history is forgotten and the build succeeds (the fault rule is spent).
  auto r9 = scheduler.ApplyConfiguration(desired);
  ASSERT_TRUE(r9.ok());
  EXPECT_EQ(CountActions(*r9, IndexActionType::kMaterialize), 1);
  EXPECT_TRUE(scheduler.materialized().Contains(b_key_));
  EXPECT_FALSE(scheduler.IsQuarantined(b_key_));
  EXPECT_TRUE(scheduler.QuarantinedIndexes().empty());
}

TEST_F(ChaosSchedulerTest, NonTransientErrorsPropagate) {
  // A database without materialized tables fails builds with
  // kFailedPrecondition — programmer error, not substrate weather.
  Database db(MakeTestCatalog(), 7);
  const IndexId key =
      db.mutable_catalog().IndexOn(Ref(db.catalog(), "big", "b_key"))->id;
  Scheduler scheduler(&db.mutable_catalog(), &cost_model_, &db);
  IndexConfiguration desired;
  desired.Add(key);
  auto result = scheduler.ApplyConfiguration(desired);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(scheduler.build_failures(), 0);  // not a retryable failure
}

TEST_F(ChaosSchedulerTest, IdleTimeBuildFailureLosesIdleWork) {
  FaultConfig fault_config;
  fault_config.Fail(fault_sites::kIndexBuild, 1.0, /*max_fires=*/1);
  FaultInjector faults(fault_config);
  Scheduler scheduler(&catalog_, &cost_model_, nullptr,
                      SchedulingStrategy::kIdleTime, &faults);
  IndexConfiguration desired;
  desired.Add(b_key_);
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());

  // Pay the full build cost; the final materialize step fails.
  auto done = scheduler.OnIdle(scheduler.BuildSeconds(b_key_));
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(CountActions(*done, IndexActionType::kBuildFailed), 1);
  EXPECT_FALSE(scheduler.materialized().Contains(b_key_));
  EXPECT_TRUE(scheduler.PendingBuilds().empty());  // removed from queue

  // Re-queued after backoff: the full build cost is owed again.
  ASSERT_TRUE(scheduler.ApplyConfiguration(desired).ok());
  ASSERT_EQ(scheduler.PendingBuilds(),
            (std::vector<IndexId>{b_key_}));
  auto partial = scheduler.OnIdle(scheduler.BuildSeconds(b_key_) * 0.5);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial->empty());  // prior idle work was not credited
  auto rest = scheduler.OnIdle(scheduler.BuildSeconds(b_key_) * 0.5);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(CountActions(*rest, IndexActionType::kMaterialize), 1);
  EXPECT_TRUE(scheduler.materialized().Contains(b_key_));
}

class ChaosTunerTest : public ::testing::Test {
 protected:
  ChaosTunerTest() : catalog_(MakeTestCatalog()), optimizer_(&catalog_) {
    config_.storage_budget_bytes = 64LL * 1024 * 1024;
    b_key_ = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
  }

  Catalog catalog_;
  QueryOptimizer optimizer_;
  ColtConfig config_;
  IndexId b_key_;
};

TEST_F(ChaosTunerTest, PermanentBuildFailureQuarantinesNotCrashes) {
  config_.fault.Fail(fault_sites::kIndexBuild, 1.0);
  config_.max_build_retries = 2;
  config_.quarantine_cooldown_rounds = 3;
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  for (const auto& q : KeyHeavyWorkload(catalog_, 100, 2)) {
    tuner.OnQuery(q);
  }
  // Nothing can build, but the tuner keeps serving queries and reports the
  // carnage honestly.
  EXPECT_TRUE(tuner.materialized().empty());
  EXPECT_GT(tuner.scheduler().build_failures(), 0);
  EXPECT_GT(tuner.scheduler().quarantine_events(), 0);
  int reported_failures = 0;
  bool saw_quarantine = false;
  for (const auto& report : tuner.epoch_reports()) {
    reported_failures += report.build_failures;
    saw_quarantine |= !report.quarantined_ids.empty();
  }
  EXPECT_EQ(reported_failures,
            static_cast<int>(tuner.scheduler().build_failures()));
  EXPECT_TRUE(saw_quarantine);
}

TEST_F(ChaosTunerTest, QuarantinedIndexNeverMaterializedMidCooldown) {
  config_.fault.Fail(fault_sites::kIndexBuild, 1.0, /*max_fires=*/2);
  config_.max_build_retries = 2;
  config_.quarantine_cooldown_rounds = 4;
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  for (const auto& q : KeyHeavyWorkload(catalog_, 200, 3)) {
    tuner.OnQuery(q);
    for (IndexId id : tuner.scheduler().QuarantinedIndexes()) {
      EXPECT_FALSE(tuner.materialized().Contains(id));
    }
  }
  // After the cooldown the spent fault rule lets the build through: the
  // workload's obvious index ends up materialized after all.
  EXPECT_TRUE(tuner.materialized().Contains(b_key_));
}

TEST_F(ChaosTunerTest, WhatIfFailureDegradesToCrudeEstimate) {
  config_.fault.Fail(fault_sites::kWhatIfOptimize, 1.0);
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  double charged = 0.0;
  for (const auto& q : KeyHeavyWorkload(catalog_, 100, 4)) {
    charged += tuner.OnQuery(q).profiling_seconds;
  }
  // Every what-if call failed, yet the crude fallback still identifies and
  // materializes the obvious index.
  EXPECT_GT(tuner.degraded_whatif_total(), 0);
  EXPECT_TRUE(tuner.materialized().Contains(b_key_));
  // Failed calls were issued: their time is still charged.
  EXPECT_GT(charged, 0.0);
  int reported = 0;
  for (const auto& report : tuner.epoch_reports()) {
    reported += report.degraded_whatif;
  }
  EXPECT_EQ(reported, static_cast<int>(tuner.degraded_whatif_total()));
}

TEST_F(ChaosTunerTest, WhatIfDeadlineSkipsWithoutCharging) {
  // Deadline below one call's cost: every probe degrades, nothing charged.
  config_.whatif_deadline_seconds = config_.whatif_call_seconds * 0.5;
  ColtTuner tuner(&catalog_, &optimizer_, config_);
  double charged = 0.0;
  for (const auto& q : KeyHeavyWorkload(catalog_, 100, 5)) {
    charged += tuner.OnQuery(q).profiling_seconds;
  }
  EXPECT_DOUBLE_EQ(charged, 0.0);
  EXPECT_GT(tuner.degraded_whatif_total(), 0);
  EXPECT_TRUE(tuner.materialized().Contains(b_key_));
}

TEST_F(ChaosTunerTest, BudgetShrinkTriggersEmergencyEviction) {
  // Size the budget to fit exactly the obvious index, then halve it twice
  // mid-run: COLT must evict to keep the invariant, every query.
  config_.storage_budget_bytes = catalog_.index(b_key_).size_bytes * 2;
  config_.fault.Slow(fault_sites::kBudgetShrink, 0.02, 0.4);
  config_.fault.rules[fault_sites::kBudgetShrink].max_fires = 2;
  const auto workload = KeyHeavyWorkload(catalog_, 300, 6);
  const ChaosRunResult chaos =
      RunChaosWorkload(&catalog_, workload, config_);
  EXPECT_TRUE(chaos.ok()) << (chaos.violations.empty()
                                  ? "no detail"
                                  : chaos.violations[0].detail);
  EXPECT_LT(chaos.final_budget_bytes, config_.storage_budget_bytes);
  EXPECT_GT(chaos.emergency_evictions, 0);
}

TEST_F(ChaosTunerTest, PhysicalModeStaysConsistentUnderBuildFaults) {
  Database db(MakeTestCatalog(), 7);
  ASSERT_TRUE(db.MaterializeAll().ok());
  Catalog* catalog = &db.mutable_catalog();
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  // The first two build attempts fail deterministically (quarantining the
  // index), later ones succeed once the cooldown elapses.
  config.fault.Fail(fault_sites::kIndexBuild, 1.0, /*max_fires=*/2);
  config.max_build_retries = 2;
  config.quarantine_cooldown_rounds = 3;
  const auto workload = KeyHeavyWorkload(*catalog, 200, 7);
  const ChaosRunResult chaos =
      RunChaosWorkload(catalog, workload, config, &db);
  EXPECT_TRUE(chaos.ok()) << (chaos.violations.empty()
                                  ? "no detail"
                                  : chaos.violations[0].detail);
  EXPECT_GT(chaos.injected_faults, 0);
}

TEST_F(ChaosTunerTest, FaultFreeChaosRunMatchesPlainRun) {
  // The audit itself must not perturb the tuner: a fault-free chaos run
  // produces exactly the same timeline as RunColtWorkload.
  const auto workload = KeyHeavyWorkload(catalog_, 150, 8);
  const ColtRunResult plain =
      RunColtWorkload(&catalog_, workload, config_);
  const ChaosRunResult chaos =
      RunChaosWorkload(&catalog_, workload, config_);
  EXPECT_TRUE(chaos.ok());
  EXPECT_EQ(chaos.injected_faults, 0);
  ASSERT_EQ(chaos.run.per_query.size(), plain.per_query.size());
  for (size_t i = 0; i < plain.per_query.size(); ++i) {
    EXPECT_DOUBLE_EQ(chaos.run.per_query[i].total(),
                     plain.per_query[i].total());
  }
}

}  // namespace
}  // namespace colt
