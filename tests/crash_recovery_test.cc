// Differential crash-recovery tests (DESIGN.md §12): a tuner that
// checkpoints, dies, and recovers must continue bit-identically to a tuner
// that never died — per-step accounting, epoch reports, fault-injection
// streams, and (in physical mode) the rebuilt index set all match. Also
// covers the graceful degradations: missing, mismatched, and corrupt state
// cold-starts cleanly instead of crashing or resuming garbage.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/colt.h"
#include "storage/database.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

std::string NewStateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/crash_recovery_" + name;
  std::remove((dir + "/wal.log").c_str());
  std::remove((dir + "/snap-0.bin").c_str());
  std::remove((dir + "/snap-1.bin").c_str());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

/// A shifting workload: b_key-heavy, then b_val-heavy — the shape that
/// makes COLT change its mind, so recovery is tested across configuration
/// churn, not on a workload where nothing happens.
std::vector<Query> ShiftingWorkload(const Catalog& catalog, int n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  for (int i = 0; i < n; ++i) {
    if (i < n / 2) {
      const int64_t lo = rng.NextInRange(0, 9900);
      out.push_back(MakeRangeQuery(catalog, "big", "b_key", lo, lo + 20));
    } else {
      const int64_t lo = rng.NextInRange(0, 900);
      out.push_back(MakeRangeQuery(catalog, "big", "b_val", lo, lo + 5));
    }
  }
  return out;
}

void ExpectStepEq(const TuningStep& a, const TuningStep& b, int at) {
  EXPECT_EQ(a.plan.cost, b.plan.cost) << "query " << at;
  EXPECT_EQ(a.execution_seconds, b.execution_seconds) << "query " << at;
  EXPECT_EQ(a.profiling_seconds, b.profiling_seconds) << "query " << at;
  EXPECT_EQ(a.build_seconds, b.build_seconds) << "query " << at;
  EXPECT_EQ(a.wasted_build_seconds, b.wasted_build_seconds) << "query " << at;
  EXPECT_EQ(a.whatif_calls, b.whatif_calls) << "query " << at;
  EXPECT_EQ(a.degraded_whatif_calls, b.degraded_whatif_calls)
      << "query " << at;
  EXPECT_EQ(a.epoch_ended, b.epoch_ended) << "query " << at;
  ASSERT_EQ(a.actions.size(), b.actions.size()) << "query " << at;
  for (size_t i = 0; i < a.actions.size(); ++i) {
    EXPECT_EQ(a.actions[i].type, b.actions[i].type) << "query " << at;
    EXPECT_EQ(a.actions[i].index, b.actions[i].index) << "query " << at;
    EXPECT_EQ(a.actions[i].build_seconds, b.actions[i].build_seconds)
        << "query " << at;
  }
}

void ExpectReportEq(const EpochReport& a, const EpochReport& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.whatif_used, b.whatif_used) << "epoch " << a.epoch;
  EXPECT_EQ(a.whatif_limit, b.whatif_limit) << "epoch " << a.epoch;
  EXPECT_EQ(a.next_whatif_limit, b.next_whatif_limit) << "epoch " << a.epoch;
  EXPECT_EQ(a.rebudget_ratio, b.rebudget_ratio) << "epoch " << a.epoch;
  EXPECT_EQ(a.candidate_count, b.candidate_count) << "epoch " << a.epoch;
  EXPECT_EQ(a.cluster_count, b.cluster_count) << "epoch " << a.epoch;
  EXPECT_EQ(a.hot_ids, b.hot_ids) << "epoch " << a.epoch;
  EXPECT_EQ(a.materialized_ids, b.materialized_ids) << "epoch " << a.epoch;
  EXPECT_EQ(a.materialized_bytes, b.materialized_bytes)
      << "epoch " << a.epoch;
  EXPECT_EQ(a.degraded_whatif, b.degraded_whatif) << "epoch " << a.epoch;
  EXPECT_EQ(a.build_failures, b.build_failures) << "epoch " << a.epoch;
  EXPECT_EQ(a.quarantined_ids, b.quarantined_ids) << "epoch " << a.epoch;
  EXPECT_EQ(a.storage_budget_bytes, b.storage_budget_bytes)
      << "epoch " << a.epoch;
  EXPECT_EQ(a.emergency_evictions, b.emergency_evictions)
      << "epoch " << a.epoch;
  EXPECT_EQ(a.wasted_build_seconds, b.wasted_build_seconds)
      << "epoch " << a.epoch;
}

/// Runs the continuous reference and the kill-at-`kill_after`/recover pair
/// over the same workload and asserts post-recovery equivalence.
void RunDifferential(const ColtConfig& config, int total_queries,
                     int kill_after, const std::string& dir_name) {
  const int w = config.epoch_length;
  ASSERT_EQ(kill_after % w, 0)
      << "kill point must be an epoch boundary: recovery resumes from the "
         "last boundary checkpoint";
  const std::string dir = NewStateDir(dir_name);

  // Continuous reference: persistence off, never dies.
  Catalog ref_catalog = MakeTestCatalog();
  QueryOptimizer ref_optimizer(&ref_catalog);
  ColtTuner reference(&ref_catalog, &ref_optimizer, config);
  const std::vector<Query> ref_workload =
      ShiftingWorkload(ref_catalog, total_queries, 99);
  std::vector<TuningStep> ref_steps;
  for (const Query& q : ref_workload) ref_steps.push_back(reference.OnQuery(q));

  // Victim: checkpoints every epoch, "dies" (is destroyed) at kill_after.
  ColtConfig persist_config = config;
  persist_config.state_dir = dir;
  {
    Catalog victim_catalog = MakeTestCatalog();
    QueryOptimizer victim_optimizer(&victim_catalog);
    ColtTuner victim(&victim_catalog, &victim_optimizer, persist_config);
    const std::vector<Query> workload =
        ShiftingWorkload(victim_catalog, total_queries, 99);
    for (int i = 0; i < kill_after; ++i) {
      const TuningStep step = victim.OnQuery(workload[i]);
      // Persistence on vs. off must not change tuning by a single bit.
      ExpectStepEq(ref_steps[static_cast<size_t>(i)], step, i);
    }
  }

  // Recovered run: fresh everything, state from disk.
  Catalog rec_catalog = MakeTestCatalog();
  QueryOptimizer rec_optimizer(&rec_catalog);
  ColtTuner recovered(&rec_catalog, &rec_optimizer, persist_config);
  const Result<bool> resumed = recovered.RecoverFromStateDir();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE(*resumed) << "a checkpoint must exist at the kill point";
  EXPECT_EQ(recovered.queries_observed(), kill_after);
  EXPECT_EQ(recovered.current_epoch(), kill_after / w);

  const std::vector<Query> workload =
      ShiftingWorkload(rec_catalog, total_queries, 99);
  for (int i = kill_after; i < total_queries; ++i) {
    const TuningStep step = recovered.OnQuery(workload[static_cast<size_t>(i)]);
    ExpectStepEq(ref_steps[static_cast<size_t>(i)], step, i);
  }
  EXPECT_EQ(recovered.materialized().ids(), reference.materialized().ids());
  EXPECT_EQ(recovered.hot_set(), reference.hot_set());
  EXPECT_EQ(recovered.whatif_limit(), reference.whatif_limit());
  EXPECT_EQ(recovered.queries_observed(), reference.queries_observed());
  EXPECT_EQ(recovered.distinct_indexes_profiled(),
            reference.distinct_indexes_profiled());
  EXPECT_EQ(recovered.degraded_whatif_total(),
            reference.degraded_whatif_total());

  // Post-recovery epoch reports must equal the reference's at the same
  // epoch numbers (the recovered tuner only holds post-boundary reports).
  const auto& ref_reports = reference.epoch_reports();
  const auto& rec_reports = recovered.epoch_reports();
  const size_t skipped = ref_reports.size() - rec_reports.size();
  ASSERT_EQ(skipped, static_cast<size_t>(kill_after / w));
  for (size_t i = 0; i < rec_reports.size(); ++i) {
    ExpectReportEq(ref_reports[i + skipped], rec_reports[i]);
  }
}

TEST(CrashRecoveryTest, RecoveredRunIsBitIdenticalToContinuousRun) {
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  RunDifferential(config, 120, 60, "plain");
}

TEST(CrashRecoveryTest, RecoveryAtFirstEpochBoundary) {
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  RunDifferential(config, 60, 10, "early");
}

TEST(CrashRecoveryTest, RecoveryWithWhatIfCacheDisabled) {
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  config.whatif_cache_bytes = 0;
  RunDifferential(config, 80, 40, "nocache");
}

TEST(CrashRecoveryTest, RecoveryUnderChaosFaultsRestoresFaultStreams) {
  // Build failures + slow what-ifs + a mid-run budget shrink: recovery must
  // resume every per-site fault stream mid-sequence, or the two runs
  // diverge on the first post-recovery draw.
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  config.fault.Fail(fault_sites::kIndexBuild, 0.5);
  config.fault.Slow(fault_sites::kWhatIfSlow, 0.2, 3.0);
  config.fault.Slow(fault_sites::kStorageScan, 0.1, 2.0);
  config.max_build_retries = 2;
  config.quarantine_cooldown_rounds = 4;
  RunDifferential(config, 120, 60, "chaos");
}

TEST(CrashRecoveryTest, RecoveryWithIdleTimeScheduling) {
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  config.scheduling_strategy = SchedulingStrategy::kIdleTime;
  config.idle_seconds_per_query = 0.5;
  RunDifferential(config, 120, 60, "idle");
}

TEST(CrashRecoveryTest, PhysicalModeRebuildsIndexesFromBaseTables) {
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  const std::string dir = NewStateDir("physical");
  ColtConfig persist_config = config;
  persist_config.state_dir = dir;

  std::vector<IndexId> built_before;
  {
    Database db(MakeTestCatalog(), 7);
    ASSERT_TRUE(db.MaterializeAll().ok());
    QueryOptimizer optimizer(&db.mutable_catalog());
    ColtTuner victim(&db.mutable_catalog(), &optimizer, persist_config, &db);
    for (const Query& q : ShiftingWorkload(db.catalog(), 60, 99)) {
      victim.OnQuery(q);
    }
    built_before = db.BuiltIndexIds();
    ASSERT_FALSE(built_before.empty())
        << "the workload must have materialized something";
  }

  Database db(MakeTestCatalog(), 7);
  ASSERT_TRUE(db.MaterializeAll().ok());
  QueryOptimizer optimizer(&db.mutable_catalog());
  ColtTuner recovered(&db.mutable_catalog(), &optimizer, persist_config, &db);
  const Result<bool> resumed = recovered.RecoverFromStateDir();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE(*resumed);
  // The snapshot stores index ids, never pages: the trees exist again
  // because recovery re-bulk-loaded them from the base tables.
  EXPECT_EQ(db.BuiltIndexIds(), built_before);
  EXPECT_EQ(recovered.materialized().ids(), built_before);
}

TEST(CrashRecoveryTest, FreshDirectoryColdStarts) {
  Catalog catalog = MakeTestCatalog();
  QueryOptimizer optimizer(&catalog);
  ColtConfig config;
  config.state_dir = NewStateDir("cold");
  ColtTuner tuner(&catalog, &optimizer, config);
  const Result<bool> resumed = tuner.RecoverFromStateDir();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(*resumed);
  EXPECT_EQ(tuner.current_epoch(), 0);
}

TEST(CrashRecoveryTest, PersistenceDisabledIsAlwaysColdStart) {
  Catalog catalog = MakeTestCatalog();
  QueryOptimizer optimizer(&catalog);
  ColtTuner tuner(&catalog, &optimizer, ColtConfig{});
  EXPECT_EQ(tuner.checkpoint_store(), nullptr);
  const Result<bool> resumed = tuner.RecoverFromStateDir();
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(*resumed);
}

TEST(CrashRecoveryTest, ConfigMismatchColdStartsWithoutTouchingState) {
  const std::string dir = NewStateDir("confmismatch");
  ColtConfig config;
  config.state_dir = dir;
  {
    Catalog catalog = MakeTestCatalog();
    QueryOptimizer optimizer(&catalog);
    ColtTuner victim(&catalog, &optimizer, config);
    for (const Query& q : ShiftingWorkload(catalog, 30, 99)) {
      victim.OnQuery(q);
    }
  }
  ColtConfig changed = config;
  changed.history_depth = 6;  // different memory window: stats incompatible
  Catalog catalog = MakeTestCatalog();
  QueryOptimizer optimizer(&catalog);
  ColtTuner recovered(&catalog, &optimizer, changed);
  const Result<bool> resumed = recovered.RecoverFromStateDir();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(*resumed) << "a changed config must reject the snapshot";
  // The reject left the tuner fully usable for a cold start.
  EXPECT_EQ(recovered.current_epoch(), 0);
  for (const Query& q : ShiftingWorkload(catalog, 20, 99)) {
    recovered.OnQuery(q);
  }
  EXPECT_EQ(recovered.current_epoch(), 2);
}

TEST(CrashRecoveryTest, CatalogMismatchColdStarts) {
  const std::string dir = NewStateDir("catmismatch");
  ColtConfig config;
  config.state_dir = dir;
  {
    Catalog catalog = MakeTestCatalog();
    QueryOptimizer optimizer(&catalog);
    ColtTuner victim(&catalog, &optimizer, config);
    for (const Query& q : ShiftingWorkload(catalog, 30, 99)) {
      victim.OnQuery(q);
    }
  }
  Catalog catalog = MakeTestCatalog();
  catalog.AddTable(TableSchema(
      "extra", {{"e_id", ColumnType::kInt64, 8, 10, true}}, 10));
  QueryOptimizer optimizer(&catalog);
  ColtTuner recovered(&catalog, &optimizer, config);
  const Result<bool> resumed = recovered.RecoverFromStateDir();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(*resumed) << "a changed catalog must reject the snapshot";
  EXPECT_EQ(recovered.current_epoch(), 0);
}

TEST(CrashRecoveryTest, CorruptSnapshotsColdStartCleanly) {
  const std::string dir = NewStateDir("corrupt");
  ColtConfig config;
  config.state_dir = dir;
  {
    Catalog catalog = MakeTestCatalog();
    QueryOptimizer optimizer(&catalog);
    ColtTuner victim(&catalog, &optimizer, config);
    for (const Query& q : ShiftingWorkload(catalog, 30, 99)) {
      victim.OnQuery(q);
    }
  }
  Catalog catalog = MakeTestCatalog();
  QueryOptimizer optimizer(&catalog);
  ColtTuner recovered(&catalog, &optimizer, config);
  for (uint32_t gen = 0; gen <= 1; ++gen) {
    const std::string path =
        recovered.checkpoint_store()->SnapshotPath(gen);
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) continue;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    for (char& c : bytes) c ^= 0x77;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const Result<bool> resumed = recovered.RecoverFromStateDir();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(*resumed) << "all-corrupt state must degrade to cold start";
  for (const Query& q : ShiftingWorkload(catalog, 20, 99)) {
    recovered.OnQuery(q);
  }
  EXPECT_EQ(recovered.current_epoch(), 2);
}

TEST(CrashRecoveryTest, LoadStateRefusesAUsedTuner) {
  Catalog catalog = MakeTestCatalog();
  QueryOptimizer optimizer(&catalog);
  ColtTuner tuner(&catalog, &optimizer, ColtConfig{});
  tuner.OnQuery(MakeRangeQuery(catalog, "big", "b_key", 0, 10));
  BinaryWriter writer;
  tuner.SaveState(&writer);
  BinaryReader reader(writer.buffer());
  EXPECT_EQ(tuner.LoadState(&reader).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace colt
