/// Differential pin for the serving layer (DESIGN.md §15): an N-client
/// serving run must be observationally identical to the single-client run
/// of the same trace — per-query results and page accounting bit-for-bit,
/// tuner decisions unchanged, epoch-report CSVs byte-identical. The
/// nondeterministic field (wall-clock latency) is excluded by
/// construction.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/colt.h"
#include "core/serve.h"
#include "harness/report.h"
#include "optimizer/optimizer.h"
#include "query/workload.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

/// A selection-heavy distribution over the test catalog: enough benefit
/// concentration that the tuner installs indexes within a short trace.
QueryDistribution TestDistribution(const Catalog& catalog) {
  QueryDistribution dist;
  dist.name = "serve_test";
  QueryTemplate key_scan;
  key_scan.name = "big_by_key";
  key_scan.tables = {catalog.FindTable("big")};
  key_scan.selections = {{Ref(catalog, "big", "b_key"), 0.001, 0.01, false}};
  QueryTemplate val_scan;
  val_scan.name = "big_by_val";
  val_scan.tables = {catalog.FindTable("big")};
  val_scan.selections = {{Ref(catalog, "big", "b_val"), 0.005, 0.02, false}};
  QueryTemplate small_scan;
  small_scan.name = "small_by_ref";
  small_scan.tables = {catalog.FindTable("small")};
  small_scan.selections = {{Ref(catalog, "small", "s_ref"), 0.01, 0.05,
                            false}};
  dist.templates = {key_scan, val_scan, small_scan};
  dist.weights = {5.0, 3.0, 1.0};
  return dist;
}

std::vector<Query> MakeTrace(const Catalog& catalog, int queries) {
  WorkloadGenerator gen(&catalog, /*seed=*/23);
  const QueryDistribution dist = TestDistribution(catalog);
  std::vector<Query> trace;
  trace.reserve(static_cast<size_t>(queries));
  for (int i = 0; i < queries; ++i) trace.push_back(gen.Sample(dist));
  return trace;
}

/// One full tuned serving run on a fresh, deterministic database.
struct TunedRun {
  std::unique_ptr<Database> db;
  std::unique_ptr<QueryOptimizer> optimizer;
  std::unique_ptr<ColtTuner> tuner;
  ServeResult result;
};

TunedRun RunTuned(const std::vector<Query>& trace, int clients) {
  TunedRun run;
  run.db = std::make_unique<Database>(MakeTestCatalog(), /*seed=*/7);
  EXPECT_TRUE(run.db->MaterializeAll(/*refresh_stats=*/true).ok());
  run.optimizer = std::make_unique<QueryOptimizer>(&run.db->catalog());
  ColtConfig config;
  config.storage_budget_bytes = 4LL * 1024 * 1024;
  run.tuner = std::make_unique<ColtTuner>(&run.db->mutable_catalog(),
                                          run.optimizer.get(), config,
                                          run.db.get(), /*seed=*/7);
  ServeOptions options;
  options.client_threads = clients;
  options.pin_threads = false;
  run.result = ServeWorkload(run.db.get(), run.optimizer.get(),
                             run.tuner.get(), trace, options);
  return run;
}

std::string EpochCsv(const std::vector<EpochReport>& reports) {
  std::ostringstream out;
  EXPECT_TRUE(WriteEpochReportCsv(reports, out).ok());
  return out.str();
}

void ExpectSameServedStream(const ServeResult& a, const ServeResult& b) {
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    const ServedQuery& x = a.queries[i];
    const ServedQuery& y = b.queries[i];
    ASSERT_EQ(x.trace_index, y.trace_index) << "stream order diverged";
    EXPECT_EQ(x.ok, y.ok) << "query " << i;
    EXPECT_EQ(x.error, y.error) << "query " << i;
    EXPECT_EQ(x.estimated_cost, y.estimated_cost) << "query " << i;
    EXPECT_EQ(x.result.output_rows, y.result.output_rows) << "query " << i;
    EXPECT_EQ(x.result.pages_seq, y.result.pages_seq) << "query " << i;
    EXPECT_EQ(x.result.pages_random, y.result.pages_random) << "query " << i;
    EXPECT_EQ(x.result.pages_bitmap, y.result.pages_bitmap) << "query " << i;
    EXPECT_EQ(x.result.pages_index, y.result.pages_index) << "query " << i;
    EXPECT_EQ(x.result.tuples_processed, y.result.tuples_processed)
        << "query " << i;
  }
}

TEST(ServeTest, MultiClientMatchesSingleClientBitForBit) {
  Catalog catalog = MakeTestCatalog();
  const std::vector<Query> trace = MakeTrace(catalog, 160);

  TunedRun serial = RunTuned(trace, /*clients=*/1);
  TunedRun parallel = RunTuned(trace, /*clients=*/4);

  // Every query executed, in trace order, with identical results and
  // physical page accounting.
  ASSERT_EQ(serial.result.queries.size(), trace.size());
  ExpectSameServedStream(serial.result, parallel.result);
  for (const ServedQuery& q : parallel.result.queries) {
    EXPECT_TRUE(q.ok) << q.error;
  }

  // The tuner's view is client-count-independent: same actions, same
  // epoch diagnostics, and byte-identical epoch CSVs (the fig-series
  // artifact format).
  EXPECT_EQ(serial.result.tuner_actions, parallel.result.tuner_actions);
  EXPECT_EQ(serial.result.epochs, parallel.result.epochs);
  ASSERT_EQ(serial.result.epoch_reports.size(),
            parallel.result.epoch_reports.size());
  EXPECT_EQ(EpochCsv(serial.result.epoch_reports),
            EpochCsv(parallel.result.epoch_reports));

  // The run is long enough to exercise online installs — otherwise this
  // differential proves less than it claims.
  EXPECT_GT(parallel.result.tuner_actions, 0)
      << "trace produced no online index actions; differential is vacuous";

  // Both databases converged to the same physical configuration.
  EXPECT_EQ(serial.db->BuiltIndexIds(), parallel.db->BuiltIndexIds());
}

TEST(ServeTest, ClientPartitionInterleavesRoundRobin) {
  Catalog catalog = MakeTestCatalog();
  const std::vector<Query> trace = MakeTrace(catalog, 40);
  TunedRun run = RunTuned(trace, /*clients=*/3);
  ASSERT_EQ(run.result.queries.size(), trace.size());
  const int epoch_length = run.tuner->config().epoch_length;
  for (size_t i = 0; i < run.result.queries.size(); ++i) {
    const ServedQuery& q = run.result.queries[i];
    EXPECT_EQ(q.trace_index, static_cast<int64_t>(i));
    // Client c serves positions ≡ c (mod N) within each serving epoch.
    const int within_epoch = static_cast<int>(i) % epoch_length;
    EXPECT_EQ(q.client, within_epoch % 3) << "query " << i;
  }
}

TEST(ServeTest, FrozenConfigurationServesWholeTraceAsOneEpoch) {
  Database db(MakeTestCatalog(), /*seed=*/7);
  ASSERT_TRUE(db.MaterializeAll(/*refresh_stats=*/true).ok());
  Result<IndexDescriptor> desc =
      db.mutable_catalog().IndexOn(Ref(db.catalog(), "big", "b_key"));
  ASSERT_TRUE(desc.ok());
  ASSERT_TRUE(db.BuildIndex(desc.value().id).ok());
  QueryOptimizer optimizer(&db.catalog());
  const std::vector<Query> trace = MakeTrace(db.catalog(), 60);

  ServeOptions serial_opts;
  serial_opts.client_threads = 1;
  serial_opts.pin_threads = false;
  const ServeResult serial =
      ServeWorkload(&db, &optimizer, /*tuner=*/nullptr, trace, serial_opts);
  ServeOptions parallel_opts;
  parallel_opts.client_threads = 4;
  parallel_opts.pin_threads = false;
  const ServeResult parallel =
      ServeWorkload(&db, &optimizer, /*tuner=*/nullptr, trace, parallel_opts);

  EXPECT_EQ(serial.epochs, 1);
  EXPECT_EQ(parallel.epochs, 1);
  EXPECT_TRUE(serial.epoch_reports.empty());
  ExpectSameServedStream(serial, parallel);
  // The built index actually serves queries: some plans must use it.
  bool index_used = false;
  for (const ServedQuery& q : parallel.queries) {
    EXPECT_TRUE(q.ok) << q.error;
    if (q.result.pages_index > 0) index_used = true;
  }
  EXPECT_TRUE(index_used);
}

TEST(ServeTest, PerClientMetricsBuffersMergeIntoDefault) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.Reset();
  registry.set_enabled(true);
  {
    Database db(MakeTestCatalog(), /*seed=*/7);
    ASSERT_TRUE(db.MaterializeAll(/*refresh_stats=*/true).ok());
    QueryOptimizer optimizer(&db.catalog());
    const std::vector<Query> trace = MakeTrace(db.catalog(), 30);
    ServeOptions options;
    options.client_threads = 3;
    options.pin_threads = false;
    const ServeResult result =
        ServeWorkload(&db, &optimizer, /*tuner=*/nullptr, trace, options);
    for (const ServedQuery& q : result.queries) EXPECT_TRUE(q.ok) << q.error;
  }
  // Client-side operator instruments were recorded into per-client
  // buffers and folded into the main registry at the epoch join.
  EXPECT_EQ(registry.GetCounter("exec.operator.invocations")->value(), 30);
  registry.Reset();
  registry.set_enabled(false);
}

TEST(ServeTest, EpochEndHookSeesQuiescentClients) {
  Catalog catalog = MakeTestCatalog();
  const std::vector<Query> trace = MakeTrace(catalog, 50);
  TunedRun run;
  run.db = std::make_unique<Database>(MakeTestCatalog(), /*seed=*/7);
  ASSERT_TRUE(run.db->MaterializeAll(/*refresh_stats=*/true).ok());
  run.optimizer = std::make_unique<QueryOptimizer>(&run.db->catalog());
  ColtConfig config;
  config.storage_budget_bytes = 4LL * 1024 * 1024;
  run.tuner = std::make_unique<ColtTuner>(&run.db->mutable_catalog(),
                                          run.optimizer.get(), config,
                                          run.db.get(), /*seed=*/7);
  ServeOptions options;
  options.client_threads = 2;
  options.pin_threads = false;
  std::vector<int> epochs_seen;
  Database* db = run.db.get();
  options.on_epoch_end = [&epochs_seen, db](int epoch) {
    epochs_seen.push_back(epoch);
    // Clients have joined: every built tree must pass full validation.
    for (IndexId id : db->BuiltIndexIds()) {
      EXPECT_TRUE(db->index(id).CheckInvariants().ok());
    }
  };
  run.result = ServeWorkload(db, run.optimizer.get(), run.tuner.get(), trace,
                             options);
  ASSERT_EQ(static_cast<int>(epochs_seen.size()), run.result.epochs);
  for (size_t i = 0; i < epochs_seen.size(); ++i) {
    EXPECT_EQ(epochs_seen[i], static_cast<int>(i));
  }
}

}  // namespace
}  // namespace colt
