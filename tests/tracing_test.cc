#include "common/tracing.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace colt {
namespace {

// All tests use a local Tracer so they stay independent of whatever the
// process-wide Default() tracer has accumulated.

TEST(TracerTest, DisabledTracerEmitsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  {
    Tracer::Scope scope = tracer.StartSpan("work", "tests");
    scope.AddAttr("k", "v");  // no-op on an inert scope
  }
  EXPECT_TRUE(tracer.Spans().empty());
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(TracerTest, FinishedSpanHasNameSiteAndSaneTimes) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope scope = tracer.StartSpan("profile_query", "core");
  }
  const std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "profile_query");
  EXPECT_EQ(spans[0].site, "core");
  EXPECT_EQ(spans[0].parent, 0);  // root
  EXPECT_GT(spans[0].id, 0);
  EXPECT_GE(spans[0].start_seconds, 0.0);
  EXPECT_GE(spans[0].duration_seconds, 0.0);
}

TEST(TracerTest, NestedScopesRecordParentLinks) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope outer = tracer.StartSpan("on_query", "core");
    {
      Tracer::Scope inner = tracer.StartSpan("whatif", "optimizer");
    }
  }
  // Spans finish innermost-first.
  const std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  const Span& inner = spans[0];
  const Span& outer = spans[1];
  EXPECT_EQ(inner.name, "whatif");
  EXPECT_EQ(outer.name, "on_query");
  EXPECT_EQ(outer.parent, 0);
  EXPECT_EQ(inner.parent, outer.id);
  // The child's time range nests inside the parent's.
  EXPECT_GE(inner.start_seconds, outer.start_seconds);
  EXPECT_LE(inner.start_seconds + inner.duration_seconds,
            outer.start_seconds + outer.duration_seconds + 1e-9);
}

TEST(TracerTest, AttrsAttachWithFormattedValues) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope scope = tracer.StartSpan("work", "tests");
    scope.AddAttr("label", "hot");
    scope.AddAttr("probes", static_cast<int64_t>(7));
    scope.AddAttr("ratio", 0.5);
  }
  const std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 3u);
  EXPECT_EQ(spans[0].attrs[0].key, "label");
  EXPECT_EQ(spans[0].attrs[0].value, "hot");
  EXPECT_EQ(spans[0].attrs[1].key, "probes");
  EXPECT_EQ(spans[0].attrs[1].value, "7");
  EXPECT_EQ(spans[0].attrs[2].key, "ratio");
  EXPECT_EQ(spans[0].attrs[2].value.substr(0, 3), "0.5");
}

TEST(TracerTest, ExplicitEndIsIdempotent) {
  Tracer tracer;
  tracer.set_enabled(true);
  Tracer::Scope scope = tracer.StartSpan("work", "tests");
  scope.End();
  scope.End();  // no-op
  EXPECT_EQ(tracer.Spans().size(), 1u);
}

TEST(TracerTest, MovedFromScopeDoesNotDoubleFinish) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope outer = tracer.StartSpan("work", "tests");
    Tracer::Scope moved = std::move(outer);
  }
  EXPECT_EQ(tracer.Spans().size(), 1u);
}

TEST(TracerTest, RingKeepsNewestSpansAndCountsDrops) {
  Tracer tracer(/*capacity=*/4);
  tracer.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    Tracer::Scope scope =
        tracer.StartSpan("span" + std::to_string(i), "tests");
  }
  const std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 2);
  // Oldest retained first: span2..span5 survive.
  EXPECT_EQ(spans[0].name, "span2");
  EXPECT_EQ(spans[3].name, "span5");
}

TEST(TracerTest, ClearForgetsSpansAndRestartsEpoch) {
  Tracer tracer;
  tracer.set_enabled(true);
  { Tracer::Scope scope = tracer.StartSpan("before", "tests"); }
  tracer.Clear();
  EXPECT_TRUE(tracer.Spans().empty());
  { Tracer::Scope scope = tracer.StartSpan("after", "tests"); }
  const std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  // Fresh epoch: the first post-Clear span starts near zero.
  EXPECT_LT(spans[0].start_seconds, 1.0);
}

TEST(TracerTest, JsonlRoundTripPreservesEveryField) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope outer = tracer.StartSpan("on_query", "core");
    outer.AddAttr("epoch", static_cast<int64_t>(3));
    {
      Tracer::Scope inner = tracer.StartSpan("whatif", "optimizer");
      inner.AddAttr("quote\"and\\slash", "newline\nend");
    }
  }
  const Result<std::vector<Span>> reparsed =
      Tracer::FromJsonl(tracer.ToJsonl());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  const std::vector<Span> original = tracer.Spans();
  ASSERT_EQ(reparsed.value().size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const Span& a = original[i];
    const Span& b = reparsed.value()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.site, b.site);
    EXPECT_DOUBLE_EQ(a.start_seconds, b.start_seconds);
    EXPECT_DOUBLE_EQ(a.duration_seconds, b.duration_seconds);
    ASSERT_EQ(a.attrs.size(), b.attrs.size());
    for (size_t j = 0; j < a.attrs.size(); ++j) {
      EXPECT_EQ(a.attrs[j].key, b.attrs[j].key);
      EXPECT_EQ(a.attrs[j].value, b.attrs[j].value);
    }
  }
}

TEST(TracerTest, FromJsonlRejectsGarbage) {
  EXPECT_FALSE(Tracer::FromJsonl("not a span").ok());
  EXPECT_FALSE(Tracer::FromJsonl("{\"id\":}").ok());
}

TEST(TracerTest, ChromeTraceContainsCompleteEvents) {
  Tracer tracer;
  tracer.set_enabled(true);
  { Tracer::Scope scope = tracer.StartSpan("on_query", "core"); }
  const std::string chrome = tracer.ToChromeTrace();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"on_query\""), std::string::npos);
  EXPECT_EQ(chrome.front(), '{');
  EXPECT_EQ(chrome.substr(chrome.size() - 3), "]}\n");
}

}  // namespace
}  // namespace colt
