/// Randomized end-to-end robustness: random catalogs, random query streams
/// (including degenerate shapes), full COLT pipeline. Asserts the global
/// invariants that must survive any input: budgets respected, no empty-set
/// violations, determinism, and plan validity.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/colt.h"
#include "optimizer/whatif_cache.h"

namespace colt {
namespace {

Catalog RandomCatalog(Rng& rng) {
  Catalog catalog;
  const int tables = 1 + static_cast<int>(rng.NextBelow(4));
  for (int t = 0; t < tables; ++t) {
    std::vector<ColumnDef> columns;
    const int ncols = 2 + static_cast<int>(rng.NextBelow(5));
    const int64_t rows = 100 + static_cast<int64_t>(rng.NextBelow(200'000));
    for (int c = 0; c < ncols; ++c) {
      ColumnDef col;
      col.name = "t" + std::to_string(t) + "_c" + std::to_string(c);
      col.width_bytes = 4 + 4 * static_cast<int32_t>(rng.NextBelow(10));
      col.ndv = 1 + static_cast<int64_t>(rng.NextBelow(
                        static_cast<uint64_t>(rows)));
      col.indexable = rng.NextBool(0.9);
      columns.push_back(col);
    }
    catalog.AddTable(
        TableSchema("table" + std::to_string(t), columns, rows));
  }
  return catalog;
}

Query RandomQuery(const Catalog& catalog, Rng& rng) {
  const TableId t = static_cast<TableId>(rng.NextBelow(
      static_cast<uint64_t>(catalog.table_count())));
  const TableSchema& schema = catalog.table(t);
  std::vector<SelectionPredicate> selections;
  const int npreds =
      1 + static_cast<int>(rng.NextBelow(
              static_cast<uint64_t>(schema.column_count())));
  for (int i = 0; i < npreds; ++i) {
    const ColumnId c = static_cast<ColumnId>(
        rng.NextBelow(static_cast<uint64_t>(schema.column_count())));
    const int64_t ndv = schema.column(c).ndv;
    const int64_t lo = rng.NextInRange(0, ndv - 1);
    const int64_t hi = rng.NextBool(0.3)
                           ? lo  // equality
                           : std::min<int64_t>(ndv - 1,
                                               lo + rng.NextInRange(0, ndv));
    selections.push_back(SelectionPredicate{{t, c}, lo, hi});
  }
  // Possibly add a join with another table.
  std::vector<TableId> tables = {t};
  std::vector<JoinPredicate> joins;
  if (catalog.table_count() > 1 && rng.NextBool(0.3)) {
    TableId other = static_cast<TableId>(rng.NextBelow(
        static_cast<uint64_t>(catalog.table_count())));
    if (other != t) {
      tables.push_back(other);
      const ColumnId c1 = static_cast<ColumnId>(rng.NextBelow(
          static_cast<uint64_t>(catalog.table(t).column_count())));
      const ColumnId c2 = static_cast<ColumnId>(rng.NextBelow(
          static_cast<uint64_t>(catalog.table(other).column_count())));
      joins.push_back(JoinPredicate{{t, c1}, {other, c2}});
    }
  }
  return Query(std::move(tables), std::move(joins), std::move(selections));
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, InvariantsHoldOnRandomWorkloads) {
  Rng rng(GetParam() * 2654435761ULL + 17);
  Catalog catalog = RandomCatalog(rng);
  QueryOptimizer optimizer(&catalog);
  ColtConfig config;
  config.storage_budget_bytes =
      1 + static_cast<int64_t>(rng.NextBelow(256LL << 20));
  config.max_whatif_per_epoch =
      1 + static_cast<int>(rng.NextBelow(30));
  config.epoch_length = 1 + static_cast<int>(rng.NextBelow(20));
  config.mine_multicolumn_candidates = rng.NextBool(0.5);
  if (rng.NextBool(0.3)) {
    config.scheduling_strategy = SchedulingStrategy::kIdleTime;
  }
  ColtTuner tuner(&catalog, &optimizer, config);

  const int n = 100 + static_cast<int>(rng.NextBelow(200));
  for (int i = 0; i < n; ++i) {
    const Query q = RandomQuery(catalog, rng);
    ASSERT_TRUE(q.Validate(catalog).ok());
    const TuningStep step = tuner.OnQuery(q);
    ASSERT_NE(step.plan.plan, nullptr);
    ASSERT_GE(step.plan.cost, 0.0);
    ASSERT_GE(step.execution_seconds, 0.0);
    ASSERT_LE(step.whatif_calls, config.max_whatif_per_epoch);
  }
  // Storage budget invariant at every epoch.
  for (const auto& report : tuner.epoch_reports()) {
    ASSERT_LE(report.materialized_bytes, config.storage_budget_bytes);
    ASSERT_LE(report.whatif_used, config.max_whatif_per_epoch);
  }
  // Every materialized index descriptor is known to the catalog.
  for (IndexId id : tuner.materialized().ids()) {
    ASSERT_TRUE(catalog.HasIndex(id));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(0, 20));

TEST(FuzzParallelDeterminism, WorkerPoolNeverChangesResults) {
  // Like FuzzDeterminism, but tuner B fans what-if probes and index builds
  // across a 3-worker pool (DESIGN.md §10): every step must still be
  // bit-identical to the serial tuner A, on random catalogs and workloads.
  for (uint64_t seed : {5ull, 23ull, 41ull}) {
    Rng rng_a(seed), rng_b(seed);
    Catalog cat_a = RandomCatalog(rng_a);
    Catalog cat_b = RandomCatalog(rng_b);
    QueryOptimizer opt_a(&cat_a), opt_b(&cat_b);
    ColtConfig config_a;
    config_a.storage_budget_bytes = 64LL << 20;
    config_a.epoch_length = 5;
    ColtConfig config_b = config_a;
    config_b.num_workers = 3;
    ColtTuner tuner_a(&cat_a, &opt_a, config_a, nullptr, 5);
    ColtTuner tuner_b(&cat_b, &opt_b, config_b, nullptr, 5);
    for (int i = 0; i < 150; ++i) {
      const Query qa = RandomQuery(cat_a, rng_a);
      const Query qb = RandomQuery(cat_b, rng_b);
      const TuningStep sa = tuner_a.OnQuery(qa);
      const TuningStep sb = tuner_b.OnQuery(qb);
      ASSERT_EQ(sa.plan.cost, sb.plan.cost) << "query " << i;
      ASSERT_EQ(sa.execution_seconds, sb.execution_seconds) << "query " << i;
      ASSERT_EQ(sa.profiling_seconds, sb.profiling_seconds) << "query " << i;
      ASSERT_EQ(sa.whatif_calls, sb.whatif_calls) << "query " << i;
      ASSERT_EQ(sa.actions.size(), sb.actions.size()) << "query " << i;
    }
    ASSERT_EQ(tuner_a.materialized().ids(), tuner_b.materialized().ids());
    ASSERT_EQ(tuner_a.epoch_reports().size(), tuner_b.epoch_reports().size());
  }
}

TEST(FuzzWhatIfCacheDeterminism, CacheNeverChangesResults) {
  // Tuner A runs with the what-if plan cache disabled; tuner B runs with a
  // deliberately tiny cache (heavy eviction churn) plus spurious external
  // catalog version bumps injected at random points, and tuner C adds a
  // 2-worker pool on top. Every step of all three must stay bit-identical:
  // the cache and its invalidation machinery may only change hit rates,
  // never a single recorded double (DESIGN.md §11).
  for (uint64_t seed : {9ull, 27ull, 63ull}) {
    Rng rng_a(seed), rng_b(seed), rng_c(seed);
    Rng bumps(seed * 977ULL + 5);
    Catalog cat_a = RandomCatalog(rng_a);
    Catalog cat_b = RandomCatalog(rng_b);
    Catalog cat_c = RandomCatalog(rng_c);
    QueryOptimizer opt_a(&cat_a), opt_b(&cat_b), opt_c(&cat_c);
    ColtConfig config_a;
    config_a.storage_budget_bytes = 64LL << 20;
    config_a.epoch_length = 5;
    config_a.whatif_cache_bytes = 0;  // cache off
    ColtConfig config_b = config_a;
    config_b.whatif_cache_bytes = 6 * WhatIfPlanCache::kEntryBytes;
    ColtConfig config_c = config_b;
    config_c.num_workers = 2;
    ColtTuner tuner_a(&cat_a, &opt_a, config_a, nullptr, 5);
    ColtTuner tuner_b(&cat_b, &opt_b, config_b, nullptr, 5);
    ColtTuner tuner_c(&cat_c, &opt_c, config_c, nullptr, 5);
    for (int i = 0; i < 150; ++i) {
      if (bumps.NextBool(0.1)) {
        // An external stats refresh: invalidates cached plan costs on the
        // caching tuners without touching the cacheless baseline.
        cat_b.BumpVersion();
        cat_c.BumpVersion();
      }
      const Query qa = RandomQuery(cat_a, rng_a);
      const Query qb = RandomQuery(cat_b, rng_b);
      const Query qc = RandomQuery(cat_c, rng_c);
      const TuningStep sa = tuner_a.OnQuery(qa);
      const TuningStep sb = tuner_b.OnQuery(qb);
      const TuningStep sc = tuner_c.OnQuery(qc);
      ASSERT_EQ(sa.plan.cost, sb.plan.cost) << "query " << i;
      ASSERT_EQ(sa.plan.cost, sc.plan.cost) << "query " << i;
      ASSERT_EQ(sa.execution_seconds, sb.execution_seconds) << "query " << i;
      ASSERT_EQ(sa.execution_seconds, sc.execution_seconds) << "query " << i;
      ASSERT_EQ(sa.profiling_seconds, sb.profiling_seconds) << "query " << i;
      ASSERT_EQ(sa.profiling_seconds, sc.profiling_seconds) << "query " << i;
      ASSERT_EQ(sa.whatif_calls, sb.whatif_calls) << "query " << i;
      ASSERT_EQ(sa.whatif_calls, sc.whatif_calls) << "query " << i;
      ASSERT_EQ(sa.actions.size(), sb.actions.size()) << "query " << i;
      ASSERT_EQ(sa.actions.size(), sc.actions.size()) << "query " << i;
    }
    ASSERT_EQ(tuner_a.materialized().ids(), tuner_b.materialized().ids());
    ASSERT_EQ(tuner_a.materialized().ids(), tuner_c.materialized().ids());
    ASSERT_EQ(tuner_a.epoch_reports().size(), tuner_b.epoch_reports().size());
    ASSERT_EQ(tuner_a.epoch_reports().size(), tuner_c.epoch_reports().size());
  }
}

TEST(FuzzDeterminism, IdenticalRunsProduceIdenticalResults) {
  for (uint64_t seed : {3ull, 11ull}) {
    Rng rng_a(seed), rng_b(seed);
    Catalog cat_a = RandomCatalog(rng_a);
    Catalog cat_b = RandomCatalog(rng_b);
    QueryOptimizer opt_a(&cat_a), opt_b(&cat_b);
    ColtConfig config;
    config.storage_budget_bytes = 64LL << 20;
    ColtTuner tuner_a(&cat_a, &opt_a, config, nullptr, 5);
    ColtTuner tuner_b(&cat_b, &opt_b, config, nullptr, 5);
    for (int i = 0; i < 150; ++i) {
      const Query qa = RandomQuery(cat_a, rng_a);
      const Query qb = RandomQuery(cat_b, rng_b);
      const TuningStep sa = tuner_a.OnQuery(qa);
      const TuningStep sb = tuner_b.OnQuery(qb);
      ASSERT_DOUBLE_EQ(sa.execution_seconds, sb.execution_seconds);
      ASSERT_EQ(sa.whatif_calls, sb.whatif_calls);
      ASSERT_EQ(sa.actions.size(), sb.actions.size());
    }
    ASSERT_EQ(tuner_a.materialized().ids(), tuner_b.materialized().ids());
  }
}

TEST(FuzzTunerSnapshot, MutatedSnapshotBytesNeverCrashLoadState) {
  // Bit-flipped, truncated, and extended tuner snapshots must come back as
  // a Status from LoadState — never a crash, hang, or huge allocation.
  // (The checkpoint layer's checksum normally screens these out; this
  // attacks the deserializers directly.)
  Rng rng(0xD15C);
  Catalog catalog = RandomCatalog(rng);
  QueryOptimizer optimizer(&catalog);
  ColtConfig config;
  config.storage_budget_bytes = 64LL << 20;
  ColtTuner victim(&catalog, &optimizer, config, nullptr, 5);
  for (int i = 0; i < 60; ++i) victim.OnQuery(RandomQuery(catalog, rng));
  BinaryWriter writer;
  victim.SaveState(&writer);
  const std::string good(writer.buffer());

  // Recovery wants the catalog as it was at startup (index definitions are
  // replayed from the snapshot), so regenerate it from the same seed.
  auto fresh_catalog = [] {
    Rng catalog_rng(0xD15C);
    return RandomCatalog(catalog_rng);
  };

  {
    // Control: the unmutated snapshot loads into an identical tuner.
    Catalog cat = fresh_catalog();
    QueryOptimizer fresh_optimizer(&cat);
    ColtTuner fresh(&cat, &fresh_optimizer, config, nullptr, 5);
    BinaryReader reader(good);
    const Status status = fresh.LoadState(&reader);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(fresh.materialized().ids(), victim.materialized().ids());
    ASSERT_EQ(fresh.queries_observed(), victim.queries_observed());
  }

  for (int round = 0; round < 300; ++round) {
    std::string bytes = good;
    const int mutations = 1 + static_cast<int>(rng.NextBelow(8));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.NextBelow(3)) {
        case 0:
          bytes[rng.NextBelow(bytes.size())] ^=
              static_cast<char>(1 + rng.NextBelow(255));
          break;
        case 1:
          bytes.resize(rng.NextBelow(bytes.size()));
          if (bytes.empty()) bytes = std::string(1, '\0');
          break;
        default:
          bytes.push_back(static_cast<char>(rng.NextBelow(256)));
          break;
      }
      if (bytes.empty()) break;
    }
    Catalog cat = fresh_catalog();
    QueryOptimizer fresh_optimizer(&cat);
    ColtTuner fresh(&cat, &fresh_optimizer, config, nullptr, 5);
    BinaryReader reader(bytes);
    const Status status = fresh.LoadState(&reader);
    if (status.ok()) {
      // A mutation the format cannot detect (e.g. flipping one statistics
      // double) may load; the tuner must still be usable.
      fresh.OnQuery(RandomQuery(cat, rng));
    }
  }
}

}  // namespace
}  // namespace colt
