/// Randomized end-to-end robustness: random catalogs, random query streams
/// (including degenerate shapes), full COLT pipeline. Asserts the global
/// invariants that must survive any input: budgets respected, no empty-set
/// violations, determinism, and plan validity.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/colt.h"
#include "core/serve.h"
#include "optimizer/whatif_cache.h"
#include "storage/database.h"
#include "test_util.h"

namespace colt {
namespace {

Catalog RandomCatalog(Rng& rng) {
  Catalog catalog;
  const int tables = 1 + static_cast<int>(rng.NextBelow(4));
  for (int t = 0; t < tables; ++t) {
    std::vector<ColumnDef> columns;
    const int ncols = 2 + static_cast<int>(rng.NextBelow(5));
    const int64_t rows = 100 + static_cast<int64_t>(rng.NextBelow(200'000));
    for (int c = 0; c < ncols; ++c) {
      ColumnDef col;
      col.name = "t" + std::to_string(t) + "_c" + std::to_string(c);
      col.width_bytes = 4 + 4 * static_cast<int32_t>(rng.NextBelow(10));
      col.ndv = 1 + static_cast<int64_t>(rng.NextBelow(
                        static_cast<uint64_t>(rows)));
      col.indexable = rng.NextBool(0.9);
      columns.push_back(col);
    }
    catalog.AddTable(
        TableSchema("table" + std::to_string(t), columns, rows));
  }
  return catalog;
}

Query RandomQuery(const Catalog& catalog, Rng& rng) {
  const TableId t = static_cast<TableId>(rng.NextBelow(
      static_cast<uint64_t>(catalog.table_count())));
  const TableSchema& schema = catalog.table(t);
  std::vector<SelectionPredicate> selections;
  const int npreds =
      1 + static_cast<int>(rng.NextBelow(
              static_cast<uint64_t>(schema.column_count())));
  for (int i = 0; i < npreds; ++i) {
    const ColumnId c = static_cast<ColumnId>(
        rng.NextBelow(static_cast<uint64_t>(schema.column_count())));
    const int64_t ndv = schema.column(c).ndv;
    const int64_t lo = rng.NextInRange(0, ndv - 1);
    const int64_t hi = rng.NextBool(0.3)
                           ? lo  // equality
                           : std::min<int64_t>(ndv - 1,
                                               lo + rng.NextInRange(0, ndv));
    selections.push_back(SelectionPredicate{{t, c}, lo, hi});
  }
  // Possibly add a join with another table.
  std::vector<TableId> tables = {t};
  std::vector<JoinPredicate> joins;
  if (catalog.table_count() > 1 && rng.NextBool(0.3)) {
    TableId other = static_cast<TableId>(rng.NextBelow(
        static_cast<uint64_t>(catalog.table_count())));
    if (other != t) {
      tables.push_back(other);
      const ColumnId c1 = static_cast<ColumnId>(rng.NextBelow(
          static_cast<uint64_t>(catalog.table(t).column_count())));
      const ColumnId c2 = static_cast<ColumnId>(rng.NextBelow(
          static_cast<uint64_t>(catalog.table(other).column_count())));
      joins.push_back(JoinPredicate{{t, c1}, {other, c2}});
    }
  }
  return Query(std::move(tables), std::move(joins), std::move(selections));
}

/// Random write statement against `catalog`: INSERT a batch, UPDATE a
/// random column (with a usually-present narrow WHERE), or DELETE a narrow
/// range. DELETEs always carry a WHERE so random streams do not simply
/// drain their tables.
Query RandomWrite(const Catalog& catalog, Rng& rng) {
  const TableId t = static_cast<TableId>(
      rng.NextBelow(static_cast<uint64_t>(catalog.table_count())));
  const TableSchema& schema = catalog.table(t);
  auto random_column = [&] {
    return static_cast<ColumnId>(
        rng.NextBelow(static_cast<uint64_t>(schema.column_count())));
  };
  auto narrow_where = [&] {
    const ColumnId c = random_column();
    const int64_t ndv = schema.column(c).ndv;
    const int64_t lo = rng.NextInRange(0, ndv - 1);
    const int64_t hi = std::min<int64_t>(ndv - 1, lo + rng.NextInRange(0, 16));
    return std::vector<SelectionPredicate>{SelectionPredicate{{t, c}, lo, hi}};
  };
  switch (rng.NextBelow(3)) {
    case 0:
      return Query::MakeInsert(t, 1 + rng.NextInRange(0, 400));
    case 1: {
      const ColumnId c = random_column();
      std::vector<SetClause> sets = {
          {c, rng.NextInRange(0, schema.column(c).ndv - 1)}};
      return Query::MakeUpdate(
          t, std::move(sets),
          rng.NextBool(0.8) ? narrow_where()
                            : std::vector<SelectionPredicate>{});
    }
    default:
      return Query::MakeDelete(t, narrow_where());
  }
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, InvariantsHoldOnRandomWorkloads) {
  Rng rng(GetParam() * 2654435761ULL + 17);
  Catalog catalog = RandomCatalog(rng);
  QueryOptimizer optimizer(&catalog);
  ColtConfig config;
  config.storage_budget_bytes =
      1 + static_cast<int64_t>(rng.NextBelow(256LL << 20));
  config.max_whatif_per_epoch =
      1 + static_cast<int>(rng.NextBelow(30));
  config.epoch_length = 1 + static_cast<int>(rng.NextBelow(20));
  config.mine_multicolumn_candidates = rng.NextBool(0.5);
  if (rng.NextBool(0.3)) {
    config.scheduling_strategy = SchedulingStrategy::kIdleTime;
  }
  ColtTuner tuner(&catalog, &optimizer, config);

  const int n = 100 + static_cast<int>(rng.NextBelow(200));
  for (int i = 0; i < n; ++i) {
    const Query q = RandomQuery(catalog, rng);
    ASSERT_TRUE(q.Validate(catalog).ok());
    const TuningStep step = tuner.OnQuery(q);
    ASSERT_NE(step.plan.plan, nullptr);
    ASSERT_GE(step.plan.cost, 0.0);
    ASSERT_GE(step.execution_seconds, 0.0);
    ASSERT_LE(step.whatif_calls, config.max_whatif_per_epoch);
  }
  // Storage budget invariant at every epoch.
  for (const auto& report : tuner.epoch_reports()) {
    ASSERT_LE(report.materialized_bytes, config.storage_budget_bytes);
    ASSERT_LE(report.whatif_used, config.max_whatif_per_epoch);
  }
  // Every materialized index descriptor is known to the catalog.
  for (IndexId id : tuner.materialized().ids()) {
    ASSERT_TRUE(catalog.HasIndex(id));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(0, 20));

TEST(FuzzParallelDeterminism, WorkerPoolNeverChangesResults) {
  // Like FuzzDeterminism, but tuner B fans what-if probes and index builds
  // across a 3-worker pool (DESIGN.md §10): every step must still be
  // bit-identical to the serial tuner A, on random catalogs and workloads.
  for (uint64_t seed : {5ull, 23ull, 41ull}) {
    Rng rng_a(seed), rng_b(seed);
    Catalog cat_a = RandomCatalog(rng_a);
    Catalog cat_b = RandomCatalog(rng_b);
    QueryOptimizer opt_a(&cat_a), opt_b(&cat_b);
    ColtConfig config_a;
    config_a.storage_budget_bytes = 64LL << 20;
    config_a.epoch_length = 5;
    ColtConfig config_b = config_a;
    config_b.num_workers = 3;
    ColtTuner tuner_a(&cat_a, &opt_a, config_a, nullptr, 5);
    ColtTuner tuner_b(&cat_b, &opt_b, config_b, nullptr, 5);
    for (int i = 0; i < 150; ++i) {
      const Query qa = RandomQuery(cat_a, rng_a);
      const Query qb = RandomQuery(cat_b, rng_b);
      const TuningStep sa = tuner_a.OnQuery(qa);
      const TuningStep sb = tuner_b.OnQuery(qb);
      ASSERT_EQ(sa.plan.cost, sb.plan.cost) << "query " << i;
      ASSERT_EQ(sa.execution_seconds, sb.execution_seconds) << "query " << i;
      ASSERT_EQ(sa.profiling_seconds, sb.profiling_seconds) << "query " << i;
      ASSERT_EQ(sa.whatif_calls, sb.whatif_calls) << "query " << i;
      ASSERT_EQ(sa.actions.size(), sb.actions.size()) << "query " << i;
    }
    ASSERT_EQ(tuner_a.materialized().ids(), tuner_b.materialized().ids());
    ASSERT_EQ(tuner_a.epoch_reports().size(), tuner_b.epoch_reports().size());
  }
}

TEST(FuzzWhatIfCacheDeterminism, CacheNeverChangesResults) {
  // Tuner A runs with the what-if plan cache disabled; tuner B runs with a
  // deliberately tiny cache (heavy eviction churn) plus spurious external
  // catalog version bumps injected at random points, and tuner C adds a
  // 2-worker pool on top. Every step of all three must stay bit-identical:
  // the cache and its invalidation machinery may only change hit rates,
  // never a single recorded double (DESIGN.md §11).
  for (uint64_t seed : {9ull, 27ull, 63ull}) {
    Rng rng_a(seed), rng_b(seed), rng_c(seed);
    Rng bumps(seed * 977ULL + 5);
    Catalog cat_a = RandomCatalog(rng_a);
    Catalog cat_b = RandomCatalog(rng_b);
    Catalog cat_c = RandomCatalog(rng_c);
    QueryOptimizer opt_a(&cat_a), opt_b(&cat_b), opt_c(&cat_c);
    ColtConfig config_a;
    config_a.storage_budget_bytes = 64LL << 20;
    config_a.epoch_length = 5;
    config_a.whatif_cache_bytes = 0;  // cache off
    ColtConfig config_b = config_a;
    config_b.whatif_cache_bytes = 6 * WhatIfPlanCache::kEntryBytes;
    ColtConfig config_c = config_b;
    config_c.num_workers = 2;
    ColtTuner tuner_a(&cat_a, &opt_a, config_a, nullptr, 5);
    ColtTuner tuner_b(&cat_b, &opt_b, config_b, nullptr, 5);
    ColtTuner tuner_c(&cat_c, &opt_c, config_c, nullptr, 5);
    for (int i = 0; i < 150; ++i) {
      if (bumps.NextBool(0.1)) {
        // An external stats refresh: invalidates cached plan costs on the
        // caching tuners without touching the cacheless baseline.
        cat_b.BumpVersion();
        cat_c.BumpVersion();
      }
      const Query qa = RandomQuery(cat_a, rng_a);
      const Query qb = RandomQuery(cat_b, rng_b);
      const Query qc = RandomQuery(cat_c, rng_c);
      const TuningStep sa = tuner_a.OnQuery(qa);
      const TuningStep sb = tuner_b.OnQuery(qb);
      const TuningStep sc = tuner_c.OnQuery(qc);
      ASSERT_EQ(sa.plan.cost, sb.plan.cost) << "query " << i;
      ASSERT_EQ(sa.plan.cost, sc.plan.cost) << "query " << i;
      ASSERT_EQ(sa.execution_seconds, sb.execution_seconds) << "query " << i;
      ASSERT_EQ(sa.execution_seconds, sc.execution_seconds) << "query " << i;
      ASSERT_EQ(sa.profiling_seconds, sb.profiling_seconds) << "query " << i;
      ASSERT_EQ(sa.profiling_seconds, sc.profiling_seconds) << "query " << i;
      ASSERT_EQ(sa.whatif_calls, sb.whatif_calls) << "query " << i;
      ASSERT_EQ(sa.whatif_calls, sc.whatif_calls) << "query " << i;
      ASSERT_EQ(sa.actions.size(), sb.actions.size()) << "query " << i;
      ASSERT_EQ(sa.actions.size(), sc.actions.size()) << "query " << i;
    }
    ASSERT_EQ(tuner_a.materialized().ids(), tuner_b.materialized().ids());
    ASSERT_EQ(tuner_a.materialized().ids(), tuner_c.materialized().ids());
    ASSERT_EQ(tuner_a.epoch_reports().size(), tuner_b.epoch_reports().size());
    ASSERT_EQ(tuner_a.epoch_reports().size(), tuner_c.epoch_reports().size());
  }
}

TEST(FuzzWrites, StatsOnlyVsPhysicalParallelBitIdenticalUnderWrites) {
  // Random mixed read/write streams (~30% writes) on random catalogs,
  // tuner A statistics-only and serial, tuner B applying every write to a
  // real Database with a 2-worker pool — the strongest composition of the
  // write-path invariants: maintenance charges live in model currency
  // (DESIGN.md §16), so physical application and parallelism together must
  // not move a single recorded double, across live index installs and
  // drops triggered by the shifting random stream.
  bool any_installs = false;
  bool any_charge = false;
  for (uint64_t seed : {2ull, 13ull, 29ull, 47ull, 61ull, 83ull}) {
    Rng rng_a(seed * 1099511628211ULL + 3);
    Rng rng_b(seed * 1099511628211ULL + 3);
    Catalog cat_a = RandomCatalog(rng_a);
    Database db(RandomCatalog(rng_b), /*seed=*/seed);
    ASSERT_TRUE(db.MaterializeAll().ok());
    QueryOptimizer opt_a(&cat_a), opt_b(&db.mutable_catalog());
    ColtConfig config_a;
    config_a.storage_budget_bytes = 32LL << 20;
    config_a.epoch_length = 5;
    ColtConfig config_b = config_a;
    config_b.num_workers = 2;
    ColtTuner tuner_a(&cat_a, &opt_a, config_a, nullptr, seed);
    ColtTuner tuner_b(&db.mutable_catalog(), &opt_b, config_b, &db, seed);

    const int n = 120 + static_cast<int>(rng_a.NextBelow(120));
    rng_b.NextBelow(120);  // keep the two streams in lockstep
    for (int i = 0; i < n; ++i) {
      const Query qa = rng_a.NextBool(0.3) ? RandomWrite(cat_a, rng_a)
                                           : RandomQuery(cat_a, rng_a);
      const Query qb = rng_b.NextBool(0.3)
                           ? RandomWrite(db.catalog(), rng_b)
                           : RandomQuery(db.catalog(), rng_b);
      ASSERT_TRUE(qa.Validate(cat_a).ok());
      const TuningStep sa = tuner_a.OnQuery(qa);
      const TuningStep sb = tuner_b.OnQuery(qb);
      ASSERT_EQ(sa.plan.cost, sb.plan.cost) << "seed " << seed << " q " << i;
      ASSERT_EQ(sa.execution_seconds, sb.execution_seconds)
          << "seed " << seed << " q " << i;
      ASSERT_EQ(sa.maintenance_seconds, sb.maintenance_seconds)
          << "seed " << seed << " q " << i;
      ASSERT_EQ(sa.profiling_seconds, sb.profiling_seconds)
          << "seed " << seed << " q " << i;
      ASSERT_EQ(sa.actions.size(), sb.actions.size())
          << "seed " << seed << " q " << i;
      any_installs = any_installs || !sa.actions.empty();
    }
    ASSERT_EQ(tuner_a.materialized().ids(), tuner_b.materialized().ids());
    const auto& reports_a = tuner_a.epoch_reports();
    const auto& reports_b = tuner_b.epoch_reports();
    ASSERT_EQ(reports_a.size(), reports_b.size());
    for (size_t e = 0; e < reports_a.size(); ++e) {
      ASSERT_EQ(reports_a[e].materialized_ids, reports_b[e].materialized_ids)
          << "seed " << seed << " epoch " << e;
      ASSERT_EQ(reports_a[e].maintenance_charged,
                reports_b[e].maintenance_charged)
          << "seed " << seed << " epoch " << e;
      any_charge = any_charge || reports_a[e].maintenance_charged > 0.0;
    }
    // Physical side: the applied writes left every surviving tree
    // structurally valid and exactly tracking its table's live rows.
    EXPECT_EQ(db.BuiltIndexIds(), tuner_b.materialized().ids());
    for (IndexId id : db.BuiltIndexIds()) {
      ASSERT_TRUE(db.index(id).CheckInvariants().ok());
      const TableId table = db.catalog().index(id).column.table;
      ASSERT_EQ(db.index(id).entry_count(),
                db.data(table).live_row_count());
    }
  }
  // Across the seed pool the streams must have exercised the interesting
  // paths: real installs/drops interleaved with charged write epochs.
  EXPECT_TRUE(any_installs);
  EXPECT_TRUE(any_charge);
}

TEST(FuzzDeterminism, IdenticalRunsProduceIdenticalResults) {
  for (uint64_t seed : {3ull, 11ull}) {
    Rng rng_a(seed), rng_b(seed);
    Catalog cat_a = RandomCatalog(rng_a);
    Catalog cat_b = RandomCatalog(rng_b);
    QueryOptimizer opt_a(&cat_a), opt_b(&cat_b);
    ColtConfig config;
    config.storage_budget_bytes = 64LL << 20;
    ColtTuner tuner_a(&cat_a, &opt_a, config, nullptr, 5);
    ColtTuner tuner_b(&cat_b, &opt_b, config, nullptr, 5);
    for (int i = 0; i < 150; ++i) {
      const Query qa = RandomQuery(cat_a, rng_a);
      const Query qb = RandomQuery(cat_b, rng_b);
      const TuningStep sa = tuner_a.OnQuery(qa);
      const TuningStep sb = tuner_b.OnQuery(qb);
      ASSERT_DOUBLE_EQ(sa.execution_seconds, sb.execution_seconds);
      ASSERT_EQ(sa.whatif_calls, sb.whatif_calls);
      ASSERT_EQ(sa.actions.size(), sb.actions.size());
    }
    ASSERT_EQ(tuner_a.materialized().ids(), tuner_b.materialized().ids());
  }
}

TEST(FuzzTunerSnapshot, MutatedSnapshotBytesNeverCrashLoadState) {
  // Bit-flipped, truncated, and extended tuner snapshots must come back as
  // a Status from LoadState — never a crash, hang, or huge allocation.
  // (The checkpoint layer's checksum normally screens these out; this
  // attacks the deserializers directly.)
  Rng rng(0xD15C);
  Catalog catalog = RandomCatalog(rng);
  QueryOptimizer optimizer(&catalog);
  ColtConfig config;
  config.storage_budget_bytes = 64LL << 20;
  ColtTuner victim(&catalog, &optimizer, config, nullptr, 5);
  for (int i = 0; i < 60; ++i) victim.OnQuery(RandomQuery(catalog, rng));
  BinaryWriter writer;
  victim.SaveState(&writer);
  const std::string good(writer.buffer());

  // Recovery wants the catalog as it was at startup (index definitions are
  // replayed from the snapshot), so regenerate it from the same seed.
  auto fresh_catalog = [] {
    Rng catalog_rng(0xD15C);
    return RandomCatalog(catalog_rng);
  };

  {
    // Control: the unmutated snapshot loads into an identical tuner.
    Catalog cat = fresh_catalog();
    QueryOptimizer fresh_optimizer(&cat);
    ColtTuner fresh(&cat, &fresh_optimizer, config, nullptr, 5);
    BinaryReader reader(good);
    const Status status = fresh.LoadState(&reader);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(fresh.materialized().ids(), victim.materialized().ids());
    ASSERT_EQ(fresh.queries_observed(), victim.queries_observed());
  }

  for (int round = 0; round < 300; ++round) {
    std::string bytes = good;
    const int mutations = 1 + static_cast<int>(rng.NextBelow(8));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.NextBelow(3)) {
        case 0:
          bytes[rng.NextBelow(bytes.size())] ^=
              static_cast<char>(1 + rng.NextBelow(255));
          break;
        case 1:
          bytes.resize(rng.NextBelow(bytes.size()));
          if (bytes.empty()) bytes = std::string(1, '\0');
          break;
        default:
          bytes.push_back(static_cast<char>(rng.NextBelow(256)));
          break;
      }
      if (bytes.empty()) break;
    }
    Catalog cat = fresh_catalog();
    QueryOptimizer fresh_optimizer(&cat);
    ColtTuner fresh(&cat, &fresh_optimizer, config, nullptr, 5);
    BinaryReader reader(bytes);
    const Status status = fresh.LoadState(&reader);
    if (status.ok()) {
      // A mutation the format cannot detect (e.g. flipping one statistics
      // double) may load; the tuner must still be usable.
      fresh.OnQuery(RandomQuery(cat, rng));
    }
  }
}

TEST(FuzzServe, ConcurrentServingMatchesSerialUnderRandomTunerActions) {
  // Randomized serving round (DESIGN.md §15): random physical traces are
  // drained by a random number of client threads while the tuner tunes
  // AND a seeded adversary injects extra index builds/drops at epoch
  // boundaries. The oracle is the serial run of the same seed: the served
  // stream (results, page accounting, errors) must match bit-for-bit, and
  // every surviving tree must stay structurally valid. Random manual
  // drops may orphan a plan's index and fail that query — that is fine,
  // as long as both runs fail identically.
  for (uint64_t seed : {1ull, 8ull, 19ull}) {
    auto run_once = [seed](int clients) {
      Rng rng(seed * 40503ULL + 11);
      Database db(colt::testing::MakeTestCatalog(), /*seed=*/7);
      EXPECT_TRUE(db.MaterializeAll(/*refresh_stats=*/true).ok());
      QueryOptimizer optimizer(&db.catalog());
      ColtConfig config;
      config.epoch_length = 3 + static_cast<int>(rng.NextBelow(10));
      config.storage_budget_bytes =
          (1 + static_cast<int64_t>(rng.NextBelow(8))) << 20;
      ColtTuner tuner(&db.mutable_catalog(), &optimizer, config, &db, seed);

      // Physical execution needs single-table, join-free traffic (the
      // test catalog materializes both tables, but RandomQuery joins can
      // explode row counts); build range queries directly.
      std::vector<Query> trace;
      const int queries = 60 + static_cast<int>(rng.NextBelow(60));
      for (int i = 0; i < queries; ++i) {
        const TableId t = rng.NextBool(0.8) ? db.catalog().FindTable("big")
                                            : db.catalog().FindTable("small");
        const TableSchema& schema = db.catalog().table(t);
        const ColumnId c = static_cast<ColumnId>(
            rng.NextBelow(static_cast<uint64_t>(schema.column_count())));
        const int64_t ndv = schema.column(c).ndv;
        const int64_t lo = rng.NextInRange(0, ndv - 1);
        const int64_t hi =
            std::min<int64_t>(ndv - 1, lo + rng.NextInRange(0, ndv / 10 + 1));
        trace.push_back(Query({t}, {}, {SelectionPredicate{{t, c}, lo, hi}}));
      }

      ServeOptions options;
      options.client_threads = clients;
      options.pin_threads = false;
      // Epoch-boundary adversary, deterministic in (seed, epoch): builds
      // or drops random indexes behind the tuner's back while clients are
      // quiescent. Identical in both runs by construction.
      Database* db_ptr = &db;
      options.on_epoch_end = [db_ptr, seed](int epoch) {
        Rng chaos(seed * 7919ULL + static_cast<uint64_t>(epoch));
        if (chaos.NextBool(0.3)) {
          const std::vector<IndexId> built = db_ptr->BuiltIndexIds();
          if (!built.empty()) {
            db_ptr->DropIndex(built[chaos.NextBelow(built.size())]);
          }
        }
        if (chaos.NextBool(0.3)) {
          const TableId t = db_ptr->catalog().FindTable("big");
          const ColumnId c = static_cast<ColumnId>(chaos.NextBelow(
              static_cast<uint64_t>(db_ptr->catalog().table(t).column_count())));
          Result<IndexDescriptor> desc =
              db_ptr->mutable_catalog().IndexOn(ColumnRef{t, c});
          if (desc.ok()) {
            ColtIgnoreStatus(db_ptr->BuildIndex(desc.value().id));
          }
        }
        for (IndexId id : db_ptr->BuiltIndexIds()) {
          EXPECT_TRUE(db_ptr->index(id).CheckInvariants().ok());
        }
      };
      return ServeWorkload(&db, &optimizer, &tuner, trace, options);
    };

    const ServeResult serial = run_once(/*clients=*/1);
    const ServeResult parallel =
        run_once(/*clients=*/2 + static_cast<int>(seed % 3));
    ASSERT_EQ(serial.queries.size(), parallel.queries.size());
    for (size_t i = 0; i < serial.queries.size(); ++i) {
      const ServedQuery& a = serial.queries[i];
      const ServedQuery& b = parallel.queries[i];
      ASSERT_EQ(a.trace_index, b.trace_index);
      ASSERT_EQ(a.ok, b.ok) << "seed " << seed << " query " << i << ": "
                            << a.error << " vs " << b.error;
      ASSERT_EQ(a.error, b.error) << "seed " << seed << " query " << i;
      ASSERT_EQ(a.result.output_rows, b.result.output_rows)
          << "seed " << seed << " query " << i;
      ASSERT_EQ(a.result.pages_seq, b.result.pages_seq);
      ASSERT_EQ(a.result.pages_random, b.result.pages_random);
      ASSERT_EQ(a.result.pages_bitmap, b.result.pages_bitmap);
      ASSERT_EQ(a.result.pages_index, b.result.pages_index);
      ASSERT_EQ(a.result.tuples_processed, b.result.tuples_processed);
    }
    EXPECT_EQ(serial.tuner_actions, parallel.tuner_actions) << "seed " << seed;
    EXPECT_EQ(serial.epochs, parallel.epochs) << "seed " << seed;
  }
}

}  // namespace
}  // namespace colt
