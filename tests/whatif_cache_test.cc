/// Unit and differential tests for the cross-epoch what-if plan cache
/// (DESIGN.md §11): signature canonicalization, catalog-version
/// invalidation, LRU byte budgets, deterministic epoch-boundary merges,
/// and the headline contract — cache-on runs are bit-identical to
/// cache-off runs at every worker count.
#include "optimizer/whatif_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/colt.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

// ---------------------------------------------------------------------------
// QueryPlanSignature canonicalization.
// ---------------------------------------------------------------------------

TEST(QueryPlanSignatureTest, SelectionOrderDoesNotMatter) {
  Catalog catalog = MakeTestCatalog();
  const SelectionPredicate a{Ref(catalog, "big", "b_key"), 10, 20};
  const SelectionPredicate b{Ref(catalog, "big", "b_val"), 5, 7};
  const Query q1({catalog.FindTable("big")}, {}, {a, b});
  const Query q2({catalog.FindTable("big")}, {}, {b, a});
  EXPECT_EQ(QueryPlanSignature(q1), QueryPlanSignature(q2));
}

TEST(QueryPlanSignatureTest, JoinCommutativityDoesNotMatter) {
  Catalog catalog = MakeTestCatalog();
  const ColumnRef big_key = Ref(catalog, "big", "b_key");
  const ColumnRef small_ref = Ref(catalog, "small", "s_ref");
  const TableId big = catalog.FindTable("big");
  const TableId small = catalog.FindTable("small");
  const Query q1({big, small}, {JoinPredicate{big_key, small_ref}}, {});
  const Query q2({small, big}, {JoinPredicate{small_ref, big_key}}, {});
  EXPECT_EQ(QueryPlanSignature(q1), QueryPlanSignature(q2));
}

TEST(QueryPlanSignatureTest, DistinguishesPredicateBounds) {
  Catalog catalog = MakeTestCatalog();
  const Query narrow = MakeRangeQuery(catalog, "big", "b_key", 10, 20);
  const Query wide = MakeRangeQuery(catalog, "big", "b_key", 10, 21);
  EXPECT_NE(QueryPlanSignature(narrow), QueryPlanSignature(wide));
}

TEST(QueryPlanSignatureTest, DistinguishesColumnsAndTables) {
  Catalog catalog = MakeTestCatalog();
  const Query on_key = MakeRangeQuery(catalog, "big", "b_key", 0, 10);
  const Query on_val = MakeRangeQuery(catalog, "big", "b_val", 0, 10);
  const Query on_small = MakeRangeQuery(catalog, "small", "s_ref", 0, 10);
  EXPECT_NE(QueryPlanSignature(on_key), QueryPlanSignature(on_val));
  EXPECT_NE(QueryPlanSignature(on_key), QueryPlanSignature(on_small));
}

TEST(QueryPlanSignatureTest, IgnoresQueryId) {
  Catalog catalog = MakeTestCatalog();
  Query q1 = MakeRangeQuery(catalog, "big", "b_key", 0, 10);
  Query q2 = MakeRangeQuery(catalog, "big", "b_key", 0, 10);
  q1.set_id(7);
  q2.set_id(4242);
  EXPECT_EQ(QueryPlanSignature(q1), QueryPlanSignature(q2));
}

// ---------------------------------------------------------------------------
// Lookup / Peek / version invalidation.
// ---------------------------------------------------------------------------

WhatIfCacheKey Key(uint64_t q, uint64_t c) { return WhatIfCacheKey{q, c}; }

CachedPlanCost Value(double cost, uint64_t version) {
  CachedPlanCost v;
  v.cost = cost;
  v.rows = 10.0;
  v.catalog_version = version;
  return v;
}

TEST(WhatIfPlanCacheTest, MissThenHit) {
  WhatIfPlanCache cache(/*max_bytes=*/0);
  EXPECT_EQ(cache.Lookup(Key(1, 2), /*catalog_version=*/1), nullptr);
  EXPECT_EQ(cache.stats().misses, 1);
  cache.Insert(Key(1, 2), Value(42.0, 1));
  const CachedPlanCost* hit = cache.Lookup(Key(1, 2), 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cost, 42.0);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().inserts, 1);
}

TEST(WhatIfPlanCacheTest, VersionBumpInvalidates) {
  WhatIfPlanCache cache(0);
  cache.Insert(Key(1, 2), Value(42.0, /*version=*/1));
  // Same key, newer catalog: stale — a miss plus one invalidation, and the
  // entry stays resident until a merge prunes it.
  EXPECT_EQ(cache.Lookup(Key(1, 2), /*catalog_version=*/2), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.size(), 1u);
  bool stale = false;
  EXPECT_EQ(cache.Peek(Key(1, 2), 2, &stale), nullptr);
  EXPECT_TRUE(stale);
  // At the original version the entry still answers.
  EXPECT_NE(cache.Lookup(Key(1, 2), 1), nullptr);
}

TEST(WhatIfPlanCacheTest, PeekDoesNotTouchLruOrStats) {
  WhatIfPlanCache cache(2 * WhatIfPlanCache::kEntryBytes);
  cache.Insert(Key(1, 0), Value(1.0, 1));
  cache.Insert(Key(2, 0), Value(2.0, 1));
  // Peek the LRU-tail entry; a Lookup would move it to the front.
  EXPECT_NE(cache.Peek(Key(1, 0), 1), nullptr);
  EXPECT_EQ(cache.stats().hits, 0);
  // A third insert must still evict key 1 (the peek left it at the tail).
  cache.Insert(Key(3, 0), Value(3.0, 1));
  EXPECT_EQ(cache.Peek(Key(1, 0), 1), nullptr);
  EXPECT_NE(cache.Peek(Key(2, 0), 1), nullptr);
}

TEST(WhatIfPlanCacheTest, LruEvictionRespectsByteBudget) {
  WhatIfPlanCache cache(3 * WhatIfPlanCache::kEntryBytes);
  for (uint64_t i = 1; i <= 4; ++i) cache.Insert(Key(i, 0), Value(1.0, 1));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_LE(cache.bytes(), cache.max_bytes());
  EXPECT_EQ(cache.stats().evictions, 1);
  // Key 1 was least recently used.
  EXPECT_EQ(cache.Peek(Key(1, 0), 1), nullptr);
  // A Lookup refreshes recency: touch key 2, insert key 5, key 3 dies.
  EXPECT_NE(cache.Lookup(Key(2, 0), 1), nullptr);
  cache.Insert(Key(5, 0), Value(1.0, 1));
  EXPECT_EQ(cache.Peek(Key(3, 0), 1), nullptr);
  EXPECT_NE(cache.Peek(Key(2, 0), 1), nullptr);
}

// ---------------------------------------------------------------------------
// Epoch-boundary merge determinism.
// ---------------------------------------------------------------------------

std::vector<std::pair<WhatIfCacheKey, CachedPlanCost>> Sorted(
    WhatIfPlanCache* cache) {
  std::vector<std::pair<WhatIfCacheKey, CachedPlanCost>> out;
  cache->DrainEntriesInto(&out);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

TEST(WhatIfPlanCacheTest, MergeDropsStaleAndDuplicates) {
  WhatIfPlanCache cache(0);
  cache.Insert(Key(1, 0), Value(1.0, /*version=*/1));  // resident, stale
  std::vector<std::pair<WhatIfCacheKey, CachedPlanCost>> fresh;
  fresh.emplace_back(Key(2, 0), Value(2.0, 2));
  fresh.emplace_back(Key(2, 0), Value(2.0, 2));  // duplicate across segments
  fresh.emplace_back(Key(3, 0), Value(3.0, 1));  // stale fresh entry
  const WhatIfPlanCache::MergeOutcome out =
      cache.MergeFreshEntries(std::move(fresh), /*catalog_version=*/2);
  EXPECT_EQ(out.inserted, 1);
  EXPECT_EQ(out.duplicates, 1);
  EXPECT_EQ(out.stale_dropped, 2);  // resident key 1 + fresh key 3
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Peek(Key(2, 0), 2), nullptr);
}

TEST(WhatIfPlanCacheTest, MergeIsInvariantToSegmentDistribution) {
  // The same multiset of fresh entries split differently across segments
  // (as different worker counts would) must produce identical caches.
  auto entry = [](uint64_t q) {
    return std::make_pair(Key(q, q * 31), Value(static_cast<double>(q), 1));
  };
  Rng rng(7);
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 40; ++i) keys.push_back(1 + rng.NextBelow(25));

  WhatIfPlanCache a(8 * WhatIfPlanCache::kEntryBytes);
  WhatIfPlanCache b(8 * WhatIfPlanCache::kEntryBytes);
  // "Serial": one segment in stream order.
  std::vector<std::pair<WhatIfCacheKey, CachedPlanCost>> one;
  for (uint64_t k : keys) one.push_back(entry(k));
  a.MergeFreshEntries(std::move(one), 1);
  // "Parallel": four interleaved segments, drained in reverse.
  std::vector<std::vector<std::pair<WhatIfCacheKey, CachedPlanCost>>> segs(4);
  for (size_t i = 0; i < keys.size(); ++i) {
    segs[i % 4].push_back(entry(keys[i]));
  }
  std::vector<std::pair<WhatIfCacheKey, CachedPlanCost>> flat;
  for (auto it = segs.rbegin(); it != segs.rend(); ++it) {
    flat.insert(flat.end(), it->begin(), it->end());
  }
  b.MergeFreshEntries(std::move(flat), 1);

  const auto ea = Sorted(&a);
  const auto eb = Sorted(&b);
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].first, eb[i].first);
    EXPECT_EQ(ea[i].second.cost, eb[i].second.cost);
  }
}

// ---------------------------------------------------------------------------
// Differential: cache-on == cache-off, bit for bit, at every worker count.
// ---------------------------------------------------------------------------

std::vector<Query> RepetitiveWorkload(const Catalog& catalog, int n,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> out;
  for (int i = 0; i < n; ++i) {
    const int64_t lo = rng.NextInRange(0, 9000);
    switch (rng.NextBelow(4)) {
      case 0:
        out.push_back(
            MakeRangeQuery(catalog, "big", "b_val", lo % 1000, lo % 1000 + 5));
        break;
      case 1:
        out.push_back(MakeRangeQuery(catalog, "small", "s_ref", lo % 1000,
                                     lo % 1000 + 10));
        break;
      default:
        // Concentrated benefit so COLT materializes (and keeps probing)
        // the b_key index; lo % 50 keeps distinct bounds few enough that
        // the cross-epoch cache actually gets repeat hits.
        out.push_back(
            MakeRangeQuery(catalog, "big", "b_key", lo % 50, lo % 50 + 20));
        break;
    }
  }
  return out;
}

std::string EpochCsv(const ColtRunResult& run) {
  std::ostringstream out;
  EXPECT_TRUE(WriteEpochReportCsv(run.epochs, out).ok());
  return out.str();
}

std::string PerQueryCsv(const ColtRunResult& run) {
  std::ostringstream out;
  EXPECT_TRUE(WritePerQueryCsv(run, /*offline_seconds=*/{}, out).ok());
  return out.str();
}

ColtRunResult RunWithCacheBytes(int workers, int64_t cache_bytes) {
  Catalog catalog = MakeTestCatalog();
  const std::vector<Query> workload = RepetitiveWorkload(catalog, 300, 23);
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  config.num_workers = workers;
  config.whatif_cache_bytes = cache_bytes;
  // Probe aggressively: on a stable workload, re-budgeting suspends
  // profiling and adaptive sampling throttles what-if calls to a trickle,
  // leaving the cache idle — the differential and hit-rate assertions
  // want the cache under real load.
  config.enable_rebudgeting = false;
  config.enable_adaptive_sampling = false;
  config.uniform_sample_rate = 1.0;
  config.max_whatif_per_epoch = 60;
  return RunColtWorkload(&catalog, workload, config);
}

TEST(WhatIfCacheDifferentialTest, CacheOnMatchesCacheOffBitForBit) {
  for (int workers : {0, 4}) {
    const ColtRunResult off = RunWithCacheBytes(workers, 0);
    const ColtRunResult on =
        RunWithCacheBytes(workers, 8LL * 1024 * 1024);
    ASSERT_FALSE(off.final_materialized.empty()) << "workers=" << workers;
    ASSERT_FALSE(off.epochs.empty());
    ASSERT_EQ(off.per_query.size(), on.per_query.size());
    for (size_t i = 0; i < off.per_query.size(); ++i) {
      // EXPECT_EQ on doubles is deliberate: bit-identity, not tolerance.
      ASSERT_EQ(off.per_query[i].execution, on.per_query[i].execution)
          << "workers=" << workers << " query " << i;
      ASSERT_EQ(off.per_query[i].profiling, on.per_query[i].profiling)
          << "workers=" << workers << " query " << i;
      ASSERT_EQ(off.per_query[i].build, on.per_query[i].build)
          << "workers=" << workers << " query " << i;
    }
    EXPECT_EQ(off.final_materialized.ids(), on.final_materialized.ids());
    EXPECT_EQ(EpochCsv(off), EpochCsv(on)) << "workers=" << workers;
    EXPECT_EQ(PerQueryCsv(off), PerQueryCsv(on)) << "workers=" << workers;
  }
}

TEST(WhatIfCacheDifferentialTest, TinyBudgetStillBitIdentical) {
  // A 4-entry cache thrashes constantly; eviction pressure must change hit
  // rates only, never results.
  const ColtRunResult off = RunWithCacheBytes(0, 0);
  const ColtRunResult tiny =
      RunWithCacheBytes(0, 4 * WhatIfPlanCache::kEntryBytes);
  EXPECT_EQ(EpochCsv(off), EpochCsv(tiny));
  EXPECT_EQ(PerQueryCsv(off), PerQueryCsv(tiny));
}

TEST(WhatIfCacheDifferentialTest, CacheProducesHitsAndSpeedsUpProfiling) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.Reset();
  reg.set_enabled(true);
  const ColtRunResult on = RunWithCacheBytes(0, 8LL * 1024 * 1024);
  reg.set_enabled(false);
  ASSERT_FALSE(on.epochs.empty());
  const int64_t shortcircuit =
      reg.GetCounter("profiler.whatif_cache.shortcircuit_hits")->value();
  const int64_t hits =
      reg.GetCounter("optimizer.whatif_cache.hits")->value();
  const int64_t inserts =
      reg.GetCounter("optimizer.whatif_cache.inserts")->value();
  EXPECT_GT(inserts, 0);
  EXPECT_GT(shortcircuit + hits, 0)
      << "a repetitive workload must produce cross-epoch cache hits";
  reg.Reset();
}

// ---------------------------------------------------------------------------
// Degraded mode: lost what-if calls answered from the frozen cache.
// ---------------------------------------------------------------------------

TEST(WhatIfCacheDegradedTest, DegradedProbesHitTheFrozenCache) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  reg.Reset();
  reg.set_enabled(true);
  Catalog catalog = MakeTestCatalog();
  const std::vector<Query> workload = RepetitiveWorkload(catalog, 400, 31);
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  config.fault.Fail(fault_sites::kWhatIfOptimize, 0.25);
  config.enable_rebudgeting = false;
  config.enable_adaptive_sampling = false;
  config.uniform_sample_rate = 1.0;
  config.max_whatif_per_epoch = 60;
  const ChaosRunResult result = RunChaosWorkload(&catalog, workload, config);
  reg.set_enabled(false);
  EXPECT_TRUE(result.ok());
  ASSERT_GT(result.degraded_whatif, 0);
  // With a quarter of what-if calls lost on a repetitive stream, some
  // degraded probes must find both costs in the frozen cross-epoch cache.
  EXPECT_GT(reg.GetCounter("profiler.degraded.cache_hit")->value(), 0);
  reg.Reset();
}

}  // namespace
}  // namespace colt
