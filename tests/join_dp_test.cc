/// Join-order DP optimality: the optimizer's left-deep dynamic program must
/// never be beaten by any manually enumerated left-deep join order costed
/// with the same cost model.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::Ref;

/// Four-table chain: a -- b -- c -- d with varied cardinalities.
Catalog MakeChainCatalog() {
  Catalog catalog;
  catalog.AddTable(TableSchema("a",
                               {
                                   {"a_key", ColumnType::kInt64, 8, 1'000},
                                   {"a_val", ColumnType::kInt64, 8, 100},
                               },
                               80'000));
  catalog.AddTable(TableSchema("b",
                               {
                                   {"b_key", ColumnType::kInt64, 8, 1'000},
                                   {"b_ref", ColumnType::kInt64, 8, 500},
                               },
                               5'000));
  catalog.AddTable(TableSchema("c",
                               {
                                   {"c_key", ColumnType::kInt64, 8, 500},
                                   {"c_ref", ColumnType::kInt64, 8, 50},
                                   {"c_val", ColumnType::kInt64, 8, 200},
                               },
                               40'000));
  catalog.AddTable(TableSchema("d",
                               {
                                   {"d_key", ColumnType::kInt64, 8, 50},
                               },
                               900));
  return catalog;
}

Query ChainQuery(const Catalog& catalog, int64_t a_hi, int64_t c_hi) {
  return Query(
      {0, 1, 2, 3},
      {JoinPredicate{Ref(catalog, "a", "a_key"), Ref(catalog, "b", "b_key")},
       JoinPredicate{Ref(catalog, "b", "b_ref"), Ref(catalog, "c", "c_key")},
       JoinPredicate{Ref(catalog, "c", "c_ref"), Ref(catalog, "d", "d_key")}},
      {SelectionPredicate{Ref(catalog, "a", "a_val"), 0, a_hi},
       SelectionPredicate{Ref(catalog, "c", "c_val"), 0, c_hi}});
}

/// Costs one explicit left-deep order with hash joins and best access
/// paths, using the same primitives as the optimizer. This is an upper
/// bound on the optimum (the DP may also use NLJ / index-NLJ), so
/// dp_cost <= manual_cost must hold for every permutation.
double CostLeftDeepOrder(const Catalog& catalog, const CostModel& model,
                         const Query& q, const std::vector<int>& order,
                         QueryOptimizer& optimizer,
                         const IndexConfiguration& config) {
  // Per-table best access path via single-table optimization.
  auto leaf = [&](TableId t) {
    Query single({t}, {}, q.SelectionsOn(t));
    const PlanResult plan = optimizer.Optimize(single, config);
    return CostEstimate{plan.cost, plan.rows};
  };
  auto join_sel = [&](const std::vector<int>& bound, int next) {
    double sel = 1.0;
    for (const auto& j : q.joins()) {
      const bool next_left = j.left.table == q.tables()[next];
      const bool next_right = j.right.table == q.tables()[next];
      bool other_bound = false;
      for (int b : bound) {
        if (q.tables()[b] == j.left.table || q.tables()[b] == j.right.table) {
          other_bound = true;
        }
      }
      if ((next_left || next_right) && other_bound) {
        const int64_t ndv_l =
            catalog.table(j.left.table).column_stats(j.left.column).ndv();
        const int64_t ndv_r =
            catalog.table(j.right.table).column_stats(j.right.column).ndv();
        sel /= static_cast<double>(std::max(ndv_l, ndv_r));
      }
    }
    return sel;
  };
  CostEstimate acc = leaf(q.tables()[order[0]]);
  std::vector<int> bound = {order[0]};
  for (size_t i = 1; i < order.size(); ++i) {
    const double sel = join_sel(bound, order[i]);
    if (sel >= 1.0) return 1e300;  // cross product: not a valid chain order
    acc = model.HashJoin(acc, leaf(q.tables()[order[i]]), sel);
    bound.push_back(order[i]);
  }
  return acc.cost;
}

class JoinDpTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinDpTest, DpNeverWorseThanAnyManualOrder) {
  Catalog catalog = MakeChainCatalog();
  QueryOptimizer optimizer(&catalog);
  Rng rng(GetParam() * 131 + 7);
  // Random index configurations over selection and join columns.
  std::vector<IndexId> ids;
  for (const auto& [t, c] : std::vector<std::pair<const char*, const char*>>{
           {"a", "a_val"}, {"a", "a_key"}, {"c", "c_val"}, {"c", "c_key"}}) {
    ids.push_back(catalog.IndexOn(Ref(catalog, t, c))->id);
  }
  for (int trial = 0; trial < 5; ++trial) {
    IndexConfiguration config;
    for (IndexId id : ids) {
      if (rng.NextBool(0.5)) config.Add(id);
    }
    const Query q = ChainQuery(catalog, rng.NextInRange(0, 20),
                               rng.NextInRange(0, 40));
    const PlanResult dp = optimizer.Optimize(q, config);

    std::vector<int> order = {0, 1, 2, 3};
    std::sort(order.begin(), order.end());
    do {
      const double manual = CostLeftDeepOrder(
          catalog, optimizer.cost_model(), q, order, optimizer, config);
      EXPECT_LE(dp.cost, manual + 1e-6)
          << "order " << order[0] << order[1] << order[2] << order[3];
    } while (std::next_permutation(order.begin(), order.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinDpTest, ::testing::Range<uint64_t>(0, 6));

TEST(JoinDp, FourTableChainProducesCompletePlan) {
  Catalog catalog = MakeChainCatalog();
  QueryOptimizer optimizer(&catalog);
  const Query q = ChainQuery(catalog, 5, 10);
  const PlanResult plan = optimizer.Optimize(q, {});
  ASSERT_NE(plan.plan, nullptr);
  std::vector<TableId> seen;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    if (node.table != kInvalidTableId) seen.push_back(node.table);
    if (node.left) walk(*node.left);
    if (node.right) walk(*node.right);
  };
  walk(*plan.plan);
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace colt
