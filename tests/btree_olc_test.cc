/// Optimistic-lock-coupling stress for the B+-tree (DESIGN.md §15):
/// readers racing writer split storms at tiny fanouts, concurrent-writer
/// differentials against std::multimap, invariant checks under reader
/// load, restart accounting, and the epoch-based-reclamation guarantees
/// (a pinned reader's tree is never freed under it — the UAF would be
/// caught by ASan). The interleaving-heavy tests earn their keep under
/// -DCOLT_SANITIZE=thread and =address.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "common/thread_pool.h"
#include "index/btree.h"
#include "storage/database.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeTestCatalog;

/// Spin until `flag` turns true (handshake helper for interleavings).
void AwaitFlag(const std::atomic<bool>& flag) {
  while (!flag.load(std::memory_order_acquire)) {
  }
}

TEST(BTreeOlc, RestartCountersStartZeroAndStayZeroUncontended) {
  BTreeIndex tree(4);
  EXPECT_EQ(tree.read_restarts(), 0);
  EXPECT_EQ(tree.write_restarts(), 0);
  for (int64_t k = 0; k < 500; ++k) tree.Insert(k * 7 % 501, k);
  std::vector<RowId> rows;
  tree.RangeScan(0, 500, &rows);
  EXPECT_EQ(rows.size(), 500u);
  // A quiescent single-threaded workload never fails validation: the
  // counters must not tick without concurrency.
  EXPECT_EQ(tree.read_restarts(), 0);
  EXPECT_EQ(tree.write_restarts(), 0);
}

TEST(BTreeOlc, ReadersRaceSplitStormAtTinyFanout) {
  // Fanout 4 forces a split roughly every other insert, so readers cross
  // structural changes constantly.
  BTreeIndex tree(4);
  // Sentinel keys inserted before any reader starts: inserts only add
  // entries, so every later lookup must find them.
  constexpr int64_t kSentinelStride = 1000;
  constexpr int kSentinels = 16;
  for (int s = 0; s < kSentinels; ++s) {
    tree.Insert(s * kSentinelStride, /*row=*/s);
  }

  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int64_t kPerWriter = 8000;
  std::atomic<bool> writers_done{false};

  ThreadPool pool(kWriters + kReaders);
  std::vector<std::future<int64_t>> futures;
  std::atomic<int> writers_left{kWriters};
  for (int w = 0; w < kWriters; ++w) {
    futures.push_back(pool.Submit([&tree, &writers_done, &writers_left, w] {
      for (int64_t i = 0; i < kPerWriter; ++i) {
        // Writer w owns keys ≡ w+1 (mod kWriters+1), never colliding with
        // the sentinels at multiples of 1000... except harmlessly: the
        // tree allows duplicates anyway.
        tree.Insert(i * (kWriters + 1) + w + 1, i);
      }
      if (writers_left.fetch_sub(1) == 1) {
        writers_done.store(true, std::memory_order_release);
      }
      return kPerWriter;
    }));
  }
  for (int r = 0; r < kReaders; ++r) {
    futures.push_back(pool.Submit([&tree, &writers_done] {
      int64_t scans = 0;
      std::vector<RowId> rows;
      size_t last_size = 0;
      do {
        for (int s = 0; s < kSentinels; ++s) {
          rows.clear();
          tree.Lookup(s * kSentinelStride, &rows);
          // Monotonicity: a pre-inserted sentinel is always visible.
          EXPECT_GE(rows.size(), 1u) << "sentinel " << s << " vanished";
          EXPECT_EQ(rows[0], s);
        }
        rows.clear();
        tree.RangeScan(0, kSentinelStride * kSentinels, &rows);
        // The tree only grows while the writers run.
        EXPECT_GE(rows.size(), last_size);
        last_size = rows.size();
        // Scan output is sorted by key, so row-id order within one key
        // group is ascending insert order; just verify nothing torn:
        // result size can never exceed the final entry count.
        EXPECT_LE(rows.size(),
                  static_cast<size_t>(kSentinels + kWriters * kPerWriter));
        ++scans;
      } while (!writers_done.load(std::memory_order_acquire));
      return scans;
    }));
  }
  for (auto& f : futures) f.get();

  // Quiescent: full structural validation and exact content differential.
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.entry_count(), kSentinels + kWriters * kPerWriter);
  std::vector<RowId> all;
  tree.RangeScan(std::numeric_limits<int64_t>::min(),
                 std::numeric_limits<int64_t>::max(), &all);
  EXPECT_EQ(all.size(), static_cast<size_t>(tree.entry_count()));

  // Restart accounting: the storm above makes version-validation failures
  // all but certain on real hardware; on a single-core runner the
  // interleavings may be too coarse to force one, so only assert there.
  if (ThreadPool::HardwareConcurrency() > 1) {
    EXPECT_GT(tree.read_restarts() + tree.write_restarts(), 0)
        << "no restart observed across " << tree.entry_count()
        << " contended inserts";
  }
}

TEST(BTreeOlc, ConcurrentWritersMatchMultimapDifferential) {
  for (int32_t fanout : {4, 5, 16}) {
    BTreeIndex tree(fanout);
    constexpr int kWriters = 4;
    constexpr int64_t kPerWriter = 3000;
    ThreadPool pool(kWriters);
    // Writer w inserts keys ≡ w (mod kWriters); values encode the writer
    // and sequence so the final multiset is fully predictable.
    pool.Map(kWriters, [&tree](size_t w) {
      for (int64_t i = 0; i < kPerWriter; ++i) {
        const int64_t key = (i * kWriters + static_cast<int64_t>(w)) % 977;
        tree.Insert(key, static_cast<RowId>(w * kPerWriter + i));
      }
      return 0;
    });

    ASSERT_TRUE(tree.CheckInvariants().ok()) << "fanout " << fanout;
    std::multimap<int64_t, RowId> expected;
    for (int64_t w = 0; w < kWriters; ++w) {
      for (int64_t i = 0; i < kPerWriter; ++i) {
        expected.emplace((i * kWriters + w) % 977,
                         static_cast<RowId>(w * kPerWriter + i));
      }
    }
    EXPECT_EQ(tree.entry_count(),
              static_cast<int64_t>(expected.size()));
    // Per-key multisets must match exactly (scan order within a key group
    // is insertion order, which is schedule-dependent — compare sorted).
    for (int64_t key = 0; key < 977; ++key) {
      std::vector<RowId> got;
      tree.Lookup(key, &got);
      std::vector<RowId> want;
      auto [lo, hi] = expected.equal_range(key);
      for (auto it = lo; it != hi; ++it) want.push_back(it->second);
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "key " << key << " fanout " << fanout;
    }
  }
}

TEST(BTreeOlc, CheckInvariantsRunsUnderConcurrentReaders) {
  BTreeIndex tree(6);
  for (int64_t k = 0; k < 20000; ++k) tree.Insert(k, k);
  std::atomic<bool> stop{false};
  ThreadPool pool(3);
  std::vector<std::future<int64_t>> readers;
  for (int r = 0; r < 3; ++r) {
    readers.push_back(pool.Submit([&tree, &stop, r] {
      int64_t hits = 0;
      std::vector<RowId> rows;
      while (!stop.load(std::memory_order_acquire)) {
        rows.clear();
        tree.RangeScan(r * 1000, r * 1000 + 500, &rows);
        hits += static_cast<int64_t>(rows.size());
      }
      return hits;
    }));
  }
  // Writers are quiescent, so the checker's relaxed traversal is safe
  // against the scanning readers and must keep passing.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(tree.CheckInvariants().ok());
  }
  stop.store(true, std::memory_order_release);
  for (auto& f : readers) EXPECT_GT(f.get(), 0);
}

/// Sets `*flag` on destruction; ownership passes to the epoch manager
/// via Retire (built through unique_ptr + release to satisfy the
/// raw-new-delete lint).
struct Tracked {
  bool* flag;
  explicit Tracked(bool* f) : flag(f) {}
  ~Tracked() { *flag = true; }
};

TEST(BTreeOlc, EpochReclamationWaitsForPinnedGuard) {
  EpochManager& epochs = EpochManager::Global();
  const int64_t reclaimed_before = epochs.reclaimed_total();
  bool freed = false;
  {
    EpochGuard pin;
    epochs.Retire(std::make_unique<Tracked>(&freed).release());
    // A pinned reader in the retire epoch blocks the two advances the
    // entry needs; no amount of nagging may free it.
    for (int i = 0; i < 8; ++i) epochs.TryReclaim();
    EXPECT_FALSE(freed) << "retired object freed under a pinned guard";
    EXPECT_TRUE(epochs.HasPinnedReaders());
  }
  // Unpinned: reclamation must now drain it.
  epochs.ReclaimAll();
  EXPECT_TRUE(freed);
  EXPECT_GT(epochs.reclaimed_total(), reclaimed_before);
}

TEST(BTreeOlc, GuardsNestAndOnlyOutermostUnpins) {
  EpochManager& epochs = EpochManager::Global();
  bool freed = false;
  {
    EpochGuard outer;
    {
      EpochGuard inner;
      epochs.Retire(std::make_unique<Tracked>(&freed).release());
      epochs.TryReclaim();
      EXPECT_FALSE(freed);
    }
    // Inner guard released but the outer pin still protects the epoch.
    for (int i = 0; i < 8; ++i) epochs.TryReclaim();
    EXPECT_FALSE(freed) << "nested-guard release unpinned the slot";
  }
  epochs.ReclaimAll();
  EXPECT_TRUE(freed);
}

TEST(BTreeOlc, DroppedIndexStaysReadableForPinnedReader) {
  // The serving-layer drop protocol end to end: a reader pins an epoch,
  // resolves a tree through the published snapshot, and keeps scanning it
  // while the owner drops the index and retires the tree. Under ASan this
  // test proves reclamation never frees a pinned-reachable node.
  Database db(MakeTestCatalog(), 7);
  ASSERT_TRUE(db.MaterializeAll().ok());
  Result<IndexDescriptor> desc =
      db.mutable_catalog().IndexOn(colt::testing::Ref(db.catalog(), "big",
                                                      "b_key"));
  ASSERT_TRUE(desc.ok());
  const IndexId id = desc.value().id;
  ASSERT_TRUE(db.BuildIndex(id).ok());

  std::atomic<bool> reader_pinned{false};
  std::atomic<bool> dropped{false};
  ThreadPool pool(1);
  std::future<uint64_t> reader =
      pool.Submit([&db, id, &reader_pinned, &dropped] {
        EpochGuard pin;
        const Database::IndexSnapshot* snap = db.index_snapshot();
        const BTreeIndex* tree = snap->Find(id);
        EXPECT_NE(tree, nullptr);
        reader_pinned.store(true, std::memory_order_release);
        AwaitFlag(dropped);
        // The owner has dropped and retired the tree; the pin keeps every
        // node alive, so deep scans remain safe.
        uint64_t sum = 0;
        std::vector<RowId> rows;
        for (int64_t lo = 0; lo < 10000; lo += 500) {
          rows.clear();
          tree->RangeScan(lo, lo + 499, &rows);
          for (RowId r : rows) sum += static_cast<uint64_t>(r);
        }
        return sum;
      });

  AwaitFlag(reader_pinned);
  db.DropIndex(id);
  // Eager reclamation attempts must spare the pinned snapshot and tree.
  EpochManager::Global().TryReclaim();
  dropped.store(true, std::memory_order_release);
  const uint64_t sum = reader.get();
  EXPECT_GT(sum, 0u);
  EXPECT_EQ(db.index_snapshot()->Find(id), nullptr);
  // Reader gone: the retired tree may now actually be freed.
  EpochManager::Global().ReclaimAll();
}

TEST(BTreeOlc, InstallPublishesWithoutBlockingReaders) {
  // Readers loop over the published snapshot while the owner installs a
  // second index; no reader ever observes a torn snapshot, and the new
  // index becomes visible to post-install snapshot loads.
  Database db(MakeTestCatalog(), 7);
  ASSERT_TRUE(db.MaterializeAll().ok());
  Catalog& catalog = db.mutable_catalog();
  Result<IndexDescriptor> first =
      catalog.IndexOn(colt::testing::Ref(db.catalog(), "big", "b_key"));
  Result<IndexDescriptor> second =
      catalog.IndexOn(colt::testing::Ref(db.catalog(), "big", "b_val"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(db.BuildIndex(first.value().id).ok());

  std::atomic<bool> stop{false};
  ThreadPool pool(2);
  std::vector<std::future<int64_t>> readers;
  for (int r = 0; r < 2; ++r) {
    readers.push_back(pool.Submit([&db, &stop, id = first.value().id] {
      int64_t scans = 0;
      std::vector<RowId> rows;
      while (!stop.load(std::memory_order_acquire)) {
        EpochGuard pin;
        const Database::IndexSnapshot* snap = db.index_snapshot();
        const BTreeIndex* tree = snap->Find(id);
        EXPECT_NE(tree, nullptr);
        rows.clear();
        tree->RangeScan(0, 200, &rows);
        ++scans;
      }
      return scans;
    }));
  }
  // Stage + install on the owner while the readers hammer the snapshot.
  Result<std::unique_ptr<BTreeIndex>> staged =
      db.PrepareIndex(second.value().id);
  ASSERT_TRUE(staged.ok());
  ASSERT_TRUE(
      db.InstallIndex(second.value().id, std::move(staged).value()).ok());
  EXPECT_NE(db.index_snapshot()->Find(second.value().id), nullptr);
  stop.store(true, std::memory_order_release);
  for (auto& f : readers) EXPECT_GT(f.get(), 0);
}

}  // namespace
}  // namespace colt
