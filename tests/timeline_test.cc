#include "harness/timeline.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace colt {
namespace {

TEST(Timeline, EmptySummary) {
  Timeline timeline;
  const LatencySummary s = timeline.Summarize();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.total, 0.0);
  EXPECT_DOUBLE_EQ(timeline.Percentile(50), 0.0);
}

TEST(Timeline, SingleSample) {
  Timeline timeline;
  timeline.Record(3.5);
  const LatencySummary s = timeline.Summarize();
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.p50, 3.5);
  EXPECT_DOUBLE_EQ(s.p99, 3.5);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Timeline, KnownPercentiles) {
  Timeline timeline;
  for (int i = 1; i <= 100; ++i) timeline.Record(i);  // 1..100
  EXPECT_NEAR(timeline.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(timeline.Percentile(99), 99.01, 0.01);
  EXPECT_NEAR(timeline.Percentile(100), 100.0, 1e-12);
  const LatencySummary s = timeline.Summarize();
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.total, 5050.0);
}

TEST(Timeline, PercentilesMonotone) {
  Timeline timeline;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) timeline.Record(rng.NextDouble() * 10);
  double prev = 0.0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double v = timeline.Percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Timeline, SummarizeRangeIsolatesWindow) {
  Timeline timeline;
  for (int i = 0; i < 10; ++i) timeline.Record(100.0);  // warm-up spike
  for (int i = 0; i < 10; ++i) timeline.Record(1.0);    // steady state
  const LatencySummary head = timeline.SummarizeRange(0, 10);
  const LatencySummary tail = timeline.SummarizeRange(10, 20);
  EXPECT_DOUBLE_EQ(head.mean, 100.0);
  EXPECT_DOUBLE_EQ(tail.mean, 1.0);
  // Out-of-bounds clamped.
  EXPECT_EQ(timeline.SummarizeRange(15, 99).count, 5);
  EXPECT_EQ(timeline.SummarizeRange(30, 40).count, 0);
}

TEST(Timeline, MovingAverageConverges) {
  Timeline timeline;
  for (int i = 0; i < 50; ++i) timeline.Record(i < 10 ? 10.0 : 2.0);
  const std::vector<double> ma = timeline.MovingAverage(5);
  ASSERT_EQ(ma.size(), 50u);
  EXPECT_DOUBLE_EQ(ma[0], 10.0);
  EXPECT_DOUBLE_EQ(ma[4], 10.0);
  EXPECT_DOUBLE_EQ(ma[49], 2.0);
  // Transition region averages in between.
  EXPECT_GT(ma[11], 2.0);
  EXPECT_LT(ma[11], 10.0);
}

TEST(Timeline, MovingAverageWindowOne) {
  Timeline timeline;
  timeline.RecordAll({1.0, 2.0, 3.0});
  EXPECT_EQ(timeline.MovingAverage(1), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Timeline, ToStringContainsFields) {
  Timeline timeline;
  timeline.RecordAll({1.0, 2.0, 3.0, 4.0});
  const std::string s = timeline.Summarize().ToString();
  EXPECT_NE(s.find("n=4"), std::string::npos);
  EXPECT_NE(s.find("p95="), std::string::npos);
}

}  // namespace
}  // namespace colt
