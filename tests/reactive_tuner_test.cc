#include "baseline/reactive_tuner.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

class ReactiveTunerTest : public ::testing::Test {
 protected:
  ReactiveTunerTest() : catalog_(MakeTestCatalog()), optimizer_(&catalog_) {
    options_.storage_budget_bytes = 64LL * 1024 * 1024;
  }

  std::vector<Query> KeyWorkload(int n, uint64_t seed) {
    Rng rng(seed);
    std::vector<Query> out;
    for (int i = 0; i < n; ++i) {
      const int64_t lo = rng.NextInRange(0, 9900);
      out.push_back(MakeRangeQuery(catalog_, "big", "b_key", lo, lo + 20));
    }
    return out;
  }

  Catalog catalog_;
  QueryOptimizer optimizer_;
  ReactiveTuner::Options options_;
};

TEST_F(ReactiveTunerTest, ProfilesEveryQuery) {
  ReactiveTuner tuner(&catalog_, &optimizer_, options_);
  const auto workload = KeyWorkload(50, 1);
  for (const auto& q : workload) {
    const ReactiveStep step = tuner.OnQuery(q);
    EXPECT_EQ(step.whatif_calls, 1);  // one candidate per query, always
  }
  EXPECT_EQ(tuner.total_whatif_calls(), 50);
}

TEST_F(ReactiveTunerTest, MaterializesOnceGainExceedsBuildCost) {
  ReactiveTuner tuner(&catalog_, &optimizer_, options_);
  const IndexId b_key = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
  bool materialized = false;
  for (const auto& q : KeyWorkload(100, 2)) {
    const ReactiveStep step = tuner.OnQuery(q);
    for (const auto& action : step.actions) {
      if (action.type == IndexActionType::kMaterialize &&
          action.index == b_key) {
        materialized = true;
      }
    }
  }
  EXPECT_TRUE(materialized);
  EXPECT_TRUE(tuner.materialized().Contains(b_key));
}

TEST_F(ReactiveTunerTest, ReactsFasterThanEpochBasedColt) {
  // REACTIVE's whole selling point: no epoch boundary to wait for.
  ReactiveTuner tuner(&catalog_, &optimizer_, options_);
  int first_build = -1;
  const auto workload = KeyWorkload(100, 3);
  for (size_t i = 0; i < workload.size(); ++i) {
    if (!tuner.OnQuery(workload[i]).actions.empty() && first_build < 0) {
      first_build = static_cast<int>(i);
    }
  }
  ASSERT_GE(first_build, 0);
  EXPECT_LT(first_build, 10);  // within the first "epoch"
}

TEST_F(ReactiveTunerTest, DropsIndexAfterWorkloadMovesOn) {
  options_.gain_window_queries = 60;
  ReactiveTuner tuner(&catalog_, &optimizer_, options_);
  const IndexId b_key = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
  for (const auto& q : KeyWorkload(80, 4)) tuner.OnQuery(q);
  ASSERT_TRUE(tuner.materialized().Contains(b_key));
  // Shift entirely to the small table.
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    tuner.OnQuery(MakeRangeQuery(catalog_, "small", "s_val",
                                 rng.NextInRange(0, 99), 99));
  }
  EXPECT_FALSE(tuner.materialized().Contains(b_key));
}

TEST_F(ReactiveTunerTest, RespectsStorageBudget) {
  // Budget too small for the big-table index.
  const IndexId b_key = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
  options_.storage_budget_bytes = catalog_.index(b_key).size_bytes - 1;
  ReactiveTuner tuner(&catalog_, &optimizer_, options_);
  for (const auto& q : KeyWorkload(150, 6)) tuner.OnQuery(q);
  EXPECT_FALSE(tuner.materialized().Contains(b_key));
  int64_t used = 0;
  for (IndexId id : tuner.materialized().ids()) {
    used += catalog_.index(id).size_bytes;
  }
  EXPECT_LE(used, options_.storage_budget_bytes);
}

TEST_F(ReactiveTunerTest, EvictsColdestWhenFull) {
  // Budget fits exactly one big index; two alternating demand streams.
  const IndexId b_key = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
  const IndexId b_val = catalog_.IndexOn(Ref(catalog_, "big", "b_val"))->id;
  options_.storage_budget_bytes =
      catalog_.index(b_key).size_bytes + catalog_.index(b_val).size_bytes / 2;
  options_.gain_window_queries = 40;
  ReactiveTuner tuner(&catalog_, &optimizer_, options_);
  for (const auto& q : KeyWorkload(60, 7)) tuner.OnQuery(q);
  ASSERT_TRUE(tuner.materialized().Contains(b_key));
  Rng rng(8);
  for (int i = 0; i < 120; ++i) {
    const int64_t lo = rng.NextInRange(0, 990);
    tuner.OnQuery(MakeRangeQuery(catalog_, "big", "b_val", lo, lo + 1));
  }
  EXPECT_TRUE(tuner.materialized().Contains(b_val));
  EXPECT_FALSE(tuner.materialized().Contains(b_key));
}

}  // namespace
}  // namespace colt
