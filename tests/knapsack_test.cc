#include "core/knapsack.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace colt {
namespace {

/// Exact exponential reference.
double BruteForceBest(const std::vector<KnapsackItem>& items,
                      int64_t capacity) {
  const size_t n = items.size();
  double best = 0.0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    int64_t size = 0;
    double value = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        size += items[i].size;
        value += items[i].value;
      }
    }
    if (size <= capacity) best = std::max(best, value);
  }
  return best;
}

TEST(Knapsack, EmptyItems) {
  const KnapsackSolution s = SolveKnapsack({}, 100);
  EXPECT_TRUE(s.chosen_ids.empty());
  EXPECT_DOUBLE_EQ(s.total_value, 0.0);
}

TEST(Knapsack, ZeroCapacityTakesOnlyZeroSize) {
  const KnapsackSolution s = SolveKnapsack(
      {{1, 10, 5.0}, {2, 0, 3.0}}, 0);
  EXPECT_EQ(s.chosen_ids, (std::vector<int64_t>{2}));
  EXPECT_DOUBLE_EQ(s.total_value, 3.0);
}

TEST(Knapsack, NegativeAndZeroValueExcluded) {
  const KnapsackSolution s = SolveKnapsack(
      {{1, 5, -2.0}, {2, 5, 0.0}, {3, 5, 1.0}}, 100);
  EXPECT_EQ(s.chosen_ids, (std::vector<int64_t>{3}));
}

TEST(Knapsack, OversizedItemExcluded) {
  const KnapsackSolution s = SolveKnapsack({{1, 200, 100.0}}, 100);
  EXPECT_TRUE(s.chosen_ids.empty());
}

TEST(Knapsack, ClassicInstance) {
  // Items (size, value): (10,60) (20,100) (30,120), capacity 50 ->
  // optimal = items 2+3 = 220.
  const KnapsackSolution s = SolveKnapsack(
      {{1, 10, 60.0}, {2, 20, 100.0}, {3, 30, 120.0}}, 50);
  EXPECT_DOUBLE_EQ(s.total_value, 220.0);
  EXPECT_EQ(s.chosen_ids, (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(s.total_size, 50);
}

TEST(Knapsack, RespectsCapacityExactly) {
  const KnapsackSolution s = SolveKnapsack(
      {{1, 51, 100.0}, {2, 50, 99.0}}, 100);
  // Both do not fit together (101 > 100); best single is item 1.
  EXPECT_DOUBLE_EQ(s.total_value, 100.0);
  EXPECT_LE(s.total_size, 100);
}

class KnapsackRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnapsackRandomTest, MatchesBruteForce) {
  Rng rng(GetParam() * 97 + 11);
  const int n = 1 + static_cast<int>(rng.NextBelow(14));
  std::vector<KnapsackItem> items;
  int64_t total_size = 0;
  for (int i = 0; i < n; ++i) {
    KnapsackItem item;
    item.id = i;
    item.size = 1 + static_cast<int64_t>(rng.NextBelow(50));
    item.value = static_cast<double>(rng.NextBelow(100)) - 10.0;
    total_size += item.size;
    items.push_back(item);
  }
  const int64_t capacity = static_cast<int64_t>(
      rng.NextBelow(static_cast<uint64_t>(total_size) + 1));
  // Use enough buckets that discretization is exact for these small sizes.
  const KnapsackSolution dp = SolveKnapsack(items, capacity, 1 << 16);
  EXPECT_NEAR(dp.total_value, BruteForceBest(items, capacity), 1e-9);
  EXPECT_LE(dp.total_size, capacity);
  // Chosen value must equal the sum of chosen items.
  double check = 0.0;
  for (int64_t id : dp.chosen_ids) check += items[id].value;
  EXPECT_NEAR(check, dp.total_value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackRandomTest,
                         ::testing::Range<uint64_t>(0, 30));

TEST(Knapsack, DiscretizationNeverOverflowsCapacity) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<KnapsackItem> items;
    for (int i = 0; i < 20; ++i) {
      items.push_back({i, static_cast<int64_t>(1 + rng.NextBelow(1 << 20)),
                       static_cast<double>(rng.NextBelow(1000))});
    }
    const int64_t capacity = 1 + static_cast<int64_t>(rng.NextBelow(1 << 22));
    const KnapsackSolution s = SolveKnapsack(items, capacity, 256);
    EXPECT_LE(s.total_size, capacity);
  }
}

TEST(KnapsackGreedy, NeverBeatsOptimal) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<KnapsackItem> items;
    int64_t total = 0;
    for (int i = 0; i < 12; ++i) {
      const int64_t size = 1 + static_cast<int64_t>(rng.NextBelow(40));
      total += size;
      items.push_back({i, size, static_cast<double>(rng.NextBelow(100))});
    }
    const int64_t capacity = total / 2;
    const KnapsackSolution greedy = SolveKnapsackGreedy(items, capacity);
    const KnapsackSolution optimal = SolveKnapsack(items, capacity, 1 << 16);
    EXPECT_LE(greedy.total_value, optimal.total_value + 1e-9);
    EXPECT_LE(greedy.total_size, capacity);
  }
}

TEST(KnapsackGreedy, PrefersHighDensity) {
  const KnapsackSolution s = SolveKnapsackGreedy(
      {{1, 10, 100.0}, {2, 10, 10.0}}, 10);
  EXPECT_EQ(s.chosen_ids, (std::vector<int64_t>{1}));
}

}  // namespace
}  // namespace colt
