#include "common/metrics.h"

// colt-lint: allow(metric-name): registry unit tests exercise lookup and
// snapshot mechanics with deliberately minimal names ("a", "g", "h"); the
// dotted-namespace convention applies to production registrations.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace colt {
namespace {

// All tests use a local registry: instruments record nothing until
// set_enabled(true), and a private instance keeps tests independent of
// whatever the process-wide Default() registry has accumulated.

TEST(CounterTest, DisabledRegistryDropsUpdates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 0);
}

TEST(CounterTest, EnabledRegistryAccumulates) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter* c = registry.GetCounter("test.counter");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), kMetricsCompiledIn ? 42 : 0);
}

TEST(CounterTest, ToggleMidRunOnlyCountsEnabledWindow) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  c->Add(100);  // dropped
  registry.set_enabled(true);
  c->Add(7);  // kept
  registry.set_enabled(false);
  c->Add(100);  // dropped
  EXPECT_EQ(c->value(), kMetricsCompiledIn ? 7 : 0);
}

TEST(GaugeTest, KeepsLastValueWhileEnabled) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  g->Set(3.5);  // dropped: disabled
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  registry.set_enabled(true);
  g->Set(3.5);
  g->Set(0.25);
  EXPECT_DOUBLE_EQ(g->value(), kMetricsCompiledIn ? 0.25 : 0.0);
}

TEST(RegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
  EXPECT_NE(registry.GetCounter("a"), registry.GetCounter("b"));
}

TEST(RegistryTest, ResetZeroesValuesButKeepsPointers) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h");
  c->Add(5);
  g->Set(1.5);
  h->Record(0.5);
  registry.Reset();
  EXPECT_EQ(c->value(), 0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(registry.GetCounter("c"), c);
  EXPECT_EQ(registry.GetGauge("g"), g);
  EXPECT_EQ(registry.GetHistogram("h"), h);
  // Still enabled and usable after Reset.
  c->Increment();
  EXPECT_EQ(c->value(), kMetricsCompiledIn ? 1 : 0);
}

// The remaining tests exercise recorded values, so they are meaningful
// only when the metrics layer is compiled in.
#ifndef COLT_DISABLE_METRICS

TEST(HistogramTest, CountSumMinMax) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Histogram* h = registry.GetHistogram("h");
  EXPECT_EQ(h->count(), 0);
  EXPECT_DOUBLE_EQ(h->min(), 0.0);  // empty reads as 0, not +inf
  EXPECT_DOUBLE_EQ(h->max(), 0.0);
  h->Record(2.0);
  h->Record(0.5);
  h->Record(5.0);
  EXPECT_EQ(h->count(), 3);
  EXPECT_DOUBLE_EQ(h->sum(), 7.5);
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 5.0);
}

TEST(HistogramTest, BucketAssignmentUsesHalfOpenUpperBounds) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  // Buckets: (-inf,1], (1,2], (2,4], overflow (4,inf).
  HistogramOptions options;
  options.upper_bounds = {1.0, 2.0, 4.0};
  Histogram* h = registry.GetHistogram("h", options);
  h->Record(1.0);   // bucket 0 (inclusive upper bound)
  h->Record(1.5);   // bucket 1
  h->Record(2.0);   // bucket 1
  h->Record(4.0);   // bucket 2
  h->Record(100.0);  // overflow
  const HistogramSnapshot snap = h->Snapshot();
  ASSERT_EQ(snap.bucket_counts.size(), 3u);
  EXPECT_EQ(snap.bucket_counts[0], 1);
  EXPECT_EQ(snap.bucket_counts[1], 2);
  EXPECT_EQ(snap.bucket_counts[2], 1);
  EXPECT_EQ(snap.overflow, 1);
}

TEST(HistogramTest, PercentilesOfUniformDistribution) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  // 100 equal-width buckets over (0,100]; record 1..100 once each. The
  // interpolated p-th percentile must land within one bucket width of p.
  Histogram* h =
      registry.GetHistogram("h", HistogramOptions::Linear(0.0, 100.0, 100));
  for (int i = 1; i <= 100; ++i) h->Record(static_cast<double>(i));
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    EXPECT_NEAR(h->Percentile(p), p, 1.0) << "p=" << p;
  }
  // Exact extremes clamp to recorded min/max, not bucket edges.
  EXPECT_DOUBLE_EQ(h->Percentile(100.0), 100.0);
  EXPECT_GE(h->Percentile(0.5), 1.0);
}

TEST(HistogramTest, PercentileOfSingleValueIsThatValue) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Histogram* h = registry.GetHistogram("h");
  h->Record(3.25e-5);
  EXPECT_DOUBLE_EQ(h->Percentile(50.0), 3.25e-5);
  EXPECT_DOUBLE_EQ(h->Percentile(99.0), 3.25e-5);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Histogram* h = registry.GetHistogram("h");
  EXPECT_DOUBLE_EQ(h->Percentile(50.0), 0.0);
}

TEST(ScopedTimerTest, RecordsOneSampleOnScopeExit) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Histogram* h = registry.GetHistogram("h");
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h->count(), 1);
  EXPECT_GE(h->min(), 0.0);
}

TEST(ScopedTimerTest, ExplicitStopIsIdempotent) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Histogram* h = registry.GetHistogram("h");
  ScopedTimer timer(h);
  const double elapsed = timer.Stop();
  EXPECT_GE(elapsed, 0.0);
  EXPECT_DOUBLE_EQ(timer.Stop(), 0.0);  // second Stop is a no-op
  EXPECT_EQ(h->count(), 1);
}

TEST(ScopedTimerTest, DisabledRegistryRecordsNothing) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h->count(), 0);
}

TEST(WallTimerTest, MonotonicAndNonNegative) {
  const double a = WallTimer::Now();
  const double b = WallTimer::Now();
  EXPECT_GE(b, a);
  WallTimer timer;
  EXPECT_GE(timer.Seconds(), 0.0);
  timer.Reset();
  EXPECT_GE(timer.Seconds(), 0.0);
}

TEST(SnapshotTest, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    MetricsRegistry registry;
    registry.set_enabled(true);
    registry.GetCounter("c")->Add(3);
    registry.GetGauge("g")->Set(0.75);
    Histogram* h = registry.GetHistogram("h");
    for (double v : {1e-6, 2e-6, 5e-5, 1e-3}) h->Record(v);
    return registry.Snapshot();
  };
  EXPECT_EQ(run(), run());
}

TEST(SnapshotTest, JsonlRoundTripIsLossless) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.GetCounter("colt.queries")->Add(1234);
  registry.GetGauge("colt.budget_utilization")->Set(0.875);
  Histogram* h = registry.GetHistogram("colt.on_query.seconds");
  for (double v : {3.5e-7, 1.25e-6, 4.2e-5, 0.001, 17.0, 250.0}) {
    h->Record(v);  // 250 lands in overflow under the default bounds
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  const Result<MetricsSnapshot> reparsed =
      MetricsSnapshot::FromJsonl(snapshot.ToJsonl());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value(), snapshot);
}

TEST(SnapshotTest, FromJsonlRejectsGarbage) {
  EXPECT_FALSE(MetricsSnapshot::FromJsonl("not json at all").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJsonl("{\"kind\":\"wat\"}").ok());
}

TEST(SnapshotTest, EmptySnapshotRoundTrips) {
  const MetricsSnapshot empty;
  EXPECT_TRUE(empty.empty());
  const Result<MetricsSnapshot> reparsed =
      MetricsSnapshot::FromJsonl(empty.ToJsonl());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed.value().empty());
}

TEST(SnapshotTest, FormatDiffShowsCounterDeltas) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  Counter* c = registry.GetCounter("optimizer.whatif.calls");
  c->Add(10);
  const MetricsSnapshot before = registry.Snapshot();
  c->Add(32);
  const MetricsSnapshot after = registry.Snapshot();
  const std::string diff = FormatSnapshotDiff(before, after);
  EXPECT_NE(diff.find("optimizer.whatif.calls"), std::string::npos);
  EXPECT_NE(diff.find("+32"), std::string::npos);
}

TEST(SnapshotTest, FromJsonlRejectsTrailingGarbage) {
  // A valid snapshot line with junk appended must not parse: silently
  // accepting it would let a truncated/concatenated export pass as clean.
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.GetCounter("colt.queries")->Add(7);
  const std::string good = registry.Snapshot().ToJsonl();
  ASSERT_FALSE(good.empty());
  EXPECT_FALSE(MetricsSnapshot::FromJsonl(good + "tail").ok());
  std::string mid_line = good;
  mid_line.insert(mid_line.size() - 1, " extra");
  EXPECT_FALSE(MetricsSnapshot::FromJsonl(mid_line).ok());
}

TEST(SnapshotTest, PrometheusTextExposesAllFamilies) {
  MetricsRegistry registry;
  registry.set_enabled(true);
  registry.GetCounter("colt.queries")->Add(42);
  registry.GetGauge("colt.budget_utilization")->Set(0.5);
  registry.GetHistogram("colt.on_query.seconds")->Record(0.001);
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE colt_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("colt_queries_total 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE colt_budget_utilization gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE colt_on_query_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("colt_on_query_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 1"), std::string::npos);
}

#endif  // COLT_DISABLE_METRICS

}  // namespace
}  // namespace colt
