#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace colt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowUnbiasedSmallModulus) {
  Rng rng(9);
  std::vector<int> counts(7, 0);
  const int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(7)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 7.0, 5.0 * std::sqrt(kDraws / 7.0));
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextBoolRespectsProbability) {
  Rng rng(13);
  int heads = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sumsq = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.01);
  EXPECT_NEAR(sumsq / kDraws, 1.0, 0.02);
}

TEST(Rng, WeightedSamplingProportions) {
  Rng rng(19);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.6, 0.01);
}

TEST(Rng, ForkIndependence) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The fork must not replay the parent's stream.
  Rng parent2(23);
  parent2.Next();  // align with the state after Fork()
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == parent2.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, RanksAreMonotoneAndInRange) {
  const double skew = GetParam();
  const size_t n = 50;
  ZipfSampler zipf(n, skew);
  Rng rng(29);
  std::vector<int64_t> counts(n, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const size_t k = zipf.Sample(rng);
    ASSERT_LT(k, n);
    ++counts[k];
  }
  // Head should dominate tail for skewed distributions.
  if (skew >= 0.8) {
    EXPECT_GT(counts[0], counts[n - 1] * 4);
  }
  // Frequencies should roughly follow 1/rank^s: check the first few ranks
  // are non-increasing within noise.
  for (size_t k = 0; k + 1 < 5; ++k) {
    EXPECT_GE(counts[k] + 5 * std::sqrt(static_cast<double>(counts[k]) + 1),
              counts[k + 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.5));

TEST(Zipf, MatchesTheoreticalHeadProbability) {
  const size_t n = 100;
  const double s = 1.0 + 1e-9;
  ZipfSampler zipf(n, s);
  Rng rng(31);
  int head = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) head += (zipf.Sample(rng) == 0) ? 1 : 0;
  double harmonic = 0;
  for (size_t k = 1; k <= n; ++k) harmonic += 1.0 / k;
  EXPECT_NEAR(head / static_cast<double>(kDraws), 1.0 / harmonic, 0.01);
}

}  // namespace
}  // namespace colt
