#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "harness/workloads.h"
#include "storage/tpch_schema.h"
#include "test_util.h"

namespace colt {
namespace {

TEST(BucketTotals, SumsFixedBuckets) {
  const std::vector<double> values = {1, 2, 3, 4, 5, 6, 7};
  const std::vector<double> buckets = BucketTotals(values, 3);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0], 6.0);
  EXPECT_DOUBLE_EQ(buckets[1], 15.0);
  EXPECT_DOUBLE_EQ(buckets[2], 7.0);  // partial
}

TEST(BucketTotals, EmptyInput) {
  EXPECT_TRUE(BucketTotals({}, 10).empty());
}

TEST(BudgetForIndexes, TargetFitTimesMeanSize) {
  Catalog catalog = testing::MakeTestCatalog();
  const IndexId a =
      catalog.IndexOn(testing::Ref(catalog, "big", "b_key"))->id;
  const IndexId b =
      catalog.IndexOn(testing::Ref(catalog, "small", "s_val"))->id;
  const int64_t budget = BudgetForIndexes(catalog, {a, b}, 2.0);
  const int64_t mean =
      (catalog.index(a).size_bytes + catalog.index(b).size_bytes) / 2;
  EXPECT_NEAR(static_cast<double>(budget), 2.0 * mean, 2.0);
  EXPECT_EQ(BudgetForIndexes(catalog, {}, 2.0), 0);
}

/// Small end-to-end smoke: on a stable focused workload (reduced catalog),
/// COLT converges near OFFLINE's cost while respecting budgets.
TEST(ExperimentIntegration, ColtApproachesOfflineOnStableWorkload) {
  TpchOptions options;
  options.instances = 1;
  options.scale = 0.05;
  Catalog catalog = MakeTpchCatalog(options);
  const QueryDistribution dist = ExperimentWorkloads::Focused(&catalog, 0);
  WorkloadGenerator gen(&catalog, 7);
  std::vector<Query> workload;
  for (int i = 0; i < 400; ++i) workload.push_back(gen.Sample(dist));

  QueryOptimizer probe(&catalog);
  OfflineTuner miner(&catalog, &probe);
  auto relevant = miner.MineRelevantIndexes(workload);
  ASSERT_TRUE(relevant.ok());
  const int64_t budget = BudgetForIndexes(catalog, relevant.value(), 4.0);

  ColtConfig config;
  config.storage_budget_bytes = budget;
  const ColtRunResult colt_run = RunColtWorkload(&catalog, workload, config);
  auto offline = RunOfflineWorkload(&catalog, workload, workload, budget);
  ASSERT_TRUE(offline.ok());

  // Tail cost (post warm-up) within 35% of the clairvoyant optimum.
  double colt_tail = 0, off_tail = 0;
  for (size_t i = 200; i < workload.size(); ++i) {
    colt_tail += colt_run.per_query[i].total();
    off_tail += offline->per_query_seconds[i];
  }
  EXPECT_LT(colt_tail, off_tail * 1.35);
  // Budgets respected.
  for (const auto& e : colt_run.epochs) {
    EXPECT_LE(e.materialized_bytes, budget);
    EXPECT_LE(e.whatif_used, config.max_whatif_per_epoch);
  }
  EXPECT_FALSE(colt_run.final_materialized.empty());
}

TEST(ExperimentIntegration, OfflineRunIsConsistent) {
  TpchOptions options;
  options.instances = 1;
  options.scale = 0.02;
  Catalog catalog = MakeTpchCatalog(options);
  const QueryDistribution dist = ExperimentWorkloads::Focused(&catalog, 0);
  WorkloadGenerator gen(&catalog, 11);
  std::vector<Query> workload;
  for (int i = 0; i < 100; ++i) workload.push_back(gen.Sample(dist));
  auto offline = RunOfflineWorkload(&catalog, workload, workload, 1LL << 30);
  ASSERT_TRUE(offline.ok());
  EXPECT_EQ(offline->per_query_seconds.size(), workload.size());
  double total = 0;
  for (double s : offline->per_query_seconds) {
    EXPECT_GT(s, 0.0);
    total += s;
  }
  EXPECT_NEAR(total, offline->total_seconds, 1e-9);
  // Tuned configuration no worse than empty.
  EXPECT_LE(offline->tuning.total_cost, offline->tuning.base_cost);
}

TEST(ExperimentIntegration, PerQueryTotalsAddComponents) {
  ColtRunResult run;
  run.per_query.push_back({1.0, 0.25, 0.5});
  run.per_query.push_back({2.0, 0.0, 0.0});
  const auto totals = PerQueryTotals(run);
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_DOUBLE_EQ(totals[0], 1.75);
  EXPECT_DOUBLE_EQ(totals[1], 2.0);
  EXPECT_DOUBLE_EQ(run.total_seconds(), 3.75);
}

}  // namespace
}  // namespace colt
