/// Differential tests for the write path (DESIGN.md §16): INSERT/UPDATE/
/// DELETE statements flow through the tuner, their estimated volumes are
/// charged as per-index maintenance at epoch boundaries, and none of the
/// surrounding contracts regress — read-only runs are untouched by the
/// charging knob, parallel and persistent runs stay bit-identical to their
/// serial/ephemeral references, and a statistics-only run makes the exact
/// decisions a physically-applied run makes (model-currency invariant).
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/offline_tuner.h"
#include "common/persist/serializer.h"
#include "common/rng.h"
#include "core/colt.h"
#include "core/write_stats.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/workloads.h"
#include "query/workload.h"
#include "storage/database.h"
#include "storage/tpch_schema.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

// ---------------------------------------------------------------------------
// WriteStatsStore units: estimated volumes -> B+-tree entry operations.
// ---------------------------------------------------------------------------

IndexDescriptor IndexOver(const std::vector<ColumnRef>& columns) {
  IndexDescriptor idx;
  idx.columns = columns;
  idx.column = columns.front();
  return idx;
}

TEST(WriteStats, InsertAndDeleteDriveOneOpPerRow) {
  WriteStatsStore store;
  store.RecordInsert(/*table=*/1, 100.0);
  store.RecordDelete(/*table=*/1, 40.0);
  const IndexDescriptor on_table = IndexOver({{1, 0}});
  const IndexDescriptor elsewhere = IndexOver({{2, 0}});
  EXPECT_DOUBLE_EQ(store.EpochEntryOps(on_table), 140.0);
  EXPECT_DOUBLE_EQ(store.EpochEntryOps(elsewhere), 0.0);
  EXPECT_EQ(store.epoch_write_queries(), 2);
  EXPECT_DOUBLE_EQ(store.epoch_rows_written(), 140.0);
}

TEST(WriteStats, UpdateChargesOnlyIndexesOverAssignedColumns) {
  WriteStatsStore store;
  store.RecordUpdate(/*table=*/1, {/*column=*/5}, 30.0);
  // Key column assigned: erase + re-insert, 2 ops per row.
  EXPECT_DOUBLE_EQ(store.EpochEntryOps(IndexOver({{1, 5}})), 60.0);
  // Index whose key the UPDATE never touches: heap-only change, 0 ops.
  EXPECT_DOUBLE_EQ(store.EpochEntryOps(IndexOver({{1, 6}})), 0.0);
}

TEST(WriteStats, CompositeIndexSumsPerKeyColumnTerms) {
  WriteStatsStore store;
  store.RecordUpdate(/*table=*/1, {/*column=*/2}, 10.0);
  store.RecordUpdate(/*table=*/1, {/*column=*/3}, 5.0);
  // (2 * 10) for the first key column + (2 * 5) for the second.
  EXPECT_DOUBLE_EQ(store.EpochEntryOps(IndexOver({{1, 2}, {1, 3}})), 30.0);
}

TEST(WriteStats, AdvanceEpochClearsVolumesAndKeepsLifetimeTotals) {
  WriteStatsStore store;
  EXPECT_FALSE(store.any_writes());
  store.RecordInsert(/*table=*/1, 25.0);
  store.RecordInsert(/*table=*/1, 25.0);
  EXPECT_EQ(store.epoch_write_queries(), 2);
  store.AdvanceEpoch();
  EXPECT_DOUBLE_EQ(store.EpochEntryOps(IndexOver({{1, 0}})), 0.0);
  EXPECT_DOUBLE_EQ(store.epoch_rows_written(), 0.0);
  EXPECT_EQ(store.epoch_write_queries(), 0);
  EXPECT_EQ(store.total_write_queries(), 2);
  EXPECT_TRUE(store.any_writes());
}

TEST(WriteStats, SaveLoadRoundTripPreservesEpochAndLifetimeState) {
  WriteStatsStore store;
  store.RecordInsert(/*table=*/1, 100.0);
  store.RecordUpdate(/*table=*/1, {/*column=*/5}, 30.0);
  store.AdvanceEpoch();
  store.RecordDelete(/*table=*/2, 7.0);

  BinaryWriter writer;
  store.SaveState(&writer);
  BinaryReader reader(writer.buffer());
  WriteStatsStore loaded;
  ASSERT_TRUE(loaded.LoadState(&reader).ok());
  EXPECT_EQ(loaded.epoch_write_queries(), store.epoch_write_queries());
  EXPECT_EQ(loaded.total_write_queries(), store.total_write_queries());
  EXPECT_DOUBLE_EQ(loaded.epoch_rows_written(), store.epoch_rows_written());
  EXPECT_DOUBLE_EQ(loaded.EpochEntryOps(IndexOver({{2, 0}})),
                   store.EpochEntryOps(IndexOver({{2, 0}})));
}

// ---------------------------------------------------------------------------
// Run-level differentials.
// ---------------------------------------------------------------------------

std::string EpochCsv(const ColtRunResult& run) {
  std::ostringstream out;
  EXPECT_TRUE(WriteEpochReportCsv(run.epochs, out).ok());
  return out.str();
}

std::string PerQueryCsv(const ColtRunResult& run) {
  std::ostringstream out;
  EXPECT_TRUE(WritePerQueryCsv(run, /*offline_seconds=*/{}, out).ok());
  return out.str();
}

/// EXPECT_EQ on doubles is deliberate: the contract is bit-identity.
void ExpectRunsBitIdentical(const ColtRunResult& a, const ColtRunResult& b) {
  ASSERT_EQ(a.per_query.size(), b.per_query.size());
  for (size_t i = 0; i < a.per_query.size(); ++i) {
    EXPECT_EQ(a.per_query[i].execution, b.per_query[i].execution)
        << "query " << i;
    EXPECT_EQ(a.per_query[i].maintenance, b.per_query[i].maintenance)
        << "query " << i;
    EXPECT_EQ(a.per_query[i].write, b.per_query[i].write) << "query " << i;
    EXPECT_EQ(a.per_query[i].profiling, b.per_query[i].profiling)
        << "query " << i;
    EXPECT_EQ(a.per_query[i].build, b.per_query[i].build) << "query " << i;
  }
  EXPECT_EQ(a.final_materialized.ids(), b.final_materialized.ids());
  EXPECT_EQ(EpochCsv(a), EpochCsv(b));
  EXPECT_EQ(PerQueryCsv(a), PerQueryCsv(b));
}

double TotalMaintenanceCharged(const ColtRunResult& run) {
  double total = 0.0;
  for (const auto& e : run.epochs) total += e.maintenance_charged;
  return total;
}

int64_t TotalWriteQueries(const ColtRunResult& run) {
  int64_t total = 0;
  for (const auto& e : run.epochs) total += e.write_queries;
  return total;
}

/// The fig_htap workload at smoke scale: read-heavy / write-heavy (3x) /
/// read-heavy phases over TPC-H instance 0, with gradual transitions.
std::vector<Query> HtapWorkload(Catalog* catalog) {
  const std::vector<QueryDistribution> dists =
      ExperimentWorkloads::HtapPhases(catalog);
  std::vector<WorkloadPhase> phases;
  for (const auto& d : dists) phases.push_back({d, 100});
  phases[1].length = 300;
  WorkloadGenerator gen(catalog, /*seed=*/77);
  return GeneratePhasedWorkload(gen, phases, /*transition_length=*/20);
}

/// Budget sized like bench/fig_htap.cc: mined from the phases' read shapes
/// on a scratch catalog so the run catalogs start identical.
int64_t HtapBudget() {
  Catalog catalog = MakeTpchCatalog();
  const std::vector<QueryDistribution> dists =
      ExperimentWorkloads::HtapPhases(&catalog);
  QueryOptimizer opt(&catalog);
  OfflineTuner miner(&catalog, &opt);
  WorkloadGenerator gen(&catalog, 1234);
  std::vector<Query> sample;
  for (const auto& d : dists) {
    for (int i = 0; i < 200; ++i) {
      Query q = gen.Sample(d);
      if (!q.is_write()) sample.push_back(std::move(q));
    }
  }
  Result<std::vector<IndexId>> relevant = miner.MineRelevantIndexes(sample);
  EXPECT_TRUE(relevant.ok());
  return BudgetForIndexes(catalog, relevant.value(), 4.0);
}

ColtRunResult RunHtap(int workers, bool charge, int64_t budget) {
  Catalog catalog = MakeTpchCatalog();
  const std::vector<Query> workload = HtapWorkload(&catalog);
  ColtConfig config;
  config.storage_budget_bytes = budget;
  config.num_workers = workers;
  config.charge_index_maintenance = charge;
  return RunColtWorkload(&catalog, workload, config);
}

TEST(WritePathTest, ChargeKnobIsInertOnReadOnlyWorkloads) {
  // With no write statement in the stream there is nothing to charge: the
  // knob must not move a single bit, and the CSVs must keep their
  // read-only schema (no write columns appear).
  auto run = [](bool charge) {
    Catalog catalog = MakeTestCatalog();
    Rng rng(21);
    std::vector<Query> workload;
    for (int i = 0; i < 150; ++i) {
      const int64_t lo = rng.NextInRange(0, 9000);
      workload.push_back(MakeRangeQuery(catalog, "big", "b_key", lo, lo + 20));
    }
    ColtConfig config;
    config.storage_budget_bytes = 64LL * 1024 * 1024;
    config.charge_index_maintenance = charge;
    return RunColtWorkload(&catalog, workload, config);
  };
  const ColtRunResult on = run(true);
  const ColtRunResult off = run(false);
  ASSERT_FALSE(on.final_materialized.empty());
  ExpectRunsBitIdentical(on, off);
  EXPECT_EQ(TotalWriteQueries(on), 0);
  EXPECT_EQ(EpochCsv(on).find("write_queries"), std::string::npos);
  EXPECT_EQ(PerQueryCsv(on).find("maintenance"), std::string::npos);
}

TEST(WritePathTest, ChargingChangesDecisionsUnderHtapWrites) {
  // The HTAP flip: with charging on, the write-hot lineitem indexes'
  // net benefit goes negative and the materialized history diverges from
  // the maintenance-blind ablation's (bench/fig_htap.cc gates the
  // direction of the difference; here we gate that it exists and that
  // only the charged run folded a charge into its epochs).
  const int64_t budget = HtapBudget();
  const ColtRunResult charged = RunHtap(0, /*charge=*/true, budget);
  const ColtRunResult blind = RunHtap(0, /*charge=*/false, budget);
  ASSERT_GT(TotalWriteQueries(charged), 0);
  EXPECT_GT(TotalMaintenanceCharged(charged), 0.0);
  EXPECT_EQ(TotalMaintenanceCharged(blind), 0.0);
  // Same workload, same budget — the only difference is the knob, and it
  // must change at least one epoch's chosen index set.
  ASSERT_EQ(charged.epochs.size(), blind.epochs.size());
  bool any_epoch_differs = false;
  for (size_t i = 0; i < charged.epochs.size(); ++i) {
    any_epoch_differs = any_epoch_differs ||
                        charged.epochs[i].materialized_ids !=
                            blind.epochs[i].materialized_ids;
  }
  EXPECT_TRUE(any_epoch_differs);
  // Both runs see the same write statements and price their execution
  // identically; divergence is a tuning-decision effect, not a cost one.
  EXPECT_EQ(TotalWriteQueries(charged), TotalWriteQueries(blind));
}

TEST(WritePathTest, SerialVsFourWorkersBitIdenticalUnderWrites) {
  const int64_t budget = HtapBudget();
  const ColtRunResult serial = RunHtap(0, /*charge=*/true, budget);
  ASSERT_GT(TotalWriteQueries(serial), 0);
  ASSERT_GT(TotalMaintenanceCharged(serial), 0.0);
  ExpectRunsBitIdentical(serial, RunHtap(4, /*charge=*/true, budget));
}

// ---------------------------------------------------------------------------
// Persistence differential under writes.
// ---------------------------------------------------------------------------

/// Mixed read/write stream on the small test catalog: b_key reads earn an
/// index, inserts and key-column updates charge it.
std::vector<Query> MixedWriteWorkload(const Catalog& catalog, int n,
                                      uint64_t seed) {
  Rng rng(seed);
  const TableId big = catalog.FindTable("big");
  const ColumnId b_key = catalog.table(big).FindColumn("b_key");
  std::vector<Query> out;
  for (int i = 0; i < n; ++i) {
    const int64_t lo = rng.NextInRange(0, 9000);
    switch (rng.NextBelow(5)) {
      case 0:
        out.push_back(Query::MakeInsert(big, 200 + rng.NextInRange(0, 300)));
        break;
      case 1:
        out.push_back(Query::MakeUpdate(
            big, {{b_key, rng.NextInRange(0, 9999)}},
            {SelectionPredicate{Ref(catalog, "big", "b_val"), lo % 1000,
                                lo % 1000 + 3}}));
        break;
      case 2:
        out.push_back(Query::MakeDelete(
            big, {SelectionPredicate{Ref(catalog, "big", "b_key"), lo,
                                     lo + 2}}));
        break;
      default:
        out.push_back(MakeRangeQuery(catalog, "big", "b_key", lo, lo + 20));
        break;
    }
  }
  return out;
}

std::string NewStateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/write_path_" + name;
  std::remove((dir + "/wal.log").c_str());
  std::remove((dir + "/snap-0.bin").c_str());
  std::remove((dir + "/snap-1.bin").c_str());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void ExpectStepEq(const TuningStep& a, const TuningStep& b, int at) {
  EXPECT_EQ(a.plan.cost, b.plan.cost) << "query " << at;
  EXPECT_EQ(a.execution_seconds, b.execution_seconds) << "query " << at;
  EXPECT_EQ(a.maintenance_seconds, b.maintenance_seconds) << "query " << at;
  EXPECT_EQ(a.profiling_seconds, b.profiling_seconds) << "query " << at;
  EXPECT_EQ(a.build_seconds, b.build_seconds) << "query " << at;
  EXPECT_EQ(a.epoch_ended, b.epoch_ended) << "query " << at;
}

TEST(WritePathTest, RecoveryRestoresWriteCountersBitIdentically) {
  // Persistence-on/off differential with a kill in the middle: the write
  // volumes recorded before the crash must survive into the recovered
  // tuner's epoch charges, or the first post-recovery boundary diverges.
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  const int total = 80;
  const int kill_after = 40;  // epoch boundary (epoch_length = 10)
  const std::string dir = NewStateDir("recovery");

  // Continuous reference, persistence off.
  Catalog ref_catalog = MakeTestCatalog();
  QueryOptimizer ref_optimizer(&ref_catalog);
  ColtTuner reference(&ref_catalog, &ref_optimizer, config);
  const std::vector<Query> ref_workload =
      MixedWriteWorkload(ref_catalog, total, 55);
  std::vector<TuningStep> ref_steps;
  for (const Query& q : ref_workload) ref_steps.push_back(reference.OnQuery(q));

  double ref_charged = 0.0;
  for (const EpochReport& e : reference.epoch_reports()) {
    ref_charged += e.maintenance_charged;
  }
  ASSERT_GT(ref_charged, 0.0) << "the workload must charge maintenance for "
                                 "the differential to mean anything";

  ColtConfig persist_config = config;
  persist_config.state_dir = dir;
  {
    Catalog victim_catalog = MakeTestCatalog();
    QueryOptimizer victim_optimizer(&victim_catalog);
    ColtTuner victim(&victim_catalog, &victim_optimizer, persist_config);
    const std::vector<Query> workload =
        MixedWriteWorkload(victim_catalog, total, 55);
    for (int i = 0; i < kill_after; ++i) {
      // Persistence on vs. off must not change tuning by a single bit.
      ExpectStepEq(ref_steps[static_cast<size_t>(i)],
                   victim.OnQuery(workload[static_cast<size_t>(i)]), i);
    }
  }

  Catalog rec_catalog = MakeTestCatalog();
  QueryOptimizer rec_optimizer(&rec_catalog);
  ColtTuner recovered(&rec_catalog, &rec_optimizer, persist_config);
  const Result<bool> resumed = recovered.RecoverFromStateDir();
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE(*resumed);
  const std::vector<Query> workload =
      MixedWriteWorkload(rec_catalog, total, 55);
  for (int i = kill_after; i < total; ++i) {
    ExpectStepEq(ref_steps[static_cast<size_t>(i)],
                 recovered.OnQuery(workload[static_cast<size_t>(i)]), i);
  }
  EXPECT_EQ(recovered.materialized().ids(), reference.materialized().ids());

  // The recovered tuner's post-boundary epochs must charge exactly what
  // the reference charged at the same epoch numbers.
  const auto& ref_reports = reference.epoch_reports();
  const auto& rec_reports = recovered.epoch_reports();
  const size_t skipped = ref_reports.size() - rec_reports.size();
  for (size_t i = 0; i < rec_reports.size(); ++i) {
    EXPECT_EQ(ref_reports[i + skipped].maintenance_charged,
              rec_reports[i].maintenance_charged)
        << "epoch " << rec_reports[i].epoch;
    EXPECT_EQ(ref_reports[i + skipped].write_queries,
              rec_reports[i].write_queries)
        << "epoch " << rec_reports[i].epoch;
  }
}

// ---------------------------------------------------------------------------
// Model-currency invariant: statistics-only vs physically applied writes.
// ---------------------------------------------------------------------------

TEST(WritePathTest, StatsOnlyAndPhysicalRunsMakeIdenticalDecisions) {
  // The maintenance charge is computed from optimizer estimates on
  // purpose: attaching a real Database (writes mutate heaps and built
  // trees) must not move any tuning statistic by a single bit.
  Catalog stats_catalog = MakeTestCatalog();
  const std::vector<Query> workload =
      MixedWriteWorkload(stats_catalog, 200, 77);
  ColtConfig config;
  config.storage_budget_bytes = 64LL * 1024 * 1024;
  const ColtRunResult stats_only =
      RunColtWorkload(&stats_catalog, workload, config);
  ASSERT_GT(TotalWriteQueries(stats_only), 0);
  ASSERT_FALSE(stats_only.final_materialized.empty());

  Database db(MakeTestCatalog(), 7);
  ASSERT_TRUE(db.MaterializeAll().ok());
  const TableId big = db.catalog().FindTable("big");
  const int64_t rows_before = db.data(big).live_row_count();
  const ColtRunResult physical = RunColtWorkload(
      &db.mutable_catalog(), workload, config, /*cost_params=*/{},
      /*seed=*/7, &db);

  ExpectRunsBitIdentical(stats_only, physical);

  // The physical side really applied the stream: the heap changed, and
  // every surviving tree is structurally sound and exactly tracks the
  // live rows of its table.
  EXPECT_NE(db.data(big).live_row_count(), rows_before);
  EXPECT_EQ(db.BuiltIndexIds(), physical.final_materialized.ids());
  for (IndexId id : db.BuiltIndexIds()) {
    EXPECT_TRUE(db.index(id).CheckInvariants().ok());
    const TableId table = db.catalog().index(id).column.table;
    EXPECT_EQ(db.index(id).entry_count(), db.data(table).live_row_count())
        << db.catalog().index(id).name;
  }
}

}  // namespace
}  // namespace colt
