#include "common/status.h"
#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : catalog_(MakeTestCatalog()), optimizer_(&catalog_) {
    b_key_ = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
    b_val_ = catalog_.IndexOn(Ref(catalog_, "big", "b_val"))->id;
    s_ref_ = catalog_.IndexOn(Ref(catalog_, "small", "s_ref"))->id;
  }

  Query JoinQuery(int64_t small_lo, int64_t small_hi) {
    return Query({0, 1},
                 {JoinPredicate{Ref(catalog_, "big", "b_key"),
                                Ref(catalog_, "small", "s_ref")}},
                 {SelectionPredicate{Ref(catalog_, "small", "s_val"),
                                     small_lo, small_hi}});
  }

  Catalog catalog_;
  QueryOptimizer optimizer_;
  IndexId b_key_, b_val_, s_ref_;
};

TEST_F(OptimizerTest, SeqScanWithoutIndexes) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  const PlanResult plan = optimizer_.Optimize(q, {});
  ASSERT_NE(plan.plan, nullptr);
  EXPECT_EQ(plan.plan->type, PlanNodeType::kSeqScan);
  EXPECT_TRUE(plan.UsedIndexes().empty());
  EXPECT_GT(plan.cost, 0.0);
}

TEST_F(OptimizerTest, SelectiveQueryUsesIndex) {
  // 10 of 10000 key values => 0.1% selectivity.
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  IndexConfiguration config;
  config.Add(b_key_);
  const PlanResult plan = optimizer_.Optimize(q, config);
  EXPECT_TRUE(plan.plan->type == PlanNodeType::kIndexScan ||
              plan.plan->type == PlanNodeType::kBitmapScan);
  EXPECT_EQ(plan.plan->index_id, b_key_);
  // Using the index must never be worse than the no-index plan.
  const PlanResult without = optimizer_.Optimize(q, {});
  EXPECT_LE(plan.cost, without.cost);
}

TEST_F(OptimizerTest, NonSelectiveQueryIgnoresIndex) {
  // 80% of the key domain: sequential scan wins.
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 7999);
  IndexConfiguration config;
  config.Add(b_key_);
  const PlanResult plan = optimizer_.Optimize(q, config);
  EXPECT_EQ(plan.plan->type, PlanNodeType::kSeqScan);
}

TEST_F(OptimizerTest, IrrelevantIndexNeverHurts) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  IndexConfiguration relevant;
  relevant.Add(b_key_);
  IndexConfiguration both = relevant.With(s_ref_);
  EXPECT_DOUBLE_EQ(optimizer_.Optimize(q, relevant).cost,
                   optimizer_.Optimize(q, both).cost);
}

TEST_F(OptimizerTest, PicksBestAmongMultipleIndexes) {
  // Query has predicates on both b_key (0.1%) and b_val (10%): the b_key
  // index should drive the scan.
  Query q({0}, {},
          {SelectionPredicate{Ref(catalog_, "big", "b_key"), 0, 9},
           SelectionPredicate{Ref(catalog_, "big", "b_val"), 0, 99}});
  IndexConfiguration config;
  config.Add(b_key_);
  config.Add(b_val_);
  const PlanResult plan = optimizer_.Optimize(q, config);
  ASSERT_TRUE(plan.plan->type == PlanNodeType::kIndexScan ||
              plan.plan->type == PlanNodeType::kBitmapScan);
  EXPECT_EQ(plan.plan->index_id, b_key_);
  // The other predicate is a residual filter.
  ASSERT_EQ(plan.plan->filter_predicates.size(), 1u);
  EXPECT_EQ(plan.plan->filter_predicates[0].column,
            (Ref(catalog_, "big", "b_val")));
}


TEST_F(OptimizerTest, BitmapScanChosenAtMidSelectivity) {
  // ~5% of b_key: too many rows for random fetches, few enough that the
  // sorted bitmap fetch beats reading every page.
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 499);
  IndexConfiguration config;
  config.Add(b_key_);
  const PlanResult plan = optimizer_.Optimize(q, config);
  EXPECT_EQ(plan.plan->type, PlanNodeType::kBitmapScan);
  EXPECT_LT(plan.cost, optimizer_.Optimize(q, {}).cost);
}

TEST_F(OptimizerTest, JoinProducesJoinPlan) {
  const Query q = JoinQuery(0, 0);
  const PlanResult plan = optimizer_.Optimize(q, {});
  ASSERT_NE(plan.plan, nullptr);
  EXPECT_TRUE(plan.plan->type == PlanNodeType::kHashJoin ||
              plan.plan->type == PlanNodeType::kNestLoopJoin ||
              plan.plan->type == PlanNodeType::kIndexNLJoin);
  EXPECT_GT(plan.rows, 0.0);
}

TEST_F(OptimizerTest, IndexNestedLoopChosenForSelectiveOuter) {
  // Selective filter on small (1 of 100 values) with an index on the big
  // join column: probing big per outer row beats scanning it.
  const Query q = JoinQuery(0, 0);
  IndexConfiguration config;
  config.Add(b_key_);
  const PlanResult plan = optimizer_.Optimize(q, config);
  EXPECT_EQ(plan.plan->type, PlanNodeType::kIndexNLJoin);
  EXPECT_EQ(plan.plan->index_id, b_key_);
  const PlanResult without = optimizer_.Optimize(q, {});
  EXPECT_LT(plan.cost, without.cost);
}

TEST_F(OptimizerTest, WhatIfGainMatchesCostDifference) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  IndexConfiguration empty;
  const double base = optimizer_.Optimize(q, empty).cost;
  IndexConfiguration with;
  with.Add(b_key_);
  const double with_cost = optimizer_.Optimize(q, with).cost;

  const auto gains = optimizer_.WhatIfOptimize(q, empty, {b_key_});
  ASSERT_EQ(gains.size(), 1u);
  EXPECT_EQ(gains[0].index, b_key_);
  EXPECT_NEAR(gains[0].gain, base - with_cost, 1e-9);
}

TEST_F(OptimizerTest, WhatIfOnMaterializedIndexIsRemovalGain) {
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  IndexConfiguration config;
  config.Add(b_key_);
  const double with_cost = optimizer_.Optimize(q, config).cost;
  const double without_cost = optimizer_.Optimize(q, {}).cost;
  const auto gains = optimizer_.WhatIfOptimize(q, config, {b_key_});
  ASSERT_EQ(gains.size(), 1u);
  EXPECT_NEAR(gains[0].gain, without_cost - with_cost, 1e-9);
}

TEST_F(OptimizerTest, WhatIfGainNonNegativeForUnmaterialized) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const int64_t lo = rng.NextInRange(0, 9000);
    const int64_t hi = lo + rng.NextInRange(0, 900);
    const Query q = MakeRangeQuery(catalog_, "big", "b_key", lo, hi);
    const auto gains = optimizer_.WhatIfOptimize(q, {}, {b_key_, b_val_});
    for (const auto& g : gains) {
      EXPECT_GE(g.gain, -1e-9);
    }
  }
}

TEST_F(OptimizerTest, WhatIfCountsCalls) {
  optimizer_.ResetStats();
  const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
  ColtIgnoreStatus(optimizer_.WhatIfOptimize(q, {}, {b_key_, b_val_, s_ref_}));
  EXPECT_EQ(optimizer_.stats().whatif_calls, 3);
  EXPECT_EQ(optimizer_.stats().optimize_calls, 1);
}

TEST_F(OptimizerTest, WhatIfReusesSubplans) {
  optimizer_.ResetStats();
  const Query q = JoinQuery(0, 10);
  // Probing an index on "big" should reuse the access path for "small".
  ColtIgnoreStatus(optimizer_.WhatIfOptimize(q, {}, {b_key_, b_val_}));
  EXPECT_GT(optimizer_.stats().subplan_reuses, 0);
}

TEST_F(OptimizerTest, CrudeGainNonNegativeAndZeroForMismatch) {
  const SelectionPredicate pred{Ref(catalog_, "big", "b_key"), 0, 9};
  const IndexDescriptor& key_index = catalog_.index(b_key_);
  EXPECT_GT(optimizer_.CrudeGain(pred, key_index), 0.0);
  const IndexDescriptor& val_index = catalog_.index(b_val_);
  EXPECT_DOUBLE_EQ(optimizer_.CrudeGain(pred, val_index), 0.0);
  // Non-selective predicate: no gain.
  const SelectionPredicate wide{Ref(catalog_, "big", "b_key"), 0, 9000};
  EXPECT_DOUBLE_EQ(optimizer_.CrudeGain(wide, key_index), 0.0);
}

TEST_F(OptimizerTest, RelevantIndexesFiltersByQuery) {
  IndexConfiguration config;
  config.Add(b_key_);
  config.Add(b_val_);
  config.Add(s_ref_);
  const Query selection = MakeRangeQuery(catalog_, "big", "b_val", 0, 9);
  EXPECT_EQ(optimizer_.RelevantIndexes(selection, config),
            (std::vector<IndexId>{b_val_}));
  const Query join = JoinQuery(0, 10);
  const auto relevant = optimizer_.RelevantIndexes(join, config);
  // b_key and s_ref are join columns; b_val untouched.
  EXPECT_EQ(relevant.size(), 2u);
}

TEST_F(OptimizerTest, PlanCardinalityTracksSelectivity) {
  const Query narrow = MakeRangeQuery(catalog_, "big", "b_val", 0, 0);
  const Query wide = MakeRangeQuery(catalog_, "big", "b_val", 0, 499);
  EXPECT_LT(optimizer_.Optimize(narrow, {}).rows,
            optimizer_.Optimize(wide, {}).rows);
}

TEST_F(OptimizerTest, PlanToStringRenders) {
  IndexConfiguration config;
  config.Add(b_key_);
  const Query q = JoinQuery(0, 0);
  const PlanResult plan = optimizer_.Optimize(q, config);
  const std::string s = plan.plan->ToString(catalog_);
  EXPECT_NE(s.find("cost="), std::string::npos);
  EXPECT_NE(s.find("big"), std::string::npos);
}

TEST_F(OptimizerTest, CloneProducesEqualTree) {
  IndexConfiguration config;
  config.Add(b_key_);
  const PlanResult plan = optimizer_.Optimize(JoinQuery(0, 5), config);
  const auto clone = plan.plan->Clone();
  EXPECT_EQ(clone->type, plan.plan->type);
  EXPECT_DOUBLE_EQ(clone->cost, plan.plan->cost);
  std::vector<IndexId> a, b;
  plan.plan->CollectUsedIndexes(&a);
  clone->CollectUsedIndexes(&b);
  EXPECT_EQ(a, b);
}

/// Three-table chain join: the DP plan must be at least as good as every
/// manually-constructed two-join ordering costed by the same model. We
/// verify a weaker but robust property: adding an index never increases
/// plan cost, and the full plan covers all tables.
TEST_F(OptimizerTest, ThreeTableJoin) {
  Catalog catalog = MakeTestCatalog();
  catalog.AddTable(TableSchema(
      "mid",
      {
          {"m_id", ColumnType::kInt64, 8, 5'000, true},
          {"m_ref", ColumnType::kInt64, 8, 1'000, true},
      },
      5'000));
  QueryOptimizer optimizer(&catalog);
  Query q({0, 1, 2},
          {JoinPredicate{Ref(catalog, "big", "b_key"),
                         Ref(catalog, "mid", "m_id")},
           JoinPredicate{Ref(catalog, "mid", "m_ref"),
                         Ref(catalog, "small", "s_ref")}},
          {SelectionPredicate{Ref(catalog, "small", "s_val"), 0, 0}});
  const PlanResult base = optimizer.Optimize(q, {});
  ASSERT_NE(base.plan, nullptr);
  // Count leaf tables in the plan.
  std::vector<TableId> seen;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    if (node.table != kInvalidTableId) seen.push_back(node.table);
    if (node.left) walk(*node.left);
    if (node.right) walk(*node.right);
  };
  walk(*base.plan);
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  EXPECT_EQ(seen.size(), 3u);

  IndexConfiguration config;
  config.Add(catalog.IndexOn(Ref(catalog, "big", "b_key"))->id);
  EXPECT_LE(optimizer.Optimize(q, config).cost, base.cost + 1e-9);
}

TEST_F(OptimizerTest, DisconnectedJoinGraphStillPlans) {
  // Two tables, no join predicate: cross product fallback.
  Query q({0, 1}, {},
          {SelectionPredicate{Ref(catalog_, "big", "b_key"), 0, 0},
           SelectionPredicate{Ref(catalog_, "small", "s_val"), 0, 0}});
  const PlanResult plan = optimizer_.Optimize(q, {});
  ASSERT_NE(plan.plan, nullptr);
  EXPECT_GT(plan.cost, 0.0);
}

/// Property sweep: for random configurations, a superset configuration is
/// never costlier than a subset (monotonicity of optimization).
class ConfigMonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConfigMonotonicityTest, MoreIndexesNeverHurt) {
  Catalog catalog = MakeTestCatalog();
  QueryOptimizer optimizer(&catalog);
  const IndexId ids[3] = {
      catalog.IndexOn(Ref(catalog, "big", "b_key"))->id,
      catalog.IndexOn(Ref(catalog, "big", "b_val"))->id,
      catalog.IndexOn(Ref(catalog, "small", "s_ref"))->id,
  };
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    const int64_t lo = rng.NextInRange(0, 9000);
    const int64_t hi = lo + rng.NextInRange(0, 2000);
    Query q({0, 1},
            {JoinPredicate{Ref(catalog, "big", "b_key"),
                           Ref(catalog, "small", "s_ref")}},
            {SelectionPredicate{Ref(catalog, "big", "b_key"), lo, hi},
             SelectionPredicate{Ref(catalog, "small", "s_val"), 0,
                                rng.NextInRange(0, 50)}});
    IndexConfiguration subset, superset;
    for (IndexId id : ids) {
      const bool in_subset = rng.NextBool(0.5);
      if (in_subset) subset.Add(id);
      if (in_subset || rng.NextBool(0.5)) superset.Add(id);
    }
    EXPECT_LE(optimizer.Optimize(q, superset).cost,
              optimizer.Optimize(q, subset).cost + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigMonotonicityTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace colt
