#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace colt {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.Add(42.0);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  Rng rng(7);
  std::vector<double> values;
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian() * 3.0 + 10.0;
    values.push_back(x);
    stats.Add(x);
  }
  const double mean =
      std::accumulate(values.begin(), values.end(), 0.0) / values.size();
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  const double var = ss / (values.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-9);
}

TEST(RunningStats, MergeEquivalentToSequential) {
  Rng rng(13);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble() * 100.0;
    (i % 3 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats copy = a;
  a.Merge(empty);
  EXPECT_EQ(a.count(), copy.count());
  EXPECT_DOUBLE_EQ(a.mean(), copy.mean());
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats stats;
  stats.Add(5.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
}

TEST(InverseNormalCdf, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.95), 1.644854, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.841344746), 0.999998, 1e-4);
}

TEST(StudentTCritical, MatchesTables) {
  // Two-sided 90% / 95% critical values from standard t tables.
  EXPECT_NEAR(StudentTCritical(0.90, 1), 6.3138, 1e-3);
  EXPECT_NEAR(StudentTCritical(0.90, 2), 2.9200, 1e-3);
  EXPECT_NEAR(StudentTCritical(0.90, 5), 2.0150, 5e-3);
  EXPECT_NEAR(StudentTCritical(0.90, 10), 1.8125, 5e-3);
  EXPECT_NEAR(StudentTCritical(0.90, 30), 1.6973, 5e-3);
  EXPECT_NEAR(StudentTCritical(0.95, 10), 2.2281, 5e-3);
  EXPECT_NEAR(StudentTCritical(0.95, 1), 12.7062, 1e-2);
  EXPECT_NEAR(StudentTCritical(0.99, 2), 9.9248, 1e-2);
}

TEST(StudentTCritical, DecreasesWithDf) {
  for (int64_t df = 1; df < 100; ++df) {
    EXPECT_GE(StudentTCritical(0.90, df), StudentTCritical(0.90, df + 1));
  }
}

TEST(StudentTCritical, ApproachesNormal) {
  EXPECT_NEAR(StudentTCritical(0.90, 100000), InverseNormalCdf(0.95), 1e-3);
}

TEST(MeanConfidenceInterval, WideWhenUnknown) {
  RunningStats stats;
  stats.Add(5.0);
  const ConfidenceInterval ci = MeanConfidenceInterval(stats, 0.90);
  EXPECT_LE(ci.low, 5.0 - kUnknownHalfWidth / 2);
  EXPECT_GE(ci.high, 5.0 + kUnknownHalfWidth / 2);
}

TEST(MeanConfidenceInterval, ShrinksWithSamples) {
  Rng rng(3);
  RunningStats stats;
  double prev_width = 1e30;
  for (int n : {10, 100, 1000}) {
    stats.Reset();
    Rng local(3);
    for (int i = 0; i < n; ++i) stats.Add(local.NextGaussian());
    const ConfidenceInterval ci = MeanConfidenceInterval(stats, 0.90);
    EXPECT_LT(ci.width(), prev_width);
    prev_width = ci.width();
  }
}

/// Property: a 90% Student-t interval covers the true mean roughly 90% of
/// the time. Parameterized over sample size.
class CoverageTest : public ::testing::TestWithParam<int> {};

TEST_P(CoverageTest, CoversTrueMeanAtNominalRate) {
  const int n = GetParam();
  const double kTrueMean = 5.0;
  Rng rng(42 + n);
  int covered = 0;
  const int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    RunningStats stats;
    for (int i = 0; i < n; ++i) {
      stats.Add(kTrueMean + 2.0 * rng.NextGaussian());
    }
    if (MeanConfidenceInterval(stats, 0.90).Contains(kTrueMean)) ++covered;
  }
  const double rate = static_cast<double>(covered) / kTrials;
  EXPECT_GT(rate, 0.86);
  EXPECT_LT(rate, 0.94);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, CoverageTest,
                         ::testing::Values(3, 5, 10, 30, 100));

// ---- Exponential smoothing ----

TEST(ExponentialSmoother, FirstValuePassesThrough) {
  ExponentialSmoother s(0.3);
  EXPECT_FALSE(s.initialized());
  EXPECT_DOUBLE_EQ(s.Update(10.0), 10.0);
  EXPECT_TRUE(s.initialized());
}

TEST(ExponentialSmoother, ConvergesToConstant) {
  ExponentialSmoother s(0.5);
  for (int i = 0; i < 50; ++i) s.Update(7.0);
  EXPECT_NEAR(s.value(), 7.0, 1e-9);
}

TEST(ExponentialSmoother, RespectsAlpha) {
  ExponentialSmoother s(0.25);
  s.Update(0.0);
  s.Update(8.0);
  EXPECT_DOUBLE_EQ(s.value(), 2.0);
}

// ---- Two-means split ----

/// Brute-force reference: try all thresholds, minimize within-cluster SS.
double BruteForceTwoMeansSS(std::vector<double> values, size_t* top_count) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  double best = 1e300;
  *top_count = n;
  auto ss = [&](size_t lo, size_t hi) {
    if (hi <= lo) return 0.0;
    double mean = 0;
    for (size_t i = lo; i < hi; ++i) mean += values[i];
    mean /= (hi - lo);
    double out = 0;
    for (size_t i = lo; i < hi; ++i) {
      out += (values[i] - mean) * (values[i] - mean);
    }
    return out;
  };
  bool found = false;
  for (size_t k = 1; k < n; ++k) {
    if (values[k] == values[k - 1]) continue;
    const double total = ss(0, k) + ss(k, n);
    if (total < best) {
      best = total;
      *top_count = n - k;
      found = true;
    }
  }
  if (!found) {
    best = 0.0;
    *top_count = n;
  }
  return best;
}

TEST(TwoMeansSplit, ObviousBimodal) {
  const TwoMeansSplit split =
      ComputeTwoMeansSplit({1.0, 1.1, 0.9, 100.0, 101.0, 99.5});
  EXPECT_EQ(split.top_count, 3u);
  EXPECT_GT(split.threshold, 1.1);
  EXPECT_LE(split.threshold, 99.5);
}

TEST(TwoMeansSplit, SingleValue) {
  const TwoMeansSplit split = ComputeTwoMeansSplit({5.0});
  EXPECT_EQ(split.top_count, 1u);
  EXPECT_DOUBLE_EQ(split.threshold, 5.0);
}

TEST(TwoMeansSplit, AllIdentical) {
  const TwoMeansSplit split = ComputeTwoMeansSplit({2.0, 2.0, 2.0});
  EXPECT_EQ(split.top_count, 3u);
  EXPECT_DOUBLE_EQ(split.within_ss, 0.0);
}

class TwoMeansRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoMeansRandomTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.NextBelow(40));
  std::vector<double> values;
  for (int i = 0; i < n; ++i) {
    values.push_back(std::round(rng.NextDouble() * 100.0) / 10.0);
  }
  size_t brute_top = 0;
  const double brute_ss = BruteForceTwoMeansSS(values, &brute_top);
  const TwoMeansSplit split = ComputeTwoMeansSplit(values);
  EXPECT_NEAR(split.within_ss, brute_ss, 1e-6);
  // Verify the reported threshold realizes the reported top_count.
  size_t above = 0;
  for (double v : values) {
    if (v >= split.threshold) ++above;
  }
  EXPECT_EQ(above, split.top_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoMeansRandomTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace colt
