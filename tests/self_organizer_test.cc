#include "core/self_organizer.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace colt {
namespace {

using ::colt::testing::MakeRangeQuery;
using ::colt::testing::MakeTestCatalog;
using ::colt::testing::Ref;

class SelfOrganizerTest : public ::testing::Test {
 protected:
  SelfOrganizerTest()
      : catalog_(MakeTestCatalog()),
        optimizer_(&catalog_),
        clusters_(&catalog_, config_.history_depth),
        hot_stats_(config_.confidence),
        mat_stats_(config_.confidence),
        candidates_(config_.history_depth, config_.crude_smoothing_alpha),
        forecaster_(config_.history_depth),
        profiler_(&catalog_, &optimizer_, &clusters_, &hot_stats_,
                  &mat_stats_, &candidates_, &config_, 3),
        organizer_(&catalog_, &optimizer_, &clusters_, &hot_stats_,
                   &mat_stats_, &candidates_, &forecaster_, &profiler_,
                   &config_) {
    b_key_ = catalog_.IndexOn(Ref(catalog_, "big", "b_key"))->id;
    b_val_ = catalog_.IndexOn(Ref(catalog_, "big", "b_val"))->id;
    s_val_ = catalog_.IndexOn(Ref(catalog_, "small", "s_val"))->id;
    config_.storage_budget_bytes = 1LL << 40;  // effectively unconstrained
  }

  /// Seeds one cluster with `count` occurrences of a selective query on
  /// b_key and returns its id.
  ClusterId SeedCluster(int count) {
    const Query q = MakeRangeQuery(catalog_, "big", "b_key", 0, 9);
    ClusterId id = kInvalidClusterId;
    for (int i = 0; i < count; ++i) id = clusters_.Assign(q);
    return id;
  }

  ColtConfig config_;
  Catalog catalog_;
  QueryOptimizer optimizer_;
  ClusterManager clusters_;
  GainStatsStore hot_stats_;
  GainStatsStore mat_stats_;
  CandidateSet candidates_;
  BenefitForecaster forecaster_;
  Profiler profiler_;
  SelfOrganizer organizer_;
  IndexId b_key_, b_val_, s_val_;
};

TEST_F(SelfOrganizerTest, MatCostPositiveAndTableScaled) {
  EXPECT_GT(organizer_.MatCost(b_key_), 0.0);
  EXPECT_GT(organizer_.MatCost(b_key_), organizer_.MatCost(s_val_));
}

TEST_F(SelfOrganizerTest, EpochBenefitZeroWithoutMeasurements) {
  SeedCluster(5);
  EXPECT_DOUBLE_EQ(organizer_.EpochBenefit(b_key_, false, {}), 0.0);
}

TEST_F(SelfOrganizerTest, EpochBenefitUsesRateTimesGain) {
  SeedCluster(4);  // rate 4/epoch
  const uint64_t sig = TableConfigSignature(catalog_, {}, 0);
  // Tight measurements around 100.
  for (int i = 0; i < 20; ++i) {
    hot_stats_.Record(b_key_, clusters_.Assign(MakeRangeQuery(
                                  catalog_, "big", "b_key", 0, 9)),
                      100.0, sig);
  }
  // 24 occurrences total (4 + 20 assigns) over 1 epoch.
  const double benefit = organizer_.EpochBenefit(b_key_, false, {});
  EXPECT_NEAR(benefit, 24 * 100.0, 24 * 15.0);
}

TEST_F(SelfOrganizerTest, ConservativeBelowMean) {
  const ClusterId cluster = SeedCluster(10);
  const uint64_t sig = TableConfigSignature(catalog_, {}, 0);
  // Noisy gains: mean 100, high variance.
  for (int i = 0; i < 6; ++i) {
    hot_stats_.Record(b_key_, cluster, i % 2 == 0 ? 10.0 : 190.0, sig);
  }
  const double conservative = organizer_.EpochBenefit(b_key_, false, {});
  config_.conservative_estimates = false;
  const double mean_based = organizer_.EpochBenefit(b_key_, false, {});
  config_.conservative_estimates = true;
  EXPECT_LT(conservative, mean_based);
  EXPECT_GT(conservative, 0.0);  // floored fraction of the mean
}

TEST_F(SelfOrganizerTest, OptimisticAboveConservative) {
  const ClusterId cluster = SeedCluster(10);
  const uint64_t sig = TableConfigSignature(catalog_, {}, 0);
  for (int i = 0; i < 6; ++i) {
    hot_stats_.Record(b_key_, cluster, i % 2 == 0 ? 10.0 : 190.0, sig);
  }
  EXPECT_GT(organizer_.OptimisticEpochBenefit(b_key_, {}),
            organizer_.EpochBenefit(b_key_, false, {}));
}

TEST_F(SelfOrganizerTest, OptimisticFallsBackToCrudeForUnknown) {
  SeedCluster(10);
  candidates_.Observe(b_key_, 500.0, 0);  // raw in-progress crude benefit
  const double optimistic = organizer_.OptimisticEpochBenefit(b_key_, {});
  EXPECT_NEAR(optimistic, 500.0 * config_.epoch_length, 1e-6);
}

TEST_F(SelfOrganizerTest, NetBenefitSubtractsMatCostOnlyWhenNotMaterialized) {
  forecaster_.RecordEpoch(b_key_, 1000.0);
  IndexConfiguration materialized;
  const double as_hot = organizer_.NetBenefit(b_key_, materialized);
  materialized.Add(b_key_);
  const double as_materialized = organizer_.NetBenefit(b_key_, materialized);
  EXPECT_NEAR(as_materialized - as_hot, organizer_.MatCost(b_key_), 1e-6);
}

TEST_F(SelfOrganizerTest, RunEpochEndMaterializesProfitableIndex) {
  // Simulate an index with solid profiled benefit across several epochs.
  const uint64_t sig = TableConfigSignature(catalog_, {}, 0);
  for (int epoch = 0; epoch < 6; ++epoch) {
    const ClusterId cluster = SeedCluster(8);
    for (int i = 0; i < 3; ++i) {
      hot_stats_.Record(b_key_, cluster, 50'000.0, sig);
    }
    const auto outcome = organizer_.RunEpochEnd({}, {b_key_});
    clusters_.AdvanceEpoch();
    if (epoch >= 4) {
      EXPECT_TRUE(outcome.new_materialized.Contains(b_key_))
          << "epoch " << epoch;
    }
  }
}

TEST_F(SelfOrganizerTest, UselessIndexEventuallyDropped) {
  // b_key materialized but never used/measured: its forecast decays to 0
  // and the KNAPSACK drops it.
  IndexConfiguration materialized;
  materialized.Add(b_key_);
  for (int i = 0; i < 13; ++i) {
    forecaster_.RecordEpoch(b_key_, 0.0);
  }
  const auto outcome = organizer_.RunEpochEnd(materialized, {});
  EXPECT_FALSE(outcome.new_materialized.Contains(b_key_));
}

TEST_F(SelfOrganizerTest, HotSetFromCrudeBenefits) {
  SeedCluster(5);
  // Two strong candidates, one weak, one zero.
  candidates_.Observe(b_key_, 10'000.0, 0);
  candidates_.Observe(b_val_, 9'000.0, 0);
  candidates_.Observe(s_val_, 10.0, 0);
  const auto outcome = organizer_.RunEpochEnd({}, {});
  // Top cluster of the two-means split: the two strong ones; density fill
  // may add the weak one.
  EXPECT_TRUE(std::find(outcome.new_hot.begin(), outcome.new_hot.end(),
                        b_key_) != outcome.new_hot.end());
  EXPECT_TRUE(std::find(outcome.new_hot.begin(), outcome.new_hot.end(),
                        b_val_) != outcome.new_hot.end());
}

TEST_F(SelfOrganizerTest, HotSetRespectsCap) {
  config_.max_hot_set_size = 1;
  candidates_.Observe(b_key_, 10'000.0, 0);
  candidates_.Observe(b_val_, 9'000.0, 0);
  const auto outcome = organizer_.RunEpochEnd({}, {});
  EXPECT_EQ(outcome.new_hot.size(), 1u);
  EXPECT_EQ(outcome.new_hot[0], b_key_);
}

TEST_F(SelfOrganizerTest, MaterializedExcludedFromHot) {
  candidates_.Observe(b_key_, 10'000.0, 0);
  // Give the materialized index enough forecast to stay.
  forecaster_.RecordEpoch(b_key_, 1e9);
  IndexConfiguration materialized;
  materialized.Add(b_key_);
  const auto outcome = organizer_.RunEpochEnd(materialized, {});
  ASSERT_TRUE(outcome.new_materialized.Contains(b_key_));
  EXPECT_TRUE(std::find(outcome.new_hot.begin(), outcome.new_hot.end(),
                        b_key_) == outcome.new_hot.end());
}

TEST_F(SelfOrganizerTest, RebudgetSuspendsWhenNoPotential) {
  // Established materialized index, no hot candidates at all.
  for (int i = 0; i < 12; ++i) forecaster_.RecordEpoch(b_key_, 1000.0);
  IndexConfiguration materialized;
  materialized.Add(b_key_);
  const auto outcome = organizer_.RunEpochEnd(materialized, {});
  EXPECT_EQ(outcome.next_whatif_limit, 0);
  EXPECT_NEAR(outcome.rebudget_ratio, 1.0, 1e-9);
}

TEST_F(SelfOrganizerTest, RebudgetMaximizesOnColdStartPotential) {
  // Nothing materialized, strong fresh candidate: r = infinity -> max
  // budget.
  SeedCluster(5);
  candidates_.Observe(b_key_, 10'000.0, 0);
  const auto outcome = organizer_.RunEpochEnd({}, {});
  EXPECT_EQ(outcome.next_whatif_limit, config_.max_whatif_per_epoch);
  EXPECT_GT(outcome.rebudget_ratio, config_.rebudget_high);
}

TEST_F(SelfOrganizerTest, RebudgetDisabledPinsToMax) {
  config_.enable_rebudgeting = false;
  for (int i = 0; i < 12; ++i) forecaster_.RecordEpoch(b_key_, 1000.0);
  IndexConfiguration materialized;
  materialized.Add(b_key_);
  const auto outcome = organizer_.RunEpochEnd(materialized, {});
  EXPECT_EQ(outcome.next_whatif_limit, config_.max_whatif_per_epoch);
}

TEST_F(SelfOrganizerTest, StorageBudgetRespected) {
  config_.storage_budget_bytes = catalog_.index(s_val_).size_bytes;
  // Both indexes profitable, but only the small one fits.
  forecaster_.RecordEpoch(b_key_, 1e9);
  forecaster_.RecordEpoch(s_val_, 1e9);
  const auto outcome =
      organizer_.RunEpochEnd({}, {b_key_, s_val_});
  int64_t total = 0;
  for (IndexId id : outcome.new_materialized.ids()) {
    total += catalog_.index(id).size_bytes;
  }
  EXPECT_LE(total, config_.storage_budget_bytes);
  EXPECT_TRUE(outcome.new_materialized.Contains(s_val_));
  EXPECT_FALSE(outcome.new_materialized.Contains(b_key_));
}

}  // namespace
}  // namespace colt
