#include "common/status.h"

#include <gtest/gtest.h>

namespace colt {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::NotFound("x"));
}

TEST(StatusCodeName, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotImplemented), "NotImplemented");
}

// GCC 12's inliner falsely flags the inactive variant alternative's string
// as maybe-uninitialized when destroying a value-holding Result<int>.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}
#pragma GCC diagnostic pop

TEST(Result, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  COLT_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(Macros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_EQ(UseReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  COLT_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

TEST(Macros, AssignOrReturn) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(3).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace colt
