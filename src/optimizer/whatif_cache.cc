#include "optimizer/whatif_cache.h"

#include <algorithm>

namespace colt {

uint64_t QueryPlanSignature(const Query& q) {
  // FNV-1a over the canonical stored form, with the golden-ratio mix used
  // by the other signature hashes in the tree. Section separators keep
  // e.g. a join column from colliding with a selection column.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 1099511628211ULL;
  };
  auto mix_column = [&mix](const ColumnRef& c) {
    mix((static_cast<uint64_t>(c.table) << 32) ^
        static_cast<uint32_t>(c.column));
  };
  for (TableId t : q.tables()) mix(static_cast<uint64_t>(t) + 1);
  mix(0x10f5);
  for (const JoinPredicate& j : q.joins()) {
    mix_column(j.left);
    mix_column(j.right);
  }
  mix(0x51ec);
  for (const SelectionPredicate& s : q.selections()) {
    mix_column(s.column);
    mix(static_cast<uint64_t>(s.lo));
    mix(static_cast<uint64_t>(s.hi));
  }
  // Write statements (DESIGN.md §16): mixed only when the kind is not
  // SELECT, so every read-only signature is exactly what it was before
  // writes existed (persisted caches stay valid across the upgrade).
  if (q.is_write()) {
    mix(0x3012);
    mix(static_cast<uint64_t>(q.kind()));
    mix(static_cast<uint64_t>(q.insert_rows()));
    for (const SetClause& s : q.set_clauses()) {
      mix(static_cast<uint64_t>(s.column) + 3);
      mix(static_cast<uint64_t>(s.value));
    }
  }
  return h;
}

WhatIfPlanCache::WhatIfPlanCache(int64_t max_bytes) : max_bytes_(max_bytes) {}

const CachedPlanCost* WhatIfPlanCache::Lookup(const WhatIfCacheKey& key,
                                              uint64_t catalog_version) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second->second.catalog_version != catalog_version) {
    ++stats_.invalidations;
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->second;
}

const CachedPlanCost* WhatIfPlanCache::Peek(const WhatIfCacheKey& key,
                                            uint64_t catalog_version,
                                            bool* stale) const {
  if (stale != nullptr) *stale = false;
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  if (it->second->second.catalog_version != catalog_version) {
    if (stale != nullptr) *stale = true;
    return nullptr;
  }
  return &it->second->second;
}

void WhatIfPlanCache::Insert(const WhatIfCacheKey& key,
                             const CachedPlanCost& value) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, value);
  index_.emplace(key, lru_.begin());
  ++stats_.inserts;
  stats_.evictions += EvictToBudget();
}

int64_t WhatIfPlanCache::EvictToBudget() {
  if (max_bytes_ <= 0) return 0;
  int64_t evicted = 0;
  while (!lru_.empty() && bytes() > max_bytes_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evicted;
  }
  return evicted;
}

void WhatIfPlanCache::DrainEntriesInto(
    std::vector<std::pair<WhatIfCacheKey, CachedPlanCost>>* out) {
  for (auto& entry : lru_) out->push_back(entry);
  lru_.clear();
  index_.clear();
}

WhatIfPlanCache::MergeOutcome WhatIfPlanCache::MergeFreshEntries(
    std::vector<std::pair<WhatIfCacheKey, CachedPlanCost>> entries,
    uint64_t catalog_version) {
  MergeOutcome outcome;
  // Precise invalidation: resident entries computed under an older catalog
  // version can never be served again, so the merge is where they leave.
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->second.catalog_version != catalog_version) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++outcome.stale_dropped;
    } else {
      ++it;
    }
  }
  // Canonical order: the fresh entries were computed across an unknown
  // number of worker segments; sorting by key makes the insertion sequence
  // (and therefore the LRU recency of new entries) independent of how the
  // epoch's work was chunked.
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i < entries.size(); ++i) {
    const auto& [key, value] = entries[i];
    if (i > 0 && key == entries[i - 1].first) {
      // Same key computed by two segments: identical value by
      // construction (the cost is a pure function of the key + version).
      ++outcome.duplicates;
      continue;
    }
    if (value.catalog_version != catalog_version) {
      ++outcome.stale_dropped;
      continue;
    }
    if (index_.count(key) > 0) {
      // Already resident with the identical value; leaving recency alone
      // keeps the LRU state independent of segment distribution.
      ++outcome.duplicates;
      continue;
    }
    lru_.emplace_front(key, value);
    index_.emplace(key, lru_.begin());
    ++stats_.inserts;
    ++outcome.inserted;
  }
  outcome.evicted = EvictToBudget();
  stats_.evictions += outcome.evicted;
  return outcome;
}

void WhatIfPlanCache::Clear() {
  lru_.clear();
  index_.clear();
}

namespace {
constexpr uint32_t kWhatIfCacheSectionTag = 0x48434957;  // "WICH"
}  // namespace

void WhatIfPlanCache::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kWhatIfCacheSectionTag);
  writer->WriteU64(lru_.size());
  // Front-to-back = most-to-least recently used; the loader rebuilds the
  // list in the same order, so post-recovery eviction decisions are
  // bit-identical to the uninterrupted run's.
  for (const auto& [key, value] : lru_) {
    writer->WriteU64(key.query_hash);
    writer->WriteU64(key.config_sig);
    writer->WriteDouble(value.cost);
    writer->WriteDouble(value.rows);
    writer->WriteU64(value.used_index_bitmap);
    writer->WriteU64(value.catalog_version);
  }
  writer->WriteI64(stats_.hits);
  writer->WriteI64(stats_.misses);
  writer->WriteI64(stats_.invalidations);
  writer->WriteI64(stats_.inserts);
  writer->WriteI64(stats_.evictions);
}

Status WhatIfPlanCache::LoadState(BinaryReader* reader) {
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kWhatIfCacheSectionTag));
  uint64_t count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&count));
  EntryList lru;
  std::unordered_map<WhatIfCacheKey, EntryList::iterator, WhatIfCacheKeyHash>
      index;
  for (uint64_t i = 0; i < count; ++i) {
    WhatIfCacheKey key;
    CachedPlanCost value;
    COLT_RETURN_IF_ERROR(reader->ReadU64(&key.query_hash));
    COLT_RETURN_IF_ERROR(reader->ReadU64(&key.config_sig));
    COLT_RETURN_IF_ERROR(reader->ReadDouble(&value.cost));
    COLT_RETURN_IF_ERROR(reader->ReadDouble(&value.rows));
    COLT_RETURN_IF_ERROR(reader->ReadU64(&value.used_index_bitmap));
    COLT_RETURN_IF_ERROR(reader->ReadU64(&value.catalog_version));
    if (index.count(key) > 0) {
      return Status::InvalidArgument("duplicate what-if cache key in snapshot");
    }
    lru.emplace_back(key, value);
    index.emplace(key, std::prev(lru.end()));
  }
  Stats stats;
  COLT_RETURN_IF_ERROR(reader->ReadI64(&stats.hits));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&stats.misses));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&stats.invalidations));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&stats.inserts));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&stats.evictions));
  lru_ = std::move(lru);
  index_ = std::move(index);
  stats_ = stats;
  return Status::OK();
}

}  // namespace colt
