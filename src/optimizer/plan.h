#ifndef COLT_OPTIMIZER_PLAN_H_
#define COLT_OPTIMIZER_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/predicate.h"

namespace colt {

/// Physical operator kinds produced by the optimizer.
enum class PlanNodeType {
  kSeqScan,
  kIndexScan,
  /// Bitmap heap scan: collect matching TIDs from the index, sort them,
  /// then fetch heap pages in physical order (each distinct page once,
  /// near-sequentially). The standard mid-selectivity access path.
  kBitmapScan,
  kNestLoopJoin,
  kIndexNLJoin,
  kHashJoin,
};

const char* PlanNodeTypeName(PlanNodeType type);

/// A node of a physical plan tree. Scans are leaves. For kIndexNLJoin the
/// inner side is a base-table index probe described inline (table /
/// index_id / join_predicate / filter_predicates) rather than a child node,
/// mirroring how executors drive repeated probes.
struct PlanNode {
  PlanNodeType type = PlanNodeType::kSeqScan;
  double cost = 0.0;
  double rows = 0.0;

  /// Scans and kIndexNLJoin inner: the base table.
  TableId table = kInvalidTableId;
  /// kIndexScan: the driving index; kIndexNLJoin: the probe index.
  IndexId index_id = kInvalidIndexId;
  /// kIndexScan: the predicate evaluated by the index itself.
  SelectionPredicate index_predicate;
  /// Scans and kIndexNLJoin inner: residual predicates applied per tuple.
  std::vector<SelectionPredicate> filter_predicates;
  /// Joins: the equi-join predicate.
  JoinPredicate join_predicate;

  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;

  /// Appends every index id used anywhere in the subtree.
  void CollectUsedIndexes(std::vector<IndexId>* out) const;

  /// Deep copy.
  std::unique_ptr<PlanNode> Clone() const;

  /// EXPLAIN-style rendering.
  std::string ToString(const Catalog& catalog, int indent = 0) const;
};

}  // namespace colt

#endif  // COLT_OPTIMIZER_PLAN_H_
