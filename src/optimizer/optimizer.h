#ifndef COLT_OPTIMIZER_OPTIMIZER_H_
#define COLT_OPTIMIZER_OPTIMIZER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "query/query.h"

namespace colt {

class WhatIfPlanCache;

/// A fully optimized query: the chosen physical plan and its estimated cost.
struct PlanResult {
  double cost = 0.0;
  double rows = 0.0;
  /// For write statements: the portion of `cost` spent keeping the
  /// configuration's indexes on the target table fresh (B+-tree entry
  /// inserts/erases; DESIGN.md §16). Always 0 for SELECT. `cost` includes
  /// this component, so what-if gain differences automatically go negative
  /// for indexes that a write must maintain.
  double maintenance_cost = 0.0;
  /// Null for INSERT (a pure append has no access path); for UPDATE/DELETE
  /// this is the scan locating the affected rows.
  std::unique_ptr<PlanNode> plan;

  /// Index ids used anywhere in the plan.
  std::vector<IndexId> UsedIndexes() const {
    std::vector<IndexId> out;
    if (plan) plan->CollectUsedIndexes(&out);
    return out;
  }
};

/// One entry of a what-if answer: the execution-cost saving attributable to
/// index `index` under the paper's definition
/// QueryGain(q, I) = QueryCost(q, M - {I}) - QueryCost(q, M + {I}).
struct IndexGain {
  IndexId index = kInvalidIndexId;
  double gain = 0.0;
  /// True when the gain was answered from the frozen what-if plan cache
  /// without issuing an optimizer call (the Profiler's owner-side probe
  /// short-circuit, DESIGN.md §11). Advisory provenance only — the value
  /// itself is bit-identical either way.
  bool from_cache = false;
};

/// Cumulative optimizer statistics (profiling-overhead accounting).
struct OptimizerStats {
  int64_t optimize_calls = 0;
  /// Number of probed indexes across all WhatIfOptimize calls; this is the
  /// quantity COLT budgets with #WI_lim / #WI_max.
  int64_t whatif_calls = 0;
  /// Access-path memo hits inside what-if re-optimizations — the paper's
  /// "reuse of intermediate solutions from the initial query optimization".
  int64_t subplan_reuses = 0;
};

/// The Extended Query Optimizer (paper §3): a Selinger-style cost-based
/// optimizer over the catalog statistics, extended with the what-if
/// interface WHATIFOPTIMIZE(q, P).
///
/// Planning: best access path per table (sequential scan vs. any available
/// single-column index matching a selection), then left-deep dynamic
/// programming over join orders considering nested-loop, index nested-loop,
/// and hash joins.
class QueryOptimizer {
 public:
  /// `registry` selects where this optimizer's instruments live; null means
  /// MetricsRegistry::Default(). Worker-private optimizers in the parallel
  /// profiler pass their worker's buffer registry (per-worker-buffer rule,
  /// DESIGN.md §10) so instrument updates never race on the main registry.
  explicit QueryOptimizer(const Catalog* catalog, CostParams params = {},
                          MetricsRegistry* registry = nullptr);

  /// Optimizes `q` assuming exactly the indexes in `config` exist.
  PlanResult Optimize(const Query& q, const IndexConfiguration& config);

  /// What-if interface. For each index I in `probation`, returns the change
  /// in optimal execution cost of `q` between the configurations
  /// `materialized - {I}` and `materialized + {I}` (so: the savings I is
  /// responsible for, whether or not I is currently materialized).
  /// Each probed index counts as one what-if call in stats().
  /// Worker-safe: the profiler fans chunks of `probation` out to
  /// worker-private optimizers; everything reached from here writes only
  /// this optimizer's own state (memo, stats, metrics buffer, segment
  /// cache) and reads the shared caches through const Peek paths.
  COLT_WORKER_SAFE std::vector<IndexGain> WhatIfOptimize(
      const Query& q, const IndexConfiguration& materialized,
      const std::vector<IndexId>& probation);

  /// Crude, optimistic single-predicate gain Δcost(R, σ, I): sequential
  /// scan cost minus index-scan cost for evaluating σ via I, from standard
  /// formulas only (no plan search). Used for BenefitC (paper §4.1).
  double CrudeGain(const SelectionPredicate& pred,
                   const IndexDescriptor& index) const;

  /// Multi-column extension: crude gain of (possibly composite) `index`
  /// for a query's predicate set on the index's table, under the B+-tree
  /// prefix rule.
  double CompositeCrudeGain(const std::vector<SelectionPredicate>& table_preds,
                            const IndexDescriptor& index) const;

  /// Indexes in `config` that could possibly affect `q`'s plan (on a
  /// selection or join column of `q`).
  std::vector<IndexId> RelevantIndexes(const Query& q,
                                       const IndexConfiguration& config) const;

  const OptimizerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = OptimizerStats(); }
  /// Folds another optimizer's counters into this one. The parallel
  /// profiler runs probes on worker-private optimizers and absorbs their
  /// stats here after each fan-out, so stats() keeps describing the whole
  /// tuning stack. (optimize_calls counts one per WhatIfOptimize chunk, so
  /// its total may exceed the serial count; whatif_calls and subplan
  /// semantics are unchanged.)
  void AbsorbStats(const OptimizerStats& other) {
    stats_.optimize_calls += other.optimize_calls;
    stats_.whatif_calls += other.whatif_calls;
    stats_.subplan_reuses += other.subplan_reuses;
  }

  const CostModel& cost_model() const { return cost_model_; }
  const Catalog& catalog() const { return *catalog_; }

  /// Attaches the cross-epoch what-if plan cache (DESIGN.md §11); either
  /// pointer may be null, and (null, null) detaches. `shared` is the frozen
  /// epoch cache — deliberately const: this optimizer may run on a pool
  /// worker, so it only ever Peeks (no LRU motion, no stat mutation) and
  /// records hits/misses in its own metrics registry. `segment` is this
  /// optimizer's private fresh-entry segment; newly computed costs land
  /// there and the Profiler merges segments into the frozen cache at the
  /// epoch boundary. Both must outlive this optimizer or be detached first.
  void set_whatif_cache(const WhatIfPlanCache* shared,
                        WhatIfPlanCache* segment) {
    shared_cache_ = shared;
    segment_cache_ = segment;
  }

 private:
  struct AccessPath {
    double cost = 0.0;
    double rows = 0.0;
    IndexId index_id = kInvalidIndexId;  // kInvalid => seq scan
    SelectionPredicate index_predicate;
    /// kSeqScan, kIndexScan, or kBitmapScan.
    PlanNodeType scan_type = PlanNodeType::kSeqScan;
  };

  /// Memo of best access paths, keyed by (table, signature of config
  /// indexes on that table). Lives across Optimize calls; correct because
  /// an access path depends only on the query's predicates for that table
  /// and the indexes available on it. Cleared per query.
  struct TableKey {
    TableId table;
    uint64_t config_sig;
    bool operator==(const TableKey&) const = default;
  };
  struct TableKeyHash {
    size_t operator()(const TableKey& k) const {
      return std::hash<uint64_t>()(
          (static_cast<uint64_t>(k.table) << 48) ^ k.config_sig);
    }
  };

  AccessPath BestAccessPath(const Query& q, TableId table,
                            const IndexConfiguration& config,
                            std::unordered_map<TableKey, AccessPath,
                                               TableKeyHash>* memo);

  PlanResult OptimizeInternal(const Query& q, const IndexConfiguration& config,
                              std::unordered_map<TableKey, AccessPath,
                                                 TableKeyHash>* memo);

  /// Plans an INSERT/UPDATE/DELETE: locate cost (UPDATE/DELETE reuse
  /// BestAccessPath over the WHERE clause), heap write cost, and the
  /// per-index maintenance cost for every config index the statement must
  /// keep fresh (DESIGN.md §16).
  PlanResult OptimizeWrite(const Query& q, const IndexConfiguration& config,
                           std::unordered_map<TableKey, AccessPath,
                                              TableKeyHash>* memo);

  /// Optimal cost of `q` under exactly `config`, served from the attached
  /// what-if caches when possible (segment first, then a versioned Peek of
  /// the frozen cache), computed via OptimizeInternal and inserted into the
  /// segment otherwise. `qhash` is QueryPlanSignature(q), hoisted by the
  /// caller so one WhatIfOptimize hashes the query once. Cached and
  /// computed costs are bit-identical (see QueryPlanSignature).
  COLT_WORKER_SAFE double CachedCost(
      const Query& q, uint64_t qhash, const IndexConfiguration& config,
      std::unordered_map<TableKey, AccessPath, TableKeyHash>* memo);

  /// Join selectivity of the predicate set connecting `t` to tables in
  /// `mask`; also reports one usable equi-join predicate for index-NLJ.
  double JoinSelectivity(const Query& q, uint32_t mask, TableId t,
                         const std::vector<TableId>& tables,
                         std::vector<JoinPredicate>* connecting) const;

  double CombinedSelectivity(const Query& q, TableId table) const;

  std::unique_ptr<PlanNode> MakeScanNode(const Query& q, TableId table,
                                         const AccessPath& path) const;

  const Catalog* catalog_;
  CostModel cost_model_;
  OptimizerStats stats_;
  /// Frozen cross-epoch cache (Peek-only; owned by the Profiler).
  const WhatIfPlanCache* shared_cache_ = nullptr;
  /// Private fresh-entry segment (owned by the Profiler).
  WhatIfPlanCache* segment_cache_ = nullptr;

  /// Instrument pointers fetched once from MetricsRegistry::Default();
  /// updates are no-ops until the registry is enabled.
  struct Instruments {
    Counter* optimize_calls;
    Counter* whatif_calls;
    Counter* whatif_probes;
    Counter* memo_hits;
    Counter* memo_misses;
    Counter* cache_hits;
    Counter* cache_misses;
    Counter* cache_invalidations;
    Counter* cache_inserts;
    Histogram* plan_seconds;
    Histogram* whatif_seconds;
  };
  Instruments metrics_;
};

}  // namespace colt

#endif  // COLT_OPTIMIZER_OPTIMIZER_H_
