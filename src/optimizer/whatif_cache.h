#ifndef COLT_OPTIMIZER_WHATIF_CACHE_H_
#define COLT_OPTIMIZER_WHATIF_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/persist/serializer.h"
#include "common/thread_annotations.h"
#include "query/query.h"

namespace colt {

/// Exact canonical signature of a query's relational content: tables, join
/// predicates, and selection predicates with their exact bounds. Two queries
/// hash equal iff their canonical stored forms are identical (the Query
/// constructor sorts tables, canonicalizes + sorts joins, and sorts
/// selections, so construction-order permutations collapse before hashing).
/// That makes the signature safe as a cost-cache key: equal signatures imply
/// the optimizer evaluates the same floating-point expressions in the same
/// order, so a memoized cost is bit-identical to a recomputed one.
///
/// Distinct from QuerySignature (the Profiler's clustering key), which
/// buckets selectivities and deliberately merges similar queries; this
/// signature never merges queries with different predicate bounds. The
/// query's id() is excluded — two occurrences of the same query share cache
/// entries.
uint64_t QueryPlanSignature(const Query& q);

/// Cache key: exact query signature x order-independent signature of the
/// hypothetical index configuration the cost was computed under.
struct WhatIfCacheKey {
  uint64_t query_hash = 0;
  uint64_t config_sig = 0;

  friend bool operator==(const WhatIfCacheKey&,
                         const WhatIfCacheKey&) = default;
  /// Canonical merge order (epoch-boundary merges insert in sorted key
  /// order so the frozen cache's LRU state is deterministic).
  friend bool operator<(const WhatIfCacheKey& a, const WhatIfCacheKey& b) {
    if (a.query_hash != b.query_hash) return a.query_hash < b.query_hash;
    return a.config_sig < b.config_sig;
  }
};

struct WhatIfCacheKeyHash {
  size_t operator()(const WhatIfCacheKey& k) const {
    // The components are already FNV-mixed; a rotate keeps the pair from
    // cancelling when query_hash == config_sig.
    return static_cast<size_t>(k.query_hash ^
                               ((k.config_sig << 27) | (k.config_sig >> 37)));
  }
};

/// A memoized what-if optimization result: the optimal plan cost for one
/// (query, configuration) pair, plus which configuration indexes the best
/// plan actually used (bit i of `used_index_bitmap` corresponds to position
/// i in the configuration's sorted id list; positions >= 64 are not
/// recorded — configurations are budget-bounded far below that).
struct CachedPlanCost {
  double cost = 0.0;
  double rows = 0.0;
  uint64_t used_index_bitmap = 0;
  /// Catalog version the cost was computed under; lookups under any other
  /// version treat the entry as stale.
  uint64_t catalog_version = 0;
};

/// An LRU-bounded memo of what-if plan costs, keyed by
/// QueryPlanSignature x IndexConfiguration::Signature and guarded by the
/// catalog version counter (DESIGN.md §11).
///
/// The same class serves two roles in the tuning stack:
///  * the frozen cross-epoch cache — owned by the Profiler, read-only to
///    pool workers during an epoch (const Peek only: no LRU motion, no stat
///    mutation), mutated by the owner thread at deterministic points
///    (probe short-circuit, degraded fallback, epoch-boundary merge);
///  * per-worker fresh segments — private to one worker (or to the owner's
///    serial path), absorbing this epoch's newly computed costs, drained
///    into the frozen cache at the epoch boundary in canonical sorted-key
///    order so the frozen contents are identical at every worker count.
class WhatIfPlanCache {
 public:
  /// Aggregate effects of one epoch-boundary merge.
  struct MergeOutcome {
    int64_t inserted = 0;
    /// Fresh entries skipped because the frozen cache already held the key
    /// (identical value by construction; recency is left untouched).
    int64_t duplicates = 0;
    /// Entries dropped — fresh or resident — whose catalog version no
    /// longer matches (precise invalidation on install/drop/stats change).
    int64_t stale_dropped = 0;
    int64_t evicted = 0;
  };

  /// Lifetime lookup/insert totals (metrics counters are the per-run source
  /// of truth; these back the unit tests and tools).
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidations = 0;
    int64_t inserts = 0;
    int64_t evictions = 0;
  };

  /// Estimated resident bytes per entry (key + value + LRU/map overhead);
  /// the byte budget divides through this.
  static constexpr int64_t kEntryBytes = 96;

  /// `max_bytes` <= 0 means unbounded (used by tests; production segments
  /// and the frozen cache always get ColtConfig::whatif_cache_bytes).
  explicit WhatIfPlanCache(int64_t max_bytes);

  /// Owner-thread lookup: moves the entry to the LRU front on a hit and
  /// updates stats(). Returns null when absent or stale (a stale entry
  /// counts as an invalidation + miss and stays resident until the next
  /// merge prunes it — eager erasure would make LRU state depend on lookup
  /// patterns that differ across worker counts).
  COLT_OWNER_ONLY const CachedPlanCost* Lookup(const WhatIfCacheKey& key,
                                               uint64_t catalog_version);

  /// Worker-safe lookup: no LRU motion, no stat mutation — genuinely const
  /// so concurrent Peeks during a fan-out are race-free by construction.
  /// `stale` (optional) reports that the key was present but invalidated,
  /// letting the caller count invalidations in its own metrics buffer.
  COLT_WORKER_SAFE const CachedPlanCost* Peek(const WhatIfCacheKey& key,
                                              uint64_t catalog_version,
                                              bool* stale = nullptr) const;

  /// Inserts (or refreshes) an entry at the LRU front, then evicts from the
  /// LRU tail until the byte budget holds. Worker-safe because workers only
  /// ever insert into their own private segment cache (per-worker-buffer
  /// rule); the shared frozen cache is reached through const Peek alone.
  COLT_WORKER_SAFE void Insert(const WhatIfCacheKey& key,
                               const CachedPlanCost& value);

  /// Appends every entry to `out` and clears the cache (stats are kept).
  /// Segment drain for the epoch-boundary merge; the caller sorts, so the
  /// internal iteration order never matters.
  COLT_OWNER_ONLY void DrainEntriesInto(
      std::vector<std::pair<WhatIfCacheKey, CachedPlanCost>>* out);

  /// Epoch-boundary merge (owner thread, workers quiescent): prunes
  /// resident entries whose version != `catalog_version`, sorts `entries`
  /// by key, drops stale and duplicate ones, inserts the remainder in
  /// canonical order, then evicts to the byte budget. Every step is a
  /// deterministic function of (current contents, entry multiset, version),
  /// so the post-merge cache is identical no matter how the entries were
  /// distributed across worker segments.
  COLT_OWNER_ONLY MergeOutcome MergeFreshEntries(
      std::vector<std::pair<WhatIfCacheKey, CachedPlanCost>> entries,
      uint64_t catalog_version);

  int64_t bytes() const {
    return static_cast<int64_t>(lru_.size()) * kEntryBytes;
  }
  size_t size() const { return lru_.size(); }
  int64_t max_bytes() const { return max_bytes_; }
  const Stats& stats() const { return stats_; }

  void Clear();

  /// Crash-safe persistence: entries in least-to-most-recently-used order
  /// (replaying Insert reproduces the exact LRU recency chain) plus the
  /// lifetime stats. The byte budget comes from construction, not the
  /// snapshot.
  void SaveState(BinaryWriter* writer) const;
  Status LoadState(BinaryReader* reader);

 private:
  using EntryList = std::list<std::pair<WhatIfCacheKey, CachedPlanCost>>;

  /// Evicts LRU-tail entries until bytes() <= max_bytes_; returns how many.
  int64_t EvictToBudget();

  int64_t max_bytes_;
  /// Front = most recently used.
  EntryList lru_;
  std::unordered_map<WhatIfCacheKey, EntryList::iterator, WhatIfCacheKeyHash>
      index_;
  Stats stats_;
};

}  // namespace colt

#endif  // COLT_OPTIMIZER_WHATIF_CACHE_H_
