#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace colt {

CostEstimate CostModel::SeqScan(const TableSchema& table, int num_predicates,
                                double selectivity) const {
  CostEstimate est;
  const double rows = static_cast<double>(table.row_count());
  const double pages = static_cast<double>(table.heap_pages());
  est.cost = pages * params_.seq_page_cost + rows * params_.cpu_tuple_cost +
             rows * num_predicates * params_.cpu_operator_cost;
  est.rows = std::max(1.0, rows * selectivity);
  return est;
}

double CostModel::HeapPagesFetched(double tuples_fetched, double pages,
                                   double total_tuples) {
  if (pages <= 1.0 || total_tuples <= 0.0) return std::min(pages, 1.0);
  if (tuples_fetched <= 0.0) return 0.0;
  // Yao: pages * (1 - (1 - 1/pages)^k), computed in log space for stability.
  const double k = std::min(tuples_fetched, total_tuples * 4.0);
  const double log_miss = k * std::log1p(-1.0 / pages);
  const double fetched = pages * (1.0 - std::exp(log_miss));
  return std::clamp(fetched, 1.0, pages);
}

CostEstimate CostModel::IndexScan(const TableSchema& table,
                                  const IndexDescriptor& index,
                                  double selectivity,
                                  int num_residual_predicates) const {
  CostEstimate est;
  const double rows = static_cast<double>(table.row_count());
  const double tuples = std::max(1.0, rows * selectivity);
  // Descend the tree (random I/O per level), then walk leaf pages.
  const double leaf_pages_scanned = std::max(
      1.0, selectivity * static_cast<double>(index.leaf_pages));
  const double index_io =
      index.height * params_.random_page_cost +
      (leaf_pages_scanned - 1.0) * params_.seq_page_cost;
  // Unclustered: each matching tuple needs a heap fetch; Yao bounds the
  // number of distinct pages, each a random read.
  const double heap_pages = HeapPagesFetched(
      tuples, static_cast<double>(table.heap_pages()), rows);
  const double heap_io = heap_pages * params_.random_page_cost;
  const double cpu = tuples * (params_.cpu_index_tuple_cost +
                               params_.cpu_tuple_cost) +
                     tuples * num_residual_predicates *
                         params_.cpu_operator_cost;
  est.cost = index_io + heap_io + cpu;
  est.rows = tuples;
  return est;
}

CostEstimate CostModel::BitmapScan(const TableSchema& table,
                                   const IndexDescriptor& index,
                                   double selectivity,
                                   int num_residual_predicates) const {
  CostEstimate est;
  const double rows = static_cast<double>(table.row_count());
  const double tuples = std::max(1.0, rows * selectivity);
  const double leaf_pages_scanned = std::max(
      1.0, selectivity * static_cast<double>(index.leaf_pages));
  const double index_io =
      index.height * params_.random_page_cost +
      (leaf_pages_scanned - 1.0) * params_.seq_page_cost;
  const double heap_pages = HeapPagesFetched(
      tuples, static_cast<double>(table.heap_pages()), rows);
  // Pages are visited in physical order: the charge interpolates between
  // sequential and random with the fraction of pages touched (PostgreSQL's
  // bitmap heuristic) — touching most pages is nearly sequential.
  const double fraction = heap_pages / static_cast<double>(table.heap_pages());
  const double page_cost =
      params_.random_page_cost -
      (params_.random_page_cost - params_.seq_page_cost) * std::sqrt(fraction);
  // Building the bitmap is linear in the matching TIDs (set a bit per
  // tuple), not a comparison sort.
  const double bitmap_cpu = tuples * 2.0 * params_.cpu_operator_cost;
  const double cpu = tuples * (params_.cpu_index_tuple_cost +
                               params_.cpu_tuple_cost) +
                     tuples * num_residual_predicates *
                         params_.cpu_operator_cost;
  est.cost = index_io + heap_pages * page_cost + bitmap_cpu + cpu;
  est.rows = tuples;
  return est;
}

CostEstimate CostModel::IndexProbe(const TableSchema& table,
                                   const IndexDescriptor& index,
                                   double per_probe_selectivity) const {
  CostEstimate est;
  const double rows = static_cast<double>(table.row_count());
  const double matches = std::max(0.0, rows * per_probe_selectivity);
  const double heap_pages = std::max(1.0, std::min(
      matches, HeapPagesFetched(std::max(1.0, matches),
                                static_cast<double>(table.heap_pages()),
                                rows)));
  est.cost = index.height * params_.random_page_cost +
             heap_pages * params_.random_page_cost +
             std::max(1.0, matches) *
                 (params_.cpu_index_tuple_cost + params_.cpu_tuple_cost);
  est.rows = std::max(matches, 1e-6);
  return est;
}

CostEstimate CostModel::NestLoopJoin(const CostEstimate& outer,
                                     const CostEstimate& inner_rescan,
                                     double join_selectivity) const {
  CostEstimate est;
  est.cost = outer.cost + outer.rows * inner_rescan.cost +
             outer.rows * inner_rescan.rows * params_.cpu_operator_cost;
  est.rows =
      std::max(1.0, outer.rows * inner_rescan.rows * join_selectivity);
  return est;
}

CostEstimate CostModel::HashJoin(const CostEstimate& left,
                                 const CostEstimate& right,
                                 double join_selectivity) const {
  CostEstimate est;
  const CostEstimate& build = (left.rows <= right.rows) ? left : right;
  const CostEstimate& probe = (left.rows <= right.rows) ? right : left;
  est.cost = left.cost + right.cost +
             build.rows * params_.cpu_tuple_cost * params_.hash_tuple_factor +
             probe.rows * params_.cpu_operator_cost * params_.hash_tuple_factor;
  est.rows = std::max(1.0, left.rows * right.rows * join_selectivity);
  return est;
}

double CostModel::IndexMaintenanceCost(const TableSchema& table,
                                       const IndexDescriptor& index,
                                       double entries) const {
  if (entries <= 0.0) return 0.0;
  const double rows = std::max<double>(1.0, table.row_count());
  const double leaf_pages = std::max<double>(1.0, index.leaf_pages);
  const double leaves_dirtied = HeapPagesFetched(entries, leaf_pages, rows);
  return index.height * params_.random_page_cost +
         leaves_dirtied * params_.random_page_cost +
         entries * params_.cpu_index_tuple_cost;
}

CostEstimate CostModel::HeapAppend(const TableSchema& table,
                                   double rows) const {
  CostEstimate est;
  const double existing = std::max<double>(1.0, table.row_count());
  const double rows_per_page =
      std::max(1.0, existing / std::max<double>(1.0, table.heap_pages()));
  const double pages = std::max(1.0, rows / rows_per_page);
  est.cost = pages * params_.seq_page_cost + rows * params_.cpu_tuple_cost;
  est.rows = rows;
  return est;
}

CostEstimate CostModel::HeapWriteBack(const TableSchema& table,
                                      double rows) const {
  CostEstimate est;
  const double dirty = HeapPagesFetched(
      rows, static_cast<double>(table.heap_pages()),
      std::max<double>(1.0, table.row_count()));
  est.cost = dirty * params_.seq_page_cost + rows * params_.cpu_tuple_cost;
  est.rows = rows;
  return est;
}

double CostModel::MaterializationCost(const TableSchema& table,
                                      const IndexDescriptor& index) const {
  const double rows = static_cast<double>(table.row_count());
  const double scan = static_cast<double>(table.heap_pages()) *
                          params_.seq_page_cost +
                      rows * params_.cpu_tuple_cost;
  const double sort =
      rows * std::log2(std::max(2.0, rows)) * params_.cpu_operator_cost;
  const double write =
      static_cast<double>(index.size_bytes) / kPageSizeBytes *
      params_.seq_page_cost;
  return scan + sort + write;
}

}  // namespace colt
