#include "optimizer/plan.h"

#include <sstream>

namespace colt {

const char* PlanNodeTypeName(PlanNodeType type) {
  switch (type) {
    case PlanNodeType::kSeqScan:
      return "SeqScan";
    case PlanNodeType::kIndexScan:
      return "IndexScan";
    case PlanNodeType::kBitmapScan:
      return "BitmapScan";
    case PlanNodeType::kNestLoopJoin:
      return "NestLoop";
    case PlanNodeType::kIndexNLJoin:
      return "IndexNLJoin";
    case PlanNodeType::kHashJoin:
      return "HashJoin";
  }
  return "?";
}

void PlanNode::CollectUsedIndexes(std::vector<IndexId>* out) const {
  if (index_id != kInvalidIndexId) out->push_back(index_id);
  if (left) left->CollectUsedIndexes(out);
  if (right) right->CollectUsedIndexes(out);
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->type = type;
  copy->cost = cost;
  copy->rows = rows;
  copy->table = table;
  copy->index_id = index_id;
  copy->index_predicate = index_predicate;
  copy->filter_predicates = filter_predicates;
  copy->join_predicate = join_predicate;
  if (left) copy->left = left->Clone();
  if (right) copy->right = right->Clone();
  return copy;
}

std::string PlanNode::ToString(const Catalog& catalog, int indent) const {
  std::ostringstream os;
  const std::string pad(indent * 2, ' ');
  os << pad << PlanNodeTypeName(type);
  if (table != kInvalidTableId &&
      (type == PlanNodeType::kSeqScan || type == PlanNodeType::kIndexScan ||
       type == PlanNodeType::kBitmapScan ||
       type == PlanNodeType::kIndexNLJoin)) {
    os << " on " << catalog.table(table).name();
  }
  if (index_id != kInvalidIndexId) {
    os << " using " << catalog.index(index_id).name;
  }
  os << "  (cost=" << cost << " rows=" << rows << ")";
  if (type == PlanNodeType::kIndexScan ||
      type == PlanNodeType::kBitmapScan) {
    os << " cond: " << PredicateToString(catalog, index_predicate);
  }
  for (const auto& f : filter_predicates) {
    os << " filter: " << PredicateToString(catalog, f);
  }
  os << "\n";
  if (left) os << left->ToString(catalog, indent + 1);
  if (right) os << right->ToString(catalog, indent + 1);
  return os.str();
}

}  // namespace colt
