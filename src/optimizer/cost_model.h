#ifndef COLT_OPTIMIZER_COST_MODEL_H_
#define COLT_OPTIMIZER_COST_MODEL_H_

#include <cstdint>

#include "catalog/catalog.h"

namespace colt {

/// Cost-model parameters. Units follow the PostgreSQL convention: one unit
/// is the cost of one sequential page fetch; all constants are relative.
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;
  /// Hash join per-tuple overhead multiplier.
  double hash_tuple_factor = 1.5;
  /// Conversion factor: wall-clock seconds per cost unit. Calibrated so
  /// paper-scale workloads land in the same magnitude as the paper's
  /// PostgreSQL measurements (tens of seconds for cold million-row scans
  /// on 2007 hardware).
  double seconds_per_cost_unit = 5.0e-4;
};

/// Output of a costing routine: estimated cost plus output cardinality.
struct CostEstimate {
  double cost = 0.0;
  double rows = 0.0;
};

/// Stateless Selinger-style ("standard cost formulas", paper §4.1 citing
/// Selinger et al. 1979) cost model over catalog statistics.
class CostModel {
 public:
  explicit CostModel(CostParams params = {}) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Cost of a full sequential scan of `table` applying `num_predicates`
  /// predicates, with `selectivity` the combined fraction of rows retained.
  CostEstimate SeqScan(const TableSchema& table, int num_predicates,
                       double selectivity) const;

  /// Cost of an unclustered B+-tree index scan returning `selectivity` of
  /// `table`'s rows via `index`, applying `num_residual_predicates` extra
  /// predicates to fetched rows. Heap page fetches follow Yao's formula.
  CostEstimate IndexScan(const TableSchema& table, const IndexDescriptor& index,
                         double selectivity,
                         int num_residual_predicates) const;

  /// Cost of a bitmap heap scan via `index`: walk the matching leaf range,
  /// sort the TIDs, then fetch each distinct heap page once in physical
  /// order (charged between sequential and random). Dominates the plain
  /// index scan at medium selectivities.
  CostEstimate BitmapScan(const TableSchema& table,
                          const IndexDescriptor& index, double selectivity,
                          int num_residual_predicates) const;

  /// Cost of probing `index` once with an equality key of selectivity
  /// `per_probe_selectivity`, used as the inner of an index nested-loop
  /// join; returns cost and matched rows per probe.
  CostEstimate IndexProbe(const TableSchema& table,
                          const IndexDescriptor& index,
                          double per_probe_selectivity) const;

  /// Nested-loop join: outer executed once, inner re-executed per outer row.
  CostEstimate NestLoopJoin(const CostEstimate& outer,
                            const CostEstimate& inner_rescan,
                            double join_selectivity) const;

  /// Hash join: build on the smaller input.
  CostEstimate HashJoin(const CostEstimate& left, const CostEstimate& right,
                        double join_selectivity) const;

  /// Cost of materializing (building) `index` on `table`: full scan + sort
  /// + sequential write of the index pages. This is MatCost(I) (paper §5).
  double MaterializationCost(const TableSchema& table,
                             const IndexDescriptor& index) const;

  /// Maintenance cost of applying `entries` B+-tree entry operations
  /// (inserts or erases) to `index` on `table`: one tree descent per
  /// statement batch plus the distinct leaf pages dirtied (Yao over the
  /// leaf level, random writes) plus per-entry CPU. This is the per-index
  /// write penalty charged into NetBenefit (DESIGN.md §16); an UPDATE of an
  /// indexed column counts two entry operations (erase + insert).
  double IndexMaintenanceCost(const TableSchema& table,
                              const IndexDescriptor& index,
                              double entries) const;

  /// Heap cost of appending `rows` freshly inserted tuples to `table`:
  /// sequential writes of the pages the batch fills, plus per-tuple CPU.
  CostEstimate HeapAppend(const TableSchema& table, double rows) const;

  /// Heap cost of writing back `rows` updated/deleted tuples located by a
  /// prior scan: the distinct pages dirtied (Yao) are already resident, so
  /// the write-back is charged at sequential cost, plus per-tuple CPU.
  CostEstimate HeapWriteBack(const TableSchema& table, double rows) const;

  /// Expected number of distinct heap pages touched when fetching
  /// `tuples_fetched` random tuples from a heap of `pages` pages holding
  /// `total_tuples` tuples (Yao's formula, exponential approximation).
  static double HeapPagesFetched(double tuples_fetched, double pages,
                                 double total_tuples);

  /// Seconds corresponding to `cost` units.
  double ToSeconds(double cost) const {
    return cost * params_.seconds_per_cost_unit;
  }

 private:
  CostParams params_;
};

}  // namespace colt

#endif  // COLT_OPTIMIZER_COST_MODEL_H_
