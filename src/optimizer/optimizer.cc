#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/tracing.h"
#include "optimizer/whatif_cache.h"

namespace colt {

namespace {

/// Bit i set iff config.ids()[i] appears in the plan (positions >= 64 are
/// not representable; configurations are budget-bounded far below that).
uint64_t UsedIndexBitmap(const PlanResult& result,
                         const IndexConfiguration& config) {
  uint64_t bitmap = 0;
  const std::vector<IndexId>& ids = config.ids();
  for (IndexId used : result.UsedIndexes()) {
    const auto it = std::lower_bound(ids.begin(), ids.end(), used);
    if (it == ids.end() || *it != used) continue;
    const size_t pos = static_cast<size_t>(it - ids.begin());
    if (pos < 64) bitmap |= (1ULL << pos);
  }
  return bitmap;
}

/// FNV signature of the config indexes that live on `table`.
uint64_t ConfigSigForTable(const Catalog& catalog,
                           const IndexConfiguration& config, TableId table) {
  uint64_t h = 1469598103934665603ULL;
  for (IndexId id : config.ids()) {
    if (catalog.index(id).column.table != table) continue;
    h ^= static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

QueryOptimizer::QueryOptimizer(const Catalog* catalog, CostParams params,
                               MetricsRegistry* registry)
    : catalog_(catalog), cost_model_(params) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Default();
  metrics_.optimize_calls = reg.GetCounter("optimizer.optimize.calls");
  metrics_.whatif_calls = reg.GetCounter("optimizer.whatif.calls");
  metrics_.whatif_probes = reg.GetCounter("optimizer.whatif.probes");
  metrics_.memo_hits = reg.GetCounter("optimizer.memo.hits");
  metrics_.memo_misses = reg.GetCounter("optimizer.memo.misses");
  metrics_.cache_hits = reg.GetCounter("optimizer.whatif_cache.hits");
  metrics_.cache_misses = reg.GetCounter("optimizer.whatif_cache.misses");
  metrics_.cache_invalidations =
      reg.GetCounter("optimizer.whatif_cache.invalidations");
  metrics_.cache_inserts = reg.GetCounter("optimizer.whatif_cache.inserts");
  metrics_.plan_seconds = reg.GetHistogram("optimizer.plan.seconds");
  metrics_.whatif_seconds = reg.GetHistogram("optimizer.whatif.seconds");
}

double QueryOptimizer::CombinedSelectivity(const Query& q,
                                           TableId table) const {
  double s = 1.0;
  for (const auto& pred : q.selections()) {
    if (pred.column.table == table) {
      s *= EstimateSelectivity(*catalog_, pred);
    }
  }
  return s;
}

QueryOptimizer::AccessPath QueryOptimizer::BestAccessPath(
    const Query& q, TableId table, const IndexConfiguration& config,
    std::unordered_map<TableKey, AccessPath, TableKeyHash>* memo) {
  const TableKey key{table, ConfigSigForTable(*catalog_, config, table)};
  if (memo != nullptr) {
    auto it = memo->find(key);
    if (it != memo->end()) {
      ++stats_.subplan_reuses;
      metrics_.memo_hits->Increment();
      return it->second;
    }
    metrics_.memo_misses->Increment();
  }
  const TableSchema& schema = catalog_->table(table);
  const auto selections = q.SelectionsOn(table);
  const double combined_sel = CombinedSelectivity(q, table);

  AccessPath best;
  {
    const CostEstimate est = cost_model_.SeqScan(
        schema, static_cast<int>(selections.size()), combined_sel);
    best.cost = est.cost;
    best.rows = est.rows;
    best.index_id = kInvalidIndexId;
  }
  // Try every available index whose key prefix matches this table's
  // selections. For a composite index on (a, b, ...) the usable prefix is
  // a run of equality predicates optionally terminated by one range
  // predicate (standard B+-tree prefix rule); single-column indexes are
  // the one-column special case.
  for (IndexId id : config.ids()) {
    const IndexDescriptor& desc = catalog_->index(id);
    if (desc.column.table != table) continue;
    double driving_sel = 1.0;
    int consumed = 0;
    const SelectionPredicate* leading = nullptr;
    for (const ColumnRef& col : desc.columns) {
      const SelectionPredicate* match = nullptr;
      for (const auto& pred : selections) {
        if (pred.column == col) {
          match = &pred;
          break;
        }
      }
      if (match == nullptr) break;
      driving_sel *= EstimateSelectivity(*catalog_, *match);
      if (leading == nullptr) leading = match;
      ++consumed;
      if (!match->is_equality()) break;  // a range ends the usable prefix
    }
    if (consumed == 0) continue;
    const int residual = static_cast<int>(selections.size()) - consumed;
    CostEstimate plain =
        cost_model_.IndexScan(schema, desc, driving_sel, residual);
    CostEstimate bitmap =
        cost_model_.BitmapScan(schema, desc, driving_sel, residual);
    const bool use_bitmap = bitmap.cost < plain.cost;
    CostEstimate est = use_bitmap ? bitmap : plain;
    est.rows =
        std::max(1.0, static_cast<double>(schema.row_count()) * combined_sel);
    if (est.cost < best.cost) {
      best.cost = est.cost;
      best.rows = est.rows;
      best.index_id = id;
      best.index_predicate = *leading;
      best.scan_type = use_bitmap ? PlanNodeType::kBitmapScan
                                  : PlanNodeType::kIndexScan;
    }
  }
  if (memo != nullptr) memo->emplace(key, best);
  return best;
}

std::unique_ptr<PlanNode> QueryOptimizer::MakeScanNode(
    const Query& q, TableId table, const AccessPath& path) const {
  auto node = std::make_unique<PlanNode>();
  node->table = table;
  node->cost = path.cost;
  node->rows = path.rows;
  if (path.index_id == kInvalidIndexId) {
    node->type = PlanNodeType::kSeqScan;
    node->filter_predicates = q.SelectionsOn(table);
  } else {
    node->type = path.scan_type;
    node->index_id = path.index_id;
    node->index_predicate = path.index_predicate;
    for (const auto& pred : q.SelectionsOn(table)) {
      if (!(pred == path.index_predicate)) {
        node->filter_predicates.push_back(pred);
      }
    }
  }
  return node;
}

double QueryOptimizer::JoinSelectivity(
    const Query& q, uint32_t mask, TableId t,
    const std::vector<TableId>& tables,
    std::vector<JoinPredicate>* connecting) const {
  auto in_mask = [&](TableId table) {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (tables[i] == table) return (mask & (1u << i)) != 0;
    }
    return false;
  };
  double sel = 1.0;
  for (const auto& j : q.joins()) {
    const bool left_in = in_mask(j.left.table);
    const bool right_in = in_mask(j.right.table);
    const bool left_t = j.left.table == t;
    const bool right_t = j.right.table == t;
    if ((left_in && right_t) || (right_in && left_t)) {
      const int64_t ndv_l = catalog_->table(j.left.table)
                                .column_stats(j.left.column)
                                .ndv();
      const int64_t ndv_r = catalog_->table(j.right.table)
                                .column_stats(j.right.column)
                                .ndv();
      sel /= static_cast<double>(std::max<int64_t>(1, std::max(ndv_l, ndv_r)));
      if (connecting != nullptr) connecting->push_back(j);
    }
  }
  return sel;
}

PlanResult QueryOptimizer::OptimizeWrite(
    const Query& q, const IndexConfiguration& config,
    std::unordered_map<TableKey, AccessPath, TableKeyHash>* memo) {
  const TableId table = q.write_table();
  const TableSchema& schema = catalog_->table(table);
  PlanResult result;

  // Locate + heap phases.
  double affected = 0.0;
  if (q.kind() == StatementKind::kInsert) {
    affected = static_cast<double>(q.insert_rows());
    const CostEstimate heap = cost_model_.HeapAppend(schema, affected);
    result.cost = heap.cost;
  } else {
    const AccessPath locate = BestAccessPath(q, table, config, memo);
    affected = locate.rows;
    const CostEstimate heap = cost_model_.HeapWriteBack(schema, affected);
    result.cost = locate.cost + heap.cost;
    result.plan = MakeScanNode(q, table, locate);
  }
  result.rows = affected;

  // Index maintenance: every config index on the target table that the
  // statement dirties. An UPDATE maintains only indexes over a SET column
  // and pays erase + insert per row; INSERT/DELETE maintain every index.
  for (IndexId id : config.ids()) {
    const IndexDescriptor& desc = catalog_->index(id);
    if (desc.column.table != table) continue;
    double entries = affected;
    if (q.kind() == StatementKind::kUpdate) {
      bool touches = false;
      for (const ColumnRef& col : desc.columns) {
        for (const SetClause& s : q.set_clauses()) {
          if (s.column == col.column) touches = true;
        }
      }
      if (!touches) continue;
      entries = affected * 2.0;
    }
    result.maintenance_cost +=
        cost_model_.IndexMaintenanceCost(schema, desc, entries);
  }
  result.cost += result.maintenance_cost;
  return result;
}

PlanResult QueryOptimizer::OptimizeInternal(
    const Query& q, const IndexConfiguration& config,
    std::unordered_map<TableKey, AccessPath, TableKeyHash>* memo) {
  if (q.is_write()) return OptimizeWrite(q, config, memo);
  const auto& tables = q.tables();
  const size_t n = tables.size();
  COLT_CHECK(n >= 1 && n <= 16) << "unsupported table count " << n;

  // Leaf access paths.
  std::vector<AccessPath> leaf(n);
  for (size_t i = 0; i < n; ++i) {
    leaf[i] = BestAccessPath(q, tables[i], config, memo);
  }

  if (n == 1) {
    PlanResult result;
    result.plan = MakeScanNode(q, tables[0], leaf[0]);
    result.cost = leaf[0].cost;
    result.rows = leaf[0].rows;
    return result;
  }

  // Left-deep DP over table subsets.
  struct Entry {
    double cost = 0.0;
    double rows = 0.0;
    std::unique_ptr<PlanNode> plan;
    bool valid = false;
  };
  const uint32_t full = (1u << n) - 1;
  std::vector<Entry> dp(full + 1);
  for (size_t i = 0; i < n; ++i) {
    Entry& e = dp[1u << i];
    e.cost = leaf[i].cost;
    e.rows = leaf[i].rows;
    e.plan = MakeScanNode(q, tables[i], leaf[i]);
    e.valid = true;
  }

  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (!dp[mask].valid) continue;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t bit = 1u << i;
      if (mask & bit) continue;
      std::vector<JoinPredicate> connecting;
      const double join_sel =
          JoinSelectivity(q, mask, tables[i], tables, &connecting);
      const bool connected = !connecting.empty();
      // Disallow cross products unless the join graph is disconnected and
      // this is the only way forward; handled by a fallback pass below.
      if (!connected) continue;

      const CostEstimate outer{dp[mask].cost, dp[mask].rows};
      const CostEstimate inner{leaf[i].cost, leaf[i].rows};
      const TableSchema& inner_schema = catalog_->table(tables[i]);
      const double inner_filter_sel = CombinedSelectivity(q, tables[i]);

      struct Candidate {
        CostEstimate est;
        PlanNodeType type;
        IndexId probe_index = kInvalidIndexId;
        JoinPredicate pred;
      };
      std::vector<Candidate> candidates;
      candidates.push_back(
          {cost_model_.HashJoin(outer, inner, join_sel),
           PlanNodeType::kHashJoin, kInvalidIndexId, connecting.front()});
      candidates.push_back(
          {cost_model_.NestLoopJoin(outer, inner, join_sel),
           PlanNodeType::kNestLoopJoin, kInvalidIndexId, connecting.front()});
      // Index nested-loop: probe an index on the inner join column.
      for (const auto& j : connecting) {
        const ColumnRef inner_col =
            (j.left.table == tables[i]) ? j.left : j.right;
        for (IndexId id : config.ids()) {
          const IndexDescriptor& desc = catalog_->index(id);
          if (desc.column != inner_col) continue;
          const int64_t ndv =
              std::max<int64_t>(1, inner_schema.column_stats(inner_col.column)
                                       .ndv());
          CostEstimate probe = cost_model_.IndexProbe(
              inner_schema, desc, 1.0 / static_cast<double>(ndv));
          // Residual selections on the inner table filter probe output.
          probe.cost += probe.rows *
                        static_cast<double>(q.SelectionsOn(tables[i]).size()) *
                        cost_model_.params().cpu_operator_cost;
          CostEstimate est;
          est.cost = outer.cost + outer.rows * probe.cost;
          est.rows = std::max(
              1.0, outer.rows * static_cast<double>(inner_schema.row_count()) *
                       inner_filter_sel * join_sel);
          candidates.push_back({est, PlanNodeType::kIndexNLJoin, id, j});
        }
      }

      for (auto& c : candidates) {
        Entry& target = dp[mask | bit];
        if (target.valid && target.cost <= c.est.cost) continue;
        auto node = std::make_unique<PlanNode>();
        node->type = c.type;
        node->cost = c.est.cost;
        node->rows = c.est.rows;
        node->join_predicate = c.pred;
        node->left = dp[mask].plan->Clone();
        if (c.type == PlanNodeType::kIndexNLJoin) {
          node->table = tables[i];
          node->index_id = c.probe_index;
          node->filter_predicates = q.SelectionsOn(tables[i]);
        } else {
          node->right = MakeScanNode(q, tables[i], leaf[i]);
        }
        target.cost = c.est.cost;
        target.rows = c.est.rows;
        target.plan = std::move(node);
        target.valid = true;
      }
    }
  }

  // Fallback for disconnected join graphs: greedily cross-join remaining
  // components with hash joins (rare in our workloads, but keeps the
  // optimizer total).
  if (!dp[full].valid) {
    // Find the largest valid mask and extend it by cross products.
    uint32_t best_mask = 0;
    for (uint32_t mask = 1; mask <= full; ++mask) {
      if (dp[mask].valid &&
          __builtin_popcount(mask) > __builtin_popcount(best_mask)) {
        best_mask = mask;
      }
    }
    while (best_mask != full) {
      for (size_t i = 0; i < n; ++i) {
        const uint32_t bit = 1u << i;
        if (best_mask & bit) continue;
        const CostEstimate outer{dp[best_mask].cost, dp[best_mask].rows};
        const CostEstimate inner{leaf[i].cost, leaf[i].rows};
        std::vector<JoinPredicate> connecting;
        const double join_sel =
            JoinSelectivity(q, best_mask, tables[i], tables, &connecting);
        CostEstimate est = cost_model_.HashJoin(outer, inner, join_sel);
        auto node = std::make_unique<PlanNode>();
        node->type = PlanNodeType::kHashJoin;
        node->cost = est.cost;
        node->rows = est.rows;
        if (!connecting.empty()) node->join_predicate = connecting.front();
        node->left = std::move(dp[best_mask].plan);
        node->right = MakeScanNode(q, tables[i], leaf[i]);
        Entry& target = dp[best_mask | bit];
        target.cost = est.cost;
        target.rows = est.rows;
        target.plan = std::move(node);
        target.valid = true;
        best_mask |= bit;
        break;
      }
    }
  }

  PlanResult result;
  result.cost = dp[full].cost;
  result.rows = dp[full].rows;
  result.plan = std::move(dp[full].plan);
  return result;
}

PlanResult QueryOptimizer::Optimize(const Query& q,
                                    const IndexConfiguration& config) {
  ++stats_.optimize_calls;
  metrics_.optimize_calls->Increment();
  ScopedTimer timer(metrics_.plan_seconds);
  std::unordered_map<TableKey, AccessPath, TableKeyHash> memo;
  return OptimizeInternal(q, config, &memo);
}

std::vector<IndexGain> QueryOptimizer::WhatIfOptimize(
    const Query& q, const IndexConfiguration& materialized,
    const std::vector<IndexId>& probation) {
  ++stats_.optimize_calls;
  metrics_.optimize_calls->Increment();
  metrics_.whatif_calls->Increment();
  ScopedTimer timer(metrics_.whatif_seconds);
  Tracer::Scope span =
      Tracer::Default().StartSpan("whatif", "optimizer");
  span.AddAttr("probes", static_cast<int64_t>(probation.size()));
  // The memo is shared across the base optimization and every what-if
  // re-optimization: access paths of tables unaffected by the probed index
  // are reused rather than recomputed. The cross-epoch cache sits one
  // level up: it memoizes whole plan costs across WhatIfOptimize calls,
  // keyed by exact query signature and configuration signature, so a
  // cached cost is the very double this expression tree would produce.
  std::unordered_map<TableKey, AccessPath, TableKeyHash> memo;
  const bool caching = shared_cache_ != nullptr || segment_cache_ != nullptr;
  const uint64_t qhash = caching ? QueryPlanSignature(q) : 0;
  const double base = CachedCost(q, qhash, materialized, &memo);
  std::vector<IndexGain> gains;
  gains.reserve(probation.size());
  for (IndexId id : probation) {
    ++stats_.whatif_calls;
    metrics_.whatif_probes->Increment();
    IndexGain g;
    g.index = id;
    if (materialized.Contains(id)) {
      // Pretend the materialized index is unavailable; the gain is the
      // resulting increase in execution cost (paper §4.1, QueryGainM).
      g.gain = CachedCost(q, qhash, materialized.Without(id), &memo) - base;
    } else {
      g.gain = base - CachedCost(q, qhash, materialized.With(id), &memo);
    }
    gains.push_back(g);
  }
  return gains;
}

double QueryOptimizer::CachedCost(
    const Query& q, uint64_t qhash, const IndexConfiguration& config,
    std::unordered_map<TableKey, AccessPath, TableKeyHash>* memo) {
  const bool caching = shared_cache_ != nullptr || segment_cache_ != nullptr;
  uint64_t version = 0;
  WhatIfCacheKey key;
  if (caching) {
    version = catalog_->version();
    key = WhatIfCacheKey{qhash, config.Signature()};
    if (segment_cache_ != nullptr) {
      // colt-lint: allow-next-line(thread-role): segment_cache_ is this
      // worker's private fresh-entry segment (one per pool slot, no
      // sharing); owner-only Lookup guards the shared frozen cache's
      // LRU-touch path, which workers reach via Peek instead.
      if (const CachedPlanCost* e = segment_cache_->Lookup(key, version)) {
        metrics_.cache_hits->Increment();
        return e->cost;
      }
    }
    if (shared_cache_ != nullptr) {
      bool stale = false;
      if (const CachedPlanCost* e = shared_cache_->Peek(key, version,
                                                       &stale)) {
        metrics_.cache_hits->Increment();
        return e->cost;
      }
      if (stale) metrics_.cache_invalidations->Increment();
    }
    metrics_.cache_misses->Increment();
  }
  const PlanResult result = OptimizeInternal(q, config, memo);
  if (segment_cache_ != nullptr) {
    CachedPlanCost entry;
    entry.cost = result.cost;
    entry.rows = result.rows;
    entry.used_index_bitmap = UsedIndexBitmap(result, config);
    entry.catalog_version = version;
    segment_cache_->Insert(key, entry);
    metrics_.cache_inserts->Increment();
  }
  return result.cost;
}

double QueryOptimizer::CrudeGain(const SelectionPredicate& pred,
                                 const IndexDescriptor& index) const {
  if (pred.column != index.column) return 0.0;
  const TableSchema& schema = catalog_->table(pred.column.table);
  const double sel = EstimateSelectivity(*catalog_, pred);
  const double seq = cost_model_.SeqScan(schema, 1, sel).cost;
  const double idx =
      std::min(cost_model_.IndexScan(schema, index, sel, 0).cost,
               cost_model_.BitmapScan(schema, index, sel, 0).cost);
  return std::max(0.0, seq - idx);
}

double QueryOptimizer::CompositeCrudeGain(
    const std::vector<SelectionPredicate>& table_preds,
    const IndexDescriptor& index) const {
  if (table_preds.empty()) return 0.0;
  const TableSchema& schema =
      catalog_->table(table_preds.front().column.table);
  double combined = 1.0;
  for (const auto& pred : table_preds) {
    combined *= EstimateSelectivity(*catalog_, pred);
  }
  // Usable prefix selectivity under the B+-tree prefix rule.
  double driving = 1.0;
  int consumed = 0;
  for (const ColumnRef& col : index.columns) {
    const SelectionPredicate* match = nullptr;
    for (const auto& pred : table_preds) {
      if (pred.column == col) {
        match = &pred;
        break;
      }
    }
    if (match == nullptr) break;
    driving *= EstimateSelectivity(*catalog_, *match);
    ++consumed;
    if (!match->is_equality()) break;
  }
  if (consumed == 0) return 0.0;
  const double seq =
      cost_model_.SeqScan(schema, static_cast<int>(table_preds.size()),
                          combined)
          .cost;
  const int residual = static_cast<int>(table_preds.size()) - consumed;
  const double idx =
      std::min(cost_model_.IndexScan(schema, index, driving, residual).cost,
               cost_model_.BitmapScan(schema, index, driving, residual).cost);
  return std::max(0.0, seq - idx);
}

std::vector<IndexId> QueryOptimizer::RelevantIndexes(
    const Query& q, const IndexConfiguration& config) const {
  std::vector<IndexId> out;
  for (IndexId id : config.ids()) {
    const IndexDescriptor& desc = catalog_->index(id);
    bool relevant = false;
    for (const auto& s : q.selections()) {
      for (const ColumnRef& col : desc.columns) {
        if (s.column == col) relevant = true;
      }
    }
    for (const auto& j : q.joins()) {
      // Joins can only probe through the leading column.
      if (j.left == desc.column || j.right == desc.column) relevant = true;
    }
    // A write affects (negatively) every index it must maintain, whether
    // or not the WHERE clause could use it.
    if (q.is_write() && desc.column.table == q.write_table()) {
      if (q.kind() != StatementKind::kUpdate) {
        relevant = true;
      } else {
        for (const ColumnRef& col : desc.columns) {
          for (const SetClause& s : q.set_clauses()) {
            if (s.column == col.column) relevant = true;
          }
        }
      }
    }
    if (relevant) out.push_back(id);
  }
  return out;
}

}  // namespace colt
