#include "exec/executor.h"

// colt-lint: allow(metric-name): per-operator histograms are registered from
// the fixed kOpNames table of dotted snake_case literals in the constructor;
// the indexed lookup is not a dynamic name.

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/epoch.h"

namespace colt {

namespace {

/// Tuples per heap page for page-accounting purposes.
int64_t TuplesPerPage(const TableSchema& schema) {
  const int64_t per_page = static_cast<int64_t>(
      kPageSizeBytes * kPageFillFactor / schema.tuple_bytes());
  return std::max<int64_t>(1, per_page);
}

}  // namespace

Executor::Executor(const Database* db, MetricsRegistry* registry) : db_(db) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Default();
  static constexpr const char* kOpNames[kNumOperators] = {
      "exec.seq_scan.seconds",      "exec.index_scan.seconds",
      "exec.bitmap_scan.seconds",   "exec.nest_loop_join.seconds",
      "exec.index_nl_join.seconds", "exec.hash_join.seconds",
  };
  for (size_t i = 0; i < kNumOperators; ++i) {
    op_seconds_[i] = reg.GetHistogram(kOpNames[i]);
  }
  op_invocations_ = reg.GetCounter("exec.operator.invocations");
  execute_seconds_ = reg.GetHistogram("exec.execute.seconds");
}

int64_t Executor::DistinctHeapPages(TableId table,
                                    const std::vector<RowId>& rows) const {
  const int64_t per_page = TuplesPerPage(db_->catalog().table(table));
  std::unordered_set<int64_t> pages;
  pages.reserve(rows.size());
  for (RowId r : rows) pages.insert(r / per_page);
  return static_cast<int64_t>(pages.size());
}

Result<std::vector<Executor::BoundRow>> Executor::Run(const PlanNode& node,
                                                      ExecutionResult* acc) {
  op_invocations_->Increment();
  ScopedTimer op_timer(op_seconds_[static_cast<size_t>(node.type)]);
  switch (node.type) {
    case PlanNodeType::kSeqScan: {
      if (!db_->HasData(node.table)) {
        return Status::FailedPrecondition("table not materialized");
      }
      const TableData& data = db_->data(node.table);
      const TableSchema& schema = db_->catalog().table(node.table);
      acc->pages_seq += schema.heap_pages();
      std::vector<BoundRow> out;
      for (RowId r = 0; r < data.row_count(); ++r) {
        if (!data.live(r)) continue;  // tombstoned by a DELETE
        ++acc->tuples_processed;
        bool pass = true;
        for (const auto& pred : node.filter_predicates) {
          if (!pred.Matches(Value(node.table, pred.column.column, r))) {
            pass = false;
            break;
          }
        }
        if (pass) out.push_back(BoundRow{{{node.table, r}}});
      }
      return out;
    }
    case PlanNodeType::kIndexScan: {
      const BTreeIndex* resolved = snapshot_->Find(node.index_id);
      if (resolved == nullptr) {
        return Status::FailedPrecondition("index not built: " +
                                          std::to_string(node.index_id));
      }
      const BTreeIndex& index = *resolved;
      std::vector<RowId> matches;
      const int64_t leaves =
          index.RangeScan(node.index_predicate.lo, node.index_predicate.hi,
                          &matches);
      acc->pages_index += leaves + index.height();
      acc->pages_random += DistinctHeapPages(node.table, matches);
      std::vector<BoundRow> out;
      for (RowId r : matches) {
        ++acc->tuples_processed;
        bool pass = true;
        for (const auto& pred : node.filter_predicates) {
          if (!pred.Matches(Value(node.table, pred.column.column, r))) {
            pass = false;
            break;
          }
        }
        if (pass) out.push_back(BoundRow{{{node.table, r}}});
      }
      return out;
    }
    case PlanNodeType::kBitmapScan: {
      const BTreeIndex* resolved = snapshot_->Find(node.index_id);
      if (resolved == nullptr) {
        return Status::FailedPrecondition("index not built: " +
                                          std::to_string(node.index_id));
      }
      const BTreeIndex& index = *resolved;
      std::vector<RowId> matches;
      const int64_t leaves =
          index.RangeScan(node.index_predicate.lo, node.index_predicate.hi,
                          &matches);
      acc->pages_index += leaves + index.height();
      // The bitmap step: visit the heap in physical order, each page once.
      std::sort(matches.begin(), matches.end());
      acc->pages_bitmap += DistinctHeapPages(node.table, matches);
      std::vector<BoundRow> out;
      for (RowId r : matches) {
        ++acc->tuples_processed;
        bool pass = true;
        for (const auto& pred : node.filter_predicates) {
          if (!pred.Matches(Value(node.table, pred.column.column, r))) {
            pass = false;
            break;
          }
        }
        if (pass) out.push_back(BoundRow{{{node.table, r}}});
      }
      return out;
    }
    case PlanNodeType::kHashJoin: {
      COLT_ASSIGN_OR_RETURN(std::vector<BoundRow> left, Run(*node.left, acc));
      COLT_ASSIGN_OR_RETURN(std::vector<BoundRow> right,
                            Run(*node.right, acc));
      // Build on the smaller side.
      const JoinPredicate& j = node.join_predicate;
      const bool build_left = left.size() <= right.size();
      std::vector<BoundRow>& build = build_left ? left : right;
      std::vector<BoundRow>& probe = build_left ? right : left;
      auto key_col = [&](const BoundRow& row, bool /*from_build*/) -> int64_t {
        // Determine which side of the predicate binds in this row.
        const RowId lr = row.RowFor(j.left.table);
        if (lr >= 0) return Value(j.left.table, j.left.column, lr);
        const RowId rr = row.RowFor(j.right.table);
        return Value(j.right.table, j.right.column, rr);
      };
      std::unordered_map<int64_t, std::vector<const BoundRow*>> table;
      table.reserve(build.size());
      for (const auto& row : build) {
        ++acc->tuples_processed;
        table[key_col(row, true)].push_back(&row);
      }
      std::vector<BoundRow> out;
      for (const auto& row : probe) {
        ++acc->tuples_processed;
        auto it = table.find(key_col(row, false));
        if (it == table.end()) continue;
        for (const BoundRow* b : it->second) {
          BoundRow merged = row;
          merged.bindings.insert(merged.bindings.end(), b->bindings.begin(),
                                 b->bindings.end());
          out.push_back(std::move(merged));
        }
      }
      return out;
    }
    case PlanNodeType::kNestLoopJoin: {
      COLT_ASSIGN_OR_RETURN(std::vector<BoundRow> outer, Run(*node.left, acc));
      COLT_ASSIGN_OR_RETURN(std::vector<BoundRow> inner,
                            Run(*node.right, acc));
      const JoinPredicate& j = node.join_predicate;
      std::vector<BoundRow> out;
      for (const auto& o : outer) {
        for (const auto& i : inner) {
          ++acc->tuples_processed;
          const BoundRow& left_holder =
              o.RowFor(j.left.table) >= 0 ? o : i;
          const BoundRow& right_holder =
              o.RowFor(j.right.table) >= 0 ? o : i;
          const RowId lr = left_holder.RowFor(j.left.table);
          const RowId rr = right_holder.RowFor(j.right.table);
          if (lr < 0 || rr < 0) continue;
          if (Value(j.left.table, j.left.column, lr) !=
              Value(j.right.table, j.right.column, rr)) {
            continue;
          }
          BoundRow merged = o;
          merged.bindings.insert(merged.bindings.end(), i.bindings.begin(),
                                 i.bindings.end());
          out.push_back(std::move(merged));
        }
      }
      return out;
    }
    case PlanNodeType::kIndexNLJoin: {
      COLT_ASSIGN_OR_RETURN(std::vector<BoundRow> outer, Run(*node.left, acc));
      const BTreeIndex* resolved = snapshot_->Find(node.index_id);
      if (resolved == nullptr) {
        return Status::FailedPrecondition("probe index not built: " +
                                          std::to_string(node.index_id));
      }
      const BTreeIndex& index = *resolved;
      const JoinPredicate& j = node.join_predicate;
      // Which side of the join predicate is the inner (probed) table?
      const bool inner_is_left = (j.left.table == node.table);
      // (The probe below is written BTreeIndex::Lookup so the thread-role
      // lint resolves it strictly; the unqualified name would widen onto
      // the owner-only WhatIfCache::Lookup.)
      const ColumnRef outer_col = inner_is_left ? j.right : j.left;
      std::vector<BoundRow> out;
      std::vector<RowId> matches;
      for (const auto& o : outer) {
        const RowId orow = o.RowFor(outer_col.table);
        if (orow < 0) {
          return Status::Internal("outer row missing join binding");
        }
        const int64_t key = Value(outer_col.table, outer_col.column, orow);
        matches.clear();
        const int64_t leaves = index.BTreeIndex::Lookup(key, &matches);
        acc->pages_index += leaves + index.height();
        acc->pages_random += DistinctHeapPages(node.table, matches);
        for (RowId r : matches) {
          ++acc->tuples_processed;
          bool pass = true;
          for (const auto& pred : node.filter_predicates) {
            if (!pred.Matches(Value(node.table, pred.column.column, r))) {
              pass = false;
              break;
            }
          }
          if (!pass) continue;
          BoundRow merged = o;
          merged.bindings.emplace_back(node.table, r);
          out.push_back(std::move(merged));
        }
      }
      return out;
    }
  }
  return Status::Internal("unknown plan node type");
}

Result<ExecutionResult> Executor::Execute(const PlanNode& plan) {
  // Pin the epoch, then capture the snapshot: every tree the plan touches
  // stays alive for the whole query even if the owner drops it mid-flight.
  EpochGuard guard;
  return ExecuteWithSnapshot(plan, db_->index_snapshot());
}

Result<ExecutionResult> Executor::ExecuteWithSnapshot(
    const PlanNode& plan, const Database::IndexSnapshot* snapshot) {
  ScopedTimer timer(execute_seconds_);
  snapshot_ = snapshot;
  ExecutionResult acc;
  COLT_ASSIGN_OR_RETURN(std::vector<BoundRow> rows, Run(plan, &acc));
  acc.output_rows = static_cast<int64_t>(rows.size());
  snapshot_ = nullptr;
  return acc;
}

Result<ExecutionResult> Executor::ExecuteWrite(Database* db, const Query& q,
                                               const PlanNode* locate_plan) {
  if (db != db_) {
    return Status::InvalidArgument(
        "ExecuteWrite requires the executor's own database");
  }
  if (!q.is_write()) {
    return Status::InvalidArgument("ExecuteWrite requires a write statement");
  }
  const TableId table = q.write_table();
  if (!db_->HasData(table)) {
    return Status::FailedPrecondition("table not materialized");
  }
  ScopedTimer timer(execute_seconds_);
  EpochGuard guard;
  snapshot_ = db_->index_snapshot();
  ExecutionResult acc;

  // Locate the affected rows (UPDATE/DELETE): run the optimizer's access
  // path when provided so read-side accounting matches the plan, else fall
  // back to a sequential scan over live rows.
  std::vector<RowId> matched;
  if (q.kind() != StatementKind::kInsert) {
    if (locate_plan != nullptr) {
      Result<std::vector<BoundRow>> rows = Run(*locate_plan, &acc);
      if (!rows.ok()) {
        snapshot_ = nullptr;
        return rows.status();
      }
      matched.reserve(rows->size());
      for (const BoundRow& row : *rows) matched.push_back(row.RowFor(table));
    } else {
      const TableData& data = db_->data(table);
      acc.pages_seq += db_->catalog().table(table).heap_pages();
      const auto selections = q.selections();
      for (RowId r = 0; r < data.row_count(); ++r) {
        if (!data.live(r)) continue;
        ++acc.tuples_processed;
        bool pass = true;
        for (const auto& pred : selections) {
          if (!pred.Matches(Value(table, pred.column.column, r))) {
            pass = false;
            break;
          }
        }
        if (pass) matched.push_back(r);
      }
    }
  }
  snapshot_ = nullptr;

  Result<Database::WriteOutcome> outcome{Database::WriteOutcome{}};
  switch (q.kind()) {
    case StatementKind::kInsert:
      outcome = db->InsertRows(table, q.insert_rows());
      break;
    case StatementKind::kUpdate: {
      std::vector<std::pair<ColumnId, int64_t>> sets;
      sets.reserve(q.set_clauses().size());
      for (const SetClause& s : q.set_clauses()) {
        sets.emplace_back(s.column, s.value);
      }
      outcome = db->UpdateRows(table, matched, sets);
      break;
    }
    case StatementKind::kDelete:
      outcome = db->DeleteRows(table, matched);
      break;
    case StatementKind::kSelect:
      return Status::Internal("unreachable: select in ExecuteWrite");
  }
  COLT_RETURN_IF_ERROR(outcome.status());
  acc.pages_heap_write += DistinctHeapPages(table, outcome->rows);
  acc.pages_index_write += outcome->index_entry_ops;
  acc.rows_written += static_cast<int64_t>(outcome->rows.size());
  acc.output_rows = static_cast<int64_t>(outcome->rows.size());
  return acc;
}

}  // namespace colt
