#ifndef COLT_EXEC_EXECUTOR_H_
#define COLT_EXEC_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "query/query.h"
#include "storage/database.h"

namespace colt {

/// Physical-execution accounting. Page counts come from the actual data
/// access pattern (distinct heap pages touched, B+-tree leaves walked), so
/// tests can validate the optimizer's I/O estimates against reality.
struct ExecutionResult {
  /// Number of result rows produced by the root operator.
  int64_t output_rows = 0;
  /// Heap pages read sequentially (full scans).
  int64_t pages_seq = 0;
  /// Heap pages fetched randomly (index lookups).
  int64_t pages_random = 0;
  /// Heap pages fetched in sorted (near-sequential) order by bitmap scans.
  int64_t pages_bitmap = 0;
  /// Index (leaf + internal) pages touched.
  int64_t pages_index = 0;
  /// Tuples processed across all operators.
  int64_t tuples_processed = 0;
  /// Heap pages dirtied by a write statement (distinct pages holding the
  /// appended/updated/deleted rows). Always 0 for reads.
  int64_t pages_heap_write = 0;
  /// Index leaf-page touches by write maintenance: one per B+-tree entry
  /// insert/erase applied (each entry operation lands in exactly one
  /// leaf). Always 0 for reads.
  int64_t pages_index_write = 0;
  /// Rows a write statement appended/updated/deleted. Always 0 for reads.
  int64_t rows_written = 0;

  /// Cost-model units implied by the *measured* page/tuple counts; lets the
  /// harness compare the estimated plan cost with observed work. Write
  /// pages use the same currency: heap write-backs are sequential (the
  /// pages are resident from the locate scan or appended in order), index
  /// leaf touches are random.
  double MeasuredCost(const CostParams& params) const {
    // Bitmap pages are between sequential and random; charge the midpoint.
    const double bitmap_page_cost =
        (params.seq_page_cost + params.random_page_cost) / 2.0;
    return pages_seq * params.seq_page_cost +
           pages_bitmap * bitmap_page_cost +
           (pages_random + pages_index) * params.random_page_cost +
           tuples_processed * params.cpu_tuple_cost +
           pages_heap_write * params.seq_page_cost +
           pages_index_write * params.random_page_cost;
  }
};

/// Interprets physical plans against materialized table data and built
/// B+-tree indexes. Intended for reduced-scale validation and the examples;
/// the paper-scale experiments use the cost model's simulated timings.
///
/// Thread model: an Executor instance is not shared across threads, but
/// any number of instances may execute concurrently against the same
/// Database. Each Execute() pins an epoch guard and resolves indexes
/// through the database's published snapshot, so it never races with the
/// owner thread installing or dropping indexes (DESIGN.md §15).
class Executor {
 public:
  /// `registry` selects where this executor's instruments live; null means
  /// MetricsRegistry::Default(). Serving threads pass their per-client
  /// buffer registry (per-worker-buffer rule, DESIGN.md §10) so operator
  /// timings never race on the main registry. Construct on the owner
  /// thread; Execute may then run on any thread.
  COLT_OWNER_ONLY explicit Executor(const Database* db,
                                    MetricsRegistry* registry = nullptr);

  /// Executes `plan`. Requires every scanned table to be materialized and
  /// every index used by the plan to be physically built (in the published
  /// snapshot). Safe to call concurrently with owner-side index installs
  /// and drops.
  COLT_THREAD_NEUTRAL Result<ExecutionResult> Execute(const PlanNode& plan);

  /// Executes `plan` against a caller-chosen index snapshot instead of the
  /// currently published one. The caller is responsible for keeping
  /// `snapshot` alive across the call — the serving layer does so by
  /// pinning an epoch guard from before any retire could have unlinked it
  /// (DESIGN.md §15). This is how a serving epoch stays a pure function of
  /// its plans: mid-epoch installs publish new snapshots without changing
  /// what the in-flight epoch's queries resolve.
  COLT_THREAD_NEUTRAL Result<ExecutionResult> ExecuteWithSnapshot(
      const PlanNode& plan, const Database::IndexSnapshot* snapshot);

  /// Physically applies one INSERT/UPDATE/DELETE statement to `db` (which
  /// must be the database this executor was constructed over), returning
  /// measured write accounting in the same page currency as reads
  /// (DESIGN.md §16). `locate_plan` is the optimizer's access path for an
  /// UPDATE/DELETE WHERE clause (PlanResult::plan); when null the affected
  /// rows are located by a sequential scan. Owner thread only — writes
  /// mutate table data and built indexes in place (safe against concurrent
  /// snapshot readers via the OLC trees, but not against other writers).
  COLT_OWNER_ONLY Result<ExecutionResult> ExecuteWrite(
      Database* db, const Query& q, const PlanNode* locate_plan);

 private:
  /// A tuple in flight: one bound row per participating table, ordered as
  /// (table, row) pairs.
  struct BoundRow {
    std::vector<std::pair<TableId, RowId>> bindings;
    RowId RowFor(TableId table) const {
      for (const auto& [t, r] : bindings) {
        if (t == table) return r;
      }
      return -1;
    }
  };

  Result<std::vector<BoundRow>> Run(const PlanNode& node,
                                    ExecutionResult* acc);

  int64_t Value(TableId table, ColumnId column, RowId row) const {
    return db_->data(table).value(column, row);
  }

  /// Distinct heap pages containing `rows` of `table`.
  int64_t DistinctHeapPages(TableId table,
                            const std::vector<RowId>& rows) const;

  const Database* db_;
  /// Index snapshot for the Execute() in flight, captured once per query
  /// under its epoch guard so every operator in the plan sees one
  /// consistent index set.
  const Database::IndexSnapshot* snapshot_ = nullptr;

  /// Per-operator wall-clock histograms, indexed by PlanNodeType. An
  /// operator's time is inclusive of its children (span semantics).
  static constexpr size_t kNumOperators = 6;
  Histogram* op_seconds_[kNumOperators];
  Counter* op_invocations_;
  Histogram* execute_seconds_;
};

}  // namespace colt

#endif  // COLT_EXEC_EXECUTOR_H_
