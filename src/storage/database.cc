#include "storage/database.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "common/logging.h"

namespace colt {

Database::Database(Catalog catalog, uint64_t seed)
    : catalog_(std::move(catalog)), rng_(seed) {
  // Publish an empty snapshot so readers never observe null.
  auto snap = std::make_unique<IndexSnapshot>();
  snap->catalog_version = catalog_.version();
  published_snapshot_.store(snap.release(), std::memory_order_release);
}

Database::~Database() {
  // Readers are quiescent by contract, so the published snapshot can be
  // destroyed in place; anything this database retired earlier is drained
  // opportunistically (stale pins from other databases merely delay it).
  std::unique_ptr<const IndexSnapshot> last(
      published_snapshot_.exchange(nullptr, std::memory_order_acq_rel));
  EpochManager::Global().ReclaimAll();
}

void Database::PublishIndexSnapshot() {
  auto snap = std::make_unique<IndexSnapshot>();
  snap->catalog_version = catalog_.version();
  snap->indexes.reserve(built_indexes_.size());
  for (const auto& [id, tree] : built_indexes_) {
    snap->indexes.emplace(id, tree.get());
  }
  const IndexSnapshot* old =
      published_snapshot_.exchange(snap.release(), std::memory_order_acq_rel);
  EpochManager& epochs = EpochManager::Global();
  if (old != nullptr) epochs.Retire(old);
  // Publish boundaries double as reclaim points: free whatever previous
  // epochs have proven unreachable.
  epochs.TryReclaim();
}

Status Database::MaterializeTable(TableId table, bool refresh_stats) {
  if (table < 0 || table >= catalog_.table_count()) {
    return Status::InvalidArgument("bad table id");
  }
  if (table_data_.count(table) > 0) return Status::OK();
  // Per-table fork keeps generation deterministic regardless of the order
  // in which tables are materialized.
  Rng table_rng(rng_.Next() ^ (static_cast<uint64_t>(table) * 0x9e3779b9ULL));
  TableData data = TableData::Generate(catalog_.table(table), table_rng);
  if (refresh_stats) {
    TableSchema& schema = catalog_.mutable_table(table);
    for (ColumnId c = 0; c < schema.column_count(); ++c) {
      schema.set_column_stats(c, ColumnStats::FromValues(data.column(c)));
    }
    // New statistics change every cost estimate; cached what-if plan costs
    // computed against the old stats must not survive (DESIGN.md §11).
    catalog_.BumpVersion();
  }
  table_data_.emplace(table, std::move(data));
  return Status::OK();
}

Status Database::MaterializeAll(bool refresh_stats) {
  for (TableId t = 0; t < catalog_.table_count(); ++t) {
    COLT_RETURN_IF_ERROR(MaterializeTable(t, refresh_stats));
  }
  return Status::OK();
}

bool Database::HasData(TableId table) const {
  return table_data_.count(table) > 0;
}

const TableData& Database::data(TableId table) const {
  auto it = table_data_.find(table);
  COLT_CHECK(it != table_data_.end())
      << "table " << table << " not materialized";
  return it->second;
}

Status Database::BuildIndex(IndexId id) {
  if (built_indexes_.count(id) > 0) return Status::OK();
  Result<std::unique_ptr<BTreeIndex>> tree = PrepareIndex(id);
  COLT_RETURN_IF_ERROR(tree.status());
  return InstallIndex(id, std::move(tree).value());
}

Result<std::unique_ptr<BTreeIndex>> Database::PrepareIndex(IndexId id) const {
  if (!catalog_.HasIndex(id)) {
    return Status::NotFound("unknown index id " + std::to_string(id));
  }
  const IndexDescriptor& desc = catalog_.index(id);
  if (desc.is_composite()) {
    return Status::NotImplemented(
        "physical builds of composite indexes are not supported; use "
        "statistics-only mode for the multi-column extension");
  }
  if (!HasData(desc.column.table)) {
    return Status::FailedPrecondition(
        "table not materialized; cannot build " + desc.name);
  }
  const TableData& data = table_data_.at(desc.column.table);
  const auto& values = data.column(desc.column.column);
  std::vector<std::pair<int64_t, RowId>> entries;
  entries.reserve(values.size());
  for (size_t row = 0; row < values.size(); ++row) {
    // Tombstoned rows never enter a fresh index, keeping late builds
    // consistent with indexes maintained through the write path.
    if (!data.live(static_cast<int64_t>(row))) continue;
    entries.emplace_back(values[row], static_cast<RowId>(row));
  }
  auto tree = std::make_unique<BTreeIndex>();
  COLT_RETURN_IF_ERROR(tree->BulkLoad(std::move(entries)));
  return tree;
}

Status Database::InstallIndex(IndexId id, std::unique_ptr<BTreeIndex> tree) {
  if (tree == nullptr) {
    return Status::InvalidArgument("InstallIndex requires a staged tree");
  }
  if (built_indexes_.count(id) > 0) return Status::OK();
  built_indexes_.emplace(id, std::move(tree));
  catalog_.BumpVersion();
  PublishIndexSnapshot();
  return Status::OK();
}

void Database::DropIndex(IndexId id) {
  auto it = built_indexes_.find(id);
  if (it == built_indexes_.end()) return;
  // Unlink first (republish a snapshot without the tree), retire second:
  // late-pinning readers can no longer reach the tree, and readers still
  // pinned over the old snapshot keep it alive until their epoch passes.
  std::unique_ptr<BTreeIndex> doomed = std::move(it->second);
  built_indexes_.erase(it);
  catalog_.BumpVersion();
  PublishIndexSnapshot();
  EpochManager::Global().Retire(doomed.release());
}

namespace {

/// SplitMix64 finalizer — the stateless cell-value hash for inserted rows.
uint64_t MixCell(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic synthesized cell for (table, row, col), uniform over the
/// column statistics' value range.
int64_t SynthesizeCell(const ColumnStats& stats, TableId table, int64_t row,
                       ColumnId col) {
  const uint64_t h = MixCell((static_cast<uint64_t>(table) << 48) ^
                             (static_cast<uint64_t>(col) << 40) ^
                             static_cast<uint64_t>(row));
  const int64_t lo = stats.min_value();
  const int64_t hi = stats.max_value();
  if (hi <= lo) return lo;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(h % span);
}

}  // namespace

Result<Database::WriteOutcome> Database::InsertRows(TableId table,
                                                    int64_t count) {
  if (!HasData(table)) {
    return Status::FailedPrecondition("table not materialized");
  }
  if (count < 0) return Status::InvalidArgument("negative insert count");
  TableData& data = table_data_.at(table);
  const TableSchema& schema = catalog_.table(table);
  WriteOutcome outcome;
  outcome.rows.reserve(static_cast<size_t>(count));
  std::vector<int64_t> values(static_cast<size_t>(schema.column_count()));
  for (int64_t i = 0; i < count; ++i) {
    const int64_t position = data.row_count();
    for (ColumnId c = 0; c < schema.column_count(); ++c) {
      values[static_cast<size_t>(c)] =
          SynthesizeCell(schema.column_stats(c), table, position, c);
    }
    const RowId row = data.AppendRow(values);
    for (auto& [id, tree] : built_indexes_) {
      const IndexDescriptor& desc = catalog_.index(id);
      if (desc.column.table != table) continue;
      tree->Insert(values[static_cast<size_t>(desc.column.column)], row);
      ++outcome.index_entry_ops;
    }
    outcome.rows.push_back(row);
  }
  return outcome;
}

Result<Database::WriteOutcome> Database::UpdateRows(
    TableId table, const std::vector<RowId>& rows,
    const std::vector<std::pair<ColumnId, int64_t>>& sets) {
  if (!HasData(table)) {
    return Status::FailedPrecondition("table not materialized");
  }
  TableData& data = table_data_.at(table);
  const TableSchema& schema = catalog_.table(table);
  for (const auto& [col, value] : sets) {
    if (col < 0 || col >= schema.column_count()) {
      return Status::InvalidArgument("unknown SET column");
    }
  }
  WriteOutcome outcome;
  for (RowId row : rows) {
    if (row < 0 || row >= data.row_count() || !data.live(row)) continue;
    // Re-key affected indexes first (the erase needs the old value), then
    // overwrite the cells. Sets are applied in order; later clauses on the
    // same column win, matching the cell state the re-insert used.
    for (auto& [id, tree] : built_indexes_) {
      const IndexDescriptor& desc = catalog_.index(id);
      if (desc.column.table != table) continue;
      int64_t new_key = data.value(desc.column.column, row);
      bool touched = false;
      for (const auto& [col, value] : sets) {
        if (col == desc.column.column) {
          new_key = value;
          touched = true;
        }
      }
      if (!touched) continue;
      tree->Erase(data.value(desc.column.column, row), row);
      tree->Insert(new_key, row);
      outcome.index_entry_ops += 2;
    }
    for (const auto& [col, value] : sets) data.set_value(col, row, value);
    outcome.rows.push_back(row);
  }
  return outcome;
}

Result<Database::WriteOutcome> Database::DeleteRows(
    TableId table, const std::vector<RowId>& rows) {
  if (!HasData(table)) {
    return Status::FailedPrecondition("table not materialized");
  }
  TableData& data = table_data_.at(table);
  WriteOutcome outcome;
  for (RowId row : rows) {
    if (row < 0 || row >= data.row_count() || !data.live(row)) continue;
    for (auto& [id, tree] : built_indexes_) {
      const IndexDescriptor& desc = catalog_.index(id);
      if (desc.column.table != table) continue;
      tree->Erase(data.value(desc.column.column, row), row);
      ++outcome.index_entry_ops;
    }
    data.MarkDeleted(row);
    outcome.rows.push_back(row);
  }
  return outcome;
}

std::vector<IndexId> Database::BuiltIndexIds() const {
  std::vector<IndexId> ids;
  ids.reserve(built_indexes_.size());
  for (const auto& entry : built_indexes_) ids.push_back(entry.first);
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool Database::HasBuiltIndex(IndexId id) const {
  return built_indexes_.count(id) > 0;
}

const BTreeIndex& Database::index(IndexId id) const {
  auto it = built_indexes_.find(id);
  COLT_CHECK(it != built_indexes_.end()) << "index " << id << " not built";
  return *it->second;
}

}  // namespace colt
