#include "storage/tpch_schema.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace colt {

namespace {

int64_t Scaled(int64_t base, double scale) {
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(
                                  static_cast<double>(base) * scale)));
}

ColumnDef Col(const char* name, ColumnType type, int32_t width, int64_t ndv) {
  ColumnDef c;
  c.name = name;
  c.type = type;
  c.width_bytes = width;
  c.ndv = std::max<int64_t>(1, ndv);
  c.indexable = true;
  return c;
}

}  // namespace

Catalog MakeTpchCatalog(const TpchOptions& options) {
  Catalog catalog;
  const TpchCardinalities base;
  const double s = options.scale;
  // Tiny dimension tables keep their fixed TPC-H cardinality; scaling them
  // would distort the schema rather than the data volume.
  const int64_t n_region = base.region;
  const int64_t n_nation = base.nation;
  const int64_t n_supplier = Scaled(base.supplier, s);
  const int64_t n_customer = Scaled(base.customer, s);
  const int64_t n_part = Scaled(base.part, s);
  const int64_t n_partsupp = Scaled(base.partsupp, s);
  const int64_t n_orders = Scaled(base.orders, s);
  const int64_t n_lineitem = Scaled(base.lineitem, s);

  for (int inst = 0; inst < options.instances; ++inst) {
    const std::string suffix = "_" + std::to_string(inst);
    using CT = ColumnType;

    catalog.AddTable(TableSchema(
        "region" + suffix,
        {
            Col("r_regionkey", CT::kInt64, 4, n_region),
            Col("r_name", CT::kString, 25, n_region),
            Col("r_comment", CT::kString, 100, n_region),
        },
        n_region));

    catalog.AddTable(TableSchema(
        "nation" + suffix,
        {
            Col("n_nationkey", CT::kInt64, 4, n_nation),
            Col("n_name", CT::kString, 25, n_nation),
            Col("n_regionkey", CT::kInt64, 4, n_region),
            Col("n_comment", CT::kString, 100, n_nation),
        },
        n_nation));

    catalog.AddTable(TableSchema(
        "supplier" + suffix,
        {
            Col("s_suppkey", CT::kInt64, 4, n_supplier),
            Col("s_name", CT::kString, 25, n_supplier),
            Col("s_address", CT::kString, 40, n_supplier),
            Col("s_nationkey", CT::kInt64, 4, n_nation),
            Col("s_phone", CT::kString, 15, n_supplier),
            Col("s_acctbal", CT::kDecimal, 8, n_supplier),
            Col("s_comment", CT::kString, 80, n_supplier),
        },
        n_supplier));

    catalog.AddTable(TableSchema(
        "customer" + suffix,
        {
            Col("c_custkey", CT::kInt64, 4, n_customer),
            Col("c_name", CT::kString, 25, n_customer),
            Col("c_address", CT::kString, 40, n_customer),
            Col("c_nationkey", CT::kInt64, 4, n_nation),
            Col("c_phone", CT::kString, 15, n_customer),
            Col("c_acctbal", CT::kDecimal, 8, n_customer / 3),
            Col("c_mktsegment", CT::kString, 10, 5),
            Col("c_comment", CT::kString, 100, n_customer),
        },
        n_customer));

    catalog.AddTable(TableSchema(
        "part" + suffix,
        {
            Col("p_partkey", CT::kInt64, 4, n_part),
            Col("p_name", CT::kString, 55, n_part),
            Col("p_mfgr", CT::kString, 25, 5),
            Col("p_brand", CT::kString, 10, 25),
            Col("p_type", CT::kString, 25, 150),
            Col("p_size", CT::kInt64, 4, 50),
            Col("p_container", CT::kString, 10, 40),
            Col("p_retailprice", CT::kDecimal, 8, n_part / 2),
            Col("p_comment", CT::kString, 60, n_part),
        },
        n_part));

    catalog.AddTable(TableSchema(
        "partsupp" + suffix,
        {
            Col("ps_partkey", CT::kInt64, 4, n_part),
            Col("ps_suppkey", CT::kInt64, 4, n_supplier),
            Col("ps_availqty", CT::kInt64, 4, 10'000),
            Col("ps_supplycost", CT::kDecimal, 8, 10'000),
            Col("ps_comment", CT::kString, 150, n_partsupp),
        },
        n_partsupp));

    catalog.AddTable(TableSchema(
        "orders" + suffix,
        {
            Col("o_orderkey", CT::kInt64, 4, n_orders),
            Col("o_custkey", CT::kInt64, 4, n_customer),
            Col("o_orderstatus", CT::kString, 1, 3),
            Col("o_totalprice", CT::kDecimal, 8, n_orders / 2),
            Col("o_orderdate", CT::kDate, 4, 2'406),
            Col("o_orderpriority", CT::kString, 15, 5),
            Col("o_clerk", CT::kString, 15, std::max<int64_t>(1, n_orders / 150)),
            Col("o_shippriority", CT::kInt64, 4, 1),
            Col("o_comment", CT::kString, 60, n_orders),
        },
        n_orders));

    catalog.AddTable(TableSchema(
        "lineitem" + suffix,
        {
            Col("l_orderkey", CT::kInt64, 4, n_orders),
            Col("l_partkey", CT::kInt64, 4, n_part),
            Col("l_suppkey", CT::kInt64, 4, n_supplier),
            Col("l_linenumber", CT::kInt64, 4, 7),
            Col("l_quantity", CT::kDecimal, 8, 50),
            Col("l_extendedprice", CT::kDecimal, 8, n_lineitem / 12),
            Col("l_discount", CT::kDecimal, 8, 11),
            Col("l_tax", CT::kDecimal, 8, 9),
            Col("l_returnflag", CT::kString, 1, 3),
            Col("l_linestatus", CT::kString, 1, 2),
            Col("l_shipdate", CT::kDate, 4, 2'526),
            Col("l_commitdate", CT::kDate, 4, 2'466),
            Col("l_receiptdate", CT::kDate, 4, 2'555),
            Col("l_shipinstruct", CT::kString, 25, 4),
            Col("l_shipmode", CT::kString, 10, 7),
            Col("l_comment", CT::kString, 44, n_lineitem),
        },
        n_lineitem));
  }
  return catalog;
}

}  // namespace colt
