#ifndef COLT_STORAGE_DATABASE_H_
#define COLT_STORAGE_DATABASE_H_

#include <atomic>
#include <memory>
#include <unordered_map>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/btree.h"
#include "storage/table_data.h"

namespace colt {

/// A database instance: catalog plus (optionally materialized) table data
/// and physically built B+-tree indexes.
///
/// Two usage modes:
///  * statistics-only — no tuples are generated; the optimizer and the
///    simulated executor run entirely off catalog statistics (how the
///    paper-scale experiments run);
///  * physical — tables are materialized and indexes are real B+-trees,
///    used by the physical executor for validation and by the examples.
class Database {
 public:
  /// An immutable view of the physically built index set, published
  /// atomically for concurrent readers (DESIGN.md §15). The serving path
  /// resolves trees through the snapshot while holding an `EpochGuard`;
  /// installs and drops build a replacement, swap the published pointer,
  /// and epoch-retire the old snapshot (and any dropped tree), so index
  /// changes never block or invalidate in-flight readers.
  struct IndexSnapshot {
    /// Catalog version at publish time (diagnostics / staleness checks).
    uint64_t catalog_version = 0;
    std::unordered_map<IndexId, const BTreeIndex*> indexes;

    COLT_WORKER_SAFE const BTreeIndex* Find(IndexId id) const {
      auto it = indexes.find(id);
      return it == indexes.end() ? nullptr : it->second;
    }
  };

  explicit Database(Catalog catalog, uint64_t seed = 42);
  /// Requires reader quiescence (no thread still executing a query
  /// against this database); drains this database's epoch-retired
  /// structures where possible.
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const Catalog& catalog() const { return catalog_; }
  Catalog& mutable_catalog() { return catalog_; }

  /// Generates tuples for `table` (idempotent). When `refresh_stats` is
  /// true, replaces the analytic column statistics with exact statistics
  /// computed from the generated data.
  COLT_OWNER_ONLY Status MaterializeTable(TableId table,
                                          bool refresh_stats = false);

  /// Materializes every table. At full Table 1 scale this allocates ~750 MB;
  /// intended for reduced-scale catalogs.
  COLT_OWNER_ONLY Status MaterializeAll(bool refresh_stats = false);

  bool HasData(TableId table) const;
  /// Requires HasData(table).
  const TableData& data(TableId table) const;

  /// Physically builds the index `id` (bulk load). Requires the owning
  /// table to be materialized. Idempotent. Equivalent to PrepareIndex
  /// followed by InstallIndex.
  COLT_OWNER_ONLY Status BuildIndex(IndexId id);

  /// Stage 1 of a (possibly background) build: bulk-loads the B+-tree for
  /// `id` without registering it. Const and touching only the catalog and
  /// the (frozen-by-contract) table data, so it is safe to run on a pool
  /// worker while the owning thread serves reads through other indexes —
  /// provided no Materialize*/mutable_catalog call runs concurrently.
  /// Does NOT check whether `id` is already built (that read would race
  /// with the owner's installs); InstallIndex resolves duplicates.
  COLT_WORKER_SAFE Result<std::unique_ptr<BTreeIndex>> PrepareIndex(
      IndexId id) const;

  /// Stage 2: registers a tree staged by PrepareIndex. Owner thread only.
  /// Idempotent like BuildIndex — when `id` is already built the staged
  /// tree is discarded.
  COLT_OWNER_ONLY Status InstallIndex(IndexId id,
                                      std::unique_ptr<BTreeIndex> tree);

  /// Drops the physical index; OK even if not built.
  COLT_OWNER_ONLY void DropIndex(IndexId id);

  /// Outcome of physically applying one write primitive (DESIGN.md §16).
  struct WriteOutcome {
    /// Row ids appended (insert) or affected (update/delete).
    std::vector<RowId> rows;
    /// B+-tree entry operations (inserts + erases) applied across every
    /// built index on the target table.
    int64_t index_entry_ops = 0;
  };

  /// Appends `count` synthesized rows to a materialized `table` and
  /// inserts the new entries into every built index on it. Cell values are
  /// a stateless hash of (table, row position, column) mapped into the
  /// column statistics' [min, max] range — deterministic replay with no
  /// draw from the database RNG, so table materialization order and
  /// re-generation stay byte-identical whether or not writes ran first.
  /// Catalog statistics are deliberately not refreshed (the tuning model
  /// keeps pricing against the trace-visible statistics; DESIGN.md §16).
  COLT_OWNER_ONLY Result<WriteOutcome> InsertRows(TableId table,
                                                  int64_t count);

  /// Overwrites the (column, value) `sets` on each row of `rows`, erasing
  /// and re-inserting the entry of every built index keyed on an assigned
  /// column. Rows must be live. Safe against concurrent snapshot readers:
  /// index mutation goes through the OLC tree in place.
  COLT_OWNER_ONLY Result<WriteOutcome> UpdateRows(
      TableId table, const std::vector<RowId>& rows,
      const std::vector<std::pair<ColumnId, int64_t>>& sets);

  /// Tombstones each row of `rows` and erases its entry from every built
  /// index on the table. Already-deleted rows are skipped.
  COLT_OWNER_ONLY Result<WriteOutcome> DeleteRows(
      TableId table, const std::vector<RowId>& rows);

  bool HasBuiltIndex(IndexId id) const;
  /// Requires HasBuiltIndex(id).
  const BTreeIndex& index(IndexId id) const;

  /// Ids of all physically built indexes, ascending (drives the chaos
  /// harness's catalog/storage consistency invariant).
  std::vector<IndexId> BuiltIndexIds() const;

  /// The currently-published index snapshot; never null. The returned
  /// pointer (and every tree it references) stays valid for as long as
  /// the caller holds an `EpochGuard` taken before this load.
  COLT_WORKER_SAFE const IndexSnapshot* index_snapshot() const {
    return published_snapshot_.load(std::memory_order_acquire);
  }

 private:
  /// Rebuilds and atomically publishes the snapshot from
  /// `built_indexes_`, epoch-retiring the previous one. Owner thread
  /// only (runs inside install/drop).
  COLT_OWNER_ONLY void PublishIndexSnapshot();

  Catalog catalog_;
  Rng rng_;
  std::unordered_map<TableId, TableData> table_data_;
  std::unordered_map<IndexId, std::unique_ptr<BTreeIndex>> built_indexes_;
  std::atomic<const IndexSnapshot*> published_snapshot_{nullptr};
};

}  // namespace colt

#endif  // COLT_STORAGE_DATABASE_H_
