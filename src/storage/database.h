#ifndef COLT_STORAGE_DATABASE_H_
#define COLT_STORAGE_DATABASE_H_

#include <memory>
#include <unordered_map>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "index/btree.h"
#include "storage/table_data.h"

namespace colt {

/// A database instance: catalog plus (optionally materialized) table data
/// and physically built B+-tree indexes.
///
/// Two usage modes:
///  * statistics-only — no tuples are generated; the optimizer and the
///    simulated executor run entirely off catalog statistics (how the
///    paper-scale experiments run);
///  * physical — tables are materialized and indexes are real B+-trees,
///    used by the physical executor for validation and by the examples.
class Database {
 public:
  explicit Database(Catalog catalog, uint64_t seed = 42)
      : catalog_(std::move(catalog)), rng_(seed) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const Catalog& catalog() const { return catalog_; }
  Catalog& mutable_catalog() { return catalog_; }

  /// Generates tuples for `table` (idempotent). When `refresh_stats` is
  /// true, replaces the analytic column statistics with exact statistics
  /// computed from the generated data.
  COLT_OWNER_ONLY Status MaterializeTable(TableId table,
                                          bool refresh_stats = false);

  /// Materializes every table. At full Table 1 scale this allocates ~750 MB;
  /// intended for reduced-scale catalogs.
  COLT_OWNER_ONLY Status MaterializeAll(bool refresh_stats = false);

  bool HasData(TableId table) const;
  /// Requires HasData(table).
  const TableData& data(TableId table) const;

  /// Physically builds the index `id` (bulk load). Requires the owning
  /// table to be materialized. Idempotent. Equivalent to PrepareIndex
  /// followed by InstallIndex.
  COLT_OWNER_ONLY Status BuildIndex(IndexId id);

  /// Stage 1 of a (possibly background) build: bulk-loads the B+-tree for
  /// `id` without registering it. Const and touching only the catalog and
  /// the (frozen-by-contract) table data, so it is safe to run on a pool
  /// worker while the owning thread serves reads through other indexes —
  /// provided no Materialize*/mutable_catalog call runs concurrently.
  /// Does NOT check whether `id` is already built (that read would race
  /// with the owner's installs); InstallIndex resolves duplicates.
  COLT_WORKER_SAFE Result<std::unique_ptr<BTreeIndex>> PrepareIndex(
      IndexId id) const;

  /// Stage 2: registers a tree staged by PrepareIndex. Owner thread only.
  /// Idempotent like BuildIndex — when `id` is already built the staged
  /// tree is discarded.
  COLT_OWNER_ONLY Status InstallIndex(IndexId id,
                                      std::unique_ptr<BTreeIndex> tree);

  /// Drops the physical index; OK even if not built.
  COLT_OWNER_ONLY void DropIndex(IndexId id);

  bool HasBuiltIndex(IndexId id) const;
  /// Requires HasBuiltIndex(id).
  const BTreeIndex& index(IndexId id) const;

  /// Ids of all physically built indexes, ascending (drives the chaos
  /// harness's catalog/storage consistency invariant).
  std::vector<IndexId> BuiltIndexIds() const;

 private:
  Catalog catalog_;
  Rng rng_;
  std::unordered_map<TableId, TableData> table_data_;
  std::unordered_map<IndexId, std::unique_ptr<BTreeIndex>> built_indexes_;
};

}  // namespace colt

#endif  // COLT_STORAGE_DATABASE_H_
