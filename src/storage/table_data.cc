#include "storage/table_data.h"

#include <algorithm>
#include <numeric>

namespace colt {

TableData TableData::Generate(const TableSchema& schema, Rng& rng) {
  TableData data;
  data.row_count_ = schema.row_count();
  data.columns_.resize(schema.columns().size());
  bool pk_assigned = false;
  for (size_t c = 0; c < schema.columns().size(); ++c) {
    const ColumnDef& col = schema.columns()[c];
    auto& values = data.columns_[c];
    values.resize(data.row_count_);
    if (!pk_assigned && col.ndv == data.row_count_ && data.row_count_ > 1) {
      // Primary key: a shuffled permutation, so it is unique but not
      // physically clustered (our indexes are all unclustered).
      std::iota(values.begin(), values.end(), 0);
      for (int64_t i = data.row_count_ - 1; i > 0; --i) {
        const int64_t j =
            static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(i + 1)));
        std::swap(values[i], values[j]);
      }
      pk_assigned = true;
    } else if (col.skew > 0.0) {
      const ZipfSampler zipf(static_cast<size_t>(std::max<int64_t>(1, col.ndv)),
                             col.skew);
      for (auto& v : values) {
        v = static_cast<int64_t>(zipf.Sample(rng));
      }
    } else {
      const uint64_t ndv = static_cast<uint64_t>(std::max<int64_t>(1, col.ndv));
      for (auto& v : values) {
        v = static_cast<int64_t>(rng.NextBelow(ndv));
      }
    }
  }
  return data;
}

}  // namespace colt
