#ifndef COLT_STORAGE_TPCH_SCHEMA_H_
#define COLT_STORAGE_TPCH_SCHEMA_H_

#include "catalog/catalog.h"

namespace colt {

/// Options for the synthetic TPC-H-style data set of the paper's Table 1.
struct TpchOptions {
  /// Number of independent schema instances (the paper uses 4 → 32 tables).
  int instances = 4;
  /// Row-count scale; 1.0 reproduces Table 1 (6,928,120 rows, largest
  /// 1,200,000, smallest 5). Tiny tables (region, nation) never scale below
  /// their fixed cardinalities.
  double scale = 1.0;
};

/// Builds a catalog with `instances` copies of the 8-table TPC-H schema.
/// At scale 1.0 with 4 instances this matches the paper's Table 1:
/// 32 tables, 6,928,120 tuples, largest table 1,200,000, smallest 5,
/// 244 indexable attributes, ~1.4 GB of binary data.
Catalog MakeTpchCatalog(const TpchOptions& options = {});

/// Per-instance row counts used by MakeTpchCatalog at scale 1.0.
struct TpchCardinalities {
  int64_t region = 5;
  int64_t nation = 25;
  int64_t supplier = 2'000;
  int64_t customer = 30'000;
  int64_t part = 40'000;
  int64_t partsupp = 160'000;
  int64_t orders = 300'000;
  int64_t lineitem = 1'200'000;
};

}  // namespace colt

#endif  // COLT_STORAGE_TPCH_SCHEMA_H_
