#ifndef COLT_STORAGE_TABLE_DATA_H_
#define COLT_STORAGE_TABLE_DATA_H_

#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "common/rng.h"

namespace colt {

/// Columnar storage for one table's generated tuples. Every logical value
/// is an int64 payload (see catalog/types.h); logical types only affect
/// size accounting.
class TableData {
 public:
  TableData() = default;

  /// Generates `schema.row_count()` rows. The first column whose ndv equals
  /// the row count is treated as the primary key and generated as a random
  /// permutation of [0, rows); all other columns are uniform over [0, ndv).
  static TableData Generate(const TableSchema& schema, Rng& rng);

  int64_t row_count() const { return row_count_; }
  int32_t column_count() const {
    return static_cast<int32_t>(columns_.size());
  }

  const std::vector<int64_t>& column(ColumnId id) const {
    return columns_[id];
  }
  int64_t value(ColumnId col, int64_t row) const {
    return columns_[col][row];
  }

  bool empty() const { return row_count_ == 0; }

 private:
  int64_t row_count_ = 0;
  std::vector<std::vector<int64_t>> columns_;
};

}  // namespace colt

#endif  // COLT_STORAGE_TABLE_DATA_H_
