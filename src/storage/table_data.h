#ifndef COLT_STORAGE_TABLE_DATA_H_
#define COLT_STORAGE_TABLE_DATA_H_

#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "common/rng.h"

namespace colt {

/// Columnar storage for one table's generated tuples. Every logical value
/// is an int64 payload (see catalog/types.h); logical types only affect
/// size accounting.
///
/// Write statements (DESIGN.md §16) mutate the store in place on the owner
/// thread: INSERT appends rows, UPDATE overwrites cells, DELETE tombstones
/// rows (storage is retained, like an unvacuumed heap, so physical page
/// counts never shrink). `row_count()` stays the physical count including
/// tombstones; scans skip rows where `live()` is false.
class TableData {
 public:
  TableData() = default;

  /// Generates `schema.row_count()` rows. The first column whose ndv equals
  /// the row count is treated as the primary key and generated as a random
  /// permutation of [0, rows); all other columns are uniform over [0, ndv).
  static TableData Generate(const TableSchema& schema, Rng& rng);

  /// Physical rows, including tombstoned ones.
  int64_t row_count() const { return row_count_; }
  /// Rows not deleted.
  int64_t live_row_count() const { return row_count_ - deleted_count_; }
  int32_t column_count() const {
    return static_cast<int32_t>(columns_.size());
  }

  const std::vector<int64_t>& column(ColumnId id) const {
    return columns_[id];
  }
  int64_t value(ColumnId col, int64_t row) const {
    return columns_[col][row];
  }

  /// Appends one row (`values` holds one cell per column, in column order)
  /// and returns its row id. Requires values.size() == column_count().
  int64_t AppendRow(const std::vector<int64_t>& values) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(values[c]);
    }
    return row_count_++;
  }

  /// Overwrites one cell (UPDATE).
  void set_value(ColumnId col, int64_t row, int64_t v) {
    columns_[col][row] = v;
  }

  /// Tombstones `row` (DELETE); idempotent. Storage is retained.
  void MarkDeleted(int64_t row) {
    if (deleted_.size() < static_cast<size_t>(row_count_)) {
      deleted_.resize(static_cast<size_t>(row_count_), 0);
    }
    if (!deleted_[static_cast<size_t>(row)]) {
      deleted_[static_cast<size_t>(row)] = 1;
      ++deleted_count_;
    }
  }

  /// True iff `row` has not been deleted.
  bool live(int64_t row) const {
    return static_cast<size_t>(row) >= deleted_.size() ||
           deleted_[static_cast<size_t>(row)] == 0;
  }

  bool empty() const { return row_count_ == 0; }

 private:
  int64_t row_count_ = 0;
  int64_t deleted_count_ = 0;
  std::vector<std::vector<int64_t>> columns_;
  /// Tombstone bitmap, grown lazily to row_count_ on first delete.
  std::vector<uint8_t> deleted_;
};

}  // namespace colt

#endif  // COLT_STORAGE_TABLE_DATA_H_
