#ifndef COLT_CORE_SERVE_H_
#define COLT_CORE_SERVE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "core/colt.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "query/query.h"
#include "storage/database.h"

namespace colt {

/// Multi-client query serving (DESIGN.md §15).
///
/// ServeWorkload() drains a query trace through N concurrent client
/// threads while COLT keeps tuning on the calling (owner) thread. The
/// loop is epoch-pipelined so results stay a pure function of the trace,
/// independent of the client count:
///
///   for each serving epoch (one tuner epoch's worth of queries):
///     1. The owner plans every query of the epoch against the current
///        materialized configuration, then pins an epoch guard and
///        captures the published index snapshot.
///     2. Client c executes the epoch's queries at positions ≡ c (mod N)
///        through its private Executor, resolving indexes against the
///        pinned snapshot.
///     3. Concurrently, the owner feeds the same queries to the tuner in
///        trace order. Index installs/drops the tuner performs publish
///        new snapshots immediately — they never block the clients, who
///        keep reading the pinned one; the owner's guard keeps every
///        tree it references alive until the epoch joins.
///     4. Join; merge the per-client metrics buffers; next epoch plans
///        against the updated configuration.
///
/// Because the tuner consumes the trace serially on the owner thread and
/// the clients' work is a pure function of (plans, data, snapshot), the
/// ServedQuery stream, the tuner's decisions, and the epoch reports are
/// bit-identical at any client count (pinned by the serving differential
/// test).
struct ServeOptions {
  /// Number of serving client threads (>= 1).
  int client_threads = 4;
  /// Pin client i to CPU (i mod cores) to stabilize tail latency.
  bool pin_threads = true;
  /// Owner-side hook invoked after each serving epoch joins (clients
  /// quiescent), with the 0-based serving-epoch number. Tests use it to
  /// audit index invariants between epochs.
  std::function<void(int)> on_epoch_end;
};

/// One executed query of the trace.
struct ServedQuery {
  /// Position in the input trace.
  int64_t trace_index = 0;
  /// Which client executed it: trace_index_within_epoch mod N.
  int client = 0;
  /// Whether execution succeeded; failures record the status text and a
  /// zero ExecutionResult instead of aborting the run.
  bool ok = false;
  std::string error;
  /// Physical page/tuple accounting (deterministic; compared bit-for-bit
  /// between client counts by the differential test).
  ExecutionResult result;
  /// Optimizer cost of the executed plan (deterministic).
  double estimated_cost = 0.0;
  /// Measured wall-clock latency of the Execute call, seconds. The one
  /// nondeterministic field; excluded from differential comparisons.
  double latency_seconds = 0.0;
};

/// Everything a serving run produced.
struct ServeResult {
  /// One entry per trace query, in trace order.
  std::vector<ServedQuery> queries;
  /// The tuner's per-epoch diagnostics (empty when no tuner was passed).
  std::vector<EpochReport> epoch_reports;
  /// Index installs + drops the tuner applied while clients were serving.
  int64_t tuner_actions = 0;
  /// Serving epochs executed.
  int epochs = 0;
  /// Wall time of the serving loop (planning + serving + tuning).
  double wall_seconds = 0.0;
  /// queries.size() / wall_seconds.
  double aggregate_qps = 0.0;
};

/// Latency percentile over the served queries (p in [0, 100], nearest-rank
/// on the sorted latencies). Returns 0 for an empty run.
double LatencyPercentile(const std::vector<ServedQuery>& queries, double p);

/// Shared, read-only context one serving epoch hands to its client tasks.
/// Internal to ServeWorkload; exposed so the client task function can be
/// role-annotated for the thread-role lint.
struct ServeEpochContext {
  /// Index snapshot pinned for the whole epoch by the owner's guard.
  const Database::IndexSnapshot* snapshot = nullptr;
  /// This epoch's planned queries, in trace order.
  struct PlannedQuery {
    int64_t trace_index = 0;
    const PlanNode* plan = nullptr;
    double estimated_cost = 0.0;
  };
  const std::vector<PlannedQuery>* plans = nullptr;
  /// Client count N; client c serves plan positions ≡ c (mod N).
  int client_count = 1;
  /// Per-client executors (owner-constructed, one per client).
  const std::vector<std::unique_ptr<Executor>>* executors = nullptr;
};

/// Executes client `client`'s share of one epoch's planned queries and
/// returns them in plan order. Runs on a pool worker thread; touches only
/// the client's own Executor and the epoch's immutable context.
COLT_WORKER_SAFE std::vector<ServedQuery> ServeClientEpoch(
    const ServeEpochContext& ctx, int client);

/// Serves `trace` with `options.client_threads` concurrent clients while
/// `tuner` (optional) tunes on the calling thread, as described above.
/// With a null tuner the configuration is frozen to the database's
/// currently built indexes and the whole trace is served as one epoch.
/// `db`, `optimizer`, and `tuner` must share the same catalog; every
/// scanned table must be materialized.
COLT_OWNER_ONLY ServeResult ServeWorkload(Database* db,
                                          QueryOptimizer* optimizer,
                                          ColtTuner* tuner,
                                          const std::vector<Query>& trace,
                                          const ServeOptions& options = {});

}  // namespace colt

#endif  // COLT_CORE_SERVE_H_
