#include "core/self_organizer.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <string>
#include <string_view>

#include "common/tracing.h"

namespace colt {

namespace {

/// Chosen-set rendering for knapsack provenance events: comma-joined ids
/// in solution order (the solvers emit ids deterministically, so the
/// string is replay-stable).
std::string JoinIds(const std::vector<int64_t>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(ids[i]);
  }
  return out;
}

}  // namespace

SelfOrganizer::SelfOrganizer(Catalog* catalog, QueryOptimizer* optimizer,
                             ClusterManager* clusters,
                             GainStatsStore* hot_stats,
                             GainStatsStore* mat_stats,
                             CandidateSet* candidates,
                             BenefitForecaster* forecaster, Profiler* profiler,
                             const ColtConfig* config,
                             ProvenanceRecorder* provenance,
                             const WriteStatsStore* write_stats)
    : catalog_(catalog),
      optimizer_(optimizer),
      clusters_(clusters),
      hot_stats_(hot_stats),
      mat_stats_(mat_stats),
      candidates_(candidates),
      forecaster_(forecaster),
      profiler_(profiler),
      config_(config),
      provenance_(provenance),
      write_stats_(write_stats) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  metrics_.hot_churn = reg.GetCounter("self_organizer.hot_churn");
  metrics_.hot_set_size = reg.GetGauge("self_organizer.hot_set_size");
  metrics_.epoch_end_seconds =
      reg.GetHistogram("self_organizer.epoch_end.seconds");
  metrics_.knapsack_seconds =
      reg.GetHistogram("self_organizer.knapsack.seconds");
}

bool SelfOrganizer::RelevantToCluster(IndexId index, ClusterId cluster) const {
  const ColumnRef col = catalog_->index(index).column;
  const auto& cols = clusters_->RelevantColumns(cluster);
  return std::binary_search(cols.begin(), cols.end(), col);
}

double SelfOrganizer::MatCost(IndexId index) const {
  const IndexDescriptor& desc = catalog_->index(index);
  return optimizer_->cost_model().MaterializationCost(
      catalog_->table(desc.column.table), desc);
}

double SelfOrganizer::MaintenanceCharge(IndexId index) const {
  if (write_stats_ == nullptr || !config_->charge_index_maintenance) {
    return 0.0;
  }
  const IndexDescriptor& desc = catalog_->index(index);
  const double entries = write_stats_->EpochEntryOps(desc);
  if (entries <= 0.0) return 0.0;
  return optimizer_->cost_model().IndexMaintenanceCost(
      catalog_->table(desc.column.table), desc, entries);
}

double SelfOrganizer::EpochBenefit(IndexId index, bool is_materialized,
                                   const IndexConfiguration& materialized) const {
  // Expected benefit per epoch under the S_h-window query distribution:
  // sum over relevant clusters of (expected occurrences per epoch) x
  // (conservative gain estimate). Using the window rate instead of the raw
  // single-epoch count removes the large population variance of 10-query
  // epochs that would otherwise dominate the forecast (see DESIGN.md).
  //
  // The distinction between hot and materialized indexes (§4.1) is carried
  // by the statistics themselves: materialized indexes are only ever probed
  // for queries whose plan used them, so clusters that do not use the index
  // have no consistent measurements and contribute zero.
  const GainStatsStore* store = is_materialized ? mat_stats_ : hot_stats_;
  const TableId table = catalog_->index(index).column.table;
  const uint64_t sig = TableConfigSignature(*catalog_, materialized, table);
  double total = 0.0;
  for (ClusterId cluster : clusters_->LiveClusters()) {
    if (!RelevantToCluster(index, cluster)) continue;
    const ConfidenceInterval ci = store->Interval(index, cluster, sig);
    if (ci.low <= -kUnknownHalfWidth) continue;  // no consistent knowledge
    const double mean = (ci.low + ci.high) / 2.0;
    // The floor only kicks in once the pair has real support; with 2-3
    // samples the Student-t lower bound IS the paper's "strong evidence"
    // gate and flooring it would trigger materialization on noise.
    const int64_t n = store->MeasurementCount(index, cluster, sig);
    const double floor =
        n >= 4 ? config_->conservative_floor_fraction * mean : 0.0;
    const double estimate =
        config_->conservative_estimates
            ? std::max(0.0, std::max(ci.low, floor))
            : std::max(0.0, mean);
    total += estimate * clusters_->WindowRate(cluster);
  }
  return total;
}

double SelfOrganizer::OptimisticEpochBenefit(
    IndexId index, const IndexConfiguration& materialized) const {
  const TableId table = catalog_->index(index).column.table;
  const uint64_t sig = TableConfigSignature(*catalog_, materialized, table);
  double total = 0.0;
  double unknown_population = 0.0;
  for (ClusterId cluster : clusters_->LiveClusters()) {
    if (!RelevantToCluster(index, cluster)) continue;
    const double population = clusters_->WindowRate(cluster);
    const ConfidenceInterval ci = hot_stats_->Interval(index, cluster, sig);
    if (ci.high >= kUnknownHalfWidth) {
      unknown_population += population;
    } else {
      total += std::max(0.0, ci.high) * population;
    }
  }
  if (unknown_population > 0) {
    // Best-case estimate for never-profiled pairs: the crude (already
    // optimistic) candidate benefit, scaled to the unknown population.
    const double crude_per_query = candidates_->SmoothedBenefit(index);
    total += std::max(0.0, crude_per_query) *
             static_cast<double>(config_->epoch_length);
  }
  return total;
}

double SelfOrganizer::NetBenefit(IndexId index,
                                 const IndexConfiguration& materialized) const {
  const double gross = forecaster_->TotalPredictedBenefit(index);
  const double mat_cost = materialized.Contains(index) ? 0.0 : MatCost(index);
  return gross - mat_cost;
}

SelfOrganizer::Outcome SelfOrganizer::RunEpochEnd(
    const IndexConfiguration& materialized,
    const std::vector<IndexId>& hot_set,
    const std::vector<IndexId>& quarantined) {
  ScopedTimer timer(metrics_.epoch_end_seconds);
  Tracer::Scope span = Tracer::Default().StartSpan("epoch_end", "core");
  Outcome outcome;
  const auto is_quarantined = [&](IndexId id) {
    return std::binary_search(quarantined.begin(), quarantined.end(), id);
  };
  const auto record_knapsack = [&](std::string_view kind,
                                   const std::vector<KnapsackItem>& pool_items,
                                   const KnapsackSolution& solution) {
    if (provenance_ == nullptr) return;
    int64_t chosen_bytes = 0;
    for (int64_t id : solution.chosen_ids) {
      chosen_bytes += catalog_->index(static_cast<IndexId>(id)).size_bytes;
    }
    const double budget = static_cast<double>(config_->storage_budget_bytes);
    provenance_->RecordEvent("self_organizer.knapsack")
        .Attr("kind", kind)
        .Attr("pool", static_cast<int64_t>(pool_items.size()))
        .Attr("budget", config_->storage_budget_bytes)
        .Attr("chosen", JoinIds(solution.chosen_ids))
        .Attr("value", solution.total_value)
        .Attr("utilization",
              budget > 0 ? static_cast<double>(chosen_bytes) / budget : 0.0);
  };

  // ---- 1. Fold the finished epoch's observations into the forecaster,
  // net of each index's maintenance charge (DESIGN.md §16). Negative net
  // observations are recorded as-is: an index whose upkeep exceeds its
  // benefit must see its forecast sink below the drop threshold. On
  // read-only epochs every charge is exactly 0 and this reduces to the
  // paper's benefit fold, bit for bit.
  const auto record_observation = [&](IndexId id, bool is_materialized) {
    const double benefit = EpochBenefit(id, is_materialized, materialized);
    const double charge = MaintenanceCharge(id);
    if (charge > 0.0) {
      outcome.maintenance_charged += charge;
      if (provenance_ != nullptr) {
        provenance_->RecordEvent("self_organizer.maintenance_charge")
            .Index(id)
            .Attr("benefit", benefit)
            .Attr("charge", charge)
            .Attr("materialized", is_materialized ? 1 : 0);
      }
    }
    forecaster_->RecordEpoch(id, benefit - charge);
  };
  for (IndexId id : materialized.ids()) record_observation(id, true);
  for (IndexId id : hot_set) {
    if (materialized.Contains(id)) continue;
    record_observation(id, false);
  }

  // ---- 2. Reorganization: KNAPSACK over H u M with NetBenefit values.
  std::vector<IndexId> pool = hot_set;
  for (IndexId id : materialized.ids()) pool.push_back(id);
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  // Quarantined indexes cannot be built, so spending budget on them would
  // waste capacity the knapsack could give to healthy indexes.
  pool.erase(std::remove_if(pool.begin(), pool.end(), is_quarantined),
             pool.end());

  std::vector<KnapsackItem> items;
  items.reserve(pool.size());
  for (IndexId id : pool) {
    KnapsackItem item;
    item.id = id;
    item.size = catalog_->index(id).size_bytes;
    item.value = NetBenefit(id, materialized);
    items.push_back(item);
  }
  ScopedTimer knapsack_timer(metrics_.knapsack_seconds);
  const KnapsackSolution current =
      config_->use_greedy_knapsack
          ? SolveKnapsackGreedy(items, config_->storage_budget_bytes)
          : SolveKnapsack(items, config_->storage_budget_bytes);
  knapsack_timer.Stop();
  for (int64_t id : current.chosen_ids) {
    outcome.new_materialized.Add(static_cast<IndexId>(id));
  }
  outcome.net_benefit_current = current.total_value;
  record_knapsack("reorg", items, current);
  if (provenance_ != nullptr) {
    // Schedule requests are the diff between the knapsack pick and the
    // current materialized set; net_benefit is the item's value at solve
    // time, i.e. the number the decision was actually made on.
    const auto item_value = [&](IndexId id) {
      for (const KnapsackItem& item : items) {
        if (item.id == static_cast<int64_t>(id)) return item.value;
      }
      return 0.0;
    };
    for (IndexId id : outcome.new_materialized.ids()) {
      if (materialized.Contains(id)) continue;
      provenance_->RecordEvent("self_organizer.schedule_install")
          .Index(id)
          .Attr("net_benefit", item_value(id));
    }
    for (IndexId id : materialized.ids()) {
      if (outcome.new_materialized.Contains(id)) continue;
      provenance_->RecordEvent("self_organizer.schedule_drop")
          .Index(id)
          .Attr("net_benefit", item_value(id));
    }
  }

  // ---- 3. New hot set: two-means over smoothed BenefitC of the remaining
  // candidates; the top cluster becomes H.
  std::vector<std::pair<double, IndexId>> scored;
  for (IndexId id : candidates_->All()) {
    if (outcome.new_materialized.Contains(id)) continue;
    if (is_quarantined(id)) continue;  // pointless to profile: unbuildable
    const double b = candidates_->SmoothedBenefit(id);
    if (b > 0.0) scored.emplace_back(b, id);
  }
  double split_threshold = 0.0;
  if (!scored.empty()) {
    std::vector<double> values;
    values.reserve(scored.size());
    for (const auto& entry : scored) values.push_back(entry.first);
    const TwoMeansSplit split = ComputeTwoMeansSplit(values);
    split_threshold = split.threshold;
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [v, id] : scored) {
      if (v < split.threshold) break;
      if (static_cast<int>(outcome.new_hot.size()) >=
          config_->max_hot_set_size) {
        break;
      }
      outcome.new_hot.push_back(id);
    }
    if (config_->fill_hot_by_density &&
        static_cast<int>(outcome.new_hot.size()) <
            config_->max_hot_set_size) {
      // Fill spare hot slots by benefit density (value per byte), so small
      // cheap indexes with modest absolute benefit still get profiled.
      std::vector<std::pair<double, IndexId>> by_density;
      for (const auto& [v, id] : scored) {
        if (std::find(outcome.new_hot.begin(), outcome.new_hot.end(), id) !=
            outcome.new_hot.end()) {
          continue;
        }
        const int64_t size = catalog_->index(id).size_bytes;
        by_density.emplace_back(
            v / static_cast<double>(std::max<int64_t>(1, size)), id);
      }
      std::sort(by_density.begin(), by_density.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (const auto& entry : by_density) {
        if (static_cast<int>(outcome.new_hot.size()) >=
            config_->max_hot_set_size) {
          break;
        }
        outcome.new_hot.push_back(entry.second);
      }
    }
    std::sort(outcome.new_hot.begin(), outcome.new_hot.end());
  }

  // Hot-set churn: indexes entering or leaving H this epoch (both sets
  // are sorted, so the two set differences run in one pass each).
  {
    std::vector<IndexId> old_sorted = hot_set;
    std::sort(old_sorted.begin(), old_sorted.end());
    std::vector<IndexId> entering;
    std::vector<IndexId> leaving;
    std::set_difference(outcome.new_hot.begin(), outcome.new_hot.end(),
                        old_sorted.begin(), old_sorted.end(),
                        std::back_inserter(entering));
    std::set_difference(old_sorted.begin(), old_sorted.end(),
                        outcome.new_hot.begin(), outcome.new_hot.end(),
                        std::back_inserter(leaving));
    const int64_t churn =
        static_cast<int64_t>(entering.size() + leaving.size());
    metrics_.hot_churn->Add(churn);
    metrics_.hot_set_size->Set(static_cast<double>(outcome.new_hot.size()));
    span.AddAttr("hot_churn", churn);
    if (provenance_ != nullptr) {
      // `threshold` is the two-means split that gated this epoch's hot
      // picks (0 when no candidate scored, i.e. demote-only epochs).
      for (IndexId id : entering) {
        provenance_->RecordEvent("self_organizer.hot_promote")
            .Index(id)
            .Attr("benefit", candidates_->SmoothedBenefit(id))
            .Attr("threshold", split_threshold);
      }
      for (IndexId id : leaving) {
        provenance_->RecordEvent("self_organizer.hot_demote")
            .Index(id)
            .Attr("benefit", candidates_->SmoothedBenefit(id))
            .Attr("threshold", split_threshold);
      }
    }
  }

  // ---- 4. Re-budgeting: best-case scenario for the hot indexes.
  if (!config_->enable_rebudgeting) {
    outcome.next_whatif_limit = config_->max_whatif_per_epoch;
    outcome.rebudget_ratio = std::numeric_limits<double>::quiet_NaN();
    return outcome;
  }
  std::vector<KnapsackItem> optimistic_items;
  std::vector<IndexId> opt_pool = outcome.new_hot;
  for (IndexId id : outcome.new_materialized.ids()) opt_pool.push_back(id);
  std::sort(opt_pool.begin(), opt_pool.end());
  opt_pool.erase(std::unique(opt_pool.begin(), opt_pool.end()),
                 opt_pool.end());
  for (IndexId id : opt_pool) {
    KnapsackItem item;
    item.id = id;
    item.size = catalog_->index(id).size_bytes;
    if (outcome.new_materialized.Contains(id)) {
      // Metrics of materialized indexes are left untouched (§5).
      item.value = NetBenefit(id, materialized);
    } else {
      // Even the best case pays upkeep: the optimistic observation is net
      // of the same maintenance charge the pessimistic fold used, so a
      // write-hot epoch cannot inflate the rebudget ratio with benefits
      // the index could never keep.
      const double optimistic_latest =
          OptimisticEpochBenefit(id, materialized) - MaintenanceCharge(id);
      item.value =
          forecaster_->TotalPredictedBenefitWithLatest(id, optimistic_latest) -
          MatCost(id);
    }
    optimistic_items.push_back(item);
  }
  ScopedTimer opt_knapsack_timer(metrics_.knapsack_seconds);
  const KnapsackSolution best_case =
      config_->use_greedy_knapsack
          ? SolveKnapsackGreedy(optimistic_items,
                                config_->storage_budget_bytes)
          : SolveKnapsack(optimistic_items, config_->storage_budget_bytes);
  opt_knapsack_timer.Stop();
  outcome.net_benefit_optimistic = best_case.total_value;
  record_knapsack("optimistic", optimistic_items, best_case);

  double r;
  if (outcome.net_benefit_current <= 1e-9) {
    r = outcome.net_benefit_optimistic > 1e-9
            ? std::numeric_limits<double>::infinity()
            : 1.0;
  } else {
    r = outcome.net_benefit_optimistic / outcome.net_benefit_current;
  }
  r = std::max(r, 1.0);
  outcome.rebudget_ratio = r;
  if (r <= config_->rebudget_low) {
    outcome.next_whatif_limit = 0;
  } else if (r >= config_->rebudget_high) {
    outcome.next_whatif_limit = config_->max_whatif_per_epoch;
  } else {
    const double f = (r - config_->rebudget_low) /
                     (config_->rebudget_high - config_->rebudget_low);
    outcome.next_whatif_limit = static_cast<int>(
        std::ceil(f * config_->max_whatif_per_epoch));
  }
  // Fresh hot indexes carry no profiled evidence, so r cannot yet reflect
  // their potential: guarantee a minimal budget to gather it.
  bool fresh_hot = false;
  for (IndexId id : outcome.new_hot) {
    if (forecaster_->HistoryLength(id) == 0) fresh_hot = true;
  }
  if (fresh_hot) {
    outcome.next_whatif_limit =
        std::min(config_->max_whatif_per_epoch,
                 std::max(outcome.next_whatif_limit,
                          config_->min_budget_for_fresh_hot));
  }
  if (provenance_ != nullptr) {
    ProvenanceRecorder::EventBuilder event =
        provenance_->RecordEvent("self_organizer.rebudget");
    event.Attr("next_limit", static_cast<int64_t>(outcome.next_whatif_limit))
        .Attr("current", outcome.net_benefit_current)
        .Attr("optimistic", outcome.net_benefit_optimistic);
    // r is infinite when the current configuration has no net benefit but
    // the optimistic one does; infinities have no JSON rendering, so the
    // attr is simply absent then (the limit attr already tells the story).
    if (std::isfinite(outcome.rebudget_ratio)) {
      event.Attr("ratio", outcome.rebudget_ratio);
    }
  }
  return outcome;
}

}  // namespace colt
