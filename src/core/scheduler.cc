#include "core/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace colt {

Scheduler::Scheduler(Catalog* catalog, const CostModel* cost_model,
                     Database* db, SchedulingStrategy strategy,
                     FaultInjector* faults, RetryPolicy retry,
                     ThreadPool* pool, ProvenanceRecorder* provenance)
    : catalog_(catalog),
      cost_model_(cost_model),
      db_(db),
      strategy_(strategy),
      faults_(faults),
      retry_(retry),
      pool_(pool),
      provenance_(provenance) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  metrics_.builds_completed = reg.GetCounter("scheduler.builds.completed");
  metrics_.builds_failed = reg.GetCounter("scheduler.builds.failed");
  metrics_.drops = reg.GetCounter("scheduler.drops");
  metrics_.backoff_events = reg.GetCounter("scheduler.backoff.events");
  metrics_.quarantine_events = reg.GetCounter("scheduler.quarantine.events");
  metrics_.pending_builds = reg.GetGauge("scheduler.pending_builds");
  metrics_.apply_seconds = reg.GetHistogram("scheduler.apply.seconds");
}

double Scheduler::BuildSeconds(IndexId id) const {
  const IndexDescriptor& desc = catalog_->index(id);
  const TableSchema& table = catalog_->table(desc.column.table);
  return cost_model_->ToSeconds(
      cost_model_->MaterializationCost(table, desc));
}

Status Scheduler::TryBuild(IndexId id, StagedTree staged) {
  // The fault draw stays on the owner thread, before any physical work is
  // consumed, at the same sequence point as the inline path — so fault
  // sites fire identically with and without background builds.
  if (faults_ != nullptr) {
    COLT_RETURN_IF_ERROR(faults_->MaybeFail(fault_sites::kIndexBuild));
  }
  if (db_ == nullptr) return Status::OK();
  if (staged.valid()) {
    Result<std::unique_ptr<BTreeIndex>> tree = staged.get();
    if (tree.ok()) {
      return db_->InstallIndex(id, std::move(tree).value());
    }
    // The staged attempt reflects the world at queue time; fall through to
    // an inline build so completion-time state decides, exactly as it
    // would without a pool.
  }
  return db_->BuildIndex(id);
}

Scheduler::StagedTree Scheduler::StageBuild(IndexId id) {
  if (pool_ == nullptr || db_ == nullptr) return {};
  const Database* db = db_;
  return pool_->Submit([db, id] { return db->PrepareIndex(id); });
}

bool Scheduler::IsQuarantined(IndexId id) const {
  auto it = failures_.find(id);
  return it != failures_.end() && it->second.quarantine_until_round >= 0 &&
         round_ < it->second.quarantine_until_round;
}

std::vector<IndexId> Scheduler::QuarantinedIndexes() const {
  std::vector<IndexId> out;
  for (const auto& [id, state] : failures_) {
    if (state.quarantine_until_round >= 0 &&
        round_ < state.quarantine_until_round) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Scheduler::BuildBlocked(IndexId id) const {
  auto it = failures_.find(id);
  if (it == failures_.end()) return false;
  const FailureState& state = it->second;
  if (state.quarantine_until_round >= 0) {
    return round_ < state.quarantine_until_round;
  }
  return round_ < state.retry_after_round;
}

void Scheduler::RecordBuildFailure(IndexId id,
                                   std::vector<IndexAction>* actions) {
  FailureState& state = failures_[id];
  ++state.consecutive_failures;
  ++build_failures_;
  if (provenance_ != nullptr) {
    provenance_->RecordEvent("scheduler.build_failed")
        .Index(id)
        .Attr("consecutive",
              static_cast<int64_t>(state.consecutive_failures));
  }
  if (state.consecutive_failures >= retry_.max_build_retries) {
    state.quarantine_until_round =
        round_ + retry_.quarantine_cooldown_rounds;
    ++quarantine_events_;
    metrics_.quarantine_events->Increment();
    IndexAction action;
    action.type = IndexActionType::kQuarantine;
    action.index = id;
    actions->push_back(action);
    if (provenance_ != nullptr) {
      provenance_->RecordEvent("scheduler.quarantine")
          .Index(id)
          .Attr("cooldown_rounds",
                static_cast<int64_t>(retry_.quarantine_cooldown_rounds))
          .Attr("failures",
                static_cast<int64_t>(state.consecutive_failures));
    }
    COLT_LOG(Warning) << "index " << catalog_->index(id).name
                      << " quarantined after "
                      << state.consecutive_failures
                      << " failed builds (cooldown "
                      << retry_.quarantine_cooldown_rounds << " rounds)";
  } else {
    const int shift = state.consecutive_failures - 1;
    const int64_t backoff = std::min<int64_t>(
        retry_.max_backoff_rounds,
        static_cast<int64_t>(retry_.backoff_base_rounds) << shift);
    state.retry_after_round = round_ + std::max<int64_t>(1, backoff);
    metrics_.backoff_events->Increment();
    if (provenance_ != nullptr) {
      provenance_->RecordEvent("scheduler.backoff")
          .Index(id)
          .Attr("retry_after_round", state.retry_after_round);
    }
  }
}

void Scheduler::ExpireQuarantines() {
  for (auto it = failures_.begin(); it != failures_.end();) {
    const FailureState& state = it->second;
    if (state.quarantine_until_round >= 0 &&
        round_ >= state.quarantine_until_round) {
      // Cooldown over: forget the history so the index gets a fresh retry
      // budget next time the Self-Organizer wants it.
      it = failures_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<std::vector<IndexAction>> Scheduler::ApplyConfiguration(
    const IndexConfiguration& desired, std::string_view cause) {
  ScopedTimer apply_timer(metrics_.apply_seconds);
  ++round_;
  ExpireQuarantines();
  std::vector<IndexAction> actions;
  // Drops first (free budget immediately, costless).
  for (IndexId id : materialized_.ids()) {
    if (desired.Contains(id)) continue;
    IndexAction action;
    action.type = IndexActionType::kDrop;
    action.index = id;
    actions.push_back(action);
  }
  for (const auto& action : actions) {
    if (db_ != nullptr) db_->DropIndex(action.index);
    materialized_.Remove(action.index);
    catalog_->BumpVersion();
    metrics_.drops->Increment();
    if (provenance_ != nullptr) {
      provenance_->RecordEvent("scheduler.drop")
          .Index(action.index)
          .Attr("cause", cause)
          .Attr("name", catalog_->index(action.index).name);
    }
  }
  // Cancel queued builds that are no longer desired. Idle seconds already
  // spent on them are lost — never transferred to the remaining queue.
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&](const PendingBuild& b) {
                                  if (desired.Contains(b.index)) return false;
                                  wasted_idle_seconds_ += b.spent_seconds;
                                  return true;
                                }),
                 pending_.end());

  // Immediate mode with a pool: pre-build every tree this round will want
  // concurrently on the workers, then run the loop below unchanged — it
  // draws faults and installs (in `desired` order) on this thread, so the
  // only difference to the inline path is wall-clock time. The loop's
  // skip conditions are per-id and unaffected by earlier iterations, so
  // the prefetch list matches the ids the loop attempts.
  std::unordered_map<IndexId, StagedTree> prefetched;
  if (strategy_ == SchedulingStrategy::kImmediate && pool_ != nullptr &&
      db_ != nullptr) {
    std::vector<IndexId> to_build;
    for (IndexId id : desired.ids()) {
      if (materialized_.Contains(id) || BuildBlocked(id)) continue;
      to_build.push_back(id);
    }
    if (to_build.size() >= 2) {
      for (IndexId id : to_build) prefetched.emplace(id, StageBuild(id));
    }
  }

  for (IndexId id : desired.ids()) {
    if (materialized_.Contains(id)) continue;
    if (BuildBlocked(id)) continue;  // backoff or quarantine
    if (strategy_ == SchedulingStrategy::kImmediate) {
      double build_seconds = BuildSeconds(id);
      if (faults_ != nullptr) {
        build_seconds *= faults_->Multiplier(fault_sites::kIndexBuildSlow);
      }
      StagedTree staged;
      if (auto it = prefetched.find(id); it != prefetched.end()) {
        staged = std::move(it->second);
        prefetched.erase(it);
      }
      const Status built = TryBuild(id, std::move(staged));
      if (built.ok()) {
        failures_.erase(id);
        materialized_.Add(id);
        catalog_->BumpVersion();
        IndexAction action;
        action.type = IndexActionType::kMaterialize;
        action.index = id;
        action.build_seconds = build_seconds;
        actions.push_back(action);
        metrics_.builds_completed->Increment();
        if (provenance_ != nullptr) {
          provenance_->RecordEvent("scheduler.install")
              .Index(id)
              .Attr("cause", cause)
              .Attr("name", catalog_->index(id).name)
              .Attr("build_seconds", build_seconds);
        }
      } else if (IsTransient(built.code())) {
        // The attempt consumed its build time before failing; charge it.
        IndexAction action;
        action.type = IndexActionType::kBuildFailed;
        action.index = id;
        action.build_seconds = build_seconds;
        actions.push_back(action);
        wasted_build_seconds_ += build_seconds;
        metrics_.builds_failed->Increment();
        RecordBuildFailure(id, &actions);
      } else {
        return built;
      }
    } else {
      const bool queued =
          std::any_of(pending_.begin(), pending_.end(),
                      [&](const PendingBuild& b) { return b.index == id; });
      if (!queued) {
        PendingBuild build;
        build.index = id;
        build.remaining_seconds = BuildSeconds(id);
        // Background mode: the physical bulk load starts now, overlapping
        // the query stream; the simulated idle clock still gates when the
        // index becomes visible (OnIdle joins the future at completion).
        build.staged = StageBuild(id);
        pending_.push_back(std::move(build));
      }
    }
  }
  metrics_.pending_builds->Set(static_cast<double>(pending_.size()));
  return actions;
}

Result<std::vector<IndexAction>> Scheduler::OnIdle(double seconds) {
  std::vector<IndexAction> completed;
  while (!pending_.empty()) {
    PendingBuild& build = pending_.front();
    // Zero-cost builds must complete even with no idle time left; paid
    // builds stop consuming once the idle budget is exhausted.
    if (build.remaining_seconds > 1e-12 && seconds <= 0.0) break;
    const double spent = std::min(seconds, build.remaining_seconds);
    build.remaining_seconds -= spent;
    build.spent_seconds += spent;
    idle_seconds_spent_ += spent;
    seconds -= spent;
    if (build.remaining_seconds > 1e-12) break;  // out of idle time
    const IndexId id = build.index;
    const double sunk = build.spent_seconds;
    StagedTree staged = std::move(build.staged);
    pending_.pop_front();
    const Status built = TryBuild(id, std::move(staged));
    if (built.ok()) {
      failures_.erase(id);
      materialized_.Add(id);
      catalog_->BumpVersion();
      IndexAction action;
      action.type = IndexActionType::kMaterialize;
      action.index = id;
      action.build_seconds = 0.0;  // performed during idle time
      completed.push_back(action);
      metrics_.builds_completed->Increment();
      if (provenance_ != nullptr) {
        provenance_->RecordEvent("scheduler.install")
            .Index(id)
            .Attr("cause", "idle")
            .Attr("name", catalog_->index(id).name)
            .Attr("build_seconds", 0.0);
      }
    } else if (IsTransient(built.code())) {
      // The idle work is lost; the retry machinery decides when (and
      // whether) ApplyConfiguration may queue the index again.
      IndexAction action;
      action.type = IndexActionType::kBuildFailed;
      action.index = id;
      action.build_seconds = 0.0;
      completed.push_back(action);
      wasted_idle_seconds_ += sunk;
      metrics_.builds_failed->Increment();
      RecordBuildFailure(id, &completed);
    } else {
      return built;
    }
  }
  metrics_.pending_builds->Set(static_cast<double>(pending_.size()));
  return completed;
}

std::vector<IndexId> Scheduler::PendingBuilds() const {
  std::vector<IndexId> out;
  out.reserve(pending_.size());
  for (const auto& b : pending_) out.push_back(b.index);
  return out;
}

int64_t Scheduler::MaterializedBytes() const {
  int64_t total = 0;
  for (IndexId id : materialized_.ids()) {
    total += catalog_->index(id).size_bytes;
  }
  return total;
}

namespace {
constexpr uint32_t kSchedulerSectionTag = 0x44484353;  // "SCHD"
}  // namespace

void Scheduler::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kSchedulerSectionTag);
  const std::vector<IndexId>& materialized = materialized_.ids();
  writer->WriteU64(materialized.size());
  for (IndexId id : materialized) writer->WriteI64(id);
  writer->WriteU64(pending_.size());
  for (const PendingBuild& build : pending_) {
    writer->WriteI64(build.index);
    writer->WriteDouble(build.remaining_seconds);
    writer->WriteDouble(build.spent_seconds);
  }
  std::vector<IndexId> failed_ids;
  failed_ids.reserve(failures_.size());
  for (const auto& [id, state] : failures_) failed_ids.push_back(id);
  std::sort(failed_ids.begin(), failed_ids.end());
  writer->WriteU64(failed_ids.size());
  for (IndexId id : failed_ids) {
    const FailureState& state = failures_.at(id);
    writer->WriteI64(id);
    writer->WriteI64(state.consecutive_failures);
    writer->WriteI64(state.retry_after_round);
    writer->WriteI64(state.quarantine_until_round);
  }
  writer->WriteI64(round_);
  writer->WriteI64(build_failures_);
  writer->WriteI64(quarantine_events_);
  writer->WriteDouble(wasted_build_seconds_);
  writer->WriteDouble(wasted_idle_seconds_);
  writer->WriteDouble(idle_seconds_spent_);
}

Status Scheduler::LoadState(BinaryReader* reader) {
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kSchedulerSectionTag));
  uint64_t materialized_count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&materialized_count));
  IndexConfiguration materialized;
  for (uint64_t i = 0; i < materialized_count; ++i) {
    int64_t id = 0;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&id));
    if (!catalog_->HasIndex(static_cast<IndexId>(id))) {
      return Status::InvalidArgument("materialized index id " +
                                     std::to_string(id) +
                                     " is not in the catalog");
    }
    materialized.Add(static_cast<IndexId>(id));
  }
  uint64_t pending_count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&pending_count));
  std::deque<PendingBuild> pending;
  for (uint64_t i = 0; i < pending_count; ++i) {
    PendingBuild build;
    int64_t id = 0;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&id));
    if (!catalog_->HasIndex(static_cast<IndexId>(id))) {
      return Status::InvalidArgument("pending build index id " +
                                     std::to_string(id) +
                                     " is not in the catalog");
    }
    build.index = static_cast<IndexId>(id);
    COLT_RETURN_IF_ERROR(reader->ReadDouble(&build.remaining_seconds));
    COLT_RETURN_IF_ERROR(reader->ReadDouble(&build.spent_seconds));
    pending.push_back(std::move(build));
  }
  uint64_t failure_count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&failure_count));
  std::unordered_map<IndexId, FailureState> failures;
  for (uint64_t i = 0; i < failure_count; ++i) {
    int64_t id = 0;
    int64_t consecutive = 0;
    FailureState state;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&id));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&consecutive));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&state.retry_after_round));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&state.quarantine_until_round));
    if (!catalog_->HasIndex(static_cast<IndexId>(id))) {
      return Status::InvalidArgument("failure state index id " +
                                     std::to_string(id) +
                                     " is not in the catalog");
    }
    state.consecutive_failures = static_cast<int>(consecutive);
    failures.emplace(static_cast<IndexId>(id), state);
  }
  int64_t round = 0;
  int64_t build_failures = 0;
  int64_t quarantine_events = 0;
  double wasted_build = 0.0;
  double wasted_idle = 0.0;
  double idle_spent = 0.0;
  COLT_RETURN_IF_ERROR(reader->ReadI64(&round));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&build_failures));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&quarantine_events));
  COLT_RETURN_IF_ERROR(reader->ReadDouble(&wasted_build));
  COLT_RETURN_IF_ERROR(reader->ReadDouble(&wasted_idle));
  COLT_RETURN_IF_ERROR(reader->ReadDouble(&idle_spent));
  // Physical trees are never page-imaged: rebuild each materialized index
  // from its base table. No catalog version bumps here — recovery restores
  // the saved version counter after every section is loaded, so the
  // rebuilt state carries exactly the version the snapshot recorded.
  if (db_ != nullptr) {
    const std::vector<IndexId> built = db_->BuiltIndexIds();
    for (IndexId id : materialized.ids()) {
      if (std::find(built.begin(), built.end(), id) != built.end()) continue;
      COLT_RETURN_IF_ERROR(db_->BuildIndex(id));
    }
  }
  materialized_ = std::move(materialized);
  pending_ = std::move(pending);
  // Background mode: restart the physical bulk loads the crash discarded;
  // the simulated idle clock (remaining_seconds) carries over.
  for (PendingBuild& build : pending_) build.staged = StageBuild(build.index);
  failures_ = std::move(failures);
  round_ = round;
  build_failures_ = build_failures;
  quarantine_events_ = quarantine_events;
  wasted_build_seconds_ = wasted_build;
  wasted_idle_seconds_ = wasted_idle;
  idle_seconds_spent_ = idle_spent;
  metrics_.pending_builds->Set(static_cast<double>(pending_.size()));
  return Status::OK();
}

}  // namespace colt
