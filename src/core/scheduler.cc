#include "core/scheduler.h"

#include <algorithm>

namespace colt {

double Scheduler::BuildSeconds(IndexId id) const {
  const IndexDescriptor& desc = catalog_->index(id);
  const TableSchema& table = catalog_->table(desc.column.table);
  return cost_model_->ToSeconds(
      cost_model_->MaterializationCost(table, desc));
}

Status Scheduler::Materialize(IndexId id) {
  if (db_ != nullptr) {
    COLT_RETURN_IF_ERROR(db_->BuildIndex(id));
  }
  materialized_.Add(id);
  return Status::OK();
}

Result<std::vector<IndexAction>> Scheduler::ApplyConfiguration(
    const IndexConfiguration& desired) {
  std::vector<IndexAction> actions;
  // Drops first (free budget immediately, costless).
  for (IndexId id : materialized_.ids()) {
    if (desired.Contains(id)) continue;
    IndexAction action;
    action.type = IndexActionType::kDrop;
    action.index = id;
    actions.push_back(action);
  }
  for (const auto& action : actions) {
    if (db_ != nullptr) db_->DropIndex(action.index);
    materialized_.Remove(action.index);
  }
  // Cancel queued builds that are no longer desired.
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&](const PendingBuild& b) {
                                  return !desired.Contains(b.index);
                                }),
                 pending_.end());

  for (IndexId id : desired.ids()) {
    if (materialized_.Contains(id)) continue;
    if (strategy_ == SchedulingStrategy::kImmediate) {
      IndexAction action;
      action.type = IndexActionType::kMaterialize;
      action.index = id;
      action.build_seconds = BuildSeconds(id);
      COLT_RETURN_IF_ERROR(Materialize(id));
      actions.push_back(action);
    } else {
      const bool queued =
          std::any_of(pending_.begin(), pending_.end(),
                      [&](const PendingBuild& b) { return b.index == id; });
      if (!queued) {
        pending_.push_back(PendingBuild{id, BuildSeconds(id)});
      }
    }
  }
  return actions;
}

Result<std::vector<IndexAction>> Scheduler::OnIdle(double seconds) {
  std::vector<IndexAction> completed;
  while (seconds > 0.0 && !pending_.empty()) {
    PendingBuild& build = pending_.front();
    const double spent = std::min(seconds, build.remaining_seconds);
    build.remaining_seconds -= spent;
    seconds -= spent;
    if (build.remaining_seconds <= 1e-12) {
      IndexAction action;
      action.type = IndexActionType::kMaterialize;
      action.index = build.index;
      action.build_seconds = 0.0;  // performed during idle time
      COLT_RETURN_IF_ERROR(Materialize(build.index));
      completed.push_back(action);
      pending_.pop_front();
    }
  }
  return completed;
}

std::vector<IndexId> Scheduler::PendingBuilds() const {
  std::vector<IndexId> out;
  out.reserve(pending_.size());
  for (const auto& b : pending_) out.push_back(b.index);
  return out;
}

int64_t Scheduler::MaterializedBytes() const {
  int64_t total = 0;
  for (IndexId id : materialized_.ids()) {
    total += catalog_->index(id).size_bytes;
  }
  return total;
}

}  // namespace colt
