#include "core/gain_stats.h"

#include <algorithm>

namespace colt {

void GainStatsStore::Record(IndexId index, ClusterId cluster, double gain,
                            uint64_t table_sig) {
  PairStats& stats = pairs_[PairKey{index, cluster}];
  if (stats.table_sig != table_sig) {
    // Configuration on the index's table changed since the last
    // measurement; previous statistics are inconsistent (paper §4.1).
    stats.gains.Reset();
    stats.epoch_sum = 0.0;
    stats.epoch_count = 0;
    stats.table_sig = table_sig;
  }
  stats.gains.Add(gain);
  stats.epoch_sum += gain;
  ++stats.epoch_count;
}

const GainStatsStore::PairStats* GainStatsStore::Find(
    IndexId index, ClusterId cluster, uint64_t table_sig) const {
  auto it = pairs_.find(PairKey{index, cluster});
  if (it == pairs_.end()) return nullptr;
  if (it->second.table_sig != table_sig) return nullptr;
  return &it->second;
}

int64_t GainStatsStore::MeasurementCount(IndexId index, ClusterId cluster,
                                         uint64_t table_sig) const {
  const PairStats* stats = Find(index, cluster, table_sig);
  return stats == nullptr ? 0 : stats->gains.count();
}

ConfidenceInterval GainStatsStore::Interval(IndexId index, ClusterId cluster,
                                            uint64_t table_sig) const {
  const PairStats* stats = Find(index, cluster, table_sig);
  if (stats == nullptr) {
    ConfidenceInterval ci;
    ci.low = -kUnknownHalfWidth;
    ci.high = kUnknownHalfWidth;
    return ci;
  }
  return MeanConfidenceInterval(stats->gains, confidence_);
}

double GainStatsStore::Variance(IndexId index, ClusterId cluster,
                                uint64_t table_sig) const {
  const PairStats* stats = Find(index, cluster, table_sig);
  return stats == nullptr ? 0.0 : stats->gains.variance();
}

void GainStatsStore::EpochMeasurements(IndexId index, ClusterId cluster,
                                       double* sum, int64_t* count) const {
  auto it = pairs_.find(PairKey{index, cluster});
  if (it == pairs_.end()) {
    *sum = 0.0;
    *count = 0;
    return;
  }
  *sum = it->second.epoch_sum;
  *count = it->second.epoch_count;
}

void GainStatsStore::AdvanceEpoch() {
  for (auto& entry : pairs_) {
    entry.second.epoch_sum = 0.0;
    entry.second.epoch_count = 0;
  }
}

void GainStatsStore::EraseIndex(IndexId index) {
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    if (it->first.index == index) {
      it = pairs_.erase(it);
    } else {
      ++it;
    }
  }
}

void GainStatsStore::RetainClusters(const std::vector<ClusterId>& live) {
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    if (!std::binary_search(live.begin(), live.end(), it->first.cluster)) {
      it = pairs_.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {
constexpr uint32_t kGainSectionTag = 0x4E494147;  // "GAIN"
}  // namespace

void GainStatsStore::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kGainSectionTag);
  std::vector<PairKey> keys;
  keys.reserve(pairs_.size());
  for (const auto& [key, stats] : pairs_) keys.push_back(key);
  std::sort(keys.begin(), keys.end(), [](const PairKey& a, const PairKey& b) {
    return a.index != b.index ? a.index < b.index : a.cluster < b.cluster;
  });
  writer->WriteU64(keys.size());
  for (const PairKey& key : keys) {
    const PairStats& stats = pairs_.at(key);
    writer->WriteI64(key.index);
    writer->WriteI64(key.cluster);
    writer->WriteI64(stats.gains.count());
    writer->WriteDouble(stats.gains.raw_mean());
    writer->WriteDouble(stats.gains.raw_m2());
    writer->WriteU64(stats.table_sig);
    writer->WriteDouble(stats.epoch_sum);
    writer->WriteI64(stats.epoch_count);
  }
}

Status GainStatsStore::LoadState(BinaryReader* reader) {
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kGainSectionTag));
  uint64_t pair_count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&pair_count));
  std::unordered_map<PairKey, PairStats, PairKeyHash> pairs;
  for (uint64_t i = 0; i < pair_count; ++i) {
    int64_t index = 0, cluster = 0;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&index));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&cluster));
    PairStats stats;
    int64_t count = 0;
    double mean = 0.0, m2 = 0.0;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&count));
    COLT_RETURN_IF_ERROR(reader->ReadDouble(&mean));
    COLT_RETURN_IF_ERROR(reader->ReadDouble(&m2));
    stats.gains.Restore(count, mean, m2);
    COLT_RETURN_IF_ERROR(reader->ReadU64(&stats.table_sig));
    COLT_RETURN_IF_ERROR(reader->ReadDouble(&stats.epoch_sum));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&stats.epoch_count));
    pairs.emplace(
        PairKey{static_cast<IndexId>(index), static_cast<ClusterId>(cluster)},
        stats);
  }
  pairs_ = std::move(pairs);
  return Status::OK();
}

}  // namespace colt
