#include "core/gain_stats.h"

#include <algorithm>

namespace colt {

void GainStatsStore::Record(IndexId index, ClusterId cluster, double gain,
                            uint64_t table_sig) {
  PairStats& stats = pairs_[PairKey{index, cluster}];
  if (stats.table_sig != table_sig) {
    // Configuration on the index's table changed since the last
    // measurement; previous statistics are inconsistent (paper §4.1).
    stats.gains.Reset();
    stats.epoch_sum = 0.0;
    stats.epoch_count = 0;
    stats.table_sig = table_sig;
  }
  stats.gains.Add(gain);
  stats.epoch_sum += gain;
  ++stats.epoch_count;
}

const GainStatsStore::PairStats* GainStatsStore::Find(
    IndexId index, ClusterId cluster, uint64_t table_sig) const {
  auto it = pairs_.find(PairKey{index, cluster});
  if (it == pairs_.end()) return nullptr;
  if (it->second.table_sig != table_sig) return nullptr;
  return &it->second;
}

int64_t GainStatsStore::MeasurementCount(IndexId index, ClusterId cluster,
                                         uint64_t table_sig) const {
  const PairStats* stats = Find(index, cluster, table_sig);
  return stats == nullptr ? 0 : stats->gains.count();
}

ConfidenceInterval GainStatsStore::Interval(IndexId index, ClusterId cluster,
                                            uint64_t table_sig) const {
  const PairStats* stats = Find(index, cluster, table_sig);
  if (stats == nullptr) {
    ConfidenceInterval ci;
    ci.low = -kUnknownHalfWidth;
    ci.high = kUnknownHalfWidth;
    return ci;
  }
  return MeanConfidenceInterval(stats->gains, confidence_);
}

double GainStatsStore::Variance(IndexId index, ClusterId cluster,
                                uint64_t table_sig) const {
  const PairStats* stats = Find(index, cluster, table_sig);
  return stats == nullptr ? 0.0 : stats->gains.variance();
}

void GainStatsStore::EpochMeasurements(IndexId index, ClusterId cluster,
                                       double* sum, int64_t* count) const {
  auto it = pairs_.find(PairKey{index, cluster});
  if (it == pairs_.end()) {
    *sum = 0.0;
    *count = 0;
    return;
  }
  *sum = it->second.epoch_sum;
  *count = it->second.epoch_count;
}

void GainStatsStore::AdvanceEpoch() {
  for (auto& entry : pairs_) {
    entry.second.epoch_sum = 0.0;
    entry.second.epoch_count = 0;
  }
}

void GainStatsStore::EraseIndex(IndexId index) {
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    if (it->first.index == index) {
      it = pairs_.erase(it);
    } else {
      ++it;
    }
  }
}

void GainStatsStore::RetainClusters(const std::vector<ClusterId>& live) {
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    if (!std::binary_search(live.begin(), live.end(), it->first.cluster)) {
      it = pairs_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace colt
