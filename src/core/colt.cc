#include "core/colt.h"

#include <algorithm>

#include "common/logging.h"

namespace colt {

ColtTuner::ColtTuner(Catalog* catalog, QueryOptimizer* optimizer,
                     ColtConfig config, Database* db, uint64_t seed)
    : catalog_(catalog),
      optimizer_(optimizer),
      config_(config),
      clusters_(catalog, config.history_depth),
      hot_stats_(config.confidence),
      mat_stats_(config.confidence),
      candidates_(config.history_depth, config.crude_smoothing_alpha),
      forecaster_(config.history_depth),
      profiler_(catalog, optimizer, &clusters_, &hot_stats_, &mat_stats_,
                &candidates_, &config_, seed),
      self_organizer_(catalog, optimizer, &clusters_, &hot_stats_,
                      &mat_stats_, &candidates_, &forecaster_, &profiler_,
                      &config_),
      scheduler_(catalog, &optimizer->cost_model(), db,
                 config.scheduling_strategy),
      whatif_limit_(config.max_whatif_per_epoch) {}

std::vector<ColtTuner::IndexExplanation> ColtTuner::ExplainState() {
  const IndexConfiguration& materialized = scheduler_.materialized();
  std::vector<IndexExplanation> out;
  auto add = [&](IndexId id, const std::string& role) {
    IndexExplanation e;
    e.index = id;
    e.name = catalog_->index(id).name;
    e.role = role;
    e.crude_benefit = candidates_.SmoothedBenefit(id);
    e.forecast_benefit = forecaster_.TotalPredictedBenefit(id);
    e.mat_cost =
        materialized.Contains(id) ? 0.0 : self_organizer_.MatCost(id);
    e.net_benefit = self_organizer_.NetBenefit(id, materialized);
    e.size_bytes = catalog_->index(id).size_bytes;
    out.push_back(std::move(e));
  };
  for (IndexId id : materialized.ids()) add(id, "materialized");
  for (IndexId id : hot_set_) {
    if (!materialized.Contains(id)) add(id, "hot");
  }
  for (IndexId id : candidates_.All()) {
    if (materialized.Contains(id)) continue;
    if (std::find(hot_set_.begin(), hot_set_.end(), id) != hot_set_.end()) {
      continue;
    }
    add(id, "candidate");
  }
  std::sort(out.begin(), out.end(),
            [](const IndexExplanation& a, const IndexExplanation& b) {
              return a.net_benefit > b.net_benefit;
            });
  return out;
}

TuningStep ColtTuner::OnQuery(const Query& q) {
  TuningStep step;
  // Idle-time scheduling: the gap before this query makes progress on any
  // queued builds; completed indexes are visible to this query's plan.
  if (config_.scheduling_strategy == SchedulingStrategy::kIdleTime) {
    Result<std::vector<IndexAction>> completed =
        scheduler_.OnIdle(config_.idle_seconds_per_query);
    COLT_CHECK(completed.ok()) << completed.status().ToString();
    for (auto& action : *completed) step.actions.push_back(action);
  }
  const IndexConfiguration& materialized = scheduler_.materialized();

  // Normal optimization: this is the plan the engine executes.
  step.plan = optimizer_->Optimize(q, materialized);
  step.execution_seconds = optimizer_->cost_model().ToSeconds(step.plan.cost);

  // Profiling (paper Fig. 2).
  const Profiler::ProfileOutcome profile = profiler_.ProfileQuery(
      q, step.plan, materialized, hot_set_, whatif_limit_, &whatif_used_,
      epoch_);
  step.whatif_calls = profile.whatif_calls;
  step.profiling_seconds = profile.whatif_calls * config_.whatif_call_seconds;
  for (IndexId id : profile.probed) {
    if (!std::binary_search(ever_probed_.begin(), ever_probed_.end(), id)) {
      ever_probed_.insert(
          std::lower_bound(ever_probed_.begin(), ever_probed_.end(), id), id);
    }
  }

  // Epoch boundary: reorganization + re-budgeting.
  if (++queries_in_epoch_ >= config_.epoch_length) {
    step.epoch_ended = true;
    const SelfOrganizer::Outcome outcome =
        self_organizer_.RunEpochEnd(materialized, hot_set_);

    EpochReport report;
    report.epoch = epoch_;
    report.whatif_used = whatif_used_;
    report.whatif_limit = whatif_limit_;
    report.next_whatif_limit = outcome.next_whatif_limit;
    report.rebudget_ratio = outcome.rebudget_ratio;
    report.candidate_count = static_cast<int64_t>(candidates_.size());
    report.cluster_count = clusters_.live_cluster_count();
    report.hot_ids = outcome.new_hot;
    report.materialized_ids = outcome.new_materialized.ids();

    Result<std::vector<IndexAction>> actions =
        scheduler_.ApplyConfiguration(outcome.new_materialized);
    COLT_CHECK(actions.ok()) << actions.status().ToString();
    for (auto& action : *actions) {
      step.build_seconds += action.build_seconds;
      step.actions.push_back(action);
    }
    report.materialized_bytes = scheduler_.MaterializedBytes();
    epoch_reports_.push_back(std::move(report));

    hot_set_ = outcome.new_hot;
    whatif_limit_ = outcome.next_whatif_limit;
    if (!step.actions.empty()) {
      // The configuration changed: statistics on the affected tables are
      // now inconsistent, so guarantee enough budget to re-validate.
      whatif_limit_ = std::min(
          config_.max_whatif_per_epoch,
          std::max(whatif_limit_, config_.min_budget_after_change));
    }
    whatif_used_ = 0;
    queries_in_epoch_ = 0;

    // Roll the statistical state into the next epoch.
    profiler_.AdvanceEpoch();
    hot_stats_.AdvanceEpoch();
    mat_stats_.AdvanceEpoch();
    candidates_.AdvanceEpoch(epoch_, config_.epoch_length);
    clusters_.AdvanceEpoch();
    const std::vector<ClusterId> live = clusters_.LiveClusters();
    hot_stats_.RetainClusters(live);
    mat_stats_.RetainClusters(live);
    ++epoch_;
  }
  return step;
}

}  // namespace colt
