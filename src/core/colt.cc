#include "core/colt.h"

#include <algorithm>

#include "common/logging.h"
#include "common/tracing.h"
#include "exec/executor.h"

namespace colt {

namespace {

/// Routes one scheduler action's charged time into the step's successful
/// vs. wasted build accounting (kBuildFailed time is wasted by
/// definition; everything else is useful work).
void ChargeAction(const IndexAction& action, TuningStep* step) {
  if (action.type == IndexActionType::kBuildFailed) {
    step->wasted_build_seconds += action.build_seconds;
  } else {
    step->build_seconds += action.build_seconds;
  }
  step->actions.push_back(action);
}

}  // namespace

ColtTuner::ColtTuner(Catalog* catalog, QueryOptimizer* optimizer,
                     ColtConfig config, Database* db, uint64_t seed)
    : catalog_(catalog),
      optimizer_(optimizer),
      db_(db),
      config_(config),
      faults_(config.fault),
      pool_(config.num_workers > 0
                ? std::make_unique<ThreadPool>(config.num_workers)
                : nullptr),
      provenance_(kProvenanceCompiledIn && config.provenance_events > 0
                      ? std::make_unique<ProvenanceRecorder>(
                            config.provenance_events)
                      : nullptr),
      clusters_(catalog, config.history_depth),
      hot_stats_(config.confidence),
      mat_stats_(config.confidence),
      candidates_(config.history_depth, config.crude_smoothing_alpha),
      forecaster_(config.history_depth),
      profiler_(catalog, optimizer, &clusters_, &hot_stats_, &mat_stats_,
                &candidates_, &config_, seed, &faults_, pool_.get(),
                provenance_.get()),
      self_organizer_(catalog, optimizer, &clusters_, &hot_stats_,
                      &mat_stats_, &candidates_, &forecaster_, &profiler_,
                      &config_, provenance_.get(), &write_stats_),
      scheduler_(catalog, &optimizer->cost_model(), db,
                 config.scheduling_strategy, &faults_,
                 Scheduler::RetryPolicy{config.max_build_retries,
                                        config.build_backoff_base_rounds,
                                        config.max_build_backoff_rounds,
                                        config.quarantine_cooldown_rounds},
                 pool_.get(), provenance_.get()),
      whatif_limit_(config.max_whatif_per_epoch) {
  if (!config_.state_dir.empty()) {
    CheckpointStore::Options options;
    options.faults = &faults_;
    checkpoint_ =
        std::make_unique<CheckpointStore>(config_.state_dir, options);
  }
  MetricsRegistry& reg = MetricsRegistry::Default();
  metrics_.queries = reg.GetCounter("colt.queries");
  metrics_.epochs = reg.GetCounter("colt.epochs");
  metrics_.emergency_evictions = reg.GetCounter("colt.emergency_evictions");
  metrics_.budget_utilization = reg.GetGauge("colt.budget_utilization");
  metrics_.on_query_seconds = reg.GetHistogram("colt.on_query.seconds");
}

void ColtTuner::MaybeShrinkBudget(TuningStep* step) {
  const double factor = faults_.Multiplier(fault_sites::kBudgetShrink);
  if (factor >= 1.0) return;
  config_.storage_budget_bytes = static_cast<int64_t>(
      static_cast<double>(config_.storage_budget_bytes) * factor);
  COLT_LOG(Warning) << "storage budget shrunk to "
                    << config_.storage_budget_bytes << " bytes";
  // Emergency eviction: drop the lowest-net-benefit materialized indexes
  // until the configuration fits again. The knapsack would converge at the
  // next epoch boundary anyway, but the budget invariant must hold for
  // every query in between.
  IndexConfiguration desired = scheduler_.materialized();
  int64_t bytes = scheduler_.MaterializedBytes();
  while (bytes > config_.storage_budget_bytes && !desired.empty()) {
    IndexId victim = kInvalidIndexId;
    double victim_benefit = 0.0;
    for (IndexId id : desired.ids()) {
      const double net = self_organizer_.NetBenefit(id, desired);
      if (victim == kInvalidIndexId || net < victim_benefit) {
        victim = id;
        victim_benefit = net;
      }
    }
    bytes -= catalog_->index(victim).size_bytes;
    desired.Remove(victim);
  }
  if (desired == scheduler_.materialized()) return;
  const int dropped = static_cast<int>(scheduler_.materialized().size()) -
                      static_cast<int>(desired.size());
  if (provenance_ != nullptr) {
    // The per-victim scheduler.drop events carry cause "emergency"; this
    // event records the trigger itself.
    provenance_->RecordEvent("colt.emergency_eviction")
        .Attr("new_budget", config_.storage_budget_bytes)
        .Attr("dropped", static_cast<int64_t>(dropped));
  }
  Result<std::vector<IndexAction>> actions =
      scheduler_.ApplyConfiguration(desired, "emergency");
  if (!actions.ok()) {
    COLT_LOG(Error) << "emergency eviction failed: "
                    << actions.status().ToString();
    return;
  }
  for (const auto& action : *actions) ChargeAction(action, step);
  emergency_evictions_epoch_ += dropped;
  emergency_evictions_total_ += dropped;
  metrics_.emergency_evictions->Add(dropped);
}

std::vector<ColtTuner::IndexExplanation> ColtTuner::ExplainState() {
  const IndexConfiguration& materialized = scheduler_.materialized();
  std::vector<IndexExplanation> out;
  auto add = [&](IndexId id, const std::string& role) {
    IndexExplanation e;
    e.index = id;
    e.name = catalog_->index(id).name;
    e.role = role;
    e.crude_benefit = candidates_.SmoothedBenefit(id);
    e.forecast_benefit = forecaster_.TotalPredictedBenefit(id);
    e.mat_cost =
        materialized.Contains(id) ? 0.0 : self_organizer_.MatCost(id);
    e.net_benefit = self_organizer_.NetBenefit(id, materialized);
    e.size_bytes = catalog_->index(id).size_bytes;
    out.push_back(std::move(e));
  };
  for (IndexId id : materialized.ids()) add(id, "materialized");
  for (IndexId id : hot_set_) {
    if (!materialized.Contains(id)) add(id, "hot");
  }
  for (IndexId id : candidates_.All()) {
    if (materialized.Contains(id)) continue;
    if (std::find(hot_set_.begin(), hot_set_.end(), id) != hot_set_.end()) {
      continue;
    }
    add(id, "candidate");
  }
  std::sort(out.begin(), out.end(),
            [](const IndexExplanation& a, const IndexExplanation& b) {
              return a.net_benefit > b.net_benefit;
            });
  return out;
}

TuningStep ColtTuner::OnQuery(const Query& q) {
  metrics_.queries->Increment();
  ++queries_observed_;
  // Context for every event recorded while this query is observed: the
  // 0-based lifetime sequence number survives recovery, so a resumed run
  // stamps exactly the ids an uninterrupted one would.
  if (provenance_ != nullptr) {
    provenance_->SetContext(epoch_, queries_observed_ - 1);
  }
  ScopedTimer on_query_timer(metrics_.on_query_seconds);
  Tracer::Scope span = Tracer::Default().StartSpan("on_query", "core");
  TuningStep step;
  // Substrate weather first: a mid-run budget shrink must be honoured
  // before this query's plan and invariant checks.
  if (faults_.enabled()) MaybeShrinkBudget(&step);
  // Idle-time scheduling: the gap before this query makes progress on any
  // queued builds; completed indexes are visible to this query's plan.
  if (config_.scheduling_strategy == SchedulingStrategy::kIdleTime) {
    Result<std::vector<IndexAction>> completed =
        scheduler_.OnIdle(config_.idle_seconds_per_query);
    if (completed.ok()) {
      for (const auto& action : *completed) ChargeAction(action, &step);
    } else {
      COLT_LOG(Error) << "idle build failed: "
                      << completed.status().ToString();
    }
  }
  const IndexConfiguration& materialized = scheduler_.materialized();

  // Normal optimization: this is the plan the engine executes.
  step.plan = optimizer_->Optimize(q, materialized);
  step.execution_seconds = optimizer_->cost_model().ToSeconds(step.plan.cost);
  if (faults_.enabled()) {
    // Degraded-storage weather: scans take longer than the plan predicts.
    step.execution_seconds *= faults_.Multiplier(fault_sites::kStorageScan);
  }

  if (q.is_write()) {
    // Write statement (DESIGN.md §16). The plan cost already includes the
    // maintenance of every materialized index on the target table; surface
    // the split for timeline reporting and record the optimizer-estimated
    // volumes the Self-Organizer will convert into per-index maintenance
    // charges at the epoch boundary. Estimated (not executed) rows keep
    // the charge in model currency, identical with or without a physical
    // database attached.
    step.maintenance_seconds =
        optimizer_->cost_model().ToSeconds(step.plan.maintenance_cost);
    switch (q.kind()) {
      case StatementKind::kInsert:
        write_stats_.RecordInsert(q.write_table(), step.plan.rows);
        break;
      case StatementKind::kUpdate: {
        std::vector<ColumnId> columns;
        for (const SetClause& s : q.set_clauses()) columns.push_back(s.column);
        std::sort(columns.begin(), columns.end());
        columns.erase(std::unique(columns.begin(), columns.end()),
                      columns.end());
        write_stats_.RecordUpdate(q.write_table(), columns, step.plan.rows);
        break;
      }
      case StatementKind::kDelete:
        write_stats_.RecordDelete(q.write_table(), step.plan.rows);
        break;
      case StatementKind::kSelect:
        break;
    }
    if (db_ != nullptr && db_->HasData(q.write_table())) {
      // Physically apply the statement so table data and built B+-trees
      // stay consistent with the statement stream. The measured page
      // counts are the executor's concern; tuning statistics above use
      // only the model estimates.
      Executor executor(db_);
      const Result<ExecutionResult> applied =
          executor.ExecuteWrite(db_, q, step.plan.plan.get());
      if (!applied.ok()) {
        COLT_LOG(Error) << "write application failed: "
                        << applied.status().ToString();
      }
    }
  } else {
    // Profiling (paper Fig. 2). Writes are never profiled: index benefit
    // for reads is a search problem (what-if probes), while maintenance
    // cost for writes is closed-form — the deterministic charge above.
    const Profiler::ProfileOutcome profile = profiler_.ProfileQuery(
        q, step.plan, materialized, hot_set_, whatif_limit_, &whatif_used_,
        epoch_);
    step.whatif_calls = profile.whatif_calls;
    step.degraded_whatif_calls = profile.degraded_calls;
    step.profiling_seconds = profile.charged_seconds;
    degraded_whatif_epoch_ += profile.degraded_calls;
    degraded_whatif_total_ += profile.degraded_calls;
    for (IndexId id : profile.probed) {
      if (!std::binary_search(ever_probed_.begin(), ever_probed_.end(), id)) {
        ever_probed_.insert(
            std::lower_bound(ever_probed_.begin(), ever_probed_.end(), id),
            id);
      }
    }
  }

  // Epoch boundary: reorganization + re-budgeting.
  if (++queries_in_epoch_ >= config_.epoch_length) {
    step.epoch_ended = true;
    const SelfOrganizer::Outcome outcome = self_organizer_.RunEpochEnd(
        materialized, hot_set_, scheduler_.QuarantinedIndexes());

    EpochReport report;
    report.epoch = epoch_;
    report.whatif_used = whatif_used_;
    report.whatif_limit = whatif_limit_;
    report.next_whatif_limit = outcome.next_whatif_limit;
    report.rebudget_ratio = outcome.rebudget_ratio;
    report.candidate_count = static_cast<int64_t>(candidates_.size());
    report.cluster_count = clusters_.live_cluster_count();
    report.hot_ids = outcome.new_hot;
    report.materialized_ids = outcome.new_materialized.ids();
    report.write_queries = write_stats_.epoch_write_queries();
    report.maintenance_charged = outcome.maintenance_charged;

    Result<std::vector<IndexAction>> actions =
        scheduler_.ApplyConfiguration(outcome.new_materialized);
    if (actions.ok()) {
      for (const auto& action : *actions) ChargeAction(action, &step);
    } else {
      // Keep tuning under the previous configuration; crashing the tuner
      // over a substrate error would defeat the self-regulation premise.
      COLT_LOG(Error) << "ApplyConfiguration failed: "
                      << actions.status().ToString()
                      << "; keeping previous configuration";
    }
    report.materialized_bytes = scheduler_.MaterializedBytes();
    report.degraded_whatif = degraded_whatif_epoch_;
    report.build_failures = static_cast<int>(scheduler_.build_failures() -
                                             build_failures_reported_);
    build_failures_reported_ = scheduler_.build_failures();
    report.quarantined_ids = scheduler_.QuarantinedIndexes();
    report.storage_budget_bytes = config_.storage_budget_bytes;
    report.emergency_evictions = emergency_evictions_epoch_;
    report.wasted_build_seconds =
        scheduler_.wasted_build_seconds() - wasted_build_reported_;
    wasted_build_reported_ = scheduler_.wasted_build_seconds();
    metrics_.epochs->Increment();
    metrics_.budget_utilization->Set(
        config_.storage_budget_bytes > 0
            ? static_cast<double>(report.materialized_bytes) /
                  static_cast<double>(config_.storage_budget_bytes)
            : 0.0);
    if (config_.epoch_metrics_snapshot &&
        MetricsRegistry::Default().enabled()) {
      report.metrics = MetricsRegistry::Default().Snapshot();
    }
    if (provenance_ != nullptr) {
      provenance_->RecordEvent("colt.epoch_end")
          .Attr("whatif_used", static_cast<int64_t>(whatif_used_))
          .Attr("whatif_limit", static_cast<int64_t>(whatif_limit_))
          .Attr("next_limit", static_cast<int64_t>(outcome.next_whatif_limit))
          .Attr("materialized_bytes", report.materialized_bytes)
          .Attr("budget", config_.storage_budget_bytes);
      report.provenance_events_total = provenance_->total_recorded();
      report.provenance_events_epoch =
          provenance_->total_recorded() - provenance_reported_;
      provenance_reported_ = provenance_->total_recorded();
      report.provenance_dropped = provenance_->dropped();
    }
    degraded_whatif_epoch_ = 0;
    emergency_evictions_epoch_ = 0;
    epoch_reports_.push_back(std::move(report));

    hot_set_ = outcome.new_hot;
    whatif_limit_ = outcome.next_whatif_limit;
    if (!step.actions.empty()) {
      // The configuration changed: statistics on the affected tables are
      // now inconsistent, so guarantee enough budget to re-validate.
      whatif_limit_ = std::min(
          config_.max_whatif_per_epoch,
          std::max(whatif_limit_, config_.min_budget_after_change));
    }
    whatif_used_ = 0;
    queries_in_epoch_ = 0;

    // Roll the statistical state into the next epoch.
    profiler_.AdvanceEpoch();
    hot_stats_.AdvanceEpoch();
    mat_stats_.AdvanceEpoch();
    write_stats_.AdvanceEpoch();
    candidates_.AdvanceEpoch(epoch_, config_.epoch_length);
    clusters_.AdvanceEpoch();
    const std::vector<ClusterId> live = clusters_.LiveClusters();
    hot_stats_.RetainClusters(live);
    mat_stats_.RetainClusters(live);
    ++epoch_;

    // Durability point: every component is at its epoch-boundary rest
    // state (usage counts cleared, cache segments merged), so the
    // serialized snapshot is exactly the state an uninterrupted run
    // carries into epoch_.
    if (checkpoint_ != nullptr) PersistEpochState();
  }
  return step;
}

namespace {
constexpr uint32_t kTunerSectionTag = 0x544C4F43;  // "COLT"
}  // namespace

uint64_t ColtTuner::ConfigFingerprint() const {
  BinaryWriter w;
  w.WriteI64(config_.epoch_length);
  w.WriteI64(config_.history_depth);
  w.WriteI64(config_.max_whatif_per_epoch);
  w.WriteDouble(config_.confidence);
  w.WriteDouble(config_.crude_smoothing_alpha);
  w.WriteI64(config_.max_hot_set_size);
  w.WriteDouble(config_.min_sample_rate);
  w.WriteI64(config_.min_measurements_for_interval);
  w.WriteDouble(config_.rebudget_low);
  w.WriteDouble(config_.rebudget_high);
  w.WriteDouble(config_.whatif_call_seconds);
  w.WriteI64(static_cast<int64_t>(config_.scheduling_strategy));
  w.WriteDouble(config_.idle_seconds_per_query);
  w.WriteBool(config_.fill_hot_by_density);
  w.WriteI64(config_.min_budget_for_fresh_hot);
  w.WriteI64(config_.min_budget_after_change);
  w.WriteBool(config_.mine_multicolumn_candidates);
  w.WriteBool(config_.charge_index_maintenance);
  w.WriteI64(config_.max_build_retries);
  w.WriteI64(config_.build_backoff_base_rounds);
  w.WriteI64(config_.max_build_backoff_rounds);
  w.WriteI64(config_.quarantine_cooldown_rounds);
  w.WriteDouble(config_.whatif_deadline_seconds);
  w.WriteBool(config_.enable_rebudgeting);
  w.WriteBool(config_.enable_adaptive_sampling);
  w.WriteDouble(config_.uniform_sample_rate);
  w.WriteBool(config_.conservative_estimates);
  w.WriteBool(config_.use_greedy_knapsack);
  w.WriteDouble(config_.conservative_floor_fraction);
  w.WriteI64(config_.whatif_cache_bytes);
  // Deliberately excluded: storage_budget_bytes (mutable at runtime via
  // budget.shrink faults; persisted as live state instead), num_workers,
  // epoch_metrics_snapshot, provenance_events and
  // provenance_annotate_origin (bit-identical tuning results at any
  // value — a resumed run may toggle observability freely), the fault
  // plan (a resumed run may drop the crash rules that killed its
  // predecessor), and state_dir itself.
  return Fnv1a64(w.buffer());
}

void ColtTuner::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kTunerSectionTag);
  writer->WriteU64(ConfigFingerprint());
  writer->WriteU64(catalog_->Fingerprint());
  writer->WriteI64(epoch_);
  writer->WriteI64(queries_in_epoch_);
  writer->WriteI64(queries_observed_);
  writer->WriteI64(whatif_limit_);
  writer->WriteI64(whatif_used_);
  writer->WriteI64(config_.storage_budget_bytes);
  writer->WriteU64(hot_set_.size());
  for (IndexId id : hot_set_) writer->WriteI64(id);
  writer->WriteU64(ever_probed_.size());
  for (IndexId id : ever_probed_) writer->WriteI64(id);
  writer->WriteI64(degraded_whatif_epoch_);
  writer->WriteI64(emergency_evictions_epoch_);
  writer->WriteI64(build_failures_reported_);
  writer->WriteI64(degraded_whatif_total_);
  writer->WriteI64(emergency_evictions_total_);
  writer->WriteDouble(wasted_build_reported_);
  faults_.SaveState(writer);
  catalog_->SaveState(writer);
  clusters_.SaveState(writer);
  hot_stats_.SaveState(writer);
  mat_stats_.SaveState(writer);
  candidates_.SaveState(writer);
  forecaster_.SaveState(writer);
  profiler_.SaveState(writer);
  scheduler_.SaveState(writer);
  write_stats_.SaveState(writer);
  writer->WriteBool(provenance_ != nullptr);
  if (provenance_ != nullptr) {
    writer->WriteI64(provenance_reported_);
    provenance_->SaveState(writer);
  }
}

Status ColtTuner::LoadState(BinaryReader* reader) {
  if (epoch_ != 0 || queries_in_epoch_ != 0 || queries_observed_ != 0) {
    return Status::FailedPrecondition(
        "LoadState requires a freshly constructed tuner");
  }
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kTunerSectionTag));
  uint64_t config_fp = 0;
  uint64_t catalog_fp = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&config_fp));
  COLT_RETURN_IF_ERROR(reader->ReadU64(&catalog_fp));
  // Both guards run before any mutation: a false return from
  // RecoverFromStateDir must leave the tuner usable for a cold start.
  if (config_fp != ConfigFingerprint()) {
    return Status::FailedPrecondition(
        "snapshot was taken under a different ColtConfig");
  }
  if (catalog_fp != catalog_->Fingerprint()) {
    return Status::FailedPrecondition(
        "snapshot was taken against a different catalog");
  }
  int64_t epoch = 0;
  int64_t queries_in_epoch = 0;
  int64_t queries_observed = 0;
  int64_t whatif_limit = 0;
  int64_t whatif_used = 0;
  int64_t storage_budget = 0;
  COLT_RETURN_IF_ERROR(reader->ReadI64(&epoch));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&queries_in_epoch));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&queries_observed));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&whatif_limit));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&whatif_used));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&storage_budget));
  uint64_t hot_count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&hot_count));
  std::vector<IndexId> hot_set;
  for (uint64_t i = 0; i < hot_count; ++i) {
    int64_t id = 0;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&id));
    hot_set.push_back(static_cast<IndexId>(id));
  }
  uint64_t probed_count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&probed_count));
  std::vector<IndexId> ever_probed;
  for (uint64_t i = 0; i < probed_count; ++i) {
    int64_t id = 0;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&id));
    ever_probed.push_back(static_cast<IndexId>(id));
  }
  int64_t degraded_epoch = 0;
  int64_t evictions_epoch = 0;
  int64_t build_failures_reported = 0;
  int64_t degraded_total = 0;
  int64_t evictions_total = 0;
  double wasted_build_reported = 0.0;
  COLT_RETURN_IF_ERROR(reader->ReadI64(&degraded_epoch));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&evictions_epoch));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&build_failures_reported));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&degraded_total));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&evictions_total));
  COLT_RETURN_IF_ERROR(reader->ReadDouble(&wasted_build_reported));

  COLT_RETURN_IF_ERROR(faults_.LoadState(reader));
  uint64_t catalog_version = 0;
  COLT_RETURN_IF_ERROR(catalog_->LoadState(reader, &catalog_version));
  COLT_RETURN_IF_ERROR(clusters_.LoadState(reader));
  COLT_RETURN_IF_ERROR(hot_stats_.LoadState(reader));
  COLT_RETURN_IF_ERROR(mat_stats_.LoadState(reader));
  COLT_RETURN_IF_ERROR(candidates_.LoadState(reader));
  COLT_RETURN_IF_ERROR(forecaster_.LoadState(reader));
  COLT_RETURN_IF_ERROR(profiler_.LoadState(reader));
  COLT_RETURN_IF_ERROR(scheduler_.LoadState(reader));
  COLT_RETURN_IF_ERROR(write_stats_.LoadState(reader));
  bool snapshot_has_provenance = false;
  COLT_RETURN_IF_ERROR(reader->ReadBool(&snapshot_has_provenance));
  int64_t provenance_reported = 0;
  if (snapshot_has_provenance) {
    COLT_RETURN_IF_ERROR(reader->ReadI64(&provenance_reported));
    if (provenance_ != nullptr) {
      COLT_RETURN_IF_ERROR(provenance_->LoadState(reader));
    } else {
      // The crashed run recorded provenance, this one does not: skip the
      // section so toggling observability never blocks recovery (the
      // knobs are excluded from the config fingerprint for the same
      // reason). Conversely, a recorder this run owns but the snapshot
      // lacks simply starts empty, ids from 0.
      ProvenanceRecorder scratch(1);
      COLT_RETURN_IF_ERROR(scratch.LoadState(reader));
    }
  }
  if (!reader->AtEnd()) {
    return Status::InvalidArgument("trailing bytes after tuner snapshot");
  }
  // Ids were read before the catalog section replayed the index
  // definitions, so they can only be checked now.
  for (IndexId id : hot_set) {
    if (!catalog_->HasIndex(id)) {
      return Status::InvalidArgument("hot set index id " +
                                     std::to_string(id) +
                                     " is not in the catalog");
    }
  }
  for (IndexId id : ever_probed) {
    if (!catalog_->HasIndex(id)) {
      return Status::InvalidArgument("probed index id " + std::to_string(id) +
                                     " is not in the catalog");
    }
  }

  epoch_ = static_cast<int>(epoch);
  queries_in_epoch_ = static_cast<int>(queries_in_epoch);
  queries_observed_ = queries_observed;
  whatif_limit_ = static_cast<int>(whatif_limit);
  whatif_used_ = static_cast<int>(whatif_used);
  config_.storage_budget_bytes = storage_budget;
  hot_set_ = std::move(hot_set);
  ever_probed_ = std::move(ever_probed);
  degraded_whatif_epoch_ = static_cast<int>(degraded_epoch);
  emergency_evictions_epoch_ = static_cast<int>(evictions_epoch);
  build_failures_reported_ = build_failures_reported;
  degraded_whatif_total_ = degraded_total;
  emergency_evictions_total_ = evictions_total;
  wasted_build_reported_ = wasted_build_reported;
  if (provenance_ != nullptr && snapshot_has_provenance) {
    provenance_reported_ = provenance_reported;
  }
  // Last: the catalog replay and index rebuilds above bumped the live
  // version counter; pin it back to the snapshot's value so what-if cache
  // entries stay valid exactly as they were at the checkpoint.
  catalog_->RestoreVersion(catalog_version);
  return Status::OK();
}

Result<bool> ColtTuner::RecoverFromStateDir() {
  if (checkpoint_ == nullptr) return false;
  Result<CheckpointData> data = checkpoint_->LoadLatest();
  if (!data.ok()) {
    if (data.status().code() == StatusCode::kNotFound) return false;
    return data.status();
  }
  BinaryReader reader(data->payload);
  const Status loaded = LoadState(&reader);
  if (!loaded.ok()) {
    if (loaded.code() == StatusCode::kFailedPrecondition) {
      // Fingerprint guard: the environment changed under the state dir.
      // The tuner is untouched, so a cold start is safe and preferable to
      // resuming statistics that no longer describe this catalog/config.
      COLT_LOG(Warning) << "checkpoint rejected: " << loaded.ToString()
                        << "; cold-starting";
      MetricsRegistry::Default()
          .GetCounter("persist.recovery.rejected")
          ->Increment();
      return false;
    }
    return loaded;
  }
  MetricsRegistry::Default()
      .GetCounter("persist.recovery.restored")
      ->Increment();
  COLT_LOG(Info) << "recovered tuner state at epoch " << epoch_ << " ("
                 << queries_observed_ << " queries observed)";
  return true;
}

void ColtTuner::PersistEpochState() {
  BinaryWriter writer;
  SaveState(&writer);
  const Status committed = checkpoint_->Commit(epoch_, writer.buffer());
  if (!committed.ok()) {
    // Never fatal: the previous checkpoint stays recoverable and the tuner
    // keeps serving queries — durability degrades, tuning does not.
    COLT_LOG(Warning) << "checkpoint commit failed: "
                      << committed.ToString();
    MetricsRegistry::Default()
        .GetCounter("persist.commit.failures")
        ->Increment();
  }
}

void ColtTuner::set_persist_crash_hook(std::function<void()> hook) {
  if (checkpoint_ != nullptr) checkpoint_->set_crash_hook(std::move(hook));
}

}  // namespace colt
