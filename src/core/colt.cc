#include "core/colt.h"

#include <algorithm>

#include "common/logging.h"
#include "common/tracing.h"

namespace colt {

namespace {

/// Routes one scheduler action's charged time into the step's successful
/// vs. wasted build accounting (kBuildFailed time is wasted by
/// definition; everything else is useful work).
void ChargeAction(const IndexAction& action, TuningStep* step) {
  if (action.type == IndexActionType::kBuildFailed) {
    step->wasted_build_seconds += action.build_seconds;
  } else {
    step->build_seconds += action.build_seconds;
  }
  step->actions.push_back(action);
}

}  // namespace

ColtTuner::ColtTuner(Catalog* catalog, QueryOptimizer* optimizer,
                     ColtConfig config, Database* db, uint64_t seed)
    : catalog_(catalog),
      optimizer_(optimizer),
      config_(config),
      faults_(config.fault),
      pool_(config.num_workers > 0
                ? std::make_unique<ThreadPool>(config.num_workers)
                : nullptr),
      clusters_(catalog, config.history_depth),
      hot_stats_(config.confidence),
      mat_stats_(config.confidence),
      candidates_(config.history_depth, config.crude_smoothing_alpha),
      forecaster_(config.history_depth),
      profiler_(catalog, optimizer, &clusters_, &hot_stats_, &mat_stats_,
                &candidates_, &config_, seed, &faults_, pool_.get()),
      self_organizer_(catalog, optimizer, &clusters_, &hot_stats_,
                      &mat_stats_, &candidates_, &forecaster_, &profiler_,
                      &config_),
      scheduler_(catalog, &optimizer->cost_model(), db,
                 config.scheduling_strategy, &faults_,
                 Scheduler::RetryPolicy{config.max_build_retries,
                                        config.build_backoff_base_rounds,
                                        config.max_build_backoff_rounds,
                                        config.quarantine_cooldown_rounds},
                 pool_.get()),
      whatif_limit_(config.max_whatif_per_epoch) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  metrics_.queries = reg.GetCounter("colt.queries");
  metrics_.epochs = reg.GetCounter("colt.epochs");
  metrics_.emergency_evictions = reg.GetCounter("colt.emergency_evictions");
  metrics_.budget_utilization = reg.GetGauge("colt.budget_utilization");
  metrics_.on_query_seconds = reg.GetHistogram("colt.on_query.seconds");
}

void ColtTuner::MaybeShrinkBudget(TuningStep* step) {
  const double factor = faults_.Multiplier(fault_sites::kBudgetShrink);
  if (factor >= 1.0) return;
  config_.storage_budget_bytes = static_cast<int64_t>(
      static_cast<double>(config_.storage_budget_bytes) * factor);
  COLT_LOG(Warning) << "storage budget shrunk to "
                    << config_.storage_budget_bytes << " bytes";
  // Emergency eviction: drop the lowest-net-benefit materialized indexes
  // until the configuration fits again. The knapsack would converge at the
  // next epoch boundary anyway, but the budget invariant must hold for
  // every query in between.
  IndexConfiguration desired = scheduler_.materialized();
  int64_t bytes = scheduler_.MaterializedBytes();
  while (bytes > config_.storage_budget_bytes && !desired.empty()) {
    IndexId victim = kInvalidIndexId;
    double victim_benefit = 0.0;
    for (IndexId id : desired.ids()) {
      const double net = self_organizer_.NetBenefit(id, desired);
      if (victim == kInvalidIndexId || net < victim_benefit) {
        victim = id;
        victim_benefit = net;
      }
    }
    bytes -= catalog_->index(victim).size_bytes;
    desired.Remove(victim);
  }
  if (desired == scheduler_.materialized()) return;
  const int dropped = static_cast<int>(scheduler_.materialized().size()) -
                      static_cast<int>(desired.size());
  Result<std::vector<IndexAction>> actions =
      scheduler_.ApplyConfiguration(desired);
  if (!actions.ok()) {
    COLT_LOG(Error) << "emergency eviction failed: "
                    << actions.status().ToString();
    return;
  }
  for (const auto& action : *actions) ChargeAction(action, step);
  emergency_evictions_epoch_ += dropped;
  emergency_evictions_total_ += dropped;
  metrics_.emergency_evictions->Add(dropped);
}

std::vector<ColtTuner::IndexExplanation> ColtTuner::ExplainState() {
  const IndexConfiguration& materialized = scheduler_.materialized();
  std::vector<IndexExplanation> out;
  auto add = [&](IndexId id, const std::string& role) {
    IndexExplanation e;
    e.index = id;
    e.name = catalog_->index(id).name;
    e.role = role;
    e.crude_benefit = candidates_.SmoothedBenefit(id);
    e.forecast_benefit = forecaster_.TotalPredictedBenefit(id);
    e.mat_cost =
        materialized.Contains(id) ? 0.0 : self_organizer_.MatCost(id);
    e.net_benefit = self_organizer_.NetBenefit(id, materialized);
    e.size_bytes = catalog_->index(id).size_bytes;
    out.push_back(std::move(e));
  };
  for (IndexId id : materialized.ids()) add(id, "materialized");
  for (IndexId id : hot_set_) {
    if (!materialized.Contains(id)) add(id, "hot");
  }
  for (IndexId id : candidates_.All()) {
    if (materialized.Contains(id)) continue;
    if (std::find(hot_set_.begin(), hot_set_.end(), id) != hot_set_.end()) {
      continue;
    }
    add(id, "candidate");
  }
  std::sort(out.begin(), out.end(),
            [](const IndexExplanation& a, const IndexExplanation& b) {
              return a.net_benefit > b.net_benefit;
            });
  return out;
}

TuningStep ColtTuner::OnQuery(const Query& q) {
  metrics_.queries->Increment();
  ScopedTimer on_query_timer(metrics_.on_query_seconds);
  Tracer::Scope span = Tracer::Default().StartSpan("on_query", "core");
  TuningStep step;
  // Substrate weather first: a mid-run budget shrink must be honoured
  // before this query's plan and invariant checks.
  if (faults_.enabled()) MaybeShrinkBudget(&step);
  // Idle-time scheduling: the gap before this query makes progress on any
  // queued builds; completed indexes are visible to this query's plan.
  if (config_.scheduling_strategy == SchedulingStrategy::kIdleTime) {
    Result<std::vector<IndexAction>> completed =
        scheduler_.OnIdle(config_.idle_seconds_per_query);
    if (completed.ok()) {
      for (const auto& action : *completed) ChargeAction(action, &step);
    } else {
      COLT_LOG(Error) << "idle build failed: "
                      << completed.status().ToString();
    }
  }
  const IndexConfiguration& materialized = scheduler_.materialized();

  // Normal optimization: this is the plan the engine executes.
  step.plan = optimizer_->Optimize(q, materialized);
  step.execution_seconds = optimizer_->cost_model().ToSeconds(step.plan.cost);
  if (faults_.enabled()) {
    // Degraded-storage weather: scans take longer than the plan predicts.
    step.execution_seconds *= faults_.Multiplier(fault_sites::kStorageScan);
  }

  // Profiling (paper Fig. 2).
  const Profiler::ProfileOutcome profile = profiler_.ProfileQuery(
      q, step.plan, materialized, hot_set_, whatif_limit_, &whatif_used_,
      epoch_);
  step.whatif_calls = profile.whatif_calls;
  step.degraded_whatif_calls = profile.degraded_calls;
  step.profiling_seconds = profile.charged_seconds;
  degraded_whatif_epoch_ += profile.degraded_calls;
  degraded_whatif_total_ += profile.degraded_calls;
  for (IndexId id : profile.probed) {
    if (!std::binary_search(ever_probed_.begin(), ever_probed_.end(), id)) {
      ever_probed_.insert(
          std::lower_bound(ever_probed_.begin(), ever_probed_.end(), id), id);
    }
  }

  // Epoch boundary: reorganization + re-budgeting.
  if (++queries_in_epoch_ >= config_.epoch_length) {
    step.epoch_ended = true;
    const SelfOrganizer::Outcome outcome = self_organizer_.RunEpochEnd(
        materialized, hot_set_, scheduler_.QuarantinedIndexes());

    EpochReport report;
    report.epoch = epoch_;
    report.whatif_used = whatif_used_;
    report.whatif_limit = whatif_limit_;
    report.next_whatif_limit = outcome.next_whatif_limit;
    report.rebudget_ratio = outcome.rebudget_ratio;
    report.candidate_count = static_cast<int64_t>(candidates_.size());
    report.cluster_count = clusters_.live_cluster_count();
    report.hot_ids = outcome.new_hot;
    report.materialized_ids = outcome.new_materialized.ids();

    Result<std::vector<IndexAction>> actions =
        scheduler_.ApplyConfiguration(outcome.new_materialized);
    if (actions.ok()) {
      for (const auto& action : *actions) ChargeAction(action, &step);
    } else {
      // Keep tuning under the previous configuration; crashing the tuner
      // over a substrate error would defeat the self-regulation premise.
      COLT_LOG(Error) << "ApplyConfiguration failed: "
                      << actions.status().ToString()
                      << "; keeping previous configuration";
    }
    report.materialized_bytes = scheduler_.MaterializedBytes();
    report.degraded_whatif = degraded_whatif_epoch_;
    report.build_failures = static_cast<int>(scheduler_.build_failures() -
                                             build_failures_reported_);
    build_failures_reported_ = scheduler_.build_failures();
    report.quarantined_ids = scheduler_.QuarantinedIndexes();
    report.storage_budget_bytes = config_.storage_budget_bytes;
    report.emergency_evictions = emergency_evictions_epoch_;
    report.wasted_build_seconds =
        scheduler_.wasted_build_seconds() - wasted_build_reported_;
    wasted_build_reported_ = scheduler_.wasted_build_seconds();
    metrics_.epochs->Increment();
    metrics_.budget_utilization->Set(
        config_.storage_budget_bytes > 0
            ? static_cast<double>(report.materialized_bytes) /
                  static_cast<double>(config_.storage_budget_bytes)
            : 0.0);
    if (config_.epoch_metrics_snapshot &&
        MetricsRegistry::Default().enabled()) {
      report.metrics = MetricsRegistry::Default().Snapshot();
    }
    degraded_whatif_epoch_ = 0;
    emergency_evictions_epoch_ = 0;
    epoch_reports_.push_back(std::move(report));

    hot_set_ = outcome.new_hot;
    whatif_limit_ = outcome.next_whatif_limit;
    if (!step.actions.empty()) {
      // The configuration changed: statistics on the affected tables are
      // now inconsistent, so guarantee enough budget to re-validate.
      whatif_limit_ = std::min(
          config_.max_whatif_per_epoch,
          std::max(whatif_limit_, config_.min_budget_after_change));
    }
    whatif_used_ = 0;
    queries_in_epoch_ = 0;

    // Roll the statistical state into the next epoch.
    profiler_.AdvanceEpoch();
    hot_stats_.AdvanceEpoch();
    mat_stats_.AdvanceEpoch();
    candidates_.AdvanceEpoch(epoch_, config_.epoch_length);
    clusters_.AdvanceEpoch();
    const std::vector<ClusterId> live = clusters_.LiveClusters();
    hot_stats_.RetainClusters(live);
    mat_stats_.RetainClusters(live);
    ++epoch_;
  }
  return step;
}

}  // namespace colt
