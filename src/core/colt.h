#ifndef COLT_CORE_COLT_H_
#define COLT_CORE_COLT_H_

#include <functional>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/persist/checkpoint.h"
#include "common/persist/serializer.h"
#include "common/provenance.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/candidates.h"
#include "core/clustering.h"
#include "core/config.h"
#include "core/forecasting.h"
#include "core/gain_stats.h"
#include "core/profiler.h"
#include "core/scheduler.h"
#include "core/self_organizer.h"
#include "core/write_stats.h"
#include "optimizer/optimizer.h"
#include "query/query.h"
#include "storage/database.h"

namespace colt {

/// Everything that happened while COLT observed one query.
struct TuningStep {
  /// The plan chosen by the normal optimization under the current
  /// materialized set (the plan the system would execute).
  PlanResult plan;
  /// Simulated execution time of that plan, in seconds.
  double execution_seconds = 0.0;
  /// For write statements: the slice of execution_seconds spent keeping
  /// the materialized indexes on the target table fresh (DESIGN.md §16).
  /// Informational split — already included in execution_seconds, never
  /// added on top. Always 0 for reads.
  double maintenance_seconds = 0.0;
  /// Profiling overhead charged for this query (what-if calls), seconds.
  double profiling_seconds = 0.0;
  /// Index build time charged at this query (epoch boundaries) for builds
  /// that succeeded, seconds.
  double build_seconds = 0.0;
  /// Build time charged for attempts that failed (kBuildFailed), seconds.
  /// Wasted work: it still occupies the timeline, but produced no index.
  double wasted_build_seconds = 0.0;
  /// Configuration changes performed after this query.
  std::vector<IndexAction> actions;
  int whatif_calls = 0;
  /// What-if probes that degraded to the crude level-1 estimate (what-if
  /// failure or per-query deadline), this query.
  int degraded_whatif_calls = 0;
  bool epoch_ended = false;
};

/// Per-epoch diagnostics (drives the paper's Fig. 5).
struct EpochReport {
  int epoch = 0;
  int whatif_used = 0;
  int whatif_limit = 0;
  int next_whatif_limit = 0;
  double rebudget_ratio = 1.0;
  int64_t candidate_count = 0;
  int64_t cluster_count = 0;
  std::vector<IndexId> hot_ids;
  std::vector<IndexId> materialized_ids;
  int64_t materialized_bytes = 0;
  /// Robustness diagnostics (all zero in fault-free runs).
  /// What-if probes that fell back to the crude estimate this epoch.
  int degraded_whatif = 0;
  /// Build attempts that failed this epoch.
  int build_failures = 0;
  /// Indexes under quarantine at the epoch boundary, ascending.
  std::vector<IndexId> quarantined_ids;
  /// Storage budget in force at the epoch boundary (tracks mid-run
  /// `budget.shrink` faults).
  int64_t storage_budget_bytes = 0;
  /// Materialized indexes dropped by emergency eviction this epoch.
  int emergency_evictions = 0;
  /// Simulated seconds charged for failed build attempts this epoch.
  double wasted_build_seconds = 0.0;
  /// Point-in-time metrics at the epoch boundary (empty unless
  /// MetricsRegistry::Default() is enabled).
  MetricsSnapshot metrics;
  /// Decision-provenance summary (all zero unless the flight recorder is
  /// enabled via ColtConfig::provenance_events): lifetime events recorded,
  /// events recorded during this epoch, and ring-capacity drops.
  int64_t provenance_events_total = 0;
  int64_t provenance_events_epoch = 0;
  int64_t provenance_dropped = 0;
  /// Write statements observed this epoch (0 on read-only workloads).
  int64_t write_queries = 0;
  /// Total maintenance charge subtracted from index benefits at this
  /// epoch's boundary, cost units (0 on read-only epochs or with
  /// ColtConfig::charge_index_maintenance off). DESIGN.md §16.
  double maintenance_charged = 0.0;
};

/// COLT — Continuous On-Line Tuning (the paper's primary contribution).
///
/// Feed every query through OnQuery(); COLT clusters it, profiles candidate
/// indexes at two levels of detail under a self-regulated what-if budget,
/// and at each epoch boundary reorganizes the materialized index set within
/// the storage budget.
///
/// The tuner works against catalog statistics by default; pass a Database
/// to also build/drop physical B+-trees as the configuration evolves.
class ColtTuner {
 public:
  /// `catalog` and `optimizer` must outlive the tuner. `db` may be null.
  ColtTuner(Catalog* catalog, QueryOptimizer* optimizer, ColtConfig config,
            Database* db = nullptr, uint64_t seed = 7);

  ColtTuner(const ColtTuner&) = delete;
  ColtTuner& operator=(const ColtTuner&) = delete;

  /// Observes (and "executes") one query; returns everything needed for
  /// timeline accounting.
  COLT_OWNER_ONLY TuningStep OnQuery(const Query& q);

  const IndexConfiguration& materialized() const {
    return scheduler_.materialized();
  }
  const std::vector<IndexId>& hot_set() const { return hot_set_; }
  const std::vector<EpochReport>& epoch_reports() const {
    return epoch_reports_;
  }
  int current_epoch() const { return epoch_; }
  int whatif_limit() const { return whatif_limit_; }
  int whatif_used_this_epoch() const { return whatif_used_; }
  const ColtConfig& config() const { return config_; }
  /// Queries observed over the tuner's lifetime, surviving recovery; a
  /// resumed run continues the stream at offset queries_observed().
  int64_t queries_observed() const { return queries_observed_; }

  /// Storage budget currently in force (differs from the constructed
  /// config's budget after a `budget.shrink` fault).
  int64_t storage_budget_bytes() const {
    return config_.storage_budget_bytes;
  }
  /// The tuner's fault injector (disabled unless ColtConfig::fault was
  /// enabled) and the Scheduler, for chaos harness introspection.
  const FaultInjector& fault_injector() const { return faults_; }
  const Scheduler& scheduler() const { return scheduler_; }
  /// Lifetime robustness counters.
  int64_t degraded_whatif_total() const { return degraded_whatif_total_; }
  int64_t emergency_evictions_total() const {
    return emergency_evictions_total_;
  }

  /// Distinct indexes ever probed through the what-if interface (paper
  /// §6.2 reports COLT profiles ~11% of the relevant indexes).
  int64_t distinct_indexes_profiled() const {
    return static_cast<int64_t>(ever_probed_.size());
  }

  /// One row of ExplainState(): why an index is (not) materialized.
  struct IndexExplanation {
    IndexId index = kInvalidIndexId;
    std::string name;
    /// "materialized", "hot", or "candidate".
    std::string role;
    /// Smoothed crude BenefitC (per-query average, cost units).
    double crude_benefit = 0.0;
    /// Sum of PredBenefit over the next h epochs (cost units).
    double forecast_benefit = 0.0;
    /// Materialization cost still owed (0 when materialized).
    double mat_cost = 0.0;
    /// forecast_benefit - mat_cost: the KNAPSACK value.
    double net_benefit = 0.0;
    int64_t size_bytes = 0;
  };

  /// Snapshot of the Self-Organizer's view of every tracked index,
  /// ordered by net benefit. Diagnostic: explains the current
  /// configuration in the same terms §5 uses to choose it.
  std::vector<IndexExplanation> ExplainState();

  // ---- Crash-safe persistence (DESIGN.md §12) ----

  /// Recovers the tuner's state from ColtConfig::state_dir. Must be called
  /// before the first OnQuery on a freshly constructed tuner (whose
  /// catalog/config match the crashed run's). Returns true when a valid
  /// checkpoint was restored, false for a clean cold start — persistence
  /// disabled, no usable checkpoint on disk, or a checkpoint rejected by
  /// the config/catalog fingerprint guards (logged; the tuner is untouched
  /// in every false case). Errors mean the restore failed midway and the
  /// tuner must be discarded.
  Result<bool> RecoverFromStateDir();

  /// Serializes the complete tuning state; only meaningful at an epoch
  /// boundary (OnQuery checkpoints there automatically). Exposed for tests.
  COLT_OWNER_ONLY void SaveState(BinaryWriter* writer) const;
  /// Restores state saved by SaveState. Fails with kFailedPrecondition —
  /// before mutating anything — when the snapshot's config or catalog
  /// fingerprint differs from this tuner's, or when the tuner has already
  /// observed queries.
  COLT_OWNER_ONLY Status LoadState(BinaryReader* reader);

  /// Installs the crash hook invoked when an injected persist crash point
  /// fires (benches install _Exit to die for real). No-op when persistence
  /// is disabled.
  void set_persist_crash_hook(std::function<void()> hook);

  /// The checkpoint store, or null when persistence is disabled (exposed
  /// for tests that corrupt on-disk state on purpose).
  CheckpointStore* checkpoint_store() { return checkpoint_.get(); }

  /// The decision-provenance flight recorder (DESIGN.md §13), or null
  /// when ColtConfig::provenance_events == 0 or the recorder was compiled
  /// out (COLT_DISABLE_PROVENANCE). Events are drained/exported by the
  /// harness; the recorder itself never alters tuning decisions.
  ProvenanceRecorder* provenance() { return provenance_.get(); }
  const ProvenanceRecorder* provenance() const { return provenance_.get(); }

  // White-box access for tests and diagnostics.
  ClusterManager& clusters() { return clusters_; }
  CandidateSet& candidates() { return candidates_; }
  Profiler& profiler() { return profiler_; }
  SelfOrganizer& self_organizer() { return self_organizer_; }
  BenefitForecaster& forecaster() { return forecaster_; }
  const WriteStatsStore& write_stats() const { return write_stats_; }

 private:
  /// Checks the `budget.shrink` fault site; on a shrink, drops the
  /// lowest-net-benefit materialized indexes until the configuration fits
  /// the new budget, appending the drop actions to `step`.
  void MaybeShrinkBudget(TuningStep* step);

  /// Serializes the full state and commits it to the checkpoint store.
  /// A commit failure is logged and counted, never fatal: the tuner keeps
  /// running and the previous checkpoint stays recoverable.
  void PersistEpochState();

  /// Fingerprint of every ColtConfig field that shapes tuning decisions
  /// (the fault plan and state_dir are excluded: a resumed run may
  /// legitimately drop the crash rules that killed its predecessor).
  uint64_t ConfigFingerprint() const;

  Catalog* catalog_;
  QueryOptimizer* optimizer_;
  /// Physical database, or null for statistics-only tuning. Write
  /// statements are physically applied through it (when the target table
  /// is materialized) in addition to being priced by the cost model.
  Database* db_;
  ColtConfig config_;
  FaultInjector faults_;
  /// Task-parallel layer (null when config.num_workers == 0). Declared
  /// before the Profiler and Scheduler so it outlives both users; results
  /// are bit-identical with or without it (DESIGN.md §10).
  std::unique_ptr<ThreadPool> pool_;
  /// Decision-provenance flight recorder (null when disabled or compiled
  /// out). Declared before the Profiler / Self-Organizer / Scheduler,
  /// which hold raw pointers into it.
  std::unique_ptr<ProvenanceRecorder> provenance_;

  ClusterManager clusters_;
  GainStatsStore hot_stats_;
  GainStatsStore mat_stats_;
  CandidateSet candidates_;
  BenefitForecaster forecaster_;
  /// Per-epoch write volumes (DESIGN.md §16). Declared before the
  /// Self-Organizer, which reads it at every epoch end.
  WriteStatsStore write_stats_;
  Profiler profiler_;
  SelfOrganizer self_organizer_;
  Scheduler scheduler_;

  /// Durable checkpoint store; null unless ColtConfig::state_dir is set.
  std::unique_ptr<CheckpointStore> checkpoint_;

  std::vector<IndexId> hot_set_;
  int epoch_ = 0;
  int queries_in_epoch_ = 0;
  int whatif_limit_ = 0;
  int whatif_used_ = 0;
  int64_t queries_observed_ = 0;
  std::vector<EpochReport> epoch_reports_;
  std::vector<IndexId> ever_probed_;

  // Per-epoch and lifetime robustness counters.
  int degraded_whatif_epoch_ = 0;
  int emergency_evictions_epoch_ = 0;
  int64_t build_failures_reported_ = 0;
  int64_t degraded_whatif_total_ = 0;
  int64_t emergency_evictions_total_ = 0;
  /// Scheduler wasted-build seconds already attributed to a past epoch.
  double wasted_build_reported_ = 0.0;
  /// Provenance events already attributed to a past epoch's report.
  int64_t provenance_reported_ = 0;

  struct Instruments {
    Counter* queries;
    Counter* epochs;
    Counter* emergency_evictions;
    Gauge* budget_utilization;
    Histogram* on_query_seconds;
  };
  Instruments metrics_;
};

}  // namespace colt

#endif  // COLT_CORE_COLT_H_
