#include "core/clustering.h"

#include <algorithm>

#include "common/logging.h"

namespace colt {

ClusterId ClusterManager::Assign(const Query& q) {
  QuerySignature sig = ComputeSignature(*catalog_, q);
  auto it = by_signature_.find(sig);
  ClusterId id;
  if (it == by_signature_.end()) {
    id = next_id_++;
    ClusterState state;
    state.signature = sig;
    // Relevant columns: selection columns plus both sides of each join.
    for (const auto& sel : sig.selections) {
      state.relevant_columns.push_back(sel.first);
    }
    for (const auto& [l, r] : sig.joins) {
      state.relevant_columns.push_back(l);
      state.relevant_columns.push_back(r);
    }
    std::sort(state.relevant_columns.begin(), state.relevant_columns.end());
    state.relevant_columns.erase(
        std::unique(state.relevant_columns.begin(),
                    state.relevant_columns.end()),
        state.relevant_columns.end());
    state.counts.push_front(0);
    by_signature_.emplace(std::move(sig), id);
    clusters_.emplace(id, std::move(state));
  } else {
    id = it->second;
  }
  ClusterState& state = clusters_.at(id);
  ++state.counts.front();
  ++state.window_total;
  return id;
}

int64_t ClusterManager::Count(ClusterId id) const {
  auto it = clusters_.find(id);
  return it == clusters_.end() ? 0 : it->second.window_total;
}

int64_t ClusterManager::EpochCount(ClusterId id) const {
  auto it = clusters_.find(id);
  if (it == clusters_.end() || it->second.counts.empty()) return 0;
  return it->second.counts.front();
}

const std::vector<ColumnRef>& ClusterManager::RelevantColumns(
    ClusterId id) const {
  auto it = clusters_.find(id);
  COLT_CHECK(it != clusters_.end()) << "unknown cluster " << id;
  return it->second.relevant_columns;
}

const QuerySignature& ClusterManager::signature(ClusterId id) const {
  auto it = clusters_.find(id);
  COLT_CHECK(it != clusters_.end()) << "unknown cluster " << id;
  return it->second.signature;
}

double ClusterManager::WindowRate(ClusterId id) const {
  auto it = clusters_.find(id);
  if (it == clusters_.end()) return 0.0;
  const int span = std::min(history_depth_, epochs_observed_);
  return static_cast<double>(it->second.window_total) /
         static_cast<double>(std::max(1, span));
}

void ClusterManager::AdvanceEpoch() {
  ++epochs_observed_;
  std::vector<ClusterId> dead;
  for (auto& [id, state] : clusters_) {
    state.counts.push_front(0);
    while (static_cast<int>(state.counts.size()) >
           history_depth_ + 1) {
      state.window_total -= state.counts.back();
      state.counts.pop_back();
    }
    if (state.window_total == 0) dead.push_back(id);
  }
  for (ClusterId id : dead) {
    by_signature_.erase(clusters_.at(id).signature);
    clusters_.erase(id);
  }
}

std::vector<ClusterId> ClusterManager::ActiveThisEpoch() const {
  std::vector<ClusterId> out;
  for (const auto& [id, state] : clusters_) {
    if (!state.counts.empty() && state.counts.front() > 0) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int64_t ClusterManager::live_cluster_count() const {
  return static_cast<int64_t>(clusters_.size());
}

std::vector<ClusterId> ClusterManager::LiveClusters() const {
  std::vector<ClusterId> out;
  out.reserve(clusters_.size());
  for (const auto& entry : clusters_) out.push_back(entry.first);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace colt
