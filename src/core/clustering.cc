#include "core/clustering.h"

#include <algorithm>

#include "common/logging.h"

namespace colt {

ClusterId ClusterManager::Assign(const Query& q) {
  QuerySignature sig = ComputeSignature(*catalog_, q);
  auto it = by_signature_.find(sig);
  ClusterId id;
  if (it == by_signature_.end()) {
    id = next_id_++;
    ClusterState state;
    state.signature = sig;
    // Relevant columns: selection columns plus both sides of each join.
    for (const auto& sel : sig.selections) {
      state.relevant_columns.push_back(sel.first);
    }
    for (const auto& [l, r] : sig.joins) {
      state.relevant_columns.push_back(l);
      state.relevant_columns.push_back(r);
    }
    std::sort(state.relevant_columns.begin(), state.relevant_columns.end());
    state.relevant_columns.erase(
        std::unique(state.relevant_columns.begin(),
                    state.relevant_columns.end()),
        state.relevant_columns.end());
    state.counts.push_front(0);
    by_signature_.emplace(std::move(sig), id);
    clusters_.emplace(id, std::move(state));
  } else {
    id = it->second;
  }
  ClusterState& state = clusters_.at(id);
  ++state.counts.front();
  ++state.window_total;
  return id;
}

int64_t ClusterManager::Count(ClusterId id) const {
  auto it = clusters_.find(id);
  return it == clusters_.end() ? 0 : it->second.window_total;
}

int64_t ClusterManager::EpochCount(ClusterId id) const {
  auto it = clusters_.find(id);
  if (it == clusters_.end() || it->second.counts.empty()) return 0;
  return it->second.counts.front();
}

const std::vector<ColumnRef>& ClusterManager::RelevantColumns(
    ClusterId id) const {
  auto it = clusters_.find(id);
  COLT_CHECK(it != clusters_.end()) << "unknown cluster " << id;
  return it->second.relevant_columns;
}

const QuerySignature& ClusterManager::signature(ClusterId id) const {
  auto it = clusters_.find(id);
  COLT_CHECK(it != clusters_.end()) << "unknown cluster " << id;
  return it->second.signature;
}

double ClusterManager::WindowRate(ClusterId id) const {
  auto it = clusters_.find(id);
  if (it == clusters_.end()) return 0.0;
  const int span = std::min(history_depth_, epochs_observed_);
  return static_cast<double>(it->second.window_total) /
         static_cast<double>(std::max(1, span));
}

void ClusterManager::AdvanceEpoch() {
  ++epochs_observed_;
  std::vector<ClusterId> dead;
  for (auto& [id, state] : clusters_) {
    state.counts.push_front(0);
    while (static_cast<int>(state.counts.size()) >
           history_depth_ + 1) {
      state.window_total -= state.counts.back();
      state.counts.pop_back();
    }
    if (state.window_total == 0) dead.push_back(id);
  }
  for (ClusterId id : dead) {
    by_signature_.erase(clusters_.at(id).signature);
    clusters_.erase(id);
  }
}

std::vector<ClusterId> ClusterManager::ActiveThisEpoch() const {
  std::vector<ClusterId> out;
  for (const auto& [id, state] : clusters_) {
    if (!state.counts.empty() && state.counts.front() > 0) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int64_t ClusterManager::live_cluster_count() const {
  return static_cast<int64_t>(clusters_.size());
}

std::vector<ClusterId> ClusterManager::LiveClusters() const {
  std::vector<ClusterId> out;
  out.reserve(clusters_.size());
  for (const auto& entry : clusters_) out.push_back(entry.first);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

constexpr uint32_t kClusterSectionTag = 0x53554C43;  // "CLUS"

void WriteColumnRef(BinaryWriter* writer, const ColumnRef& ref) {
  writer->WriteI64(ref.table);
  writer->WriteI64(ref.column);
}

Status ReadColumnRef(BinaryReader* reader, ColumnRef* ref) {
  int64_t table = 0, column = 0;
  COLT_RETURN_IF_ERROR(reader->ReadI64(&table));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&column));
  ref->table = static_cast<TableId>(table);
  ref->column = static_cast<ColumnId>(column);
  return Status::OK();
}

}  // namespace

void ClusterManager::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kClusterSectionTag);
  writer->WriteI64(next_id_);
  writer->WriteI64(epochs_observed_);
  std::vector<ClusterId> ids;
  ids.reserve(clusters_.size());
  for (const auto& [id, state] : clusters_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  writer->WriteU64(ids.size());
  for (ClusterId id : ids) {
    const ClusterState& state = clusters_.at(id);
    writer->WriteI64(id);
    writer->WriteU64(state.signature.tables.size());
    for (TableId t : state.signature.tables) writer->WriteI64(t);
    writer->WriteU64(state.signature.joins.size());
    for (const auto& [lhs, rhs] : state.signature.joins) {
      WriteColumnRef(writer, lhs);
      WriteColumnRef(writer, rhs);
    }
    writer->WriteU64(state.signature.selections.size());
    for (const auto& [column, bucket] : state.signature.selections) {
      WriteColumnRef(writer, column);
      writer->WriteI64(bucket);
    }
    writer->WriteU64(state.relevant_columns.size());
    for (const ColumnRef& ref : state.relevant_columns) {
      WriteColumnRef(writer, ref);
    }
    writer->WriteU64(state.counts.size());
    for (int64_t count : state.counts) writer->WriteI64(count);
    writer->WriteI64(state.window_total);
  }
}

Status ClusterManager::LoadState(BinaryReader* reader) {
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kClusterSectionTag));
  int64_t next_id = 0, epochs_observed = 0;
  COLT_RETURN_IF_ERROR(reader->ReadI64(&next_id));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&epochs_observed));
  uint64_t cluster_count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&cluster_count));
  std::unordered_map<ClusterId, ClusterState> clusters;
  std::unordered_map<QuerySignature, ClusterId, QuerySignatureHash>
      by_signature;
  for (uint64_t i = 0; i < cluster_count; ++i) {
    int64_t id = 0;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&id));
    ClusterState state;
    uint64_t n = 0;
    COLT_RETURN_IF_ERROR(reader->ReadU64(&n));
    for (uint64_t j = 0; j < n; ++j) {
      int64_t table = 0;
      COLT_RETURN_IF_ERROR(reader->ReadI64(&table));
      state.signature.tables.push_back(static_cast<TableId>(table));
    }
    COLT_RETURN_IF_ERROR(reader->ReadU64(&n));
    for (uint64_t j = 0; j < n; ++j) {
      ColumnRef lhs, rhs;
      COLT_RETURN_IF_ERROR(ReadColumnRef(reader, &lhs));
      COLT_RETURN_IF_ERROR(ReadColumnRef(reader, &rhs));
      state.signature.joins.emplace_back(lhs, rhs);
    }
    COLT_RETURN_IF_ERROR(reader->ReadU64(&n));
    for (uint64_t j = 0; j < n; ++j) {
      ColumnRef column;
      int64_t bucket = 0;
      COLT_RETURN_IF_ERROR(ReadColumnRef(reader, &column));
      COLT_RETURN_IF_ERROR(reader->ReadI64(&bucket));
      state.signature.selections.emplace_back(column,
                                              static_cast<int>(bucket));
    }
    COLT_RETURN_IF_ERROR(reader->ReadU64(&n));
    for (uint64_t j = 0; j < n; ++j) {
      ColumnRef ref;
      COLT_RETURN_IF_ERROR(ReadColumnRef(reader, &ref));
      state.relevant_columns.push_back(ref);
    }
    COLT_RETURN_IF_ERROR(reader->ReadU64(&n));
    for (uint64_t j = 0; j < n; ++j) {
      int64_t count = 0;
      COLT_RETURN_IF_ERROR(reader->ReadI64(&count));
      state.counts.push_back(count);
    }
    COLT_RETURN_IF_ERROR(reader->ReadI64(&state.window_total));
    by_signature.emplace(state.signature, static_cast<ClusterId>(id));
    clusters.emplace(static_cast<ClusterId>(id), std::move(state));
  }
  clusters_ = std::move(clusters);
  by_signature_ = std::move(by_signature);
  next_id_ = static_cast<ClusterId>(next_id);
  epochs_observed_ = static_cast<int>(epochs_observed);
  return Status::OK();
}

}  // namespace colt
