#ifndef COLT_CORE_CONFIG_H_
#define COLT_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/fault_injector.h"

namespace colt {

/// Materialization scheduling strategies (paper §3):
///  (1) kImmediate — carry out requests immediately; the build cost is
///      charged to the timeline and the index is usable from the next
///      query. The paper's implementation choice.
///  (2) kIdleTime — queue builds and make progress only during system idle
///      time (the gaps between queries); nothing is charged to query
///      latency but indexes become available later.
/// (Strategy (3), piggy-backing on query intermediate results, is future
/// work in the paper and here.)
enum class SchedulingStrategy { kImmediate, kIdleTime };

/// Tuning parameters of the COLT framework. Defaults are the paper's
/// experimental settings (§6.1): w = 10, h = 12, #WI_max = 20, 90%
/// confidence intervals.
struct ColtConfig {
  /// Epoch length w: queries per profiling epoch.
  int epoch_length = 10;
  /// History depth h: epochs of system memory; also the forecast horizon.
  int history_depth = 12;
  /// #WI_max: hard cap on what-if calls per epoch.
  int max_whatif_per_epoch = 20;
  /// Confidence level for CLT-style gain intervals.
  double confidence = 0.90;
  /// On-line storage budget B in bytes for the materialized set.
  int64_t storage_budget_bytes = 512LL * 1024 * 1024;

  /// Smoothing factor for the across-epoch smoothing of crude BenefitC.
  double crude_smoothing_alpha = 0.4;
  /// Upper bound on the size of the hot set (the two-means top cluster is
  /// truncated to this many indexes if larger).
  int max_hot_set_size = 10;
  /// Floor for the adaptive sampling probability of a well-profiled pair.
  double min_sample_rate = 0.05;
  /// Pairs with fewer than this many measurements always sample (rate 1).
  int min_measurements_for_interval = 2;

  /// Re-budgeting thresholds (§5): profiling is suspended when the
  /// optimistic-to-current NetBenefit ratio r <= rebudget_low and maximized
  /// (#WI_lim = #WI_max) when r >= rebudget_high, linear in between.
  double rebudget_low = 1.0;
  double rebudget_high = 1.3;

  /// Simulated wall-clock charge per what-if optimizer call, in seconds.
  double whatif_call_seconds = 0.02;

  /// Materialization scheduling (paper §3): immediate asynchronous builds
  /// (the paper's implementation) or builds progressed only during idle
  /// time between queries.
  SchedulingStrategy scheduling_strategy = SchedulingStrategy::kImmediate;
  /// Simulated idle seconds available between consecutive queries (used by
  /// the kIdleTime strategy only).
  double idle_seconds_per_query = 2.0;

  /// After the two-means top cluster is taken, fill the remaining hot
  /// slots with the best candidates by benefit *density* (BenefitC per
  /// byte). Without this, cheap small-table indexes — exactly the ones the
  /// KNAPSACK likes — can be starved forever by large-table candidates
  /// whose absolute benefit dominates the two-means split.
  bool fill_hot_by_density = true;
  /// Minimum #WI_lim granted when the hot set contains indexes that have
  /// never been profiled (re-budgeting needs at least some evidence about
  /// fresh hot indexes before it can judge their potential).
  int min_budget_for_fresh_hot = 5;
  /// Minimum #WI_lim for the epoch right after the materialized set
  /// changed. A configuration change invalidates the gain statistics of
  /// every index on the affected tables (the consistency rule of §4.1);
  /// without a re-validation budget those benefits would decay to zero and
  /// good indexes would be dropped and expensively rebuilt.
  int min_budget_after_change = 10;

  /// Extension (the paper's stated future work): also mine two-column
  /// composite index candidates from queries with multiple selection
  /// predicates on one table. Statistics-only mode (physical builds of
  /// composite indexes are not implemented).
  bool mine_multicolumn_candidates = false;

  /// Extension (DESIGN.md §16): subtract each index's per-epoch maintenance
  /// cost — priced from the epoch's INSERT/UPDATE/DELETE volumes — from its
  /// observed benefit before the observation enters the forecaster. This is
  /// what lets COLT drop (or refuse to build) indexes on write-hot tables.
  /// When false, writes still execute and pay their own maintenance at the
  /// timeline, but index benefits ignore maintenance (the "maintenance-
  /// blind" ablation). No effect on read-only workloads either way.
  bool charge_index_maintenance = true;

  // ---- Robustness (DESIGN.md "Robustness & fault injection") ----
  /// Deterministic fault-injection plan for chaos experiments. Disabled by
  /// default: a disabled injector is never consulted, so fault-free runs
  /// are bit-identical to builds without the robustness layer.
  FaultConfig fault;
  /// Consecutive failed build attempts of one index before it is
  /// quarantined (excluded from Self-Organizer picks for a cooldown).
  int max_build_retries = 3;
  /// Backoff before a failed build may be retried, in reorganization
  /// rounds (one round = one epoch under COLT). Doubles after each
  /// consecutive failure, capped at max_build_backoff_rounds.
  int build_backoff_base_rounds = 1;
  int max_build_backoff_rounds = 8;
  /// Rounds a quarantined index stays excluded before its failure history
  /// is forgotten and builds may be attempted again.
  int quarantine_cooldown_rounds = 24;
  /// Per-query deadline on what-if profiling time, in seconds; 0 disables.
  /// Calls that would push a query's profiling time past the deadline are
  /// not issued — the Profiler degrades them to the crude level-1
  /// estimate instead (counted in EpochReport::degraded_whatif).
  double whatif_deadline_seconds = 0.0;

  // ---- Ablation switches (not in the paper; default = paper behavior) ----
  /// When false, #WI_lim is pinned to max_whatif_per_epoch (no
  /// self-regulation).
  bool enable_rebudgeting = true;
  /// When false, every relevant pair is sampled with a fixed uniform
  /// probability instead of the error-contribution heuristic.
  bool enable_adaptive_sampling = true;
  /// Fixed rate used when adaptive sampling is disabled.
  double uniform_sample_rate = 0.5;
  /// When false, unprofiled queries use the interval midpoint (mean)
  /// instead of the conservative lower bound.
  bool conservative_estimates = true;
  /// When true, reorganization uses the greedy value-density heuristic
  /// instead of the KNAPSACK DP.
  bool use_greedy_knapsack = false;
  /// Floor for the conservative gain estimate as a fraction of the sample
  /// mean. With 2-3 samples and high within-cluster variance the Student-t
  /// lower bound collapses to 0, which (under a starved what-if budget)
  /// makes genuinely useful indexes decay and get dropped; the floor keeps
  /// the estimate conservative without letting it vanish entirely.
  double conservative_floor_fraction = 0.25;

  // ---- Parallelism (DESIGN.md §10) ----
  /// Worker threads for the task-parallel layer: the Profiler fans what-if
  /// probes out across them and the Scheduler stages physical index builds
  /// on them. 0 = fully serial (no threads are created). The knob trades
  /// wall-clock time only — results are bit-identical for every value, by
  /// construction (ordered joins, per-task RNG streams, worker-private
  /// optimizer memos and metric buffers).
  int num_workers = 0;

  // ---- What-if plan cache (DESIGN.md §11) ----
  /// LRU byte budget of the cross-epoch what-if plan cache: memoized
  /// (query signature x configuration signature) -> plan cost entries,
  /// invalidated precisely by the catalog version counter and merged from
  /// per-worker segments at epoch boundaries. 0 disables caching. The
  /// cache trades wall-clock time only — tuning results are bit-identical
  /// with the cache on or off, at every worker count, by construction
  /// (equal keys imply identical canonical queries, hence identical
  /// floating-point evaluation order).
  int64_t whatif_cache_bytes = 8LL * 1024 * 1024;

  // ---- Crash-safe persistence (DESIGN.md §12) ----
  /// State directory for checkpoint/WAL persistence of the tuner's
  /// statistical state. Empty (the default) disables persistence entirely:
  /// no files are touched and tuning output is bit-identical to builds
  /// without the persistence layer. When set, the tuner commits a durable
  /// checkpoint at every epoch boundary and RecoverFromStateDir() resumes
  /// from the newest valid one after a crash.
  std::string state_dir;

  // ---- Observability ----
  /// When true (and MetricsRegistry::Default() is enabled), each
  /// EpochReport carries a full metrics snapshot taken at the epoch
  /// boundary. Off by default: a registry snapshot is orders of magnitude
  /// more expensive than the always-on counters/timers, so per-epoch
  /// snapshots are an explicitly requested diagnostic.
  bool epoch_metrics_snapshot = false;
  /// Ring capacity (in events) of the decision-provenance flight recorder
  /// (DESIGN.md §13). 0 (the default) disables it entirely: no recorder
  /// is constructed and every emission site reduces to a null test, so
  /// tuning output is bit-identical with provenance on or off. When
  /// positive, the tuner records a typed event for every consequential
  /// decision (promotions, knapsack solves, what-if estimates,
  /// install/drop/quarantine, emergency evictions), drainable as JSONL
  /// via ColtRunResult::provenance.
  int64_t provenance_events = 0;
  /// When true, what-if estimate events additionally carry a "via" attr
  /// distinguishing fresh optimizer calls from whatif_cache hits. Off by
  /// default because that distinction is (by design) the only part of
  /// the stream that depends on cache configuration: the default stream
  /// stays byte-identical across `whatif_cache_bytes` settings, and
  /// cache effectiveness is already exported through the cache counters.
  bool provenance_annotate_origin = false;
};

}  // namespace colt

#endif  // COLT_CORE_CONFIG_H_
