#ifndef COLT_CORE_CANDIDATES_H_
#define COLT_CORE_CANDIDATES_H_

#include <unordered_map>
#include <vector>

#include "catalog/types.h"
#include "common/persist/serializer.h"
#include "common/stats.h"

namespace colt {

/// The candidate set C (paper §3): single-column indexes mined from the
/// selection predicates of queries in S_h, each tracked with the crude
/// first-level statistic BenefitC — an across-epoch smoothed average of the
/// optimistic per-query gain estimate.
class CandidateSet {
 public:
  CandidateSet(int history_depth, double smoothing_alpha)
      : history_depth_(history_depth), alpha_(smoothing_alpha) {}

  /// Records one crude QueryGainC observation for `index` in the current
  /// epoch (creates the candidate on first sight).
  void Observe(IndexId index, double crude_gain, int current_epoch);

  /// Ends an epoch: folds epoch sums into the smoothed BenefitC (per-query
  /// average over `epoch_length` queries) and expires candidates unseen for
  /// more than h epochs.
  void AdvanceEpoch(int finished_epoch, int epoch_length);

  /// Smoothed BenefitC estimate (0 for unknown candidates).
  double SmoothedBenefit(IndexId index) const;

  bool Contains(IndexId index) const { return info_.count(index) > 0; }
  size_t size() const { return info_.size(); }

  /// All candidate ids, ascending.
  std::vector<IndexId> All() const;

  /// Crash-safe persistence of the candidate map (smoothed BenefitC state
  /// included; the smoothing alpha comes from construction).
  void SaveState(BinaryWriter* writer) const;
  Status LoadState(BinaryReader* reader);

 private:
  struct Info {
    int last_seen_epoch = 0;
    double epoch_sum = 0.0;
    ExponentialSmoother smoothed;
    explicit Info(double alpha) : smoothed(alpha) {}
  };

  int history_depth_;
  double alpha_;
  std::unordered_map<IndexId, Info> info_;
};

}  // namespace colt

#endif  // COLT_CORE_CANDIDATES_H_
