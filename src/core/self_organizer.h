#ifndef COLT_CORE_SELF_ORGANIZER_H_
#define COLT_CORE_SELF_ORGANIZER_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/provenance.h"
#include "core/candidates.h"
#include "core/clustering.h"
#include "core/config.h"
#include "core/forecasting.h"
#include "core/gain_stats.h"
#include "core/knapsack.h"
#include "core/profiler.h"
#include "core/write_stats.h"
#include "optimizer/optimizer.h"

namespace colt {

/// The Self-Organizer (paper §5). Invoked at the end of each epoch, it
/// (a) reorganizes — picks the new materialized set by solving KNAPSACK
/// over NetBenefit predictions and selects the next hot set by two-means
/// clustering of smoothed crude benefits — and (b) re-budgets — sets the
/// next epoch's what-if budget #WI_lim from the ratio between the
/// best-case (optimistic) and current configurations.
class SelfOrganizer {
 public:
  /// `provenance` may be null (no decision recording). When given, every
  /// epoch-end decision — knapsack solves, hot-set promotions/demotions,
  /// schedule requests, re-budgeting — emits a typed event (DESIGN.md §13).
  /// `write_stats` may be null (read-only tuner: no maintenance charging).
  SelfOrganizer(Catalog* catalog, QueryOptimizer* optimizer,
                ClusterManager* clusters, GainStatsStore* hot_stats,
                GainStatsStore* mat_stats, CandidateSet* candidates,
                BenefitForecaster* forecaster, Profiler* profiler,
                const ColtConfig* config,
                ProvenanceRecorder* provenance = nullptr,
                const WriteStatsStore* write_stats = nullptr);

  struct Outcome {
    IndexConfiguration new_materialized;
    std::vector<IndexId> new_hot;
    int next_whatif_limit = 0;
    /// r = NetBenefit(M') / NetBenefit(M) (>= 1; clamped for reporting).
    double rebudget_ratio = 1.0;
    double net_benefit_current = 0.0;
    double net_benefit_optimistic = 0.0;
    /// Total maintenance charge subtracted from observed benefits this
    /// epoch, across all charged indexes (0 on read-only epochs or with
    /// charging disabled). Cost units; feeds the per-epoch CSVs.
    double maintenance_charged = 0.0;
  };

  /// Runs reorganization + re-budgeting for the epoch that just finished.
  /// `quarantined` (sorted ascending) lists indexes the Scheduler refuses
  /// to build; they are excluded from both the knapsack pool and the new
  /// hot set until their cooldown elapses.
  Outcome RunEpochEnd(const IndexConfiguration& materialized,
                      const std::vector<IndexId>& hot_set,
                      const std::vector<IndexId>& quarantined = {});

  /// Observed benefit of `index` over the finished epoch (total cost-unit
  /// savings across the epoch's queries), from profiled gains plus
  /// conservative interval bounds for unprofiled queries. Exposed for
  /// tests.
  double EpochBenefit(IndexId index, bool is_materialized,
                      const IndexConfiguration& materialized) const;

  /// Optimistic (interval-upper-bound) epoch benefit for a hot index;
  /// unknown pairs fall back to the crude candidate estimate.
  double OptimisticEpochBenefit(IndexId index,
                                const IndexConfiguration& materialized) const;

  /// NetBenefit(I) = sum_j PredBenefit_j(I) - MatCost(I) (MatCost = 0 when
  /// already materialized).
  double NetBenefit(IndexId index,
                    const IndexConfiguration& materialized) const;

  /// Materialization cost of `index` in cost units.
  double MatCost(IndexId index) const;

  /// Maintenance cost `index` would have paid over the finished epoch,
  /// priced from the epoch's recorded write volumes (DESIGN.md §16).
  /// Charged whether or not the index is materialized — a hot (hypothetical)
  /// index on a write-hot table must prove it earns more than its upkeep
  /// before the knapsack is allowed to want it. Zero when charging is
  /// disabled, no write statistics are attached, or the epoch wrote nothing
  /// that touches the index.
  double MaintenanceCharge(IndexId index) const;

 private:
  /// True if `index` is relevant to `cluster` (its column is a selection
  /// or join column of the cluster's signature).
  bool RelevantToCluster(IndexId index, ClusterId cluster) const;

  Catalog* catalog_;
  QueryOptimizer* optimizer_;
  ClusterManager* clusters_;
  GainStatsStore* hot_stats_;
  GainStatsStore* mat_stats_;
  CandidateSet* candidates_;
  BenefitForecaster* forecaster_;
  Profiler* profiler_;
  const ColtConfig* config_;
  ProvenanceRecorder* provenance_;
  const WriteStatsStore* write_stats_;

  struct Instruments {
    Counter* hot_churn;
    Gauge* hot_set_size;
    Histogram* epoch_end_seconds;
    Histogram* knapsack_seconds;
  };
  Instruments metrics_;
};

}  // namespace colt

#endif  // COLT_CORE_SELF_ORGANIZER_H_
