#ifndef COLT_CORE_GAIN_STATS_H_
#define COLT_CORE_GAIN_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "catalog/types.h"
#include "common/persist/serializer.h"
#include "common/stats.h"
#include "core/clustering.h"

namespace colt {

/// Accurate (what-if-measured) gain statistics per (index, cluster) pair,
/// with CLT-style confidence intervals (paper §4.1).
///
/// Consistency: a stored measurement is valid only while the materialized
/// indexes on the measured index's table stay unchanged. Each pair records
/// the per-table configuration signature in force when it was last updated;
/// a mismatching signature resets the pair before use.
class GainStatsStore {
 public:
  explicit GainStatsStore(double confidence) : confidence_(confidence) {}

  /// Records one measured QueryGain for (index, cluster) under per-table
  /// materialized-set signature `table_sig`. Also counted toward the
  /// in-progress epoch's profiled sum.
  void Record(IndexId index, ClusterId cluster, double gain,
              uint64_t table_sig);

  /// Number of stored measurements for the pair (0 if unknown or stale).
  int64_t MeasurementCount(IndexId index, ClusterId cluster,
                           uint64_t table_sig) const;

  /// Confidence interval for the pair's mean gain. With fewer than 2
  /// consistent measurements the interval is conservatively wide.
  ConfidenceInterval Interval(IndexId index, ClusterId cluster,
                              uint64_t table_sig) const;

  /// Sample variance of the pair's measurements (0 when < 2).
  double Variance(IndexId index, ClusterId cluster, uint64_t table_sig) const;

  /// Sum of gains measured for the pair during the in-progress epoch, and
  /// how many measurements contributed.
  void EpochMeasurements(IndexId index, ClusterId cluster, double* sum,
                         int64_t* count) const;

  /// Ends the epoch: clears per-epoch sums (all-time interval stats are
  /// kept; staleness is handled by signatures).
  void AdvanceEpoch();

  /// Drops every pair involving `index` (e.g. the index left H u M and its
  /// statistics should not linger).
  void EraseIndex(IndexId index);

  /// Drops pairs for clusters that no longer exist.
  void RetainClusters(const std::vector<ClusterId>& live);

  int64_t pair_count() const { return static_cast<int64_t>(pairs_.size()); }

  /// Crash-safe persistence of every (index, cluster) accumulator,
  /// including the raw Welford fields for bit-exact intervals after
  /// recovery.
  void SaveState(BinaryWriter* writer) const;
  Status LoadState(BinaryReader* reader);

 private:
  struct PairKey {
    IndexId index;
    ClusterId cluster;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      return std::hash<uint64_t>()(
          (static_cast<uint64_t>(k.index) << 32) ^
          static_cast<uint32_t>(k.cluster));
    }
  };
  struct PairStats {
    RunningStats gains;
    uint64_t table_sig = 0;
    double epoch_sum = 0.0;
    int64_t epoch_count = 0;
  };

  /// Returns the live stats for the key iff consistent, else nullptr.
  const PairStats* Find(IndexId index, ClusterId cluster,
                        uint64_t table_sig) const;

  double confidence_;
  std::unordered_map<PairKey, PairStats, PairKeyHash> pairs_;
};

}  // namespace colt

#endif  // COLT_CORE_GAIN_STATS_H_
