#include "core/profiler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/tracing.h"

namespace colt {

uint64_t TableConfigSignature(const Catalog& catalog,
                              const IndexConfiguration& config,
                              TableId table) {
  uint64_t h = 1469598103934665603ULL;
  for (IndexId id : config.ids()) {
    if (catalog.index(id).column.table != table) continue;
    h ^= static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
    h *= 1099511628211ULL;
  }
  return h;
}

Profiler::Profiler(Catalog* catalog, QueryOptimizer* optimizer,
                   ClusterManager* clusters, GainStatsStore* hot_stats,
                   GainStatsStore* mat_stats, CandidateSet* candidates,
                   const ColtConfig* config, uint64_t seed,
                   FaultInjector* faults, ThreadPool* pool,
                   ProvenanceRecorder* provenance)
    : catalog_(catalog),
      optimizer_(optimizer),
      clusters_(clusters),
      hot_stats_(hot_stats),
      mat_stats_(mat_stats),
      candidates_(candidates),
      config_(config),
      rng_(seed),
      faults_(faults),
      pool_(pool),
      provenance_(provenance) {
  MetricsRegistry& reg = MetricsRegistry::Default();
  metrics_.whatif_issued = reg.GetCounter("profiler.whatif.issued");
  metrics_.degraded_fault = reg.GetCounter("profiler.degraded.fault");
  metrics_.degraded_deadline = reg.GetCounter("profiler.degraded.deadline");
  metrics_.degraded_cache_hit =
      reg.GetCounter("profiler.degraded.cache_hit");
  metrics_.level1_records = reg.GetCounter("profiler.level1.records");
  metrics_.level2_records = reg.GetCounter("profiler.level2.records");
  metrics_.shortcircuit_hits =
      reg.GetCounter("profiler.whatif_cache.shortcircuit_hits");
  metrics_.cache_evictions =
      reg.GetCounter("optimizer.whatif_cache.evictions");
  metrics_.cache_stale_dropped =
      reg.GetCounter("optimizer.whatif_cache.stale_dropped");
  metrics_.cache_bytes = reg.GetGauge("optimizer.whatif_cache.bytes");
  metrics_.cache_entries = reg.GetGauge("optimizer.whatif_cache.entries");
  metrics_.profile_seconds = reg.GetHistogram("profiler.profile.seconds");
  metrics_.whatif_wall = reg.GetHistogram("profiler.whatif_wall.seconds");
  metrics_.cache_lookup_seconds =
      reg.GetHistogram("profiler.whatif_cache.lookup.seconds");
  const bool caching = config_->whatif_cache_bytes > 0;
  if (caching) {
    shared_cache_ =
        std::make_unique<WhatIfPlanCache>(config_->whatif_cache_bytes);
    owner_segment_ =
        std::make_unique<WhatIfPlanCache>(config_->whatif_cache_bytes);
    optimizer_->set_whatif_cache(shared_cache_.get(), owner_segment_.get());
  }
  const int slots = pool_ != nullptr ? pool_->num_workers() : 0;
  worker_slots_.reserve(static_cast<size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    WorkerSlot slot;
    slot.registry = std::make_unique<MetricsRegistry>();
    slot.optimizer = std::make_unique<QueryOptimizer>(
        catalog_, optimizer_->cost_model().params(), slot.registry.get());
    if (caching) {
      slot.cache_segment =
          std::make_unique<WhatIfPlanCache>(config_->whatif_cache_bytes);
      slot.optimizer->set_whatif_cache(shared_cache_.get(),
                                       slot.cache_segment.get());
    }
    if (provenance_ != nullptr) {
      slot.provenance =
          std::make_unique<ProvenanceRecorder>(config_->provenance_events);
    }
    worker_slots_.push_back(std::move(slot));
  }
}

Profiler::~Profiler() {
  if (shared_cache_ != nullptr) {
    optimizer_->set_whatif_cache(nullptr, nullptr);
  }
}

bool Profiler::CachedWhatIfGain(const Query& q, IndexId index,
                                const IndexConfiguration& materialized,
                                double* gain) {
  if (shared_cache_ == nullptr) return false;
  const uint64_t qhash = QueryPlanSignature(q);
  const uint64_t version = catalog_->version();
  const CachedPlanCost* base = shared_cache_->Lookup(
      WhatIfCacheKey{qhash, materialized.Signature()}, version);
  if (base == nullptr) return false;
  const bool mat = materialized.Contains(index);
  const IndexConfiguration probe =
      mat ? materialized.Without(index) : materialized.With(index);
  const CachedPlanCost* alt = shared_cache_->Lookup(
      WhatIfCacheKey{qhash, probe.Signature()}, version);
  if (alt == nullptr) return false;
  // Same arithmetic shape as WhatIfOptimize, so a degraded probe answered
  // here records the exact double the healthy path would have recorded.
  *gain = mat ? alt->cost - base->cost : base->cost - alt->cost;
  return true;
}

void Profiler::RecordCrudeFallback(const Query& q, IndexId index,
                                   ClusterId cluster,
                                   const IndexConfiguration& materialized) {
  const IndexDescriptor& desc = catalog_->index(index);
  // A degraded probe means the what-if *call* was lost (fault or deadline),
  // not that the answer is unknowable: if both costs are already in the
  // frozen cross-epoch cache, record the measured gain instead of the
  // crude estimate. Frozen-cache-only by design (see CachedWhatIfGain).
  double cached_gain = 0.0;
  if (CachedWhatIfGain(q, index, materialized, &cached_gain)) {
    const TableId cache_table = desc.column.table;
    const uint64_t cache_sig =
        TableConfigSignature(*catalog_, materialized, cache_table);
    GainStatsStore* cache_store =
        materialized.Contains(index) ? mat_stats_ : hot_stats_;
    cache_store->Record(index, cluster, std::max(0.0, cached_gain),
                        cache_sig);
    metrics_.degraded_cache_hit->Increment();
    if (provenance_ != nullptr) {
      provenance_->RecordEvent("profiler.whatif_estimate")
          .Index(index)
          .Cluster(cluster)
          .Attr("gain", cached_gain)
          .Attr("src", "degraded_cache");
    }
    return;
  }
  double crude = 0.0;
  bool have_predicate = false;
  for (const auto& pred : q.selections()) {
    if (pred.column == desc.column) {
      crude = std::max(crude, optimizer_->CrudeGain(pred, desc));
      have_predicate = true;
    }
  }
  if (!have_predicate) {
    // Materialized index probed through plan usage with no matching
    // selection (e.g. join support): fall back to its smoothed crude
    // benefit so the record is coarse but non-zero.
    crude = std::max(0.0, candidates_->SmoothedBenefit(index));
  }
  const TableId table = desc.column.table;
  const uint64_t sig = TableConfigSignature(*catalog_, materialized, table);
  GainStatsStore* store =
      materialized.Contains(index) ? mat_stats_ : hot_stats_;
  store->Record(index, cluster, std::max(0.0, crude), sig);
  if (provenance_ != nullptr) {
    provenance_->RecordEvent("profiler.whatif_estimate")
        .Index(index)
        .Cluster(cluster)
        .Attr("gain", crude)
        .Attr("src", "degraded_crude");
  }
}

double Profiler::ErrorContribution(IndexId index, ClusterId cluster,
                                   const IndexConfiguration& materialized) const {
  const TableId table = catalog_->index(index).column.table;
  const uint64_t sig = TableConfigSignature(*catalog_, materialized, table);
  const GainStatsStore* store =
      materialized.Contains(index) ? mat_stats_ : hot_stats_;
  const int64_t n = store->MeasurementCount(index, cluster, sig);
  if (n < config_->min_measurements_for_interval) {
    return std::numeric_limits<double>::infinity();
  }
  const double var = store->Variance(index, cluster, sig);
  const double count = static_cast<double>(clusters_->Count(cluster));
  return count * std::sqrt(var / static_cast<double>(n));
}

double Profiler::SampleRate(IndexId index, ClusterId cluster,
                            const IndexConfiguration& materialized,
                            double max_error) const {
  if (!config_->enable_adaptive_sampling) {
    return config_->uniform_sample_rate;
  }
  const double e = ErrorContribution(index, cluster, materialized);
  if (std::isinf(e)) return 1.0;  // unmeasured: top priority
  if (max_error <= 0.0 || std::isinf(max_error)) {
    // All competing pairs are unmeasured or error-free; keep a floor so a
    // measured pair still refreshes occasionally.
    return e > 0.0 ? 1.0 : config_->min_sample_rate;
  }
  return std::clamp(e / max_error, config_->min_sample_rate, 1.0);
}

Profiler::ProfileOutcome Profiler::ProfileQuery(
    const Query& q, const PlanResult& plan,
    const IndexConfiguration& materialized,
    const std::vector<IndexId>& hot_set, int whatif_limit, int* whatif_used,
    int current_epoch) {
  ScopedTimer timer(metrics_.profile_seconds);
  Tracer::Scope span = Tracer::Default().StartSpan("profile_query", "core");
  ProfileOutcome outcome;
  // 1. Cluster assignment (efficient, on-line).
  outcome.cluster = clusters_->Assign(q);
  const ClusterId cluster = outcome.cluster;

  // 2. I_M: materialized indexes used in the normal plan.
  std::vector<IndexId> used = plan.UsedIndexes();
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  std::vector<IndexId> im;
  for (IndexId id : used) {
    if (materialized.Contains(id)) {
      im.push_back(id);
      ++epoch_usage_[PairKey{id, cluster}];
    }
  }

  // 3. I_H: hot indexes relevant to this query's cluster.
  const auto& relevant_cols = clusters_->RelevantColumns(cluster);
  std::vector<IndexId> ih;
  for (IndexId id : hot_set) {
    const ColumnRef col = catalog_->index(id).column;
    if (std::binary_search(relevant_cols.begin(), relevant_cols.end(), col)) {
      ih.push_back(id);
    }
  }

  // 4. Form the probation set P: materialized first (they take precedence
  // in spending the budget), then hot, each group randomly permuted;
  // include an index with its adaptive sampling probability while
  // #WI_cur + |P| < #WI_lim.
  auto shuffle = [this](std::vector<IndexId>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[rng_.NextBelow(i)]);
    }
  };
  shuffle(im);
  shuffle(ih);

  // Max error contribution across competing pairs normalizes the rates.
  double max_error = 0.0;
  for (const auto& group : {im, ih}) {
    for (IndexId id : group) {
      const double e = ErrorContribution(id, cluster, materialized);
      if (!std::isinf(e)) max_error = std::max(max_error, e);
    }
  }

  std::vector<IndexId> probation;
  auto consider = [&](IndexId id) {
    if (*whatif_used + static_cast<int>(probation.size()) >= whatif_limit) {
      return;
    }
    const double rate = SampleRate(id, cluster, materialized, max_error);
    if (rng_.NextBool(rate)) probation.push_back(id);
  };
  for (IndexId id : im) consider(id);
  for (IndexId id : ih) consider(id);

  // 5-6. Call the what-if optimizer and update interval statistics.
  // Under fault injection or a per-query deadline, individual probation
  // entries can degrade to the crude level-1 estimate: a failed call still
  // consumed its (possibly inflated) time and budget, a deadline-skipped
  // call consumed neither.
  if (!probation.empty()) {
    const bool faulty = faults_ != nullptr && faults_->enabled();
    const double deadline = config_->whatif_deadline_seconds;
    std::vector<IndexId> live;
    live.reserve(probation.size());
    int issued = 0;
    double charged = 0.0;
    for (IndexId id : probation) {
      double call_seconds = config_->whatif_call_seconds;
      if (faulty) {
        call_seconds *= faults_->Multiplier(fault_sites::kWhatIfSlow);
      }
      if (deadline > 0.0 && charged + call_seconds > deadline) {
        RecordCrudeFallback(q, id, cluster, materialized);
        ++outcome.degraded_calls;
        metrics_.degraded_deadline->Increment();
        continue;
      }
      charged += call_seconds;
      ++issued;
      if (faulty &&
          !faults_->MaybeFail(fault_sites::kWhatIfOptimize).ok()) {
        RecordCrudeFallback(q, id, cluster, materialized);
        ++outcome.degraded_calls;
        metrics_.degraded_fault->Increment();
        continue;
      }
      live.push_back(id);
    }
    if (!live.empty()) {
      ScopedTimer whatif_wall(metrics_.whatif_wall);
      const std::vector<IndexGain> gains = ComputeGains(q, materialized, live);
      whatif_wall.Stop();
      for (const auto& g : gains) {
        const TableId table = catalog_->index(g.index).column.table;
        const uint64_t sig =
            TableConfigSignature(*catalog_, materialized, table);
        if (materialized.Contains(g.index)) {
          // BenefitM statistics: average positive benefit per use.
          mat_stats_->Record(g.index, cluster, std::max(0.0, g.gain), sig);
        } else {
          hot_stats_->Record(g.index, cluster, std::max(0.0, g.gain), sig);
        }
        metrics_.level2_records->Increment();
        if (provenance_ != nullptr) {
          // Owner-thread emission in `live` order keeps the stream
          // worker-count-independent; src stays "whatif" whether the
          // value came from an optimizer call or the value-transparent
          // plan cache (DESIGN.md §13), unless origin annotation is
          // explicitly requested.
          ProvenanceRecorder::EventBuilder event =
              provenance_->RecordEvent("profiler.whatif_estimate");
          event.Index(g.index).Cluster(cluster).Attr("gain", g.gain).Attr(
              "src", "whatif");
          if (config_->provenance_annotate_origin) {
            event.Attr("via", g.from_cache ? "cache" : "fresh");
          }
        }
      }
    }
    *whatif_used += issued;
    metrics_.whatif_issued->Add(issued);
    outcome.whatif_calls = issued;
    outcome.charged_seconds = charged;
    outcome.probed = probation;
  }

  // 7. Crude statistics for every candidate relevant to q (line 13-14 of
  // the paper's Fig. 2): QueryGainC(q, I) = u_{q,I} * Δcost(R, σ, I).
  for (const auto& pred : q.selections()) {
    Result<IndexDescriptor> desc = catalog_->IndexOn(pred.column);
    if (!desc.ok()) continue;  // non-indexable attribute
    const IndexId id = desc->id;
    double u = 1.0;  // optimistic default
    if (materialized.Contains(id)) {
      u = std::binary_search(used.begin(), used.end(), id) ? 1.0 : 0.0;
    } else if (std::find(outcome.probed.begin(), outcome.probed.end(), id) !=
               outcome.probed.end()) {
      // Just measured: trust the what-if verdict on whether it is used.
      double sum = 0.0;
      int64_t cnt = 0;
      hot_stats_->EpochMeasurements(id, cluster, &sum, &cnt);
      u = (cnt > 0 && sum <= 0.0) ? 0.0 : 1.0;
    }
    const double crude = u * optimizer_->CrudeGain(pred, *desc);
    candidates_->Observe(id, crude, current_epoch);
    metrics_.level1_records->Increment();
  }

  // Multi-column extension (off by default): mine one composite candidate
  // per table with 2+ selections. Column order follows the B+-tree prefix
  // rule's sweet spot: equality predicates first (each extends the usable
  // prefix), then ranges; ties broken by selectivity.
  if (config_->mine_multicolumn_candidates) {
    for (TableId table : q.tables()) {
      std::vector<SelectionPredicate> preds = q.SelectionsOn(table);
      if (preds.size() < 2) continue;
      std::sort(preds.begin(), preds.end(),
                [&](const SelectionPredicate& a, const SelectionPredicate& b) {
                  if (a.is_equality() != b.is_equality()) {
                    return a.is_equality();
                  }
                  return EstimateSelectivity(*catalog_, a) <
                         EstimateSelectivity(*catalog_, b);
                });
      Result<IndexDescriptor> desc = catalog_->CompositeIndexOn(
          {preds[0].column, preds[1].column});
      if (!desc.ok()) continue;
      const double crude = optimizer_->CompositeCrudeGain(preds, *desc);
      candidates_->Observe(desc->id, crude, current_epoch);
    }
  }
  return outcome;
}

std::vector<IndexGain> Profiler::ComputeGains(
    const Query& q, const IndexConfiguration& materialized,
    const std::vector<IndexId>& live) {
  // Probe short-circuit (DESIGN.md §11): probes whose base and probe
  // costs are both in the frozen cross-epoch cache never reach an
  // optimizer or the pool. The scan runs on the owner thread against the
  // frozen cache only, so its answers — and its LRU touches — are
  // identical at every worker count.
  if (shared_cache_ != nullptr) {
    std::vector<IndexGain> gains(live.size());
    std::vector<IndexId> residual;
    std::vector<size_t> residual_pos;
    {
      ScopedTimer lookup_timer(metrics_.cache_lookup_seconds);
      const uint64_t qhash = QueryPlanSignature(q);
      const uint64_t version = catalog_->version();
      const CachedPlanCost* base = shared_cache_->Lookup(
          WhatIfCacheKey{qhash, materialized.Signature()}, version);
      int64_t answered = 0;
      for (size_t i = 0; i < live.size(); ++i) {
        const IndexId id = live[i];
        if (base != nullptr) {
          const bool mat = materialized.Contains(id);
          const IndexConfiguration probe =
              mat ? materialized.Without(id) : materialized.With(id);
          const CachedPlanCost* alt = shared_cache_->Lookup(
              WhatIfCacheKey{qhash, probe.Signature()}, version);
          if (alt != nullptr) {
            gains[i].index = id;
            gains[i].gain =
                mat ? alt->cost - base->cost : base->cost - alt->cost;
            gains[i].from_cache = true;
            ++answered;
            continue;
          }
        }
        residual.push_back(id);
        residual_pos.push_back(i);
      }
      metrics_.shortcircuit_hits->Add(answered);
    }
    if (residual.empty()) return gains;
    const std::vector<IndexGain> computed =
        ComputeGainsUncached(q, materialized, residual);
    for (size_t k = 0; k < residual_pos.size(); ++k) {
      gains[residual_pos[k]] = computed[k];
    }
    return gains;
  }
  return ComputeGainsUncached(q, materialized, live);
}

std::vector<IndexGain> Profiler::ComputeGainsUncached(
    const Query& q, const IndexConfiguration& materialized,
    const std::vector<IndexId>& live) {
  // Below 2 probes a fan-out cannot win anything over the pool handoff;
  // the serial path is also the inline fallback when no pool is attached.
  // Either path returns the same gains in the same (live) order.
  if (worker_slots_.empty() || live.size() < 2) {
    return optimizer_->WhatIfOptimize(q, materialized, live);
  }
  const size_t chunks = std::min(worker_slots_.size(), live.size());
  // Workers are quiescent here, so flipping their buffers' enabled flags
  // to mirror the main registry is race-free.
  const bool enabled = MetricsRegistry::Default().enabled();
  for (size_t c = 0; c < chunks; ++c) {
    worker_slots_[c].registry->set_enabled(enabled);
  }
  std::vector<std::future<std::vector<IndexGain>>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * live.size() / chunks;
    const size_t end = (c + 1) * live.size() / chunks;
    std::vector<IndexId> chunk(
        live.begin() + static_cast<std::ptrdiff_t>(begin),
        live.begin() + static_cast<std::ptrdiff_t>(end));
    QueryOptimizer* opt = worker_slots_[c].optimizer.get();
    // &q / &materialized are safe to share: the loop below blocks until
    // every task finished, and tasks only read them.
    futures.push_back(
        pool_->Submit([opt, &q, &materialized, chunk = std::move(chunk)] {
          return opt->WhatIfOptimize(q, materialized, chunk);
        }));
  }
  std::vector<IndexGain> gains;
  gains.reserve(live.size());
  for (auto& future : futures) {
    const std::vector<IndexGain> part = future.get();
    gains.insert(gains.end(), part.begin(), part.end());
  }
  // Keep the main optimizer's lifetime stats meaningful: absorb what the
  // chunk optimizers just counted.
  for (size_t c = 0; c < chunks; ++c) {
    optimizer_->AbsorbStats(worker_slots_[c].optimizer->stats());
    worker_slots_[c].optimizer->ResetStats();
  }
  return gains;
}

int64_t Profiler::EpochUsageCount(IndexId index, ClusterId cluster) const {
  auto it = epoch_usage_.find(PairKey{index, cluster});
  return it == epoch_usage_.end() ? 0 : it->second;
}

void Profiler::AdvanceEpoch() {
  epoch_usage_.clear();
  MetricsRegistry& main_registry = MetricsRegistry::Default();
  for (WorkerSlot& slot : worker_slots_) {
    main_registry.MergeFrom(*slot.registry);
    slot.registry->Reset();
  }
  if (provenance_ != nullptr) {
    // Same merge point and ordering as the metric buffers: slot order is
    // the deterministic task order of DESIGN.md §10.
    for (WorkerSlot& slot : worker_slots_) {
      provenance_->MergeFrom(slot.provenance.get());
    }
  }
  if (shared_cache_ != nullptr) {
    // Merge discipline (DESIGN.md §11): drain every segment, then let the
    // frozen cache sort/dedupe/insert in canonical key order and prune
    // stale entries against the *current* catalog version — the epoch's
    // ApplyConfiguration has already run, so entries computed before a
    // version bump die here. The merged contents are a deterministic
    // function of the query stream, independent of worker count.
    std::vector<std::pair<WhatIfCacheKey, CachedPlanCost>> fresh;
    owner_segment_->DrainEntriesInto(&fresh);
    for (WorkerSlot& slot : worker_slots_) {
      slot.cache_segment->DrainEntriesInto(&fresh);
    }
    const WhatIfPlanCache::MergeOutcome merged =
        shared_cache_->MergeFreshEntries(std::move(fresh),
                                         catalog_->version());
    metrics_.cache_evictions->Add(merged.evicted);
    metrics_.cache_stale_dropped->Add(merged.stale_dropped);
    metrics_.cache_bytes->Set(static_cast<double>(shared_cache_->bytes()));
    metrics_.cache_entries->Set(static_cast<double>(shared_cache_->size()));
  }
}

namespace {
constexpr uint32_t kProfilerSectionTag = 0x464F5250;  // "PROF"
}  // namespace

void Profiler::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kProfilerSectionTag);
  const std::array<uint64_t, 4> rng_state = rng_.state();
  for (uint64_t word : rng_state) writer->WriteU64(word);
  writer->WriteBool(shared_cache_ != nullptr);
  if (shared_cache_ != nullptr) shared_cache_->SaveState(writer);
}

Status Profiler::LoadState(BinaryReader* reader) {
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kProfilerSectionTag));
  std::array<uint64_t, 4> rng_state = {};
  for (uint64_t& word : rng_state) {
    COLT_RETURN_IF_ERROR(reader->ReadU64(&word));
  }
  bool has_cache = false;
  COLT_RETURN_IF_ERROR(reader->ReadBool(&has_cache));
  if (has_cache != (shared_cache_ != nullptr)) {
    return Status::FailedPrecondition(
        "what-if cache configuration differs from the snapshot's");
  }
  if (shared_cache_ != nullptr) {
    COLT_RETURN_IF_ERROR(shared_cache_->LoadState(reader));
  }
  rng_.set_state(rng_state);
  return Status::OK();
}

}  // namespace colt
