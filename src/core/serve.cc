#include "core/serve.h"

#include <algorithm>
#include <utility>

#include "common/epoch.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace colt {

double LatencyPercentile(const std::vector<ServedQuery>& queries, double p) {
  if (queries.empty()) return 0.0;
  std::vector<double> latencies;
  latencies.reserve(queries.size());
  for (const ServedQuery& q : queries) latencies.push_back(q.latency_seconds);
  std::sort(latencies.begin(), latencies.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: the smallest latency with at least p% of samples at or
  // below it.
  const size_t rank = static_cast<size_t>(
      (clamped / 100.0) * static_cast<double>(latencies.size()) + 0.5);
  const size_t index = rank == 0 ? 0 : rank - 1;
  return latencies[std::min(index, latencies.size() - 1)];
}

std::vector<ServedQuery> ServeClientEpoch(const ServeEpochContext& ctx,
                                          int client) {
  std::vector<ServedQuery> out;
  const auto& plans = *ctx.plans;
  Executor* executor = (*ctx.executors)[static_cast<size_t>(client)].get();
  for (size_t i = static_cast<size_t>(client); i < plans.size();
       i += static_cast<size_t>(ctx.client_count)) {
    const ServeEpochContext::PlannedQuery& planned = plans[i];
    ServedQuery served;
    served.trace_index = planned.trace_index;
    served.client = client;
    served.estimated_cost = planned.estimated_cost;
    const double start = WallTimer::Now();
    Result<ExecutionResult> result =
        executor->ExecuteWithSnapshot(*planned.plan, ctx.snapshot);
    served.latency_seconds = WallTimer::Now() - start;
    if (result.ok()) {
      served.ok = true;
      served.result = *result;
    } else {
      served.error = result.status().ToString();
    }
    out.push_back(std::move(served));
  }
  return out;
}

ServeResult ServeWorkload(Database* db, QueryOptimizer* optimizer,
                          ColtTuner* tuner, const std::vector<Query>& trace,
                          const ServeOptions& options) {
  COLT_CHECK(options.client_threads >= 1) << "serving needs >= 1 client";
  const int clients = options.client_threads;
  ThreadPool pool(clients, options.pin_threads);

  // Per-client executors with per-client metrics buffers (per-worker-buffer
  // rule, DESIGN.md §10): client instruments never race on Default().
  std::vector<std::unique_ptr<MetricsRegistry>> registries;
  std::vector<std::unique_ptr<Executor>> executors;
  registries.reserve(static_cast<size_t>(clients));
  executors.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    registries.push_back(std::make_unique<MetricsRegistry>());
    registries.back()->set_enabled(MetricsRegistry::Default().enabled());
    executors.push_back(std::make_unique<Executor>(db, registries.back().get()));
  }

  // Serving epochs track the tuner's epochs so configuration changes land
  // at the same trace positions as in a pure tuning run; a tunerless run
  // serves the whole trace as one epoch under the frozen configuration.
  const size_t epoch_queries =
      tuner != nullptr
          ? static_cast<size_t>(std::max(1, tuner->config().epoch_length))
          : std::max<size_t>(1, trace.size());

  ServeResult out;
  out.queries.reserve(trace.size());
  IndexConfiguration frozen;
  if (tuner == nullptr) {
    for (IndexId id : db->BuiltIndexIds()) frozen.Add(id);
  }

  WallTimer total;
  size_t pos = 0;
  while (pos < trace.size()) {
    const size_t end = std::min(pos + epoch_queries, trace.size());

    // 1. Plan the epoch on the owner against the current configuration
    //    (everything the tuner has installed through query pos-1).
    const IndexConfiguration& config =
        tuner != nullptr ? tuner->materialized() : frozen;
    std::vector<PlanResult> plan_storage;
    std::vector<ServeEpochContext::PlannedQuery> plans;
    plan_storage.reserve(end - pos);
    plans.reserve(end - pos);
    for (size_t i = pos; i < end; ++i) {
      plan_storage.push_back(optimizer->Optimize(trace[i], config));
      plans.push_back({static_cast<int64_t>(i), plan_storage.back().plan.get(),
                       plan_storage.back().cost});
    }

    // 2. Pin the planning-time snapshot for the whole epoch. The guard
    //    holds reclamation back, so even trees the tuner drops mid-epoch
    //    stay readable until the join; clients therefore resolve exactly
    //    the index set their plans were built against.
    {
      EpochGuard epoch_pin;
      ServeEpochContext ctx;
      ctx.snapshot = db->index_snapshot();
      ctx.plans = &plans;
      ctx.client_count = clients;
      ctx.executors = &executors;

      std::vector<std::future<std::vector<ServedQuery>>> futures;
      futures.reserve(static_cast<size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        futures.push_back(
            pool.Submit([&ctx, c] { return ServeClientEpoch(ctx, c); }));
      }

      // 3. While the clients drain the epoch, the owner feeds the same
      //    queries to the tuner in trace order. Installs/drops publish
      //    immediately (staged build -> atomic snapshot swap -> epoch
      //    retire) and never block the readers above.
      if (tuner != nullptr) {
        for (size_t i = pos; i < end; ++i) {
          const TuningStep step = tuner->OnQuery(trace[i]);
          out.tuner_actions += static_cast<int64_t>(step.actions.size());
        }
      }

      // 4. Join. Futures complete in client order; the merge re-sorts to
      //    trace order, so the stream is independent of scheduling.
      std::vector<ServedQuery> epoch_served;
      epoch_served.reserve(end - pos);
      for (auto& future : futures) {
        std::vector<ServedQuery> part = future.get();
        epoch_served.insert(epoch_served.end(),
                            std::make_move_iterator(part.begin()),
                            std::make_move_iterator(part.end()));
      }
      std::sort(epoch_served.begin(), epoch_served.end(),
                [](const ServedQuery& a, const ServedQuery& b) {
                  return a.trace_index < b.trace_index;
                });
      out.queries.insert(out.queries.end(),
                         std::make_move_iterator(epoch_served.begin()),
                         std::make_move_iterator(epoch_served.end()));
    }

    // Clients are quiescent: fold their metrics buffers into the main
    // registry in slot order and reset them for the next epoch.
    for (auto& registry : registries) {
      MetricsRegistry::Default().MergeFrom(*registry);
      registry->Reset();
    }

    if (options.on_epoch_end) options.on_epoch_end(out.epochs);
    ++out.epochs;
    pos = end;
  }

  out.wall_seconds = total.Seconds();
  out.aggregate_qps =
      out.wall_seconds > 0.0
          ? static_cast<double>(out.queries.size()) / out.wall_seconds
          : 0.0;
  if (tuner != nullptr) out.epoch_reports = tuner->epoch_reports();
  return out;
}

}  // namespace colt
