#ifndef COLT_CORE_CLUSTERING_H_
#define COLT_CORE_CLUSTERING_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/persist/serializer.h"
#include "query/query.h"

namespace colt {

/// Identifier of a query cluster within the ClusterManager.
using ClusterId = int32_t;
inline constexpr ClusterId kInvalidClusterId = -1;

/// The Profiler's query clustering (paper §4.1): query occurrences in S_h
/// grouped by (tables, join predicates, selection attributes with bucketed
/// selectivity). Each cluster tracks its per-epoch population over the last
/// h epochs so that Count(Q_i) always reflects the system's memory window.
class ClusterManager {
 public:
  /// `history_depth` = h (number of epochs of memory).
  explicit ClusterManager(const Catalog* catalog, int history_depth)
      : catalog_(catalog), history_depth_(history_depth) {}

  /// Assigns `q` to its cluster (creating it on first sight) and counts the
  /// occurrence in the current epoch. O(signature) expected time.
  ClusterId Assign(const Query& q);

  /// Number of occurrences of cluster `id` within the memory window S_h
  /// (including the in-progress epoch).
  int64_t Count(ClusterId id) const;

  /// Occurrences of cluster `id` in the in-progress epoch.
  int64_t EpochCount(ClusterId id) const;

  /// Expected occurrences of cluster `id` per epoch, estimated over the
  /// memory window: Count(Q_i) divided by the number of epochs the window
  /// spans (at most h). This is the low-variance population estimate the
  /// Self-Organizer uses for benefit forecasts.
  double WindowRate(ClusterId id) const;

  /// Columns of cluster `id` that can make an index relevant: selection
  /// columns plus join columns.
  const std::vector<ColumnRef>& RelevantColumns(ClusterId id) const;

  /// Signature of cluster `id`.
  const QuerySignature& signature(ClusterId id) const;

  /// Closes the current epoch: shifts per-epoch counts, expires counts
  /// older than h epochs, and drops clusters whose window count reaches 0.
  void AdvanceEpoch();

  /// Cluster ids with at least one occurrence in the in-progress epoch.
  std::vector<ClusterId> ActiveThisEpoch() const;

  /// Number of live clusters (window count > 0). The paper bounds this by
  /// w * h, the number of queries in memory.
  int64_t live_cluster_count() const;

  /// All live cluster ids.
  std::vector<ClusterId> LiveClusters() const;

  /// Crash-safe persistence of the full clustering state (signatures,
  /// window counts, id allocator). The signature index is rebuilt on load.
  void SaveState(BinaryWriter* writer) const;
  Status LoadState(BinaryReader* reader);

 private:
  struct ClusterState {
    QuerySignature signature;
    std::vector<ColumnRef> relevant_columns;
    /// counts.front() = in-progress epoch; up to h+1 entries.
    std::deque<int64_t> counts;
    int64_t window_total = 0;  // sum of counts
  };

  const Catalog* catalog_;
  int history_depth_;
  std::unordered_map<QuerySignature, ClusterId, QuerySignatureHash> by_signature_;
  std::unordered_map<ClusterId, ClusterState> clusters_;
  ClusterId next_id_ = 0;
  /// Number of epochs observed so far, including the in-progress one.
  int epochs_observed_ = 1;
};

}  // namespace colt

#endif  // COLT_CORE_CLUSTERING_H_
