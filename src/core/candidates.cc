#include "core/candidates.h"

#include <algorithm>

namespace colt {

void CandidateSet::Observe(IndexId index, double crude_gain,
                           int current_epoch) {
  auto it = info_.find(index);
  if (it == info_.end()) {
    it = info_.emplace(index, Info(alpha_)).first;
  }
  it->second.last_seen_epoch = current_epoch;
  it->second.epoch_sum += crude_gain;
}

void CandidateSet::AdvanceEpoch(int finished_epoch, int epoch_length) {
  for (auto it = info_.begin(); it != info_.end();) {
    Info& info = it->second;
    if (finished_epoch - info.last_seen_epoch > history_depth_) {
      it = info_.erase(it);
      continue;
    }
    info.smoothed.Update(info.epoch_sum /
                         std::max(1, epoch_length));
    info.epoch_sum = 0.0;
    ++it;
  }
}

double CandidateSet::SmoothedBenefit(IndexId index) const {
  auto it = info_.find(index);
  if (it == info_.end()) return 0.0;
  if (!it->second.smoothed.initialized()) {
    // First epoch for this candidate: fall back to the raw in-progress sum.
    return it->second.epoch_sum;
  }
  return it->second.smoothed.value();
}

std::vector<IndexId> CandidateSet::All() const {
  std::vector<IndexId> out;
  out.reserve(info_.size());
  for (const auto& entry : info_) out.push_back(entry.first);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace colt
