#include "core/candidates.h"

#include <algorithm>

namespace colt {

void CandidateSet::Observe(IndexId index, double crude_gain,
                           int current_epoch) {
  auto it = info_.find(index);
  if (it == info_.end()) {
    it = info_.emplace(index, Info(alpha_)).first;
  }
  it->second.last_seen_epoch = current_epoch;
  it->second.epoch_sum += crude_gain;
}

void CandidateSet::AdvanceEpoch(int finished_epoch, int epoch_length) {
  for (auto it = info_.begin(); it != info_.end();) {
    Info& info = it->second;
    if (finished_epoch - info.last_seen_epoch > history_depth_) {
      it = info_.erase(it);
      continue;
    }
    info.smoothed.Update(info.epoch_sum /
                         std::max(1, epoch_length));
    info.epoch_sum = 0.0;
    ++it;
  }
}

double CandidateSet::SmoothedBenefit(IndexId index) const {
  auto it = info_.find(index);
  if (it == info_.end()) return 0.0;
  if (!it->second.smoothed.initialized()) {
    // First epoch for this candidate: fall back to the raw in-progress sum.
    return it->second.epoch_sum;
  }
  return it->second.smoothed.value();
}

std::vector<IndexId> CandidateSet::All() const {
  std::vector<IndexId> out;
  out.reserve(info_.size());
  for (const auto& entry : info_) out.push_back(entry.first);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {
constexpr uint32_t kCandidateSectionTag = 0x444E4143;  // "CAND"
}  // namespace

void CandidateSet::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kCandidateSectionTag);
  const std::vector<IndexId> ids = All();
  writer->WriteU64(ids.size());
  for (IndexId id : ids) {
    const Info& info = info_.at(id);
    writer->WriteI64(id);
    writer->WriteI64(info.last_seen_epoch);
    writer->WriteDouble(info.epoch_sum);
    writer->WriteDouble(info.smoothed.value());
    writer->WriteBool(info.smoothed.initialized());
  }
}

Status CandidateSet::LoadState(BinaryReader* reader) {
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kCandidateSectionTag));
  uint64_t count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&count));
  std::unordered_map<IndexId, Info> info;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t id = 0, last_seen = 0;
    double epoch_sum = 0.0, smoothed_value = 0.0;
    bool smoothed_initialized = false;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&id));
    COLT_RETURN_IF_ERROR(reader->ReadI64(&last_seen));
    COLT_RETURN_IF_ERROR(reader->ReadDouble(&epoch_sum));
    COLT_RETURN_IF_ERROR(reader->ReadDouble(&smoothed_value));
    COLT_RETURN_IF_ERROR(reader->ReadBool(&smoothed_initialized));
    Info entry(alpha_);
    entry.last_seen_epoch = static_cast<int>(last_seen);
    entry.epoch_sum = epoch_sum;
    entry.smoothed.Restore(smoothed_value, smoothed_initialized);
    info.emplace(static_cast<IndexId>(id), entry);
  }
  info_ = std::move(info);
  return Status::OK();
}

}  // namespace colt
