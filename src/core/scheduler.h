#ifndef COLT_CORE_SCHEDULER_H_
#define COLT_CORE_SCHEDULER_H_

#include <deque>
#include <vector>

#include "catalog/catalog.h"
#include "core/config.h"
#include "common/status.h"
#include "optimizer/cost_model.h"
#include "storage/database.h"

namespace colt {

/// What the Scheduler did to the physical configuration.
enum class IndexActionType { kMaterialize, kDrop };

struct IndexAction {
  IndexActionType type = IndexActionType::kMaterialize;
  IndexId index = kInvalidIndexId;
  /// Simulated build time charged to the timeline (0 for drops and for
  /// builds performed during idle time).
  double build_seconds = 0.0;
};

/// Applies Self-Organizer decisions to the physical configuration.
/// When attached to a Database (physical mode), builds and drops real
/// B+-trees; in statistics-only mode it just tracks the configuration.
class Scheduler {
 public:
  /// `db` may be null (statistics-only mode).
  Scheduler(const Catalog* catalog, const CostModel* cost_model, Database* db,
            SchedulingStrategy strategy = SchedulingStrategy::kImmediate)
      : catalog_(catalog),
        cost_model_(cost_model),
        db_(db),
        strategy_(strategy) {}

  /// Transitions toward `desired`. Drops take effect immediately (and
  /// cancel pending builds that are no longer wanted). Builds take effect
  /// immediately under kImmediate (returned with their cost) or are queued
  /// under kIdleTime.
  Result<std::vector<IndexAction>> ApplyConfiguration(
      const IndexConfiguration& desired);

  /// kIdleTime only: spends `seconds` of idle time on the build queue
  /// (FIFO); returns the builds that completed (build_seconds = 0 — idle
  /// work is free for the query stream).
  Result<std::vector<IndexAction>> OnIdle(double seconds);

  const IndexConfiguration& materialized() const { return materialized_; }

  /// Indexes queued for building (kIdleTime), FIFO order.
  std::vector<IndexId> PendingBuilds() const;

  /// Total bytes occupied by the materialized set.
  int64_t MaterializedBytes() const;

  /// Simulated build time for one index in seconds.
  double BuildSeconds(IndexId id) const;

  SchedulingStrategy strategy() const { return strategy_; }

 private:
  struct PendingBuild {
    IndexId index = kInvalidIndexId;
    double remaining_seconds = 0.0;
  };

  Status Materialize(IndexId id);

  const Catalog* catalog_;
  const CostModel* cost_model_;
  Database* db_;
  SchedulingStrategy strategy_;
  IndexConfiguration materialized_;
  std::deque<PendingBuild> pending_;
};

}  // namespace colt

#endif  // COLT_CORE_SCHEDULER_H_
