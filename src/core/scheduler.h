#ifndef COLT_CORE_SCHEDULER_H_
#define COLT_CORE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/persist/serializer.h"
#include "common/provenance.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "optimizer/cost_model.h"
#include "storage/database.h"

namespace colt {

/// What the Scheduler did to the physical configuration.
enum class IndexActionType {
  kMaterialize,
  kDrop,
  /// A build attempt failed; its build_seconds were wasted (charged to the
  /// timeline so the chaos accounting stays honest).
  kBuildFailed,
  /// The index exhausted max_build_retries and is excluded from builds
  /// until its cooldown elapses (build_seconds = 0, informational).
  kQuarantine,
};

struct IndexAction {
  IndexActionType type = IndexActionType::kMaterialize;
  IndexId index = kInvalidIndexId;
  /// Simulated build time charged to the timeline (0 for drops, quarantine
  /// markers, and builds performed during idle time).
  double build_seconds = 0.0;
};

/// Retry/backoff/quarantine policy for failed index builds (defaults
/// mirror ColtConfig).
struct SchedulerRetryPolicy {
  int max_build_retries = 3;
  int backoff_base_rounds = 1;
  int max_backoff_rounds = 8;
  int quarantine_cooldown_rounds = 24;
};

/// Applies Self-Organizer decisions to the physical configuration.
/// When attached to a Database (physical mode), builds and drops real
/// B+-trees; in statistics-only mode it just tracks the configuration.
///
/// Failure handling: transient build failures (injected via the
/// `index.build` fault site or kInternal/kResourceExhausted errors from
/// the Database) are retried with capped exponential backoff measured in
/// reorganization rounds (one ApplyConfiguration call = one round). An
/// index that fails `max_build_retries` consecutive attempts is
/// quarantined: builds are refused and callers should exclude it from
/// planning until the cooldown elapses, after which its failure history is
/// forgotten. Non-transient errors (kFailedPrecondition etc.) propagate to
/// the caller unchanged — they indicate misuse, not substrate weather.
class Scheduler {
 public:
  using RetryPolicy = SchedulerRetryPolicy;

  /// `db` may be null (statistics-only mode). `faults` may be null (no
  /// fault injection); it must outlive the scheduler. `pool` may be null
  /// (inline builds); when given together with a Database, physical tree
  /// construction (Database::PrepareIndex) is staged on pool workers so it
  /// overlaps query execution, while fault checks and the registration of
  /// finished trees (InstallIndex) stay on the owner thread at exactly the
  /// serial sequence points — actions, fault draws, and retry bookkeeping
  /// are bit-identical with and without the pool.
  ///
  /// `catalog` is non-const because every install and drop bumps
  /// Catalog::BumpVersion() — in both physical and statistics-only mode —
  /// so the what-if plan cache invalidates precisely (DESIGN.md §11).
  /// `provenance` may be null (no decision recording); installs, drops,
  /// build failures, backoffs and quarantines emit typed events when set
  /// (DESIGN.md §13).
  Scheduler(Catalog* catalog, const CostModel* cost_model, Database* db,
            SchedulingStrategy strategy = SchedulingStrategy::kImmediate,
            FaultInjector* faults = nullptr, RetryPolicy retry = {},
            ThreadPool* pool = nullptr,
            ProvenanceRecorder* provenance = nullptr);

  /// Transitions toward `desired`. Drops take effect immediately (and
  /// cancel pending builds that are no longer wanted). Builds take effect
  /// immediately under kImmediate (returned with their cost) or are queued
  /// under kIdleTime. Indexes in backoff or quarantine are skipped; they
  /// are retried automatically on a later call once eligible. `cause`
  /// labels the install/drop provenance events with what triggered the
  /// transition ("reorg" for ordinary epoch-end reorganizations,
  /// "emergency" for budget-shrink evictions).
  COLT_OWNER_ONLY Result<std::vector<IndexAction>> ApplyConfiguration(
      const IndexConfiguration& desired, std::string_view cause = "reorg");

  /// kIdleTime only: spends `seconds` of idle time on the build queue
  /// (FIFO); returns the builds that completed (build_seconds = 0 — idle
  /// work is free for the query stream). Zero-cost builds complete even
  /// when `seconds` is 0. A build whose final Materialize fails is removed
  /// from the queue (its idle work is lost) and handed to the
  /// retry/backoff machinery.
  COLT_OWNER_ONLY Result<std::vector<IndexAction>> OnIdle(double seconds);

  const IndexConfiguration& materialized() const { return materialized_; }

  /// Indexes queued for building (kIdleTime), FIFO order.
  std::vector<IndexId> PendingBuilds() const;

  /// Total bytes occupied by the materialized set.
  int64_t MaterializedBytes() const;

  /// Simulated build time for one index in seconds.
  double BuildSeconds(IndexId id) const;

  SchedulingStrategy strategy() const { return strategy_; }

  /// True while `id` is quarantined (cooldown not yet elapsed).
  bool IsQuarantined(IndexId id) const;
  /// Currently quarantined indexes, ascending. Callers (Self-Organizer)
  /// must exclude these from configuration picks.
  std::vector<IndexId> QuarantinedIndexes() const;

  /// Lifetime counters for chaos reporting.
  int64_t build_failures() const { return build_failures_; }
  int64_t quarantine_events() const { return quarantine_events_; }

  /// Simulated seconds charged to the timeline by failed immediate-mode
  /// build attempts (kBuildFailed actions). Kept apart from successful
  /// build time so reports can show wasted vs. useful work.
  double wasted_build_seconds() const { return wasted_build_seconds_; }
  /// Idle seconds sunk into queued builds that were later cancelled or
  /// whose final materialization failed (kIdleTime only).
  double wasted_idle_seconds() const { return wasted_idle_seconds_; }
  /// Total idle seconds consumed from OnIdle budgets (productive or not).
  double idle_seconds_spent() const { return idle_seconds_spent_; }

  /// Crash-safe persistence: the materialized set (ids only — physical
  /// trees are rebuilt from the base tables on load, never page-imaged),
  /// the pending build queue (staged futures are re-staged on load), the
  /// retry/backoff/quarantine map, the round counter, and the lifetime
  /// accounting. LoadState rebuilds real B+-trees via the attached
  /// Database and therefore may fail with the substrate's error.
  void SaveState(BinaryWriter* writer) const;
  Status LoadState(BinaryReader* reader);

 private:
  /// Future for a tree staged on a pool worker (background build mode).
  using StagedTree = std::future<Result<std::unique_ptr<BTreeIndex>>>;

  struct PendingBuild {
    IndexId index = kInvalidIndexId;
    double remaining_seconds = 0.0;
    /// Idle seconds already sunk into this build (lost if it is cancelled
    /// or its materialization fails).
    double spent_seconds = 0.0;
    /// Background mode only: the physical tree being bulk-loaded on a pool
    /// worker while the simulated idle clock runs down. Joined at the
    /// OnIdle completion boundary; discarded (not installed) if the build
    /// is cancelled first.
    StagedTree staged;
  };

  /// Per-index failure bookkeeping; erased on success or cooldown expiry.
  struct FailureState {
    int consecutive_failures = 0;
    /// Builds blocked while round_ < retry_after_round.
    int64_t retry_after_round = 0;
    /// >= 0 while quarantined; builds blocked while round_ < this.
    int64_t quarantine_until_round = -1;
  };

  /// Runs the fault check plus the physical build, installing `staged`
  /// when it holds a successfully pre-built tree (an invalid or failed
  /// future falls back to an inline build, so completion-time state
  /// decides — exactly as without a pool). Transient errors are the
  /// retryable ones; everything else is caller misuse.
  Status TryBuild(IndexId id, StagedTree staged = {});

  /// Submits Database::PrepareIndex(id) to the pool, or returns an invalid
  /// future when background builds are off (no pool / no database).
  StagedTree StageBuild(IndexId id);
  static bool IsTransient(StatusCode code) {
    return code == StatusCode::kInternal ||
           code == StatusCode::kResourceExhausted;
  }

  /// True when a build of `id` may not be attempted this round.
  bool BuildBlocked(IndexId id) const;

  /// Records one failed attempt; appends kQuarantine to `actions` when the
  /// retry budget is exhausted.
  void RecordBuildFailure(IndexId id, std::vector<IndexAction>* actions);

  /// Drops failure records whose quarantine cooldown has elapsed.
  void ExpireQuarantines();

  Catalog* catalog_;
  const CostModel* cost_model_;
  Database* db_;
  SchedulingStrategy strategy_;
  FaultInjector* faults_;
  RetryPolicy retry_;
  ThreadPool* pool_;
  ProvenanceRecorder* provenance_;
  IndexConfiguration materialized_;
  std::deque<PendingBuild> pending_;
  std::unordered_map<IndexId, FailureState> failures_;
  /// Reorganization round counter; advanced by ApplyConfiguration.
  int64_t round_ = 0;
  int64_t build_failures_ = 0;
  int64_t quarantine_events_ = 0;
  double wasted_build_seconds_ = 0.0;
  double wasted_idle_seconds_ = 0.0;
  double idle_seconds_spent_ = 0.0;

  struct Instruments {
    Counter* builds_completed;
    Counter* builds_failed;
    Counter* drops;
    Counter* backoff_events;
    Counter* quarantine_events;
    Gauge* pending_builds;
    Histogram* apply_seconds;
  };
  Instruments metrics_;
};

}  // namespace colt

#endif  // COLT_CORE_SCHEDULER_H_
