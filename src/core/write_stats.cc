#include "core/write_stats.h"

namespace colt {

namespace {
constexpr uint32_t kWriteStatsTag = 0x53575443;  // "CTWS"
}  // namespace

void WriteStatsStore::RecordInsert(TableId table, double rows) {
  epoch_[table].inserted += rows;
  ++epoch_write_queries_;
}

void WriteStatsStore::RecordDelete(TableId table, double rows) {
  epoch_[table].deleted += rows;
  ++epoch_write_queries_;
}

void WriteStatsStore::RecordUpdate(TableId table,
                                   const std::vector<ColumnId>& set_columns,
                                   double rows) {
  TableCounters& counters = epoch_[table];
  for (ColumnId col : set_columns) counters.updated[col] += rows;
  ++epoch_write_queries_;
}

double WriteStatsStore::EpochEntryOps(const IndexDescriptor& index) const {
  auto it = epoch_.find(index.column.table);
  if (it == epoch_.end()) return 0.0;
  const TableCounters& counters = it->second;
  double ops = counters.inserted + counters.deleted;
  for (const ColumnRef& col : index.columns) {
    auto updated = counters.updated.find(col.column);
    if (updated != counters.updated.end()) ops += 2.0 * updated->second;
  }
  return ops;
}

double WriteStatsStore::epoch_rows_written() const {
  double rows = 0.0;
  for (const auto& [table, counters] : epoch_) {
    rows += counters.inserted + counters.deleted;
    for (const auto& [col, updated] : counters.updated) rows += updated;
  }
  return rows;
}

void WriteStatsStore::AdvanceEpoch() {
  total_write_queries_ += epoch_write_queries_;
  epoch_write_queries_ = 0;
  epoch_.clear();
}

void WriteStatsStore::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kWriteStatsTag);
  writer->WriteI64(epoch_write_queries_);
  writer->WriteI64(total_write_queries_);
  writer->WriteU64(epoch_.size());
  for (const auto& [table, counters] : epoch_) {
    writer->WriteI64(table);
    writer->WriteDouble(counters.inserted);
    writer->WriteDouble(counters.deleted);
    writer->WriteU64(counters.updated.size());
    for (const auto& [col, rows] : counters.updated) {
      writer->WriteI64(col);
      writer->WriteDouble(rows);
    }
  }
}

Status WriteStatsStore::LoadState(BinaryReader* reader) {
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kWriteStatsTag));
  epoch_.clear();
  COLT_RETURN_IF_ERROR(reader->ReadI64(&epoch_write_queries_));
  COLT_RETURN_IF_ERROR(reader->ReadI64(&total_write_queries_));
  uint64_t table_count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&table_count));
  for (uint64_t i = 0; i < table_count; ++i) {
    int64_t table = 0;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&table));
    TableCounters counters;
    COLT_RETURN_IF_ERROR(reader->ReadDouble(&counters.inserted));
    COLT_RETURN_IF_ERROR(reader->ReadDouble(&counters.deleted));
    uint64_t column_count = 0;
    COLT_RETURN_IF_ERROR(reader->ReadU64(&column_count));
    for (uint64_t j = 0; j < column_count; ++j) {
      int64_t col = 0;
      double rows = 0.0;
      COLT_RETURN_IF_ERROR(reader->ReadI64(&col));
      COLT_RETURN_IF_ERROR(reader->ReadDouble(&rows));
      counters.updated[static_cast<ColumnId>(col)] = rows;
    }
    epoch_[static_cast<TableId>(table)] = std::move(counters);
  }
  return Status::OK();
}

}  // namespace colt
