#ifndef COLT_CORE_WRITE_STATS_H_
#define COLT_CORE_WRITE_STATS_H_

#include <cstdint>
#include <map>
#include <vector>

#include "catalog/catalog.h"
#include "common/persist/serializer.h"
#include "common/status.h"

namespace colt {

/// Per-epoch write-volume statistics (DESIGN.md §16). The tuner records
/// the optimizer-estimated affected rows of every INSERT/UPDATE/DELETE it
/// observes; at the epoch boundary the Self-Organizer converts the
/// finished epoch's volumes into a per-index maintenance charge that is
/// subtracted from the observed benefit before it enters the forecaster.
///
/// Estimated (not executed) row counts are recorded on purpose: the
/// charge must live in the same model currency as the benefit it offsets,
/// and must be identical whether the run is statistics-only or physically
/// applies its writes.
///
/// All counters are doubles because cardinality estimates are fractional;
/// tables and columns are kept in ordered maps so serialization and
/// iteration order are deterministic.
class WriteStatsStore {
 public:
  /// Records an INSERT of `rows` estimated rows into `table`.
  void RecordInsert(TableId table, double rows);
  /// Records a DELETE of `rows` estimated rows from `table`.
  void RecordDelete(TableId table, double rows);
  /// Records an UPDATE assigning each column of `set_columns` on `rows`
  /// estimated rows of `table`. Columns must be the statement's distinct
  /// SET columns.
  void RecordUpdate(TableId table, const std::vector<ColumnId>& set_columns,
                    double rows);

  /// B+-tree entry operations the current (finishing) epoch implies for
  /// `index`: one insert per inserted row, one erase per deleted row, and
  /// erase + re-insert (2 ops) per row whose update assigned a key column.
  /// For composite indexes the update term sums over key columns — an
  /// upper bound when one statement assigns several key columns at once.
  double EpochEntryOps(const IndexDescriptor& index) const;

  /// Write statements observed in the current epoch / over the lifetime
  /// (lifetime includes the current epoch).
  int64_t epoch_write_queries() const { return epoch_write_queries_; }
  int64_t total_write_queries() const {
    return total_write_queries_ + epoch_write_queries_;
  }
  /// True once any write statement was ever observed (drives the
  /// writes-only CSV columns: read-only runs stay byte-identical).
  bool any_writes() const { return total_write_queries() > 0; }

  /// Estimated rows written in the current epoch, across all tables
  /// (inserts + deletes + updates).
  double epoch_rows_written() const;

  /// Rolls the epoch counters into the lifetime totals and clears them.
  /// Call at the epoch boundary, after the Self-Organizer consumed the
  /// finished epoch's volumes.
  void AdvanceEpoch();

  void SaveState(BinaryWriter* writer) const;
  Status LoadState(BinaryReader* reader);

 private:
  struct TableCounters {
    double inserted = 0.0;
    double deleted = 0.0;
    /// Updated rows per assigned column.
    std::map<ColumnId, double> updated;
  };

  std::map<TableId, TableCounters> epoch_;
  int64_t epoch_write_queries_ = 0;
  int64_t total_write_queries_ = 0;
};

}  // namespace colt

#endif  // COLT_CORE_WRITE_STATS_H_
