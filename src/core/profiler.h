#ifndef COLT_CORE_PROFILER_H_
#define COLT_CORE_PROFILER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/metrics.h"
#include "common/persist/serializer.h"
#include "common/provenance.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/candidates.h"
#include "core/clustering.h"
#include "core/config.h"
#include "core/gain_stats.h"
#include "optimizer/optimizer.h"
#include "optimizer/whatif_cache.h"

namespace colt {

/// Signature of the materialized indexes of `config` that live on `table`;
/// the Profiler's consistency tag for gain measurements (paper §4.1: "a
/// past measurement for a hot index is consistent if the relevant indices
/// on the same table have not changed in M").
uint64_t TableConfigSignature(const Catalog& catalog,
                              const IndexConfiguration& config, TableId table);

/// The Profiler (paper §4): gathers two-level performance statistics per
/// query. Level 1 — crude BenefitC for every candidate; level 2 — what-if
/// measured gains with confidence intervals for hot and materialized
/// indexes, under the per-epoch what-if budget, with adaptive sampling
/// proportional to each pair's error contribution.
class Profiler {
 public:
  /// `faults` may be null (no fault injection); it must outlive the
  /// profiler. `pool` may be null (serial what-if probing); when given, the
  /// profiler builds one worker-private optimizer + metrics buffer per pool
  /// worker and fans WhatIfOptimize probes out across them — with results
  /// bit-identical to the serial path (see ProfileQuery). `provenance` may
  /// be null (no decision recording); gain estimates are emitted on the
  /// owner thread in probe order, so the event stream is worker-count-
  /// independent (DESIGN.md §13).
  Profiler(Catalog* catalog, QueryOptimizer* optimizer,
           ClusterManager* clusters, GainStatsStore* hot_stats,
           GainStatsStore* mat_stats, CandidateSet* candidates,
           const ColtConfig* config, uint64_t seed,
           FaultInjector* faults = nullptr, ThreadPool* pool = nullptr,
           ProvenanceRecorder* provenance = nullptr);

  /// Detaches the what-if cache from the (externally owned) main optimizer
  /// — the cache dies with the profiler, the optimizer may not.
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  struct ProfileOutcome {
    ClusterId cluster = kInvalidClusterId;
    /// Indexes probed for this query — through the what-if interface, or
    /// (under faults/deadline pressure) via the degraded crude path.
    std::vector<IndexId> probed;
    /// What-if calls issued (and charged), including ones that failed.
    int whatif_calls = 0;
    /// Probation entries that fell back to the crude level-1 estimate
    /// because the what-if call failed or the per-query deadline was hit.
    int degraded_calls = 0;
    /// Simulated profiling time for this query (reflects `*.slow` latency
    /// faults; equals whatif_calls * whatif_call_seconds without them).
    double charged_seconds = 0.0;
  };

  /// One invocation per query (paper Fig. 2). `plan` is the query's normal
  /// optimized plan under `materialized`; `whatif_used` is the epoch's
  /// running what-if counter (#WI_cur), updated in place against
  /// `whatif_limit` (#WI_lim).
  COLT_OWNER_ONLY ProfileOutcome ProfileQuery(
      const Query& q, const PlanResult& plan,
      const IndexConfiguration& materialized,
      const std::vector<IndexId>& hot_set, int whatif_limit,
      int* whatif_used, int current_epoch);

  /// Queries of the in-progress epoch, per cluster, in which a given
  /// materialized index was used by the normal plan (drives BenefitM).
  int64_t EpochUsageCount(IndexId index, ClusterId cluster) const;

  /// Clears per-epoch usage counts, folds the worker-private metric
  /// buffers into MetricsRegistry::Default() (the epoch boundary is the
  /// merge point of the per-worker-buffer rule, DESIGN.md §10), and merges
  /// the per-worker what-if cache segments into the frozen cross-epoch
  /// cache in canonical sorted-key order (DESIGN.md §11).
  COLT_OWNER_ONLY void AdvanceEpoch();

  /// The frozen cross-epoch what-if cache, or null when
  /// ColtConfig::whatif_cache_bytes == 0 (exposed for tests and tools).
  const WhatIfPlanCache* whatif_cache() const { return shared_cache_.get(); }

  /// The adaptive sampling probability for pair (index, cluster) given the
  /// largest error contribution among this query's competing pairs
  /// (exposed for testing).
  double SampleRate(IndexId index, ClusterId cluster,
                    const IndexConfiguration& materialized,
                    double max_error) const;

  /// Error contribution of a pair: Count(Q_i) * sqrt(Var / n); the paper's
  /// allocation heuristic weights pairs by this quantity. Unmeasured pairs
  /// return +infinity (always sampled).
  double ErrorContribution(IndexId index, ClusterId cluster,
                           const IndexConfiguration& materialized) const;

  /// Crash-safe persistence of the sampling RNG stream and the frozen
  /// cross-epoch what-if cache. Must be called at an epoch boundary (after
  /// AdvanceEpoch): per-epoch usage counts and the worker cache segments
  /// are empty there by construction and are not serialized. LoadState
  /// fails with kFailedPrecondition when the snapshot's cache presence
  /// disagrees with this profiler's configuration.
  void SaveState(BinaryWriter* writer) const;
  Status LoadState(BinaryReader* reader);

 private:
  /// Degraded (level-1) fallback for a probation index whose what-if call
  /// failed or was skipped: records the crude standard-formula gain into
  /// the interval statistics so the benefit is estimated coarsely instead
  /// of silently zeroed.
  void RecordCrudeFallback(const Query& q, IndexId index, ClusterId cluster,
                           const IndexConfiguration& materialized);

  /// Degraded-mode cache consult: answers QueryGain(q, index) from the
  /// frozen cross-epoch cache alone (never the in-flight segments — in
  /// serial mode fresh entries would be visible mid-epoch, in parallel
  /// mode they would not, and a difference would break serial-vs-parallel
  /// byte-identity). Returns false when either cost is absent or stale.
  bool CachedWhatIfGain(const Query& q, IndexId index,
                        const IndexConfiguration& materialized, double* gain);

  /// The what-if gains for `live`, in `live` order. Serial on the main
  /// optimizer when no pool is attached (or the batch is too small to
  /// amortize a handoff); otherwise contiguous chunks of `live` are probed
  /// concurrently, one worker-private optimizer per chunk, and the chunk
  /// results are concatenated in submission order. Identical output either
  /// way: WhatIfOptimize is a pure function of (catalog, params, query,
  /// materialized, probation), and its memo is a per-call cache.
  std::vector<IndexGain> ComputeGains(const Query& q,
                                      const IndexConfiguration& materialized,
                                      const std::vector<IndexId>& live);

  /// ComputeGains minus the frozen-cache short-circuit: the serial or
  /// chunked fan-out path. (Worker optimizers still consult their private
  /// segments and Peek the frozen cache per cost computation.)
  std::vector<IndexGain> ComputeGainsUncached(
      const Query& q, const IndexConfiguration& materialized,
      const std::vector<IndexId>& live);

  Catalog* catalog_;
  QueryOptimizer* optimizer_;
  ClusterManager* clusters_;
  GainStatsStore* hot_stats_;
  GainStatsStore* mat_stats_;
  CandidateSet* candidates_;
  const ColtConfig* config_;
  Rng rng_;
  FaultInjector* faults_;
  ThreadPool* pool_;
  ProvenanceRecorder* provenance_;

  /// One slot per pool worker: a private metrics buffer and a private
  /// optimizer recording into it. A chunk-task uses exactly one slot, and
  /// at most one task per slot is in flight, so slot state needs no locks;
  /// the pool's queue mutex provides the happens-before edges.
  struct WorkerSlot {
    std::unique_ptr<MetricsRegistry> registry;
    std::unique_ptr<QueryOptimizer> optimizer;
    /// Fresh what-if cache entries this worker computed during the epoch;
    /// drained into the frozen cache at AdvanceEpoch.
    std::unique_ptr<WhatIfPlanCache> cache_segment;
    /// Worker-private provenance buffer, folded into the main recorder at
    /// AdvanceEpoch in slot order (the deterministic task order of
    /// DESIGN.md §10). The current pipeline emits decisions owner-side
    /// only, so these stay empty; the buffer exists so future worker-side
    /// emission inherits the merge discipline instead of inventing one.
    std::unique_ptr<ProvenanceRecorder> provenance;
  };
  std::vector<WorkerSlot> worker_slots_;

  /// Cross-epoch what-if plan cache (DESIGN.md §11), created when
  /// config->whatif_cache_bytes > 0. `shared_cache_` is frozen within an
  /// epoch: workers Peek it (const), only the owner thread mutates it —
  /// LRU touches in the probe short-circuit and the degraded fallback,
  /// structural changes only in AdvanceEpoch while workers are quiescent.
  /// `owner_segment_` collects fresh entries from the serial path (the
  /// main optimizer), mirroring the per-worker segments.
  std::unique_ptr<WhatIfPlanCache> shared_cache_;
  std::unique_ptr<WhatIfPlanCache> owner_segment_;

  struct PairKey {
    IndexId index;
    ClusterId cluster;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    size_t operator()(const PairKey& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.index) << 32) ^
                                   static_cast<uint32_t>(k.cluster));
    }
  };
  std::unordered_map<PairKey, int64_t, PairKeyHash> epoch_usage_;

  struct Instruments {
    Counter* whatif_issued;
    Counter* degraded_fault;
    Counter* degraded_deadline;
    /// Degraded probes answered with a measured gain from the frozen
    /// what-if cache instead of the crude level-1 estimate.
    Counter* degraded_cache_hit;
    Counter* level1_records;
    Counter* level2_records;
    /// Probes fully answered by the frozen cache before the fan-out.
    Counter* shortcircuit_hits;
    Counter* cache_evictions;
    Counter* cache_stale_dropped;
    Gauge* cache_bytes;
    Gauge* cache_entries;
    Histogram* profile_seconds;
    /// Real wall time of the what-if section per query (main thread),
    /// serial or fanned out — the quantity the parallel layer shrinks.
    Histogram* whatif_wall;
    /// Wall time of the owner's short-circuit scan over the frozen cache
    /// (the p95 of this is the per-query cache lookup cost).
    Histogram* cache_lookup_seconds;
  };
  Instruments metrics_;
};

}  // namespace colt

#endif  // COLT_CORE_PROFILER_H_
