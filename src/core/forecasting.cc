#include "core/forecasting.h"

#include <algorithm>

namespace colt {

void BenefitForecaster::RecordEpoch(IndexId index, double benefit) {
  auto& hist = history_[index];
  hist.push_front(benefit);
  while (static_cast<int>(hist.size()) > history_depth_) hist.pop_back();
}

double BenefitForecaster::PredBenefitFrom(const std::deque<double>& hist,
                                          int j) const {
  if (hist.empty()) return 0.0;
  const int window = std::min<int>(j, static_cast<int>(hist.size()));
  double sum = 0.0;
  for (int i = 0; i < window; ++i) sum += hist[i];
  // Epochs before the index entered the system's memory count as zero
  // benefit — the index genuinely provided none. This makes the forecast
  // ramp up over the first epochs after a shift (and is what makes COLT
  // resist short noise bursts, paper §6.2 / Fig. 6).
  return sum / j;
}

double BenefitForecaster::PredBenefit(IndexId index, int j) const {
  auto it = history_.find(index);
  if (it == history_.end()) return 0.0;
  return PredBenefitFrom(it->second, j);
}

double BenefitForecaster::TotalPredictedBenefit(IndexId index) const {
  auto it = history_.find(index);
  if (it == history_.end()) return 0.0;
  double total = 0.0;
  for (int j = 1; j <= history_depth_; ++j) {
    total += PredBenefitFrom(it->second, j);
  }
  return total;
}

double BenefitForecaster::TotalPredictedBenefitWithLatest(
    IndexId index, double optimistic_latest) const {
  std::deque<double> hist;
  auto it = history_.find(index);
  if (it != history_.end()) hist = it->second;
  if (hist.empty()) {
    hist.push_front(optimistic_latest);
  } else {
    hist.front() = optimistic_latest;
  }
  double total = 0.0;
  for (int j = 1; j <= history_depth_; ++j) {
    total += PredBenefitFrom(hist, j);
  }
  return total;
}

int BenefitForecaster::HistoryLength(IndexId index) const {
  auto it = history_.find(index);
  return it == history_.end() ? 0 : static_cast<int>(it->second.size());
}

void BenefitForecaster::Erase(IndexId index) { history_.erase(index); }

const std::deque<double>* BenefitForecaster::History(IndexId index) const {
  auto it = history_.find(index);
  return it == history_.end() ? nullptr : &it->second;
}

}  // namespace colt
