#include "core/forecasting.h"

#include <algorithm>
#include <vector>

namespace colt {

void BenefitForecaster::RecordEpoch(IndexId index, double benefit) {
  auto& hist = history_[index];
  hist.push_front(benefit);
  while (static_cast<int>(hist.size()) > history_depth_) hist.pop_back();
}

double BenefitForecaster::PredBenefitFrom(const std::deque<double>& hist,
                                          int j) const {
  if (hist.empty()) return 0.0;
  const int window = std::min<int>(j, static_cast<int>(hist.size()));
  double sum = 0.0;
  for (int i = 0; i < window; ++i) sum += hist[i];
  // Epochs before the index entered the system's memory count as zero
  // benefit — the index genuinely provided none. This makes the forecast
  // ramp up over the first epochs after a shift (and is what makes COLT
  // resist short noise bursts, paper §6.2 / Fig. 6).
  return sum / j;
}

double BenefitForecaster::PredBenefit(IndexId index, int j) const {
  auto it = history_.find(index);
  if (it == history_.end()) return 0.0;
  return PredBenefitFrom(it->second, j);
}

double BenefitForecaster::TotalPredictedBenefit(IndexId index) const {
  auto it = history_.find(index);
  if (it == history_.end()) return 0.0;
  double total = 0.0;
  for (int j = 1; j <= history_depth_; ++j) {
    total += PredBenefitFrom(it->second, j);
  }
  return total;
}

double BenefitForecaster::TotalPredictedBenefitWithLatest(
    IndexId index, double optimistic_latest) const {
  std::deque<double> hist;
  auto it = history_.find(index);
  if (it != history_.end()) hist = it->second;
  if (hist.empty()) {
    hist.push_front(optimistic_latest);
  } else {
    hist.front() = optimistic_latest;
  }
  double total = 0.0;
  for (int j = 1; j <= history_depth_; ++j) {
    total += PredBenefitFrom(hist, j);
  }
  return total;
}

int BenefitForecaster::HistoryLength(IndexId index) const {
  auto it = history_.find(index);
  return it == history_.end() ? 0 : static_cast<int>(it->second.size());
}

void BenefitForecaster::Erase(IndexId index) { history_.erase(index); }

const std::deque<double>* BenefitForecaster::History(IndexId index) const {
  auto it = history_.find(index);
  return it == history_.end() ? nullptr : &it->second;
}

namespace {
constexpr uint32_t kForecastSectionTag = 0x54534346;  // "FCST"
}  // namespace

void BenefitForecaster::SaveState(BinaryWriter* writer) const {
  writer->WriteU32(kForecastSectionTag);
  std::vector<IndexId> ids;
  ids.reserve(history_.size());
  for (const auto& [id, hist] : history_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  writer->WriteU64(ids.size());
  for (IndexId id : ids) {
    const std::deque<double>& hist = history_.at(id);
    writer->WriteI64(id);
    writer->WriteU64(hist.size());
    for (double benefit : hist) writer->WriteDouble(benefit);
  }
}

Status BenefitForecaster::LoadState(BinaryReader* reader) {
  COLT_RETURN_IF_ERROR(reader->ExpectTag(kForecastSectionTag));
  uint64_t index_count = 0;
  COLT_RETURN_IF_ERROR(reader->ReadU64(&index_count));
  std::unordered_map<IndexId, std::deque<double>> history;
  for (uint64_t i = 0; i < index_count; ++i) {
    int64_t id = 0;
    COLT_RETURN_IF_ERROR(reader->ReadI64(&id));
    uint64_t length = 0;
    COLT_RETURN_IF_ERROR(reader->ReadU64(&length));
    std::deque<double> hist;
    for (uint64_t j = 0; j < length; ++j) {
      double benefit = 0.0;
      COLT_RETURN_IF_ERROR(reader->ReadDouble(&benefit));
      hist.push_back(benefit);
    }
    history.emplace(static_cast<IndexId>(id), std::move(hist));
  }
  history_ = std::move(history);
  return Status::OK();
}

}  // namespace colt
