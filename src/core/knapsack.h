#ifndef COLT_CORE_KNAPSACK_H_
#define COLT_CORE_KNAPSACK_H_

#include <cstdint>
#include <vector>

namespace colt {

/// One candidate object for index selection (paper §5): an index with its
/// storage footprint and predicted NetBenefit.
struct KnapsackItem {
  int64_t id = 0;
  int64_t size = 0;   // bytes
  double value = 0.0;  // NetBenefit; items with value <= 0 are never chosen
};

/// Result of a knapsack solve.
struct KnapsackSolution {
  std::vector<int64_t> chosen_ids;
  double total_value = 0.0;
  int64_t total_size = 0;
};

/// 0/1 KNAPSACK by dynamic programming over discretized sizes. Sizes are
/// scaled so the DP table has at most `max_buckets` capacity cells; with
/// discretization the solution is optimal for the rounded-up sizes, hence
/// always feasible for the true capacity and near-optimal in value (exact
/// when all sizes are multiples of the bucket). Items with non-positive
/// value or size exceeding capacity are excluded; zero-size positive-value
/// items are always taken.
KnapsackSolution SolveKnapsack(const std::vector<KnapsackItem>& items,
                               int64_t capacity, int max_buckets = 4096);

/// Greedy density heuristic (value/size order) used by ablation benches.
KnapsackSolution SolveKnapsackGreedy(const std::vector<KnapsackItem>& items,
                                     int64_t capacity);

}  // namespace colt

#endif  // COLT_CORE_KNAPSACK_H_
