#ifndef COLT_CORE_FORECASTING_H_
#define COLT_CORE_FORECASTING_H_

#include <deque>
#include <unordered_map>

#include "catalog/types.h"
#include "common/persist/serializer.h"

namespace colt {

/// Per-index history of observed epoch benefits and the paper's forecast
/// (§5): the system remembers the last h epochs and predicts the benefit of
/// the next h epochs.
///
/// PredBenefit_j(I) — the forecast for the j-th future epoch — is "computed
/// taking all of the past j epochs into account": we use the mean of the
/// last j observed epoch benefits. Near-term forecasts therefore weight the
/// most recent behaviour heavily while far-out forecasts average over the
/// whole memory window, which is exactly what produces the paper's
/// worst-case noise-burst length (a burst the size of the window dominates
/// every horizon).
class BenefitForecaster {
 public:
  explicit BenefitForecaster(int history_depth)
      : history_depth_(history_depth) {}

  /// Appends the just-finished epoch's observed benefit for `index`.
  void RecordEpoch(IndexId index, double benefit);

  /// Forecast for the j-th future epoch (1-based). Zero history => 0.
  double PredBenefit(IndexId index, int j) const;

  /// Sum of PredBenefit over the next h epochs — the gross predicted
  /// benefit used by NetBenefit (MatCost is subtracted by the caller).
  double TotalPredictedBenefit(IndexId index) const;

  /// Same as TotalPredictedBenefit but with the latest epoch's observation
  /// replaced by `optimistic_latest` — used by re-budgeting's best-case
  /// scenario for hot indexes (§5).
  double TotalPredictedBenefitWithLatest(IndexId index,
                                         double optimistic_latest) const;

  /// Number of recorded epochs for `index` (capped at h).
  int HistoryLength(IndexId index) const;

  /// Drops the history of `index`.
  void Erase(IndexId index);

  /// True benefit history access for diagnostics (front = most recent).
  const std::deque<double>* History(IndexId index) const;

  /// Crash-safe persistence of every per-index benefit history.
  void SaveState(BinaryWriter* writer) const;
  Status LoadState(BinaryReader* reader);

 private:
  double PredBenefitFrom(const std::deque<double>& hist, int j) const;

  int history_depth_;
  std::unordered_map<IndexId, std::deque<double>> history_;
};

}  // namespace colt

#endif  // COLT_CORE_FORECASTING_H_
