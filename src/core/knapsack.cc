#include "core/knapsack.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace colt {

KnapsackSolution SolveKnapsack(const std::vector<KnapsackItem>& items,
                               int64_t capacity, int max_buckets) {
  KnapsackSolution solution;
  if (capacity < 0) capacity = 0;

  // Partition: always-take (zero size, positive value), DP-eligible.
  std::vector<KnapsackItem> eligible;
  for (const auto& item : items) {
    if (item.value <= 0.0) continue;
    if (item.size <= 0) {
      solution.chosen_ids.push_back(item.id);
      solution.total_value += item.value;
      continue;
    }
    if (item.size <= capacity) eligible.push_back(item);
  }
  if (eligible.empty() || capacity == 0) return solution;

  // Discretize sizes, rounding *up* so the solution never overflows the
  // true capacity.
  const int64_t bucket =
      std::max<int64_t>(1, (capacity + max_buckets - 1) / max_buckets);
  const int64_t cap_units = capacity / bucket;
  auto units = [bucket](int64_t size) { return (size + bucket - 1) / bucket; };

  const size_t n = eligible.size();
  // dp[c] = best value using a prefix of items with total unit-size <= c.
  std::vector<double> dp(cap_units + 1, 0.0);
  // keep[i] = bitset over capacities where item i is taken.
  std::vector<std::vector<bool>> keep(n,
                                      std::vector<bool>(cap_units + 1, false));
  for (size_t i = 0; i < n; ++i) {
    const int64_t s = units(eligible[i].size);
    const double v = eligible[i].value;
    for (int64_t c = cap_units; c >= s; --c) {
      const double candidate = dp[c - s] + v;
      if (candidate > dp[c]) {
        dp[c] = candidate;
        keep[i][c] = true;
      }
    }
  }
  // Trace back.
  int64_t c = cap_units;
  for (size_t i = n; i-- > 0;) {
    if (c >= 0 && keep[i][c]) {
      solution.chosen_ids.push_back(eligible[i].id);
      solution.total_value += eligible[i].value;
      solution.total_size += eligible[i].size;
      c -= units(eligible[i].size);
    }
  }
  std::sort(solution.chosen_ids.begin(), solution.chosen_ids.end());
  COLT_CHECK(solution.total_size <= capacity)
      << "knapsack overflow: " << solution.total_size << " > " << capacity;
  return solution;
}

KnapsackSolution SolveKnapsackGreedy(const std::vector<KnapsackItem>& items,
                                     int64_t capacity) {
  KnapsackSolution solution;
  std::vector<KnapsackItem> sorted;
  for (const auto& item : items) {
    if (item.value > 0.0) sorted.push_back(item);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const KnapsackItem& a, const KnapsackItem& b) {
              const double da =
                  a.size > 0 ? a.value / static_cast<double>(a.size)
                             : std::numeric_limits<double>::infinity();
              const double db =
                  b.size > 0 ? b.value / static_cast<double>(b.size)
                             : std::numeric_limits<double>::infinity();
              if (da != db) return da > db;
              return a.id < b.id;
            });
  int64_t used = 0;
  for (const auto& item : sorted) {
    if (used + item.size > capacity) continue;
    used += item.size;
    solution.chosen_ids.push_back(item.id);
    solution.total_value += item.value;
    solution.total_size += item.size;
  }
  std::sort(solution.chosen_ids.begin(), solution.chosen_ids.end());
  return solution;
}

}  // namespace colt
