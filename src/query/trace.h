#ifndef COLT_QUERY_TRACE_H_
#define COLT_QUERY_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "query/query.h"

namespace colt {

/// Workload traces are plain text: one SQL statement per line (the dialect
/// of QueryParser), '#' comment lines, and blank lines. This makes every
/// generated experiment workload reproducible, diffable, and replayable
/// through the colt_shell example.

/// Writes `workload` to `out`, one statement per line, preceded by a
/// comment header carrying `description`.
Status SaveWorkloadTrace(const Catalog& catalog,
                         const std::vector<Query>& workload,
                         const std::string& description, std::ostream& out);

/// Parses a trace produced by SaveWorkloadTrace (or hand-written SQL).
/// Fails with the offending line number on the first malformed statement.
Result<std::vector<Query>> LoadWorkloadTrace(const Catalog& catalog,
                                             std::istream& in);

/// File-path convenience wrappers.
Status SaveWorkloadTraceFile(const Catalog& catalog,
                             const std::vector<Query>& workload,
                             const std::string& description,
                             const std::string& path);
Result<std::vector<Query>> LoadWorkloadTraceFile(const Catalog& catalog,
                                                 const std::string& path);

}  // namespace colt

#endif  // COLT_QUERY_TRACE_H_
