#ifndef COLT_QUERY_PREDICATE_H_
#define COLT_QUERY_PREDICATE_H_

#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "catalog/types.h"

namespace colt {

/// A range (or equality) selection predicate: lo <= column <= hi.
/// Equality is the degenerate case lo == hi. Open ends use INT64_MIN/MAX.
struct SelectionPredicate {
  ColumnRef column;
  int64_t lo = INT64_MIN;
  int64_t hi = INT64_MAX;

  bool is_equality() const { return lo == hi; }
  bool Matches(int64_t value) const { return value >= lo && value <= hi; }

  friend bool operator==(const SelectionPredicate&,
                         const SelectionPredicate&) = default;
};

/// An equi-join predicate between two columns of different tables.
struct JoinPredicate {
  ColumnRef left;
  ColumnRef right;

  /// Canonical form: smaller ColumnRef first (joins are symmetric).
  JoinPredicate Canonical() const {
    if (right < left) return {right, left};
    return *this;
  }

  friend bool operator==(const JoinPredicate&, const JoinPredicate&) = default;
};

/// Estimated selectivity of `pred` against the catalog statistics.
inline double EstimateSelectivity(const Catalog& catalog,
                                  const SelectionPredicate& pred) {
  const ColumnStats& stats =
      catalog.table(pred.column.table).column_stats(pred.column.column);
  if (pred.is_equality()) return stats.EqualitySelectivity(pred.lo);
  return stats.RangeSelectivity(pred.lo, pred.hi);
}

/// Human-readable form, e.g. "lineitem_0.l_shipdate in [10, 90]".
std::string PredicateToString(const Catalog& catalog,
                              const SelectionPredicate& pred);

}  // namespace colt

#endif  // COLT_QUERY_PREDICATE_H_
