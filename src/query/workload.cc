#include "query/workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace colt {

std::vector<ColumnRef> QueryDistribution::RelevantColumns() const {
  std::vector<ColumnRef> cols;
  for (const auto& t : templates) {
    for (const auto& s : t.selections) cols.push_back(s.column);
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

Query WorkloadGenerator::Instantiate(const QueryTemplate& tmpl) {
  std::vector<SelectionPredicate> selections;
  selections.reserve(tmpl.selections.size());
  for (const auto& spec : tmpl.selections) {
    const ColumnStats& stats =
        catalog_->table(spec.column.table).column_stats(spec.column.column);
    SelectionPredicate pred;
    pred.column = spec.column;
    const int64_t domain_min = stats.min_value();
    const int64_t domain_max = stats.max_value();
    const double span =
        static_cast<double>(domain_max - domain_min) + 1.0;
    if (spec.equality) {
      const int64_t v =
          domain_min + rng_.NextInRange(0, domain_max - domain_min);
      pred.lo = pred.hi = v;
    } else {
      const double target = rng_.NextDoubleInRange(
          std::min(spec.min_selectivity, spec.max_selectivity),
          std::max(spec.min_selectivity, spec.max_selectivity));
      int64_t width = static_cast<int64_t>(std::llround(target * span));
      width = std::clamp<int64_t>(width, 1, domain_max - domain_min + 1);
      // Hot-spot templates confine the range to the lowest hot_fraction of
      // the domain (write skew; DESIGN.md §16), uniform placement otherwise.
      int64_t place_span = domain_max - domain_min + 1;
      if (tmpl.hot_fraction > 0.0) {
        place_span = std::max<int64_t>(
            width, static_cast<int64_t>(std::llround(tmpl.hot_fraction *
                                                     span)));
      }
      const int64_t lo = domain_min + rng_.NextInRange(0, place_span - width);
      pred.lo = lo;
      pred.hi = lo + width - 1;
    }
    selections.push_back(pred);
  }
  Query q;
  switch (tmpl.kind) {
    case StatementKind::kSelect:
      q = Query(tmpl.tables, tmpl.joins, std::move(selections));
      break;
    case StatementKind::kInsert: {
      const int64_t rows =
          tmpl.min_insert_rows +
          rng_.NextInRange(0, tmpl.max_insert_rows - tmpl.min_insert_rows);
      q = Query::MakeInsert(tmpl.tables.front(), rows);
      break;
    }
    case StatementKind::kUpdate: {
      std::vector<SetClause> sets;
      sets.reserve(tmpl.set_columns.size());
      for (const ColumnRef& col : tmpl.set_columns) {
        const ColumnStats& stats =
            catalog_->table(col.table).column_stats(col.column);
        SetClause clause;
        clause.column = col.column;
        clause.value =
            stats.min_value() +
            rng_.NextInRange(0, stats.max_value() - stats.min_value());
        sets.push_back(clause);
      }
      q = Query::MakeUpdate(tmpl.tables.front(), std::move(sets),
                            std::move(selections));
      break;
    }
    case StatementKind::kDelete:
      q = Query::MakeDelete(tmpl.tables.front(), std::move(selections));
      break;
  }
  q.set_id(next_query_id_++);
  return q;
}

Query WorkloadGenerator::Sample(const QueryDistribution& dist) {
  COLT_CHECK(!dist.templates.empty()) << "empty distribution";
  COLT_CHECK(dist.weights.size() == dist.templates.size())
      << "weights/templates size mismatch in " << dist.name;
  const size_t pick = rng_.NextWeighted(dist.weights);
  return Instantiate(dist.templates[pick]);
}

Query WorkloadGenerator::SampleMixed(const QueryDistribution& from,
                                     const QueryDistribution& to, double mix) {
  return rng_.NextBool(mix) ? Sample(to) : Sample(from);
}

std::vector<Query> GeneratePhasedWorkload(
    WorkloadGenerator& gen, const std::vector<WorkloadPhase>& phases,
    int transition_length, std::vector<int>* phase_of_query) {
  std::vector<Query> out;
  if (phase_of_query != nullptr) phase_of_query->clear();
  for (size_t p = 0; p < phases.size(); ++p) {
    for (int i = 0; i < phases[p].length; ++i) {
      out.push_back(gen.Sample(phases[p].distribution));
      if (phase_of_query != nullptr) {
        phase_of_query->push_back(static_cast<int>(p));
      }
    }
    if (p + 1 < phases.size()) {
      for (int i = 0; i < transition_length; ++i) {
        const double mix =
            (static_cast<double>(i) + 1.0) / (transition_length + 1.0);
        out.push_back(gen.SampleMixed(phases[p].distribution,
                                      phases[p + 1].distribution, mix));
        if (phase_of_query != nullptr) {
          phase_of_query->push_back(
              static_cast<int>(mix >= 0.5 ? p + 1 : p));
        }
      }
    }
  }
  return out;
}

std::vector<Query> GenerateMultiClientWorkload(
    WorkloadGenerator& gen, const std::vector<ClientSpec>& clients,
    int total_queries, std::vector<int>* client_of_query) {
  COLT_CHECK(!clients.empty());
  // Pre-generate each client's own sequence, long enough that even a
  // client receiving every slot would not exhaust it.
  std::vector<std::vector<Query>> streams;
  std::vector<size_t> cursor(clients.size(), 0);
  std::vector<double> rates;
  for (const auto& client : clients) {
    // Repeat the client's schedule until it covers total_queries.
    std::vector<Query> stream;
    while (static_cast<int>(stream.size()) < total_queries) {
      const std::vector<Query> pass = GeneratePhasedWorkload(
          gen, client.phases, client.transition_length);
      COLT_CHECK(!pass.empty()) << "client with empty schedule";
      stream.insert(stream.end(), pass.begin(), pass.end());
    }
    streams.push_back(std::move(stream));
    rates.push_back(client.rate);
  }
  std::vector<Query> out;
  out.reserve(total_queries);
  if (client_of_query != nullptr) client_of_query->clear();
  for (int i = 0; i < total_queries; ++i) {
    const size_t c = gen.rng().NextWeighted(rates);
    out.push_back(streams[c][cursor[c]++]);
    if (client_of_query != nullptr) {
      client_of_query->push_back(static_cast<int>(c));
    }
  }
  return out;
}

std::vector<Query> GenerateNoisyWorkload(WorkloadGenerator& gen,
                                         const QueryDistribution& base,
                                         const QueryDistribution& noise,
                                         int total_queries, int warmup,
                                         int burst_length,
                                         double noise_fraction, int min_bursts,
                                         std::vector<bool>* is_noise) {
  COLT_CHECK(burst_length > 0);
  COLT_CHECK(noise_fraction > 0.0 && noise_fraction < 1.0);
  // Number of bursts needed so that noise makes up ~noise_fraction of the
  // total workload.
  int bursts = std::max(
      min_bursts,
      static_cast<int>(std::llround(noise_fraction * total_queries /
                                    burst_length)));
  int noise_total = bursts * burst_length;
  int base_total = total_queries - noise_total;
  if (base_total < warmup + bursts) {
    // Workload too small for the requested configuration; grow it.
    base_total = warmup + bursts;
    total_queries = base_total + noise_total;
  }
  // Base queries between bursts (after warmup), distributed evenly.
  const int segments = bursts;  // one base gap before each burst (post warmup)
  const int gap = std::max(1, (base_total - warmup) / segments);

  std::vector<Query> out;
  if (is_noise != nullptr) is_noise->clear();
  auto emit = [&](const QueryDistribution& dist, int n, bool noisy) {
    for (int i = 0; i < n; ++i) {
      out.push_back(gen.Sample(dist));
      if (is_noise != nullptr) is_noise->push_back(noisy);
    }
  };
  emit(base, warmup, false);
  int base_left = base_total - warmup;
  for (int b = 0; b < bursts; ++b) {
    emit(noise, burst_length, true);
    const int run = (b + 1 == bursts) ? base_left : std::min(gap, base_left);
    emit(base, run, false);
    base_left -= run;
  }
  return out;
}

}  // namespace colt
