#include "query/parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <vector>

namespace colt {

namespace {

/// Token kinds produced by the lexer.
enum class TokenKind {
  kIdent,    // bare identifier
  kInt,      // integer literal (possibly negative)
  kSymbol,   // one of ( ) , . ; * = < > and the two-char <= >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t position = 0;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < sql.size() && IsIdentChar(sql[j])) ++j;
      token.kind = TokenKind::kIdent;
      token.text = sql.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < sql.size() &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      while (j < sql.size() &&
             std::isdigit(static_cast<unsigned char>(sql[j]))) {
        ++j;
      }
      token.kind = TokenKind::kInt;
      token.text = sql.substr(i, j - i);
      i = j;
    } else if ((c == '<' || c == '>') && i + 1 < sql.size() &&
               sql[i + 1] == '=') {
      token.kind = TokenKind::kSymbol;
      token.text = sql.substr(i, 2);
      i += 2;
    } else if (std::string("(),.;*=<>").find(c) != std::string::npos) {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      ++i;
    } else {
      return Status::InvalidArgument("unexpected character '" +
                                     std::string(1, c) + "' at position " +
                                     std::to_string(i));
    }
    tokens.push_back(std::move(token));
  }
  tokens.push_back(Token{TokenKind::kEnd, "", sql.size()});
  return tokens;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Recursive-descent parser over the token stream.
class ParserImpl {
 public:
  ParserImpl(const Catalog* catalog, std::vector<Token> tokens)
      : catalog_(catalog), tokens_(std::move(tokens)) {}

  Result<Query> ParseStatement() {
    Result<Query> parsed = [&]() -> Result<Query> {
      if (PeekKeyword("insert")) return ParseInsert();
      if (PeekKeyword("update")) return ParseUpdate();
      if (PeekKeyword("delete")) return ParseDelete();
      return ParseSelect();
    }();
    COLT_RETURN_IF_ERROR(parsed.status());
    if (PeekSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return UnexpectedToken("end of statement");
    }
    COLT_RETURN_IF_ERROR(parsed->Validate(*catalog_));
    return parsed;
  }

 private:
  Result<Query> ParseSelect() {
    COLT_RETURN_IF_ERROR(ExpectKeyword("select"));
    COLT_RETURN_IF_ERROR(ExpectKeyword("count"));
    COLT_RETURN_IF_ERROR(ExpectSymbol("("));
    COLT_RETURN_IF_ERROR(ExpectSymbol("*"));
    COLT_RETURN_IF_ERROR(ExpectSymbol(")"));
    COLT_RETURN_IF_ERROR(ExpectKeyword("from"));

    std::vector<TableId> tables;
    COLT_RETURN_IF_ERROR(ParseTableList(&tables));

    std::vector<JoinPredicate> joins;
    std::vector<SelectionPredicate> selections;
    COLT_RETURN_IF_ERROR(ParseWhere(tables, &joins, &selections));
    return Query(std::move(tables), std::move(joins), std::move(selections));
  }

  /// `INSERT INTO <table> ROWS <int>` — batch-append synthesized tuples.
  Result<Query> ParseInsert() {
    COLT_RETURN_IF_ERROR(ExpectKeyword("insert"));
    COLT_RETURN_IF_ERROR(ExpectKeyword("into"));
    COLT_ASSIGN_OR_RETURN(const TableId table, ExpectTable());
    COLT_RETURN_IF_ERROR(ExpectKeyword("rows"));
    COLT_ASSIGN_OR_RETURN(const int64_t rows, ExpectInt());
    return Query::MakeInsert(table, rows);
  }

  /// `UPDATE <table> SET col = int [, col = int]* [WHERE ...]`.
  Result<Query> ParseUpdate() {
    COLT_RETURN_IF_ERROR(ExpectKeyword("update"));
    COLT_ASSIGN_OR_RETURN(const TableId table, ExpectTable());
    COLT_RETURN_IF_ERROR(ExpectKeyword("set"));
    std::vector<SetClause> sets;
    for (;;) {
      COLT_ASSIGN_OR_RETURN(const std::string column_name, ExpectIdent());
      const ColumnId column = catalog_->table(table).FindColumn(column_name);
      if (column == kInvalidColumnId) {
        return Status::NotFound("unknown column '" + column_name + "'");
      }
      COLT_RETURN_IF_ERROR(ExpectSymbol("="));
      COLT_ASSIGN_OR_RETURN(const int64_t value, ExpectInt());
      sets.push_back(SetClause{column, value});
      if (!PeekSymbol(",")) break;
      Advance();
    }
    std::vector<TableId> tables{table};
    std::vector<JoinPredicate> joins;
    std::vector<SelectionPredicate> selections;
    COLT_RETURN_IF_ERROR(ParseWhere(tables, &joins, &selections));
    if (!joins.empty()) {
      return Status::InvalidArgument("UPDATE cannot join");
    }
    return Query::MakeUpdate(table, std::move(sets), std::move(selections));
  }

  /// `DELETE FROM <table> [WHERE ...]`.
  Result<Query> ParseDelete() {
    COLT_RETURN_IF_ERROR(ExpectKeyword("delete"));
    COLT_RETURN_IF_ERROR(ExpectKeyword("from"));
    COLT_ASSIGN_OR_RETURN(const TableId table, ExpectTable());
    std::vector<TableId> tables{table};
    std::vector<JoinPredicate> joins;
    std::vector<SelectionPredicate> selections;
    COLT_RETURN_IF_ERROR(ParseWhere(tables, &joins, &selections));
    if (!joins.empty()) {
      return Status::InvalidArgument("DELETE cannot join");
    }
    return Query::MakeDelete(table, std::move(selections));
  }

  Status ParseWhere(const std::vector<TableId>& tables,
                    std::vector<JoinPredicate>* joins,
                    std::vector<SelectionPredicate>* selections) {
    if (!PeekKeyword("where")) return Status::OK();
    Advance();
    COLT_RETURN_IF_ERROR(ParseCondition(tables, joins, selections));
    while (PeekKeyword("and")) {
      Advance();
      COLT_RETURN_IF_ERROR(ParseCondition(tables, joins, selections));
    }
    return Status::OK();
  }

  Result<TableId> ExpectTable() {
    COLT_ASSIGN_OR_RETURN(const std::string name, ExpectIdent());
    const TableId id = catalog_->FindTable(name);
    if (id == kInvalidTableId) {
      return Status::NotFound("unknown table '" + name + "'");
    }
    return id;
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().kind == TokenKind::kIdent && Lower(Peek().text) == kw;
  }
  bool PeekSymbol(const std::string& sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }

  Status UnexpectedToken(const std::string& expected) const {
    const std::string got =
        Peek().kind == TokenKind::kEnd ? "end of input" : "'" + Peek().text + "'";
    return Status::InvalidArgument("expected " + expected + " but found " +
                                   got + " at position " +
                                   std::to_string(Peek().position));
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return UnexpectedToken("'" + kw + "'");
    Advance();
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& sym) {
    if (!PeekSymbol(sym)) return UnexpectedToken("'" + sym + "'");
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return UnexpectedToken("identifier");
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  Result<int64_t> ExpectInt() {
    if (Peek().kind != TokenKind::kInt) return UnexpectedToken("integer");
    const int64_t value = std::strtoll(Peek().text.c_str(), nullptr, 10);
    Advance();
    return value;
  }

  Status ParseTableList(std::vector<TableId>* tables) {
    for (;;) {
      COLT_ASSIGN_OR_RETURN(const std::string name, ExpectIdent());
      const TableId id = catalog_->FindTable(name);
      if (id == kInvalidTableId) {
        return Status::NotFound("unknown table '" + name + "'");
      }
      tables->push_back(id);
      if (!PeekSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  /// Parses `table.column`, checking both against the catalog and the
  /// query's FROM list.
  Result<ColumnRef> ParseColumnRef(const std::vector<TableId>& tables) {
    COLT_ASSIGN_OR_RETURN(const std::string table_name, ExpectIdent());
    const TableId table = catalog_->FindTable(table_name);
    if (table == kInvalidTableId) {
      return Status::NotFound("unknown table '" + table_name + "'");
    }
    if (std::find(tables.begin(), tables.end(), table) == tables.end()) {
      return Status::InvalidArgument("table '" + table_name +
                                     "' is not in the FROM list");
    }
    COLT_RETURN_IF_ERROR(ExpectSymbol("."));
    COLT_ASSIGN_OR_RETURN(const std::string column_name, ExpectIdent());
    const ColumnId column = catalog_->table(table).FindColumn(column_name);
    if (column == kInvalidColumnId) {
      return Status::NotFound("unknown column '" + table_name + "." +
                              column_name + "'");
    }
    return ColumnRef{table, column};
  }

  Status ParseCondition(const std::vector<TableId>& tables,
                        std::vector<JoinPredicate>* joins,
                        std::vector<SelectionPredicate>* selections) {
    COLT_ASSIGN_OR_RETURN(const ColumnRef lhs, ParseColumnRef(tables));
    if (PeekKeyword("between")) {
      Advance();
      COLT_ASSIGN_OR_RETURN(const int64_t lo, ExpectInt());
      COLT_RETURN_IF_ERROR(ExpectKeyword("and"));
      COLT_ASSIGN_OR_RETURN(const int64_t hi, ExpectInt());
      if (lo > hi) {
        return Status::InvalidArgument("empty BETWEEN range");
      }
      selections->push_back(SelectionPredicate{lhs, lo, hi});
      return Status::OK();
    }
    if (Peek().kind != TokenKind::kSymbol) {
      return UnexpectedToken("comparison operator");
    }
    const std::string op = Peek().text;
    if (op != "=" && op != "<" && op != "<=" && op != ">" && op != ">=") {
      return UnexpectedToken("comparison operator");
    }
    Advance();
    if (op == "=" && Peek().kind == TokenKind::kIdent) {
      // Equi-join: table.col = table.col.
      COLT_ASSIGN_OR_RETURN(const ColumnRef rhs, ParseColumnRef(tables));
      joins->push_back(JoinPredicate{lhs, rhs});
      return Status::OK();
    }
    COLT_ASSIGN_OR_RETURN(const int64_t value, ExpectInt());
    SelectionPredicate pred;
    pred.column = lhs;
    if (op == "=") {
      pred.lo = pred.hi = value;
    } else if (op == "<") {
      pred.lo = INT64_MIN;
      pred.hi = value - 1;
    } else if (op == "<=") {
      pred.lo = INT64_MIN;
      pred.hi = value;
    } else if (op == ">") {
      pred.lo = value + 1;
      pred.hi = INT64_MAX;
    } else {  // >=
      pred.lo = value;
      pred.hi = INT64_MAX;
    }
    selections->push_back(pred);
    return Status::OK();
  }

  const Catalog* catalog_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> QueryParser::Parse(const std::string& sql) const {
  COLT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  ParserImpl parser(catalog_, std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace colt
