#include "query/trace.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "query/parser.h"

namespace colt {

Status SaveWorkloadTrace(const Catalog& catalog,
                         const std::vector<Query>& workload,
                         const std::string& description, std::ostream& out) {
  out << "# colt workload trace\n";
  if (!description.empty()) out << "# " << description << "\n";
  out << "# " << workload.size() << " queries\n";
  for (const Query& q : workload) {
    COLT_RETURN_IF_ERROR(q.Validate(catalog));
    out << q.ToString(catalog) << ";\n";
  }
  if (!out.good()) return Status::Internal("trace write failed");
  return Status::OK();
}

Result<std::vector<Query>> LoadWorkloadTrace(const Catalog& catalog,
                                             std::istream& in) {
  QueryParser parser(&catalog);
  std::vector<Query> workload;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    Result<Query> q = parser.Parse(line);
    if (!q.ok()) {
      return Status::InvalidArgument(
          "trace line " + std::to_string(line_number) + ": " +
          q.status().message());
    }
    q->set_id(static_cast<int64_t>(workload.size()));
    workload.push_back(std::move(q).value());
  }
  return workload;
}

Status SaveWorkloadTraceFile(const Catalog& catalog,
                             const std::vector<Query>& workload,
                             const std::string& description,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  return SaveWorkloadTrace(catalog, workload, description, out);
}

Result<std::vector<Query>> LoadWorkloadTraceFile(const Catalog& catalog,
                                                 const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return LoadWorkloadTrace(catalog, in);
}

}  // namespace colt
