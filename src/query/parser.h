#ifndef COLT_QUERY_PARSER_H_
#define COLT_QUERY_PARSER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "query/query.h"

namespace colt {

/// Parses the SQL dialect the engine supports into a Query:
///
///   SELECT COUNT(*) FROM t1 [, t2 ...]
///   [WHERE <condition> [AND <condition>]*] [;]
///
/// where each <condition> is one of
///
///   t.col =  <int>              -- equality selection
///   t.col <  <int> | <= <int>   -- range selection
///   t.col >  <int> | >= <int>
///   t.col BETWEEN <int> AND <int>
///   t1.a = t2.b                 -- equi-join
///
/// plus the write statements (DESIGN.md §16):
///
///   INSERT INTO t ROWS <int>                 -- batch-append synthesized rows
///   UPDATE t SET col = <int> [, col = <int>]* [WHERE ...]
///   DELETE FROM t [WHERE ...]
///
/// UPDATE/DELETE WHERE clauses take the same selection conditions as
/// SELECT (no joins). Keywords are case-insensitive; identifiers are
/// case-sensitive and must exist in the catalog. Errors carry the
/// offending token.
class QueryParser {
 public:
  explicit QueryParser(const Catalog* catalog) : catalog_(catalog) {}

  /// Parses one statement. The resulting query is validated against the
  /// catalog before being returned.
  Result<Query> Parse(const std::string& sql) const;

 private:
  const Catalog* catalog_;
};

}  // namespace colt

#endif  // COLT_QUERY_PARSER_H_
