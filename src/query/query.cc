#include "query/query.h"

#include <algorithm>
#include <sstream>

namespace colt {

Query::Query(std::vector<TableId> tables, std::vector<JoinPredicate> joins,
             std::vector<SelectionPredicate> selections)
    : tables_(std::move(tables)),
      joins_(std::move(joins)),
      selections_(std::move(selections)) {
  std::sort(tables_.begin(), tables_.end());
  tables_.erase(std::unique(tables_.begin(), tables_.end()), tables_.end());
  for (auto& j : joins_) j = j.Canonical();
  std::sort(joins_.begin(), joins_.end(),
            [](const JoinPredicate& a, const JoinPredicate& b) {
              return std::tie(a.left, a.right) < std::tie(b.left, b.right);
            });
  std::sort(selections_.begin(), selections_.end(),
            [](const SelectionPredicate& a, const SelectionPredicate& b) {
              return std::tie(a.column, a.lo, a.hi) <
                     std::tie(b.column, b.lo, b.hi);
            });
}

std::vector<SelectionPredicate> Query::SelectionsOn(TableId table) const {
  std::vector<SelectionPredicate> out;
  for (const auto& s : selections_) {
    if (s.column.table == table) out.push_back(s);
  }
  return out;
}

bool Query::UsesTable(TableId table) const {
  return std::binary_search(tables_.begin(), tables_.end(), table);
}

Status Query::Validate(const Catalog& catalog) const {
  if (tables_.empty()) return Status::InvalidArgument("query has no tables");
  for (TableId t : tables_) {
    if (t < 0 || t >= catalog.table_count()) {
      return Status::InvalidArgument("unknown table id");
    }
  }
  auto check_column = [&](const ColumnRef& c) {
    if (!UsesTable(c.table)) {
      return Status::InvalidArgument("column on table not in query");
    }
    if (c.column < 0 || c.column >= catalog.table(c.table).column_count()) {
      return Status::InvalidArgument("unknown column");
    }
    return Status::OK();
  };
  for (const auto& j : joins_) {
    COLT_RETURN_IF_ERROR(check_column(j.left));
    COLT_RETURN_IF_ERROR(check_column(j.right));
    if (j.left.table == j.right.table) {
      return Status::InvalidArgument("self-join predicates unsupported");
    }
  }
  for (const auto& s : selections_) {
    COLT_RETURN_IF_ERROR(check_column(s.column));
    if (s.lo > s.hi) return Status::InvalidArgument("empty predicate range");
  }
  return Status::OK();
}

std::string Query::ToString(const Catalog& catalog) const {
  std::ostringstream os;
  os << "SELECT count(*) FROM ";
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (i > 0) os << ", ";
    os << catalog.table(tables_[i]).name();
  }
  bool first = true;
  auto emit_where = [&] {
    os << (first ? " WHERE " : " AND ");
    first = false;
  };
  for (const auto& j : joins_) {
    emit_where();
    os << catalog.table(j.left.table).name() << "."
       << catalog.table(j.left.table).column(j.left.column).name << " = "
       << catalog.table(j.right.table).name() << "."
       << catalog.table(j.right.table).column(j.right.column).name;
  }
  for (const auto& s : selections_) {
    emit_where();
    os << PredicateToString(catalog, s);
  }
  return os.str();
}

std::string PredicateToString(const Catalog& catalog,
                              const SelectionPredicate& pred) {
  std::ostringstream os;
  const auto& table = catalog.table(pred.column.table);
  os << table.name() << "." << table.column(pred.column.column).name;
  if (pred.is_equality()) {
    os << " = " << pred.lo;
  } else if (pred.lo == INT64_MIN) {
    os << " <= " << pred.hi;
  } else if (pred.hi == INT64_MAX) {
    os << " >= " << pred.lo;
  } else {
    os << " BETWEEN " << pred.lo << " AND " << pred.hi;
  }
  return os.str();
}

size_t QuerySignatureHash::operator()(const QuerySignature& sig) const {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (TableId t : sig.tables) mix(static_cast<uint64_t>(t) + 1);
  mix(0xabcd);
  for (const auto& [l, r] : sig.joins) {
    mix((static_cast<uint64_t>(l.table) << 32) ^
        static_cast<uint32_t>(l.column));
    mix((static_cast<uint64_t>(r.table) << 32) ^
        static_cast<uint32_t>(r.column));
  }
  mix(0xef01);
  for (const auto& [c, bucket] : sig.selections) {
    mix((static_cast<uint64_t>(c.table) << 32) ^
        static_cast<uint32_t>(c.column));
    mix(static_cast<uint64_t>(bucket) + 17);
  }
  return static_cast<size_t>(h);
}

QuerySignature ComputeSignature(const Catalog& catalog, const Query& q) {
  QuerySignature sig;
  sig.tables = q.tables();
  for (const auto& j : q.joins()) {
    const JoinPredicate c = j.Canonical();
    sig.joins.emplace_back(c.left, c.right);
  }
  std::sort(sig.joins.begin(), sig.joins.end());
  for (const auto& s : q.selections()) {
    sig.selections.emplace_back(
        s.column, SelectivityBucket(EstimateSelectivity(catalog, s)));
  }
  std::sort(sig.selections.begin(), sig.selections.end());
  return sig;
}

}  // namespace colt
