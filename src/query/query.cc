#include "query/query.h"

#include <algorithm>
#include <sstream>

namespace colt {

Query::Query(std::vector<TableId> tables, std::vector<JoinPredicate> joins,
             std::vector<SelectionPredicate> selections)
    : tables_(std::move(tables)),
      joins_(std::move(joins)),
      selections_(std::move(selections)) {
  std::sort(tables_.begin(), tables_.end());
  tables_.erase(std::unique(tables_.begin(), tables_.end()), tables_.end());
  for (auto& j : joins_) j = j.Canonical();
  std::sort(joins_.begin(), joins_.end(),
            [](const JoinPredicate& a, const JoinPredicate& b) {
              return std::tie(a.left, a.right) < std::tie(b.left, b.right);
            });
  std::sort(selections_.begin(), selections_.end(),
            [](const SelectionPredicate& a, const SelectionPredicate& b) {
              return std::tie(a.column, a.lo, a.hi) <
                     std::tie(b.column, b.lo, b.hi);
            });
}

Query Query::MakeInsert(TableId table, int64_t rows) {
  Query q({table}, {}, {});
  q.kind_ = StatementKind::kInsert;
  q.insert_rows_ = rows;
  return q;
}

Query Query::MakeUpdate(TableId table, std::vector<SetClause> sets,
                        std::vector<SelectionPredicate> selections) {
  Query q({table}, {}, std::move(selections));
  q.kind_ = StatementKind::kUpdate;
  q.set_clauses_ = std::move(sets);
  std::sort(q.set_clauses_.begin(), q.set_clauses_.end(),
            [](const SetClause& a, const SetClause& b) {
              return std::tie(a.column, a.value) < std::tie(b.column, b.value);
            });
  return q;
}

Query Query::MakeDelete(TableId table,
                        std::vector<SelectionPredicate> selections) {
  Query q({table}, {}, std::move(selections));
  q.kind_ = StatementKind::kDelete;
  return q;
}

std::vector<SelectionPredicate> Query::SelectionsOn(TableId table) const {
  std::vector<SelectionPredicate> out;
  for (const auto& s : selections_) {
    if (s.column.table == table) out.push_back(s);
  }
  return out;
}

bool Query::UsesTable(TableId table) const {
  return std::binary_search(tables_.begin(), tables_.end(), table);
}

Status Query::Validate(const Catalog& catalog) const {
  if (tables_.empty()) return Status::InvalidArgument("query has no tables");
  for (TableId t : tables_) {
    if (t < 0 || t >= catalog.table_count()) {
      return Status::InvalidArgument("unknown table id");
    }
  }
  auto check_column = [&](const ColumnRef& c) {
    if (!UsesTable(c.table)) {
      return Status::InvalidArgument("column on table not in query");
    }
    if (c.column < 0 || c.column >= catalog.table(c.table).column_count()) {
      return Status::InvalidArgument("unknown column");
    }
    return Status::OK();
  };
  for (const auto& j : joins_) {
    COLT_RETURN_IF_ERROR(check_column(j.left));
    COLT_RETURN_IF_ERROR(check_column(j.right));
    if (j.left.table == j.right.table) {
      return Status::InvalidArgument("self-join predicates unsupported");
    }
  }
  for (const auto& s : selections_) {
    COLT_RETURN_IF_ERROR(check_column(s.column));
    if (s.lo > s.hi) return Status::InvalidArgument("empty predicate range");
  }
  if (is_write()) {
    if (tables_.size() != 1) {
      return Status::InvalidArgument("write statements target one table");
    }
    if (!joins_.empty()) {
      return Status::InvalidArgument("write statements cannot join");
    }
    const TableId target = tables_.front();
    if (kind_ == StatementKind::kInsert) {
      if (insert_rows_ < 1) {
        return Status::InvalidArgument("INSERT needs a positive row count");
      }
      if (!selections_.empty()) {
        return Status::InvalidArgument("INSERT cannot carry a WHERE clause");
      }
    }
    if (kind_ == StatementKind::kUpdate && set_clauses_.empty()) {
      return Status::InvalidArgument("UPDATE needs at least one SET clause");
    }
    for (const SetClause& s : set_clauses_) {
      if (s.column < 0 || s.column >= catalog.table(target).column_count()) {
        return Status::InvalidArgument("unknown SET column");
      }
    }
  } else {
    if (insert_rows_ != 0 || !set_clauses_.empty()) {
      return Status::InvalidArgument("SELECT cannot carry write fields");
    }
  }
  return Status::OK();
}

std::string Query::ToString(const Catalog& catalog) const {
  std::ostringstream os;
  bool first = true;
  auto emit_where = [&] {
    os << (first ? " WHERE " : " AND ");
    first = false;
  };
  auto emit_conditions = [&] {
    for (const auto& j : joins_) {
      emit_where();
      os << catalog.table(j.left.table).name() << "."
         << catalog.table(j.left.table).column(j.left.column).name << " = "
         << catalog.table(j.right.table).name() << "."
         << catalog.table(j.right.table).column(j.right.column).name;
    }
    for (const auto& s : selections_) {
      emit_where();
      os << PredicateToString(catalog, s);
    }
  };
  switch (kind_) {
    case StatementKind::kSelect: {
      os << "SELECT count(*) FROM ";
      for (size_t i = 0; i < tables_.size(); ++i) {
        if (i > 0) os << ", ";
        os << catalog.table(tables_[i]).name();
      }
      emit_conditions();
      break;
    }
    case StatementKind::kInsert: {
      os << "INSERT INTO " << catalog.table(write_table()).name() << " ROWS "
         << insert_rows_;
      break;
    }
    case StatementKind::kUpdate: {
      const auto& table = catalog.table(write_table());
      os << "UPDATE " << table.name() << " SET ";
      for (size_t i = 0; i < set_clauses_.size(); ++i) {
        if (i > 0) os << ", ";
        os << table.column(set_clauses_[i].column).name << " = "
           << set_clauses_[i].value;
      }
      emit_conditions();
      break;
    }
    case StatementKind::kDelete: {
      os << "DELETE FROM " << catalog.table(write_table()).name();
      emit_conditions();
      break;
    }
  }
  return os.str();
}

std::string PredicateToString(const Catalog& catalog,
                              const SelectionPredicate& pred) {
  std::ostringstream os;
  const auto& table = catalog.table(pred.column.table);
  os << table.name() << "." << table.column(pred.column.column).name;
  if (pred.is_equality()) {
    os << " = " << pred.lo;
  } else if (pred.lo == INT64_MIN) {
    os << " <= " << pred.hi;
  } else if (pred.hi == INT64_MAX) {
    os << " >= " << pred.lo;
  } else {
    os << " BETWEEN " << pred.lo << " AND " << pred.hi;
  }
  return os.str();
}

size_t QuerySignatureHash::operator()(const QuerySignature& sig) const {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (TableId t : sig.tables) mix(static_cast<uint64_t>(t) + 1);
  mix(0xabcd);
  for (const auto& [l, r] : sig.joins) {
    mix((static_cast<uint64_t>(l.table) << 32) ^
        static_cast<uint32_t>(l.column));
    mix((static_cast<uint64_t>(r.table) << 32) ^
        static_cast<uint32_t>(r.column));
  }
  mix(0xef01);
  for (const auto& [c, bucket] : sig.selections) {
    mix((static_cast<uint64_t>(c.table) << 32) ^
        static_cast<uint32_t>(c.column));
    mix(static_cast<uint64_t>(bucket) + 17);
  }
  // Mixed only for writes so read-only signatures hash exactly as they did
  // before write statements existed (clusters persisted by older
  // checkpoints keep their identity).
  if (sig.kind != 0) {
    mix(0x5157u);  // "WQ" domain separator
    mix(static_cast<uint64_t>(sig.kind));
    for (ColumnId c : sig.write_columns) mix(static_cast<uint64_t>(c) + 29);
  }
  return static_cast<size_t>(h);
}

QuerySignature ComputeSignature(const Catalog& catalog, const Query& q) {
  QuerySignature sig;
  sig.tables = q.tables();
  for (const auto& j : q.joins()) {
    const JoinPredicate c = j.Canonical();
    sig.joins.emplace_back(c.left, c.right);
  }
  std::sort(sig.joins.begin(), sig.joins.end());
  for (const auto& s : q.selections()) {
    sig.selections.emplace_back(
        s.column, SelectivityBucket(EstimateSelectivity(catalog, s)));
  }
  std::sort(sig.selections.begin(), sig.selections.end());
  sig.kind = static_cast<int>(q.kind());
  for (const SetClause& s : q.set_clauses()) {
    sig.write_columns.push_back(s.column);
  }
  std::sort(sig.write_columns.begin(), sig.write_columns.end());
  sig.write_columns.erase(
      std::unique(sig.write_columns.begin(), sig.write_columns.end()),
      sig.write_columns.end());
  return sig;
}

}  // namespace colt
