#ifndef COLT_QUERY_QUERY_H_
#define COLT_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/predicate.h"

namespace colt {

/// A select-project-join query: a set of tables, equi-join predicates
/// connecting them, and conjunctive range/equality selections. The output
/// is an aggregate (count), so projection lists do not affect cost.
class Query {
 public:
  Query() = default;
  Query(std::vector<TableId> tables, std::vector<JoinPredicate> joins,
        std::vector<SelectionPredicate> selections);

  const std::vector<TableId>& tables() const { return tables_; }
  const std::vector<JoinPredicate>& joins() const { return joins_; }
  const std::vector<SelectionPredicate>& selections() const {
    return selections_;
  }

  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }

  /// Selections on a specific table.
  std::vector<SelectionPredicate> SelectionsOn(TableId table) const;

  /// True if `table` participates in the query.
  bool UsesTable(TableId table) const;

  /// Validates internal consistency against a catalog (tables exist, join
  /// and selection columns belong to the query's tables).
  Status Validate(const Catalog& catalog) const;

  std::string ToString(const Catalog& catalog) const;

 private:
  int64_t id_ = -1;
  std::vector<TableId> tables_;             // sorted, unique
  std::vector<JoinPredicate> joins_;        // canonical form
  std::vector<SelectionPredicate> selections_;
};

/// The Profiler's query-similarity key (paper §4.1): two query occurrences
/// belong to the same cluster iff they access the same tables, have the same
/// join predicates, and have selections on the same attributes with
/// selectivities in the same bucket. The paper uses two buckets split at 2%
/// ("an approximate separation between selective and non-selective
/// predicates").
struct QuerySignature {
  std::vector<TableId> tables;
  std::vector<std::pair<ColumnRef, ColumnRef>> joins;
  /// (column, selectivity bucket index).
  std::vector<std::pair<ColumnRef, int>> selections;

  friend bool operator==(const QuerySignature&,
                         const QuerySignature&) = default;
};

struct QuerySignatureHash {
  size_t operator()(const QuerySignature& sig) const;
};

/// Selectivity-bucket boundaries. bucket 0: [0, 0.02); bucket 1: [0.02, 1].
inline constexpr double kSelectivityBucketBoundary = 0.02;

/// Bucket index for a selectivity value.
inline int SelectivityBucket(double selectivity) {
  return selectivity < kSelectivityBucketBoundary ? 0 : 1;
}

/// Computes the clustering signature of `q` under the catalog's statistics.
QuerySignature ComputeSignature(const Catalog& catalog, const Query& q);

}  // namespace colt

#endif  // COLT_QUERY_QUERY_H_
