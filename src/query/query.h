#ifndef COLT_QUERY_QUERY_H_
#define COLT_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "query/predicate.h"

namespace colt {

/// The kind of statement a Query represents. SELECT is the historical
/// read-only SPJ shape; the write kinds (DESIGN.md §16) carry a single
/// target table and drive heap + index maintenance instead of scans.
enum class StatementKind {
  kSelect = 0,
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
};

/// One SET clause of an UPDATE: assign `value` to `column` of the target
/// table for every matched row.
struct SetClause {
  ColumnId column = kInvalidColumnId;
  int64_t value = 0;

  friend bool operator==(const SetClause&, const SetClause&) = default;
};

/// A statement. For SELECT: a select-project-join query — a set of tables,
/// equi-join predicates connecting them, and conjunctive range/equality
/// selections; the output is an aggregate (count), so projection lists do
/// not affect cost. For INSERT/UPDATE/DELETE (DESIGN.md §16): a single
/// target table, an optional WHERE (update/delete) reusing the same
/// selection predicates, SET clauses (update) and a batch row count
/// (insert). Write statements never join.
class Query {
 public:
  Query() = default;
  Query(std::vector<TableId> tables, std::vector<JoinPredicate> joins,
        std::vector<SelectionPredicate> selections);

  /// Builds `INSERT INTO table ROWS rows` — append `rows` synthesized
  /// tuples to `table` (values are a deterministic function of the row
  /// position, so traces replay identically; DESIGN.md §16).
  static Query MakeInsert(TableId table, int64_t rows);

  /// Builds `UPDATE table SET ... [WHERE selections]`.
  static Query MakeUpdate(TableId table, std::vector<SetClause> sets,
                          std::vector<SelectionPredicate> selections);

  /// Builds `DELETE FROM table [WHERE selections]`.
  static Query MakeDelete(TableId table,
                          std::vector<SelectionPredicate> selections);

  StatementKind kind() const { return kind_; }
  /// True for INSERT/UPDATE/DELETE.
  bool is_write() const { return kind_ != StatementKind::kSelect; }
  /// The single target table of a write statement. Requires is_write().
  TableId write_table() const { return tables_.front(); }
  /// Batch size of an INSERT; 0 for other kinds.
  int64_t insert_rows() const { return insert_rows_; }
  /// SET clauses of an UPDATE (sorted by column); empty for other kinds.
  const std::vector<SetClause>& set_clauses() const { return set_clauses_; }

  const std::vector<TableId>& tables() const { return tables_; }
  const std::vector<JoinPredicate>& joins() const { return joins_; }
  const std::vector<SelectionPredicate>& selections() const {
    return selections_;
  }

  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }

  /// Selections on a specific table.
  std::vector<SelectionPredicate> SelectionsOn(TableId table) const;

  /// True if `table` participates in the query.
  bool UsesTable(TableId table) const;

  /// Validates internal consistency against a catalog (tables exist, join
  /// and selection columns belong to the query's tables; write statements
  /// target exactly one table, never join, and reference valid columns).
  Status Validate(const Catalog& catalog) const;

  std::string ToString(const Catalog& catalog) const;

 private:
  int64_t id_ = -1;
  StatementKind kind_ = StatementKind::kSelect;
  std::vector<TableId> tables_;             // sorted, unique
  std::vector<JoinPredicate> joins_;        // canonical form
  std::vector<SelectionPredicate> selections_;
  int64_t insert_rows_ = 0;                 // INSERT batch size
  std::vector<SetClause> set_clauses_;      // UPDATE SET list, sorted
};

/// The Profiler's query-similarity key (paper §4.1): two query occurrences
/// belong to the same cluster iff they access the same tables, have the same
/// join predicates, and have selections on the same attributes with
/// selectivities in the same bucket. The paper uses two buckets split at 2%
/// ("an approximate separation between selective and non-selective
/// predicates").
struct QuerySignature {
  std::vector<TableId> tables;
  std::vector<std::pair<ColumnRef, ColumnRef>> joins;
  /// (column, selectivity bucket index).
  std::vector<std::pair<ColumnRef, int>> selections;
  /// Statement kind as an integer (0 = SELECT). Writes of different kinds
  /// (or touching different SET columns) never share a cluster; read-only
  /// signatures keep their pre-write hash values because the kind is mixed
  /// into the hash only when non-zero.
  int kind = 0;
  /// Columns assigned by an UPDATE's SET list (sorted); empty otherwise.
  std::vector<ColumnId> write_columns;

  friend bool operator==(const QuerySignature&,
                         const QuerySignature&) = default;
};

struct QuerySignatureHash {
  size_t operator()(const QuerySignature& sig) const;
};

/// Selectivity-bucket boundaries. bucket 0: [0, 0.02); bucket 1: [0.02, 1].
inline constexpr double kSelectivityBucketBoundary = 0.02;

/// Bucket index for a selectivity value.
inline int SelectivityBucket(double selectivity) {
  return selectivity < kSelectivityBucketBoundary ? 0 : 1;
}

/// Computes the clustering signature of `q` under the catalog's statistics.
QuerySignature ComputeSignature(const Catalog& catalog, const Query& q);

}  // namespace colt

#endif  // COLT_QUERY_QUERY_H_
