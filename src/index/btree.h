#ifndef COLT_INDEX_BTREE_H_
#define COLT_INDEX_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace colt {

/// Row identifier within a table (position in the column store).
using RowId = int64_t;

/// In-memory B+-tree from int64 keys to row ids, supporting duplicates.
///
/// This is the physical structure the Scheduler materializes. It is a real
/// tree (fixed fanout, split/bulk-load, linked leaves) rather than a
/// std::map so that leaf-page counts — the quantity the cost model charges
/// for — fall out of the actual structure.
class BTreeIndex {
 public:
  /// `fanout` = max entries per node (leaf and internal). Small fanouts are
  /// useful in tests to force deep trees.
  explicit BTreeIndex(int32_t fanout = 128);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;
  BTreeIndex(BTreeIndex&&) noexcept;
  BTreeIndex& operator=(BTreeIndex&&) noexcept;

  /// Inserts one (key, row) entry. Duplicate keys are allowed.
  void Insert(int64_t key, RowId row);

  /// Bulk-loads from (key, row) pairs; requires an empty tree. Pairs need
  /// not be sorted. Produces leaves ~100% full (like CREATE INDEX).
  Status BulkLoad(std::vector<std::pair<int64_t, RowId>> entries);

  /// Appends all row ids with key in [lo, hi] (inclusive) to `out`.
  /// Returns the number of leaf nodes touched (for I/O accounting).
  int64_t RangeScan(int64_t lo, int64_t hi, std::vector<RowId>* out) const;

  /// Appends all row ids with key == key. Returns leaves touched.
  int64_t Lookup(int64_t key, std::vector<RowId>* out) const;

  int64_t entry_count() const { return entry_count_; }
  int64_t leaf_count() const { return leaf_count_; }
  int32_t height() const { return height_; }
  int32_t fanout() const { return fanout_; }
  bool empty() const { return entry_count_ == 0; }

  /// Verifies structural invariants (ordering, fanout bounds, uniform leaf
  /// depth, leaf-chain consistency). Used by tests.
  Status CheckInvariants() const;

 private:
  struct Node;

  Node* root_ = nullptr;
  int32_t fanout_;
  int64_t entry_count_ = 0;
  int64_t leaf_count_ = 0;
  int32_t height_ = 0;

  void FreeTree(Node* node);
  /// Splits `child` (the i-th child of `parent`) which is full.
  void SplitChild(Node* parent, int32_t i);
  void InsertNonFull(Node* node, int64_t key, RowId row);
  const Node* FindLeaf(int64_t key) const;
  Status CheckNode(const Node* node, int depth, int64_t lo, int64_t hi,
                   int leaf_depth) const;
};

}  // namespace colt

#endif  // COLT_INDEX_BTREE_H_
