#ifndef COLT_INDEX_BTREE_H_
#define COLT_INDEX_BTREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace colt {

/// Row identifier within a table (position in the column store).
using RowId = int64_t;

/// In-memory B+-tree from int64 keys to row ids, supporting duplicates.
///
/// This is the physical structure the Scheduler materializes. It is a real
/// tree (fixed fanout, split/bulk-load, linked leaves) rather than a
/// std::map so that leaf-page counts — the quantity the cost model charges
/// for — fall out of the actual structure.
///
/// Concurrency (DESIGN.md §15): reads and writes may run from any number
/// of threads simultaneously using optimistic lock coupling in the style
/// of BTreeOLC/FBTree. Every node carries a version word whose low bit is
/// a writer lock; versions advance by 2 per write. Readers never lock:
/// they snapshot a node's version, read its payload, and re-validate the
/// version (seqlock idiom — node payload lives in atomic cells, so torn
/// reads are impossible and a failed validation simply restarts the
/// operation from the root; `read_restarts()` counts them). Writers CAS
/// the version word to lock a node, and a split lock-couples parent and
/// child top-down, so writer locks never deadlock. Structural changes
/// never free or merge nodes: Erase removes entries leaf-locally and
/// leaves emptied leaves linked in the chain (readers skip them), so a
/// reader holding a stale node pointer always sees a well-formed — if
/// outdated — node and either fails validation or completes correctly via
/// the leaf chain. Whole-tree teardown under concurrent readers is the
/// job of the epoch reclamation layer (`common/epoch.h`): owners retire a
/// dropped tree instead of deleting it while readers may still be pinned
/// inside.
///
/// The structural algorithms (preemptive split on descent at mid =
/// count/2, lower-bound descent for reads, bottom-up bulk load) are
/// unchanged from the single-threaded implementation, so leaf counts,
/// heights, and the leaves-touched accounting of a quiescent tree are
/// bit-identical to it.
class BTreeIndex {
 public:
  /// `fanout` = max entries per node (leaf and internal). Small fanouts are
  /// useful in tests to force deep trees.
  explicit BTreeIndex(int32_t fanout = 128);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;
  /// Moves require external quiescence (no concurrent readers or writers
  /// on either tree); the Scheduler moves trees only at install time.
  BTreeIndex(BTreeIndex&&) noexcept;
  BTreeIndex& operator=(BTreeIndex&&) noexcept;

  /// Inserts one (key, row) entry. Duplicate keys are allowed. Safe to
  /// call concurrently with other Insert/Erase/Lookup/RangeScan calls.
  COLT_THREAD_NEUTRAL void Insert(int64_t key, RowId row);

  /// Erases one (key, row) entry; returns true iff an entry was removed.
  /// Leaf-local: the entry is removed in place under the leaf's writer
  /// lock, and a leaf emptied by erasure stays linked in the chain (nodes
  /// are never merged or freed, preserving the OLC reader guarantees
  /// above). Safe to call concurrently with other tree operations.
  COLT_THREAD_NEUTRAL bool Erase(int64_t key, RowId row);

  /// Bulk-loads from (key, row) pairs; requires an empty tree. Pairs need
  /// not be sorted. Produces leaves ~100% full (like CREATE INDEX).
  /// Builds a private structure and publishes the root last; the caller
  /// must not run concurrent operations on the same tree while loading.
  COLT_THREAD_NEUTRAL Status BulkLoad(
      std::vector<std::pair<int64_t, RowId>> entries);

  /// Appends all row ids with key in [lo, hi] (inclusive) to `out`.
  /// Returns the number of leaf nodes touched (for I/O accounting).
  /// Lock-free: restarts internally on concurrent modification.
  COLT_WORKER_SAFE int64_t RangeScan(int64_t lo, int64_t hi,
                                     std::vector<RowId>* out) const;

  /// Appends all row ids with key == key. Returns leaves touched.
  COLT_WORKER_SAFE int64_t Lookup(int64_t key, std::vector<RowId>* out) const;

  COLT_WORKER_SAFE int64_t entry_count() const {
    return entry_count_.load(std::memory_order_acquire);
  }
  COLT_WORKER_SAFE int64_t leaf_count() const {
    return leaf_count_.load(std::memory_order_acquire);
  }
  COLT_WORKER_SAFE int32_t height() const {
    return height_.load(std::memory_order_acquire);
  }
  COLT_WORKER_SAFE int32_t fanout() const { return fanout_; }
  COLT_WORKER_SAFE bool empty() const { return entry_count() == 0; }

  /// Times a read path restarted because a writer changed a node
  /// mid-validation. Monotone; used by the OLC tests.
  COLT_WORKER_SAFE int64_t read_restarts() const {
    return read_restarts_.load(std::memory_order_relaxed);
  }
  /// Times an insert restarted after losing a version race.
  COLT_WORKER_SAFE int64_t write_restarts() const {
    return write_restarts_.load(std::memory_order_relaxed);
  }

  /// Verifies structural invariants (ordering, fanout bounds, uniform leaf
  /// depth, leaf-chain consistency). Used by tests. Safe against
  /// concurrent readers; requires writers to be quiescent (the check
  /// itself takes no locks and reads the structure in place).
  COLT_WORKER_SAFE Status CheckInvariants() const;

 private:
  struct Node;

  std::atomic<Node*> root_{nullptr};
  int32_t fanout_;
  std::atomic<int64_t> entry_count_{0};
  std::atomic<int64_t> leaf_count_{0};
  std::atomic<int32_t> height_{0};
  mutable std::atomic<int64_t> read_restarts_{0};
  std::atomic<int64_t> write_restarts_{0};

  void FreeTree(Node* node);

  /// One optimistic insert descent; false means "retry from the root".
  /// `*contended` is set when the retry was forced by a concurrent writer
  /// (validation or lock failure) rather than planned restructuring (a
  /// root split), so Insert can keep write_restarts() quiet on a
  /// single-threaded workload.
  bool InsertAttempt(int64_t key, RowId row, bool* contended);
  /// Publishes a one-entry root leaf via CAS; false if another thread won.
  bool InsertIntoEmpty(int64_t key, RowId row);
  /// Locks and splits a full root, publishing a new root above it.
  void SplitRoot(Node* root, uint64_t version);
  /// Splits `child` (the i-th child of `parent`); both must be locked by
  /// the caller and `parent` must have room for the separator.
  void SplitChildLocked(Node* parent, size_t i, Node* child);
  void InsertIntoLeafLocked(Node* leaf, int64_t key, RowId row);

  /// One optimistic scan attempt; false means a validation failed and the
  /// caller must discard partial output and retry.
  bool ScanAttempt(int64_t lo, int64_t hi, std::vector<RowId>* out,
                   int64_t* leaves_touched) const;

  /// One optimistic erase descent; false means "retry from the root".
  /// On success `*erased` reports whether the (key, row) pair existed.
  bool EraseAttempt(int64_t key, RowId row, bool* erased);

  Status CheckNode(const Node* node, int depth, int64_t lo, int64_t hi,
                   int leaf_depth) const;

  /// Spins until `node`'s version is unlocked and returns it.
  static uint64_t StableVersion(const Node* node);
  /// True iff `node`'s version still equals `version` (reads since the
  /// matching StableVersion saw a consistent snapshot).
  static bool ValidateVersion(const Node* node, uint64_t version);
  /// CAS `version` -> locked; false if the node changed or is locked.
  static bool TryLock(Node* node, uint64_t version);
  /// Releases a writer lock, advancing the version by one generation.
  static void UnlockNode(Node* node);

  static size_t LowerBoundKeys(const Node& node, int64_t key, int32_t count);
  static size_t UpperBoundKeys(const Node& node, int64_t key, int32_t count);
};

}  // namespace colt

#endif  // COLT_INDEX_BTREE_H_
