#include "index/btree.h"

#include <algorithm>

namespace colt {

namespace {

/// Spin-wait hint while a node is writer-locked (locks cover O(fanout)
/// memory moves, so waits are short).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

constexpr uint64_t kLockBit = 1;
/// Even = unlocked; writers hold the node while the low bit is set and
/// bump the version by one generation (+2) on release.
constexpr uint64_t kInitialVersion = 2;

}  // namespace

/// Node payload lives in arrays of atomic cells so that optimistic readers
/// racing a locked writer perform no data race in the language sense: a
/// reader may observe a half-updated node, but every load is tear-free and
/// the version re-validation discards inconsistent snapshots. Capacities
/// are fixed at construction (keys/values: fanout; children: fanout + 1),
/// and `count` never exceeds them even mid-write, so any count a reader
/// observes keeps its indexing in bounds.
struct BTreeIndex::Node {
  std::atomic<uint64_t> version;
  const bool is_leaf;
  std::atomic<int32_t> count{0};
  std::unique_ptr<std::atomic<int64_t>[]> keys;
  // Leaf: values[i] corresponds to keys[i].
  std::unique_ptr<std::atomic<RowId>[]> values;
  // Internal: count + 1 live children; subtree children[i] holds keys <
  // keys[i]; children[i+1] holds keys >= keys[i].
  std::unique_ptr<std::atomic<Node*>[]> children;
  std::atomic<Node*> next_leaf{nullptr};

  Node(bool leaf, int32_t fanout, uint64_t initial_version)
      : version(initial_version),
        is_leaf(leaf),
        keys(std::make_unique<std::atomic<int64_t>[]>(
            static_cast<size_t>(fanout))),
        values(leaf ? std::make_unique<std::atomic<RowId>[]>(
                          static_cast<size_t>(fanout))
                    : nullptr),
        children(leaf ? nullptr
                      : std::make_unique<std::atomic<Node*>[]>(
                            static_cast<size_t>(fanout) + 1)) {}
};

BTreeIndex::BTreeIndex(int32_t fanout) : fanout_(std::max(4, fanout)) {}

BTreeIndex::~BTreeIndex() { FreeTree(root_.load(std::memory_order_acquire)); }

BTreeIndex::BTreeIndex(BTreeIndex&& other) noexcept
    : root_(other.root_.exchange(nullptr, std::memory_order_acq_rel)),
      fanout_(other.fanout_),
      entry_count_(other.entry_count_.exchange(0)),
      leaf_count_(other.leaf_count_.exchange(0)),
      height_(other.height_.exchange(0)),
      read_restarts_(other.read_restarts_.load(std::memory_order_relaxed)),
      write_restarts_(other.write_restarts_.load(std::memory_order_relaxed)) {}

BTreeIndex& BTreeIndex::operator=(BTreeIndex&& other) noexcept {
  if (this != &other) {
    FreeTree(root_.load(std::memory_order_acquire));
    root_.store(other.root_.exchange(nullptr, std::memory_order_acq_rel),
                std::memory_order_release);
    fanout_ = other.fanout_;
    entry_count_.store(other.entry_count_.exchange(0));
    leaf_count_.store(other.leaf_count_.exchange(0));
    height_.store(other.height_.exchange(0));
    read_restarts_.store(other.read_restarts_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    write_restarts_.store(
        other.write_restarts_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  return *this;
}

void BTreeIndex::FreeTree(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    const int32_t count = node->count.load(std::memory_order_relaxed);
    for (int32_t i = 0; i <= count; ++i) {
      FreeTree(node->children[static_cast<size_t>(i)].load(
          std::memory_order_relaxed));
    }
  }
  delete node;
}

// ---------------------------------------------------------------------------
// Version protocol.
//
// Writer: TryLock CASes the exact version observed by the caller to its
// locked value, so a successful lock certifies the node is unchanged since
// that observation. Mutations use release stores; UnlockNode release-stores
// the next even version.
//
// Reader: StableVersion acquire-loads (spinning out writer critical
// sections), payload loads are relaxed, and ValidateVersion issues an
// acquire fence before re-reading the version. If any payload load observed
// a concurrent writer's (release) store, the fence forces the version
// re-read to observe that writer's lock word too, so validation fails and
// the reader restarts — a reader can only accept a fully-consistent
// snapshot.
// ---------------------------------------------------------------------------

uint64_t BTreeIndex::StableVersion(const Node* node) {
  uint64_t v = node->version.load(std::memory_order_acquire);
  while ((v & kLockBit) != 0) {
    CpuRelax();
    v = node->version.load(std::memory_order_acquire);
  }
  return v;
}

bool BTreeIndex::ValidateVersion(const Node* node, uint64_t version) {
  std::atomic_thread_fence(std::memory_order_acquire);
  return node->version.load(std::memory_order_relaxed) == version;
}

bool BTreeIndex::TryLock(Node* node, uint64_t version) {
  uint64_t expected = version;
  return node->version.compare_exchange_strong(expected, version | kLockBit,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed);
}

void BTreeIndex::UnlockNode(Node* node) {
  const uint64_t locked = node->version.load(std::memory_order_relaxed);
  node->version.store(locked + 1, std::memory_order_release);
}

size_t BTreeIndex::LowerBoundKeys(const Node& node, int64_t key,
                                  int32_t count) {
  size_t lo = 0;
  size_t hi = static_cast<size_t>(count);
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (node.keys[mid].load(std::memory_order_relaxed) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t BTreeIndex::UpperBoundKeys(const Node& node, int64_t key,
                                  int32_t count) {
  size_t lo = 0;
  size_t hi = static_cast<size_t>(count);
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (node.keys[mid].load(std::memory_order_relaxed) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// ---------------------------------------------------------------------------
// Writes.
// ---------------------------------------------------------------------------

void BTreeIndex::SplitChildLocked(Node* parent, size_t i, Node* child) {
  const int32_t ccount = child->count.load(std::memory_order_relaxed);
  const int32_t mid = ccount / 2;
  const int64_t separator =
      child->keys[static_cast<size_t>(mid)].load(std::memory_order_relaxed);
  Node* right = new Node(child->is_leaf, fanout_, kInitialVersion);
  if (child->is_leaf) {
    for (int32_t j = mid; j < ccount; ++j) {
      const size_t src = static_cast<size_t>(j);
      const size_t dst = static_cast<size_t>(j - mid);
      right->keys[dst].store(child->keys[src].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
      right->values[dst].store(
          child->values[src].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    right->count.store(ccount - mid, std::memory_order_relaxed);
    right->next_leaf.store(child->next_leaf.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    // Link the new right sibling into the chain before shrinking `child`,
    // so a chain-walking reader always finds every key at least once (its
    // validation of `child` fails anyway while we hold the lock).
    child->next_leaf.store(right, std::memory_order_release);
    child->count.store(mid, std::memory_order_release);
    leaf_count_.fetch_add(1, std::memory_order_relaxed);
  } else {
    for (int32_t j = mid + 1; j < ccount; ++j) {
      right->keys[static_cast<size_t>(j - mid - 1)].store(
          child->keys[static_cast<size_t>(j)].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    for (int32_t j = mid + 1; j <= ccount; ++j) {
      right->children[static_cast<size_t>(j - mid - 1)].store(
          child->children[static_cast<size_t>(j)].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    right->count.store(ccount - mid - 1, std::memory_order_relaxed);
    child->count.store(mid, std::memory_order_release);
  }
  // Shift the parent's tail right by one and splice in separator + right.
  const int32_t pcount = parent->count.load(std::memory_order_relaxed);
  for (int32_t j = pcount; j > static_cast<int32_t>(i); --j) {
    parent->keys[static_cast<size_t>(j)].store(
        parent->keys[static_cast<size_t>(j - 1)].load(
            std::memory_order_relaxed),
        std::memory_order_release);
  }
  for (int32_t j = pcount + 1; j > static_cast<int32_t>(i) + 1; --j) {
    parent->children[static_cast<size_t>(j)].store(
        parent->children[static_cast<size_t>(j - 1)].load(
            std::memory_order_relaxed),
        std::memory_order_release);
  }
  parent->keys[i].store(separator, std::memory_order_release);
  parent->children[i + 1].store(right, std::memory_order_release);
  parent->count.store(pcount + 1, std::memory_order_release);
}

void BTreeIndex::InsertIntoLeafLocked(Node* leaf, int64_t key, RowId row) {
  const int32_t count = leaf->count.load(std::memory_order_relaxed);
  const size_t pos = UpperBoundKeys(*leaf, key, count);
  for (int32_t j = count; j > static_cast<int32_t>(pos); --j) {
    leaf->keys[static_cast<size_t>(j)].store(
        leaf->keys[static_cast<size_t>(j - 1)].load(std::memory_order_relaxed),
        std::memory_order_release);
    leaf->values[static_cast<size_t>(j)].store(
        leaf->values[static_cast<size_t>(j - 1)].load(
            std::memory_order_relaxed),
        std::memory_order_release);
  }
  leaf->keys[pos].store(key, std::memory_order_release);
  leaf->values[pos].store(row, std::memory_order_release);
  leaf->count.store(count + 1, std::memory_order_release);
}

bool BTreeIndex::InsertIntoEmpty(int64_t key, RowId row) {
  // Publish the root locked: counters and the first entry are finalized
  // before any other thread can read or lock it.
  Node* leaf = new Node(/*leaf=*/true, fanout_, kInitialVersion | kLockBit);
  leaf->keys[0].store(key, std::memory_order_relaxed);
  leaf->values[0].store(row, std::memory_order_relaxed);
  leaf->count.store(1, std::memory_order_relaxed);
  Node* expected = nullptr;
  if (!root_.compare_exchange_strong(expected, leaf,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
    delete leaf;  // another thread created the root first
    return false;
  }
  leaf_count_.store(1, std::memory_order_release);
  height_.store(1, std::memory_order_release);
  entry_count_.fetch_add(1, std::memory_order_release);
  UnlockNode(leaf);
  return true;
}

void BTreeIndex::SplitRoot(Node* root, uint64_t version) {
  if (!TryLock(root, version)) return;
  if (root_.load(std::memory_order_acquire) != root) {
    UnlockNode(root);  // superseded while we were locking
    return;
  }
  // With the current root locked no other writer can split it or publish a
  // new root, so the swap below is unique.
  Node* new_root = new Node(/*leaf=*/false, fanout_,
                            kInitialVersion | kLockBit);
  new_root->children[0].store(root, std::memory_order_relaxed);
  SplitChildLocked(new_root, 0, root);
  root_.store(new_root, std::memory_order_release);
  height_.fetch_add(1, std::memory_order_release);
  UnlockNode(new_root);
  // Readers that entered through the old root restart on its bumped
  // version; stale traversals that validated before the bump stay correct
  // via the leaf chain.
  UnlockNode(root);
}

bool BTreeIndex::InsertAttempt(int64_t key, RowId row, bool* contended) {
  *contended = true;
  Node* root = root_.load(std::memory_order_acquire);
  if (root == nullptr) return InsertIntoEmpty(key, row);
  uint64_t v = StableVersion(root);
  if (root_.load(std::memory_order_acquire) != root) return false;
  {
    const int32_t rcount = root->count.load(std::memory_order_relaxed);
    if (!ValidateVersion(root, v)) return false;
    if (rcount >= fanout_) {
      SplitRoot(root, v);
      // Planned restructuring, not a lost race: retry from the (possibly
      // new) root without charging the contention counter.
      *contended = false;
      return false;
    }
  }
  // Loop invariant: `node` had count < fanout_ at version `v`, so a
  // successful TryLock(node, v) certifies room for one more separator or
  // entry (the preemptive-split discipline of the serial algorithm).
  Node* node = root;
  while (!node->is_leaf) {
    const int32_t count = node->count.load(std::memory_order_relaxed);
    size_t i = UpperBoundKeys(*node, key, count);
    Node* child =
        node->children[i].load(std::memory_order_relaxed);
    if (!ValidateVersion(node, v)) return false;
    if (child == nullptr) return false;  // torn read; restart
    uint64_t cv = StableVersion(child);
    if (!ValidateVersion(node, v)) return false;
    const int32_t ccount = child->count.load(std::memory_order_relaxed);
    if (!ValidateVersion(child, cv)) return false;
    if (ccount >= fanout_) {
      if (!TryLock(node, v)) return false;
      if (!TryLock(child, cv)) {
        UnlockNode(node);
        return false;
      }
      SplitChildLocked(node, i, child);
      UnlockNode(child);
      // Re-aim the descent at whichever half owns `key`. While we still
      // hold the parent lock neither half can be touched by other
      // writers (they would have to re-descend through the locked
      // parent, or re-lock the bumped child version), so its fresh
      // version certifies a non-full node.
      if (key >= node->keys[i].load(std::memory_order_relaxed)) ++i;
      Node* next = node->children[i].load(std::memory_order_relaxed);
      const uint64_t nv = StableVersion(next);
      UnlockNode(node);
      node = next;
      v = nv;
      continue;
    }
    node = child;
    v = cv;
  }
  if (!TryLock(node, v)) return false;
  InsertIntoLeafLocked(node, key, row);
  UnlockNode(node);
  entry_count_.fetch_add(1, std::memory_order_release);
  return true;
}

void BTreeIndex::Insert(int64_t key, RowId row) {
  bool contended = false;
  while (!InsertAttempt(key, row, &contended)) {
    if (contended) write_restarts_.fetch_add(1, std::memory_order_relaxed);
    CpuRelax();
  }
}

bool BTreeIndex::EraseAttempt(int64_t key, RowId row, bool* erased) {
  Node* node = root_.load(std::memory_order_acquire);
  if (node == nullptr) {
    *erased = false;
    return true;
  }
  uint64_t v = StableVersion(node);
  if (root_.load(std::memory_order_acquire) != node) return false;
  // Lower-bound descent to the first possible occurrence (duplicates can
  // straddle separators, exactly as in ScanAttempt).
  while (!node->is_leaf) {
    const int32_t count = node->count.load(std::memory_order_relaxed);
    const size_t i = LowerBoundKeys(*node, key, count);
    Node* child = node->children[i].load(std::memory_order_relaxed);
    if (!ValidateVersion(node, v)) return false;
    if (child == nullptr) return false;  // torn read; restart
    const uint64_t cv = StableVersion(child);
    if (!ValidateVersion(node, v)) return false;
    node = child;
    v = cv;
  }
  // Walk the leaf chain for the (key, row) pair; duplicate keys may span
  // several leaves, and emptied leaves (count == 0) are skipped through
  // their next pointer.
  while (true) {
    const int32_t count = node->count.load(std::memory_order_relaxed);
    size_t pos = static_cast<size_t>(count);
    bool past_key = false;
    for (size_t i = LowerBoundKeys(*node, key, count);
         i < static_cast<size_t>(count); ++i) {
      if (node->keys[i].load(std::memory_order_relaxed) > key) {
        past_key = true;
        break;
      }
      if (node->values[i].load(std::memory_order_relaxed) == row) {
        pos = i;
        break;
      }
    }
    Node* next = node->next_leaf.load(std::memory_order_relaxed);
    if (pos < static_cast<size_t>(count)) {
      // Found it. A successful TryLock at the version the position was
      // read under certifies the leaf is unchanged, so `pos` is still the
      // entry to remove; shift the tail left in place. The leaf is never
      // unlinked even when it empties — readers traverse it harmlessly.
      if (!TryLock(node, v)) return false;
      for (size_t i = pos + 1; i < static_cast<size_t>(count); ++i) {
        node->keys[i - 1].store(
            node->keys[i].load(std::memory_order_relaxed),
            std::memory_order_release);
        node->values[i - 1].store(
            node->values[i].load(std::memory_order_relaxed),
            std::memory_order_release);
      }
      node->count.store(count - 1, std::memory_order_release);
      UnlockNode(node);
      entry_count_.fetch_sub(1, std::memory_order_release);
      *erased = true;
      return true;
    }
    if (!ValidateVersion(node, v)) return false;
    if (past_key || next == nullptr) {
      *erased = false;
      return true;
    }
    const uint64_t nv = StableVersion(next);
    if (!ValidateVersion(node, v)) return false;
    node = next;
    v = nv;
  }
}

bool BTreeIndex::Erase(int64_t key, RowId row) {
  bool erased = false;
  while (!EraseAttempt(key, row, &erased)) {
    write_restarts_.fetch_add(1, std::memory_order_relaxed);
    CpuRelax();
  }
  return erased;
}

Status BTreeIndex::BulkLoad(std::vector<std::pair<int64_t, RowId>> entries) {
  if (root_.load(std::memory_order_acquire) != nullptr) {
    return Status::FailedPrecondition("BulkLoad requires an empty tree");
  }
  std::sort(entries.begin(), entries.end());
  if (entries.empty()) return Status::OK();

  // The structure is private until the root is published below, so plain
  // relaxed stores suffice while building.
  std::vector<Node*> level;
  const size_t per_leaf = static_cast<size_t>(fanout_);
  for (size_t start = 0; start < entries.size(); start += per_leaf) {
    const size_t end = std::min(entries.size(), start + per_leaf);
    Node* leaf = new Node(/*leaf=*/true, fanout_, kInitialVersion);
    for (size_t i = start; i < end; ++i) {
      leaf->keys[i - start].store(entries[i].first,
                                  std::memory_order_relaxed);
      leaf->values[i - start].store(entries[i].second,
                                    std::memory_order_relaxed);
    }
    leaf->count.store(static_cast<int32_t>(end - start),
                      std::memory_order_relaxed);
    if (!level.empty()) {
      level.back()->next_leaf.store(leaf, std::memory_order_relaxed);
    }
    level.push_back(leaf);
  }
  leaf_count_.store(static_cast<int64_t>(level.size()),
                    std::memory_order_relaxed);
  entry_count_.store(static_cast<int64_t>(entries.size()),
                     std::memory_order_relaxed);
  int32_t height = 1;

  // Build internal levels bottom-up.
  while (level.size() > 1) {
    std::vector<Node*> parents;
    const size_t per_node = static_cast<size_t>(fanout_);
    for (size_t start = 0; start < level.size(); start += per_node + 1) {
      const size_t end = std::min(level.size(), start + per_node + 1);
      Node* parent = new Node(/*leaf=*/false, fanout_, kInitialVersion);
      for (size_t i = start; i < end; ++i) {
        if (i > start) {
          // Separator: smallest key reachable in child i's subtree.
          const Node* c = level[i];
          while (!c->is_leaf) {
            c = c->children[0].load(std::memory_order_relaxed);
          }
          parent->keys[i - start - 1].store(
              c->keys[0].load(std::memory_order_relaxed),
              std::memory_order_relaxed);
        }
        parent->children[i - start].store(level[i],
                                          std::memory_order_relaxed);
      }
      parent->count.store(static_cast<int32_t>(end - start - 1),
                          std::memory_order_relaxed);
      parents.push_back(parent);
    }
    level = std::move(parents);
    ++height;
  }
  height_.store(height, std::memory_order_relaxed);
  root_.store(level.front(), std::memory_order_release);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reads.
// ---------------------------------------------------------------------------

bool BTreeIndex::ScanAttempt(int64_t lo, int64_t hi, std::vector<RowId>* out,
                             int64_t* leaves_touched) const {
  Node* node = root_.load(std::memory_order_acquire);
  if (node == nullptr) return true;
  uint64_t v = StableVersion(node);
  while (!node->is_leaf) {
    // lower_bound, not upper_bound: with duplicate keys the separator value
    // can also appear in the child to its left (splits cut runs of equal
    // keys), so the search for the *first* occurrence must descend left of
    // any separator equal to the key. The leaf chain covers the rest.
    const int32_t count = node->count.load(std::memory_order_relaxed);
    const size_t i = LowerBoundKeys(*node, lo, count);
    Node* child = node->children[i].load(std::memory_order_relaxed);
    if (!ValidateVersion(node, v)) return false;
    if (child == nullptr) return false;  // torn read; restart
    const uint64_t cv = StableVersion(child);
    if (!ValidateVersion(node, v)) return false;
    node = child;
    v = cv;
  }
  while (true) {
    const int32_t count = node->count.load(std::memory_order_relaxed);
    const size_t out_mark = out->size();
    const size_t start = LowerBoundKeys(*node, lo, count);
    bool past_end = false;
    for (size_t i = start; i < static_cast<size_t>(count); ++i) {
      const int64_t key = node->keys[i].load(std::memory_order_relaxed);
      if (key > hi) {
        past_end = true;
        break;
      }
      out->push_back(node->values[i].load(std::memory_order_relaxed));
    }
    const int64_t back_key =
        count > 0
            ? node->keys[static_cast<size_t>(count - 1)].load(
                  std::memory_order_relaxed)
            : 0;
    Node* next = node->next_leaf.load(std::memory_order_relaxed);
    if (!ValidateVersion(node, v)) {
      out->resize(out_mark);
      return false;
    }
    ++*leaves_touched;
    if (past_end) return true;
    if (count > 0 && back_key > hi) return true;
    if (next == nullptr) return true;
    const uint64_t nv = StableVersion(next);
    if (!ValidateVersion(node, v)) return false;
    node = next;
    v = nv;
  }
}

int64_t BTreeIndex::RangeScan(int64_t lo, int64_t hi,
                              std::vector<RowId>* out) const {
  if (lo > hi) return 0;
  const size_t base = out->size();
  while (true) {
    out->resize(base);
    int64_t leaves_touched = 0;
    if (ScanAttempt(lo, hi, out, &leaves_touched)) return leaves_touched;
    read_restarts_.fetch_add(1, std::memory_order_relaxed);
    CpuRelax();
  }
}

int64_t BTreeIndex::Lookup(int64_t key, std::vector<RowId>* out) const {
  return RangeScan(key, key, out);
}

// ---------------------------------------------------------------------------
// Invariants.
// ---------------------------------------------------------------------------

Status BTreeIndex::CheckNode(const Node* node, int depth, int64_t lo,
                             int64_t hi, int leaf_depth) const {
  const int32_t count = node->count.load(std::memory_order_acquire);
  int64_t prev = INT64_MIN;
  for (int32_t i = 0; i < count; ++i) {
    const int64_t k =
        node->keys[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (k < prev) return Status::Internal("keys not sorted");
    prev = k;
    if (k < lo || k > hi) return Status::Internal("key outside bounds");
  }
  if (count > fanout_) {
    return Status::Internal("node overflow");
  }
  if (node->is_leaf) {
    if (depth != leaf_depth) return Status::Internal("uneven leaf depth");
    return Status::OK();
  }
  for (int32_t i = 0; i <= count; ++i) {
    const Node* child = node->children[static_cast<size_t>(i)].load(
        std::memory_order_relaxed);
    if (child == nullptr) return Status::Internal("missing child");
    const int64_t child_lo =
        (i == 0) ? lo
                 : node->keys[static_cast<size_t>(i - 1)].load(
                       std::memory_order_relaxed);
    // Duplicates may straddle a separator, so the left child's bound is
    // inclusive of the separator value.
    const int64_t child_hi =
        (i == count) ? hi
                     : node->keys[static_cast<size_t>(i)].load(
                           std::memory_order_relaxed);
    Status st = CheckNode(child, depth + 1, child_lo,
                          std::max(child_lo, child_hi), leaf_depth);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status BTreeIndex::CheckInvariants() const {
  const Node* root = root_.load(std::memory_order_acquire);
  if (root == nullptr) {
    if (entry_count() != 0 || leaf_count() != 0) {
      return Status::Internal("empty tree with nonzero counts");
    }
    return Status::OK();
  }
  // Leaf depth = height_ - 1 when root counts as depth 0.
  Status st = CheckNode(root, 0, INT64_MIN, INT64_MAX, height() - 1);
  if (!st.ok()) return st;
  // Walk the leaf chain: total entries and leaf count must match, and the
  // concatenated key sequence must be globally sorted.
  const Node* leaf = root;
  while (!leaf->is_leaf) {
    leaf = leaf->children[0].load(std::memory_order_relaxed);
  }
  int64_t entries = 0, leaves = 0;
  int64_t prev = INT64_MIN;
  while (leaf != nullptr) {
    ++leaves;
    const int32_t count = leaf->count.load(std::memory_order_acquire);
    for (int32_t i = 0; i < count; ++i) {
      const int64_t k =
          leaf->keys[static_cast<size_t>(i)].load(std::memory_order_relaxed);
      if (k < prev) return Status::Internal("leaf chain not sorted");
      prev = k;
      ++entries;
    }
    leaf = leaf->next_leaf.load(std::memory_order_relaxed);
  }
  if (entries != entry_count()) {
    return Status::Internal("entry count mismatch");
  }
  if (leaves != leaf_count()) return Status::Internal("leaf count mismatch");
  return Status::OK();
}

}  // namespace colt
