#include "index/btree.h"

#include <algorithm>
#include <cassert>

namespace colt {

struct BTreeIndex::Node {
  bool is_leaf = true;
  std::vector<int64_t> keys;
  // Leaf: values[i] corresponds to keys[i].
  std::vector<RowId> values;
  // Internal: children.size() == keys.size() + 1; subtree children[i] holds
  // keys < keys[i]; children[i+1] holds keys >= keys[i].
  std::vector<Node*> children;
  Node* next_leaf = nullptr;
};

BTreeIndex::BTreeIndex(int32_t fanout) : fanout_(std::max(4, fanout)) {}

BTreeIndex::~BTreeIndex() { FreeTree(root_); }

BTreeIndex::BTreeIndex(BTreeIndex&& other) noexcept
    : root_(other.root_),
      fanout_(other.fanout_),
      entry_count_(other.entry_count_),
      leaf_count_(other.leaf_count_),
      height_(other.height_) {
  other.root_ = nullptr;
  other.entry_count_ = 0;
  other.leaf_count_ = 0;
  other.height_ = 0;
}

BTreeIndex& BTreeIndex::operator=(BTreeIndex&& other) noexcept {
  if (this != &other) {
    FreeTree(root_);
    root_ = other.root_;
    fanout_ = other.fanout_;
    entry_count_ = other.entry_count_;
    leaf_count_ = other.leaf_count_;
    height_ = other.height_;
    other.root_ = nullptr;
    other.entry_count_ = 0;
    other.leaf_count_ = 0;
    other.height_ = 0;
  }
  return *this;
}

void BTreeIndex::FreeTree(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    for (Node* c : node->children) FreeTree(c);
  }
  delete node;
}

void BTreeIndex::SplitChild(Node* parent, int32_t i) {
  Node* child = parent->children[i];
  Node* right = new Node();
  right->is_leaf = child->is_leaf;
  const size_t mid = child->keys.size() / 2;
  int64_t separator;
  if (child->is_leaf) {
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->values.assign(child->values.begin() + mid, child->values.end());
    child->keys.resize(mid);
    child->values.resize(mid);
    right->next_leaf = child->next_leaf;
    child->next_leaf = right;
    ++leaf_count_;
  } else {
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    right->children.assign(child->children.begin() + mid + 1,
                           child->children.end());
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }
  parent->keys.insert(parent->keys.begin() + i, separator);
  parent->children.insert(parent->children.begin() + i + 1, right);
}

void BTreeIndex::InsertNonFull(Node* node, int64_t key, RowId row) {
  while (!node->is_leaf) {
    // Descend to the child that should contain `key`.
    size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key) -
               node->keys.begin();
    Node* child = node->children[i];
    if (static_cast<int32_t>(child->keys.size()) >= fanout_) {
      SplitChild(node, static_cast<int32_t>(i));
      if (key >= node->keys[i]) ++i;
      child = node->children[i];
    }
    node = child;
  }
  const size_t pos =
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin();
  node->keys.insert(node->keys.begin() + pos, key);
  node->values.insert(node->values.begin() + pos, row);
  ++entry_count_;
}

void BTreeIndex::Insert(int64_t key, RowId row) {
  if (root_ == nullptr) {
    root_ = new Node();
    leaf_count_ = 1;
    height_ = 1;
  }
  if (static_cast<int32_t>(root_->keys.size()) >= fanout_) {
    Node* new_root = new Node();
    new_root->is_leaf = false;
    new_root->children.push_back(root_);
    root_ = new_root;
    ++height_;
    SplitChild(root_, 0);
  }
  InsertNonFull(root_, key, row);
}

Status BTreeIndex::BulkLoad(std::vector<std::pair<int64_t, RowId>> entries) {
  if (root_ != nullptr) {
    return Status::FailedPrecondition("BulkLoad requires an empty tree");
  }
  std::sort(entries.begin(), entries.end());
  if (entries.empty()) return Status::OK();

  // Build the leaf level.
  std::vector<Node*> level;
  const size_t per_leaf = static_cast<size_t>(fanout_);
  for (size_t start = 0; start < entries.size(); start += per_leaf) {
    const size_t end = std::min(entries.size(), start + per_leaf);
    Node* leaf = new Node();
    leaf->keys.reserve(end - start);
    leaf->values.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      leaf->keys.push_back(entries[i].first);
      leaf->values.push_back(entries[i].second);
    }
    if (!level.empty()) level.back()->next_leaf = leaf;
    level.push_back(leaf);
  }
  leaf_count_ = static_cast<int64_t>(level.size());
  entry_count_ = static_cast<int64_t>(entries.size());
  height_ = 1;

  // Build internal levels bottom-up.
  while (level.size() > 1) {
    std::vector<Node*> parents;
    const size_t per_node = static_cast<size_t>(fanout_);
    for (size_t start = 0; start < level.size(); start += per_node + 1) {
      const size_t end = std::min(level.size(), start + per_node + 1);
      Node* parent = new Node();
      parent->is_leaf = false;
      for (size_t i = start; i < end; ++i) {
        if (i > start) {
          // Separator: smallest key reachable in child i's subtree.
          const Node* c = level[i];
          while (!c->is_leaf) c = c->children.front();
          parent->keys.push_back(c->keys.front());
        }
        parent->children.push_back(level[i]);
      }
      parents.push_back(parent);
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level.front();
  return Status::OK();
}

const BTreeIndex::Node* BTreeIndex::FindLeaf(int64_t key) const {
  const Node* node = root_;
  if (node == nullptr) return nullptr;
  while (!node->is_leaf) {
    // lower_bound, not upper_bound: with duplicate keys the separator value
    // can also appear in the child to its left (splits cut runs of equal
    // keys), so the search for the *first* occurrence must descend left of
    // any separator equal to the key. The leaf chain covers the rest.
    const size_t i =
        std::lower_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin();
    node = node->children[i];
  }
  return node;
}

int64_t BTreeIndex::RangeScan(int64_t lo, int64_t hi,
                              std::vector<RowId>* out) const {
  if (root_ == nullptr || lo > hi) return 0;
  const Node* leaf = FindLeaf(lo);
  int64_t leaves_touched = 0;
  while (leaf != nullptr) {
    ++leaves_touched;
    const size_t start =
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo) -
        leaf->keys.begin();
    bool past_end = false;
    for (size_t i = start; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] > hi) {
        past_end = true;
        break;
      }
      out->push_back(leaf->values[i]);
    }
    if (past_end) break;
    if (!leaf->keys.empty() && leaf->keys.back() > hi) break;
    leaf = leaf->next_leaf;
  }
  return leaves_touched;
}

int64_t BTreeIndex::Lookup(int64_t key, std::vector<RowId>* out) const {
  return RangeScan(key, key, out);
}

Status BTreeIndex::CheckNode(const Node* node, int depth, int64_t lo,
                             int64_t hi, int leaf_depth) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
    return Status::Internal("keys not sorted");
  }
  for (int64_t k : node->keys) {
    if (k < lo || k > hi) return Status::Internal("key outside bounds");
  }
  if (static_cast<int32_t>(node->keys.size()) > fanout_) {
    return Status::Internal("node overflow");
  }
  if (node->is_leaf) {
    if (depth != leaf_depth) return Status::Internal("uneven leaf depth");
    if (node->keys.size() != node->values.size()) {
      return Status::Internal("leaf key/value mismatch");
    }
    return Status::OK();
  }
  if (node->children.size() != node->keys.size() + 1) {
    return Status::Internal("internal child count mismatch");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const int64_t child_lo = (i == 0) ? lo : node->keys[i - 1];
    // Duplicates may straddle a separator, so the left child's bound is
    // inclusive of the separator value.
    const int64_t child_hi = (i == node->keys.size()) ? hi : node->keys[i];
    Status st =
        CheckNode(node->children[i], depth + 1, child_lo,
                  std::max(child_lo, child_hi), leaf_depth);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status BTreeIndex::CheckInvariants() const {
  if (root_ == nullptr) {
    if (entry_count_ != 0 || leaf_count_ != 0) {
      return Status::Internal("empty tree with nonzero counts");
    }
    return Status::OK();
  }
  // Leaf depth = height_ - 1 when root counts as depth 0.
  Status st = CheckNode(root_, 0, INT64_MIN, INT64_MAX, height_ - 1);
  if (!st.ok()) return st;
  // Walk the leaf chain: total entries and leaf count must match, and the
  // concatenated key sequence must be globally sorted.
  const Node* leaf = root_;
  while (!leaf->is_leaf) leaf = leaf->children.front();
  int64_t entries = 0, leaves = 0;
  int64_t prev = INT64_MIN;
  while (leaf != nullptr) {
    ++leaves;
    for (int64_t k : leaf->keys) {
      if (k < prev) return Status::Internal("leaf chain not sorted");
      prev = k;
      ++entries;
    }
    leaf = leaf->next_leaf;
  }
  if (entries != entry_count_) return Status::Internal("entry count mismatch");
  if (leaves != leaf_count_) return Status::Internal("leaf count mismatch");
  return Status::OK();
}

}  // namespace colt
