#ifndef COLT_COMMON_PERSIST_CHECKPOINT_H_
#define COLT_COMMON_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"

namespace colt {

/// A recovered checkpoint: the epoch it was taken at and the opaque
/// serialized payload (the tuner's SaveState bytes).
struct CheckpointData {
  int64_t epoch = 0;
  std::string payload;
};

/// Durable checkpoint store: a small append-only write-ahead log plus two
/// alternating snapshot generations, all under one state directory.
///
/// Commit protocol (DESIGN.md §12):
///   1. append a BEGIN record (epoch, generation, payload length, payload
///      checksum) to wal.log and fsync it;
///   2. write the full snapshot to snap-<gen>.tmp, fsync, and atomically
///      rename it over snap-<gen>.bin (gen = epoch mod 2, so the previous
///      checkpoint's file is never touched);
///   3. append a COMMIT record and fsync.
/// A crash between any two steps leaves either the previous checkpoint
/// intact (steps 1-2) or the new one fully durable (step 3 is advisory:
/// a renamed snapshot that matches its BEGIN record is already valid).
///
/// Recovery walks the WAL newest-to-oldest, validates each referenced
/// snapshot (magic, format version, length, FNV-1a checksum, and agreement
/// with the WAL record), and returns the newest valid one. Corrupt or torn
/// candidates bump `persist.recovery.corrupt_snapshots` and recovery falls
/// back to the previous generation; when nothing is usable LoadLatest
/// returns kNotFound and the caller cold-starts.
///
/// Fault injection: when Options::faults is set, the fault sites in
/// fault_sites::kPersist* become reachable — short writes, failed fsyncs,
/// and crash points between protocol steps. At a crash point the store
/// calls Options::crash_hook (benches install _Exit to die for real; tests
/// leave it unset, in which case Commit aborts with kInternal and leaves
/// the directory exactly as a kill at that instant would).
///
/// Like the rest of the tuning stack the store is single-owner: it is not
/// internally synchronized.
class CheckpointStore {
 public:
  struct Options {
    /// Optional injector consulted at the persist fault sites. Not owned.
    FaultInjector* faults = nullptr;
    /// Invoked when an injected crash point fires, before Commit returns.
    std::function<void()> crash_hook;
  };

  explicit CheckpointStore(std::string dir);
  CheckpointStore(std::string dir, Options options);

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Creates the state directory if needed. Idempotent; called lazily by
  /// Commit/LoadLatest as well.
  Status Open();

  /// Durably records `payload` as the checkpoint for `epoch` using the
  /// WAL + atomic-rename protocol above. On error the previous checkpoint
  /// remains recoverable.
  Status Commit(int64_t epoch, std::string_view payload);

  /// Returns the newest valid checkpoint, kNotFound when the directory
  /// holds no usable state (fresh dir, or everything corrupt — the latter
  /// also bumps persist.recovery.corrupt_snapshots per rejected
  /// candidate). Never returns a payload whose checksum does not match.
  Result<CheckpointData> LoadLatest();

  const std::string& dir() const { return dir_; }

  /// Installs (or clears) the crash hook after construction. Benches use
  /// this to arm _Exit once the store is already owned by a tuner.
  void set_crash_hook(std::function<void()> hook) {
    options_.crash_hook = std::move(hook);
  }

  /// Snapshot/WAL format version; bumped on incompatible layout changes.
  static constexpr uint32_t kFormatVersion = 1;

  /// Path of the snapshot file for `generation` (0 or 1). Exposed for
  /// tests that corrupt snapshots on purpose.
  std::string SnapshotPath(uint32_t generation) const;
  std::string WalPath() const;

 private:
  struct WalRecord {
    uint32_t kind = 0;  // 1 = BEGIN, 2 = COMMIT
    int64_t epoch = 0;
    uint32_t generation = 0;
    uint64_t payload_length = 0;
    uint64_t payload_checksum = 0;
  };

  Status AppendWalRecord(const WalRecord& record);
  Status WriteSnapshot(const std::string& path, int64_t epoch,
                       std::string_view payload);
  /// Validates snap-<gen>.bin against a WAL record; fills `out` on success.
  Status ValidateSnapshot(const WalRecord& record, CheckpointData* out);
  /// Rewrites the WAL keeping only the newest records once it grows past
  /// the compaction threshold.
  Status MaybeCompactWal(size_t record_count);
  Status ReadWal(std::vector<WalRecord>* out);
  /// Returns OK normally; when the injected crash point `site` fires,
  /// invokes the crash hook and returns kInternal.
  Status CrashPoint(const char* site);

  std::string dir_;
  Options options_;
  bool opened_ = false;
};

}  // namespace colt

#endif  // COLT_COMMON_PERSIST_CHECKPOINT_H_
