#include "common/persist/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/persist/serializer.h"

namespace colt {

namespace {

constexpr uint32_t kWalMagic = 0x43455257;   // "WREC"
constexpr uint64_t kSnapMagic = 0x50414E53544C4F43ULL;  // "COLTSNAP"
constexpr uint32_t kWalBegin = 1;
constexpr uint32_t kWalCommit = 2;
/// Encoded WAL record size: magic, kind, epoch, generation, payload length,
/// payload checksum, record checksum.
constexpr size_t kWalRecordBytes = 4 + 4 + 8 + 4 + 8 + 8 + 8;
/// Compact once the WAL holds more records than this (keeps the "small
/// append-only epoch WAL" promise over arbitrarily long runs).
constexpr size_t kWalCompactThreshold = 64;

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

/// RAII FILE* so every error path closes the handle. The close result is
/// only meaningful on write paths, which call CheckingClose() explicitly
/// before relying on durability.
class File {
 public:
  File(const std::string& path, const char* mode)
      : path_(path), file_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    // Destructor close: cleanup after a failure already being reported, so
    // the close result cannot change the outcome.
    if (file_ != nullptr) fclose(file_);
  }
  bool ok() const { return file_ != nullptr; }
  FILE* get() const { return file_; }

  Status CheckingClose() {
    FILE* f = file_;
    file_ = nullptr;
    if (fclose(f) != 0) return ErrnoStatus("close failed for", path_);
    return Status::OK();
  }

  Status Sync() {
    if (fflush(file_) != 0) return ErrnoStatus("flush failed for", path_);
    if (fsync(fileno(file_)) != 0) return ErrnoStatus("fsync failed for", path_);
    return Status::OK();
  }

 private:
  std::string path_;
  FILE* file_;
};

/// fsync on the directory makes the rename itself durable.
Status SyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open failed for directory", dir);
  const int rc = fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync failed for directory", dir);
  return Status::OK();
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  File f(path, "rb");
  if (!f.ok()) return Status::NotFound("cannot open " + path);
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const size_t n = fread(buf, 1, sizeof(buf), f.get());
    out->append(buf, n);
    if (n < sizeof(buf)) {
      if (ferror(f.get()) != 0) return ErrnoStatus("read failed for", path);
      break;
    }
  }
  return Status::OK();
}

Counter* CorruptSnapshotCounter() {
  return MetricsRegistry::Default().GetCounter(
      "persist.recovery.corrupt_snapshots");
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir)
    : CheckpointStore(std::move(dir), Options{}) {}

CheckpointStore::CheckpointStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(std::move(options)) {}

std::string CheckpointStore::SnapshotPath(uint32_t generation) const {
  return dir_ + "/snap-" + std::to_string(generation) + ".bin";
}

std::string CheckpointStore::WalPath() const { return dir_ + "/wal.log"; }

Status CheckpointStore::Open() {
  if (opened_) return Status::OK();
  if (dir_.empty()) {
    return Status::InvalidArgument("checkpoint store needs a directory");
  }
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir failed for", dir_);
  }
  opened_ = true;
  return Status::OK();
}

Status CheckpointStore::CrashPoint(const char* site) {
  if (options_.faults == nullptr || !options_.faults->Fires(site)) {
    return Status::OK();
  }
  if (options_.crash_hook) options_.crash_hook();
  // The hook returned (test mode): abandon the commit exactly where the
  // process would have died.
  return Status::Internal(std::string("injected crash at ") + site);
}

Status CheckpointStore::AppendWalRecord(const WalRecord& record) {
  BinaryWriter body;
  body.WriteU32(kWalMagic);
  body.WriteU32(record.kind);
  body.WriteI64(record.epoch);
  body.WriteU32(record.generation);
  body.WriteU64(record.payload_length);
  body.WriteU64(record.payload_checksum);
  BinaryWriter full;
  full.WriteU64(Fnv1a64(body.buffer()));
  const std::string bytes = body.TakeBuffer() + full.buffer();

  File wal(WalPath(), "ab");
  if (!wal.ok()) return ErrnoStatus("open failed for", WalPath());
  size_t to_write = bytes.size();
  if (options_.faults != nullptr &&
      options_.faults->Fires(fault_sites::kPersistWalAppend)) {
    to_write /= 2;  // torn append: half the record reaches the disk
  }
  if (fwrite(bytes.data(), 1, to_write, wal.get()) != to_write) {
    return ErrnoStatus("write failed for", WalPath());
  }
  if (to_write != bytes.size()) {
    COLT_RETURN_IF_ERROR(wal.Sync());
    COLT_RETURN_IF_ERROR(wal.CheckingClose());
    return Status::Internal("injected short WAL append");
  }
  if (options_.faults != nullptr &&
      options_.faults->Fires(fault_sites::kPersistWalFsync)) {
    return Status::Internal("injected WAL fsync failure");
  }
  COLT_RETURN_IF_ERROR(wal.Sync());
  return wal.CheckingClose();
}

Status CheckpointStore::WriteSnapshot(const std::string& path, int64_t epoch,
                                      std::string_view payload) {
  BinaryWriter header;
  header.WriteU64(kSnapMagic);
  header.WriteU32(kFormatVersion);
  header.WriteI64(epoch);
  header.WriteU64(payload.size());
  header.WriteU64(Fnv1a64(payload));

  File snap(path, "wb");
  if (!snap.ok()) return ErrnoStatus("open failed for", path);
  size_t to_write = header.size() + payload.size();
  if (options_.faults != nullptr &&
      options_.faults->Fires(fault_sites::kPersistSnapshotWrite)) {
    to_write /= 2;  // short write: a torn prefix survives on disk
  }
  const size_t header_part = std::min(to_write, header.size());
  if (fwrite(header.buffer().data(), 1, header_part, snap.get()) !=
      header_part) {
    return ErrnoStatus("write failed for", path);
  }
  const size_t payload_part = to_write - header_part;
  if (fwrite(payload.data(), 1, payload_part, snap.get()) != payload_part) {
    return ErrnoStatus("write failed for", path);
  }
  if (to_write != header.size() + payload.size()) {
    COLT_RETURN_IF_ERROR(snap.Sync());
    COLT_RETURN_IF_ERROR(snap.CheckingClose());
    return Status::Internal("injected short snapshot write");
  }
  if (options_.faults != nullptr &&
      options_.faults->Fires(fault_sites::kPersistSnapshotFsync)) {
    return Status::Internal("injected snapshot fsync failure");
  }
  COLT_RETURN_IF_ERROR(snap.Sync());
  return snap.CheckingClose();
}

Status CheckpointStore::Commit(int64_t epoch, std::string_view payload) {
  COLT_RETURN_IF_ERROR(Open());
  WalRecord record;
  record.epoch = epoch;
  record.generation = static_cast<uint32_t>(epoch & 1);
  record.payload_length = payload.size();
  record.payload_checksum = Fnv1a64(payload);

  record.kind = kWalBegin;
  COLT_RETURN_IF_ERROR(AppendWalRecord(record));
  COLT_RETURN_IF_ERROR(CrashPoint(fault_sites::kPersistCrashAfterWalBegin));

  const std::string tmp =
      dir_ + "/snap-" + std::to_string(record.generation) + ".tmp";
  COLT_RETURN_IF_ERROR(WriteSnapshot(tmp, epoch, payload));
  COLT_RETURN_IF_ERROR(CrashPoint(fault_sites::kPersistCrashBeforeRename));
  const std::string final_path = SnapshotPath(record.generation);
  if (std::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("rename failed for", final_path);
  }
  COLT_RETURN_IF_ERROR(SyncDirectory(dir_));
  COLT_RETURN_IF_ERROR(CrashPoint(fault_sites::kPersistCrashAfterRename));

  record.kind = kWalCommit;
  COLT_RETURN_IF_ERROR(AppendWalRecord(record));

  std::vector<WalRecord> records;
  COLT_RETURN_IF_ERROR(ReadWal(&records));
  COLT_RETURN_IF_ERROR(MaybeCompactWal(records.size()));
  MetricsRegistry::Default().GetCounter("persist.commits")->Increment();
  return Status::OK();
}

Status CheckpointStore::ReadWal(std::vector<WalRecord>* out) {
  out->clear();
  std::string bytes;
  const Status read = ReadWholeFile(WalPath(), &bytes);
  if (read.code() == StatusCode::kNotFound) return Status::OK();  // fresh dir
  COLT_RETURN_IF_ERROR(read);
  BinaryReader reader(bytes);
  while (reader.remaining() >= kWalRecordBytes) {
    // A record that fails any structural check marks the torn tail of the
    // log; everything before it is still trustworthy.
    const std::string_view raw(bytes.data() + (bytes.size() -
                                               reader.remaining()),
                               kWalRecordBytes - 8);
    WalRecord record;
    uint32_t magic = 0;
    uint64_t checksum = 0;
    if (!reader.ReadU32(&magic).ok() || magic != kWalMagic) break;
    if (!reader.ReadU32(&record.kind).ok()) break;
    if (!reader.ReadI64(&record.epoch).ok()) break;
    if (!reader.ReadU32(&record.generation).ok()) break;
    if (!reader.ReadU64(&record.payload_length).ok()) break;
    if (!reader.ReadU64(&record.payload_checksum).ok()) break;
    if (!reader.ReadU64(&checksum).ok() || checksum != Fnv1a64(raw)) break;
    if (record.kind != kWalBegin && record.kind != kWalCommit) break;
    if (record.generation > 1) break;
    out->push_back(record);
  }
  return Status::OK();
}

Status CheckpointStore::MaybeCompactWal(size_t record_count) {
  if (record_count <= kWalCompactThreshold) return Status::OK();
  std::vector<WalRecord> records;
  COLT_RETURN_IF_ERROR(ReadWal(&records));
  // Keep every record at or after the second-newest committed epoch, so
  // both snapshot generations stay recoverable (with their BEGIN/COMMIT
  // pairs intact) after compaction.
  int64_t newest = INT64_MIN, second = INT64_MIN;
  for (const WalRecord& record : records) {
    if (record.kind != kWalCommit) continue;
    if (record.epoch > newest) {
      second = newest;
      newest = record.epoch;
    } else if (record.epoch > second && record.epoch != newest) {
      second = record.epoch;
    }
  }
  const int64_t threshold = second != INT64_MIN ? second : newest;
  const std::string tmp = dir_ + "/wal.tmp";
  {
    File out(tmp, "wb");
    if (!out.ok()) return ErrnoStatus("open failed for", tmp);
    for (const WalRecord& record : records) {
      if (record.epoch < threshold) continue;
      BinaryWriter body;
      body.WriteU32(kWalMagic);
      body.WriteU32(record.kind);
      body.WriteI64(record.epoch);
      body.WriteU32(record.generation);
      body.WriteU64(record.payload_length);
      body.WriteU64(record.payload_checksum);
      BinaryWriter full;
      full.WriteU64(Fnv1a64(body.buffer()));
      const std::string bytes = body.TakeBuffer() + full.buffer();
      if (fwrite(bytes.data(), 1, bytes.size(), out.get()) != bytes.size()) {
        return ErrnoStatus("write failed for", tmp);
      }
    }
    COLT_RETURN_IF_ERROR(out.Sync());
    COLT_RETURN_IF_ERROR(out.CheckingClose());
  }
  if (std::rename(tmp.c_str(), WalPath().c_str()) != 0) {
    return ErrnoStatus("rename failed for", WalPath());
  }
  COLT_RETURN_IF_ERROR(SyncDirectory(dir_));
  MetricsRegistry::Default().GetCounter("persist.wal.compactions")
      ->Increment();
  return Status::OK();
}

Status CheckpointStore::ValidateSnapshot(const WalRecord& record,
                                         CheckpointData* out) {
  const std::string path = SnapshotPath(record.generation);
  std::string bytes;
  COLT_RETURN_IF_ERROR(ReadWholeFile(path, &bytes));
  BinaryReader reader(bytes);
  uint64_t magic = 0;
  COLT_RETURN_IF_ERROR(reader.ReadU64(&magic));
  if (magic != kSnapMagic) {
    return Status::InvalidArgument("bad snapshot magic in " + path);
  }
  uint32_t version = 0;
  COLT_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot format version " +
                                   std::to_string(version) + " in " + path);
  }
  int64_t epoch = 0;
  COLT_RETURN_IF_ERROR(reader.ReadI64(&epoch));
  uint64_t length = 0;
  COLT_RETURN_IF_ERROR(reader.ReadU64(&length));
  uint64_t checksum = 0;
  COLT_RETURN_IF_ERROR(reader.ReadU64(&checksum));
  if (epoch != record.epoch || length != record.payload_length ||
      checksum != record.payload_checksum) {
    return Status::InvalidArgument("snapshot " + path +
                                   " does not match its WAL record");
  }
  if (length != reader.remaining()) {
    return Status::InvalidArgument("snapshot " + path + " truncated: header "
                                   "promises " + std::to_string(length) +
                                   " payload bytes, file holds " +
                                   std::to_string(reader.remaining()));
  }
  std::string payload(bytes.data() + (bytes.size() - reader.remaining()),
                      reader.remaining());
  if (Fnv1a64(payload) != checksum) {
    return Status::InvalidArgument("snapshot " + path + " failed checksum");
  }
  out->epoch = epoch;
  out->payload = std::move(payload);
  return Status::OK();
}

Result<CheckpointData> CheckpointStore::LoadLatest() {
  COLT_RETURN_IF_ERROR(Open());
  std::vector<WalRecord> records;
  COLT_RETURN_IF_ERROR(ReadWal(&records));
  if (records.empty()) {
    return Status::NotFound("no checkpoint in " + dir_);
  }
  // Which BEGIN records have a matching COMMIT.
  std::vector<bool> committed(records.size(), false);
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].kind != kWalCommit) continue;
    for (size_t j = i; j-- > 0;) {
      if (records[j].kind == kWalBegin &&
          records[j].epoch == records[i].epoch &&
          records[j].generation == records[i].generation) {
        committed[j] = true;
        break;
      }
    }
  }
  // Candidates newest-to-oldest: the newest BEGIN per generation (its
  // snapshot is whatever last landed in snap-<gen>.bin), plus — when that
  // BEGIN never committed (a crash mid-protocol) — the previous BEGIN for
  // the same generation, whose snapshot the aborted commit never replaced.
  struct Candidate {
    WalRecord record;
    bool committed;
  };
  std::vector<Candidate> candidates;
  size_t taken_per_gen[2] = {0, 0};
  size_t want_per_gen[2] = {1, 1};
  for (size_t i = records.size(); i-- > 0;) {
    const WalRecord& record = records[i];
    if (record.kind != kWalBegin) continue;
    const uint32_t gen = record.generation;
    if (taken_per_gen[gen] >= want_per_gen[gen]) continue;
    ++taken_per_gen[gen];
    if (!committed[i]) ++want_per_gen[gen];
    candidates.push_back({record, committed[i]});
  }
  CheckpointData data;
  for (const Candidate& candidate : candidates) {
    const Status valid = ValidateSnapshot(candidate.record, &data);
    if (valid.ok()) return data;
    // A committed checkpoint failing validation is corruption; an
    // uncommitted BEGIN whose snapshot never landed is the expected shape
    // of a crash mid-protocol and falls through silently.
    if (candidate.committed) {
      CorruptSnapshotCounter()->Increment();
      COLT_LOG(Warning) << "committed checkpoint for epoch "
                        << candidate.record.epoch
                        << " rejected: " << valid.ToString();
    }
  }
  return Status::NotFound("no usable checkpoint in " + dir_ +
                          " (no candidate validated)");
}

}  // namespace colt
