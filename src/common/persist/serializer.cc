#include "common/persist/serializer.h"

namespace colt {

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Fnv1a64(std::string_view bytes) {
  return Fnv1a64(bytes, kFnv1a64Seed);
}

Status BinaryReader::Take(size_t n, const char** out) {
  if (n > remaining()) {
    return Status::InvalidArgument(
        "snapshot truncated: need " + std::to_string(n) + " bytes at offset " +
        std::to_string(pos_) + ", have " + std::to_string(remaining()));
  }
  *out = bytes_.data() + pos_;
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadU32(uint32_t* out) {
  const char* p = nullptr;
  COLT_RETURN_IF_ERROR(Take(4, &p));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  *out = v;
  return Status::OK();
}

Status BinaryReader::ReadU64(uint64_t* out) {
  const char* p = nullptr;
  COLT_RETURN_IF_ERROR(Take(8, &p));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  *out = v;
  return Status::OK();
}

Status BinaryReader::ReadI64(int64_t* out) {
  uint64_t v = 0;
  COLT_RETURN_IF_ERROR(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status BinaryReader::ReadDouble(double* out) {
  uint64_t bits = 0;
  COLT_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status BinaryReader::ReadBool(bool* out) {
  const char* p = nullptr;
  COLT_RETURN_IF_ERROR(Take(1, &p));
  const uint8_t v = static_cast<uint8_t>(*p);
  if (v > 1) {
    return Status::InvalidArgument("corrupt bool value " + std::to_string(v) +
                                   " at offset " + std::to_string(pos_ - 1));
  }
  *out = v == 1;
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* out) {
  uint64_t len = 0;
  COLT_RETURN_IF_ERROR(ReadU64(&len));
  if (len > remaining()) {
    return Status::InvalidArgument(
        "corrupt string length " + std::to_string(len) + " at offset " +
        std::to_string(pos_ - 8) + " exceeds remaining " +
        std::to_string(remaining()));
  }
  const char* p = nullptr;
  COLT_RETURN_IF_ERROR(Take(static_cast<size_t>(len), &p));
  out->assign(p, static_cast<size_t>(len));
  return Status::OK();
}

Status BinaryReader::ExpectTag(uint32_t tag) {
  uint32_t got = 0;
  COLT_RETURN_IF_ERROR(ReadU32(&got));
  if (got != tag) {
    return Status::InvalidArgument(
        "section tag mismatch at offset " + std::to_string(pos_ - 4) +
        ": expected " + std::to_string(tag) + ", found " +
        std::to_string(got));
  }
  return Status::OK();
}

}  // namespace colt
