#ifndef COLT_COMMON_PERSIST_SERIALIZER_H_
#define COLT_COMMON_PERSIST_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace colt {

/// FNV-1a 64-bit hash; the checksum used throughout the persistence layer
/// (snapshot payloads, WAL records) and for catalog fingerprints.
uint64_t Fnv1a64(std::string_view bytes);
/// Incremental form: fold more bytes into a running hash.
uint64_t Fnv1a64(std::string_view bytes, uint64_t seed);
/// Seed value of the empty hash.
inline constexpr uint64_t kFnv1a64Seed = 1469598103934665603ULL;

/// Append-only binary encoder backing SaveState() implementations.
///
/// Encoding rules (little-endian, fixed width — the format is explicit so
/// DESIGN.md §12 can specify it byte-for-byte):
///  * u32/u64/i64: little-endian two's complement;
///  * double: IEEE-754 bit pattern as u64 (bit-exact round-trip, the
///    property the deterministic-recovery contract rests on);
///  * bool: one byte, 0 or 1 (readers reject other values);
///  * string: u64 byte length followed by the raw bytes.
/// Writing cannot fail: the buffer lives in memory; durability is the
/// CheckpointStore's job.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v) { AppendLittleEndian(v, 4); }
  void WriteU64(uint64_t v) { AppendLittleEndian(v, 8); }
  void WriteI64(int64_t v) { AppendLittleEndian(static_cast<uint64_t>(v), 8); }
  void WriteDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }
  void WriteBool(bool v) { buffer_.push_back(v ? '\x01' : '\x00'); }
  void WriteString(std::string_view s) {
    WriteU64(s.size());
    buffer_.append(s.data(), s.size());
  }

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  void AppendLittleEndian(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buffer_;
};

/// Bounds-checked decoder over a byte buffer. Every read returns a Status
/// instead of asserting, so corrupt or truncated snapshots surface as
/// recoverable errors (cold-start fallback), never as crashes.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view bytes) : bytes_(bytes) {}

  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadI64(int64_t* out);
  Status ReadDouble(double* out);
  Status ReadBool(bool* out);
  /// Reads a length-prefixed string. Rejects lengths that exceed the
  /// remaining bytes before allocating.
  Status ReadString(std::string* out);

  /// Reads a u32 and fails with kInvalidArgument unless it equals `tag`.
  /// Section tags make field-order corruption fail fast with a useful
  /// message.
  Status ExpectTag(uint32_t tag);

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Take(size_t n, const char** out);

  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace colt

#endif  // COLT_COMMON_PERSIST_SERIALIZER_H_
