#include "common/thread_pool.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace colt {

namespace {

/// Best-effort pin of `thread` to one CPU; failures are ignored (the
/// worker simply stays unpinned, e.g. in a restricted cpuset).
void PinThreadToCpu([[maybe_unused]] std::thread* thread,
                    [[maybe_unused]] int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<size_t>(cpu) %
              static_cast<size_t>(ThreadPool::HardwareConcurrency()),
          &set);
  [[maybe_unused]] const int rc =
      pthread_setaffinity_np(thread->native_handle(), sizeof(set), &set);
#endif
}

}  // namespace

ThreadPool::ThreadPool(int num_workers, bool pin_workers) {
  if (num_workers < 1) return;  // inline mode
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
    if (pin_workers) PinThreadToCpu(&workers_.back(), i);
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain the queue even during shutdown: every submitted task has a
      // future someone may get() on.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Rng ThreadPool::TaskRng(uint64_t parent_seed, uint64_t task_index) {
  // Golden-ratio stride separates the streams; Rng's splitmix64 seeding
  // then decorrelates them. Using task_index + 1 keeps task 0 distinct
  // from the parent stream itself.
  return Rng(parent_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1));
}

int ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace colt
