#ifndef COLT_COMMON_LOGGING_H_
#define COLT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace colt {

/// Severity levels for the minimal logging facility.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// The single serialized sink every COLT_LOG line goes through: one
/// mutex-guarded write of the whole line (newline included) to stderr.
/// Worker-pool tasks and the owner thread may log concurrently during
/// chaos/fault runs; per-line serialization keeps their output from
/// interleaving mid-line. The level gate has already been applied.
void EmitLogLine(LogLevel level, const std::string& line);

/// Stream-style log message; emits through EmitLogLine on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }

  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      EmitLogLine(level_, stream_.str());
    }
    if (fatal_) std::abort();
  }

  std::ostringstream& stream() { return stream_; }

  LogMessage& MarkFatal() {
    fatal_ = true;
    return *this;
  }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  bool fatal_ = false;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define COLT_LOG(level)                                                  \
  ::colt::internal_logging::LogMessage(::colt::LogLevel::k##level,       \
                                       __FILE__, __LINE__)               \
      .stream()

/// Always-on invariant check (active in release builds too); aborts with a
/// message when `cond` is false.
#define COLT_CHECK(cond)                                                  \
  if (!(cond))                                                            \
  ::colt::internal_logging::LogMessage(::colt::LogLevel::kError, __FILE__, \
                                       __LINE__)                          \
      .MarkFatal()                                                        \
      .stream()                                                           \
      << "Check failed: " #cond " "

}  // namespace colt

#endif  // COLT_COMMON_LOGGING_H_
