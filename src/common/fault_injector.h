#ifndef COLT_COMMON_FAULT_INJECTOR_H_
#define COLT_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/persist/serializer.h"
#include "common/rng.h"
#include "common/status.h"

namespace colt {

/// Canonical fault-site names. Sites are free-form strings so experiments
/// can add their own; these are the ones the tuning stack consults.
namespace fault_sites {
/// An index build attempt fails (Scheduler retry/backoff/quarantine path).
inline constexpr char kIndexBuild[] = "index.build";
/// An index build succeeds but takes `multiplier` times longer.
inline constexpr char kIndexBuildSlow[] = "index.build.slow";
/// A what-if optimizer call fails (Profiler degrades to the crude level-1
/// estimate; the call's time is still charged — it was issued and wasted).
inline constexpr char kWhatIfOptimize[] = "whatif.optimize";
/// A what-if call is issued but takes `multiplier` times longer (interacts
/// with ColtConfig::whatif_deadline_seconds).
inline constexpr char kWhatIfSlow[] = "whatif.optimize.slow";
/// A storage scan is degraded: query execution time is inflated by
/// `multiplier` (simulates I/O interference from co-located work).
inline constexpr char kStorageScan[] = "storage.scan";
/// The on-line storage budget shrinks mid-run to `multiplier` times its
/// current value (operator reclaims disk; COLT must evict to fit).
inline constexpr char kBudgetShrink[] = "budget.shrink";
/// A WAL append is torn: only a prefix of the record reaches the disk.
inline constexpr char kPersistWalAppend[] = "persist.wal.append";
/// The WAL fsync fails after a complete append.
inline constexpr char kPersistWalFsync[] = "persist.wal.fsync";
/// A snapshot write is short: a torn prefix of the file survives.
inline constexpr char kPersistSnapshotWrite[] = "persist.snapshot.short_write";
/// The snapshot fsync fails after a complete write.
inline constexpr char kPersistSnapshotFsync[] = "persist.snapshot.fsync";
/// Process dies between the WAL BEGIN append and the snapshot write.
inline constexpr char kPersistCrashAfterWalBegin[] =
    "persist.crash.after_wal_begin";
/// Process dies after the snapshot tmp write, before the atomic rename.
inline constexpr char kPersistCrashBeforeRename[] =
    "persist.crash.before_rename";
/// Process dies after the rename, before the WAL COMMIT append.
inline constexpr char kPersistCrashAfterRename[] =
    "persist.crash.after_rename";
}  // namespace fault_sites

/// One site's fault behaviour. A rule fires independently on each check
/// with `probability`, drawn from a per-site deterministic stream.
struct FaultRule {
  /// Per-check probability of firing, in [0, 1].
  double probability = 0.0;
  /// Payload for latency/shrink sites: latency factor (>= 1) for `*.slow`
  /// and `storage.scan`, budget factor (in (0, 1]) for `budget.shrink`.
  /// Ignored by pure-failure sites.
  double multiplier = 1.0;
  /// Status code of injected failures. Only kInternal and
  /// kResourceExhausted are treated as transient (retryable) by the
  /// Scheduler; other codes propagate like programmer errors.
  StatusCode code = StatusCode::kInternal;
  /// The rule stops firing after this many fires; < 0 means unlimited.
  int64_t max_fires = -1;
  /// The rule never fires on the first `skip_checks` checks of its site
  /// (the stream still advances check-for-check). Combined with
  /// probability 1 and max_fires 1 this pins a fault to exactly the N-th
  /// check — how the crash-recovery bench schedules its kill points.
  int64_t skip_checks = 0;
};

/// A full fault-injection plan: off by default, explicitly seeded.
struct FaultConfig {
  /// Master switch. When false every injector API is a constant-time
  /// no-op — no RNG draws, no state changes — so a disabled run is
  /// bit-identical to a build without fault injection at all.
  bool enabled = false;
  /// Seed for the per-site deterministic streams.
  uint64_t seed = 0x5eed;
  std::map<std::string, FaultRule, std::less<>> rules;

  /// Convenience: adds/overwrites a failure rule for `site`.
  FaultConfig& Fail(std::string site, double probability,
                    int64_t max_fires = -1) {
    FaultRule rule;
    rule.probability = probability;
    rule.max_fires = max_fires;
    rules[std::move(site)] = rule;
    enabled = true;
    return *this;
  }
  /// Convenience: adds/overwrites a latency/shrink rule for `site`.
  FaultConfig& Slow(std::string site, double probability, double multiplier) {
    FaultRule rule;
    rule.probability = probability;
    rule.multiplier = multiplier;
    rules[std::move(site)] = rule;
    enabled = true;
    return *this;
  }
  /// Convenience: fires exactly once, on the `check_number`-th check of
  /// `site` (1-based).
  FaultConfig& FireOnCheck(std::string site, int64_t check_number) {
    FaultRule rule;
    rule.probability = 1.0;
    rule.max_fires = 1;
    rule.skip_checks = check_number - 1;
    rules[std::move(site)] = rule;
    enabled = true;
    return *this;
  }
};

/// Deterministic, site-keyed fault injector.
///
/// Each configured site owns an independent RNG stream derived from
/// (config seed, site name), so the k-th check of a site yields the same
/// verdict no matter how checks of other sites interleave with it. That
/// makes chaos experiments reproducible and lets tests pin exact failure
/// schedules.
///
/// Thread-compatibility: like the rest of the tuning stack, an injector is
/// confined to one tuner instance; it is not internally synchronized.
class FaultInjector {
 public:
  /// Disabled injector (every check is a no-op).
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig config);

  bool enabled() const { return enabled_; }
  const FaultConfig& config() const { return config_; }

  /// Bernoulli draw on `site`'s private stream. Always false when the
  /// injector is disabled or the site has no rule.
  bool Fires(std::string_view site);

  /// Returns OK, or the site's configured failure Status when it fires.
  Status MaybeFail(std::string_view site);

  /// Returns the site's multiplier when it fires, 1.0 otherwise.
  double Multiplier(std::string_view site);

  /// Times `site` fired so far (0 for unknown sites).
  int64_t fire_count(std::string_view site) const;
  /// Times `site` was checked so far (0 for unknown sites; checks on sites
  /// without a rule are not tracked — they must stay zero-cost).
  int64_t check_count(std::string_view site) const;
  /// Total fires across all sites.
  int64_t total_fires() const { return total_fires_; }

  /// Serializes the dynamic per-site state (stream positions, check/fire
  /// counts) for crash-safe persistence. Rules are NOT serialized: they
  /// are reconstructed from the config on restart, and persisted state for
  /// sites absent from the restart config is skipped.
  void SaveState(BinaryWriter* writer) const;
  Status LoadState(BinaryReader* reader);

 private:
  struct SiteState {
    FaultRule rule;
    Rng rng{0};
    int64_t checks = 0;
    int64_t fires = 0;
  };

  /// The site's state, or nullptr when disabled / no rule configured.
  SiteState* Roll(std::string_view site);

  bool enabled_ = false;
  FaultConfig config_;
  std::map<std::string, SiteState, std::less<>> sites_;
  int64_t total_fires_ = 0;
};

}  // namespace colt

#endif  // COLT_COMMON_FAULT_INJECTOR_H_
