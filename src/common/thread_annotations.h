#ifndef COLT_COMMON_THREAD_ANNOTATIONS_H_
#define COLT_COMMON_THREAD_ANNOTATIONS_H_

/// Thread-role and lock-discipline annotations (DESIGN.md §14).
///
/// Two independent annotation families live here:
///
/// 1. Thread-role macros — COLT_OWNER_ONLY, COLT_WORKER_SAFE,
///    COLT_THREAD_NEUTRAL. These expand to nothing for the compiler; they
///    are contracts read by the colt_lint thread-role analyzer
///    (tools/colt_lint/thread_roles.cc), which builds a cross-file call
///    graph and proves that pool-executed code never reaches owner-only
///    APIs, never emits provenance, never touches the default metrics
///    registry, and never draws randomness outside ThreadPool::TaskRng.
///    The determinism guarantees of DESIGN.md §10 (bit-identical CSVs at
///    every worker count) rest on this discipline; annotating it makes it
///    machine-checked instead of reviewer-remembered.
///
///    Placement: immediately before the declaration (preferred, in the
///    header) or the definition. A definition inherits the role of its
///    declaration by qualified name.
///
/// 2. Clang Thread Safety Analysis macros — COLT_GUARDED_BY, COLT_REQUIRES,
///    COLT_EXCLUDES, etc. These expand to Clang's thread-safety attributes
///    when the compiler supports them (the dedicated -Wthread-safety CI
///    build) and to nothing elsewhere (gcc). They annotate the genuinely
///    locked corners of the tree — colt::Mutex users such as the thread
///    pool's queue and the logging sink — so lock misuse is a compile
///    error under clang rather than a TSan-visible race later.

// --------------------------------------------------------------------------
// Thread-role contracts (colt_lint, no compiler effect).
// --------------------------------------------------------------------------

/// Runs only on the owner (tuning) thread. May mutate shared state, emit
/// provenance, touch MetricsRegistry::Default(), and call anything.
#define COLT_OWNER_ONLY

/// May run on a pool worker during a fan-out. Must not call owner-only
/// APIs, emit provenance events, touch the default metrics registry, or
/// draw from any RNG other than a ThreadPool::TaskRng stream. A const
/// worker-safe method must stay genuinely pure (no mutable-member writes).
#define COLT_WORKER_SAFE

/// Stateless (or per-object, caller-synchronized) helper callable from any
/// thread; same restrictions as COLT_WORKER_SAFE.
#define COLT_THREAD_NEUTRAL

// --------------------------------------------------------------------------
// Clang Thread Safety Analysis attributes (no-ops outside clang).
// --------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define COLT_TS_ATTRIBUTE__(x) __attribute__((x))
#else
#define COLT_TS_ATTRIBUTE__(x)  // no-op
#endif

#define COLT_CAPABILITY(x) COLT_TS_ATTRIBUTE__(capability(x))

#define COLT_SCOPED_CAPABILITY COLT_TS_ATTRIBUTE__(scoped_lockable)

#define COLT_GUARDED_BY(x) COLT_TS_ATTRIBUTE__(guarded_by(x))

#define COLT_PT_GUARDED_BY(x) COLT_TS_ATTRIBUTE__(pt_guarded_by(x))

#define COLT_ACQUIRED_BEFORE(...) \
  COLT_TS_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define COLT_ACQUIRED_AFTER(...) \
  COLT_TS_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define COLT_REQUIRES(...) \
  COLT_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define COLT_REQUIRES_SHARED(...) \
  COLT_TS_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define COLT_ACQUIRE(...) \
  COLT_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define COLT_ACQUIRE_SHARED(...) \
  COLT_TS_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define COLT_RELEASE(...) \
  COLT_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define COLT_RELEASE_SHARED(...) \
  COLT_TS_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define COLT_TRY_ACQUIRE(...) \
  COLT_TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define COLT_EXCLUDES(...) COLT_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define COLT_ASSERT_CAPABILITY(x) \
  COLT_TS_ATTRIBUTE__(assert_capability(x))

#define COLT_RETURN_CAPABILITY(x) COLT_TS_ATTRIBUTE__(lock_returned(x))

#define COLT_NO_THREAD_SAFETY_ANALYSIS \
  COLT_TS_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // COLT_COMMON_THREAD_ANNOTATIONS_H_
