#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/json_util.h"
#include "common/logging.h"

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace colt {

namespace {

double SteadyNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#if defined(__x86_64__)
// Seconds per TSC tick, calibrated once against steady_clock. Modern
// x86-64 TSCs are invariant (constant_tsc/nonstop_tsc), so a single
// short calibration holds for the process lifetime; ~0.1% calibration
// error is irrelevant for overhead histograms but a TSC read costs less
// than half of a clock_gettime-backed steady_clock read, which matters
// when timers wrap microsecond-scale pipeline stages.
double SecondsPerTick() {
  static const double seconds_per_tick = [] {
    const double t0 = SteadyNow();
    const uint64_t c0 = __rdtsc();
    double t1;
    do {
      t1 = SteadyNow();
    } while (t1 - t0 < 2e-3);
    const uint64_t c1 = __rdtsc();
    return (t1 - t0) / static_cast<double>(c1 - c0);
  }();
  return seconds_per_tick;
}
#endif

}  // namespace

double WallTimer::Now() {
#if defined(__x86_64__)
  return static_cast<double>(__rdtsc()) * SecondsPerTick();
#else
  return SteadyNow();
#endif
}

HistogramOptions HistogramOptions::Exponential(double first_upper,
                                               double growth, int buckets) {
  HistogramOptions options;
  double bound = first_upper;
  for (int i = 0; i < buckets; ++i) {
    options.upper_bounds.push_back(bound);
    bound *= growth;
  }
  return options;
}

HistogramOptions HistogramOptions::Linear(double lo, double hi, int buckets) {
  HistogramOptions options;
  const double width = (hi - lo) / buckets;
  for (int i = 1; i <= buckets; ++i) {
    options.upper_bounds.push_back(lo + width * i);
  }
  return options;
}

Histogram::Histogram(const bool* enabled, HistogramOptions options)
    : enabled_(enabled), upper_bounds_(std::move(options.upper_bounds)) {
  if (upper_bounds_.empty()) {
    upper_bounds_ = HistogramOptions::Exponential().upper_bounds;
  }
  buckets_.assign(upper_bounds_.size(), 0);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  overflow_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void Histogram::Record([[maybe_unused]] double value) {
#ifndef COLT_DISABLE_METRICS
  if (!*enabled_) return;
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  if (it == upper_bounds_.end()) {
    ++overflow_;
  } else {
    ++buckets_[static_cast<size_t>(it - upper_bounds_.begin())];
  }
#endif
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const int64_t before = cumulative;
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      const double lower = i == 0 ? 0.0 : upper_bounds_[i - 1];
      const double upper = upper_bounds_[i];
      const double fraction = (target - static_cast<double>(before)) /
                              static_cast<double>(buckets_[i]);
      const double value = lower + fraction * (upper - lower);
      return std::clamp(value, min_, max_);
    }
  }
  return max_;  // target lies in the overflow bucket
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  COLT_CHECK(upper_bounds_ == other.upper_bounds_)
      << "histogram merge with mismatched bucket layouts";
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min();
  snap.max = max();
  snap.p50 = Percentile(50.0);
  snap.p95 = Percentile(95.0);
  snap.p99 = Percentile(99.0);
  snap.upper_bounds = upper_bounds_;
  snap.bucket_counts = buckets_;
  snap.overflow = overflow_;
  return snap;
}

ScopedTimer::ScopedTimer([[maybe_unused]] Histogram* hist) {
#ifndef COLT_DISABLE_METRICS
  if (hist != nullptr && *hist->enabled_) {
    hist_ = hist;
    start_ = WallTimer::Now();
  }
#endif
}

double ScopedTimer::Stop() {
  if (hist_ == nullptr) return 0.0;
  const double elapsed = WallTimer::Now() - start_;
  hist_->Record(elapsed);
  hist_ = nullptr;
  return elapsed;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      // colt-lint: allow-next-line(raw-new-delete): the
                      // Counter constructor is private (friend
                      // MetricsRegistry), so make_unique cannot reach it;
                      // the unique_ptr adopts in the same expression.
                      std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      // colt-lint: allow-next-line(raw-new-delete): the
                      // Gauge constructor is private (friend
                      // MetricsRegistry), so make_unique cannot reach it;
                      // the unique_ptr adopts in the same expression.
                      std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         HistogramOptions options) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          // colt-lint: allow-next-line(raw-new-delete): the
                          // Histogram constructor is private (friend
                          // MetricsRegistry); the unique_ptr one line up
                          // adopts it in the same expression.
                          new Histogram(&enabled_, std::move(options))))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    if (c->value_ == 0) continue;
    GetCounter(name)->value_ += c->value_;
  }
  for (const auto& [name, h] : other.histograms_) {
    HistogramOptions options;
    options.upper_bounds = h->upper_bounds_;
    GetHistogram(name, std::move(options))->Merge(*h);
  }
  // Gauges carry last-value semantics; see the header contract for why
  // they do not transfer.
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

// ---------------------------------------------------------------------------
// JSONL export / import, built on the shared common/json_util subset
// writer/reader; FromJsonl only guarantees to parse what ToJsonl writes.

std::string MetricsSnapshot::ToJsonl() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += "{\"type\":\"counter\",\"name\":";
    json::AppendString(name, &out);
    out += ",\"value\":";
    json::AppendInt(value, &out);
    out += "}\n";
  }
  for (const auto& [name, value] : gauges) {
    out += "{\"type\":\"gauge\",\"name\":";
    json::AppendString(name, &out);
    out += ",\"value\":";
    json::AppendDouble(value, &out);
    out += "}\n";
  }
  for (const auto& [name, h] : histograms) {
    out += "{\"type\":\"histogram\",\"name\":";
    json::AppendString(name, &out);
    out += ",\"count\":";
    json::AppendInt(h.count, &out);
    out += ",\"sum\":";
    json::AppendDouble(h.sum, &out);
    out += ",\"min\":";
    json::AppendDouble(h.min, &out);
    out += ",\"max\":";
    json::AppendDouble(h.max, &out);
    out += ",\"p50\":";
    json::AppendDouble(h.p50, &out);
    out += ",\"p95\":";
    json::AppendDouble(h.p95, &out);
    out += ",\"p99\":";
    json::AppendDouble(h.p99, &out);
    out += ",\"bounds\":";
    json::AppendDoubleArray(h.upper_bounds, &out);
    out += ",\"buckets\":";
    json::AppendIntArray(h.bucket_counts, &out);
    out += ",\"overflow\":";
    json::AppendInt(h.overflow, &out);
    out += "}\n";
  }
  return out;
}

namespace {

// Prometheus metric names admit [a-zA-Z0-9_:]; the registry's dotted
// snake_case maps onto it by turning dots into underscores.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendPrometheusDouble(double v, std::string* out) {
  if (std::isnan(v)) {
    *out += "NaN";
  } else if (std::isinf(v)) {
    *out += v > 0 ? "+Inf" : "-Inf";
  } else {
    json::AppendDouble(v, out);
  }
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    AppendPrometheusDouble(value, &out);
    out += "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cumulative += i < h.bucket_counts.size() ? h.bucket_counts[i] : 0;
      out += prom + "_bucket{le=\"";
      AppendPrometheusDouble(h.upper_bounds[i], &out);
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += prom + "_sum ";
    AppendPrometheusDouble(h.sum, &out);
    out += "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

Result<MetricsSnapshot> MetricsSnapshot::FromJsonl(std::string_view text) {
  MetricsSnapshot snap;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line =
        json::StripLineEnding(text.substr(pos, end - pos));
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    const auto malformed = [&](const std::string& why) {
      return Status::InvalidArgument("metrics jsonl line " +
                                     std::to_string(line_no) + ": " + why);
    };
    json::Reader reader(line);
    if (!reader.Consume('{')) return malformed("expected object");
    std::string type;
    std::string name;
    int64_t int_value = 0;
    double double_value = 0.0;
    HistogramSnapshot hist;
    bool first = true;
    while (!reader.Consume('}')) {
      if (!first && !reader.Consume(',')) return malformed("expected ','");
      first = false;
      std::string key;
      if (!reader.ReadString(&key) || !reader.Consume(':')) {
        return malformed("expected key");
      }
      bool ok = true;
      if (key == "type") {
        ok = reader.ReadString(&type);
      } else if (key == "name") {
        ok = reader.ReadString(&name);
      } else if (key == "value") {
        ok = reader.ReadDouble(&double_value);
        int_value = static_cast<int64_t>(double_value);
      } else if (key == "count") {
        ok = reader.ReadInt(&hist.count);
      } else if (key == "sum") {
        ok = reader.ReadDouble(&hist.sum);
      } else if (key == "min") {
        ok = reader.ReadDouble(&hist.min);
      } else if (key == "max") {
        ok = reader.ReadDouble(&hist.max);
      } else if (key == "p50") {
        ok = reader.ReadDouble(&hist.p50);
      } else if (key == "p95") {
        ok = reader.ReadDouble(&hist.p95);
      } else if (key == "p99") {
        ok = reader.ReadDouble(&hist.p99);
      } else if (key == "bounds") {
        ok = reader.ReadDoubleArray(&hist.upper_bounds);
      } else if (key == "buckets") {
        ok = reader.ReadIntArray(&hist.bucket_counts);
      } else if (key == "overflow") {
        ok = reader.ReadInt(&hist.overflow);
      } else {
        return malformed("unknown key '" + key + "'");
      }
      if (!ok) return malformed("bad value for '" + key + "'");
    }
    // Anything after the closing brace means the line is not the JSONL
    // this writer produces; silently accepting it would let truncated or
    // concatenated exports parse as clean snapshots.
    if (!reader.AtEnd()) return malformed("trailing characters");
    if (name.empty()) return malformed("missing name");
    if (type == "counter") {
      snap.counters[name] = int_value;
    } else if (type == "gauge") {
      snap.gauges[name] = double_value;
    } else if (type == "histogram") {
      snap.histograms[name] = std::move(hist);
    } else {
      return malformed("unknown type '" + type + "'");
    }
  }
  return snap;
}

namespace {

std::string FormatSeconds(double v) {
  char buf[48];
  if (std::fabs(v) >= 1.0 || v == 0.0) {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  } else if (std::fabs(v) >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3fm", v * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fu", v * 1e6);
  }
  return buf;
}

}  // namespace

std::string FormatSnapshot(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "histograms:\n";
    for (const auto& [name, h] : snapshot.histograms) {
      out << "  " << name << ": count=" << h.count << " sum="
          << FormatSeconds(h.sum) << " min=" << FormatSeconds(h.min)
          << " p50=" << FormatSeconds(h.p50) << " p95="
          << FormatSeconds(h.p95) << " p99=" << FormatSeconds(h.p99)
          << " max=" << FormatSeconds(h.max) << "\n";
    }
  }
  return out.str();
}

std::string FormatSnapshotDiff(const MetricsSnapshot& before,
                               const MetricsSnapshot& after) {
  std::ostringstream out;
  out << "counters (after - before):\n";
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const int64_t prior = it == before.counters.end() ? 0 : it->second;
    if (value == prior) continue;
    out << "  " << name << " " << (value - prior >= 0 ? "+" : "")
        << (value - prior) << " (" << prior << " -> " << value << ")\n";
  }
  for (const auto& [name, value] : before.counters) {
    if (after.counters.find(name) == after.counters.end()) {
      out << "  " << name << " removed (was " << value << ")\n";
    }
  }
  out << "gauges (before -> after):\n";
  for (const auto& [name, value] : after.gauges) {
    const auto it = before.gauges.find(name);
    const double prior = it == before.gauges.end() ? 0.0 : it->second;
    if (value == prior) continue;
    out << "  " << name << " " << prior << " -> " << value << "\n";
  }
  out << "histograms (count/sum deltas; after-side percentiles):\n";
  for (const auto& [name, h] : after.histograms) {
    const auto it = before.histograms.find(name);
    const int64_t prior_count =
        it == before.histograms.end() ? 0 : it->second.count;
    const double prior_sum =
        it == before.histograms.end() ? 0.0 : it->second.sum;
    if (h.count == prior_count && h.sum == prior_sum) continue;
    out << "  " << name << ": count +" << (h.count - prior_count)
        << " sum +" << FormatSeconds(h.sum - prior_sum) << " p50="
        << FormatSeconds(h.p50) << " p95=" << FormatSeconds(h.p95)
        << " p99=" << FormatSeconds(h.p99) << "\n";
  }
  return out.str();
}

}  // namespace colt
